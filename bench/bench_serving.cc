/**
 * @file
 * E19: deterministic-deadline serving (src/serve) under open-loop
 * Poisson load.
 *
 * The paper's determinism claim (Eq. 4, IV.F, V.c) means a compiled
 * model's latency is known *before* it runs. This bench shows what
 * that buys a serving tier: the admission controller books exact
 * completion times, so (a) every served request's measured service
 * cycles equal the admission-time prediction — zero variance, the
 * serving-layer restatement of bench_determinism — and (b) requests
 * whose deadline provably cannot be met are rejected without
 * consuming a single chip cycle. Sweeps offered load x worker count
 * under a fixed deadline to expose the admission-control knee at
 * rho = 1, and emits BENCH_serving.json.
 *
 * All latencies are virtual chip time at 1 GHz (the simulator is
 * ~10^4x slower than the modeled silicon; wall time is reported
 * separately as simulator throughput).
 */

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "model/resnet.hh"
#include "serve/server.hh"

namespace tsp {
namespace {

using serve::InferenceServer;
using serve::Outcome;
using serve::Result;
using serve::ServerConfig;

struct PointResult
{
    int workers = 0;
    double rho = 0.0;
    double deadlineSlackUs = 0.0;
    double offeredRps = 0.0;
    std::uint64_t served = 0;
    std::uint64_t rejectedDeadline = 0;
    std::uint64_t rejectedQueue = 0;
    std::uint64_t failed = 0;
    std::uint64_t mismatches = 0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double throughputRps = 0.0;
    bool cyclesAccounted = false; ///< Pool cycles == served * service.
};

/**
 * Runs one sweep point: @p n requests with exponential interarrival
 * times at offered load @p rho (fraction of pool capacity), each
 * with deadline = arrival + @p slack_services * service time
 * (slack <= 0: no deadline).
 */
PointResult
runPoint(Lowering &lw, const LoweredTensor &input_slot,
         const LoweredTensor &output_slot, int workers, double rho,
         double slack_services, int n, std::uint64_t seed)
{
    ServerConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = 256;
    InferenceServer server(lw, input_slot, output_slot, cfg);

    const double service = server.serviceSec();
    const double mean_gap =
        service / (rho * static_cast<double>(workers));
    const double slack = slack_services * service;

    const ActTensor &in = input_slot.t;
    const std::size_t in_bytes =
        static_cast<std::size_t>(in.height) * in.width * in.channels;

    Rng rng(seed);
    std::vector<std::future<Result>> futures;
    futures.reserve(static_cast<std::size_t>(n));
    double now = 0.0;
    for (int i = 0; i < n; ++i) {
        now += -std::log(1.0 - rng.nextDouble()) * mean_gap;
        std::vector<std::int8_t> data(in_bytes);
        for (auto &v : data)
            v = static_cast<std::int8_t>(rng.intIn(-100, 100));
        const double deadline = slack > 0.0 ? now + slack : 0.0;
        futures.push_back(
            server.submit(std::move(data), now, deadline,
                          InferenceServer::OnFull::Block));
    }
    server.drain();

    PointResult p;
    p.workers = workers;
    p.rho = rho;
    p.deadlineSlackUs = slack * 1e6;
    p.offeredRps = 1.0 / mean_gap;
    for (auto &f : futures) {
        const Result r = f.get();
        switch (r.outcome) {
          case Outcome::Served: ++p.served; break;
          case Outcome::RejectedDeadline: ++p.rejectedDeadline; break;
          case Outcome::RejectedQueueFull: ++p.rejectedQueue; break;
          default: ++p.failed; break;
        }
    }
    const auto snap = server.metricsSnapshot();
    p.mismatches = snap.predictionMismatches();
    p.p50Us = snap.totalUs().count() ? snap.totalUs().quantile(0.5) : 0;
    p.p99Us = snap.totalUs().count() ? snap.totalUs().quantile(0.99) : 0;
    p.throughputRps = snap.throughputRps();
    // Rejections must cost zero chip cycles: the pool's total cycle
    // count is exactly served (+failed) runs x the known service.
    p.cyclesAccounted =
        server.totalChipCycles() ==
        (p.served + p.failed) * server.serviceCycles();
    return p;
}

void
printPoint(const PointResult &p)
{
    std::printf("  %2d %5.2f %9.1f %9.0f %6llu %7llu %6llu %5llu "
                "%8.2f %8.2f %9.0f  %s%s\n",
                p.workers, p.rho, p.deadlineSlackUs, p.offeredRps,
                static_cast<unsigned long long>(p.served),
                static_cast<unsigned long long>(p.rejectedDeadline),
                static_cast<unsigned long long>(p.rejectedQueue),
                static_cast<unsigned long long>(p.failed), p.p50Us,
                p.p99Us, p.throughputRps,
                p.cyclesAccounted ? "cycles-ok" : "CYCLE-LEAK",
                p.mismatches == 0 ? "" : " MISMATCH");
}

} // namespace
} // namespace tsp

int
main(int argc, char **argv)
{
    using namespace tsp;
    const int n = argc > 1 ? std::atoi(argv[1]) : 150;

    bench::banner(
        "E19: deterministic-deadline serving (Eq. 4, IV.F, V.c)",
        "known-before-run latency enables exact admission control: "
        "predicted == measured, infeasible requests cost 0 cycles");

    // The small conv net keeps per-inference simulation cheap; the
    // serving layer is model-agnostic.
    Graph g = model::buildTinyNet(3, 8, 8, 4);
    Rng rng(7);
    std::vector<std::int8_t> input(8 * 8 * 4);
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    Lowering lw(true);
    const auto tensors = g.lower(lw, input);
    const LoweredTensor &in_slot = tensors.at(0);
    const LoweredTensor &out_slot = tensors.at(g.outputNode());

    std::printf("model: tiny conv net, %llu cycles = %.3f us per "
                "inference (exact, compiler-known)\n\n",
                static_cast<unsigned long long>(lw.finishCycle()),
                static_cast<double>(lw.finishCycle()) * 1e-3);

    const auto wall0 = std::chrono::steady_clock::now();
    std::vector<PointResult> points;

    std::printf("load sweep (4 workers, deadline = arrival + 4 "
                "services, %d requests/point):\n",
                n);
    std::printf("   W   rho  slack_us   off_rps served rej_ddl "
                "rej_qf  fail   p50_us   p99_us  thpt_rps\n");
    for (const double rho : {0.6, 0.9, 1.0, 1.2, 1.6, 2.0}) {
        points.push_back(runPoint(lw, in_slot, out_slot, 4, rho, 4.0,
                                  n, 1000 + points.size()));
        printPoint(points.back());
    }

    std::printf("\nworker sweep (rho = 0.95 of pool capacity, same "
                "deadline):\n");
    std::printf("   W   rho  slack_us   off_rps served rej_ddl "
                "rej_qf  fail   p50_us   p99_us  thpt_rps\n");
    for (const int w : {1, 2, 4, 8}) {
        points.push_back(runPoint(lw, in_slot, out_slot, w, 0.95,
                                  4.0, n, 2000 + points.size()));
        printPoint(points.back());
    }

    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    // JSON artifact for the perf trajectory.
    JsonWriter j;
    j.beginObject();
    j.kv("bench", "serving");
    j.kv("service_cycles",
         static_cast<std::uint64_t>(lw.finishCycle()));
    j.kv("requests_per_point", static_cast<std::int64_t>(n));
    j.key("points").beginArray();
    for (const auto &p : points) {
        j.beginObject()
            .kv("workers", p.workers)
            .kv("rho", p.rho)
            .kv("deadline_slack_us", p.deadlineSlackUs)
            .kv("offered_rps", p.offeredRps)
            .kv("served", p.served)
            .kv("rejected_deadline", p.rejectedDeadline)
            .kv("rejected_queue_full", p.rejectedQueue)
            .kv("failed", p.failed)
            .kv("p50_us", p.p50Us)
            .kv("p99_us", p.p99Us)
            .kv("throughput_rps", p.throughputRps)
            .kv("prediction_mismatches", p.mismatches)
            .kv("cycles_accounted", p.cyclesAccounted)
            .endObject();
    }
    j.endArray();
    j.kv("wall_seconds", wall);
    j.endObject();
    const bool wrote = writeJsonFile("BENCH_serving.json", j.str());
    std::printf("\n%s BENCH_serving.json (wall %.1f s)\n",
                wrote ? "wrote" : "FAILED to write", wall);

    bool ok = wrote;
    std::uint64_t total_rejected = 0;
    double knee_below = 0.0, knee_above = 0.0;
    for (const auto &p : points) {
        ok = ok && p.mismatches == 0 && p.cyclesAccounted &&
             p.failed == 0;
        total_rejected += p.rejectedDeadline;
        if (p.workers == 4 && p.rho <= 0.9)
            knee_below += static_cast<double>(p.rejectedDeadline);
        if (p.workers == 4 && p.rho >= 1.6)
            knee_above += static_cast<double>(p.rejectedDeadline);
    }
    // The knee: comfortably under capacity almost nothing is
    // rejected; past it, rejections dominate.
    ok = ok && total_rejected > 0 && knee_above > 10 * knee_below;

    std::printf("shape check: zero prediction mismatches, rejected "
                "requests cost 0 cycles, admission knee at rho=1: "
                "%s\n",
                ok ? "yes" : "NO");
    bench::footer();
    return ok ? 0 : 1;
}
