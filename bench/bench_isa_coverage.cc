/**
 * @file
 * E17 (Table I): ISA coverage — every instruction of every functional
 * slice executes on the chip at least once in a single program, and
 * the dispatch trace proves it.
 */

#include <map>
#include <set>

#include "bench_util.hh"
#include "compiler/builder.hh"
#include "mem/ecc.hh"
#include "sim/chip.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E17 (Table I): ISA coverage",
                  "every architectural instruction executes: ICU, "
                  "MEM, VXM, MXM, SXM, C2C");

    ScheduledProgram prog;
    KernelBuilder kb(prog);
    const IcuId memw0 = IcuId::mem(Hemisphere::West, 0);   // pos 46.
    const IcuId memw1 = IcuId::mem(Hemisphere::West, 1);   // pos 45.
    const IcuId memw2 = IcuId::mem(Hemisphere::West, 2);

    Cycle t = 60;

    // --- MEM: Read / Write / Gather / Scatter ---
    auto emitRead = [&](const IcuId &icu, MemAddr a, StreamRef s,
                        Cycle at) {
        Instruction rd;
        rd.op = Opcode::Read;
        rd.addr = a;
        rd.dst = s;
        prog.emit(at, icu, rd);
    };
    emitRead(memw0, 0x10, {0, Direction::East}, t);
    Instruction wr;
    wr.op = Opcode::Write;
    wr.addr = 0x30;
    wr.srcA = {0, Direction::East};
    prog.emit(t + 3, memw1, wr); // Arrives pos 45... flows east; use
                                 // the value at 45? 46->45 is west.
    // Fix: write from a westward echo instead (see below).

    // Gather / scatter with a map of zeros (address 0).
    emitRead(memw0, 0x11, {1, Direction::East}, t + 1);
    Instruction gather;
    gather.op = Opcode::Gather;
    gather.dst = {2, Direction::East};
    gather.srcB = {1, Direction::East};
    prog.emit(t + 4, memw1, gather);
    Instruction scatter;
    scatter.op = Opcode::Scatter;
    scatter.srcA = {2, Direction::East};
    scatter.srcB = {2, Direction::East};
    prog.emit(t + 8, memw2, scatter);

    // --- VXM: one of each op family ---
    // Operands arrive on s4/s5 at the VXM continuously.
    int vxm_ops = 0;
    auto vxmFeed = [&](Cycle at) {
        emitRead(memw0, 0x12, {4, Direction::East}, at - 3);
        emitRead(memw1, 0x13, {5, Direction::East}, at - 4);
    };
    const Opcode kVxmBinaryOps[] = {
        Opcode::Add,    Opcode::Sub,    Opcode::Mul,
        Opcode::AddSat, Opcode::SubSat, Opcode::MulSat,
        Opcode::Max,    Opcode::Min,    Opcode::Mask,
    };
    Cycle vt = t + 20;
    for (const Opcode op : kVxmBinaryOps) {
        vxmFeed(vt);
        kb.vxmBinary(vxm_ops % 8, op, DType::Int8,
                     {4, Direction::East}, {5, Direction::East},
                     {20, Direction::West}, vt);
        ++vxm_ops;
        vt += 2;
    }
    const Opcode kVxmUnaryOps[] = {Opcode::Neg,  Opcode::Abs,
                                   Opcode::Relu, Opcode::Shift};
    for (const Opcode op : kVxmUnaryOps) {
        vxmFeed(vt);
        kb.vxmUnary(vxm_ops % 8, op, DType::Int8,
                    {4, Direction::East}, {21, Direction::West}, vt,
                    1);
        ++vxm_ops;
        vt += 2;
    }
    // Float ops need fp32 operands: convert int8 up, then act on it.
    vxmFeed(vt);
    kb.vxmConvert(8, DType::Int8, DType::Fp32, {4, Direction::East},
                  {8, Direction::West}, vt);
    kb.vxmUnary(9, Opcode::Exp, DType::Fp32, {8, Direction::West},
                {12, Direction::West}, vt + 2);
    kb.vxmUnary(10, Opcode::Tanh, DType::Fp32, {12, Direction::West},
                {16, Direction::West}, vt + 6);
    kb.vxmUnary(11, Opcode::Rsqrt, DType::Fp32,
                {16, Direction::West}, {24, Direction::West},
                vt + 10);
    vt += 16;

    // --- SXM: all seven op kinds ---
    const SlicePos sxw = Layout::sxmPos(Hemisphere::West); // pos 2.
    auto sxmFeed = [&](StreamId id, Cycle at) {
        // MEM_W0 (pos 46) flows west to the SXM (pos 2).
        emitRead(memw0, 0x14, {id, Direction::West},
                 at - 2 - Layout::transitDelay(46, sxw));
    };
    auto sxmFeedB = [&](StreamId id, Cycle at) {
        emitRead(memw1, 0x14, {id, Direction::West},
                 at - 2 - Layout::transitDelay(45, sxw));
    };
    Cycle st = vt + 60;
    Instruction shup;
    shup.op = Opcode::ShiftUp;
    shup.srcA = {3, Direction::West};
    shup.dst = {4, Direction::West};
    shup.imm0 = 2;
    sxmFeed(3, st);
    kb.sxm(Hemisphere::West, SxmUnit::ShiftNorth, shup, st);
    st += 2;
    Instruction shdn = shup;
    shdn.op = Opcode::ShiftDown;
    sxmFeed(3, st);
    kb.sxm(Hemisphere::West, SxmUnit::ShiftSouth, shdn, st);
    st += 2;
    Instruction sel;
    sel.op = Opcode::SelectNS;
    sel.srcA = {3, Direction::West};
    sel.srcB = {5, Direction::West};
    sel.dst = {6, Direction::West};
    sel.imm0 = 0x5;
    sxmFeed(3, st);
    sxmFeedB(5, st);
    kb.sxm(Hemisphere::West, SxmUnit::Select, sel, st);
    st += 2;
    Instruction perm;
    perm.op = Opcode::Permute;
    perm.srcA = {3, Direction::West};
    perm.dst = {7, Direction::West};
    {
        auto map = std::make_shared<std::vector<std::uint16_t>>();
        for (int i = 0; i < kLanes; ++i)
            map->push_back(
                static_cast<std::uint16_t>((i + 1) % kLanes));
        perm.map = map;
    }
    sxmFeed(3, st);
    kb.sxm(Hemisphere::West, SxmUnit::Permute, perm, st);
    st += 2;
    Instruction dist;
    dist.op = Opcode::Distribute;
    dist.srcA = {3, Direction::West};
    dist.dst = {8, Direction::West};
    {
        auto map = std::make_shared<std::vector<std::uint16_t>>();
        for (int i = 0; i < 16; ++i)
            map->push_back(0);
        dist.map = map;
    }
    sxmFeed(3, st);
    kb.sxm(Hemisphere::West, SxmUnit::Distribute, dist, st);
    st += 2;
    Instruction rot;
    rot.op = Opcode::Rotate;
    rot.srcA = {3, Direction::West};
    rot.dst = {9, Direction::West};
    rot.imm0 = 3;
    rot.groupSize = 9;
    sxmFeed(3, st);
    kb.sxm(Hemisphere::West, SxmUnit::Rotate, rot, st);
    st += 2;
    Instruction tr;
    tr.op = Opcode::Transpose;
    tr.srcA = {0, Direction::West};
    tr.dst = {16, Direction::East};
    tr.groupSize = 16;
    for (int j = 0; j < 16; ++j) {
        // 16 concurrent streams from 16 different slices.
        const IcuId src = IcuId::mem(Hemisphere::West, 20 + j);
        const SlicePos p = Layout::memPos(Hemisphere::West, 20 + j);
        Instruction rd;
        rd.op = Opcode::Read;
        rd.addr = 0x15;
        rd.dst = {static_cast<StreamId>(j), Direction::West};
        prog.emit(st - 2 - Layout::transitDelay(p, sxw), src, rd);
    }
    kb.sxm(Hemisphere::West, SxmUnit::Transpose0, tr, st);
    st += 4;

    // --- MXM: Lw / Iw / Abc / Acc (via the builder) ---
    MemAllocator alloc;
    WeightTile tile =
        allocWeightTile(alloc, Hemisphere::West, 24, 32);
    const Cycle iw_done = kb.installWeights(
        0, tile, /*streams_base=*/0, Direction::West, st + 60);
    emitRead(memw0, 0x16, {16, Direction::West},
             iw_done + 1 - 2 - Layout::transitDelay(46, 1));
    kb.abc(0, {16, Direction::West}, 1, false, DType::Int8,
           iw_done + 1);
    kb.acc(0, {20, Direction::East}, 1, iw_done + 2);

    // --- ICU extras: Config + Ifetch + Repeat (Nop/Sync/Notify come
    // with the preamble) ---
    Instruction config;
    config.op = Opcode::Config;
    config.imm0 = kSuperlanes;
    prog.emit(st + 200, memw0, config);
    Instruction ifetch;
    ifetch.op = Opcode::Ifetch;
    ifetch.srcA = {30, Direction::East};
    prog.emit(st + 201, memw0, ifetch);
    emitRead(memw2, 0x17, {10, Direction::East}, st + 202);
    Instruction rep;
    rep.op = Opcode::Repeat;
    rep.imm0 = 3;
    rep.imm1 = 2;
    prog.emit(st + 203, memw2, rep);

    // --- C2C: Deskew / Send / Receive against a peer chip ---
    Chip peer(ChipConfig{.strictStreams = false});
    Instruction deskew;
    deskew.op = Opcode::Deskew;
    prog.emit(40, IcuId::c2c(0), deskew); // After the preamble.
    emitRead(IcuId::mem(Hemisphere::West, 43), 0x18,
             {11, Direction::West}, st + 210);
    Instruction send;
    send.op = Opcode::Send;
    send.srcA = {11, Direction::West};
    prog.emit(st + 217, IcuId::c2c(0), send);
    // The peer sends one back for our Receive.
    ScheduledProgram peer_prog;
    peer_prog.emit(0, IcuId::c2c(0), deskew);
    Instruction psend = send;
    psend.srcA = {11, Direction::West};
    Instruction prd;
    prd.op = Opcode::Read;
    prd.addr = 0x19;
    prd.dst = {11, Direction::West};
    peer_prog.emit(st + 212, IcuId::mem(Hemisphere::West, 43), prd);
    peer_prog.emit(st + 219, IcuId::c2c(0), psend);
    Instruction recv;
    recv.op = Opcode::Receive;
    recv.dst = {12, Direction::East};
    prog.emit(st + 219 + kC2cSerializationCycles + 5 + 2,
              IcuId::c2c(0), recv);

    // Trace everything.
    ChipConfig cfg;
    cfg.strictStreams = false;
    cfg.traceEnabled = true;
    Chip main_chip(cfg);
    main_chip.c2c().connect(0, peer.c2c(), 0, 5);
    main_chip.loadProgram(prog.toAsm(/*with_preamble=*/true));
    peer.loadProgram(peer_prog.toAsm());
    Cycle guard = 0;
    while ((!main_chip.done() || !peer.done()) && guard++ < 100000) {
        main_chip.step();
        peer.step();
    }

    std::set<Opcode> seen;
    int repeated_reads = 0;
    for (const auto &e : main_chip.trace()) {
        seen.insert(e.inst.op);
        if (e.inst.op == Opcode::Read && e.inst.addr == 0x17)
            ++repeated_reads;
    }
    seen.insert(Opcode::Nop);  // Retired inside the queues.
    seen.insert(Opcode::Sync); // Preamble.
    if (repeated_reads >= 4) {
        // Repeat re-dispatches its predecessor; the 1 + 3 reads of
        // 0x17 prove the Repeat executed.
        seen.insert(Opcode::Repeat);
    }

    std::printf("%-12s %-28s %s\n", "slice", "instruction",
                "executed");
    int missing = 0;
    for (int i = 0; i < kNumOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        const bool hit = seen.count(op) > 0;
        missing += hit ? 0 : 1;
        std::printf("%-12s %-28s %s\n",
                    sliceKindName(opcodeSlice(op)), opcodeName(op),
                    hit ? "yes" : "NO");
    }
    std::printf("\ncoverage: %d / %d opcodes executed\n",
                kNumOpcodes - missing, kNumOpcodes);
    std::printf("shape check: full Table I coverage: %s\n",
                missing == 0 ? "yes" : "NO");
    bench::footer();
    return missing == 0 ? 0 : 1;
}
