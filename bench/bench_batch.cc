/**
 * @file
 * E18 (I, V): batch-size behavior — the TSP's raison d'être.
 *
 * A conventional accelerator amortizes weight traffic over a batch,
 * so its batch-1 latency and throughput are poor; the TSP keeps
 * weights resident and deterministic, so per-image latency is flat
 * in batch size and batch-1 throughput is already peak.
 */

#include "baseline/core.hh"
#include "bench_util.hh"
#include "common/rng.hh"
#include "graph/batch_program.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E18: latency/throughput vs batch size",
                  "TSP: flat per-image latency at every batch size; "
                  "cache-based parts need large batches to amortize "
                  "weight traffic (the 4x batch-1 gap of section I)");

    // TSP: per-image latency is the single-image program's latency,
    // independent of batching (weights stay resident; each image is
    // its own query). Measure it once on full ResNet-50.
    Graph g = model::buildResNet(50, 42);
    const auto input = model::im2colStem(model::makeImage(7));
    Lowering lw(true);
    const auto t = g.lower(lw, input);
    (void)t;
    InferenceSession sess(lw);
    const Cycle tsp_cycles = sess.run();

    // Baseline: the same network geometry as (outputs,
    // macs-per-output) layer pairs.
    std::vector<baseline::BaselineCore::ConvLayerDesc> layers;
    for (int i = 0; i < g.size(); ++i) {
        const Node &n = g.node(i);
        if (n.kind == OpKind::Conv2d) {
            layers.push_back(
                {static_cast<std::int64_t>(n.outH) * n.outW * n.outC,
                 static_cast<std::int64_t>(n.weights.inC) *
                     n.geom.kh * n.geom.kw,
                 static_cast<std::int64_t>(n.weights.w.size())});
        }
    }

    std::printf("%-8s %22s %26s\n", "batch", "TSP cycles/image",
                "baseline cycles/image");
    for (const int batch : {1, 2, 4, 8, 16, 32}) {
        baseline::CoreConfig cfg;
        cfg.seed = 42;
        cfg.aluPipes = 32; // GPU-like SIMD width (2048 MACs/cycle).
        const auto r =
            baseline::BaselineCore(cfg).runConvNet(layers, batch);
        std::printf("%-8d %22llu %26.0f\n", batch,
                    static_cast<unsigned long long>(tsp_cycles),
                    static_cast<double>(r.cycles) / batch);
    }

    baseline::CoreConfig cfg;
    cfg.seed = 42;
    cfg.aluPipes = 32;
    const double b1 = static_cast<double>(
        baseline::BaselineCore(cfg).runConvNet(layers, 1).cycles);
    const double b32 =
        static_cast<double>(
            baseline::BaselineCore(cfg).runConvNet(layers, 32)
                .cycles) /
        32.0;
    std::printf("\nbaseline batch-1 penalty vs batch-32: %.2fx "
                "per image\n",
                b1 / b32);
    std::printf("TSP batch-1 penalty: 1.00x by construction "
                "(deterministic, weights resident)\n");
    const bool baseline_needs_batching = b1 / b32 > 1.5;
    std::printf("shape check: baseline needs batching (>1.5x "
                "batch-1 penalty), TSP does not: %s\n",
                baseline_needs_batching ? "yes" : "NO");

    // The TSP still *can* batch when a deployment wants to: a batch-B
    // compiled program installs weights once and pipelines B
    // per-sample schedules, shaving the fixed preamble off every
    // sample after the first — with cycles(B) still exact at compile
    // time (unlike the baseline, whose batching trades latency
    // predictability for bandwidth). Shown on the tiny conv net; see
    // bench_batch_serving for the serving-tier consequences.
    Graph tiny = model::buildTinyNet(3, 8, 8, 4);
    Rng rng(7);
    std::vector<std::int8_t> warm(8 * 8 * 4);
    for (auto &v : warm)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    const BatchProgramCache cache(tiny, warm, 8);
    const auto &cb = cache.cyclesByBatch();
    std::printf("\nTSP batch-B compiled programs (tiny conv net, "
                "exact compile-time cycles):\n");
    std::printf("%-8s %14s %18s\n", "batch", "cycles(B)",
                "cycles/image");
    bool decreasing = true;
    for (int b = 1; b <= 8; b *= 2) {
        const double per =
            static_cast<double>(cb[static_cast<std::size_t>(b - 1)]) /
            b;
        std::printf("%-8d %14llu %18.1f\n", b,
                    static_cast<unsigned long long>(
                        cb[static_cast<std::size_t>(b - 1)]),
                    per);
        decreasing = decreasing &&
                     (b == 1 || per < static_cast<double>(cb[0]));
    }
    std::printf("shape check: amortized weight install makes TSP "
                "per-image cycles decrease in B: %s\n",
                decreasing ? "yes" : "NO");
    bench::footer();
    return baseline_needs_batching && decreasing ? 0 : 1;
}
