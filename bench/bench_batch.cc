/**
 * @file
 * E18 (I, V): batch-size behavior — the TSP's raison d'être.
 *
 * A conventional accelerator amortizes weight traffic over a batch,
 * so its batch-1 latency and throughput are poor; the TSP keeps
 * weights resident and deterministic, so per-image latency is flat
 * in batch size and batch-1 throughput is already peak.
 */

#include "baseline/core.hh"
#include "bench_util.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E18: latency/throughput vs batch size",
                  "TSP: flat per-image latency at every batch size; "
                  "cache-based parts need large batches to amortize "
                  "weight traffic (the 4x batch-1 gap of section I)");

    // TSP: per-image latency is the single-image program's latency,
    // independent of batching (weights stay resident; each image is
    // its own query). Measure it once on full ResNet-50.
    Graph g = model::buildResNet(50, 42);
    const auto input = model::im2colStem(model::makeImage(7));
    Lowering lw(true);
    const auto t = g.lower(lw, input);
    (void)t;
    InferenceSession sess(lw);
    const Cycle tsp_cycles = sess.run();

    // Baseline: the same network geometry as (outputs,
    // macs-per-output) layer pairs.
    std::vector<baseline::BaselineCore::ConvLayerDesc> layers;
    for (int i = 0; i < g.size(); ++i) {
        const Node &n = g.node(i);
        if (n.kind == OpKind::Conv2d) {
            layers.push_back(
                {static_cast<std::int64_t>(n.outH) * n.outW * n.outC,
                 static_cast<std::int64_t>(n.weights.inC) *
                     n.geom.kh * n.geom.kw,
                 static_cast<std::int64_t>(n.weights.w.size())});
        }
    }

    std::printf("%-8s %22s %26s\n", "batch", "TSP cycles/image",
                "baseline cycles/image");
    for (const int batch : {1, 2, 4, 8, 16, 32}) {
        baseline::CoreConfig cfg;
        cfg.seed = 42;
        cfg.aluPipes = 32; // GPU-like SIMD width (2048 MACs/cycle).
        const auto r =
            baseline::BaselineCore(cfg).runConvNet(layers, batch);
        std::printf("%-8d %22llu %26.0f\n", batch,
                    static_cast<unsigned long long>(tsp_cycles),
                    static_cast<double>(r.cycles) / batch);
    }

    baseline::CoreConfig cfg;
    cfg.seed = 42;
    cfg.aluPipes = 32;
    const double b1 = static_cast<double>(
        baseline::BaselineCore(cfg).runConvNet(layers, 1).cycles);
    const double b32 =
        static_cast<double>(
            baseline::BaselineCore(cfg).runConvNet(layers, 32)
                .cycles) /
        32.0;
    std::printf("\nbaseline batch-1 penalty vs batch-32: %.2fx "
                "per image\n",
                b1 / b32);
    std::printf("TSP batch-1 penalty: 1.00x by construction "
                "(deterministic, weights resident)\n");
    std::printf("shape check: baseline needs batching (>1.5x "
                "batch-1 penalty), TSP does not: %s\n",
                b1 / b32 > 1.5 ? "yes" : "NO");
    bench::footer();
    return 0;
}
