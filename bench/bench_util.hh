/**
 * @file
 * Shared helpers for the benchmark binaries: table printing, the
 * standard header each experiment emits (paper artifact id + claim),
 * and a JSON result emitter so benches leave machine-readable
 * BENCH_*.json artifacts for the perf trajectory.
 */

#ifndef TSP_BENCH_BENCH_UTIL_HH
#define TSP_BENCH_BENCH_UTIL_HH

#include <cstddef>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <utility>

#include "common/json.hh"
#include "common/stats.hh"

namespace tsp::bench {

/**
 * Order-independent mean of @p n samples: summed with FixedPointSum
 * (int64, 2^20 fixed point) so the reported aggregate depends only on
 * the sample multiset, keeping bench tables byte-identical under any
 * reordering of the series they summarize.
 *
 * @return 0.0 for an empty span.
 */
template <typename T>
inline double
fixedPointMean(const T *samples, std::size_t n)
{
    FixedPointSum sum;
    for (std::size_t i = 0; i < n; ++i)
        sum.add(static_cast<double>(samples[i]));
    return n ? sum.value() / static_cast<double>(n) : 0.0;
}

/** Prints the experiment banner. */
inline void
banner(const char *id, const char *claim)
{
    std::printf("=============================================="
                "==================\n");
    std::printf("%s\n", id);
    std::printf("paper: %s\n", claim);
    std::printf("----------------------------------------------"
                "------------------\n");
}

/** Prints a footer separating experiments in concatenated logs. */
inline void
footer()
{
    std::printf("\n");
}

/**
 * Writes a flat {name: number} JSON object to @p path and announces
 * the artifact on stdout. Doubles represent every value (cycle
 * counts fit: < 2^53). For nested results build a JsonWriter and use
 * writeJsonFile directly.
 *
 * @return true on success.
 */
inline bool
writeJson(const std::string &path,
          std::initializer_list<std::pair<const char *, double>> kv)
{
    JsonWriter j;
    j.beginObject();
    for (const auto &[name, v] : kv)
        j.kv(name, v);
    j.endObject();
    const bool ok = writeJsonFile(path, j.str());
    std::printf("%s %s\n", ok ? "wrote" : "FAILED to write",
                path.c_str());
    return ok;
}

} // namespace tsp::bench

#endif // TSP_BENCH_BENCH_UTIL_HH
