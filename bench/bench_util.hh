/**
 * @file
 * Shared helpers for the benchmark binaries: table printing and the
 * standard header each experiment emits (paper artifact id + claim).
 */

#ifndef TSP_BENCH_BENCH_UTIL_HH
#define TSP_BENCH_BENCH_UTIL_HH

#include <cstdio>

namespace tsp::bench {

/** Prints the experiment banner. */
inline void
banner(const char *id, const char *claim)
{
    std::printf("=============================================="
                "==================\n");
    std::printf("%s\n", id);
    std::printf("paper: %s\n", claim);
    std::printf("----------------------------------------------"
                "------------------\n");
}

/** Prints a footer separating experiments in concatenated logs. */
inline void
footer()
{
    std::printf("\n");
}

} // namespace tsp::bench

#endif // TSP_BENCH_BENCH_UTIL_HH
