/**
 * @file
 * Shared helpers for the benchmark binaries: table printing, the
 * standard header each experiment emits (paper artifact id + claim),
 * and a JSON result emitter so benches leave machine-readable
 * BENCH_*.json artifacts for the perf trajectory.
 */

#ifndef TSP_BENCH_BENCH_UTIL_HH
#define TSP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <initializer_list>
#include <string>
#include <utility>

#include "common/json.hh"

namespace tsp::bench {

/** Prints the experiment banner. */
inline void
banner(const char *id, const char *claim)
{
    std::printf("=============================================="
                "==================\n");
    std::printf("%s\n", id);
    std::printf("paper: %s\n", claim);
    std::printf("----------------------------------------------"
                "------------------\n");
}

/** Prints a footer separating experiments in concatenated logs. */
inline void
footer()
{
    std::printf("\n");
}

/**
 * Writes a flat {name: number} JSON object to @p path and announces
 * the artifact on stdout. Doubles represent every value (cycle
 * counts fit: < 2^53). For nested results build a JsonWriter and use
 * writeJsonFile directly.
 *
 * @return true on success.
 */
inline bool
writeJson(const std::string &path,
          std::initializer_list<std::pair<const char *, double>> kv)
{
    JsonWriter j;
    j.beginObject();
    for (const auto &[name, v] : kv)
        j.kv(name, v);
    j.endObject();
    const bool ok = writeJsonFile(path, j.str());
    std::printf("%s %s\n", ok ? "wrote" : "FAILED to write",
                path.c_str());
    return ok;
}

} // namespace tsp::bench

#endif // TSP_BENCH_BENCH_UTIL_HH
