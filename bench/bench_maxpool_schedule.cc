/**
 * @file
 * E5 (Fig. 11): the compiler's instruction schedule for the 3x3 max
 * pool in ResNet-50 — concurrent reads across MEM slices feeding the
 * switch/vector units, with writes committing results while later
 * windows are already streaming (read/compute/write overlap).
 */

#include <map>
#include <set>

#include "bench_util.hh"
#include "common/rng.hh"
#include "compiler/lowering.hh"
#include "runtime/session.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E5 (Fig. 11): 3x3 max pool instruction schedule",
                  "reads, data movement, max ops and writes overlap "
                  "cycle-exactly; bank concurrency lets reads of the "
                  "next window proceed under writes of the previous");

    // The ResNet-50 pool1 geometry at reduced spatial size for a
    // readable chart (112x112 -> 56x56 in the real model).
    const int h = 16, w = 16, c = 64;
    Rng rng(5);
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(h) * w * c);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));

    Lowering lw(true);
    const LoweredTensor in = lw.inputTensor(h, w, c, data);
    const LoweredTensor out = lw.maxPool(in, 3, 2, 1);

    const Cycle from = ScheduledProgram::kProgramStart + 118;
    std::printf("%s\n", lw.program().gantt(from, from + 100).c_str());

    // Overlap metrics: cycles where reads, VXM ops and writes all
    // dispatch simultaneously (the hallmark of Fig. 11).
    std::map<Cycle, std::set<SliceKind>> kinds_at;
    for (const auto &e : lw.program().events())
        kinds_at[e.cycle].insert(opcodeSlice(e.inst.op));
    std::size_t overlap3 = 0, total = 0;
    for (const auto &[t, kinds] : kinds_at) {
        ++total;
        if (kinds.count(SliceKind::MEM) &&
            kinds.count(SliceKind::VXM)) {
            ++overlap3;
        }
    }
    std::printf("cycles with MEM and VXM dispatching together: %zu "
                "of %zu busy cycles (%.0f%%)\n",
                overlap3, total,
                100.0 * static_cast<double>(overlap3) /
                    static_cast<double>(total));

    InferenceSession sess(lw);
    const Cycle cycles = sess.run();
    const auto got = sess.readTensor(out);
    ref::QTensor qin(h, w, c);
    qin.data = data;
    const auto want = ref::maxPool(qin, 3, 2, 1);
    std::size_t bad = 0;
    for (std::size_t i = 0; i < want.data.size(); ++i)
        bad += got.data[i] != want.data[i];
    std::printf("executed in %llu cycles; %zu output mismatches vs "
                "golden reference\n",
                static_cast<unsigned long long>(cycles), bad);
    std::printf("shape check: sustained read/compute/write overlap "
                "and bit-exact results: %s\n",
                (overlap3 * 2 > total && bad == 0) ? "yes" : "NO");
    bench::footer();
    return 0;
}
