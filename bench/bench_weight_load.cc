/**
 * @file
 * E6 (section V.b): install 409,600 weights into all four 320x320
 * MXM planes in under 40 cycles, including SRAM access and on-chip
 * network transit — measured on the simulated chip, not computed on
 * paper.
 */

#include "bench_util.hh"
#include "common/rng.hh"
#include "compiler/builder.hh"
#include "compiler/host_image.hh"
#include "runtime/session.hh"
#include "sim/chip.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E6 (V.b): 409,600-weight install into 4 MXM planes",
                  "< 40 cycles including SRAM and network transit; 10 "
                  "TiB/s of operand stream bandwidth into the MXMs");

    // Place one full 320x320 tile per plane, striped over the 16
    // slices nearest each hemisphere's MXM, and install all four
    // simultaneously using all 64 streams (32 per direction).
    MemAllocator alloc;
    ScheduledProgram prog;
    KernelBuilder kb(prog);
    HostImage image;
    Rng rng(11);

    std::vector<std::int8_t> row(kMxmDim);
    Cycle done = 0;
    const Cycle start = 40; // Leaves room for read leads.
    for (int plane = 0; plane < kMxmPlanes; ++plane) {
        const Hemisphere hem =
            plane < 2 ? Hemisphere::West : Hemisphere::East;
        // The two planes of a hemisphere stream from DISJOINT
        // 16-slice stripes so both can read 16 rows per cycle.
        const int first_slice = (plane % 2) ? 12 : 28;
        WeightTile tile =
            allocWeightTile(alloc, hem, first_slice, kMxmDim);
        for (int r = 0; r < kMxmDim; ++r) {
            for (auto &v : row)
                v = static_cast<std::int8_t>(rng.intIn(-90, 90));
            image.addInt8(tile.rowAddr(r), row.data(), kMxmDim);
        }
        // Planes of one hemisphere use disjoint 16-stream halves.
        const StreamId base = (plane % 2) ? 16 : 0;
        const Direction dir =
            hem == Hemisphere::West ? Direction::West
                                    : Direction::East;
        const Cycle plane_done =
            kb.installWeights(plane, tile, base, dir, start);
        done = std::max(done, plane_done);
    }

    Chip chip;
    image.applyTo(chip);
    chip.loadProgram(prog.toAsm());
    const Cycle total = chip.run();

    std::uint64_t weights = 0;
    for (int p = 0; p < kMxmPlanes; ++p)
        weights += chip.mxm(p).weightBytesLoaded();

    std::printf("weights loaded      : %llu (target 409,600)\n",
                static_cast<unsigned long long>(weights));
    std::printf("install window      : issue %llu .. done %llu\n",
                static_cast<unsigned long long>(start),
                static_cast<unsigned long long>(done));
    std::printf("install cycles      : %llu (including SRAM d_func "
                "and transit)\n",
                static_cast<unsigned long long>(done - start));
    std::printf("total program cycles: %llu\n",
                static_cast<unsigned long long>(total));
    const double bytes_per_cycle =
        static_cast<double>(weights) /
        static_cast<double>(done - start);
    std::printf("operand bandwidth   : %.1f KiB/cycle = %.1f TiB/s "
                "at 1 GHz (paper: 10 TiB/s into the MXMs)\n",
                bytes_per_cycle / 1024.0,
                bytes_per_cycle * 1e9 / (1024.0 * 1024 * 1024 * 1024));
    // Ablation (DESIGN.md section 7): with only 32 streams (16 per
    // direction), the two planes of each hemisphere must install
    // back-to-back instead of in parallel.
    {
        MemAllocator alloc2;
        ScheduledProgram prog2;
        KernelBuilder kb2(prog2);
        HostImage image2;
        Rng rng2(11);
        Cycle done2 = 0;
        for (int plane = 0; plane < kMxmPlanes; ++plane) {
            const Hemisphere hem =
                plane < 2 ? Hemisphere::West : Hemisphere::East;
            const int first_slice = (plane % 2) ? 12 : 28;
            WeightTile tile =
                allocWeightTile(alloc2, hem, first_slice, kMxmDim);
            for (int r = 0; r < kMxmDim; ++r) {
                for (auto &v : row)
                    v = static_cast<std::int8_t>(rng2.intIn(-90, 90));
                image2.addInt8(tile.rowAddr(r), row.data(), kMxmDim);
            }
            // One 16-stream set per direction: the second plane of a
            // hemisphere waits for the first.
            const Direction dir = hem == Hemisphere::West
                                      ? Direction::West
                                      : Direction::East;
            const Cycle plane_start =
                start + (plane % 2) * (kMxmDim / 16 + 1);
            done2 = std::max(done2,
                             kb2.installWeights(plane, tile, 0, dir,
                                                plane_start));
        }
        Chip chip2;
        image2.applyTo(chip2);
        chip2.loadProgram(prog2.toAsm());
        chip2.run();
        std::printf("\nablation — 32 streams (planes serialized): "
                    "%llu cycles vs %llu with all 64 streams "
                    "(paper: \"using all 32 streams in each "
                    "direction\" is what makes <40 possible)\n",
                    static_cast<unsigned long long>(done2 - start),
                    static_cast<unsigned long long>(done - start));
    }

    std::printf("shape check: %llu weights in < 40 cycles: %s\n",
                static_cast<unsigned long long>(weights),
                (weights == 409'600 && done - start < 40) ? "yes"
                                                          : "NO");
    bench::footer();
    return 0;
}
