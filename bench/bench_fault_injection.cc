/**
 * @file
 * E20: fault injection and graceful degradation under soft errors.
 *
 * The paper's reliability story (II.D) is SECDED on every 16-byte
 * MEM word plus producer/consumer stream checks: single-bit upsets
 * are corrected in place, double-bit upsets are *detected* and
 * condemn the chip (machine check) instead of silently corrupting a
 * result. This bench sweeps the per-access upset rate through a
 * serving pool and measures what that contract buys end to end:
 *
 *   - every Served result is byte-compared against the golden
 *     reference model — the count of corrupted served results must
 *     be zero at every error rate (the one forbidden outcome);
 *   - availability (served fraction) degrades gracefully as
 *     uncorrectable strikes condemn chips and exhaust retries;
 *   - corrected-error and machine-check counts scale with the rate.
 *
 * Emits BENCH_fault_injection.json.
 */

#include <chrono>
#include <cstdlib>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "model/resnet.hh"
#include "serve/server.hh"

namespace tsp {
namespace {

using serve::InferenceServer;
using serve::Outcome;
using serve::Result;
using serve::ServerConfig;

struct PointResult
{
    double rate = 0.0;
    std::uint64_t served = 0;
    std::uint64_t failedMc = 0;
    std::uint64_t other = 0;
    std::uint64_t corruptedServed = 0; ///< Must stay 0 at every rate.
    std::uint64_t corrected = 0;
    std::uint64_t machineChecks = 0;
    std::uint64_t retries = 0;
    double availability = 0.0;
    double goodputRps = 0.0;
};

/**
 * Runs @p n requests through a 2-worker pool with the given
 * per-access upset @p rate on MEM reads, MEM writes and stream hops;
 * @p double_frac of strikes flip a second bit in the same word
 * (uncorrectable by SECDED).
 */
PointResult
runPoint(Graph &g, Lowering &lw, const LoweredTensor &in_slot,
         const LoweredTensor &out_slot, double rate,
         double double_frac, int n)
{
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.queueCapacity = 256;
    cfg.maxRetries = 2;
    cfg.chip.fault.seed = 0xbe7c000dull;
    cfg.chip.fault.memReadRate = rate;
    cfg.chip.fault.memWriteRate = rate;
    cfg.chip.fault.streamRate = rate;
    cfg.chip.fault.doubleBitFraction = double_frac;
    InferenceServer server(lw, in_slot, out_slot, cfg);

    const ActTensor &in = in_slot.t;
    const std::size_t in_bytes =
        static_cast<std::size_t>(in.height) * in.width * in.channels;
    const double service = server.serviceSec();
    const double mean_gap = service / 2.0; // rho = 1 on 2 workers.

    Rng rng(42);
    std::vector<std::vector<std::int8_t>> inputs;
    std::vector<std::future<Result>> futures;
    inputs.reserve(static_cast<std::size_t>(n));
    futures.reserve(static_cast<std::size_t>(n));
    double now = 0.0;
    for (int i = 0; i < n; ++i) {
        now += -std::log(1.0 - rng.nextDouble()) * mean_gap;
        std::vector<std::int8_t> data(in_bytes);
        for (auto &v : data)
            v = static_cast<std::int8_t>(rng.intIn(-100, 100));
        inputs.push_back(data);
        futures.push_back(
            server.submit(std::move(data), now, /*deadline=*/0.0,
                          InferenceServer::OnFull::Block));
    }
    server.drain();

    PointResult p;
    p.rate = rate;
    double last_completion = 0.0;
    for (int i = 0; i < n; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        switch (r.outcome) {
          case Outcome::Served: {
            ++p.served;
            if (r.completionSec > last_completion)
                last_completion = r.completionSec;
            ref::QTensor qin(in.height, in.width, in.channels);
            qin.data = inputs[static_cast<std::size_t>(i)];
            const ref::QTensor want =
                g.runReference(qin).at(g.outputNode());
            if (r.output.data != want.data)
                ++p.corruptedServed;
            break;
          }
          case Outcome::FailedMachineCheck: ++p.failedMc; break;
          default: ++p.other; break;
        }
    }
    const auto snap = server.metricsSnapshot();
    p.corrected = snap.counters().get("ecc_corrected");
    p.machineChecks = snap.counters().get("machine_checks");
    p.retries = snap.counters().get("retries");
    p.availability =
        static_cast<double>(p.served) / static_cast<double>(n);
    p.goodputRps = last_completion > 0.0
                       ? static_cast<double>(p.served) /
                             last_completion
                       : 0.0;
    return p;
}

void
printPoint(const PointResult &p)
{
    std::printf("  %8.0e %6llu %7llu %6llu %9llu %9llu %7llu "
                "%7.3f %9.0f  %s\n",
                p.rate, static_cast<unsigned long long>(p.served),
                static_cast<unsigned long long>(p.failedMc),
                static_cast<unsigned long long>(p.other),
                static_cast<unsigned long long>(p.corrected),
                static_cast<unsigned long long>(p.machineChecks),
                static_cast<unsigned long long>(p.retries),
                p.availability, p.goodputRps,
                p.corruptedServed == 0 ? "clean" : "CORRUPTED");
}

} // namespace
} // namespace tsp

int
main(int argc, char **argv)
{
    using namespace tsp;
    const int n = argc > 1 ? std::atoi(argv[1]) : 120;
    constexpr double kDoubleFrac = 0.05;

    bench::banner(
        "E20: fault injection and graceful degradation (II.D)",
        "SECDED corrects single-bit upsets in place; double-bit "
        "upsets machine-check and retry — never a corrupted serve");

    Graph g = model::buildTinyNet(3, 8, 8, 4);
    Rng rng(7);
    std::vector<std::int8_t> input(8 * 8 * 4);
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    Lowering lw(true);
    const auto tensors = g.lower(lw, input);
    const LoweredTensor &in_slot = tensors.at(0);
    const LoweredTensor &out_slot = tensors.at(g.outputNode());

    std::printf("model: tiny conv net, %llu cycles per inference; "
                "pool: 2 chips, retry budget 2, %d requests/point, "
                "double-bit fraction %.2f\n\n",
                static_cast<unsigned long long>(lw.finishCycle()), n,
                kDoubleFrac);

    const auto wall0 = std::chrono::steady_clock::now();
    std::printf("error-rate sweep (upsets per access):\n");
    std::printf("      rate served fail_mc  other corrected "
                "mach_chk retries avail  goodput_rps\n");
    std::vector<PointResult> points;
    for (const double rate :
         {0.0, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3}) {
        points.push_back(runPoint(g, lw, in_slot, out_slot, rate,
                                  kDoubleFrac, n));
        printPoint(points.back());
    }
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    JsonWriter j;
    j.beginObject();
    j.kv("bench", "fault_injection");
    j.kv("service_cycles",
         static_cast<std::uint64_t>(lw.finishCycle()));
    j.kv("requests_per_point", static_cast<std::int64_t>(n));
    j.kv("double_bit_fraction", kDoubleFrac);
    j.key("points").beginArray();
    for (const auto &p : points) {
        j.beginObject()
            .kv("rate", p.rate)
            .kv("served", p.served)
            .kv("failed_machine_check", p.failedMc)
            .kv("other", p.other)
            .kv("corrupted_served", p.corruptedServed)
            .kv("ecc_corrected", p.corrected)
            .kv("machine_checks", p.machineChecks)
            .kv("retries", p.retries)
            .kv("availability", p.availability)
            .kv("goodput_rps", p.goodputRps)
            .endObject();
    }
    j.endArray();
    j.kv("wall_seconds", wall);
    j.endObject();
    const bool wrote =
        writeJsonFile("BENCH_fault_injection.json", j.str());
    std::printf("\n%s BENCH_fault_injection.json (wall %.1f s)\n",
                wrote ? "wrote" : "FAILED to write", wall);

    // Shape checks: the clean point is perfect; corrections appear
    // once the rate is nonzero; and — the contract this subsystem
    // exists for — no rate ever produces a corrupted served result.
    bool ok = wrote;
    std::uint64_t corrupted = 0, corrected_at_nonzero = 0;
    for (const auto &p : points) {
        corrupted += p.corruptedServed;
        if (p.rate > 0.0)
            corrected_at_nonzero += p.corrected;
        if (p.rate == 0.0) {
            ok = ok && p.served == static_cast<std::uint64_t>(n) &&
                 p.corrected == 0 && p.machineChecks == 0;
        }
    }
    ok = ok && corrupted == 0 && corrected_at_nonzero > 0;

    std::printf("shape check: clean baseline, corrections at "
                "nonzero rates, zero corrupted serves: %s\n",
                ok ? "yes" : "NO");
    bench::footer();
    return ok ? 0 : 1;
}
