/**
 * @file
 * E23: multi-model, multi-tenant serving with priority preemption.
 *
 * One server, two compiled model families behind a ModelRegistry,
 * mixed-priority traffic, uncorrectable faults live. Two claims:
 *
 *   - preemption admits provably-infeasible high-priority deadlines:
 *     a crafted arrival that a no-preemption control must reject is
 *     served exactly on its booking when the open low-priority batch
 *     is preempted (victims re-queued, never dropped);
 *   - the whole multi-tenant report is deterministic: the same seed
 *     replays the mixed soak — admissions, swaps, preemptions,
 *     machine checks — to a byte-identical metrics JSON.
 *
 * Every served output is checked bit-exact against its own family's
 * reference; one corrupted serve fails the bench. Exits nonzero on
 * any shape-check failure. Emits BENCH_multimodel.json.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "model/resnet.hh"
#include "serve/model_registry.hh"
#include "serve/server.hh"

namespace tsp {
namespace {

using serve::InferenceServer;
using serve::ModelRegistry;
using serve::ModelSpec;
using serve::Outcome;
using serve::Result;
using serve::ServerConfig;
using serve::SloClass;

constexpr int kH = 8, kW = 8, kC = 4;

std::vector<std::int8_t>
randomInput(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(kH) * kW * kC);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    return data;
}

ModelSpec
makeSpec(const std::string &name, std::uint64_t seed)
{
    ModelSpec sp;
    sp.name = name;
    sp.graph = model::buildTinyNet(seed, kH, kW, kC);
    sp.warmInput = randomInput(seed ^ 0x5eedu);
    sp.maxBatch = 2;
    return sp;
}

/** Preemption demo: high-priority arrival behind an open
 * low-priority batch on one worker. @return (hipri outcome, victim
 * outcome, preemptions). */
struct DemoResult
{
    Outcome hipri = Outcome::Failed;
    Outcome victim = Outcome::Failed;
    std::uint64_t preemptions = 0;
};

DemoResult
runDemo(bool preemption)
{
    std::vector<ModelSpec> specs;
    specs.push_back(makeSpec("a", 3));
    ModelRegistry reg(std::move(specs));
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batchMax = 2;
    cfg.batchWindowSec = 1.0; // The low-priority batch stays open.
    cfg.preemption = preemption;
    cfg.sloClasses.push_back(SloClass{1.0, 0});
    cfg.sloClasses.push_back(SloClass{1.0, 1});
    InferenceServer server(reg, cfg);
    const double svc = server.admission().serviceSec(1);

    // Low-priority leader opens a batch; the high-priority deadline
    // is infeasible behind it (2 svc) but feasible in its place
    // (1 svc).
    auto lo = server.submitModel(0, 0, randomInput(1), 0.0);
    auto hi = server.submitModel(0, 1, randomInput(2), 0.0,
                                 /*deadline=*/1.2 * svc);
    server.flushOpenBatch();
    server.drain();
    DemoResult d;
    d.hipri = hi.get().outcome;
    d.victim = lo.get().outcome;
    d.preemptions =
        server.metricsSnapshot().counters().get("preemptions");
    return d;
}

/** One mixed-priority two-family soak with faults live. */
struct SoakResult
{
    std::string json;
    std::uint64_t served = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t machineChecks = 0;
    std::uint64_t mismatches = 0;
};

SoakResult
runSoak(int n)
{
    std::vector<ModelSpec> specs;
    specs.push_back(makeSpec("a", 3));
    specs.push_back(makeSpec("b", 11));
    Graph ga = specs[0].graph;
    Graph gb = specs[1].graph;
    ModelRegistry reg(std::move(specs));
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.batchMax = 2;
    cfg.batchWindowSec = 2e-7;
    cfg.preemption = true;
    cfg.maxRetries = 3;
    cfg.sloClasses.push_back(SloClass{1.0, 0});
    cfg.sloClasses.push_back(SloClass{0.8, 1});
    cfg.chip.fault.memReadRate = 1e-6;
    cfg.chip.fault.memWriteRate = 1e-6;
    cfg.chip.fault.streamRate = 1e-6;
    cfg.chip.fault.doubleBitFraction = 0.2;
    cfg.chip.fault.seed = 7;
    InferenceServer server(reg, cfg);

    Rng rng(1234);
    const double svc = server.admission().serviceSec(1);
    double now = 0.0;
    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    std::vector<int> models;
    for (int i = 0; i < n; ++i) {
        now += -std::log(1.0 - rng.nextDouble()) * svc * 0.35;
        const int m = static_cast<int>(rng.intIn(0, 1));
        const int tenant = rng.nextDouble() < 0.25 ? 1 : 0;
        inputs.push_back(
            randomInput(static_cast<std::uint64_t>(i)));
        models.push_back(m);
        futures.push_back(server.submitModel(
            m, tenant, inputs.back(), now, now + 2.5 * svc,
            InferenceServer::OnFull::Block));
    }
    server.drain();

    SoakResult s;
    for (int i = 0; i < n; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        if (r.outcome != Outcome::Served)
            continue;
        ++s.served;
        Graph &g =
            models[static_cast<std::size_t>(i)] == 0 ? ga : gb;
        ref::QTensor qin(kH, kW, kC);
        qin.data = inputs[static_cast<std::size_t>(i)];
        if (r.output.data !=
            g.runReference(qin).at(g.outputNode()).data)
            ++s.corrupted;
    }
    const auto snap = server.metricsSnapshot();
    s.preemptions = snap.counters().get("preemptions");
    s.machineChecks = snap.counters().get("machine_checks");
    s.mismatches = snap.predictionMismatches();
    s.json = server.metricsJson();
    return s;
}

} // namespace
} // namespace tsp

int
main(int argc, char **argv)
{
    using namespace tsp;
    const int n = argc > 1 ? std::atoi(argv[1]) : 240;

    bench::banner(
        "E23: multi-model multi-tenant serving with preemption",
        "one server, two model families, priority tenants; exact "
        "swap booking and deterministic preemption");

    const auto wall0 = std::chrono::steady_clock::now();
    const DemoResult with = runDemo(/*preemption=*/true);
    const DemoResult without = runDemo(/*preemption=*/false);

    std::printf("preemption demo (1 worker, open low-priority "
                "batch, tight high-priority deadline):\n");
    std::printf("  preemption on:   hipri %-18s victim %-18s "
                "preemptions %llu\n",
                serve::outcomeName(with.hipri),
                serve::outcomeName(with.victim),
                static_cast<unsigned long long>(with.preemptions));
    std::printf("  preemption off:  hipri %-18s victim %-18s "
                "preemptions %llu\n\n",
                serve::outcomeName(without.hipri),
                serve::outcomeName(without.victim),
                static_cast<unsigned long long>(without.preemptions));

    const SoakResult a = runSoak(n);
    const SoakResult b = runSoak(n);
    const bool identical = a.json == b.json;
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    std::printf("mixed soak (%d requests, 2 families, 25%% "
                "high-priority, faults live), twice with one "
                "seed:\n",
                n);
    std::printf("  served %llu, corrupted %llu, preemptions %llu, "
                "machine checks %llu, prediction mismatches %llu\n",
                static_cast<unsigned long long>(a.served),
                static_cast<unsigned long long>(a.corrupted),
                static_cast<unsigned long long>(a.preemptions),
                static_cast<unsigned long long>(a.machineChecks),
                static_cast<unsigned long long>(a.mismatches));
    std::printf("  metrics JSON byte-identical across runs: %s\n",
                identical ? "yes" : "NO");

    JsonWriter j;
    j.beginObject();
    j.kv("bench", "multimodel");
    j.kv("requests", static_cast<std::int64_t>(n));
    j.key("preemption_demo")
        .beginObject()
        .kv("with_preemption_hipri",
            serve::outcomeName(with.hipri))
        .kv("without_preemption_hipri",
            serve::outcomeName(without.hipri))
        .kv("victim", serve::outcomeName(with.victim))
        .kv("preemptions", with.preemptions)
        .endObject();
    j.key("soak")
        .beginObject()
        .kv("served", a.served)
        .kv("corrupted", a.corrupted)
        .kv("preemptions", a.preemptions)
        .kv("machine_checks", a.machineChecks)
        .kv("prediction_mismatches", a.mismatches)
        .kv("byte_identical", identical)
        .endObject();
    j.kv("wall_seconds", wall);
    j.endObject();
    const bool wrote =
        writeJsonFile("BENCH_multimodel.json", j.str());
    std::printf("\n%s BENCH_multimodel.json (wall %.1f s)\n",
                wrote ? "wrote" : "FAILED to write", wall);

    // Shape checks: preemption admits what the control rejects, the
    // victim is still decided (served here — its deadline was open),
    // no corrupted serve, no prediction drift, and the soak replays
    // byte-identically.
    const bool ok =
        wrote && with.hipri == Outcome::Served &&
        with.preemptions == 1 && with.victim == Outcome::Served &&
        without.hipri == Outcome::RejectedDeadline &&
        without.preemptions == 0 && a.served > 0 &&
        a.corrupted == 0 && a.mismatches == 0 && identical;
    std::printf("shape check: preemption admits the control's "
                "rejection, zero corrupted serves, byte-identical "
                "replay: %s\n",
                ok ? "yes" : "NO");
    bench::footer();
    return ok ? 0 : 1;
}
