/**
 * @file
 * E21: fleet-scale soak — deterministic load generation, pod
 * autoscaling and exact load shedding over the serving layer.
 *
 * The paper's determinism claim (Eq. 4, IV.F, V.c) scales past one
 * server: because every pod's admission controller knows the exact
 * cycle count of every compiled program, a fleet controller can (a)
 * route each request to the pod with the provably earliest
 * completion, (b) shed a request the moment no pod can meet its
 * deadline — spending zero chip cycles on provable losers — and (c)
 * autoscale on the *booked* virtual backlog instead of measured wall
 * time. This bench runs two identical-seed soaks with background
 * fault injection live and asserts the entire windowed time series —
 * goodput, availability, shed counts, p50/p99 trajectories, scale
 * events — is byte-identical; then a bursty-load run demonstrates
 * the autoscaler launching and retiring pods. Emits BENCH_soak.json
 * (the second copy of the determinism pair).
 */

#include <cstdlib>
#include <string>

#include "bench_util.hh"
#include "fleet/soak.hh"

namespace tsp {
namespace {

fleet::SoakConfig
baseConfig()
{
    fleet::SoakConfig cfg;
    cfg.seed = 17;
    cfg.chipsPerPod = 2;
    cfg.wireLatencySec = 17;
    cfg.workersPerPod = 2;
    cfg.initialPods = 2;
    cfg.durationSec = 3.0;
    cfg.windowSec = 0.25;
    cfg.load.model = fleet::ArrivalModel::Poisson;
    cfg.load.rateRps = 20000.0;
    cfg.deadlineSlackSec = 4e-6;
    cfg.fault.memReadRate = 5e-5;
    cfg.fault.memWriteRate = 5e-5;
    cfg.fault.streamRate = 5e-5;
    cfg.fault.c2cRate = 5e-5;
    cfg.fault.doubleBitFraction = 0.2;
    cfg.autoscaler.minPods = 1;
    cfg.autoscaler.maxPods = 4;
    cfg.autoscaler.provisionSec = 0.5;
    return cfg;
}

int
run()
{
    bench::banner(
        "E21: fleet soak — deterministic load, autoscaling, "
        "exact shedding",
        "IV.F/V.c: compile-time-exact cycle counts lift admission "
        "control to fleet-level routing, shedding and scaling");

    // Part 1: same seed twice, faults live -> byte-identical series.
    const fleet::SoakConfig cfg = baseConfig();
    std::printf("running soak twice (seed %llu, faults live)...\n",
                static_cast<unsigned long long>(cfg.seed));
    const fleet::SoakReport a = fleet::runSoak(cfg);
    const fleet::SoakReport b = fleet::runSoak(cfg);
    const bool identical = a.json == b.json;
    std::printf("  run A: %llu submitted, %llu served, %llu shed, "
                "%llu machine checks\n",
                static_cast<unsigned long long>(a.submitted),
                static_cast<unsigned long long>(a.served),
                static_cast<unsigned long long>(a.shed),
                static_cast<unsigned long long>(a.machineChecks));
    std::printf("  run B: %llu submitted, %llu served, %llu shed, "
                "%llu machine checks\n",
                static_cast<unsigned long long>(b.submitted),
                static_cast<unsigned long long>(b.served),
                static_cast<unsigned long long>(b.shed),
                static_cast<unsigned long long>(b.machineChecks));
    std::printf("  time series byte-identical: %s\n",
                identical ? "yes" : "NO");

    // Part 2: bursty load against a slow collective (long C2C wire
    // -> ~200 us/request -> ~10k rps per pod) so bursts genuinely
    // exceed capacity: booked backlog and sheds drive the autoscaler
    // up, and the quiet base-rate tail drains it back down.
    fleet::SoakConfig burst = baseConfig();
    burst.seed = 23;
    burst.wireLatencySec = 100000;
    burst.load.model = fleet::ArrivalModel::Bursty;
    burst.load.rateRps = 8000.0;
    burst.load.burstFactor = 6.0;
    burst.load.burstFraction = 0.15;
    burst.load.meanBurstSec = 0.3;
    burst.deadlineSlackSec = 2e-3;
    burst.initialPods = 1;
    burst.autoscaler.scaleUpBacklogSec = 0.01;
    burst.autoscaler.scaleDownBacklogSec = 1e-3;
    burst.autoscaler.upWindows = 1;
    burst.autoscaler.downWindows = 4;
    burst.autoscaler.provisionSec = 0.25;
    const fleet::SoakReport c = fleet::runSoak(burst);
    std::printf("bursty autoscale run: pods launched %d, retired "
                "%d, availability %.6f\n",
                c.podsLaunched, c.podsRetired, c.availability);
    const bool scaled = c.podsLaunched > burst.initialPods;

    const bool ok = identical && scaled && a.submitted > 0 &&
                    a.availability > 0.9;
    std::printf("\nresult: %s\n", ok ? "PASS" : "FAIL");

    writeJsonFile("BENCH_soak.json", a.json);
    std::printf("wrote BENCH_soak.json\n");
    bench::footer();
    return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

} // namespace
} // namespace tsp

int
main()
{
    return tsp::run();
}
