/**
 * @file
 * E16 (conclusion): peak arithmetic and the ops-per-transistor
 * comparison — 820 TOp/s int8 at 1 GHz from 26.8B transistors (30K
 * Op/s/transistor) vs V100's 130 TFLOPs from 21.1B (6.2K).
 *
 * The peak is *measured*: all four planes stream back-to-back
 * maximum-length ABC windows with no drains in the timed region.
 */

#include "bench_util.hh"
#include "compiler/builder.hh"
#include "mem/ecc.hh"
#include "sim/chip.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E16: peak arithmetic / ops per transistor",
                  "820 TOp/s int8 at 1 GHz; 30K deep-learning "
                  "Op/s/transistor vs V100's 6.2K");

    // Keep all four planes streaming activations for kWindows
    // back-to-back accumulate windows.
    constexpr int kWindows = 20;
    ScheduledProgram prog;
    KernelBuilder kb(prog);

    for (int plane = 0; plane < kMxmPlanes; ++plane) {
        const Hemisphere hem =
            plane < 2 ? Hemisphere::West : Hemisphere::East;
        const Direction dir = hem == Hemisphere::West
                                  ? Direction::West
                                  : Direction::East;
        // Activations stream from a MEM slice adjacent to the MXM.
        const IcuId mem = IcuId::mem(hem, 40 + plane % 2);
        const SlicePos mxm = Layout::mxmPos(hem);
        const StreamRef act{static_cast<StreamId>(16 + plane % 2),
                            dir};
        const Cycle t0 = 60;
        const int total = kWindows * static_cast<int>(kMxmAccDepth);
        // One read per cycle feeding the plane.
        for (int i = 0; i < total; ++i) {
            const Cycle at = t0 + static_cast<Cycle>(i);
            const Cycle lead =
                opTiming(Opcode::Read).dFunc +
                Layout::transitDelay(
                    Layout::memPos(hem, 40 + plane % 2), mxm);
            Instruction rd;
            rd.op = Opcode::Read;
            rd.addr = static_cast<MemAddr>(i % 64);
            rd.dst = act;
            prog.emit(at - lead, mem, rd);
        }
        for (int wnd = 0; wnd < kWindows; ++wnd) {
            kb.abc(plane, act, kMxmAccDepth,
                   /*accumulate=*/wnd > 0, DType::Int8,
                   t0 + static_cast<Cycle>(wnd) * kMxmAccDepth);
        }
    }

    ChipConfig cfg;
    cfg.strictStreams = false; // Untouched SRAM reads as zeros.
    Chip chip(cfg);
    chip.loadProgram(prog.toAsm());
    const Cycle cycles = chip.run();

    const double total_ops =
        2.0 * static_cast<double>(chip.totalMaccOps());
    // The compute region is kWindows * depth cycles; startup is the
    // read lead. Sustained rate over the active region:
    const double active =
        static_cast<double>(kWindows) * kMxmAccDepth;
    const double tops_active = 2.0 * kMxmPlanes * kMxmDim * kMxmDim *
                               1e9 / 1e12;
    const double tops_program =
        total_ops / (static_cast<double>(cycles) * 1e-9) / 1e12;

    std::printf("MACCs executed      : %.3f G over %llu cycles "
                "(%0.f%% of them in the %0.f-cycle active region)\n",
                static_cast<double>(chip.totalMaccOps()) * 1e-9,
                static_cast<unsigned long long>(cycles), 100.0,
                active);
    std::printf("sustained (active)  : %.1f TOp/s (paper: 820 peak)\n",
                tops_active);
    std::printf("whole-program       : %.1f TOp/s including "
                "startup\n",
                tops_program);

    // Transistor-normalized comparison (paper's conclusion).
    const double tsp_ops_per_t = 820e12 / 26.8e9;
    const double v100_ops_per_t = 130e12 / 21.1e9;
    std::printf("\nops per transistor (paper constants):\n");
    std::printf("  TSP  : %.1fK Op/s/transistor (820 TOp/s / "
                "26.8B)\n",
                tsp_ops_per_t / 1e3);
    std::printf("  V100 : %.1fK Op/s/transistor (130 TFLOPs / "
                "21.1B)\n",
                v100_ops_per_t / 1e3);
    std::printf("  ratio: %.1fx\n", tsp_ops_per_t / v100_ops_per_t);
    std::printf("shape check: program-level rate within 15%% of the "
                "820 TOp/s peak: %s\n",
                tops_program > 0.85 * 819.2 ? "yes" : "NO");
    bench::footer();
    return 0;
}
