/**
 * @file
 * E3 (Fig. 9): roofline — achieved arithmetic throughput vs offered
 * load / operational intensity.
 *
 * Weight reuse is swept by varying how many activation vectors each
 * installed 320x320 tile processes. Low reuse is bound by the weight
 * install path (memory bandwidth slope); high reuse saturates toward
 * the MXM peak. The paper's "roofline peak" is 820 TOp/s at 1 GHz.
 */

#include "bench_util.hh"
#include "common/rng.hh"
#include "compiler/lowering.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

namespace tsp {
namespace {

/** Runs a kg*320 -> 320 1x1 conv over @p positions; returns TOp/s. */
double
matmulThroughput(int positions, int kg, Cycle *cycles_out)
{
    Rng rng(positions);
    const int c = kMxmDim * kg;
    // Spatial geometry carrying `positions` activation vectors.
    const int w = positions >= 8 ? 8 : positions;
    const int h = (positions + w - 1) / w;
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(h) * w * c);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-80, 80));

    const ConvWeights cw =
        model::makeConvWeights(kMxmDim, c, 1, 1, /*seed=*/5);
    ConvGeom geom; // 1x1, stride 1, relu.

    Lowering lw(true);
    const LoweredTensor in = lw.inputTensor(h, w, c, data);
    lw.conv2d(in, geom, cw);
    InferenceSession sess(lw);
    const Cycle cycles = sess.run();
    if (cycles_out)
        *cycles_out = cycles;

    const double ops = 2.0 * h * w * c * kMxmDim; // 2 x MACs.
    return ops / (static_cast<double>(cycles) * 1e-9) / 1e12;
}

} // namespace
} // namespace tsp

int
main()
{
    using namespace tsp;
    bench::banner(
        "E3 (Fig. 9): roofline — throughput vs offered load",
        "memory-BW-bound slope at low weight reuse rising to the "
        "arithmetic peak (820 TOp/s int8 at 1 GHz)");

    std::printf("%-12s %-4s %10s %12s %14s\n", "act vectors", "K",
                "cycles", "TOp/s", "ops/weight-byte");
    double best = 0.0;
    struct Pt
    {
        int p, kg;
    };
    const Pt sweep[] = {{1, 1},   {2, 1},   {4, 1},   {8, 1},
                        {16, 1},  {32, 1},  {64, 1},  {128, 1},
                        {256, 1}, {256, 2}, {512, 2}, {512, 4},
                        {1024, 4}};
    for (const Pt pt : sweep) {
        Cycle cycles = 0;
        const double tops = matmulThroughput(pt.p, pt.kg, &cycles);
        best = std::max(best, tops);
        const double intensity =
            2.0 * pt.p; // Ops per installed weight byte.
        std::printf("%-12d %-4d %10llu %12.2f %14.1f\n", pt.p,
                    pt.kg * kMxmDim,
                    static_cast<unsigned long long>(cycles), tops,
                    intensity);
    }

    // The architectural peak for comparison.
    const double peak =
        2.0 * kMxmPlanes * kMxmDim * kMxmDim * 1e9 / 1e12;
    std::printf("\narchitectural peak (4 planes x 320x320 MACC x 2 "
                "ops x 1 GHz): %.1f TOp/s\n",
                peak);
    std::printf("best sustained in sweep: %.2f TOp/s (%.0f%% of "
                "peak; program includes barrier + drain tails)\n",
                best, 100.0 * best / peak);
    std::printf("shape check: monotone rise with reuse and >100x "
                "spread: %s\n",
                best > 300.0 ? "yes" : "NO");
    bench::footer();
    return 0;
}
