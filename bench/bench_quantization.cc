/**
 * @file
 * E12 (IV.D): layer-based symmetric int8 quantization vs quantizing
 * every operation.
 *
 * The paper keeps int32/fp32 precision *between* matrix operations
 * (requantizing once per layer) and reports only 0.5% loss vs
 * quantizing each operation. We reproduce the comparison on a
 * synthetic classification task: an fp32 reference net vs (a) our
 * layer-symmetric pipeline and (b) an aggressive variant that
 * requantizes each kernel tap's partial sum to int8 before
 * accumulating — the "quantize every op" strawman.
 */

#include <algorithm>
#include <cmath>

#include "bench_util.hh"
#include "common/rng.hh"
#include "ref/qnn.hh"
#include "vxm/alu_ops.hh"

namespace tsp {
namespace {

struct Net
{
    // Two 3x3 conv layers + classifier over an 8x8x8 input.
    static constexpr int kH = 8, kW = 8, kC = 8;
    static constexpr int kMid = 16;
    static constexpr int kClasses = 10;

    std::vector<float> w1, b1, w2, b2, w3, b3;

    explicit Net(std::uint64_t seed)
    {
        Rng rng(seed);
        // Realistic (BN-folded) conv weights have strongly
        // heterogeneous per-output-channel magnitudes; model that
        // with a random per-channel gain of 2^U(-2.5, 2.5).
        auto init = [&](std::vector<float> &w, int out_c,
                        std::size_t n, float scale) {
            w.resize(n);
            const std::size_t per =
                n / static_cast<std::size_t>(out_c);
            for (int oc = 0; oc < out_c; ++oc) {
                const float gain =
                    std::pow(2.0f, rng.uniform(-2.0f, 2.0f));
                for (std::size_t i = 0; i < per; ++i) {
                    w[static_cast<std::size_t>(oc) * per + i] =
                        rng.gaussian() * scale * gain;
                }
            }
        };
        init(w1, kMid, static_cast<std::size_t>(kMid) * kC * 9,
             0.12f);
        init(b1, kMid, kMid, 0.05f);
        init(w2, kMid, static_cast<std::size_t>(kMid) * kMid * 9,
             0.09f);
        init(b2, kMid, kMid, 0.05f);
        init(w3, kClasses,
             static_cast<std::size_t>(kClasses) * kMid, 0.15f);
        init(b3, kClasses, kClasses, 0.05f);
    }
};

/** fp32 forward; returns the class logits. */
std::vector<float>
forwardF32(const Net &net, const std::vector<float> &img)
{
    using ref::conv2dF32;
    auto h1 = conv2dF32(img, Net::kH, Net::kW, Net::kC, net.w1.data(),
                        Net::kMid, 3, 3, 1, 1, net.b1.data(), true);
    auto h2 = conv2dF32(h1, Net::kH, Net::kW, Net::kMid,
                        net.w2.data(), Net::kMid, 3, 3, 1, 1,
                        net.b2.data(), true);
    // Global average pool.
    std::vector<float> pooled(Net::kMid, 0.0f);
    for (int p = 0; p < Net::kH * Net::kW; ++p)
        for (int c = 0; c < Net::kMid; ++c)
            pooled[static_cast<std::size_t>(c)] +=
                h2[static_cast<std::size_t>(p) * Net::kMid + c];
    for (auto &v : pooled)
        v /= Net::kH * Net::kW;
    std::vector<float> logits(Net::kClasses);
    for (int k = 0; k < Net::kClasses; ++k) {
        float acc = net.b3[static_cast<std::size_t>(k)];
        for (int c = 0; c < Net::kMid; ++c)
            acc += net.w3[static_cast<std::size_t>(k) * Net::kMid +
                          c] *
                   pooled[static_cast<std::size_t>(c)];
        logits[static_cast<std::size_t>(k)] = acc;
    }
    return logits;
}

/** Quantizes weights symmetrically to int8 with a per-layer scale. */
std::vector<std::int8_t>
quantW(const std::vector<float> &w, float &scale)
{
    float mx = 1e-9f;
    for (const float v : w)
        mx = std::max(mx, std::fabs(v));
    scale = mx / 127.0f;
    std::vector<std::int8_t> q(w.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
        q[i] = static_cast<std::int8_t>(std::clamp(
            std::lround(w[i] / scale), -127l, 127l));
    }
    return q;
}

/**
 * Axis-based quantization (the paper's announced future revision,
 * IV.D): an independent scale per output channel. The requant chain
 * already streams a per-lane fp32 scale vector, so this costs the
 * hardware nothing.
 */
std::vector<std::int8_t>
quantWAxis(const std::vector<float> &w, int out_c,
           std::vector<float> &scales)
{
    const std::size_t per = w.size() / static_cast<std::size_t>(out_c);
    scales.assign(static_cast<std::size_t>(out_c), 1e-9f);
    for (int oc = 0; oc < out_c; ++oc) {
        float mx = 1e-9f;
        for (std::size_t i = 0; i < per; ++i) {
            mx = std::max(
                mx,
                std::fabs(w[static_cast<std::size_t>(oc) * per + i]));
        }
        scales[static_cast<std::size_t>(oc)] = mx / 127.0f;
    }
    std::vector<std::int8_t> q(w.size());
    for (int oc = 0; oc < out_c; ++oc) {
        for (std::size_t i = 0; i < per; ++i) {
            const std::size_t k =
                static_cast<std::size_t>(oc) * per + i;
            q[k] = static_cast<std::int8_t>(std::clamp(
                std::lround(w[k] /
                            scales[static_cast<std::size_t>(oc)]),
                -127l, 127l));
        }
    }
    return q;
}

enum class QMode { LayerSymmetric, PerOp, AxisBased };

/**
 * int8 forward under one of three strategies: the paper's
 * layer-symmetric scheme, the quantize-every-op strawman, or the
 * future-revision axis-based (per-output-channel) scheme.
 */
std::vector<float>
forwardInt8(const Net &net, const std::vector<float> &img,
            QMode mode)
{
    const bool per_op_requant = mode == QMode::PerOp;
    const bool axis = mode == QMode::AxisBased;
    // Quantize input and weights (activation scale 1/32).
    const float act_scale = 1.0f / 32.0f;
    ref::QTensor q0(Net::kH, Net::kW, Net::kC);
    for (std::size_t i = 0; i < img.size(); ++i) {
        q0.data[i] = static_cast<std::int8_t>(std::clamp(
            std::lround(img[i] / act_scale), -127l, 127l));
    }

    auto conv = [&](const ref::QTensor &in, const std::vector<float> &wf,
                    const std::vector<float> &bf, int out_c, int k,
                    float in_scale, float &out_scale) {
        float w_scale = 0.0f;
        std::vector<float> axis_scales;
        const auto wq = axis ? quantWAxis(wf, out_c, axis_scales)
                             : quantW(wf, w_scale);
        out_scale = in_scale; // Keep activations on the same grid.
        const int kk = k * k;
        ref::QTensor out(in.h, in.w, out_c);
        for (int y = 0; y < in.h; ++y) {
            for (int x = 0; x < in.w; ++x) {
                for (int oc = 0; oc < out_c; ++oc) {
                    const float oc_scale =
                        axis ? axis_scales[static_cast<std::size_t>(
                                   oc)]
                             : w_scale;
                    std::int32_t acc = 0;
                    float per_op_acc = 0.0f;
                    for (int t = 0; t < kk; ++t) {
                        const int iy = y - k / 2 + t / k;
                        const int ix = x - k / 2 + t % k;
                        std::int32_t tap = 0;
                        if (iy >= 0 && iy < in.h && ix >= 0 &&
                            ix < in.w) {
                            for (int ic = 0; ic < in.c; ++ic) {
                                tap += static_cast<std::int32_t>(
                                           wq[((static_cast<
                                                    std::size_t>(oc) *
                                                    in.c +
                                                ic) *
                                                   kk +
                                               t)]) *
                                       in.at(iy, ix, ic);
                            }
                        }
                        if (per_op_requant) {
                            // Squash the tap partial sum to int8 in
                            // the *output* grid, then accumulate.
                            const float v = static_cast<float>(tap) *
                                            in_scale * oc_scale /
                                            out_scale;
                            LaneValue lv;
                            lv.f = v;
                            lv = aluConvert(DType::Fp32, DType::Int8,
                                            lv);
                            per_op_acc += static_cast<float>(lv.i);
                        } else {
                            acc += tap;
                        }
                    }
                    float val;
                    if (per_op_requant) {
                        val = per_op_acc +
                              bf[static_cast<std::size_t>(oc)] /
                                  out_scale;
                    } else {
                        val = static_cast<float>(acc) * in_scale *
                                  oc_scale / out_scale +
                              bf[static_cast<std::size_t>(oc)] /
                                  out_scale;
                    }
                    LaneValue lv;
                    lv.f = std::max(val, 0.0f); // ReLU.
                    lv = aluConvert(DType::Fp32, DType::Int8, lv);
                    out.at(y, x, oc) =
                        static_cast<std::int8_t>(lv.i);
                }
            }
        }
        return out;
    };

    float s1 = 0.0f, s2 = 0.0f;
    const auto h1 = conv(q0, net.w1, net.b1, Net::kMid, 3, act_scale,
                         s1);
    const auto h2 = conv(h1, net.w2, net.b2, Net::kMid, 3, s1, s2);

    // Pool + classifier in fp32 from the int8 activations.
    std::vector<float> pooled(Net::kMid, 0.0f);
    for (int p = 0; p < Net::kH * Net::kW; ++p)
        for (int c = 0; c < Net::kMid; ++c)
            pooled[static_cast<std::size_t>(c)] +=
                static_cast<float>(
                    h2.data[static_cast<std::size_t>(p) * Net::kMid +
                            c]) *
                s2;
    for (auto &v : pooled)
        v /= Net::kH * Net::kW;
    std::vector<float> logits(Net::kClasses);
    for (int k = 0; k < Net::kClasses; ++k) {
        float acc = net.b3[static_cast<std::size_t>(k)];
        for (int c = 0; c < Net::kMid; ++c)
            acc += net.w3[static_cast<std::size_t>(k) * Net::kMid +
                          c] *
                   pooled[static_cast<std::size_t>(c)];
        logits[static_cast<std::size_t>(k)] = acc;
    }
    return logits;
}

} // namespace
} // namespace tsp

int
main()
{
    using namespace tsp;
    bench::banner("E12 (IV.D): quantization strategy comparison",
                  "layer-symmetric int8 with int32 accumulation "
                  "loses ~0.5% vs fp32; quantizing every op loses "
                  "more");

    const Net net(99);
    Rng rng(123);
    const int samples = 400;
    // Continuous error metric: RMS logit error relative to the fp32
    // logits' RMS, plus argmax disagreement as a secondary readout.
    double err[3] = {0, 0, 0};
    double ref_pow = 0.0;
    int disagree[3] = {0, 0, 0};
    const QMode modes[3] = {QMode::PerOp, QMode::LayerSymmetric,
                            QMode::AxisBased};
    for (int s = 0; s < samples; ++s) {
        std::vector<float> img(
            static_cast<std::size_t>(Net::kH) * Net::kW * Net::kC);
        for (auto &v : img)
            v = rng.gaussian();
        const auto ref_logits = forwardF32(net, img);
        const int ref_cls = static_cast<int>(
            std::max_element(ref_logits.begin(), ref_logits.end()) -
            ref_logits.begin());
        for (const float l : ref_logits)
            ref_pow += static_cast<double>(l) * l;
        for (int m = 0; m < 3; ++m) {
            const auto q = forwardInt8(net, img, modes[m]);
            for (int k = 0; k < Net::kClasses; ++k) {
                const double d =
                    static_cast<double>(
                        q[static_cast<std::size_t>(k)]) -
                    ref_logits[static_cast<std::size_t>(k)];
                err[m] += d * d;
            }
            disagree[m] +=
                static_cast<int>(
                    std::max_element(q.begin(), q.end()) -
                    q.begin()) != ref_cls;
        }
    }
    const double rms_ref = std::sqrt(ref_pow);
    const char *names[3] = {"per-op requantized int8           ",
                            "layer-symmetric int8 (the paper)  ",
                            "axis-based int8 (future revision) "};
    std::printf("%d synthetic samples vs fp32:\n", samples);
    for (int m = 0; m < 3; ++m) {
        std::printf("  %s: logit error %6.2f%%   argmax "
                    "disagreement %5.2f%%\n",
                    names[m], 100.0 * std::sqrt(err[m]) / rms_ref,
                    100.0 * disagree[m] / samples);
    }
    const double e_perop = std::sqrt(err[0]);
    const double e_layer = std::sqrt(err[1]);
    const double e_axis = std::sqrt(err[2]);
    std::printf("shape check: layer-based beats per-op and "
                "axis-based beats layer-based (logit error): %s\n",
                (e_layer < e_perop && e_axis < e_layer) ? "yes"
                                                        : "NO");
    bench::footer();
    return 0;
}
