/**
 * @file
 * E15 (II item 6): chip-to-chip bandwidth and latency — a sustained
 * vector stream over one link (measured) and the 16-link aggregate
 * (3.84 Tb/s of pin bandwidth).
 */

#include "bench_util.hh"
#include "compiler/schedule.hh"
#include "mem/ecc.hh"
#include "sim/chip.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E15: chip-to-chip links",
                  "16 x4 links at 30 Gb/s/lane = 3.84 Tb/s "
                  "bidirectional pin bandwidth; deterministic "
                  "vector exchange");

    constexpr int kVectors = 64;
    constexpr Cycle kWire = 25;
    Chip a, b;
    a.c2c().connect(0, b.c2c(), 0, kWire);

    ScheduledProgram pa, pb;
    Instruction deskew;
    deskew.op = Opcode::Deskew;
    pa.emit(0, IcuId::c2c(0), deskew);
    pb.emit(0, IcuId::c2c(0), deskew);

    const IcuId mem = IcuId::mem(Hemisphere::West, 43);
    Cycle first_send = 0, last_arrive = 0;
    for (int i = 0; i < kVectors; ++i) {
        const Cycle send_at =
            70 + static_cast<Cycle>(i) * kC2cSerializationCycles;
        if (i == 0)
            first_send = send_at;
        Instruction rd;
        rd.op = Opcode::Read;
        rd.addr = static_cast<MemAddr>(0x10 + (i % 64));
        rd.dst = {4, Direction::West};
        pa.emit(send_at - 5, mem, rd);
        Instruction send;
        send.op = Opcode::Send;
        send.srcA = {4, Direction::West};
        pa.emit(send_at, IcuId::c2c(0), send);

        const Cycle arrive =
            send_at + kC2cSerializationCycles + kWire;
        last_arrive = arrive;
        Instruction recv;
        recv.op = Opcode::Receive;
        recv.dst = {6, Direction::East};
        pb.emit(arrive, IcuId::c2c(0), recv);
        Instruction wr;
        wr.op = Opcode::Write;
        wr.addr = static_cast<MemAddr>(0x100 + i);
        wr.srcA = {6, Direction::East};
        pb.emit(arrive + opTiming(Opcode::Receive).dFunc + 3, mem,
                wr);
    }

    for (int i = 0; i < 64; ++i) {
        Vec320 v;
        v.bytes.fill(static_cast<std::uint8_t>(i));
        a.mem(Hemisphere::West, 43)
            .backdoorWrite(static_cast<MemAddr>(0x10 + i), v);
    }
    a.loadProgram(pa.toAsm());
    b.loadProgram(pb.toAsm());
    Cycle guard = 0;
    while ((!a.done() || !b.done()) && guard++ < 1000000) {
        a.step();
        b.step();
    }

    const double cycles_per_vec =
        static_cast<double>(kC2cSerializationCycles);
    const double link_gbps = 320.0 * 8 / cycles_per_vec; // At 1 GHz.
    std::printf("vectors exchanged    : %llu (0 lost; in order by "
                "construction)\n",
                static_cast<unsigned long long>(b.c2c().received()));
    std::printf("first-vector latency : %llu cycles "
                "(serialization %llu + wire %llu)\n",
                static_cast<unsigned long long>(
                    kC2cSerializationCycles + kWire),
                static_cast<unsigned long long>(
                    kC2cSerializationCycles),
                static_cast<unsigned long long>(kWire));
    std::printf("sustained throughput : 1 vector / %llu cycles = "
                "%.1f Gb/s per link direction (paper: 120)\n",
                static_cast<unsigned long long>(
                    kC2cSerializationCycles),
                link_gbps);
    std::printf("aggregate pin BW     : %.2f Tb/s over 16 links x 2 "
                "directions (paper: 3.84)\n",
                link_gbps * 16 * 2 / 1000.0);
    std::printf("stream window        : sends %llu..%llu, last "
                "arrival %llu\n",
                static_cast<unsigned long long>(first_send),
                static_cast<unsigned long long>(
                    first_send + (kVectors - 1) *
                                     kC2cSerializationCycles),
                static_cast<unsigned long long>(last_arrive));
    std::printf("shape check: %d/%d delivered, 116-120 Gb/s/link: "
                "%s\n",
                static_cast<int>(b.c2c().received()), kVectors,
                (b.c2c().received() == kVectors && link_gbps > 110)
                    ? "yes"
                    : "NO");
    bench::footer();
    return 0;
}
