/**
 * @file
 * E10 (Fig. 3 / Listing 1): producer-consumer streams vs a
 * conventional load-store core for Z = X + Y.
 *
 * The RISC core moves every operand through registers and a cache
 * hierarchy (4 instructions per SIMD chunk, latency at the mercy of
 * misses); the TSP chains MEM -> VXM -> MEM at one 320-byte vector
 * per cycle with a cycle count known at compile time.
 */

#include "api/stream_api.hh"
#include "baseline/core.hh"
#include "bench_util.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E10 (Fig. 3): streaming add vs load-store core",
                  "4 RISC instructions + cache traffic per chunk vs "
                  "a fully chained stream program");

    const std::size_t elements = 1024 * 320;

    // TSP.
    api::Program program;
    const auto x = program.randomTensor(1024, 1);
    const auto y = program.randomTensor(1024, 2);
    program.add(x, y);
    const api::RunInfo tsp_run = program.run();

    // Baseline core (64-lane SIMD, two cache levels).
    baseline::CoreConfig cfg;
    baseline::BaselineCore core(cfg);
    const baseline::RunResult cpu = core.runVectorAdd(elements);

    std::printf("%-26s %14s %14s\n", "", "TSP", "load-store core");
    std::printf("%-26s %14llu %14llu\n", "instructions",
                static_cast<unsigned long long>(tsp_run.instructions),
                static_cast<unsigned long long>(cpu.instructions));
    std::printf("%-26s %14llu %14llu\n", "cycles",
                static_cast<unsigned long long>(tsp_run.cycles),
                static_cast<unsigned long long>(cpu.cycles));
    std::printf("%-26s %14.2f %14.2f\n", "elements/cycle",
                static_cast<double>(elements) /
                    static_cast<double>(tsp_run.cycles),
                static_cast<double>(elements) /
                    static_cast<double>(cpu.cycles));
    std::printf("%-26s %14s %14llu\n", "L1 misses", "none (no cache)",
                static_cast<unsigned long long>(cpu.l1Misses));

    const double speedup = static_cast<double>(cpu.cycles) /
                           static_cast<double>(tsp_run.cycles);
    std::printf("\ncycle advantage: %.1fx at equal clock (and the "
                "TSP count never varies)\n",
                speedup);
    std::printf("shape check: TSP processes an order of magnitude "
                "more elements per cycle: %s\n",
                speedup > 5.0 ? "yes" : "NO");
    bench::footer();
    return 0;
}
