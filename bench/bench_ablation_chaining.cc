/**
 * @file
 * E11 (IV.C): the memory/pipelining optimization ablation.
 *
 * The paper's first ResNet-50 revision streamed each layer to
 * completion and wrote results to memory "as a delay" before the
 * next pipeline; adjusting memory allocation and bank interleaving
 * so a consumer reads a producer's output *before the producer
 * finished* cut ~5,500 cycles. Our lowering exposes the same switch:
 * sequential (every layer waits for the last write) vs pipelined
 * (per-row readiness).
 */

#include "bench_util.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

namespace tsp {
namespace {

Cycle
run(bool pipelined)
{
    Graph g = model::buildResNet(50, 42);
    const auto input = model::im2colStem(model::makeImage(7));
    Lowering lw(pipelined);
    const auto t = g.lower(lw, input);
    (void)t;
    InferenceSession sess(lw);
    return sess.run();
}

} // namespace
} // namespace tsp

int
main()
{
    using namespace tsp;
    bench::banner("E11 (IV.C): cross-layer pipelining ablation",
                  "reading a producer's rows before its last write "
                  "cut ~5,500 cycles off the paper's ResNet-50");

    const Cycle naive = run(/*pipelined=*/false);
    const Cycle optimized = run(/*pipelined=*/true);

    std::printf("sequential layers : %llu cycles\n",
                static_cast<unsigned long long>(naive));
    std::printf("pipelined layers  : %llu cycles\n",
                static_cast<unsigned long long>(optimized));
    std::printf("saving            : %lld cycles (%.1f%%)\n",
                static_cast<long long>(naive) -
                    static_cast<long long>(optimized),
                100.0 *
                    (static_cast<double>(naive) -
                     static_cast<double>(optimized)) /
                    static_cast<double>(naive));
    std::printf("paper             : ~5,500 cycles on their "
                "implementation\n");
    std::printf("shape check: pipelining saves thousands of cycles: "
                "%s\n",
                naive > optimized + 2000 ? "yes" : "NO");
    bench::footer();
    return 0;
}
