/**
 * @file
 * E1 + E2: ResNet-50 batch-1 inference (the headline) plus the
 * section IV.F projections for ResNet-101/152.
 *
 * ResNet-101/152 repeat ResNet-50's block structures, and every
 * block's cycle cost is deterministic, so deeper variants are
 * *projected to the cycle* from measured per-block marginal costs.
 * The projection method itself is validated by simulating an
 * extended network (+3 stage-3 blocks — the largest that fits our
 * per-hemisphere weight duplication) and comparing against its
 * projection.
 *
 * (The real chip's 220 MiB globally-shared SRAM holds ResNet-101/152
 * outright; our layout duplicates weights per hemisphere for
 * conflict-free concurrency, which halves weight capacity — see
 * DESIGN.md. The projection methodology is exactly the paper's.)
 */

#include <map>

#include "baseline/core.hh"
#include "bench_util.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

namespace tsp {
namespace {

Cycle
simulate(const int blocks[4])
{
    Graph g = model::buildResNetBlocks(blocks, /*seed=*/42);
    const auto input = model::im2colStem(model::makeImage(7));
    Lowering lw(/*pipelined=*/true);
    const auto tensors = g.lower(lw, input);
    (void)tensors;
    InferenceSession sess(lw);
    return sess.run();
}

double
ips(Cycle cycles)
{
    return 1e9 / static_cast<double>(cycles);
}

} // namespace
} // namespace tsp

int
main()
{
    using namespace tsp;
    bench::banner("E1/E2: ResNet batch-1 inference (headline, IV.F, V)",
                  "20.4K IPS / <49 us on ResNet-50; ResNet-101/152 "
                  "projected to the cycle (14.3K / 10.7K IPS); 2.5x "
                  "TPUv3, ~5x Goya at batch 1");

    const int b50[4] = {3, 4, 6, 3};
    const int b50_s3[4] = {3, 4, 7, 3};  // +1 stage-3 block.
    const int b50_s2[4] = {3, 5, 6, 3};  // +1 stage-2 block.
    const int b50_v[4] = {3, 4, 9, 3};   // Validation target.

    const Cycle r50 = simulate(b50);
    std::printf("ResNet-50 (simulated)   : %8llu cycles = %6.1f us "
                "= %6.0f IPS at 1 GHz\n",
                static_cast<unsigned long long>(r50),
                static_cast<double>(r50) * 1e-3, ips(r50));

    // Marginal per-block costs, measured to the cycle.
    const Cycle c3 = simulate(b50_s3) - r50;
    const Cycle c2 = simulate(b50_s2) - r50;
    std::printf("marginal block costs    : stage-2 %llu, stage-3 "
                "%llu cycles\n",
                static_cast<unsigned long long>(c2),
                static_cast<unsigned long long>(c3));

    // Validate the projection on a network we CAN also simulate.
    const Cycle v_sim = simulate(b50_v);
    const Cycle v_proj = r50 + 3 * c3;
    std::printf("projection validation   : (3,4,9,3) simulated "
                "%llu vs projected %llu (error %.3f%%)\n",
                static_cast<unsigned long long>(v_sim),
                static_cast<unsigned long long>(v_proj),
                100.0 *
                    (static_cast<double>(v_proj) -
                     static_cast<double>(v_sim)) /
                    static_cast<double>(v_sim));

    // IV.F projections for the full deep variants.
    const Cycle r101 = r50 + 17 * c3;
    const Cycle r152 = r50 + 4 * c2 + 30 * c3;
    std::printf("ResNet-101 (projected)  : %8llu cycles = %6.1f us "
                "= %6.0f IPS\n",
                static_cast<unsigned long long>(r101),
                static_cast<double>(r101) * 1e-3, ips(r101));
    std::printf("ResNet-152 (projected)  : %8llu cycles = %6.1f us "
                "= %6.0f IPS\n",
                static_cast<unsigned long long>(r152),
                static_cast<double>(r152) * 1e-3, ips(r152));

    // Determinism check: re-simulation is identical.
    const Cycle again = simulate(b50);
    std::printf("\nre-simulated ResNet-50  : %llu cycles (%s)\n",
                static_cast<unsigned long long>(again),
                again == r50 ? "identical — deterministic"
                             : "DIFFERENT — bug!");

    std::printf("\nbatch-1 comparison (published numbers [1],[44]):\n");
    std::printf("  %-28s %9s %12s %9s\n", "chip", "IPS",
                "latency(us)", "ours vs");
    for (const auto &c : baseline::referenceChips()) {
        std::printf("  %-28s %9.0f %12.1f %8.2fx\n", c.name,
                    c.resnet50Ips, c.batch1LatencyUs,
                    ips(r50) / c.resnet50Ips);
    }
    std::printf("  %-28s %9.0f %12.1f %9s\n",
                "this simulator (1 GHz)", ips(r50),
                static_cast<double>(r50) * 1e-3, "1.00x");

    bench::writeJson(
        "BENCH_resnet.json",
        {{"resnet50_cycles", static_cast<double>(r50)},
         {"resnet50_ips", ips(r50)},
         {"resnet50_latency_us", static_cast<double>(r50) * 1e-3},
         {"resnet101_cycles_projected", static_cast<double>(r101)},
         {"resnet101_ips", ips(r101)},
         {"resnet152_cycles_projected", static_cast<double>(r152)},
         {"resnet152_ips", ips(r152)},
         {"projection_error_pct",
          100.0 *
              (static_cast<double>(v_proj) -
               static_cast<double>(v_sim)) /
              static_cast<double>(v_sim)},
         {"deterministic", again == r50 ? 1.0 : 0.0}});

    const double rel101 = ips(r101) / ips(r50);
    const double rel152 = ips(r152) / ips(r50);
    std::printf("\ndepth scaling (relative IPS): ours %.2f / %.2f, "
                "paper %.2f / %.2f\n",
                rel101, rel152, 14300.0 / 20400.0,
                10700.0 / 20400.0);
    std::printf("shape check: faster than every published *batch-1* "
                "chip (Goya, V100), projection exact, "
                "deterministic: %s\n",
                (ips(r50) > 5100.0 && again == r50 &&
                 std::abs(static_cast<double>(v_proj) -
                          static_cast<double>(v_sim)) <
                     0.005 * static_cast<double>(v_sim))
                    ? "yes"
                    : "NO");
    bench::footer();
    return 0;
}
