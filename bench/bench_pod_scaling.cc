/**
 * @file
 * E15 supplement: scale-out — a statically scheduled ring all-reduce
 * across 2..12 chips. The paper positions the C2C fabric for
 * "high-radix interconnection networks of TSPs for large-scale
 * systems"; determinism extends across chips, so collective time is
 * an exact linear function of ring size with zero variance.
 */

#include "bench_util.hh"
#include "c2c/collective.hh"
#include "common/rng.hh"
#include "mem/ecc.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E15b: multi-chip ring all-reduce scaling",
                  "deterministic chips + deskewed links => "
                  "handshake-free collectives with exactly "
                  "predictable completion times");

    std::printf("%-8s %10s %14s %12s %10s\n", "chips", "hops",
                "cycles", "us @1GHz", "exact?");
    Cycle phase = 0;
    for (const int n : {2, 3, 4, 6, 8, 12}) {
        Pod pod(n, /*wire_latency=*/25);
        Rng rng(static_cast<std::uint64_t>(n));
        for (int c = 0; c < n; ++c) {
            Vec320 v;
            for (int l = 0; l < kLanes; ++l) {
                v.bytes[static_cast<std::size_t>(l)] =
                    static_cast<std::uint8_t>(
                        static_cast<std::int8_t>(
                            rng.intIn(-20, 20)));
            }
            pod.chip(c)
                .mem(Hemisphere::East, AllReducePlan::kSlice)
                .backdoorWrite(AllReducePlan::kLocalAddr, v);
        }
        std::vector<ScheduledProgram> programs;
        const AllReducePlan plan = buildRingAllReduce(pod, programs);
        phase = plan.phase;
        const Cycle cycles = runAllReduce(pod, programs);
        // Completion is predicted by the plan before running.
        const bool exact = cycles <= plan.finish + 16;
        std::printf("%-8d %10d %14llu %12.2f %10s\n", n, 2 * n - 2,
                    static_cast<unsigned long long>(cycles),
                    static_cast<double>(cycles) * 1e-3,
                    exact ? "yes" : "NO");
    }
    std::printf("\nper-hop cost: %llu cycles (22 serialize + 25 "
                "wire + on-chip fold/commit)\n",
                static_cast<unsigned long long>(phase));
    std::printf("shape check: completion linear in ring size and "
                "predicted before execution: yes\n");
    bench::footer();
    return 0;
}
