/**
 * @file
 * E4 (Fig. 10): per-layer power while ResNet-50 executes.
 *
 * The paper plots measured chip power layer by layer, with spikes
 * where four conv2d operations run concurrently at peak arithmetic
 * utilization. We reproduce the *shape* from the activity-based power
 * model: a per-cycle trace downsampled into layer buckets, plus an
 * ASCII profile.
 */

#include <algorithm>

#include "bench_util.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E4 (Fig. 10): power usage for ResNet-50 layers",
                  "power tracks MXM occupancy layer by layer; spikes "
                  "at concurrent conv2d regions; deterministic "
                  "profile run-to-run");

    Graph g = model::buildResNet(50, 42);
    const auto input = model::im2colStem(model::makeImage(7));
    Lowering lw(true);
    const auto tensors = g.lower(lw, input);
    (void)tensors;

    ChipConfig cfg;
    cfg.powerTraceEnabled = true;
    InferenceSession sess(lw, cfg);
    const Cycle cycles = sess.run();

    const auto &trace = sess.chip().power().traceW();
    std::printf("%llu cycles, average power %.1f W, trace %zu "
                "samples\n\n",
                static_cast<unsigned long long>(cycles),
                sess.chip().power().averagePowerW(), trace.size());

    // Average power within each lowered layer's cycle span.
    std::printf("%-4s %-10s %10s %10s %8s\n", "#", "layer", "begin",
                "cycles", "avg W");
    double peak_w = 0.0;
    std::vector<double> layer_w;
    for (std::size_t i = 0; i < lw.layers().size(); ++i) {
        const auto &L = lw.layers()[i];
        const Cycle b = std::min<Cycle>(L.begin, trace.size());
        const Cycle e = std::min<Cycle>(L.end, trace.size());
        const double avg = bench::fixedPointMean(
            trace.data() + b, static_cast<std::size_t>(e - b));
        layer_w.push_back(avg);
        peak_w = std::max(peak_w, avg);
        if (i < 12 || i + 6 >= lw.layers().size()) {
            std::printf("%-4zu %-10s %10llu %10llu %8.1f\n", i,
                        L.name.c_str(),
                        static_cast<unsigned long long>(L.begin),
                        static_cast<unsigned long long>(e - b), avg);
        } else if (i == 12) {
            std::printf("...  (%zu more layers)\n",
                        lw.layers().size() - 18);
        }
    }

    // ASCII profile of the downsampled trace (the Fig. 10 curve).
    std::printf("\npower profile (64 buckets, '#' = %0.0f W):\n",
                peak_w / 24.0);
    const auto buckets = sess.chip().power().downsampledTrace(64);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        const int bars = static_cast<int>(buckets[b] / peak_w * 24.0);
        std::printf("%3zu |", b);
        for (int i = 0; i < bars; ++i)
            std::putchar('#');
        std::printf(" %.0f W\n", buckets[b]);
    }

    // Shape checks: conv spikes above eltwise layers; idle floor
    // below everything.
    double conv_max = 0.0, res_max = 0.0;
    for (std::size_t i = 0; i < lw.layers().size(); ++i) {
        if (lw.layers()[i].name == "conv2d")
            conv_max = std::max(conv_max, layer_w[i]);
        if (lw.layers()[i].name == "residual")
            res_max = std::max(res_max, layer_w[i]);
    }
    std::printf("\nshape check: peak conv power (%.1f W) > peak "
                "residual power (%.1f W): %s\n",
                conv_max, res_max, conv_max > res_max ? "yes" : "NO");
    bench::footer();
    return 0;
}
