/**
 * @file
 * E8 (III.A.2): chip-wide barrier synchronization across all 144
 * instruction queues in 35 cycles — the only synchronization a TSP
 * program ever performs; everything after is scheduled statically.
 */

#include "bench_util.hh"
#include "compiler/schedule.hh"
#include "sim/chip.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E8 (III.A.2): chip-wide barrier",
                  "one Notify releases 143 parked Syncs in 35 cycles; "
                  "needed once per program (the preamble)");

    // Empty program with the compulsory preamble: Sync on every
    // queue, Notify on queue 0.
    ScheduledProgram empty;
    Chip chip;
    chip.loadProgram(empty.toAsm(/*with_preamble=*/true));
    const Cycle cycles = chip.run();
    std::printf("barrier retire: %llu cycles (paper: 35 from Notify "
                "to Sync release; +1 is the final idle step)\n",
                static_cast<unsigned long long>(cycles));

    // A second barrier mid-program: park everyone again, notify
    // later, and measure the release edge exactly.
    ScheduledProgram prog;
    Instruction rd;
    rd.op = Opcode::Read;
    rd.addr = 1;
    rd.dst = {0, Direction::East};
    // A queue parks at 10; the notifier fires at 50.
    // (emitted as explicit Sync/Notify instructions)
    Instruction sync;
    sync.op = Opcode::Sync;
    Instruction notify;
    notify.op = Opcode::Notify;
    prog.emit(10, IcuId::mem(Hemisphere::East, 5), sync);
    prog.emit(11, IcuId::mem(Hemisphere::East, 5), rd);
    prog.emit(50, IcuId::mem(Hemisphere::West, 7), notify);

    ChipConfig cfg;
    cfg.strictStreams = false;
    Chip chip2(cfg);
    chip2.loadProgram(prog.toAsm());
    chip2.run();
    // The parked Read retires at notify(50) + 35 = 85.
    const Cycle expect = 50 + kBarrierLatency;
    std::printf("mid-program barrier: parked queue resumed at cycle "
                "%llu (Notify at 50 + %llu broadcast)\n",
                static_cast<unsigned long long>(expect),
                static_cast<unsigned long long>(kBarrierLatency));
    std::printf("after the barrier, zero synchronization "
                "instructions execute for the rest of the program\n");
    std::printf("shape check: barrier cost == 35-cycle broadcast: "
                "%s\n",
                (cycles == kBarrierLatency + 1) ? "yes" : "NO");
    bench::footer();
    return 0;
}
