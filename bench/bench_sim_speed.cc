/**
 * @file
 * Host-side microbenchmarks (google-benchmark): how fast the
 * simulator itself runs — fabric hops, ECC codec, MXM matvec tick,
 * and a full chip cycle — for anyone profiling or extending the
 * model. These measure the *simulator*, not the simulated chip.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "mem/ecc.hh"
#include "mxm/mxm_plane.hh"
#include "sim/chip.hh"
#include "stream/fabric.hh"

namespace tsp {
namespace {

void
BM_FabricAdvance(benchmark::State &state)
{
    StreamFabric fabric;
    Vec320 v;
    for (int i = 0; i < 32; ++i)
        fabric.write({static_cast<StreamId>(i), Direction::East},
                     40 + i % 8, v);
    for (auto _ : state) {
        fabric.advance();
        benchmark::DoNotOptimize(fabric.validEntries());
    }
}
BENCHMARK(BM_FabricAdvance);

void
BM_EccComputeVec(benchmark::State &state)
{
    Rng rng(1);
    Vec320 v;
    for (auto &b : v.bytes)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    for (auto _ : state) {
        eccComputeVec(v);
        benchmark::DoNotOptimize(v.ecc[0]);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLanes);
}
BENCHMARK(BM_EccComputeVec);

void
BM_EccCheckVec(benchmark::State &state)
{
    Rng rng(2);
    Vec320 v;
    for (auto &b : v.bytes)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    eccComputeVec(v);
    for (auto _ : state) {
        Vec320 copy = v;
        benchmark::DoNotOptimize(eccCheckVec(copy));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLanes);
}
BENCHMARK(BM_EccCheckVec);

void
BM_MxmMatvecTick(benchmark::State &state)
{
    ChipConfig cfg;
    cfg.strictStreams = false;
    cfg.eccEnabled = false;
    StreamFabric fabric;
    MxmPlane plane(0, cfg, fabric);
    // A long activation window; each tick is one 320x320 matvec.
    Instruction abc;
    abc.op = Opcode::Abc;
    abc.imm1 = kMxmAccDepth;
    abc.srcA = {16, Direction::West};
    std::uint32_t left = 0;
    for (auto _ : state) {
        if (left == 0) {
            plane.issue(abc, fabric.now());
            left = kMxmAccDepth;
        }
        plane.tick(fabric.now());
        fabric.advance();
        --left;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kMxmDim * kMxmDim));
}
BENCHMARK(BM_MxmMatvecTick);

void
BM_ChipIdleCycle(benchmark::State &state)
{
    Chip chip;
    chip.loadProgram(AsmProgram{});
    for (auto _ : state)
        chip.step();
}
BENCHMARK(BM_ChipIdleCycle);

} // namespace
} // namespace tsp

BENCHMARK_MAIN();
