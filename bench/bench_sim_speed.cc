/**
 * @file
 * Host-side microbenchmarks (google-benchmark): how fast the
 * simulator itself runs — fabric hops, ECC codec, MXM matvec tick,
 * and a full chip cycle — for anyone profiling or extending the
 * model. These measure the *simulator*, not the simulated chip.
 *
 * After the microbenchmarks, main() runs an end-to-end full-program
 * comparison across the three execution tiers: the legacy per-cycle
 * stepper, the event-driven fast-forward core, and trace replay
 * (record the resolved micro-op sequence once, then re-execute only
 * the numerics — see sim/exec_trace.hh), reporting simulated cycles
 * per wall-clock second for each and asserting the executions are
 * identical (cycles, and stats for the first two; the replay tier's
 * full bit-identity is proven by tests/sim/test_replay.cc). Two
 * variants run: the dense compiled schedule as-is, and a
 * NOP-dominated variant — the same program padded with a long
 * trailing NOP on an unused queue, modeling a deadline-padded
 * serving slot where the chip idles until the next batch window
 * (paper VI: deterministic deadlines). Results land in
 * BENCH_sim_speed.json, with the active SIMD kernel tier recorded
 * (scalar / avx2 / avx2+vnni; see common/cpu.hh).
 *
 * Flags: --e2e=resnet50 (default) | tiny | off selects the
 * end-to-end workload (CI smoke uses tiny);
 * --min-replay-over-ff=<x> exits nonzero unless the dense replay
 * tier is at least x times faster than fast-forward (CI smoke);
 * all other flags pass through to google-benchmark.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "arch/layout.hh"
#include "bench_util.hh"
#include "common/cpu.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "graph/graph.hh"
#include "mem/ecc.hh"
#include "model/resnet.hh"
#include "mxm/mxm_plane.hh"
#include "runtime/session.hh"
#include "sim/chip.hh"
#include "stream/fabric.hh"

namespace tsp {
namespace {

void
BM_FabricAdvance(benchmark::State &state)
{
    StreamFabric fabric;
    Vec320 v;
    for (int i = 0; i < 32; ++i)
        fabric.write({static_cast<StreamId>(i), Direction::East},
                     40 + i % 8, v);
    for (auto _ : state) {
        fabric.advance();
        benchmark::DoNotOptimize(fabric.validEntries());
    }
}
BENCHMARK(BM_FabricAdvance);

void
BM_EccComputeVec(benchmark::State &state)
{
    Rng rng(1);
    Vec320 v;
    for (auto &b : v.bytes)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    for (auto _ : state) {
        eccComputeVec(v);
        benchmark::DoNotOptimize(v.ecc[0]);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLanes);
}
BENCHMARK(BM_EccComputeVec);

void
BM_EccCheckVec(benchmark::State &state)
{
    Rng rng(2);
    Vec320 v;
    for (auto &b : v.bytes)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    eccComputeVec(v);
    for (auto _ : state) {
        Vec320 copy = v;
        benchmark::DoNotOptimize(eccCheckVec(copy));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLanes);
}
BENCHMARK(BM_EccCheckVec);

void
BM_MxmMatvecTick(benchmark::State &state)
{
    ChipConfig cfg;
    cfg.strictStreams = false;
    cfg.eccEnabled = false;
    StreamFabric fabric;
    MxmPlane plane(0, cfg, fabric);
    // A long activation window; each tick is one 320x320 matvec.
    Instruction abc;
    abc.op = Opcode::Abc;
    abc.imm1 = kMxmAccDepth;
    abc.srcA = {16, Direction::West};
    std::uint32_t left = 0;
    for (auto _ : state) {
        if (left == 0) {
            plane.issue(abc, fabric.now());
            left = kMxmAccDepth;
        }
        plane.tick(fabric.now());
        fabric.advance();
        --left;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kMxmDim * kMxmDim));
}
BENCHMARK(BM_MxmMatvecTick);

void
BM_ChipIdleCycle(benchmark::State &state)
{
    Chip chip;
    chip.loadProgram(AsmProgram{});
    for (auto _ : state)
        chip.step();
}
BENCHMARK(BM_ChipIdleCycle);

void
BM_FabricAdvanceBy64(benchmark::State &state)
{
    // The fast-forward path's bulk hop: 64 idle cycles in one call.
    StreamFabric fabric;
    Vec320 v;
    for (auto _ : state) {
        fabric.write({3, Direction::East}, 0, v);
        fabric.advanceBy(64);
        benchmark::DoNotOptimize(fabric.totalHops());
    }
}
BENCHMARK(BM_FabricAdvanceBy64);

/** One timed end-to-end simulation of @p lw. */
struct E2eRun
{
    Cycle cycles = 0;
    double wallSec = 0.0;
    std::string stats;
};

E2eRun
timedRun(Lowering &lw, bool fast_forward)
{
    ChipConfig cfg;
    cfg.fastForwardEnabled = fast_forward;
    InferenceSession sess(lw, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    const Cycle cycles = sess.run();
    const auto t1 = std::chrono::steady_clock::now();
    E2eRun r;
    r.cycles = cycles;
    r.wallSec = std::chrono::duration<double>(t1 - t0).count();
    const StatGroup stats = sess.chip().stats();
    for (const auto &[name, val] : stats.all())
        r.stats += name + "=" + std::to_string(val) + ";";
    return r;
}

/** Runs @p prog on a bare chip seeded from @p lw, timed. */
E2eRun
timedChipRun(const AsmProgram &prog, Lowering &lw, bool fast_forward)
{
    ChipConfig cfg;
    cfg.fastForwardEnabled = fast_forward;
    Chip chip(cfg);
    chip.loadProgram(prog);
    lw.image().applyTo(chip);
    const auto t0 = std::chrono::steady_clock::now();
    const Cycle cycles = chip.run(/*max_cycles=*/1ull << 40);
    const auto t1 = std::chrono::steady_clock::now();
    E2eRun r;
    r.cycles = cycles;
    r.wallSec = std::chrono::duration<double>(t1 - t0).count();
    const StatGroup stats = chip.stats();
    for (const auto &[name, val] : stats.all())
        r.stats += name + "=" + std::to_string(val) + ";";
    return r;
}

/** Timed replay of the compiled session: record once (untimed),
 * then reset with fresh state and time the replayed run. */
E2eRun
timedReplayRun(Lowering &lw)
{
    ChipConfig cfg;
    InferenceSession sess(lw, cfg);
    sess.enableReplay();
    sess.run(); // Recording run.
    sess.reset();
    const auto t0 = std::chrono::steady_clock::now();
    const Cycle cycles = sess.run(); // Replays the trace.
    const auto t1 = std::chrono::steady_clock::now();
    if (sess.replayCount() != 1)
        std::fprintf(stderr, "replay tier did not engage!\n");
    E2eRun r;
    r.cycles = cycles;
    r.wallSec = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

/** Timed chip-level replay of @p prog (the padded variant). */
E2eRun
timedChipReplay(const AsmProgram &prog, Lowering &lw)
{
    ChipConfig cfg;
    const auto mk = [&] {
        auto chip = std::make_unique<Chip>(cfg);
        chip->loadProgram(prog);
        lw.image().applyTo(*chip);
        return chip;
    };
    std::shared_ptr<const ExecutionTrace> trace;
    {
        auto recorded = mk();
        TraceRecording rec({recorded.get()});
        recorded->run(/*max_cycles=*/1ull << 40);
        trace = rec.finish(/*completed=*/true);
    }
    auto chip = mk();
    const auto t0 = std::chrono::steady_clock::now();
    replayTrace(*trace, {chip.get()});
    const auto t1 = std::chrono::steady_clock::now();
    E2eRun r;
    r.cycles = chip->now();
    r.wallSec = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

/** A legacy/fast-forward/replay triple over one workload variant. */
struct E2eTriple
{
    double legacyCps = 0.0;
    double fastCps = 0.0;
    double replayCps = 0.0;
    double speedup = 0.0;       ///< fast-forward over legacy.
    double replaySpeedup = 0.0; ///< replay over legacy.
    double replayOverFast = 0.0;
    bool identical = false;
    Cycle cycles = 0;
    E2eRun legacy, fast, replay;
};

template <typename Runner, typename ReplayRunner>
E2eTriple
compareTriple(const char *label, Runner &&run,
              ReplayRunner &&replay_run)
{
    E2eTriple p;
    p.legacy = run(false);
    p.fast = run(true);
    p.replay = replay_run();
    p.legacyCps =
        static_cast<double>(p.legacy.cycles) / p.legacy.wallSec;
    p.fastCps = static_cast<double>(p.fast.cycles) / p.fast.wallSec;
    p.replayCps =
        static_cast<double>(p.replay.cycles) / p.replay.wallSec;
    p.speedup = p.fastCps / p.legacyCps;
    p.replaySpeedup = p.replayCps / p.legacyCps;
    p.replayOverFast = p.replayCps / p.fastCps;
    p.identical = p.legacy.cycles == p.fast.cycles &&
                  p.legacy.stats == p.fast.stats &&
                  p.replay.cycles == p.legacy.cycles;
    p.cycles = p.legacy.cycles;
    std::printf(
        "  %-22s per-cycle %10llu cyc %8.3f s %12.0f c/s | "
        "fast-forward %8.3f s %12.0f c/s %6.2fx | "
        "replay %8.3f s %12.0f c/s %6.2fx (%5.2fx over ff) %s\n",
        label, static_cast<unsigned long long>(p.legacy.cycles),
        p.legacy.wallSec, p.legacyCps, p.fast.wallSec, p.fastCps,
        p.speedup, p.replay.wallSec, p.replayCps, p.replaySpeedup,
        p.replayOverFast, p.identical ? "(identical)" : "MISMATCH!");
    return p;
}

int
runEndToEnd(const std::string &workload, double min_replay_over_ff)
{
    Graph g = workload == "resnet50"
                  ? model::buildResNetBlocks(
                        (const int[4]){3, 4, 6, 3}, /*seed=*/42)
                  : model::buildTinyNet(/*seed=*/42, 12, 12, 8);
    std::vector<std::int8_t> input;
    if (workload == "resnet50") {
        input = model::im2colStem(model::makeImage(7));
    } else {
        Rng rng(7);
        input.resize(12 * 12 * 8);
        for (auto &v : input)
            v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    }
    Lowering lw(/*pipelined=*/true);
    g.lower(lw, input);

    std::printf("\nend-to-end full-program simulation (%s "
                "schedule, %s lane kernels):\n",
                workload.c_str(),
                !simdKernelsEnabled()  ? "scalar"
                : cpuHasAvx512Vnni()   ? "avx2+vnni"
                                       : "avx2");
    const E2eTriple dense = compareTriple(
        "dense", [&](bool ff) { return timedRun(lw, ff); },
        [&] { return timedReplayRun(lw); });

    // NOP-dominated variant: the compiled program plus one long NOP
    // on an otherwise unused C2C queue — the chip sits provably idle
    // until the deadline, exactly the span the event core elides.
    const Cycle pad =
        workload == "resnet50" ? 25'000'000 : 2'000'000;
    AsmProgram padded = lw.program().toAsm(/*with_preamble=*/true);
    Instruction deadline;
    deadline.op = Opcode::Nop;
    deadline.imm0 = static_cast<std::uint32_t>(pad);
    Instruction wake; // A queue retires at its last *dispatch*, so a
    wake.op = Opcode::Nop;
    wake.imm0 = 1; // trailing 1-cycle NOP pins the end of the pad.
    auto &pad_queue = padded.queues[IcuId::c2c(kC2cLinks - 1).id];
    pad_queue.push_back(deadline);
    pad_queue.push_back(wake);
    const E2eTriple nop = compareTriple(
        "nop-padded (deadline)",
        [&](bool ff) { return timedChipRun(padded, lw, ff); },
        [&] { return timedChipReplay(padded, lw); });

    const bool identical = dense.identical && nop.identical;
    std::printf("  headline: replay %.2fx over per-cycle, %.2fx over "
                "fast-forward on the dense schedule (%s)\n",
                dense.replaySpeedup, dense.replayOverFast,
                identical ? "all runs identical"
                          : "MISMATCH — execution-tier bug!");

    bench::writeJson(
        "BENCH_sim_speed.json",
        {{"workload_is_resnet50", workload == "resnet50" ? 1.0 : 0.0},
         {"simd_kernels_avx2", simdKernelsEnabled() ? 1.0 : 0.0},
         {"simulated_cycles", static_cast<double>(dense.cycles)},
         {"legacy_wall_sec", dense.legacy.wallSec},
         {"legacy_cycles_per_sec", dense.legacyCps},
         {"fast_forward_wall_sec", dense.fast.wallSec},
         {"fast_forward_cycles_per_sec", dense.fastCps},
         {"dense_speedup", dense.speedup},
         {"replay_wall_sec", dense.replay.wallSec},
         {"replay_cycles_per_sec", dense.replayCps},
         {"replay_speedup", dense.replaySpeedup},
         {"replay_over_fast_forward", dense.replayOverFast},
         {"nop_padded_cycles", static_cast<double>(nop.cycles)},
         {"nop_padded_legacy_wall_sec", nop.legacy.wallSec},
         {"nop_padded_legacy_cycles_per_sec", nop.legacyCps},
         {"nop_padded_fast_forward_wall_sec", nop.fast.wallSec},
         {"nop_padded_fast_forward_cycles_per_sec", nop.fastCps},
         {"nop_padded_replay_wall_sec", nop.replay.wallSec},
         {"nop_padded_replay_cycles_per_sec", nop.replayCps},
         {"nop_padded_replay_speedup", nop.replaySpeedup},
         {"speedup", nop.speedup},
         {"identical_results", identical ? 1.0 : 0.0}});
    if (!identical)
        return 1;
    if (min_replay_over_ff > 0.0 &&
        dense.replayOverFast < min_replay_over_ff) {
        std::fprintf(stderr,
                     "replay %.2fx over fast-forward, required "
                     ">= %.2fx\n",
                     dense.replayOverFast, min_replay_over_ff);
        return 1;
    }
    return 0;
}

} // namespace
} // namespace tsp

int
main(int argc, char **argv)
{
    // Strip our flags before google-benchmark parses the rest.
    std::string workload = "resnet50";
    double min_replay_over_ff = 0.0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--e2e=", 6) == 0)
            workload = argv[i] + 6;
        else if (std::strncmp(argv[i], "--min-replay-over-ff=",
                              21) == 0)
            min_replay_over_ff = std::atof(argv[i] + 21);
        else
            argv[out++] = argv[i];
    }
    argc = out;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (workload == "off")
        return 0;
    return tsp::runEndToEnd(workload, min_replay_over_ff);
}
