/**
 * @file
 * E20: deterministic batched serving — amortized weight install with
 * exact cycles(B).
 *
 * The batch-B compiled program installs weights once and repeats the
 * per-sample compute schedule B times; the engine's scheduling state
 * persists across repeats, so sample s+1 overlaps sample s's tail
 * exactly like adjacent layers of one network. The result is a cycle
 * count cycles(B) that is (a) known exactly at compile time — so the
 * admission controller's batch bookings stay provable — and (b)
 * strictly sublinear in B versus B batch-1 replays. This bench pins
 * both claims plus the correctness one: every per-sample output of a
 * batched run is byte-identical to a solo batch-1 serve. Emits
 * BENCH_batch_serving.json; exits nonzero on any divergence.
 */

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "graph/batch_program.hh"
#include "model/resnet.hh"
#include "serve/server.hh"

namespace tsp {
namespace {

using serve::InferenceServer;
using serve::Outcome;
using serve::Result;
using serve::ServerConfig;
using serve::SessionBackend;

constexpr int kH = 8, kW = 8, kC = 4;
constexpr int kMaxBatch = 8;

std::vector<std::int8_t>
randomInput(Rng &rng)
{
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(kH) * kW * kC);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    return data;
}

struct ServePoint
{
    int batchMax = 0;
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    std::uint64_t batches = 0;
    double p99Us = 0.0;
    double throughputRps = 0.0;
    std::uint64_t mismatches = 0;
};

/** One overload point: same stream, batching on or off. */
ServePoint
runServePoint(BatchProgramCache &cache, int batch_max, int n,
              std::uint64_t seed)
{
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.queueCapacity = 256;
    cfg.batchMax = batch_max;
    // Generous join window: under overload the queue depth, not the
    // window, bounds batch formation.
    cfg.batchWindowSec = 64.0 * cache.cyclesByBatch()[0] * 1e-9;
    InferenceServer server(cache, cfg);

    const double service = server.serviceSec();
    const double rho = 2.0; // Overloaded: batching must help.
    const double mean_gap =
        service / (rho * static_cast<double>(cfg.workers));

    Rng rng(seed);
    std::vector<std::future<Result>> futures;
    futures.reserve(static_cast<std::size_t>(n));
    double now = 0.0;
    for (int i = 0; i < n; ++i) {
        now += -std::log(1.0 - rng.nextDouble()) * mean_gap;
        const double deadline = now + 16.0 * service;
        futures.push_back(
            server.submit(randomInput(rng), now, deadline,
                          InferenceServer::OnFull::Block));
    }
    server.drain();

    ServePoint p;
    p.batchMax = server.batchMax();
    for (auto &f : futures) {
        const Result r = f.get();
        if (r.outcome == Outcome::Served)
            ++p.served;
        else
            ++p.rejected;
    }
    const auto snap = server.metricsSnapshot();
    p.batches = snap.counters().get("batches");
    p.p99Us =
        snap.totalUs().count() ? snap.totalUs().quantile(0.99) : 0.0;
    p.throughputRps = snap.throughputRps();
    p.mismatches = snap.predictionMismatches();
    return p;
}

} // namespace
} // namespace tsp

int
main(int argc, char **argv)
{
    using namespace tsp;
    const int n = argc > 1 ? std::atoi(argv[1]) : 200;

    bench::banner(
        "E20: batched serving with amortized weight install",
        "batch-B programs install weights once; cycles(B) is exact "
        "and strictly sublinear, outputs byte-identical to solo");

    Graph g = model::buildTinyNet(3, kH, kW, kC);
    Rng warm_rng(7);
    BatchProgramCache cache(g, randomInput(warm_rng), kMaxBatch);

    const auto wall0 = std::chrono::steady_clock::now();

    // ------------------------------------------------------------
    // 1. The compile-time cycles(B) table.
    // ------------------------------------------------------------
    const auto &cycles = cache.cyclesByBatch();
    const std::uint64_t weight_placements =
        cache.get(1).lw->weightPlacements();
    std::printf("compiled cycles(B), tiny conv net (weights placed "
                "%llu times at every B):\n",
                static_cast<unsigned long long>(weight_placements));
    std::printf("  %5s %10s %12s %14s\n", "B", "cycles", "per-image",
                "vs B x batch-1");
    bool per_image_decreasing = true;
    bool weights_amortized = true;
    for (int b = 1; b <= kMaxBatch; ++b) {
        const double per =
            static_cast<double>(
                cycles[static_cast<std::size_t>(b - 1)]) /
            b;
        const double vs_replay =
            static_cast<double>(
                cycles[static_cast<std::size_t>(b - 1)]) /
            (static_cast<double>(b) * cycles[0]);
        std::printf("  %5d %10llu %12.1f %13.1f%%\n", b,
                    static_cast<unsigned long long>(
                        cycles[static_cast<std::size_t>(b - 1)]),
                    per, 100.0 * vs_replay);
        if (b > 1) {
            per_image_decreasing =
                per_image_decreasing &&
                per < static_cast<double>(cycles[static_cast<
                              std::size_t>(b - 2)]) /
                              (b - 1);
        }
        weights_amortized =
            weights_amortized &&
            cache.get(b).lw->weightPlacements() == weight_placements;
    }

    // ------------------------------------------------------------
    // 2. Bit-identity: batch-B outputs vs B solo serves.
    // ------------------------------------------------------------
    std::uint64_t compared = 0, divergent = 0;
    {
        ChipConfig chip;
        SessionBackend batched(cache, chip);
        SessionBackend solo(cache, chip);
        Rng rng(11);
        for (const int b : {2, 4, 8}) {
            std::vector<std::vector<std::int8_t>> inputs;
            std::vector<const std::vector<std::int8_t> *> ptrs;
            for (int s = 0; s < b; ++s)
                inputs.push_back(randomInput(rng));
            for (const auto &in : inputs)
                ptrs.push_back(&in);
            const RunResult rr = batched.serveBatch(ptrs, 100'000'000);
            const bool cycles_exact =
                rr.completed &&
                rr.cycles == cycles[static_cast<std::size_t>(b - 1)];
            for (int s = 0; s < b; ++s) {
                solo.reset();
                solo.writeInput(inputs[static_cast<std::size_t>(s)]);
                const RunResult sr = solo.runBounded(100'000'000);
                ++compared;
                if (!cycles_exact || !sr.completed ||
                    batched.readSample(s).data !=
                        solo.readOutput().data) {
                    ++divergent;
                }
            }
        }
    }
    std::printf("\nbit-identity: %llu batched samples compared "
                "against solo serves, %llu divergent\n",
                static_cast<unsigned long long>(compared),
                static_cast<unsigned long long>(divergent));

    // ------------------------------------------------------------
    // 3. End-to-end: overloaded serving, batching off vs on.
    // ------------------------------------------------------------
    std::printf("\nopen-loop overload (rho = 2.0, 2 workers, "
                "deadline = arrival + 16 services, %d requests):\n",
                n);
    std::printf("  %9s %6s %8s %8s %9s %10s\n", "batch_max", "served",
                "rejected", "batches", "p99_us", "thpt_rps");
    std::vector<ServePoint> points;
    for (const int bm : {1, 2, 4, 8}) {
        points.push_back(runServePoint(cache, bm, n,
                                       3000 +
                                           static_cast<std::uint64_t>(
                                               bm)));
        const ServePoint &p = points.back();
        std::printf("  %9d %6llu %8llu %8llu %9.2f %10.0f%s\n",
                    p.batchMax,
                    static_cast<unsigned long long>(p.served),
                    static_cast<unsigned long long>(p.rejected),
                    static_cast<unsigned long long>(p.batches),
                    p.p99Us, p.throughputRps,
                    p.mismatches == 0 ? "" : "  MISMATCH");
    }

    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    // JSON artifact for the perf trajectory.
    JsonWriter j;
    j.beginObject();
    j.kv("bench", "batch_serving");
    j.kv("max_batch", kMaxBatch);
    j.kv("weight_placements", weight_placements);
    j.key("cycles_by_batch").beginArray();
    for (const Cycle c : cycles)
        j.value(static_cast<std::uint64_t>(c));
    j.endArray();
    j.kv("samples_compared", compared);
    j.kv("samples_divergent", divergent);
    j.key("serving_points").beginArray();
    for (const auto &p : points) {
        j.beginObject()
            .kv("batch_max", p.batchMax)
            .kv("served", p.served)
            .kv("rejected", p.rejected)
            .kv("batches", p.batches)
            .kv("p99_us", p.p99Us)
            .kv("throughput_rps", p.throughputRps)
            .kv("prediction_mismatches", p.mismatches)
            .endObject();
    }
    j.endArray();
    j.kv("wall_seconds", wall);
    j.endObject();
    const bool wrote =
        writeJsonFile("BENCH_batch_serving.json", j.str());
    std::printf("\n%s BENCH_batch_serving.json (wall %.1f s)\n",
                wrote ? "wrote" : "FAILED to write", wall);

    bool ok = wrote && per_image_decreasing && weights_amortized &&
              divergent == 0;
    std::uint64_t total_mismatches = 0;
    for (const auto &p : points)
        total_mismatches += p.mismatches;
    ok = ok && total_mismatches == 0;
    // Under the same overload, larger batches must serve at least as
    // many requests as batch-1 (the amortized cycles buy capacity).
    ok = ok && points.back().served > points.front().served;

    std::printf("shape check: per-image cycles strictly decreasing "
                "in B, weights placed once, batched outputs "
                "byte-identical, zero mismatches, batching serves "
                "more under overload: %s\n",
                ok ? "yes" : "NO");
    bench::footer();
    return ok ? 0 : 1;
}
