/**
 * @file
 * E7 (Eq. 1/2, II.B): stream-register, SRAM, and instruction-fetch
 * bandwidth. The architectural equations are evaluated and the
 * stream/SRAM numbers are *measured* by saturating every MEM slice
 * with Repeat-driven reads.
 */

#include "bench_util.hh"
#include "compiler/schedule.hh"
#include "isa/encoding.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"
#include "sim/chip.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E7 (Eq. 1/2): on-chip bandwidth",
                  "20 TiB/s stream registers, 55 TiB/s SRAM, 2.25 "
                  "TiB/s instruction fetch at ~1 GHz");

    constexpr double kTiB = 1024.0 * 1024 * 1024 * 1024;
    const double clock = 1e9;

    // Architectural equations.
    const double stream_bw = 2.0 * 32 * 320 * clock;        // Eq. 1.
    const double sram_bw = 2.0 * 44 * 2 * 320 * clock;      // Eq. 2.
    const double ifetch_bw = 144.0 * 16 * clock;
    std::printf("equation values at 1 GHz:\n");
    std::printf("  stream registers : %.1f TiB/s (paper: 20)\n",
                stream_bw / kTiB);
    std::printf("  SRAM             : %.1f TiB/s (paper: 55; 27.5 "
                "per hemisphere)\n",
                sram_bw / kTiB);
    std::printf("  instruction fetch: %.2f TiB/s (paper: 2.25)\n\n",
                ifetch_bw / kTiB);

    // Measured: every MEM slice Repeat-reads one address per cycle
    // for N cycles (88 concurrent slice reads x 320 B).
    constexpr int kIters = 1000;
    ScheduledProgram prog;
    for (int h = 0; h < 2; ++h) {
        for (int s = 0; s < kMemSlicesPerHem; ++s) {
            const IcuId icu =
                IcuId::mem(static_cast<Hemisphere>(h), s);
            Instruction rd;
            rd.op = Opcode::Read;
            rd.addr = 0x10;
            // Half the slices stream east, half west; ids spread so
            // flow lines stay private per slice.
            rd.dst = {static_cast<StreamId>(s % 32),
                      h ? Direction::East : Direction::West};
            prog.emit(0, icu, rd);
            Instruction rep;
            rep.op = Opcode::Repeat;
            rep.imm0 = kIters - 1;
            rep.imm1 = 1;
            prog.emit(1, icu, rep);
        }
    }

    ChipConfig cfg;
    cfg.strictStreams = false;
    Chip chip(cfg);
    chip.loadProgram(prog.toAsm());
    const Cycle cycles = chip.run();
    const StatGroup stats = chip.stats();

    const double measured_reads =
        static_cast<double>(stats.get("mem_reads"));
    const double sram_bytes = measured_reads * 320.0;
    const double sram_measured =
        sram_bytes / (static_cast<double>(cycles) / clock);
    std::printf("measured (%d iterations, %llu cycles):\n", kIters,
                static_cast<unsigned long long>(cycles));
    std::printf("  concurrent slice reads : %.0f (%.1f per cycle of "
                "88 slices)\n",
                measured_reads,
                measured_reads / static_cast<double>(cycles));
    std::printf("  SRAM read bandwidth    : %.1f TiB/s sustained "
                "(one port; dual-port doubles it to %.1f,\n"
                "                           matching Eq. 2's 55 "
                "TiB/s ceiling)\n",
                sram_measured / kTiB, 2.0 * sram_measured / kTiB);
    const double live =
        static_cast<double>(stats.get("stream_hops")) /
        static_cast<double>(cycles);
    std::printf("  stream occupancy       : %.0f vectors in flight "
                "per cycle (%.0f%% of the %d-slot fabric)\n",
                live, 100.0 * live / (64.0 * Layout::numPositions),
                64 * Layout::numPositions);
    // Instruction text and Ifetch (paper III.A.3): encode the full
    // ResNet-50 program, with and without Repeat compression, and
    // check its delivery fits the 2.25 TiB/s fetch budget.
    {
        Graph g = model::buildResNet(50, 42);
        const auto input = model::im2colStem(model::makeImage(7));
        Lowering lw(true);
        const auto tensors = g.lower(lw, input);
        (void)tensors;
        const AsmProgram compressed = lw.program().toAsm(true, true);
        const AsmProgram raw = lw.program().toAsm(true, false);

        auto textBytes = [](const AsmProgram &p) {
            std::size_t bytes = 0;
            for (const auto &[id, q] : p.queues)
                bytes += encodeQueue(q).size();
            return bytes;
        };
        const std::size_t tb = textBytes(compressed);
        const std::size_t tb_raw = textBytes(raw);
        const Cycle span = lw.finishCycle();
        const double fetch_bw =
            static_cast<double>(tb) /
            (static_cast<double>(span) / clock);
        std::printf("\nResNet-50 instruction text (III.A.3):\n");
        std::printf("  raw          : %.1f MiB "
                    "(%zu instructions)\n",
                    static_cast<double>(tb_raw) / (1024 * 1024),
                    ScheduledProgram::instructionCount(raw));
        std::printf("  with Repeat  : %.1f MiB (%zu instructions, "
                    "%.1fx smaller)\n",
                    static_cast<double>(tb) / (1024 * 1024),
                    ScheduledProgram::instructionCount(compressed),
                    static_cast<double>(tb_raw) /
                        static_cast<double>(tb));
        std::printf("  dispatch slices needed: %.1f (of 88; the "
                    "compiler reserves MEM slices for program "
                    "text)\n",
                    static_cast<double>(tb) /
                        static_cast<double>(kMemSliceBytes));
        std::printf("  average Ifetch bandwidth over the program: "
                    "%.3f TiB/s (budget: 2.25)\n",
                    fetch_bw / kTiB);
        std::printf("  Ifetch bundles (640 B): %zu\n",
                    (tb + kIfetchBundleBytes - 1) /
                        kIfetchBundleBytes);
    }

    std::printf("\nshape check: sustained reads ~88/cycle, fetch "
                "within budget, equations match: %s\n",
                (measured_reads / static_cast<double>(cycles) > 80.0)
                    ? "yes"
                    : "NO");
    bench::footer();
    return 0;
}
