/**
 * @file
 * E14 (IV.F, V.c): run-to-run determinism.
 *
 * The TSP has no arbiters, caches, or reactive elements: the same
 * program produces the same cycle count every run, so tail latency
 * equals mean latency. The cache-based baseline's latency moves with
 * replacement state (a stand-in for ASLR, co-runners, prefetchers).
 */

#include <set>

#include "baseline/core.hh"
#include "bench_util.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E14 (IV.F/V.c): run-to-run determinism",
                  "TSP latency is exact and repeatable; conventional "
                  "cache hierarchies are not");

    // TSP: five full inference runs of a small conv net.
    Graph g = model::buildTinyNet(3, 12, 12, 8);
    const int h = 12, w = 12, c = 8;
    Rng rng(1);
    std::vector<std::int8_t> input(
        static_cast<std::size_t>(h) * w * c);
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));

    std::printf("TSP (tiny conv net, 5 runs):\n  cycles:");
    std::set<Cycle> tsp_cycles;
    for (int run = 0; run < 5; ++run) {
        Lowering lw(true);
        const auto t = g.lower(lw, input);
        (void)t;
        InferenceSession sess(lw);
        const Cycle cy = sess.run();
        tsp_cycles.insert(cy);
        std::printf(" %llu", static_cast<unsigned long long>(cy));
    }
    std::printf("\n  distinct values: %zu (variance: %s)\n\n",
                tsp_cycles.size(),
                tsp_cycles.size() == 1 ? "zero" : "NONZERO — bug!");

    // Baseline: the same GEMM under five replacement seeds.
    std::printf("cache-based core (GEMM 64x128x512, 5 runs):\n"
                "  cycles:");
    std::set<std::uint64_t> cpu_cycles;
    std::uint64_t mn = ~0ull, mx = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        baseline::CoreConfig cfg;
        cfg.seed = seed;
        const auto r = baseline::BaselineCore(cfg).runGemm(64, 128,
                                                           512);
        cpu_cycles.insert(r.cycles);
        mn = std::min(mn, r.cycles);
        mx = std::max(mx, r.cycles);
        std::printf(" %llu",
                    static_cast<unsigned long long>(r.cycles));
    }
    std::printf("\n  distinct values: %zu, spread %.2f%%\n",
                cpu_cycles.size(),
                100.0 * static_cast<double>(mx - mn) /
                    static_cast<double>(mn));

    std::printf("\nshape check: TSP zero-variance, baseline "
                "nonzero: %s\n",
                (tsp_cycles.size() == 1 && cpu_cycles.size() > 1)
                    ? "yes"
                    : "NO");
    bench::footer();
    return 0;
}
