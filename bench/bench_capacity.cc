/**
 * @file
 * E13 (IV.E): model capacity at the 320-element vector length.
 *
 * Standard ResNet channel depths (powers of two) leave the 320x320
 * MXM under-filled; the paper trained a widened variant whose depths
 * are multiples of 320 and got +1.6% Top-1 "for the same
 * computational cost and latency". We reproduce the architectural
 * half: the widened model carries ~1.5x the parameters at nearly the
 * same cycle count, because the idle MXM rows/columns were free.
 */

#include "bench_util.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

namespace tsp {
namespace {

struct Result
{
    Cycle cycles;
    std::size_t params;
    std::uint64_t macs;
};

Result
run(bool wide)
{
    Graph g = model::buildResNet(50, 42, wide);
    const auto input = model::im2colStem(model::makeImage(7));
    Lowering lw(true);
    const auto t = g.lower(lw, input);
    (void)t;
    InferenceSession sess(lw);
    Result r;
    r.cycles = sess.run();
    r.params = g.parameterCount();
    r.macs = g.maccCount();
    return r;
}

} // namespace
} // namespace tsp

int
main()
{
    using namespace tsp;
    bench::banner("E13 (IV.E): filling the 320-wide MXM",
                  "ResNet-50 widened to 320-multiple channels: more "
                  "weights (the paper: 75.6 -> 77.2% Top-1) at the "
                  "same latency");

    const Result base = run(/*wide=*/false);
    const Result wide = run(/*wide=*/true);

    std::printf("%-22s %14s %14s\n", "", "ResNet-50",
                "wide (320-mult)");
    std::printf("%-22s %14zu %14zu\n", "parameters", base.params,
                wide.params);
    std::printf("%-22s %14.2f %14.2f\n", "GMACs",
                static_cast<double>(base.macs) * 1e-9,
                static_cast<double>(wide.macs) * 1e-9);
    std::printf("%-22s %14llu %14llu\n", "cycles",
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(wide.cycles));
    const double param_ratio = static_cast<double>(wide.params) /
                               static_cast<double>(base.params);
    const double cycle_ratio = static_cast<double>(wide.cycles) /
                               static_cast<double>(base.cycles);
    std::printf("%-22s %14s %13.2fx\n", "parameter ratio", "1.00x",
                param_ratio);
    std::printf("%-22s %14s %13.2fx\n", "cycle ratio", "1.00x",
                cycle_ratio);
    std::printf("\nshape check: >1.3x parameters for <1.15x cycles: "
                "%s\n",
                (param_ratio > 1.3 && cycle_ratio < 1.15) ? "yes"
                                                          : "NO");
    bench::footer();
    return 0;
}
