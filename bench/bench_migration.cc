/**
 * @file
 * E22: mid-batch snapshot migration vs full retry.
 *
 * Same request, same model, same random uncorrectable fault
 * environment (per-access double-bit strikes), two recovery
 * policies:
 *
 *   - migrate: restore the last pre-fault snapshot onto a rebuilt
 *     chip and resume the condemned batch mid-run, falling back to
 *     a full retry only when no usable snapshot exists;
 *   - retry: re-run the whole batch from cycle zero on a rebuilt
 *     chip until an attempt survives.
 *
 * Both must serve bit-exact results; migration must burn strictly
 * fewer total chip cycles (lifetime accounting, condemned engines
 * included) because each recovery re-executes only the span since
 * the last snapshot instead of the whole run. Exits nonzero if
 * either policy corrupts a serve or migration loses the cycle
 * comparison. Emits BENCH_migration.json.
 */

#include <chrono>
#include <cstdlib>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "model/resnet.hh"
#include "serve/server.hh"

namespace tsp {
namespace {

using serve::InferenceServer;
using serve::Outcome;
using serve::Result;
using serve::ServerConfig;

struct PolicyResult
{
    std::uint64_t served = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t retries = 0;
    std::uint64_t migrations = 0;
    std::uint64_t machineChecks = 0;
    Cycle totalCycles = 0;
};

PolicyResult
runPolicy(Graph &g, Lowering &lw, const LoweredTensor &in_slot,
          const LoweredTensor &out_slot, bool migrate, int n)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.chip.fault.seed = 0x5151ull;
    cfg.chip.fault.streamRate = 2e-4;
    cfg.chip.fault.doubleBitFraction = 1.0;
    // Same retry budget both ways; the migrating server only falls
    // back to a full retry when no snapshot precedes the fault or
    // the per-batch migration bound is exhausted.
    cfg.maxRetries = 64;
    cfg.migrateOnMachineCheck = migrate;
    InferenceServer server(lw, in_slot, out_slot, cfg);

    const ActTensor &in = in_slot.t;
    const std::size_t in_bytes =
        static_cast<std::size_t>(in.height) * in.width * in.channels;
    Rng rng(42);
    std::vector<std::vector<std::int8_t>> inputs;
    std::vector<std::future<Result>> futures;
    for (int i = 0; i < n; ++i) {
        std::vector<std::int8_t> data(in_bytes);
        for (auto &v : data)
            v = static_cast<std::int8_t>(rng.intIn(-100, 100));
        inputs.push_back(data);
        futures.push_back(server.submit(
            std::move(data), static_cast<double>(i) * 1e-7,
            /*deadline=*/0.0, InferenceServer::OnFull::Block));
    }
    server.drain();

    PolicyResult p;
    for (int i = 0; i < n; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        if (r.outcome != Outcome::Served)
            continue;
        ++p.served;
        ref::QTensor qin(in.height, in.width, in.channels);
        qin.data = inputs[static_cast<std::size_t>(i)];
        const ref::QTensor want =
            g.runReference(qin).at(g.outputNode());
        if (r.output.data != want.data)
            ++p.corrupted;
    }
    const auto snap = server.metricsSnapshot();
    p.retries = snap.counters().get("retries");
    p.migrations = snap.counters().get("migrations");
    p.machineChecks = snap.counters().get("machine_checks");
    p.totalCycles = server.totalChipCycles();
    return p;
}

} // namespace
} // namespace tsp

int
main(int argc, char **argv)
{
    using namespace tsp;
    const int n = argc > 1 ? std::atoi(argv[1]) : 12;

    bench::banner(
        "E22: mid-batch migration vs full retry (recovery cost)",
        "restore the last pre-fault snapshot and resume, instead of "
        "re-running the condemned batch from cycle zero");

    Graph g = model::buildTinyNet(3, 8, 8, 4);
    Rng rng(7);
    std::vector<std::int8_t> input(8 * 8 * 4);
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    Lowering lw(true);
    const auto tensors = g.lower(lw, input);

    const auto wall0 = std::chrono::steady_clock::now();
    const PolicyResult mig =
        runPolicy(g, lw, tensors.at(0), tensors.at(g.outputNode()),
                  /*migrate=*/true, n);
    const PolicyResult ret =
        runPolicy(g, lw, tensors.at(0), tensors.at(g.outputNode()),
                  /*migrate=*/false, n);
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    std::printf("model: tiny conv net, %llu cycles per inference; "
                "%d requests per policy, double-bit stream strikes "
                "at 2e-4/access\n\n",
                static_cast<unsigned long long>(lw.finishCycle()), n);
    std::printf("  policy   served  mchecks recoveries  "
                "total_chip_cycles\n");
    std::printf("  migrate  %6llu  %7llu %10llu  %17llu\n",
                static_cast<unsigned long long>(mig.served),
                static_cast<unsigned long long>(mig.machineChecks),
                static_cast<unsigned long long>(mig.migrations),
                static_cast<unsigned long long>(mig.totalCycles));
    std::printf("  retry    %6llu  %7llu %10llu  %17llu\n",
                static_cast<unsigned long long>(ret.served),
                static_cast<unsigned long long>(ret.machineChecks),
                static_cast<unsigned long long>(ret.retries),
                static_cast<unsigned long long>(ret.totalCycles));

    JsonWriter j;
    j.beginObject();
    j.kv("bench", "migration");
    j.kv("requests", static_cast<std::int64_t>(n));
    j.kv("service_cycles",
         static_cast<std::uint64_t>(lw.finishCycle()));
    j.key("migrate")
        .beginObject()
        .kv("served", mig.served)
        .kv("machine_checks", mig.machineChecks)
        .kv("migrations", mig.migrations)
        .kv("total_chip_cycles",
            static_cast<std::uint64_t>(mig.totalCycles))
        .endObject();
    j.key("retry")
        .beginObject()
        .kv("served", ret.served)
        .kv("machine_checks", ret.machineChecks)
        .kv("retries", ret.retries)
        .kv("total_chip_cycles",
            static_cast<std::uint64_t>(ret.totalCycles))
        .endObject();
    j.kv("wall_seconds", wall);
    j.endObject();
    const bool wrote = writeJsonFile("BENCH_migration.json", j.str());
    std::printf("\n%s BENCH_migration.json (wall %.1f s)\n",
                wrote ? "wrote" : "FAILED to write", wall);

    // Shape checks: both policies serve everything bit-exactly,
    // recoveries actually happened (else the comparison is vacuous),
    // and migration wins the chip-cycle comparison.
    const bool ok =
        wrote && mig.served == static_cast<std::uint64_t>(n) &&
        ret.served == static_cast<std::uint64_t>(n) &&
        mig.corrupted == 0 && ret.corrupted == 0 &&
        mig.migrations > 0 && ret.retries > 0 &&
        mig.totalCycles < ret.totalCycles;
    std::printf("shape check: bit-exact serves both policies, "
                "migration beats full retry in chip cycles: %s\n",
                ok ? "yes" : "NO");
    bench::footer();
    return ok ? 0 : 1;
}
