/**
 * @file
 * E9 (Fig. 6 / II.F): staggered SIMD execution and scalable vector
 * length.
 *
 * An instruction enters a slice's bottom tile and propagates north
 * one superlane per cycle, so a full 320-element vector completes
 * N_superlanes cycles after a 16-element one — and powering down
 * superlanes (Config) shortens the pipeline and the static power in
 * lockstep (energy proportionality).
 */

#include "bench_util.hh"
#include "compiler/schedule.hh"
#include "sim/chip.hh"

int
main()
{
    using namespace tsp;
    bench::banner("E9 (Fig. 6 / II.F): stagger and scalable vectors",
                  "superlane s lags s cycles; VL scales 16..320 in "
                  "16-lane steps, powering down unused tiles");

    // Eq. 4 with the tile-depth term: the same read-add-write chain
    // under different active-superlane counts.
    std::printf("%-12s %-12s %16s %14s\n", "superlanes", "VL(bytes)",
                "Eq.4 T(cycles)", "static power");
    for (const int n : {1, 2, 4, 8, 16, 20}) {
        ChipConfig cfg;
        cfg.activeSuperlanes = n;
        Chip chip(cfg);
        chip.loadProgram(AsmProgram{});
        chip.step();
        const Cycle t = instructionTime(
            Opcode::Read, Layout::memPos(Hemisphere::West, 0),
            Layout::vxm, n);
        std::printf("%-12d %-12d %16llu %11.1f W\n", n,
                    cfg.vectorLength(),
                    static_cast<unsigned long long>(t),
                    chip.power().averagePowerW());
    }

    // The stagger itself: one vector's superlanes complete at t + s.
    std::printf("\nper-superlane completion of one 320-byte MEM read "
                "(dispatch at t = 0):\n  ");
    for (int s = 0; s < kSuperlanes; ++s) {
        std::printf("%llu%s",
                    static_cast<unsigned long long>(
                        opTiming(Opcode::Read).dFunc +
                        static_cast<Cycle>(s)),
                    s + 1 < kSuperlanes ? " " : "\n");
    }
    std::printf("(the diagonal of Fig. 6: each 16-lane superlane "
                "lags its southern neighbor by one cycle)\n");

    const Cycle t20 = instructionTime(Opcode::Read, 46, 47, 20);
    const Cycle t1 = instructionTime(Opcode::Read, 46, 47, 1);
    std::printf("\nshape check: T(20 superlanes) - T(1) == 19: %s\n",
                t20 - t1 == 19 ? "yes" : "NO");
    bench::footer();
    return 0;
}
