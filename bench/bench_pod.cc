/**
 * @file
 * E15c: pod-scale fast-forward — the conservative-lookahead scheduler
 * (Pod::runAllBounded) against lock-step stepping on the ring
 * all-reduce, plus a multi-chip serving sweep.
 *
 * Three claims checked, artifacts in BENCH_pod.json:
 *  1. Collective completion cycles scale linearly with ring size and
 *     are identical under both schedulers (divergence exits nonzero —
 *     this is the bit-identity contract, not a perf number).
 *  2. Fast-forward beats lock-step wall-clock on the (mostly idle)
 *     collective schedule — expect well over 2x.
 *  3. A pool of pod workers serves the collective with exact
 *     admission bookings: zero prediction mismatches.
 */

#include <chrono>
#include <vector>

#include "bench_util.hh"
#include "c2c/collective.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "serve/server.hh"

namespace {

using namespace tsp;

void
seedLocals(Pod &pod, std::uint64_t seed)
{
    Rng rng(seed);
    for (int c = 0; c < pod.size(); ++c) {
        Vec320 v;
        for (int l = 0; l < kLanes; ++l) {
            v.bytes[static_cast<std::size_t>(l)] =
                static_cast<std::uint8_t>(
                    static_cast<std::int8_t>(rng.intIn(-20, 20)));
        }
        pod.chip(c)
            .mem(Hemisphere::East, AllReducePlan::kSlice)
            .backdoorWrite(AllReducePlan::kLocalAddr, v);
    }
}

void
loadPrograms(Pod &pod, std::vector<ScheduledProgram> &programs)
{
    for (int c = 0; c < pod.size(); ++c) {
        pod.chip(c).loadProgram(
            programs[static_cast<std::size_t>(c)].toAsm());
    }
}

/** Wall-clock seconds for @p reps back-to-back collectives. */
double
timeReps(int chips, Cycle wire, int reps, bool fast_forward,
         Cycle &cycles_out)
{
    Pod pod(chips, wire);
    seedLocals(pod, 7);
    std::vector<ScheduledProgram> programs;
    buildRingAllReduce(pod, programs);

    const auto t0 = std::chrono::steady_clock::now();
    Cycle prev = 0;
    for (int r = 0; r < reps; ++r) {
        loadPrograms(pod, programs);
        if (fast_forward) {
            if (!pod.runAllBounded())
                fatal("bench_pod: bounded run failed");
        } else {
            while (!pod.allDone())
                pod.stepAll();
        }
        prev = pod.now();
    }
    const auto t1 = std::chrono::steady_clock::now();
    cycles_out = prev;
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    bench::banner("E15c: pod fast-forward and multi-chip serving",
                  "static schedules make conservative lookahead "
                  "exact: pods fast-forward with bit-identical "
                  "results, and pod serving books exact deadlines");

    // 1. Scaling, both schedulers — cycles must match exactly.
    std::printf("%-8s %12s %12s %8s\n", "chips", "lock cycles",
                "fast cycles", "equal?");
    bool diverged = false;
    Cycle cycles_n2 = 0, cycles_n8 = 0;
    for (const int n : {2, 4, 8}) {
        Pod lock(n, /*wire_latency=*/25);
        Pod fast(n, /*wire_latency=*/25);
        seedLocals(lock, static_cast<std::uint64_t>(n));
        seedLocals(fast, static_cast<std::uint64_t>(n));
        std::vector<ScheduledProgram> programs;
        buildRingAllReduce(lock, programs);
        loadPrograms(lock, programs);
        loadPrograms(fast, programs);
        while (!lock.allDone())
            lock.stepAll();
        if (!fast.runAllBounded())
            fatal("bench_pod: bounded run failed");
        const bool equal = lock.now() == fast.now();
        diverged = diverged || !equal;
        for (int c = 0; c < n; ++c) {
            const Vec320 a =
                lock.chip(c)
                    .mem(Hemisphere::East, AllReducePlan::kSlice)
                    .backdoorRead(AllReducePlan::kResultAddr);
            const Vec320 b =
                fast.chip(c)
                    .mem(Hemisphere::East, AllReducePlan::kSlice)
                    .backdoorRead(AllReducePlan::kResultAddr);
            if (a.bytes != b.bytes)
                diverged = true;
        }
        if (n == 2)
            cycles_n2 = fast.now();
        if (n == 8)
            cycles_n8 = fast.now();
        std::printf("%-8d %12llu %12llu %8s\n", n,
                    static_cast<unsigned long long>(lock.now()),
                    static_cast<unsigned long long>(fast.now()),
                    equal ? "yes" : "NO");
    }

    // 2. Wall-clock: lock-step vs conservative lookahead.
    const int kChips = 8;
    const Cycle kWire = 64;
    const int kReps = 20;
    Cycle c_lock = 0, c_fast = 0;
    const double t_lock =
        timeReps(kChips, kWire, kReps, /*fast_forward=*/false,
                 c_lock);
    const double t_fast =
        timeReps(kChips, kWire, kReps, /*fast_forward=*/true,
                 c_fast);
    diverged = diverged || c_lock != c_fast;
    const double speedup = t_fast > 0.0 ? t_lock / t_fast : 0.0;
    std::printf("\nwall-clock, %d-chip ring, wire %llu, %d "
                "collectives:\n",
                kChips, static_cast<unsigned long long>(kWire),
                kReps);
    std::printf("  lock-step    %8.3f ms  (%llu cycles)\n",
                t_lock * 1e3,
                static_cast<unsigned long long>(c_lock));
    std::printf("  fast-forward %8.3f ms  (%llu cycles)\n",
                t_fast * 1e3,
                static_cast<unsigned long long>(c_fast));
    std::printf("  speedup      %8.1fx\n", speedup);

    // 3. Pod-serving sweep: exact bookings at every pod size.
    std::printf("\n%-8s %10s %10s %10s %12s\n", "pod", "service",
                "served", "rejected", "mismatches");
    std::uint64_t total_mismatches = 0, served_n4 = 0;
    for (const int n : {2, 4}) {
        serve::ServerConfig cfg;
        cfg.workers = 2;
        const Cycle service = serve::PodBackend::serviceCycles(
            n, /*wire_latency=*/25, cfg.chip);
        const ChipConfig chip_cfg = cfg.chip;
        const Cycle wire = 25;
        serve::InferenceServer server(
            [n, wire,
             chip_cfg](int) -> std::unique_ptr<serve::Backend> {
                return std::make_unique<serve::PodBackend>(
                    n, wire, chip_cfg);
            },
            service, cfg);
        Rng rng(42);
        const double svc = server.serviceSec();
        double now = 0.0;
        std::vector<std::future<serve::Result>> futures;
        for (int i = 0; i < 60; ++i) {
            now += svc * 0.4; // Offered load 1.25x pool capacity.
            std::vector<std::int8_t> data(
                serve::PodBackend::inputBytes(n));
            for (auto &v : data)
                v = static_cast<std::int8_t>(rng.intIn(-90, 90));
            futures.push_back(server.submit(
                std::move(data), now, now + 6.0 * svc,
                serve::InferenceServer::OnFull::Block));
        }
        server.drain();
        const auto snap = server.metricsSnapshot();
        const std::uint64_t served = snap.counters().get("served");
        if (n == 4)
            served_n4 = served;
        total_mismatches += snap.predictionMismatches();
        std::printf("%-8d %10llu %10llu %10llu %12llu\n", n,
                    static_cast<unsigned long long>(service),
                    static_cast<unsigned long long>(served),
                    static_cast<unsigned long long>(
                        snap.counters().get("rejected_deadline")),
                    static_cast<unsigned long long>(
                        snap.predictionMismatches()));
    }

    std::printf("\nshape check: schedulers bit-identical and "
                "bookings exact: %s\n",
                (!diverged && total_mismatches == 0) ? "yes" : "NO");

    bench::writeJson(
        "BENCH_pod.json",
        {{"allreduce_cycles_2chip",
          static_cast<double>(cycles_n2)},
         {"allreduce_cycles_8chip",
          static_cast<double>(cycles_n8)},
         {"fast_forward_speedup", speedup},
         {"serving_served_4chip",
          static_cast<double>(served_n4)},
         {"serving_prediction_mismatches",
          static_cast<double>(total_mismatches)},
         {"diverged", diverged ? 1.0 : 0.0}});
    bench::footer();
    return (diverged || total_mismatches != 0) ? 1 : 0;
}
