/**
 * @file
 * tsp-serve: demo CLI for the deterministic-deadline serving layer.
 *
 * Compiles a model once, spins up a pool of simulated chips, replays
 * an open-loop Poisson request stream against it and prints the
 * serving report (per-outcome counts, latency percentiles on the
 * virtual chip timeline, throughput), optionally as JSON.
 *
 *   tsp-serve [options]
 *     --workers N       engines in the pool          (default 2)
 *     --pod N           each engine is an N-chip ring pod serving
 *                       the int8 ring all-reduce collective instead
 *                       of the compiled model (N >= 2; 0 = off)
 *     --wire N          pod link wire latency, cycles (default 17)
 *     --requests N      requests to submit           (default 200)
 *     --rho R           offered load vs pool capacity (default 1.2)
 *     --slack S         deadline = arrival + S * service; 0 = none
 *                                                    (default 4)
 *     --queue N         bounded queue capacity       (default 64)
 *     --model-seed S    tiny-net weight seed         (default 3)
 *     --seed S          request-stream seed          (default 1)
 *     --json FILE       also write the report as JSON
 *     --fault-rate R    per-access bit-upset rate on MEM reads,
 *                       MEM writes, stream hops and (with --pod)
 *                       C2C link flight              (default 0)
 *     --fault-double F  fraction of upsets that strike a second bit
 *                       in the same word (uncorrectable)
 *                                                    (default 0)
 *     --fault-seed S    fault-injector seed          (default cfg)
 *     --retries N       retry budget after a machine check
 *                                                    (default 2)
 *     --migrate-on-mc   recover machine-checked batches by restoring
 *                       the last pre-fault snapshot onto a rebuilt
 *                       engine and resuming, instead of a full retry
 *     --snapshot-every N
 *                       snapshot cadence in cycles (default with
 *                       --migrate-on-mc: service cycles / 8)
 *     --batch-max N     largest batch submit() may form; compiles
 *                       one batch-b program per b = 1..N so the
 *                       admission controller books the exact
 *                       cycles(b) (default 1 = batching off)
 *     --batch-window-us U
 *                       how long (virtual us) after a batch
 *                       leader's arrival later requests may still
 *                       join its batch            (default 0)
 *
 * Example:
 *   tsp-serve --workers 4 --requests 400 --rho 1.5 --slack 3 \
 *             --json serve_report.json
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "c2c/collective.hh"
#include "common/rng.hh"
#include "model/resnet.hh"
#include "serve/server.hh"

namespace {

using namespace tsp;

void
usage()
{
    std::fprintf(stderr,
                 "usage: tsp-serve [--workers N] [--pod N] "
                 "[--wire N] [--requests N] "
                 "[--rho R] [--slack S] [--queue N] "
                 "[--model-seed S] [--seed S] [--json FILE] "
                 "[--fault-rate R] [--fault-double F] "
                 "[--fault-seed S] [--retries N] "
                 "[--migrate-on-mc] [--snapshot-every N] "
                 "[--batch-max N] [--batch-window-us U]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    int workers = 2;
    int pod_chips = 0;
    Cycle wire_latency = 17;
    int requests = 200;
    double rho = 1.2;
    double slack_services = 4.0;
    std::size_t queue_cap = 64;
    std::uint64_t model_seed = 3;
    std::uint64_t seed = 1;
    const char *json_path = nullptr;
    double fault_rate = 0.0;
    double fault_double = 0.0;
    bool have_fault_seed = false;
    std::uint64_t fault_seed = 0;
    int retries = 2;
    bool migrate_on_mc = false;
    long snapshot_every = 0;
    int batch_max = 1;
    double batch_window_us = 0.0;

    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--workers")) {
            workers = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--pod")) {
            pod_chips = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--wire")) {
            wire_latency = static_cast<Cycle>(std::atol(next()));
        } else if (!std::strcmp(argv[i], "--requests")) {
            requests = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--rho")) {
            rho = std::atof(next());
        } else if (!std::strcmp(argv[i], "--slack")) {
            slack_services = std::atof(next());
        } else if (!std::strcmp(argv[i], "--queue")) {
            queue_cap = static_cast<std::size_t>(std::atol(next()));
        } else if (!std::strcmp(argv[i], "--model-seed")) {
            model_seed =
                static_cast<std::uint64_t>(std::atoll(next()));
        } else if (!std::strcmp(argv[i], "--seed")) {
            seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (!std::strcmp(argv[i], "--json")) {
            json_path = next();
        } else if (!std::strcmp(argv[i], "--fault-rate")) {
            fault_rate = std::atof(next());
        } else if (!std::strcmp(argv[i], "--fault-double")) {
            fault_double = std::atof(next());
        } else if (!std::strcmp(argv[i], "--fault-seed")) {
            fault_seed =
                static_cast<std::uint64_t>(std::atoll(next()));
            have_fault_seed = true;
        } else if (!std::strcmp(argv[i], "--retries")) {
            retries = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--migrate-on-mc")) {
            migrate_on_mc = true;
        } else if (!std::strcmp(argv[i], "--snapshot-every")) {
            snapshot_every = std::atol(next());
        } else if (!std::strcmp(argv[i], "--batch-max")) {
            batch_max = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--batch-window-us")) {
            batch_window_us = std::atof(next());
        } else {
            usage();
            return 2;
        }
    }
    if (workers < 1 || requests < 1 || rho <= 0.0 ||
        fault_rate < 0.0 || fault_rate > 1.0 || fault_double < 0.0 ||
        fault_double > 1.0 || retries < 0 || snapshot_every < 0 ||
        pod_chips == 1 ||
        pod_chips < 0 || batch_max < 1 || batch_window_us < 0.0 ||
        (pod_chips >= 2 && batch_max > AllReducePlan::kMaxBatch)) {
        usage();
        return 2;
    }

    // Compile once; the pool shares the lowered program and image.
    const int h = 8, w = 8, c = 4;
    Graph g = model::buildTinyNet(model_seed, h, w, c);
    Rng rng(seed);
    std::vector<std::int8_t> warm(
        static_cast<std::size_t>(h) * w * c);
    for (auto &v : warm)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    Lowering lw(/*pipelined=*/true);
    const auto tensors = g.lower(lw, warm);

    serve::ServerConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = queue_cap;
    cfg.maxRetries = retries;
    cfg.migrateOnMachineCheck = migrate_on_mc;
    cfg.snapshotEveryCycles = static_cast<Cycle>(snapshot_every);
    cfg.batchMax = batch_max;
    cfg.batchWindowSec = batch_window_us * 1e-6;
    cfg.chip.fault.memReadRate = fault_rate;
    cfg.chip.fault.memWriteRate = fault_rate;
    cfg.chip.fault.streamRate = fault_rate;
    cfg.chip.fault.c2cRate = fault_rate;
    cfg.chip.fault.doubleBitFraction = fault_double;
    if (have_fault_seed)
        cfg.chip.fault.seed = fault_seed;

    std::unique_ptr<BatchProgramCache> cache;
    std::unique_ptr<serve::InferenceServer> server_p;
    if (pod_chips >= 2) {
        // Each worker owns an N-chip ring pod serving the statically
        // scheduled all-reduce; the collective's exact cycles(b) are
        // calibrated once per batch size on a fault-free pod.
        const std::vector<Cycle> table =
            serve::PodBackend::serviceCyclesTable(
                pod_chips, wire_latency, cfg.chip, batch_max);
        const ChipConfig chip_cfg = cfg.chip;
        server_p = std::make_unique<serve::InferenceServer>(
            [pod_chips, wire_latency, chip_cfg,
             batch_max](int) -> std::unique_ptr<serve::Backend> {
                return std::make_unique<serve::PodBackend>(
                    pod_chips, wire_latency, chip_cfg, batch_max);
            },
            table, cfg);
    } else if (batch_max > 1) {
        // Compile one batch-b program per b <= batch_max: weights
        // install once per batch, per-sample activations repeat.
        cache = std::make_unique<BatchProgramCache>(g, warm,
                                                    batch_max);
        server_p =
            std::make_unique<serve::InferenceServer>(*cache, cfg);
    } else {
        server_p = std::make_unique<serve::InferenceServer>(
            lw, tensors.at(0), tensors.at(g.outputNode()), cfg);
    }
    serve::InferenceServer &server = *server_p;
    if (server.batchMax() > 1) {
        std::printf("batching: up to %d samples per batch, join "
                    "window %.3f us; exact cycles(b):",
                    server.batchMax(), batch_window_us);
        for (int b = 1; b <= server.batchMax(); ++b)
            std::printf(" %llu",
                        static_cast<unsigned long long>(
                            server.admission().serviceCycles(b)));
        std::printf("\n");
    }

    if (pod_chips >= 2) {
        std::printf("collective: %d-chip ring all-reduce, wire "
                    "latency %llu — %llu cycles = %.3f us per "
                    "request, known before execution\n",
                    pod_chips,
                    static_cast<unsigned long long>(wire_latency),
                    static_cast<unsigned long long>(
                        server.serviceCycles()),
                    server.serviceSec() * 1e6);
        std::printf("pool: %d pod%s of %d chips, queue capacity %zu, "
                    "offered load %.2f x capacity%s\n",
                    workers, workers == 1 ? "" : "s", pod_chips,
                    queue_cap, rho,
                    slack_services > 0.0 ? "" : ", no deadlines");
    } else {
        std::printf("compiled model: %llu cycles = %.3f us per "
                    "inference, known before execution\n",
                    static_cast<unsigned long long>(
                        server.serviceCycles()),
                    server.serviceSec() * 1e6);
        std::printf("pool: %d chip%s, queue capacity %zu, offered "
                    "load %.2f x capacity%s\n",
                    workers, workers == 1 ? "" : "s", queue_cap, rho,
                    slack_services > 0.0 ? "" : ", no deadlines");
    }
    if (fault_rate > 0.0) {
        std::printf("fault injection: %.3g upsets/access, "
                    "double-bit fraction %.3g, retry budget %d%s\n",
                    fault_rate, fault_double, retries,
                    migrate_on_mc ? ", mid-batch migration on" : "");
    }
    std::printf("\n");

    const double service = server.serviceSec();
    const double mean_gap =
        service / (rho * static_cast<double>(workers));
    const std::size_t input_len =
        pod_chips >= 2 ? serve::PodBackend::inputBytes(pod_chips)
                       : static_cast<std::size_t>(h) * w * c;
    double now = 0.0;
    std::vector<std::future<serve::Result>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
        now += -std::log(1.0 - rng.nextDouble()) * mean_gap;
        std::vector<std::int8_t> data(input_len);
        for (auto &v : data)
            v = static_cast<std::int8_t>(rng.intIn(-100, 100));
        const double deadline =
            slack_services > 0.0
                ? now + slack_services * service
                : 0.0;
        futures.push_back(server.submit(
            std::move(data), now, deadline,
            serve::InferenceServer::OnFull::Block));
    }
    server.drain();

    // A few sample requests, then the aggregate report.
    std::printf("sample of outcomes:\n");
    const std::size_t step =
        std::max<std::size_t>(1, futures.size() / 8);
    for (std::size_t i = 0; i < futures.size(); i += step) {
        const serve::Result r = futures[i].get();
        std::printf("  req %4llu  %-19s wait %7.3f us  total "
                    "%7.3f us  cycles %llu/%llu\n",
                    static_cast<unsigned long long>(r.id),
                    serve::outcomeName(r.outcome),
                    r.queueSec() * 1e6, r.latencySec() * 1e6,
                    static_cast<unsigned long long>(
                        r.measuredCycles),
                    static_cast<unsigned long long>(
                        r.predictedCycles));
    }

    const auto snap = server.metricsSnapshot();
    std::printf("\nreport:\n");
    for (const auto &[name, v] : snap.counters().all()) {
        std::printf("  %-22s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
    }
    if (snap.totalUs().count() > 0) {
        std::printf("  latency p50/p95/p99    %.2f / %.2f / %.2f us\n",
                    snap.totalUs().quantile(0.50),
                    snap.totalUs().quantile(0.95),
                    snap.totalUs().quantile(0.99));
        std::printf("  queue wait p50/p99     %.2f / %.2f us\n",
                    snap.queueUs().quantile(0.50),
                    snap.queueUs().quantile(0.99));
        std::printf("  throughput             %.0f req/s (virtual)\n",
                    snap.throughputRps());
    }
    std::printf("  prediction mismatches  %llu\n",
                static_cast<unsigned long long>(
                    snap.predictionMismatches()));

    if (json_path) {
        if (!writeJsonFile(json_path, server.metricsJson())) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 1;
        }
        std::printf("\nwrote %s\n", json_path);
    }

    // Exit nonzero when any request actually failed, not only on
    // prediction mismatches: a run whose retry budget was exhausted
    // by machine checks (or that hit a cycle-budget failure) must be
    // visible to scripts and CI, not silently exit 0.
    const std::uint64_t failed_mc =
        snap.counters().get("failed_machine_check");
    const std::uint64_t failed = snap.counters().get("failed");
    if (failed_mc > 0 || failed > 0) {
        std::fprintf(stderr,
                     "\nFAILED: %llu request%s exhausted the "
                     "machine-check retry budget, %llu failed "
                     "outright (of %llu submitted)\n",
                     static_cast<unsigned long long>(failed_mc),
                     failed_mc == 1 ? "" : "s",
                     static_cast<unsigned long long>(failed),
                     static_cast<unsigned long long>(
                         snap.counters().get("submitted")));
        return 1;
    }
    return snap.predictionMismatches() == 0 ? 0 : 1;
}
