/**
 * @file
 * tsp-serve: demo CLI for the deterministic-deadline serving layer.
 *
 * Compiles a model once, spins up a pool of simulated chips, replays
 * an open-loop Poisson request stream against it and prints the
 * serving report (per-outcome counts, latency percentiles on the
 * virtual chip timeline, throughput), optionally as JSON.
 *
 *   tsp-serve [options]
 *     --workers N       engines in the pool          (default 2)
 *     --pod N           each engine is an N-chip ring pod serving
 *                       the int8 ring all-reduce collective instead
 *                       of the compiled model (N >= 2; 0 = off)
 *     --wire N          pod link wire latency, cycles (default 17)
 *     --requests N      requests to submit           (default 200)
 *     --rho R           offered load vs pool capacity (default 1.2)
 *     --slack S         deadline = arrival + S * service; 0 = none
 *                                                    (default 4)
 *     --queue N         bounded queue capacity       (default 64)
 *     --model-seed S    tiny-net weight seed         (default 3)
 *     --seed S          request-stream seed          (default 1)
 *     --json FILE       also write the report as JSON
 *     --fault-rate R    per-access bit-upset rate on MEM reads,
 *                       MEM writes, stream hops and (with --pod)
 *                       C2C link flight              (default 0)
 *     --fault-double F  fraction of upsets that strike a second bit
 *                       in the same word (uncorrectable)
 *                                                    (default 0)
 *     --fault-seed S    fault-injector seed          (default cfg)
 *     --retries N       retry budget after a machine check
 *                                                    (default 2)
 *     --migrate-on-mc   recover machine-checked batches by restoring
 *                       the last pre-fault snapshot onto a rebuilt
 *                       engine and resuming, instead of a full retry
 *     --snapshot-every N
 *                       snapshot cadence in cycles (default with
 *                       --migrate-on-mc: service cycles / 8)
 *     --batch-max N     largest batch submit() may form; compiles
 *                       one batch-b program per b = 1..N so the
 *                       admission controller books the exact
 *                       cycles(b) (default 1 = batching off)
 *     --batch-window-us U
 *                       how long (virtual us) after a batch
 *                       leader's arrival later requests may still
 *                       join its batch            (default 0)
 *     --model NAME=SEED[:HxWxC]
 *                       register a model family (repeatable). With
 *                       one or more --model flags the server runs
 *                       multi-model: one registry holds every
 *                       family, requests spread across them, and
 *                       weight swaps are booked exactly into
 *                       admission (default shape 8x8x4)
 *     --registry-mb N   compiled-program byte budget, MiB; LRU
 *                       eviction (with eager trace invalidation)
 *                       above it               (default unbounded)
 *     --hipri F         fraction of requests submitted as the
 *                       high-priority tenant class (priority 1,
 *                       deadline slack halved)       (default 0)
 *     --preempt         allow a high-priority arrival that would
 *                       miss its deadline to preempt the open
 *                       batch (victims re-queued, never dropped)
 *
 * Examples:
 *   tsp-serve --workers 4 --requests 400 --rho 1.5 --slack 3 \
 *             --json serve_report.json
 *   tsp-serve --model a=3 --model b=11:8x8x4 --batch-max 4 \
 *             --hipri 0.2 --preempt --requests 400
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "c2c/collective.hh"
#include "common/rng.hh"
#include "model/resnet.hh"
#include "serve/server.hh"

namespace {

using namespace tsp;

void
usage()
{
    std::fprintf(stderr,
                 "usage: tsp-serve [--workers N] [--pod N] "
                 "[--wire N] [--requests N] "
                 "[--rho R] [--slack S] [--queue N] "
                 "[--model-seed S] [--seed S] [--json FILE] "
                 "[--fault-rate R] [--fault-double F] "
                 "[--fault-seed S] [--retries N] "
                 "[--migrate-on-mc] [--snapshot-every N] "
                 "[--batch-max N] [--batch-window-us U] "
                 "[--model NAME=SEED[:HxWxC]]... [--registry-mb N] "
                 "[--hipri F] [--preempt]\n");
}

/** One --model flag: NAME=SEED[:HxWxC]. */
struct ModelArg
{
    std::string name;
    std::uint64_t seed = 0;
    int h = 8, w = 8, c = 4;
};

bool
parseModelArg(const char *s, ModelArg &out)
{
    const char *eq = std::strchr(s, '=');
    if (eq == nullptr || eq == s)
        return false;
    out.name.assign(s, static_cast<std::size_t>(eq - s));
    char *end = nullptr;
    out.seed = std::strtoull(eq + 1, &end, 10);
    if (end == eq + 1)
        return false;
    if (*end == ':') {
        if (std::sscanf(end + 1, "%dx%dx%d", &out.h, &out.w,
                        &out.c) != 3 ||
            out.h < 1 || out.w < 1 || out.c < 1)
            return false;
    } else if (*end != '\0') {
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    int workers = 2;
    int pod_chips = 0;
    Cycle wire_latency = 17;
    int requests = 200;
    double rho = 1.2;
    double slack_services = 4.0;
    std::size_t queue_cap = 64;
    std::uint64_t model_seed = 3;
    std::uint64_t seed = 1;
    const char *json_path = nullptr;
    double fault_rate = 0.0;
    double fault_double = 0.0;
    bool have_fault_seed = false;
    std::uint64_t fault_seed = 0;
    int retries = 2;
    bool migrate_on_mc = false;
    long snapshot_every = 0;
    int batch_max = 1;
    double batch_window_us = 0.0;
    std::vector<ModelArg> model_args;
    long registry_mb = 0;
    double hipri = 0.0;
    bool preempt = false;

    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--workers")) {
            workers = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--pod")) {
            pod_chips = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--wire")) {
            wire_latency = static_cast<Cycle>(std::atol(next()));
        } else if (!std::strcmp(argv[i], "--requests")) {
            requests = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--rho")) {
            rho = std::atof(next());
        } else if (!std::strcmp(argv[i], "--slack")) {
            slack_services = std::atof(next());
        } else if (!std::strcmp(argv[i], "--queue")) {
            queue_cap = static_cast<std::size_t>(std::atol(next()));
        } else if (!std::strcmp(argv[i], "--model-seed")) {
            model_seed =
                static_cast<std::uint64_t>(std::atoll(next()));
        } else if (!std::strcmp(argv[i], "--seed")) {
            seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (!std::strcmp(argv[i], "--json")) {
            json_path = next();
        } else if (!std::strcmp(argv[i], "--fault-rate")) {
            fault_rate = std::atof(next());
        } else if (!std::strcmp(argv[i], "--fault-double")) {
            fault_double = std::atof(next());
        } else if (!std::strcmp(argv[i], "--fault-seed")) {
            fault_seed =
                static_cast<std::uint64_t>(std::atoll(next()));
            have_fault_seed = true;
        } else if (!std::strcmp(argv[i], "--retries")) {
            retries = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--migrate-on-mc")) {
            migrate_on_mc = true;
        } else if (!std::strcmp(argv[i], "--snapshot-every")) {
            snapshot_every = std::atol(next());
        } else if (!std::strcmp(argv[i], "--batch-max")) {
            batch_max = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--batch-window-us")) {
            batch_window_us = std::atof(next());
        } else if (!std::strcmp(argv[i], "--model")) {
            ModelArg ma;
            if (!parseModelArg(next(), ma)) {
                usage();
                return 2;
            }
            model_args.push_back(std::move(ma));
        } else if (!std::strcmp(argv[i], "--registry-mb")) {
            registry_mb = std::atol(next());
        } else if (!std::strcmp(argv[i], "--hipri")) {
            hipri = std::atof(next());
        } else if (!std::strcmp(argv[i], "--preempt")) {
            preempt = true;
        } else {
            usage();
            return 2;
        }
    }
    if (workers < 1 || requests < 1 || rho <= 0.0 ||
        fault_rate < 0.0 || fault_rate > 1.0 || fault_double < 0.0 ||
        fault_double > 1.0 || retries < 0 || snapshot_every < 0 ||
        pod_chips == 1 ||
        pod_chips < 0 || batch_max < 1 || batch_window_us < 0.0 ||
        (pod_chips >= 2 && batch_max > AllReducePlan::kMaxBatch) ||
        registry_mb < 0 || hipri < 0.0 || hipri > 1.0 ||
        (!model_args.empty() && pod_chips != 0)) {
        usage();
        return 2;
    }

    // Compile once; the pool shares the lowered program and image.
    const int h = 8, w = 8, c = 4;
    Graph g = model::buildTinyNet(model_seed, h, w, c);
    Rng rng(seed);
    std::vector<std::int8_t> warm(
        static_cast<std::size_t>(h) * w * c);
    for (auto &v : warm)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    Lowering lw(/*pipelined=*/true);
    const auto tensors = g.lower(lw, warm);

    serve::ServerConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = queue_cap;
    cfg.maxRetries = retries;
    cfg.migrateOnMachineCheck = migrate_on_mc;
    cfg.snapshotEveryCycles = static_cast<Cycle>(snapshot_every);
    cfg.batchMax = batch_max;
    cfg.batchWindowSec = batch_window_us * 1e-6;
    cfg.chip.fault.memReadRate = fault_rate;
    cfg.chip.fault.memWriteRate = fault_rate;
    cfg.chip.fault.streamRate = fault_rate;
    cfg.chip.fault.c2cRate = fault_rate;
    cfg.chip.fault.doubleBitFraction = fault_double;
    if (have_fault_seed)
        cfg.chip.fault.seed = fault_seed;
    cfg.preemption = preempt;
    if (hipri > 0.0 || preempt) {
        // Class 0: best-effort. Class 1: priority tenant — halved
        // deadline slack, outranks class 0 for preemption.
        cfg.sloClasses.push_back(serve::SloClass{1.0, 0});
        cfg.sloClasses.push_back(serve::SloClass{0.5, 1});
    }

    std::unique_ptr<BatchProgramCache> cache;
    std::unique_ptr<serve::ModelRegistry> registry;
    std::unique_ptr<serve::InferenceServer> server_p;
    if (!model_args.empty()) {
        // Multi-model: one registry holds every family; programs
        // compile lazily on first use of each (model, batch) pair.
        std::vector<serve::ModelSpec> specs;
        specs.reserve(model_args.size());
        for (const ModelArg &ma : model_args) {
            serve::ModelSpec sp;
            sp.name = ma.name;
            sp.graph =
                model::buildTinyNet(ma.seed, ma.h, ma.w, ma.c);
            sp.warmInput.resize(static_cast<std::size_t>(ma.h) *
                                static_cast<std::size_t>(ma.w) *
                                static_cast<std::size_t>(ma.c));
            Rng wr(ma.seed ^ 0x9e3779b97f4a7c15ull);
            for (auto &v : sp.warmInput)
                v = static_cast<std::int8_t>(wr.intIn(-100, 100));
            sp.maxBatch = batch_max;
            specs.push_back(std::move(sp));
        }
        registry = std::make_unique<serve::ModelRegistry>(
            std::move(specs),
            registry_mb > 0
                ? static_cast<std::size_t>(registry_mb) << 20
                : serve::ModelRegistry::kDefaultBudget);
        server_p = std::make_unique<serve::InferenceServer>(
            *registry, cfg);
    } else if (pod_chips >= 2) {
        // Each worker owns an N-chip ring pod serving the statically
        // scheduled all-reduce; the collective's exact cycles(b) are
        // calibrated once per batch size on a fault-free pod.
        const std::vector<Cycle> table =
            serve::PodBackend::serviceCyclesTable(
                pod_chips, wire_latency, cfg.chip, batch_max);
        const ChipConfig chip_cfg = cfg.chip;
        server_p = std::make_unique<serve::InferenceServer>(
            [pod_chips, wire_latency, chip_cfg,
             batch_max](int) -> std::unique_ptr<serve::Backend> {
                return std::make_unique<serve::PodBackend>(
                    pod_chips, wire_latency, chip_cfg, batch_max);
            },
            table, cfg);
    } else if (batch_max > 1) {
        // Compile one batch-b program per b <= batch_max: weights
        // install once per batch, per-sample activations repeat.
        cache = std::make_unique<BatchProgramCache>(g, warm,
                                                    batch_max);
        server_p =
            std::make_unique<serve::InferenceServer>(*cache, cfg);
    } else {
        server_p = std::make_unique<serve::InferenceServer>(
            lw, tensors.at(0), tensors.at(g.outputNode()), cfg);
    }
    serve::InferenceServer &server = *server_p;
    if (registry) {
        std::printf("model registry: %d families, budget %s\n",
                    registry->modelCount(),
                    registry_mb > 0 ? "bounded" : "unbounded");
        for (int m = 0; m < registry->modelCount(); ++m) {
            std::printf("  %-12s max batch %d, cycles(1) %llu, "
                        "swap %.3f us\n",
                        registry->name(m).c_str(),
                        registry->maxBatch(m),
                        static_cast<unsigned long long>(
                            registry->cycles(m, 1)),
                        registry->swapSec(m, 1) * 1e6);
        }
        if (!cfg.sloClasses.empty()) {
            std::printf("tenant classes: %.0f%% of traffic "
                        "high-priority (slack x0.5)%s\n",
                        hipri * 100.0,
                        preempt ? ", preemption on" : "");
        }
    }
    if (server.batchMax() > 1) {
        std::printf("batching: up to %d samples per batch, join "
                    "window %.3f us; exact cycles(b):",
                    server.batchMax(), batch_window_us);
        for (int b = 1; b <= server.batchMax(); ++b)
            std::printf(" %llu",
                        static_cast<unsigned long long>(
                            server.admission().serviceCycles(b)));
        std::printf("\n");
    }

    if (pod_chips >= 2) {
        std::printf("collective: %d-chip ring all-reduce, wire "
                    "latency %llu — %llu cycles = %.3f us per "
                    "request, known before execution\n",
                    pod_chips,
                    static_cast<unsigned long long>(wire_latency),
                    static_cast<unsigned long long>(
                        server.serviceCycles()),
                    server.serviceSec() * 1e6);
        std::printf("pool: %d pod%s of %d chips, queue capacity %zu, "
                    "offered load %.2f x capacity%s\n",
                    workers, workers == 1 ? "" : "s", pod_chips,
                    queue_cap, rho,
                    slack_services > 0.0 ? "" : ", no deadlines");
    } else {
        std::printf("compiled model: %llu cycles = %.3f us per "
                    "inference, known before execution\n",
                    static_cast<unsigned long long>(
                        server.serviceCycles()),
                    server.serviceSec() * 1e6);
        std::printf("pool: %d chip%s, queue capacity %zu, offered "
                    "load %.2f x capacity%s\n",
                    workers, workers == 1 ? "" : "s", queue_cap, rho,
                    slack_services > 0.0 ? "" : ", no deadlines");
    }
    if (fault_rate > 0.0) {
        std::printf("fault injection: %.3g upsets/access, "
                    "double-bit fraction %.3g, retry budget %d%s\n",
                    fault_rate, fault_double, retries,
                    migrate_on_mc ? ", mid-batch migration on" : "");
    }
    std::printf("\n");

    const double service = server.serviceSec();
    const double mean_gap =
        service / (rho * static_cast<double>(workers));
    const std::size_t input_len =
        pod_chips >= 2 ? serve::PodBackend::inputBytes(pod_chips)
                       : static_cast<std::size_t>(h) * w * c;
    double now = 0.0;
    std::vector<std::future<serve::Result>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    const int nmodels = registry ? registry->modelCount() : 1;
    for (int i = 0; i < requests; ++i) {
        now += -std::log(1.0 - rng.nextDouble()) * mean_gap;
        int m = 0, tenant = 0;
        if (nmodels > 1)
            m = static_cast<int>(rng.intIn(0, nmodels - 1));
        if (!cfg.sloClasses.empty() && hipri > 0.0 &&
            rng.nextDouble() < hipri)
            tenant = 1;
        const std::size_t len =
            registry ? registry->expectedInputBytes(m) : input_len;
        std::vector<std::int8_t> data(len);
        for (auto &v : data)
            v = static_cast<std::int8_t>(rng.intIn(-100, 100));
        // Slack is measured in this family's own service times.
        const double svc =
            registry ? server.admission().serviceSecFor(m, 1)
                     : service;
        const double deadline =
            slack_services > 0.0 ? now + slack_services * svc : 0.0;
        futures.push_back(
            registry ? server.submitModel(
                           m, tenant, std::move(data), now, deadline,
                           serve::InferenceServer::OnFull::Block)
                     : server.submit(
                           std::move(data), now, deadline,
                           serve::InferenceServer::OnFull::Block));
    }
    server.drain();

    // A few sample requests, then the aggregate report.
    std::printf("sample of outcomes:\n");
    const std::size_t step =
        std::max<std::size_t>(1, futures.size() / 8);
    for (std::size_t i = 0; i < futures.size(); i += step) {
        const serve::Result r = futures[i].get();
        std::printf("  req %4llu  %-19s wait %7.3f us  total "
                    "%7.3f us  cycles %llu/%llu\n",
                    static_cast<unsigned long long>(r.id),
                    serve::outcomeName(r.outcome),
                    r.queueSec() * 1e6, r.latencySec() * 1e6,
                    static_cast<unsigned long long>(
                        r.measuredCycles),
                    static_cast<unsigned long long>(
                        r.predictedCycles));
    }

    const auto snap = server.metricsSnapshot();
    std::printf("\nreport:\n");
    for (const auto &[name, v] : snap.counters().all()) {
        std::printf("  %-22s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
    }
    if (snap.totalUs().count() > 0) {
        std::printf("  latency p50/p95/p99    %.2f / %.2f / %.2f us\n",
                    snap.totalUs().quantile(0.50),
                    snap.totalUs().quantile(0.95),
                    snap.totalUs().quantile(0.99));
        std::printf("  queue wait p50/p99     %.2f / %.2f us\n",
                    snap.queueUs().quantile(0.50),
                    snap.queueUs().quantile(0.99));
        std::printf("  throughput             %.0f req/s (virtual)\n",
                    snap.throughputRps());
    }
    std::printf("  prediction mismatches  %llu\n",
                static_cast<unsigned long long>(
                    snap.predictionMismatches()));

    if (json_path) {
        if (!writeJsonFile(json_path, server.metricsJson())) {
            std::fprintf(stderr, "cannot write %s\n", json_path);
            return 1;
        }
        std::printf("\nwrote %s\n", json_path);
    }

    // Exit nonzero when any request actually failed, not only on
    // prediction mismatches: a run whose retry budget was exhausted
    // by machine checks (or that hit a cycle-budget failure) must be
    // visible to scripts and CI, not silently exit 0.
    const std::uint64_t failed_mc =
        snap.counters().get("failed_machine_check");
    const std::uint64_t failed = snap.counters().get("failed");
    if (failed_mc > 0 || failed > 0) {
        std::fprintf(stderr,
                     "\nFAILED: %llu request%s exhausted the "
                     "machine-check retry budget, %llu failed "
                     "outright (of %llu submitted)\n",
                     static_cast<unsigned long long>(failed_mc),
                     failed_mc == 1 ? "" : "s",
                     static_cast<unsigned long long>(failed),
                     static_cast<unsigned long long>(
                         snap.counters().get("submitted")));
        return 1;
    }
    return snap.predictionMismatches() == 0 ? 0 : 1;
}
