/**
 * @file
 * tsp-run: assemble and execute a Table I assembly listing on the
 * simulated chip.
 *
 *   tsp-run PROGRAM.tsp [options]
 *     --mem HEM:SLICE:ADDR=BYTE[,BYTE...]   preload a word (repeats)
 *     --dump HEM:SLICE:ADDR                 print a word after the run
 *     --max-cycles N                        abort limit (default 10M)
 *     --trace                               print the dispatch trace
 *     --trace-json FILE                     write a chrome://tracing file
 *     --stats                               print chip statistics
 *     --power                               print average power
 *     --fault-rate R                        per-access bit-upset rate on
 *                                           MEM reads/writes and stream
 *                                           hops (default 0)
 *     --fault-double F                      fraction of upsets striking a
 *                                           second bit in the same word
 *     --fault-seed S                        fault-injector seed
 *     --snapshot-every N                    capture a chip snapshot every
 *                                           N cycles; on a machine check
 *                                           the run migrates onto a
 *                                           rebuilt chip restored from
 *                                           the last pre-fault snapshot
 *                                           (fresh fault seed) instead
 *                                           of dying
 *
 * Exit status: 0 on clean retirement, 1 on error or cycle-limit
 * abort, 2 on usage errors, 3 on a machine check (uncorrectable
 * error; the first-error context is printed).
 *
 * Example:
 *   cat > add.tsp <<'EOF'
 *   @MEM_W0:
 *       nop 10
 *       read 0x5, s16.e
 *   @MEM_W1:
 *       nop 9
 *       read 0x6, s17.e
 *   @VXM0:
 *       nop 13
 *       add.sat s16.e, s17.e, s29.w
 *   @MEM_W2:
 *       nop 17
 *       write 0x7, s29.w
 *   EOF
 *   tsp-run add.tsp --mem W:0:0x5=30 --mem W:1:0x6=40 \
 *           --dump W:2:0x7 --stats
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <memory>

#include "common/seed.hh"
#include "common/strutil.hh"
#include "isa/assembler.hh"
#include "mem/ecc.hh"
#include "sim/chip.hh"
#include "sim/snapshot.hh"
#include "sim/trace_export.hh"

namespace {

using namespace tsp;

struct MemSpec
{
    Hemisphere hem;
    int slice;
    MemAddr addr;
    std::vector<std::uint8_t> bytes; // Empty for --dump.
};

bool
parseLocation(const std::string &text, MemSpec &out)
{
    // "W:12:0x40" or "E:3:16".
    const auto parts = split(text, ':');
    if (parts.size() != 3)
        return false;
    if (iequals(parts[0], "w")) {
        out.hem = Hemisphere::West;
    } else if (iequals(parts[0], "e")) {
        out.hem = Hemisphere::East;
    } else {
        return false;
    }
    long slice = 0, addr = 0;
    if (!parseInt(parts[1], slice) || slice < 0 ||
        slice >= kMemSlicesPerHem) {
        return false;
    }
    if (!parseInt(parts[2], addr) || addr < 0 ||
        addr >= kMemWordsPerSlice) {
        return false;
    }
    out.slice = static_cast<int>(slice);
    out.addr = static_cast<MemAddr>(addr);
    return true;
}

bool
parseMemArg(const std::string &text, MemSpec &out)
{
    const auto eq = text.find('=');
    if (eq == std::string::npos)
        return false;
    if (!parseLocation(text.substr(0, eq), out))
        return false;
    for (const auto &b : split(text.substr(eq + 1), ',')) {
        long v = 0;
        if (!parseInt(b, v) || v < -128 || v > 255)
            return false;
        out.bytes.push_back(static_cast<std::uint8_t>(v & 0xff));
    }
    return !out.bytes.empty();
}

void
usage()
{
    std::fprintf(stderr,
                 "usage: tsp-run PROGRAM.tsp [--mem H:S:A=b,b,...] "
                 "[--dump H:S:A] [--max-cycles N] [--trace] "
                 "[--stats] [--power] [--fault-rate R] "
                 "[--fault-double F] [--fault-seed S] "
                 "[--snapshot-every N]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }

    std::vector<MemSpec> preloads, dumps;
    Cycle max_cycles = 10'000'000;
    bool want_trace = false, want_stats = false, want_power = false;
    const char *trace_json = nullptr;
    const char *path = nullptr;
    double fault_rate = 0.0;
    double fault_double = 0.0;
    bool have_fault_seed = false;
    std::uint64_t fault_seed = 0;
    Cycle snapshot_every = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--mem") {
            MemSpec m;
            if (!parseMemArg(next(), m)) {
                std::fprintf(stderr, "bad --mem argument\n");
                return 2;
            }
            preloads.push_back(std::move(m));
        } else if (arg == "--dump") {
            MemSpec m;
            if (!parseLocation(next(), m)) {
                std::fprintf(stderr, "bad --dump argument\n");
                return 2;
            }
            dumps.push_back(std::move(m));
        } else if (arg == "--max-cycles") {
            long v = 0;
            if (!parseInt(next(), v) || v <= 0) {
                std::fprintf(stderr, "bad --max-cycles\n");
                return 2;
            }
            max_cycles = static_cast<Cycle>(v);
        } else if (arg == "--trace") {
            want_trace = true;
        } else if (arg == "--trace-json") {
            trace_json = next();
        } else if (arg == "--stats") {
            want_stats = true;
        } else if (arg == "--power") {
            want_power = true;
        } else if (arg == "--fault-rate") {
            fault_rate = std::atof(next());
            if (fault_rate < 0.0 || fault_rate > 1.0) {
                std::fprintf(stderr, "bad --fault-rate\n");
                return 2;
            }
        } else if (arg == "--fault-double") {
            fault_double = std::atof(next());
            if (fault_double < 0.0 || fault_double > 1.0) {
                std::fprintf(stderr, "bad --fault-double\n");
                return 2;
            }
        } else if (arg == "--fault-seed") {
            long v = 0;
            if (!parseInt(next(), v)) {
                std::fprintf(stderr, "bad --fault-seed\n");
                return 2;
            }
            fault_seed = static_cast<std::uint64_t>(v);
            have_fault_seed = true;
        } else if (arg == "--snapshot-every") {
            long v = 0;
            if (!parseInt(next(), v) || v <= 0) {
                std::fprintf(stderr, "bad --snapshot-every\n");
                return 2;
            }
            snapshot_every = static_cast<Cycle>(v);
        } else if (!path) {
            path = argv[i];
        } else {
            usage();
            return 2;
        }
    }
    if (!path) {
        usage();
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();

    const AsmResult result = assemble(text.str());
    if (!result.ok) {
        std::fprintf(stderr, "%s:%d: %s\n", path, result.errorLine,
                     result.error.c_str());
        return 1;
    }

    ChipConfig cfg;
    cfg.traceEnabled = want_trace || trace_json;
    cfg.fault.memReadRate = fault_rate;
    cfg.fault.memWriteRate = fault_rate;
    cfg.fault.streamRate = fault_rate;
    cfg.fault.doubleBitFraction = fault_double;
    if (have_fault_seed)
        cfg.fault.seed = fault_seed;
    auto chip_p = std::make_unique<Chip>(cfg);
    for (const MemSpec &m : preloads) {
        Vec320 v;
        for (std::size_t b = 0;
             b < m.bytes.size() && b < static_cast<std::size_t>(kLanes);
             ++b) {
            v.bytes[b] = m.bytes[b];
        }
        // Single-byte preloads broadcast across all lanes.
        if (m.bytes.size() == 1)
            v.bytes.fill(m.bytes[0]);
        chip_p->mem(m.hem, m.slice).backdoorWrite(m.addr, v);
    }

    chip_p->loadProgram(result.program);
    bool retired = false;
    std::uint64_t snapshots = 0;
    int migrations = 0;
    if (snapshot_every == 0) {
        retired = chip_p->runBounded(max_cycles);
    } else {
        // Chunked run: a snapshot at each boundary (never after a
        // machine check, so the last capture precedes the first
        // uncorrectable error). A machine check migrates the run
        // onto a rebuilt chip restored from that snapshot, with a
        // derived fault seed so the killing upset is not replayed.
        ChipSnapshot last;
        bool have_snap = false;
        for (;;) {
            const Cycle next =
                std::min(max_cycles, chip_p->now() + snapshot_every);
            retired = chip_p->runBounded(next);
            if (chip_p->machineCheck()) {
                if (!have_snap || migrations >= 8)
                    break;
                ++migrations;
                ChipConfig mig_cfg = cfg;
                mig_cfg.fault.seed = deriveSeed(
                    cfg.fault.seed, SeedDomain::EngineRebuild,
                    static_cast<std::uint64_t>(migrations));
                auto fresh = std::make_unique<Chip>(mig_cfg);
                fresh->loadProgram(result.program);
                std::string err;
                if (!fresh->restore(last, &err)) {
                    std::fprintf(stderr, "migration failed: %s\n",
                                 err.c_str());
                    break;
                }
                std::fprintf(
                    stderr,
                    "machine check at cycle %llu; migrated to a "
                    "rebuilt chip from the cycle-%llu snapshot\n",
                    static_cast<unsigned long long>(
                        chip_p->machineCheckInfo().cycle),
                    static_cast<unsigned long long>(last.cycle));
                chip_p = std::move(fresh);
                continue;
            }
            if (retired || chip_p->now() >= max_cycles)
                break;
            ChipSnapshot s;
            if (chip_p->snapshot(s)) {
                last = std::move(s);
                have_snap = true;
                ++snapshots;
            }
        }
    }
    Chip &chip = *chip_p;
    const Cycle cycles = chip.now();

    if (snapshot_every > 0) {
        std::printf("snapshots: %llu captured every %llu cycles, "
                    "%d migration%s\n",
                    static_cast<unsigned long long>(snapshots),
                    static_cast<unsigned long long>(snapshot_every),
                    migrations, migrations == 1 ? "" : "s");
    }
    if (retired) {
        std::printf("retired in %llu cycles (%.3f us at 1 GHz)\n",
                    static_cast<unsigned long long>(cycles),
                    static_cast<double>(cycles) * 1e-3);
    } else if (chip.machineCheck()) {
        const MachineCheckInfo &mc = chip.machineCheckInfo();
        std::fprintf(stderr,
                     "MACHINE CHECK at cycle %llu in %s: %s "
                     "(%llu uncorrectable error%s total)\n",
                     static_cast<unsigned long long>(mc.cycle),
                     mc.unit.c_str(), mc.detail.c_str(),
                     static_cast<unsigned long long>(
                         chip.machineCheckCount()),
                     chip.machineCheckCount() == 1 ? "" : "s");
    } else {
        std::fprintf(stderr,
                     "cycle limit hit at %llu cycles; program did "
                     "not retire\n",
                     static_cast<unsigned long long>(cycles));
    }

    if (want_trace) {
        for (const TraceEvent &e : chip.trace()) {
            std::printf("%8llu  %-12s %s\n",
                        static_cast<unsigned long long>(e.cycle),
                        e.icu.name().c_str(),
                        e.inst.toString().c_str());
        }
    }
    if (trace_json) {
        if (!writeChromeTrace(chip, trace_json)) {
            std::fprintf(stderr, "cannot write %s\n", trace_json);
            return 1;
        }
        std::printf("wrote %s (open in chrome://tracing)\n",
                    trace_json);
    }
    if (want_stats)
        std::fputs(chip.stats().toString().c_str(), stdout);
    if (want_power) {
        std::printf("average power: %.1f W\n",
                    chip.power().averagePowerW());
    }
    for (const MemSpec &m : dumps) {
        const Vec320 v = chip.mem(m.hem, m.slice).backdoorRead(m.addr);
        std::printf("%c%d:0x%04x:", m.hem == Hemisphere::East ? 'E'
                                                              : 'W',
                    m.slice, m.addr);
        for (int b = 0; b < 16; ++b)
            std::printf(" %02x", v.bytes[static_cast<std::size_t>(b)]);
        std::printf(" ...\n");
    }
    if (chip.machineCheck())
        return 3;
    return retired ? 0 : 1;
}
