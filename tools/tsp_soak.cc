/**
 * @file
 * tsp-soak: fleet-scale soak driver over the deterministic serving
 * layer — millions of simulated requests against an autoscaled fleet
 * of pod-collective serving tiers, with live fault injection and a
 * windowed time series written as BENCH_soak.json.
 *
 *   tsp-soak [options]
 *     --pods N            initial pods                  (default 2)
 *     --min-pods N        autoscaler floor              (default 1)
 *     --max-pods N        autoscaler ceiling            (default 8)
 *     --chips N           chips per pod ring            (default 2)
 *     --wire N            C2C wire latency, cycles      (default 17)
 *     --workers N         engines per pod               (default 2)
 *     --duration S        simulated seconds of arrivals (default 60)
 *     --requests N        stop after N requests; 0 = duration-bound
 *                                                       (default 0)
 *     --rate R            arrivals per simulated second; 0 derives
 *                         the rate from --rho            (default 0)
 *     --rho R             offered load vs initial-fleet capacity,
 *                         used when --rate is 0          (default 1.2)
 *     --arrivals M        poisson | bursty | diurnal    (default poisson)
 *     --burst-factor F    bursty: burst rate multiplier (default 4)
 *     --burst-frac F      bursty: time fraction in burst (default 0.1)
 *     --burst-sec S       bursty: mean burst length, sim s (default 0.25)
 *     --diurnal-amp A     diurnal: modulation depth     (default 0.5)
 *     --diurnal-period S  diurnal: sine period, sim s   (default 20)
 *     --slack S           deadline = arrival + S * service; 0 = none
 *                                                       (default 0)
 *     --batch-max N       submit-time batching cap      (default 1)
 *     --batch-window-us U batch join window             (default 0)
 *     --window S          observation window, sim s     (default 1)
 *     --up-backlog S      scale-up backlog/pod threshold (default 0.5)
 *     --down-backlog S    scale-down backlog/pod threshold
 *                                                       (default 0.05)
 *     --up-windows N      pressured windows before scale-up (default 2)
 *     --down-windows N    idle windows before drain     (default 5)
 *     --provision S       pod provisioning delay, sim s (default 2)
 *     --fault-rate R      per-access upset rate (MEM r/w, streams,
 *                         C2C)                          (default 0)
 *     --fault-double F    double-bit (uncorrectable) fraction
 *                                                       (default 0)
 *     --retries N         machine-check retry budget    (default 2)
 *     --seed S            base seed (load + payloads + faults)
 *                                                       (default 1)
 *     --json FILE         output path        (default BENCH_soak.json)
 *     --min-availability A  exit 1 if served/submitted < A
 *                                                       (default 0)
 *
 * Two runs with the same flags produce byte-identical JSON: every
 * quantity in the document is virtual-time arithmetic.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/json.hh"
#include "fleet/soak.hh"
#include "serve/backend.hh"

namespace {

using namespace tsp;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: tsp-soak [--pods N] [--min-pods N] [--max-pods N]\n"
        "  [--chips N] [--wire N] [--workers N] [--duration S]\n"
        "  [--requests N] [--rate R | --rho R]\n"
        "  [--arrivals poisson|bursty|diurnal]\n"
        "  [--burst-factor F] [--burst-frac F] [--burst-sec S]\n"
        "  [--diurnal-amp A] [--diurnal-period S] [--slack S]\n"
        "  [--batch-max N] [--batch-window-us U] [--window S]\n"
        "  [--up-backlog S] [--down-backlog S] [--up-windows N]\n"
        "  [--down-windows N] [--provision S] [--fault-rate R]\n"
        "  [--fault-double F] [--retries N] [--seed S]\n"
        "  [--json FILE] [--min-availability A]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    fleet::SoakConfig cfg;
    cfg.chipsPerPod = 2;
    cfg.wireLatencySec = 17;
    double rate = 0.0;
    double rho = 1.2;
    double slack_services = 0.0;
    double min_availability = 0.0;
    const char *json_path = "BENCH_soak.json";

    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--pods")) {
            cfg.initialPods = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--min-pods")) {
            cfg.autoscaler.minPods = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--max-pods")) {
            cfg.autoscaler.maxPods = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--chips")) {
            cfg.chipsPerPod = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--wire")) {
            cfg.wireLatencySec =
                static_cast<Cycle>(std::atol(next()));
        } else if (!std::strcmp(argv[i], "--workers")) {
            cfg.workersPerPod = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--duration")) {
            cfg.durationSec = std::atof(next());
        } else if (!std::strcmp(argv[i], "--requests")) {
            cfg.maxRequests =
                static_cast<std::uint64_t>(std::atoll(next()));
        } else if (!std::strcmp(argv[i], "--rate")) {
            rate = std::atof(next());
        } else if (!std::strcmp(argv[i], "--rho")) {
            rho = std::atof(next());
        } else if (!std::strcmp(argv[i], "--arrivals")) {
            const char *m = next();
            if (!std::strcmp(m, "poisson")) {
                cfg.load.model = fleet::ArrivalModel::Poisson;
            } else if (!std::strcmp(m, "bursty")) {
                cfg.load.model = fleet::ArrivalModel::Bursty;
            } else if (!std::strcmp(m, "diurnal")) {
                cfg.load.model = fleet::ArrivalModel::Diurnal;
            } else {
                usage();
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--burst-factor")) {
            cfg.load.burstFactor = std::atof(next());
        } else if (!std::strcmp(argv[i], "--burst-frac")) {
            cfg.load.burstFraction = std::atof(next());
        } else if (!std::strcmp(argv[i], "--burst-sec")) {
            cfg.load.meanBurstSec = std::atof(next());
        } else if (!std::strcmp(argv[i], "--diurnal-amp")) {
            cfg.load.diurnalAmplitude = std::atof(next());
        } else if (!std::strcmp(argv[i], "--diurnal-period")) {
            cfg.load.diurnalPeriodSec = std::atof(next());
        } else if (!std::strcmp(argv[i], "--slack")) {
            slack_services = std::atof(next());
        } else if (!std::strcmp(argv[i], "--batch-max")) {
            cfg.batchMax = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--batch-window-us")) {
            cfg.batchWindowSec = std::atof(next()) * 1e-6;
        } else if (!std::strcmp(argv[i], "--window")) {
            cfg.windowSec = std::atof(next());
        } else if (!std::strcmp(argv[i], "--up-backlog")) {
            cfg.autoscaler.scaleUpBacklogSec = std::atof(next());
        } else if (!std::strcmp(argv[i], "--down-backlog")) {
            cfg.autoscaler.scaleDownBacklogSec = std::atof(next());
        } else if (!std::strcmp(argv[i], "--up-windows")) {
            cfg.autoscaler.upWindows = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--down-windows")) {
            cfg.autoscaler.downWindows = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--provision")) {
            cfg.autoscaler.provisionSec = std::atof(next());
        } else if (!std::strcmp(argv[i], "--fault-rate")) {
            const double r = std::atof(next());
            cfg.fault.memReadRate = r;
            cfg.fault.memWriteRate = r;
            cfg.fault.streamRate = r;
            cfg.fault.c2cRate = r;
        } else if (!std::strcmp(argv[i], "--fault-double")) {
            cfg.fault.doubleBitFraction = std::atof(next());
        } else if (!std::strcmp(argv[i], "--retries")) {
            cfg.maxRetries = std::atoi(next());
        } else if (!std::strcmp(argv[i], "--seed")) {
            cfg.seed =
                static_cast<std::uint64_t>(std::atoll(next()));
        } else if (!std::strcmp(argv[i], "--json")) {
            json_path = next();
        } else if (!std::strcmp(argv[i], "--min-availability")) {
            min_availability = std::atof(next());
        } else {
            usage();
            return 2;
        }
    }

    if (cfg.initialPods < 1 || cfg.chipsPerPod < 2 ||
        cfg.workersPerPod < 1 || cfg.durationSec <= 0.0 ||
        cfg.windowSec <= 0.0 || rho <= 0.0 || rate < 0.0 ||
        slack_services < 0.0 || cfg.batchMax < 1 ||
        cfg.fault.doubleBitFraction < 0.0 ||
        cfg.fault.doubleBitFraction > 1.0) {
        usage();
        return 2;
    }

    // Derive the arrival rate (and the deadline slack) from the
    // initial fleet's exact service time when requested.
    const Cycle service_cycles = serve::PodBackend::serviceCycles(
        cfg.chipsPerPod, cfg.wireLatencySec, cfg.chip);
    const double service_sec = static_cast<double>(service_cycles) *
                               cfg.chip.cyclePeriodSec();
    const double capacity_rps =
        static_cast<double>(cfg.initialPods * cfg.workersPerPod) /
        service_sec;
    cfg.load.rateRps = rate > 0.0 ? rate : rho * capacity_rps;
    cfg.deadlineSlackSec = slack_services * service_sec;

    std::printf("soak: %d-chip pods, %.3f us/request exact; "
                "%d pod(s) x %d workers = %.0f rps capacity\n",
                cfg.chipsPerPod, service_sec * 1e6, cfg.initialPods,
                cfg.workersPerPod, capacity_rps);
    std::printf("load: %s arrivals at %.0f rps for %.0f sim s%s%s\n",
                fleet::arrivalModelName(cfg.load.model),
                cfg.load.rateRps, cfg.durationSec,
                cfg.maxRequests != 0 ? " (request-capped)" : "",
                cfg.deadlineSlackSec > 0.0 ? "" : ", no deadlines");
    if (cfg.fault.enabled()) {
        std::printf("faults: %.3g upsets/access, double-bit "
                    "fraction %.3g, live during the whole run\n",
                    cfg.fault.memReadRate,
                    cfg.fault.doubleBitFraction);
    }

    const fleet::SoakReport rep = fleet::runSoak(cfg);

    std::printf("\nsoak complete: %llu submitted, %llu served, "
                "%llu shed, %llu failed machine check "
                "(%llu machine checks raised)\n",
                static_cast<unsigned long long>(rep.submitted),
                static_cast<unsigned long long>(rep.served),
                static_cast<unsigned long long>(rep.shed),
                static_cast<unsigned long long>(
                    rep.failedMachineCheck),
                static_cast<unsigned long long>(rep.machineChecks));
    std::printf("availability %.6f over %zu windows; pods launched "
                "%d, retired %d\n",
                rep.availability, rep.windows, rep.podsLaunched,
                rep.podsRetired);

    if (!writeJsonFile(json_path, rep.json)) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }
    std::printf("wrote %s\n", json_path);

    if (rep.availability < min_availability) {
        std::fprintf(stderr,
                     "FAILED: availability %.6f below required "
                     "%.6f\n",
                     rep.availability, min_availability);
        return 1;
    }
    return 0;
}
