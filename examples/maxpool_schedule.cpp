/**
 * @file
 * Reproduces the structure of the paper's Fig. 11: the compiler's
 * instruction schedule for a 3x3 max pool — concurrent MEM reads on
 * multiple slices feeding the VXM max tree, with result and halo
 * writes trailing behind, every instruction at an exact cycle.
 *
 *   $ ./maxpool_schedule
 */

#include <cstdio>

#include "common/rng.hh"
#include "compiler/lowering.hh"
#include "runtime/session.hh"

int
main()
{
    using namespace tsp;

    const int h = 12, w = 12, c = 64;
    Rng rng(3);
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(h) * w * c);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));

    Lowering lowering(/*pipelined=*/true);
    const LoweredTensor in = lowering.inputTensor(h, w, c, data);
    const LoweredTensor out = lowering.maxPool(in, 3, 2, 1);

    // The Fig. 11 style occupancy chart: one row per participating
    // ICU, '#' where an instruction dispatches.
    const Cycle from = ScheduledProgram::kProgramStart + 120;
    std::printf("3x3 max pool, stride 2: instruction schedule\n");
    std::printf("(one row per instruction queue; '#' = dispatch)\n\n");
    std::printf("%s\n",
                lowering.program().gantt(from, from + 110).c_str());

    // And the first instructions as an event listing.
    std::printf("first scheduled events:\n");
    const std::string listing = lowering.program().listing();
    int lines = 0;
    for (std::size_t i = 0; i < listing.size() && lines < 28; ++i) {
        std::putchar(listing[i]);
        if (listing[i] == '\n')
            ++lines;
    }

    // Run and verify so the dump is of a *correct* schedule.
    InferenceSession session(lowering);
    session.run();
    const auto got = session.readTensor(out);
    ref::QTensor qin(h, w, c);
    qin.data = data;
    const auto want = ref::maxPool(qin, 3, 2, 1);
    std::size_t bad = 0;
    for (std::size_t i = 0; i < want.data.size(); ++i)
        bad += got.data[i] != want.data[i];
    std::printf("\nverified: %zu mismatches across %zu outputs\n", bad,
                want.data.size());
    return bad == 0 ? 0 : 1;
}
