/**
 * @file
 * Two TSPs exchanging vectors over a C2C link (paper II item 6): chip
 * A reads tensor rows onto a westward stream and Sends them; chip B
 * Receives each vector the cycle it lands and commits it to its own
 * MEM. Every instruction on both chips is scheduled to the exact
 * cycle — the link is deskewed once, then communication needs no
 * handshakes at all.
 *
 *   $ ./multichip_c2c
 */

#include <cstdio>

#include "compiler/schedule.hh"
#include "mem/ecc.hh"
#include "sim/chip.hh"

int
main()
{
    using namespace tsp;

    Chip a, b;
    constexpr int kLink = 0; // Even link: west edge (pos 0).
    constexpr Cycle kWire = 25;
    constexpr int kVectors = 8;
    a.c2c().connect(kLink, b.c2c(), kLink, kWire);

    ScheduledProgram prog_a, prog_b;
    const IcuId mem_a = IcuId::mem(Hemisphere::West, 43); // pos 3.
    const IcuId mem_b = IcuId::mem(Hemisphere::West, 43);
    const IcuId c2c = IcuId::c2c(kLink);                  // pos 0.

    // Deskew both ends first.
    Instruction deskew;
    deskew.op = Opcode::Deskew;
    prog_a.emit(0, c2c, deskew);
    prog_b.emit(0, c2c, deskew);

    for (int i = 0; i < kVectors; ++i) {
        // Chip A: Read at t -> visible at pos 3 at t+2 -> at the
        // link (pos 0) at t+5; Send samples it there. Sends are one
        // serialization slot apart.
        const Cycle send_at = 70 + static_cast<Cycle>(i) *
                                       kC2cSerializationCycles;
        Instruction rd;
        rd.op = Opcode::Read;
        rd.addr = static_cast<MemAddr>(0x10 + i);
        rd.dst = {4, Direction::West};
        prog_a.emit(send_at - 5, mem_a, rd);

        Instruction send;
        send.op = Opcode::Send;
        send.imm0 = kLink;
        send.srcA = {4, Direction::West};
        prog_a.emit(send_at, c2c, send);

        // Chip B: the vector lands after serialization + wire; the
        // Receive drives it onto an eastward stream (visible at the
        // link 2 cycles later), and the Write commits it at pos 3,
        // three hops inward.
        const Cycle arrive = send_at + kC2cSerializationCycles +
                             kWire;
        Instruction recv;
        recv.op = Opcode::Receive;
        recv.imm0 = kLink;
        recv.dst = {6, Direction::East};
        prog_b.emit(arrive, c2c, recv);

        Instruction wr;
        wr.op = Opcode::Write;
        wr.addr = static_cast<MemAddr>(0x40 + i);
        wr.srcA = {6, Direction::East};
        prog_b.emit(arrive + opTiming(Opcode::Receive).dFunc + 3,
                    mem_b, wr);
    }

    // Seed chip A's tensor rows.
    for (int i = 0; i < kVectors; ++i) {
        Vec320 v;
        for (int l = 0; l < kLanes; ++l)
            v.bytes[static_cast<std::size_t>(l)] =
                static_cast<std::uint8_t>(i * 37 + l);
        a.mem(Hemisphere::West, 43)
            .backdoorWrite(static_cast<MemAddr>(0x10 + i), v);
    }

    a.loadProgram(prog_a.toAsm());
    b.loadProgram(prog_b.toAsm());

    // Lock-step the two chips (one shared core clock domain).
    Cycle guard = 0;
    while ((!a.done() || !b.done()) && guard < 100000) {
        a.step();
        b.step();
        ++guard;
    }

    std::size_t bad = 0;
    for (int i = 0; i < kVectors; ++i) {
        const Vec320 got =
            b.mem(Hemisphere::West, 43)
                .backdoorRead(static_cast<MemAddr>(0x40 + i));
        for (int l = 0; l < kLanes; ++l) {
            bad += got.bytes[static_cast<std::size_t>(l)] !=
                   static_cast<std::uint8_t>(i * 37 + l);
        }
    }

    std::printf("sent %d x 320-byte vectors chip A -> chip B over one "
                "x4 link\n",
                kVectors);
    std::printf("  wire latency        : %llu cycles\n",
                static_cast<unsigned long long>(kWire));
    std::printf("  serialization       : %llu cycles/vector "
                "(120 Gb/s per link)\n",
                static_cast<unsigned long long>(
                    kC2cSerializationCycles));
    std::printf("  vectors sent/recv'd : %llu / %llu\n",
                static_cast<unsigned long long>(a.c2c().sent()),
                static_cast<unsigned long long>(b.c2c().received()));
    std::printf("  payload mismatches  : %zu\n", bad);
    std::printf("  total cycles        : %llu\n",
                static_cast<unsigned long long>(a.now()));
    return bad == 0 ? 0 : 1;
}
