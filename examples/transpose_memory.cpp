/**
 * @file
 * The paper's Listing 2: explicit memory management for a transpose.
 * A tensor striped across 16 MEM slices is read as 16 concurrent
 * streams, transposed 16x16 per superlane by the SXM, and written
 * back to 16 slices — the compiler (here: the API layer) schedules
 * each slice's port explicitly; no cache hierarchy is involved.
 *
 *   $ ./transpose_memory
 */

#include <cstdio>

#include "api/stream_api.hh"

int
main()
{
    using namespace tsp;

    api::Program program;
    const int rows = 64; // Four 16-row tiles.
    const api::TensorHandle x = program.randomTensor(rows, 9);
    const api::TensorHandle xt = program.transpose16(x);
    const api::TensorHandle xtt = program.transpose16(xt);

    const api::RunInfo info = program.run();

    const auto a = program.read(x);
    const auto b = program.read(xt);
    const auto c = program.read(xtt);

    // Check the transpose law within one superlane tile.
    std::size_t checked = 0, bad = 0;
    for (int g = 0; g < rows / 16; ++g) {
        for (int sl = 0; sl < kSuperlanes; ++sl) {
            for (int r = 0; r < 16; ++r) {
                for (int l = 0; l < 16; ++l) {
                    const auto orig =
                        a[static_cast<std::size_t>(16 * g + r) *
                              kLanes +
                          sl * 16 + l];
                    const auto t =
                        b[static_cast<std::size_t>(16 * g + l) *
                              kLanes +
                          sl * 16 + r];
                    bad += orig != t;
                    ++checked;
                }
            }
        }
    }
    // And transpose(transpose(x)) == x.
    std::size_t involution_bad = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        involution_bad += a[i] != c[i];

    std::printf("transpose16 over %d rows (%zu element checks)\n",
                rows, checked);
    std::printf("  chip cycles            : %llu\n",
                static_cast<unsigned long long>(info.cycles));
    std::printf("  transpose law mismatches: %zu\n", bad);
    std::printf("  double-transpose == id  : %s\n",
                involution_bad == 0 ? "yes" : "NO");
    return (bad == 0 && involution_bad == 0) ? 0 : 1;
}
