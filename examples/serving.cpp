/**
 * @file
 * Deterministic-deadline serving in ~60 lines: compile a model once,
 * stand up a pool of simulated chips behind an admission controller,
 * and submit requests with deadlines.
 *
 * The point this example makes: because a TSP program's cycle count
 * is fixed at compile time (paper Eq. 4, IV.F), the server knows each
 * request's exact completion time at *submit* — it can promise a
 * deadline or reject up front, and the measured latency then matches
 * the promise to the cycle.
 *
 *   $ ./serving
 */

#include <cstdio>

#include "common/rng.hh"
#include "graph/graph.hh"
#include "model/resnet.hh"
#include "serve/server.hh"

int
main()
{
    using namespace tsp;

    // Compile once. The whole pool shares this program and image.
    const int h = 8, w = 8, c = 4;
    Graph g = model::buildTinyNet(/*seed=*/3, h, w, c);
    Rng rng(7);
    std::vector<std::int8_t> input(
        static_cast<std::size_t>(h) * w * c);
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    Lowering lw(/*pipelined=*/true);
    const auto tensors = g.lower(lw, input);

    serve::ServerConfig cfg;
    cfg.workers = 2;
    serve::InferenceServer server(lw, tensors.at(0),
                                  tensors.at(g.outputNode()), cfg);

    const double service = server.serviceSec();
    std::printf("compiled: %llu cycles -> every inference takes "
                "exactly %.3f us\n\n",
                static_cast<unsigned long long>(
                    server.serviceCycles()),
                service * 1e6);

    // Three same-instant arrivals against two chips, each with a
    // deadline of 1.5 service times. The first two start at once and
    // meet it; the third would have to queue a full service first —
    // the controller proves the miss and rejects without running it.
    std::vector<std::future<serve::Result>> futures;
    for (int i = 0; i < 3; ++i) {
        futures.push_back(server.submit(
            input, /*arrival=*/0.0, /*deadline=*/1.5 * service));
    }
    server.drain();

    for (auto &f : futures) {
        const serve::Result r = f.get();
        std::printf("req %llu: %-17s predicted %llu cycles, "
                    "measured %llu, latency %.3f us\n",
                    static_cast<unsigned long long>(r.id),
                    serve::outcomeName(r.outcome),
                    static_cast<unsigned long long>(
                        r.predictedCycles),
                    static_cast<unsigned long long>(
                        r.measuredCycles),
                    r.latencySec() * 1e6);
    }
    std::printf("\nchip cycles spent: %llu (= 2 served x %llu; the "
                "rejected request cost none)\n",
                static_cast<unsigned long long>(
                    server.totalChipCycles()),
                static_cast<unsigned long long>(
                    server.serviceCycles()));
    return 0;
}
