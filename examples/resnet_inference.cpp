/**
 * @file
 * End-to-end ResNet-50 batch-1 inference on the simulated TSP: build
 * the (synthetic-weight) model, compile it to exactly-timed
 * instruction streams, DMA the image, run the chip, and read logits
 * back — then cross-check every logit against the golden CPU
 * reference. Mirrors the paper's headline experiment (section V).
 *
 *   $ ./resnet_inference [depth]    # depth = 50 (default), 101, 152
 */

#include <cstdio>
#include <cstdlib>

#include "model/resnet.hh"
#include "runtime/session.hh"

int
main(int argc, char **argv)
{
    using namespace tsp;

    const int depth = argc > 1 ? std::atoi(argv[1]) : 50;
    std::printf("building ResNet-%d (synthetic weights, BN folded, "
                "int8)...\n",
                depth);
    Graph graph = model::buildResNet(depth, /*seed=*/42);
    std::printf("  %d nodes, %zu parameters, %.2f GMACs/inference\n",
                graph.size(), graph.parameterCount(),
                static_cast<double>(graph.maccCount()) * 1e-9);

    const auto image = model::makeImage(/*seed=*/7);
    const auto input = model::im2colStem(image);

    std::printf("compiling (two-dimensional schedule, Eq. 4)...\n");
    Lowering lowering(/*pipelined=*/true);
    const auto tensors = graph.lower(lowering, input);
    std::printf("  %zu scheduled instructions, program spans %llu "
                "cycles\n",
                lowering.program().size(),
                static_cast<unsigned long long>(
                    lowering.finishCycle()));

    InferenceSession session(lowering);
    std::printf("running (DMA model: %.2f ms over PCIe Gen4)...\n",
                session.dmaSeconds() * 1e3);
    const Cycle cycles = session.run();

    const double latency_us = session.latencySeconds() * 1e6;
    std::printf("\nresults @ %.1f GHz core clock\n",
                session.chip().config().clockHz * 1e-9);
    std::printf("  latency    : %llu cycles = %.1f us\n",
                static_cast<unsigned long long>(cycles), latency_us);
    std::printf("  throughput : %.0f IPS at batch size 1\n",
                1e6 / latency_us);
    std::printf("  MXM MACCs  : %.2f G (%.0f%% of model MACs; the "
                "rest is tile padding)\n",
                static_cast<double>(
                    session.chip().totalMaccOps()) *
                    1e-9,
                100.0 * static_cast<double>(graph.maccCount()) /
                    static_cast<double>(
                        session.chip().totalMaccOps()));
    std::printf("  avg power  : %.1f W (activity model)\n",
                session.chip().power().averagePowerW());

    // Verify against the golden CPU reference.
    ref::QTensor qin(model::kStemH, model::kStemW, model::kStemC);
    qin.data = input;
    const auto refs = graph.runReference(qin);
    const auto got = session.readTensor(tensors.at(graph.outputNode()));
    const auto &want = refs.at(graph.outputNode());
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < want.data.size(); ++i)
        mismatches += got.data[i] != want.data[i];
    std::printf("  logits     : %zu classes, %zu mismatches vs "
                "golden reference\n",
                want.data.size(), mismatches);

    // Top-5.
    std::vector<int> order(want.data.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](int a, int b) {
                          return got.data[static_cast<std::size_t>(
                                     a)] >
                                 got.data[static_cast<std::size_t>(
                                     b)];
                      });
    std::printf("  top-5      :");
    for (int i = 0; i < 5; ++i)
        std::printf(" %d", order[static_cast<std::size_t>(i)]);
    std::printf("\n");
    return mismatches == 0 ? 0 : 1;
}
