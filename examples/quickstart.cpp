/**
 * @file
 * Quickstart: the paper's Listing 1 — a streaming vector add.
 *
 * Z = X + Y is four instructions on the TSP: two MEM Reads place the
 * operands on eastward streams, a VXM AddSat intercepts them at the
 * chip bisection, and a MEM Write commits the result — no registers,
 * no caches, and a cycle count you can predict before running.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "api/stream_api.hh"

int
main()
{
    using namespace tsp;

    api::Program program;

    // 1024 x 320 int8 tensors, like g.random_tensor in Listing 1.
    const api::TensorHandle x = program.randomTensor(1024, /*seed=*/1);
    const api::TensorHandle y = program.randomTensor(1024, /*seed=*/2);
    const api::TensorHandle z = program.add(x, y);

    const api::RunInfo info = program.run();

    const auto xs = program.read(x);
    const auto ys = program.read(y);
    const auto zs = program.read(z);

    std::size_t checked = 0;
    for (std::size_t i = 0; i < zs.size(); ++i) {
        const int want =
            std::clamp(int(xs[i]) + int(ys[i]), -128, 127);
        if (int(zs[i]) != want) {
            std::printf("MISMATCH at %zu: %d != %d\n", i, int(zs[i]),
                        want);
            return 1;
        }
        ++checked;
    }

    std::printf("Z = X + Y over %zu elements\n", checked);
    std::printf("  chip cycles        : %llu\n",
                static_cast<unsigned long long>(info.cycles));
    std::printf("  instructions       : %llu\n",
                static_cast<unsigned long long>(info.instructions));
    std::printf("  all elements match : yes\n");
    std::printf("\nRun it again — the cycle count will be identical. "
                "That is the point.\n");
    return 0;
}
