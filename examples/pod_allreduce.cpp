/**
 * @file
 * Scale-out: a statically scheduled ring all-reduce across a pod of
 * TSPs (paper II item 6 — the C2C links exist to build "high-radix
 * interconnection networks of TSPs for large-scale systems").
 *
 * Each chip contributes one 320-byte vector; the partial sum hops the
 * ring with every Send, Receive, VXM add and Write placed at an exact
 * cycle — after one deskew, there are no handshakes anywhere.
 *
 *   $ ./pod_allreduce [chips]       # default 4
 */

#include <cstdio>
#include <algorithm>
#include <cstdlib>

#include "c2c/collective.hh"
#include "common/rng.hh"
#include "mem/ecc.hh"

int
main(int argc, char **argv)
{
    using namespace tsp;
    const int n = argc > 1 ? std::atoi(argv[1]) : 4;
    if (n < 2 || n > 16) {
        std::fprintf(stderr, "chips must be 2..16\n");
        return 2;
    }

    Pod pod(n, /*wire_latency=*/25);
    Rng rng(7);
    std::vector<std::vector<int>> locals(
        static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
        Vec320 v;
        auto &mine = locals[static_cast<std::size_t>(c)];
        for (int l = 0; l < kLanes; ++l) {
            const int x = rng.intIn(-20, 20);
            mine.push_back(x);
            v.bytes[static_cast<std::size_t>(l)] =
                static_cast<std::uint8_t>(
                    static_cast<std::int8_t>(x));
        }
        pod.chip(c)
            .mem(Hemisphere::East, AllReducePlan::kSlice)
            .backdoorWrite(AllReducePlan::kLocalAddr, v);
    }

    std::vector<ScheduledProgram> programs;
    const AllReducePlan plan = buildRingAllReduce(pod, programs);
    const Cycle cycles = runAllReduce(pod, programs);

    // Check every chip against the host sum (saturating chain).
    std::size_t bad = 0;
    for (int c = 0; c < n; ++c) {
        const Vec320 got =
            pod.chip(c)
                .mem(Hemisphere::East, AllReducePlan::kSlice)
                .backdoorRead(AllReducePlan::kResultAddr);
        for (int l = 0; l < kLanes; ++l) {
            int want = locals[0][static_cast<std::size_t>(l)];
            for (int k = 1; k < n; ++k) {
                want = std::clamp(
                    want + locals[static_cast<std::size_t>(k)]
                                 [static_cast<std::size_t>(l)],
                    -128, 127);
            }
            bad += static_cast<std::int8_t>(
                       got.bytes[static_cast<std::size_t>(l)]) !=
                   want;
        }
    }

    std::printf("ring all-reduce across %d chips\n", n);
    std::printf("  hops                : %d (reduce %d + broadcast "
                "%d)\n",
                2 * n - 2, n - 1, n - 1);
    std::printf("  cycles per hop      : %llu (22 serialize + 25 "
                "wire + compute/commit)\n",
                static_cast<unsigned long long>(plan.phase));
    std::printf("  total               : %llu cycles = %.2f us at "
                "1 GHz\n",
                static_cast<unsigned long long>(cycles),
                static_cast<double>(cycles) * 1e-3);
    std::printf("  element mismatches  : %zu of %d\n", bad,
                n * kLanes);
    std::printf("  handshakes after deskew: 0\n");
    return bad == 0 ? 0 : 1;
}
