/**
 * @file
 * A non-CNN workload: a quantized 3-layer MLP classifier (the class
 * of model behind the recommendation workloads the paper's intro
 * cites). Fully connected layers lower as 1x1 convolutions on a 1x1
 * spatial tensor, exercising the matmul path with K and M larger
 * than one 320x320 tile.
 *
 *   $ ./mlp_inference
 */

#include <cstdio>

#include "common/rng.hh"
#include "graph/graph.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

int
main()
{
    using namespace tsp;

    // 512 -> 640 -> 640 -> 40 classifier.
    constexpr int kIn = 512, kHidden = 640, kOut = 40;
    Graph g;
    const int input = g.addInput(1, 1, kIn);
    ConvGeom fc_relu;
    fc_relu.relu = true;
    ConvGeom fc_plain;
    fc_plain.relu = false;
    int x = g.addConv(input, fc_relu,
                      model::makeConvWeights(kHidden, kIn, 1, 1, 11));
    x = g.addConv(x, fc_relu,
                  model::makeConvWeights(kHidden, kHidden, 1, 1, 12));
    x = g.addConv(x, fc_plain,
                  model::makeConvWeights(kOut, kHidden, 1, 1, 13));
    g.inferShapes();

    Rng rng(5);
    std::vector<std::int8_t> features(kIn);
    for (auto &v : features)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));

    Lowering lowering(/*pipelined=*/true);
    const auto tensors = g.lower(lowering, features);
    InferenceSession session(lowering);
    const Cycle cycles = session.run();

    // Validate against the golden reference.
    ref::QTensor qin(1, 1, kIn);
    qin.data = features;
    const auto refs = g.runReference(qin);
    const auto got = session.readTensor(tensors.at(g.outputNode()));
    const auto &want = refs.at(g.outputNode());
    std::size_t bad = 0;
    for (std::size_t i = 0; i < want.data.size(); ++i)
        bad += got.data[i] != want.data[i];

    std::printf("3-layer MLP (%d -> %d -> %d -> %d), batch 1\n", kIn,
                kHidden, kHidden, kOut);
    std::printf("  parameters       : %zu\n", g.parameterCount());
    std::printf("  MACs             : %.2f M\n",
                static_cast<double>(g.maccCount()) * 1e-6);
    std::printf("  latency          : %llu cycles = %.2f us at 1 "
                "GHz\n",
                static_cast<unsigned long long>(cycles),
                static_cast<double>(cycles) * 1e-3);
    std::printf("  queries/second   : %.0f at batch 1\n",
                1e9 / static_cast<double>(cycles));
    std::printf("  logit mismatches : %zu of %zu vs golden "
                "reference\n",
                bad, want.data.size());
    return bad == 0 ? 0 : 1;
}
