/**
 * @file
 * Chip geometry invariants: slice positions, transit delays, the
 * 144-queue decomposition, and architectural constants from the
 * paper (220 MiB SRAM, 320 lanes, bandwidth equations).
 */

#include <gtest/gtest.h>

#include "arch/layout.hh"

namespace tsp {
namespace {

TEST(Layout, ArchitecturalConstants)
{
    EXPECT_EQ(kLanes, 320);
    EXPECT_EQ(kSuperlanes, 20);
    EXPECT_EQ(kLanesPerSuperlane, 16);
    EXPECT_EQ(kStreamsPerDir, 32);
    EXPECT_EQ(kMemSlices, 88);
    EXPECT_EQ(kNumIcus, 144);
    // 220 MiB of SRAM (paper II).
    EXPECT_EQ(kTotalMemBytes, 220ull * 1024 * 1024);
    // 2.5 MiB per slice.
    EXPECT_EQ(kMemSliceBytes, 2ull * 1024 * 1024 + 512 * 1024);
}

TEST(Layout, PositionsAreOrdered)
{
    EXPECT_EQ(Layout::numPositions, 95);
    EXPECT_LT(Layout::c2cWest, Layout::mxmWest);
    EXPECT_LT(Layout::mxmWest, Layout::sxmWest);
    EXPECT_LT(Layout::sxmWest, Layout::vxm);
    EXPECT_LT(Layout::vxm, Layout::sxmEast);
    EXPECT_LT(Layout::sxmEast, Layout::mxmEast);
    EXPECT_LT(Layout::mxmEast, Layout::c2cEast);
    EXPECT_EQ(Layout::vxm, 47);
}

TEST(Layout, MemPositionsMirror)
{
    // MEM0 adjacent to the VXM, MEM43 adjacent to the SXM (paper
    // II.B).
    EXPECT_EQ(Layout::memPos(Hemisphere::West, 0), Layout::vxm - 1);
    EXPECT_EQ(Layout::memPos(Hemisphere::East, 0), Layout::vxm + 1);
    EXPECT_EQ(Layout::memPos(Hemisphere::West, 43),
              Layout::sxmWest + 1);
    EXPECT_EQ(Layout::memPos(Hemisphere::East, 43),
              Layout::sxmEast - 1);
    // All 88 positions distinct.
    std::set<SlicePos> seen;
    for (int h = 0; h < 2; ++h) {
        for (int i = 0; i < kMemSlicesPerHem; ++i) {
            seen.insert(
                Layout::memPos(static_cast<Hemisphere>(h), i));
        }
    }
    EXPECT_EQ(seen.size(), 88u);
}

TEST(Layout, TransitDelaySymmetric)
{
    EXPECT_EQ(Layout::transitDelay(10, 10), 0u);
    EXPECT_EQ(Layout::transitDelay(1, 47), 46u);
    EXPECT_EQ(Layout::transitDelay(47, 1), 46u);
    EXPECT_EQ(Layout::flowDirection(3, 47), Direction::East);
    EXPECT_EQ(Layout::flowDirection(47, 3), Direction::West);
}

TEST(IcuId, DecompositionCovers144)
{
    // Every id maps to exactly one slice kind; counts match the
    // DESIGN.md decomposition.
    int counts[6] = {0, 0, 0, 0, 0, 0};
    for (int i = 0; i < kNumIcus; ++i)
        ++counts[static_cast<int>(IcuId{i}.kind())];
    EXPECT_EQ(counts[static_cast<int>(SliceKind::MEM)], 88);
    EXPECT_EQ(counts[static_cast<int>(SliceKind::VXM)], 16);
    EXPECT_EQ(counts[static_cast<int>(SliceKind::MXM)], 8);
    EXPECT_EQ(counts[static_cast<int>(SliceKind::SXM)], 16);
    EXPECT_EQ(counts[static_cast<int>(SliceKind::C2C)], 16);
}

TEST(IcuId, ConstructorsRoundTrip)
{
    EXPECT_EQ(IcuId::mem(Hemisphere::West, 7).name(), "MEM_W7");
    EXPECT_EQ(IcuId::mem(Hemisphere::East, 43).name(), "MEM_E43");
    EXPECT_EQ(IcuId::vxmAlu(3).name(), "VXM3");
    EXPECT_EQ(IcuId::mxm(2, true).name(), "MXM2_W");
    EXPECT_EQ(IcuId::mxm(1, false).name(), "MXM1_A");
    EXPECT_EQ(IcuId::sxm(Hemisphere::East, 2).name(), "SXM_E_PRM");
    EXPECT_EQ(IcuId::c2c(15).name(), "C2C15");
    // Positions are consistent with kinds.
    EXPECT_EQ(IcuId::vxmAlu(0).pos(), Layout::vxm);
    EXPECT_EQ(IcuId::mxm(0, true).pos(), Layout::mxmWest);
    EXPECT_EQ(IcuId::mxm(3, false).pos(), Layout::mxmEast);
    EXPECT_EQ(IcuId::mem(Hemisphere::East, 5).pos(),
              Layout::memPos(Hemisphere::East, 5));
}

TEST(Layout, BandwidthEquations)
{
    // Eq. 1: stream register bandwidth = 2 x 32 x 320 B/cycle
    //      = 20 KiB/cycle -> 20 TiB/s at ~1 GHz (with TiB = 2^40 and
    //      the paper's rounding).
    const double bytes_per_cycle = 2.0 * 32 * 320;
    EXPECT_EQ(bytes_per_cycle, 20480.0);
    // Eq. 2: SRAM bandwidth = 2 hem x 44 slices x 2 banks x 320 B.
    const double sram_per_cycle = 2.0 * 44 * 2 * 320;
    EXPECT_EQ(sram_per_cycle, 56320.0);
    // Instruction fetch: 144 x 16 B/cycle.
    EXPECT_EQ(144.0 * 16, 2304.0);
}

} // namespace
} // namespace tsp
