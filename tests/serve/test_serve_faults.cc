/**
 * @file
 * Serving-layer fault recovery: a machine-checked request is retried
 * on a rebuilt chip (bounded by maxRetries and the deadline), retry
 * exhaustion surfaces as FailedMachineCheck — never as a silently
 * corrupted "served" result — and ServerMetrics reports corrections,
 * machine checks and retries.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "graph/graph.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"
#include "serve/server.hh"

namespace tsp {
namespace {

using serve::InferenceServer;
using serve::Outcome;
using serve::Result;
using serve::ServerConfig;

struct Compiled
{
    Graph g;
    Lowering lw{true};
    std::map<int, LoweredTensor> tensors;
    int h = 8, w = 8, c = 4;

    explicit Compiled(std::uint64_t input_seed = 7)
        : g(model::buildTinyNet(3, 8, 8, 4))
    {
        tensors = g.lower(lw, randomInput(input_seed));
    }

    std::vector<std::int8_t>
    randomInput(std::uint64_t seed) const
    {
        Rng rng(seed);
        std::vector<std::int8_t> data(
            static_cast<std::size_t>(h) * w * c);
        for (auto &v : data)
            v = static_cast<std::int8_t>(rng.intIn(-100, 100));
        return data;
    }

    ref::QTensor
    reference(const std::vector<std::int8_t> &input) const
    {
        ref::QTensor qin(h, w, c);
        qin.data = input;
        return g.runReference(qin).at(g.outputNode());
    }

    const LoweredTensor &in() const { return tensors.at(0); }
    const LoweredTensor &
    out() const
    {
        return tensors.at(g.outputNode());
    }

    /** A double-bit (uncorrectable) scheduled fault pair on the first
     *  word of the model input — a word every inference reads. */
    std::vector<FaultEvent>
    poisonInputEvents() const
    {
        const GlobalAddr a = in().t.addrOf(0, 0, 0, 0);
        const int slice =
            (a.hem == Hemisphere::West ? 0 : kMemSlicesPerHem) +
            a.slice;
        return {{0, slice, a.addr, 0, 1}, {0, slice, a.addr, 0, 5}};
    }
};

TEST(ServeFaults, ScheduledDoubleBitFaultExhaustsRetries)
{
    // The fault is wired to cycle 0 of the chip clock, so it replays
    // on every rebuilt chip: bounded retries must all machine-check
    // and the request must surface FailedMachineCheck — with no
    // output ever populated from a condemned chip.
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.maxRetries = 1;
    cfg.chip.fault.events = m.poisonInputEvents();
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    std::vector<std::future<Result>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(server.submit(
            m.randomInput(static_cast<std::uint64_t>(i)),
            static_cast<double>(i) * 1e-7));
    }
    server.drain();

    for (auto &f : futures) {
        const Result r = f.get();
        ASSERT_EQ(r.outcome, Outcome::FailedMachineCheck);
        EXPECT_EQ(r.retries, 1u);
        EXPECT_GE(r.machineChecks, 2u); // Initial attempt + retry.
        EXPECT_TRUE(r.output.data.empty());
    }

    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters().get("failed_machine_check"), 4u);
    EXPECT_EQ(snap.counters().get("retries"), 4u);
    EXPECT_GE(snap.counters().get("machine_checks"), 8u);
    EXPECT_EQ(snap.counters().get("served"), 0u);

    const std::string json = server.metricsJson();
    EXPECT_NE(json.find("\"failed_machine_check\""),
              std::string::npos);
    EXPECT_NE(json.find("\"machine_checks\""), std::string::npos);
    EXPECT_NE(json.find("\"retries\""), std::string::npos);
}

TEST(ServeFaults, TightDeadlineForbidsRetry)
{
    // The deadline admits exactly one service time, so after the
    // machine check no retry fits: the request fails immediately
    // with zero retries even though the retry budget allows more.
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxRetries = 3;
    cfg.chip.fault.events = m.poisonInputEvents();
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    auto f = server.submit(m.randomInput(1), 0.0,
                           1.5 * server.serviceSec());
    server.drain();
    const Result r = f.get();
    EXPECT_EQ(r.outcome, Outcome::FailedMachineCheck);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_GE(r.machineChecks, 1u);
}

TEST(ServeFaults, RandomDoubleBitStrikesNeverServeCorrupted)
{
    // Under random uncorrectable strikes every result must be either
    // a bit-exact Served (possibly after retries on a rebuilt chip
    // whose derived fault seed rolled no strike) or an explicit
    // FailedMachineCheck. A "served" result whose bytes differ from
    // the golden reference is the one forbidden outcome.
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.maxRetries = 2;
    cfg.chip.fault.seed = 0x5151ull;
    cfg.chip.fault.streamRate = 5e-4;
    cfg.chip.fault.doubleBitFraction = 1.0;
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    constexpr int kRequests = 24;
    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < kRequests; ++i) {
        inputs.push_back(
            m.randomInput(static_cast<std::uint64_t>(100 + i)));
        futures.push_back(server.submit(
            inputs.back(), static_cast<double>(i) * 1e-7));
    }
    server.drain();

    int served = 0, failed_mc = 0;
    for (int i = 0; i < kRequests; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        if (r.outcome == Outcome::Served) {
            ++served;
            const ref::QTensor want =
                m.reference(inputs[static_cast<std::size_t>(i)]);
            ASSERT_EQ(r.output.data, want.data) << "request " << i;
        } else {
            ASSERT_EQ(r.outcome, Outcome::FailedMachineCheck)
                << "request " << i;
            ++failed_mc;
        }
    }
    EXPECT_EQ(served + failed_mc, kRequests);

    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters().get("served"),
              static_cast<std::uint64_t>(served));
    EXPECT_EQ(snap.counters().get("failed_machine_check"),
              static_cast<std::uint64_t>(failed_mc));
    // At this rate over 24 requests some strike lands; if this ever
    // flakes the rate is too low, not the invariant wrong.
    EXPECT_GT(snap.counters().get("machine_checks") +
                  snap.counters().get("retries"),
              0u);
}

TEST(ServeFaults, SingleBitStrikesAreCorrectedAndReported)
{
    // Correctable-only injection: everything serves bit-exactly on
    // the first attempt, and the corrections show up in the metrics.
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 2;
    // Read and write strikes only: each is corrected at the next
    // check, and unlike read+stream combinations two strikes can
    // never stack into one chunk between checks — so this stays
    // correctable for any request-to-worker distribution.
    cfg.chip.fault.seed = 0x77ull;
    cfg.chip.fault.memReadRate = 0.02;
    cfg.chip.fault.memWriteRate = 0.02;
    cfg.chip.fault.doubleBitFraction = 0.0;
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    constexpr int kRequests = 8;
    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < kRequests; ++i) {
        inputs.push_back(
            m.randomInput(static_cast<std::uint64_t>(i)));
        futures.push_back(server.submit(
            inputs.back(), static_cast<double>(i) * 1e-7));
    }
    server.drain();

    for (int i = 0; i < kRequests; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, Outcome::Served) << "request " << i;
        EXPECT_EQ(r.retries, 0u);
        EXPECT_EQ(r.machineChecks, 0u);
        const ref::QTensor want =
            m.reference(inputs[static_cast<std::size_t>(i)]);
        ASSERT_EQ(r.output.data, want.data) << "request " << i;
    }

    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters().get("served"),
              static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(snap.counters().get("machine_checks"), 0u);
    EXPECT_EQ(snap.counters().get("retries"), 0u);
    EXPECT_GT(snap.counters().get("ecc_corrected"), 0u);
    EXPECT_NE(server.metricsJson().find("\"ecc_corrected\""),
              std::string::npos);
}

} // namespace
} // namespace tsp
