/**
 * @file
 * Serving-layer unit tests: bounded-queue concurrency contract
 * (FIFO, backpressure, close semantics), exact admission-control
 * arithmetic, and InferenceServer end-to-end behaviour — served
 * requests match the golden reference, infeasible deadlines are
 * rejected without consuming chip cycles, queue-full backpressure,
 * and cycle-budget exhaustion propagating as an explicit failure.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hh"
#include "graph/graph.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"
#include "serve/admission.hh"
#include "serve/request_queue.hh"
#include "serve/server.hh"

namespace tsp {
namespace {

using serve::Admission;
using serve::AdmissionController;
using serve::BoundedQueue;
using serve::InferenceServer;
using serve::Outcome;
using serve::Result;
using serve::ServerConfig;

// ---------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(128);
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(q.tryPush(i));
    int v = -1;
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(q.tryPop(v), serve::PopResult::Item);
        EXPECT_EQ(v, i);
    }
    // Open but momentarily empty: Empty, not Closed.
    EXPECT_EQ(q.tryPop(v), serve::PopResult::Empty);
    q.close();
    EXPECT_EQ(q.tryPop(v), serve::PopResult::Closed);
}

TEST(BoundedQueue, TryPushBackpressure)
{
    BoundedQueue<int> q(3);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_TRUE(q.tryPush(3));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.tryPush(4)); // Bounded: fail fast.
    int v = 0;
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.tryPush(4)); // Space freed.
    EXPECT_EQ(q.size(), 3u);
}

TEST(BoundedQueue, BlockingPushWaitsForSpace)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.tryPush(1));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        ASSERT_TRUE(q.push(2)); // Blocks until the pop below.
        pushed.store(true);
    });
    // The producer cannot complete while the queue is full.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());
    int v = 0;
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
}

TEST(BoundedQueue, CloseDrainsThenStops)
{
    BoundedQueue<int> q(8);
    ASSERT_TRUE(q.tryPush(1));
    ASSERT_TRUE(q.tryPush(2));
    q.close();
    EXPECT_FALSE(q.tryPush(3)); // No pushes after close.
    EXPECT_FALSE(q.push(3));
    int v = 0;
    EXPECT_TRUE(q.pop(v)); // Queued items still drain...
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(q.pop(v)); // ...then pop signals shutdown.
}

TEST(BoundedQueue, CloseWakesBlockedPush)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.tryPush(1)); // Full.
    std::atomic<bool> returned{false};
    std::atomic<bool> result{true};
    std::thread producer([&] {
        result.store(q.push(2)); // Blocks: no consumer will pop.
        returned.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(returned.load());
    // close() must wake the blocked pusher, which then fails —
    // otherwise shutdown would deadlock behind a full queue.
    q.close();
    producer.join();
    EXPECT_TRUE(returned.load());
    EXPECT_FALSE(result.load());
    // The queued element survives for draining.
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_FALSE(q.pop(v));
}

TEST(BoundedQueue, ConcurrentProducersConsumers)
{
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 250;
    BoundedQueue<int> q(16);
    std::atomic<long> sum{0};
    std::atomic<int> received{0};

    std::vector<std::thread> consumers;
    for (int i = 0; i < 3; ++i) {
        consumers.emplace_back([&] {
            int v = 0;
            while (q.pop(v)) {
                sum.fetch_add(v);
                received.fetch_add(1);
            }
        });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(p * kPerProducer + i));
        });
    }
    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    const long n = kProducers * kPerProducer;
    EXPECT_EQ(received.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ---------------------------------------------------------------
// AdmissionController — the deterministic-deadline arithmetic.
// ---------------------------------------------------------------

TEST(Admission, ExactBookingSingleWorker)
{
    // 1000 cycles at 1 GHz = exactly 1 us of service.
    AdmissionController ac(1, 1000, 1e-9);
    EXPECT_DOUBLE_EQ(ac.serviceSec(), 1e-6);

    // Idle server: service starts at arrival.
    const Admission a = ac.admit(0.0, 0.0);
    EXPECT_TRUE(a.admitted);
    EXPECT_DOUBLE_EQ(a.startSec, 0.0);
    EXPECT_DOUBLE_EQ(a.completionSec, 1e-6);

    // Same-instant arrival queues behind the first booking.
    const Admission b = ac.admit(0.0, 0.0);
    EXPECT_DOUBLE_EQ(b.startSec, 1e-6);
    EXPECT_DOUBLE_EQ(b.completionSec, 2e-6);

    // An arrival after the backlog clears starts immediately.
    const Admission c = ac.admit(5e-6, 0.0);
    EXPECT_DOUBLE_EQ(c.startSec, 5e-6);
    EXPECT_DOUBLE_EQ(c.completionSec, 6e-6);
    EXPECT_EQ(ac.admitted(), 3u);
}

TEST(Admission, RejectInfeasibleWithoutBooking)
{
    AdmissionController ac(1, 1000, 1e-9);
    // Deadline shorter than the service time: provably infeasible
    // even on an idle chip.
    const Admission a = ac.admit(0.0, 0.5e-6);
    EXPECT_FALSE(a.admitted);
    EXPECT_DOUBLE_EQ(a.completionSec, 1e-6); // Best case reported.
    EXPECT_EQ(ac.rejected(), 1u);

    // The rejection left no phantom reservation: the next request
    // still sees an idle server.
    const Admission b = ac.admit(0.0, 1.1e-6);
    EXPECT_TRUE(b.admitted);
    EXPECT_DOUBLE_EQ(b.startSec, 0.0);

    // Now the server is busy until 1 us; a deadline of 1.5 us
    // cannot fit another 1 us service.
    const Admission c = ac.admit(0.0, 1.5e-6);
    EXPECT_FALSE(c.admitted);
    EXPECT_EQ(ac.admitted(), 1u);
    EXPECT_EQ(ac.rejected(), 2u);
}

TEST(Admission, MultiWorkerBooksEarliestFree)
{
    AdmissionController ac(2, 1000, 1e-9);
    // Two same-instant arrivals run in parallel on the two chips.
    EXPECT_DOUBLE_EQ(ac.admit(0.0, 0.0).startSec, 0.0);
    EXPECT_DOUBLE_EQ(ac.admit(0.0, 0.0).startSec, 0.0);
    // The third waits for whichever frees first.
    const Admission c = ac.admit(0.0, 0.0);
    EXPECT_DOUBLE_EQ(c.startSec, 1e-6);
    EXPECT_DOUBLE_EQ(c.completionSec, 2e-6);
}

TEST(Admission, EarliestCompletionDoesNotBook)
{
    AdmissionController ac(1, 1000, 1e-9);
    EXPECT_DOUBLE_EQ(ac.earliestCompletion(0.0), 1e-6);
    EXPECT_DOUBLE_EQ(ac.earliestCompletion(0.0), 1e-6); // Unchanged.
    ASSERT_TRUE(ac.admit(0.0, 0.0).admitted);
    EXPECT_DOUBLE_EQ(ac.earliestCompletion(0.0), 2e-6);
}

// ---------------------------------------------------------------
// InferenceServer end-to-end.
// ---------------------------------------------------------------

struct Compiled
{
    Graph g;
    Lowering lw{true};
    std::map<int, LoweredTensor> tensors;
    int h = 8, w = 8, c = 4;

    explicit Compiled(std::uint64_t input_seed = 7)
        : g(model::buildTinyNet(3, 8, 8, 4))
    {
        tensors = g.lower(lw, randomInput(input_seed));
    }

    std::vector<std::int8_t>
    randomInput(std::uint64_t seed) const
    {
        Rng rng(seed);
        std::vector<std::int8_t> data(
            static_cast<std::size_t>(h) * w * c);
        for (auto &v : data)
            v = static_cast<std::int8_t>(rng.intIn(-100, 100));
        return data;
    }

    ref::QTensor
    reference(const std::vector<std::int8_t> &input) const
    {
        ref::QTensor qin(h, w, c);
        qin.data = input;
        return g.runReference(qin).at(g.outputNode());
    }

    const LoweredTensor &in() const { return tensors.at(0); }
    const LoweredTensor &
    out() const
    {
        return tensors.at(g.outputNode());
    }
};

TEST(Server, ServedRequestsMatchGoldenReference)
{
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 2;
    InferenceServer server(m.lw, m.in(), m.out(), cfg);
    EXPECT_EQ(server.serviceCycles(), m.lw.finishCycle());

    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < 6; ++i) {
        inputs.push_back(m.randomInput(100 + i));
        futures.push_back(server.submit(
            inputs.back(), static_cast<double>(i) * 1e-7));
    }
    server.drain();

    for (int i = 0; i < 6; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, Outcome::Served) << "request " << i;
        // The determinism contract: measured == predicted, exactly.
        EXPECT_EQ(r.measuredCycles, r.predictedCycles);
        EXPECT_EQ(r.predictedCycles, server.serviceCycles());
        const ref::QTensor want =
            m.reference(inputs[static_cast<std::size_t>(i)]);
        EXPECT_EQ(r.output.data, want.data) << "request " << i;
    }
    EXPECT_EQ(server.metricsSnapshot().predictionMismatches(), 0u);
}

TEST(Server, InfeasibleDeadlineRejectedWithoutChipCycles)
{
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 1;
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    // Deadline = half a service: provably unmeetable.
    const double half = server.serviceSec() / 2;
    auto f = server.submit(m.randomInput(1), 0.0, half);
    const Result r = f.get(); // Resolves at admission time.
    EXPECT_EQ(r.outcome, Outcome::RejectedDeadline);
    EXPECT_EQ(r.measuredCycles, 0u);
    server.drain();
    EXPECT_EQ(server.totalChipCycles(), 0u); // Not one cycle spent.

    // A feasible request afterwards runs normally.
    auto f2 = server.submit(m.randomInput(2), 0.0,
                            2.0 * server.serviceSec());
    EXPECT_EQ(f2.get().outcome, Outcome::Served);
    server.drain();
    EXPECT_EQ(server.totalChipCycles(), server.serviceCycles());

    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters().get("rejected_deadline"), 1u);
    EXPECT_EQ(snap.counters().get("served"), 1u);
}

TEST(Server, QueueFullBackpressureRejects)
{
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 2;
    cfg.startPaused = true; // Workers gated: the queue must fill.
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    auto f1 = server.submit(m.randomInput(1), 0.0);
    auto f2 = server.submit(m.randomInput(2), 0.0);
    auto f3 = server.submit(m.randomInput(3), 0.0); // Queue full.
    // The rejection resolves immediately, before any worker runs.
    ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(f3.get().outcome, Outcome::RejectedQueueFull);

    server.resume();
    EXPECT_EQ(f1.get().outcome, Outcome::Served);
    EXPECT_EQ(f2.get().outcome, Outcome::Served);
    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters().get("rejected_queue_full"), 1u);
}

TEST(Server, CycleBudgetExhaustionPropagatesAsFailure)
{
    Compiled m;

    // Session-level: the explicit status replaces the old fatal().
    InferenceSession sess(m.lw);
    const RunResult rr = sess.runBounded(/*max_cycles=*/10);
    EXPECT_FALSE(rr.completed);
    EXPECT_TRUE(sess.timedOut());
    // reset() rebuilds the chip; the rerun completes exactly.
    sess.reset();
    EXPECT_FALSE(sess.timedOut());
    const RunResult ok = sess.runBounded();
    EXPECT_TRUE(ok.completed);
    EXPECT_EQ(ok.cycles, m.lw.finishCycle());

    // Server-level: the timeout surfaces as Outcome::Failed instead
    // of a bogus result.
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxCyclesPerRun = 10;
    InferenceServer server(m.lw, m.in(), m.out(), cfg);
    const Result r = server.submit(m.randomInput(4), 0.0).get();
    EXPECT_EQ(r.outcome, Outcome::Failed);
    EXPECT_EQ(server.metricsSnapshot().counters().get("failed"), 1u);
}

TEST(Server, ShutdownRejectsBlockedSubmitterWithRecordedMetrics)
{
    // Regression: a submitter blocked on a full queue during
    // shutdown used to fabricate its Result outside the metrics
    // path — the rejection was invisible in the counters and carried
    // no booking. It must be recorded like every other rejection.
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 1;
    cfg.startPaused = true; // Gate the worker so the queue stays full.
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    auto f1 = server.submit(m.randomInput(1), 0.0, 0.0,
                            InferenceServer::OnFull::Block);
    std::atomic<bool> submitted{false};
    std::future<Result> f2;
    std::thread blocked([&] {
        // The queue is full and the pool is paused: this blocks
        // inside submit() until shutdown() closes the queue.
        f2 = server.submit(m.randomInput(2), 1e-7, 0.0,
                           InferenceServer::OnFull::Block);
        submitted.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(submitted.load());

    server.shutdown(); // Wakes the blocked submitter (close first).
    blocked.join();

    const Result r1 = f1.get();
    EXPECT_EQ(r1.outcome, Outcome::Served); // Queued work drains.
    const Result r2 = f2.get();
    EXPECT_EQ(r2.outcome, Outcome::RejectedQueueFull);
    // The booking fields survive into the recorded result.
    EXPECT_GT(r2.completionSec, 0.0);

    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters().get("submitted"), 2u);
    EXPECT_EQ(snap.counters().get("served"), 1u);
    EXPECT_EQ(snap.counters().get("rejected_queue_full"), 1u);
}

TEST(ServerMetrics, ThroughputWindowCountsOnlyServed)
{
    // Regression: throughputRps divided the served count by a window
    // whose endpoints included DeadlineMissed completions — a late
    // straggler diluted the rate of the requests that counted.
    serve::ServerMetrics metrics(1.0, 1, 4);

    Result served;
    served.outcome = Outcome::Served;
    served.arrivalSec = 0.0;
    served.startSec = 0.0;
    served.completionSec = 10.0;
    metrics.record(served);

    Result missed;
    missed.outcome = Outcome::DeadlineMissed;
    missed.arrivalSec = 0.0;
    missed.startSec = 10.0;
    missed.completionSec = 20.0;
    metrics.record(missed);

    // Numerator and window must agree: 1 served over [0, 10].
    EXPECT_DOUBLE_EQ(metrics.throughputRps(), 0.1);
    // The makespan keeps the all-completions semantics.
    EXPECT_DOUBLE_EQ(metrics.makespanSec(), 20.0);
}

TEST(Server, MetricsJsonIsWellFormed)
{
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 2;
    InferenceServer server(m.lw, m.in(), m.out(), cfg);
    for (int i = 0; i < 4; ++i) {
        server.submit(m.randomInput(static_cast<std::uint64_t>(i)),
                      static_cast<double>(i) * 1e-7);
    }
    server.drain();

    const std::string json = server.metricsJson();
    EXPECT_NE(json.find("\"workers\":2"), std::string::npos);
    EXPECT_NE(json.find("\"served\":4"), std::string::npos);
    EXPECT_NE(json.find("\"service_cycles\":"), std::string::npos);
    EXPECT_NE(json.find("\"p99\":"), std::string::npos);
    EXPECT_NE(json.find("\"prediction_mismatches\":0"),
              std::string::npos);
}

} // namespace
} // namespace tsp
