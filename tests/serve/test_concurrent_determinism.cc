/**
 * @file
 * Cross-session determinism under concurrency: the property the
 * serving layer's admission control rests on. Multiple
 * InferenceSessions sharing one compiled Lowering — on different
 * threads, reused across resets, or behind the server's worker pool —
 * must produce byte-identical outputs and the exact cycle count the
 * compiler predicted (paper Eq. 4, IV.F, V.c).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.hh"
#include "graph/graph.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"
#include "serve/server.hh"

namespace tsp {
namespace {

constexpr int kH = 8, kW = 8, kC = 4;

std::vector<std::int8_t>
randomInput(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(kH) * kW * kC);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    return data;
}

TEST(ConcurrentDeterminism, ParallelSessionsBitIdentical)
{
    Graph g = model::buildTinyNet(3, kH, kW, kC);
    const auto input = randomInput(7);
    Lowering lw(true);
    const auto lowered = g.lower(lw, input);
    const LoweredTensor &out_slot = lowered.at(g.outputNode());

    constexpr int kSessions = 4;
    std::vector<Cycle> cycles(kSessions, 0);
    std::vector<std::vector<std::int8_t>> outputs(kSessions);
    std::vector<std::thread> threads;
    for (int i = 0; i < kSessions; ++i) {
        threads.emplace_back([&, i] {
            InferenceSession sess(lw);
            const RunResult r = sess.runBounded();
            ASSERT_TRUE(r.completed);
            cycles[static_cast<std::size_t>(i)] = r.cycles;
            outputs[static_cast<std::size_t>(i)] =
                sess.readTensor(out_slot).data;
        });
    }
    for (auto &t : threads)
        t.join();

    // Every session lands on the compiler-predicted cycle, exactly.
    for (int i = 0; i < kSessions; ++i) {
        EXPECT_EQ(cycles[static_cast<std::size_t>(i)],
                  lw.finishCycle())
            << "session " << i;
        EXPECT_EQ(outputs[static_cast<std::size_t>(i)], outputs[0])
            << "session " << i;
    }
}

TEST(ConcurrentDeterminism, ResetRerunMatchesFreshCompile)
{
    Graph g = model::buildTinyNet(3, kH, kW, kC);
    const auto input_a = randomInput(7);
    const auto input_b = randomInput(8);

    // Compile once with input A; reuse the session for input B via
    // the input-substitution path the server depends on.
    Lowering lw(true);
    const auto lowered = g.lower(lw, input_a);
    InferenceSession sess(lw);
    ASSERT_TRUE(sess.runBounded().completed);

    sess.reset();
    sess.writeTensor(lowered.at(0), input_b);
    const RunResult r = sess.runBounded();
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.cycles, lw.finishCycle()); // Input-independent.

    // A fresh compile with input B must agree byte-for-byte.
    Lowering lw2(true);
    const auto lowered2 = g.lower(lw2, input_b);
    InferenceSession fresh(lw2);
    ASSERT_TRUE(fresh.runBounded().completed);
    EXPECT_EQ(sess.readTensor(lowered.at(g.outputNode())).data,
              fresh.readTensor(lowered2.at(g.outputNode())).data);
}

TEST(ConcurrentDeterminism, ServerPoolIdenticalInputsIdenticalBytes)
{
    Graph g = model::buildTinyNet(3, kH, kW, kC);
    const auto input = randomInput(7);
    Lowering lw(true);
    const auto lowered = g.lower(lw, input);

    serve::ServerConfig cfg;
    cfg.workers = 4;
    serve::InferenceServer server(lw, lowered.at(0),
                                  lowered.at(g.outputNode()), cfg);

    // The same input through different chips in the pool: byte-equal
    // outputs and cycle-equal service, regardless of which worker ran
    // which request.
    constexpr int kN = 8;
    std::vector<std::future<serve::Result>> futures;
    for (int i = 0; i < kN; ++i) {
        futures.push_back(
            server.submit(input, static_cast<double>(i) * 1e-7));
    }
    server.drain();

    serve::Result first = futures[0].get();
    ASSERT_EQ(first.outcome, serve::Outcome::Served);
    EXPECT_EQ(first.measuredCycles, lw.finishCycle());
    for (int i = 1; i < kN; ++i) {
        const serve::Result r =
            futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, serve::Outcome::Served) << "req " << i;
        EXPECT_EQ(r.measuredCycles, first.measuredCycles);
        EXPECT_EQ(r.output.data, first.output.data) << "req " << i;
    }
    EXPECT_EQ(server.metricsSnapshot().predictionMismatches(), 0u);
}

TEST(ConcurrentDeterminism, ServerPoolVaryingInputsMatchReference)
{
    Graph g = model::buildTinyNet(3, kH, kW, kC);
    const auto warm = randomInput(7);
    Lowering lw(true);
    const auto lowered = g.lower(lw, warm);

    serve::ServerConfig cfg;
    cfg.workers = 3;
    serve::InferenceServer server(lw, lowered.at(0),
                                  lowered.at(g.outputNode()), cfg);

    constexpr int kN = 6;
    std::vector<std::vector<std::int8_t>> inputs;
    std::vector<std::future<serve::Result>> futures;
    for (int i = 0; i < kN; ++i) {
        inputs.push_back(
            randomInput(200 + static_cast<std::uint64_t>(i)));
        futures.push_back(server.submit(
            inputs.back(), static_cast<double>(i) * 1e-7));
    }
    server.drain();

    for (int i = 0; i < kN; ++i) {
        const serve::Result r =
            futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, serve::Outcome::Served) << "req " << i;
        ref::QTensor qin(kH, kW, kC);
        qin.data = inputs[static_cast<std::size_t>(i)];
        const ref::QTensor want =
            g.runReference(qin).at(g.outputNode());
        ASSERT_EQ(r.output.data.size(), want.data.size());
        EXPECT_EQ(r.output.data, want.data) << "req " << i;
    }
}

} // namespace
} // namespace tsp

