/**
 * @file
 * Serving-layer trace record/replay tests: the pool-shared TraceCache
 * lets the first worker to run a compiled program record its micro-op
 * trace and every later serve — on any worker — replay it, with
 * bit-identical outputs, exact (booking-matching) cycle counts, and
 * the cache/replay counters surfaced through the server metrics.
 * Fault-injected pools must never record or replay, and a zero byte
 * budget must disable the tier entirely.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "graph/batch_program.hh"
#include "graph/graph.hh"
#include "model/resnet.hh"
#include "serve/server.hh"

namespace tsp {
namespace {

using serve::InferenceServer;
using serve::Outcome;
using serve::PodBackend;
using serve::Result;
using serve::ServerConfig;

constexpr int kH = 8, kW = 8, kC = 4;

std::vector<std::int8_t>
randomInput(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(kH) * kW * kC);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    return data;
}

struct Compiled
{
    Graph g;
    Lowering lw{true};
    std::map<int, LoweredTensor> tensors;

    Compiled() : g(model::buildTinyNet(3, kH, kW, kC))
    {
        tensors = g.lower(lw, randomInput(7));
    }

    ref::QTensor
    reference(const std::vector<std::int8_t> &input) const
    {
        ref::QTensor qin(kH, kW, kC);
        qin.data = input;
        return g.runReference(qin).at(g.outputNode());
    }

    const LoweredTensor &in() const { return tensors.at(0); }
    const LoweredTensor &
    out() const
    {
        return tensors.at(g.outputNode());
    }
};

TEST(ServeReplay, PoolSharesTracesAndMatchesReference)
{
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 2; // traceCacheBytes defaults on.
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    constexpr int kRequests = 8;
    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < kRequests; ++i) {
        inputs.push_back(
            randomInput(100 + static_cast<std::uint64_t>(i)));
        futures.push_back(server.submit(
            inputs.back(), static_cast<double>(i) * 1e-7));
    }
    server.drain();

    for (int i = 0; i < kRequests; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, Outcome::Served) << "request " << i;
        // Replayed runs keep the determinism contract exactly.
        EXPECT_EQ(r.measuredCycles, r.predictedCycles);
        const ref::QTensor want =
            m.reference(inputs[static_cast<std::size_t>(i)]);
        EXPECT_EQ(r.output.data, want.data) << "request " << i;
    }
    EXPECT_EQ(server.metricsSnapshot().predictionMismatches(), 0u);

    // Every run either recorded or replayed. At most one record per
    // worker (a worker that raced past the other's insert records its
    // own copy once, then replays its session-held trace).
    EXPECT_GE(server.recordCount(), 1u);
    EXPECT_LE(server.recordCount(),
              static_cast<std::uint64_t>(cfg.workers));
    EXPECT_EQ(server.recordCount() + server.replayCount(),
              static_cast<std::uint64_t>(kRequests));
    // One compiled program -> one resident trace, whoever won.
    EXPECT_EQ(server.traceCacheSize(), 1u);
    EXPECT_GT(server.traceCacheBytes(), 0u);

    const std::string json = server.metricsJson();
    EXPECT_NE(json.find("\"trace_cache\":"), std::string::npos);
    EXPECT_NE(json.find("\"replays\":"), std::string::npos);
    EXPECT_NE(json.find("\"trace_cache_budget_bytes\":"),
              std::string::npos);
}

TEST(ServeReplay, ZeroBudgetDisablesTheTier)
{
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.traceCacheBytes = 0;
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < 3; ++i) {
        inputs.push_back(
            randomInput(200 + static_cast<std::uint64_t>(i)));
        futures.push_back(server.submit(
            inputs.back(), static_cast<double>(i) * 1e-7));
    }
    server.drain();

    for (int i = 0; i < 3; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, Outcome::Served);
        EXPECT_EQ(r.output.data,
                  m.reference(inputs[static_cast<std::size_t>(i)])
                      .data);
    }
    EXPECT_EQ(server.recordCount(), 0u);
    EXPECT_EQ(server.replayCount(), 0u);
    EXPECT_EQ(server.traceCacheSize(), 0u);
    EXPECT_EQ(server.traceCacheBytes(), 0u);
}

TEST(ServeReplay, FaultInjectionGatesReplayOff)
{
    // Correctable-only stream injection: every request still serves,
    // but the sessions must refuse to record or replay — a trace is
    // only valid for a fault-free timeline.
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.chip.fault.seed = 0x5151ull;
    cfg.chip.fault.streamRate = 5e-4;
    cfg.chip.fault.doubleBitFraction = 0.0;
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < 3; ++i) {
        inputs.push_back(
            randomInput(300 + static_cast<std::uint64_t>(i)));
        futures.push_back(server.submit(
            inputs.back(), static_cast<double>(i) * 1e-7));
    }
    server.drain();

    for (int i = 0; i < 3; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, Outcome::Served);
        EXPECT_EQ(r.output.data,
                  m.reference(inputs[static_cast<std::size_t>(i)])
                      .data);
    }
    EXPECT_EQ(server.recordCount(), 0u);
    EXPECT_EQ(server.replayCount(), 0u);
    EXPECT_EQ(server.traceCacheSize(), 0u);
}

TEST(ServeReplay, BatchServerKeepsOneTracePerBatchProgram)
{
    // One worker for deterministic run counts. Three batch-2 jobs:
    // the first records, the next two replay. Then two batch-1 jobs:
    // the rebind invalidates the session's held trace, so the batch-1
    // program records once and replays once. Two programs -> two
    // resident traces.
    Graph g = model::buildTinyNet(3, kH, kW, kC);
    BatchProgramCache cache(g, randomInput(7), 2);
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batchMax = 2;
    InferenceServer server(cache, cfg);
    ASSERT_EQ(server.batchMax(), 2);

    auto reference = [&g](const std::vector<std::int8_t> &input) {
        ref::QTensor qin(kH, kW, kC);
        qin.data = input;
        return g.runReference(qin).at(g.outputNode());
    };

    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    // Same-stamp pairs join one batch (window 0 batches equal stamps).
    for (int i = 0; i < 6; ++i) {
        inputs.push_back(
            randomInput(400 + static_cast<std::uint64_t>(i)));
        futures.push_back(server.submit(
            inputs.back(), static_cast<double>(i / 2) * 1e-6));
    }
    server.drain();
    EXPECT_EQ(server.recordCount(), 1u);
    EXPECT_EQ(server.replayCount(), 2u);
    EXPECT_EQ(server.traceCacheSize(), 1u);

    // Distinct-stamp singles run the batch-1 program.
    for (int i = 6; i < 8; ++i) {
        inputs.push_back(
            randomInput(400 + static_cast<std::uint64_t>(i)));
        futures.push_back(server.submit(
            inputs.back(), 1e-3 + static_cast<double>(i) * 1e-6));
    }
    server.drain();
    EXPECT_EQ(server.recordCount(), 2u);
    EXPECT_EQ(server.replayCount(), 3u);
    EXPECT_EQ(server.traceCacheSize(), 2u);
    EXPECT_GT(server.traceCacheBytes(), 0u);

    for (int i = 0; i < 8; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, Outcome::Served) << "request " << i;
        EXPECT_EQ(r.measuredCycles, r.predictedCycles);
        EXPECT_EQ(r.output.data,
                  reference(inputs[static_cast<std::size_t>(i)]).data)
            << "request " << i;
    }
    EXPECT_EQ(server.metricsSnapshot().predictionMismatches(), 0u);
}

std::vector<std::int8_t>
randomPodInput(int chips, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> data(PodBackend::inputBytes(chips));
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-90, 90));
    return data;
}

/** Host saturating reduction with the schedule's chain order. */
std::vector<std::int8_t>
reduceReference(int chips, const std::vector<std::int8_t> &input)
{
    std::vector<std::int8_t> want(input.begin(),
                                  input.begin() + kLanes);
    for (int c = 1; c < chips; ++c) {
        for (int l = 0; l < kLanes; ++l) {
            const int s =
                int(want[static_cast<std::size_t>(l)]) +
                int(input[static_cast<std::size_t>(c) * kLanes +
                          static_cast<std::size_t>(l)]);
            want[static_cast<std::size_t>(l)] =
                static_cast<std::int8_t>(std::clamp(s, -128, 127));
        }
    }
    return want;
}

TEST(ServeReplay, PodServerReplaysTheCollective)
{
    constexpr int kChips = 3;
    constexpr Cycle kWire = 17;
    ServerConfig cfg;
    cfg.workers = 1;
    const Cycle service =
        PodBackend::serviceCycles(kChips, kWire, cfg.chip);
    const ChipConfig chip_cfg = cfg.chip;
    InferenceServer server(
        [chip_cfg, kChips, kWire](int)
            -> std::unique_ptr<serve::Backend> {
            return std::make_unique<PodBackend>(kChips, kWire,
                                                chip_cfg);
        },
        service, cfg);

    constexpr int kRequests = 4;
    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < kRequests; ++i) {
        inputs.push_back(
            randomPodInput(kChips, static_cast<std::uint64_t>(i)));
        futures.push_back(server.submit(
            inputs.back(), static_cast<double>(i) * 1e-7));
    }
    server.drain();

    for (int i = 0; i < kRequests; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, Outcome::Served) << "request " << i;
        EXPECT_EQ(r.measuredCycles, r.predictedCycles);
        EXPECT_EQ(r.output.data,
                  reduceReference(
                      kChips, inputs[static_cast<std::size_t>(i)]))
            << "request " << i;
    }
    EXPECT_EQ(server.recordCount(), 1u);
    EXPECT_EQ(server.replayCount(),
              static_cast<std::uint64_t>(kRequests) - 1u);
    EXPECT_EQ(server.traceCacheSize(), 1u);
    EXPECT_EQ(server.metricsSnapshot().predictionMismatches(), 0u);
}

} // namespace
} // namespace tsp
