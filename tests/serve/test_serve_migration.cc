/**
 * @file
 * Mid-batch snapshot migration in the serving layer: a condemned
 * chip's in-flight batch is restored from its last pre-fault snapshot
 * onto a rebuilt engine and resumed — completing within the original
 * deadline without burning a full retry — plus the recovery-path
 * booking fixes: retry admission must charge the engine-rebuild cost,
 * and a machine check with no usable snapshot falls back to the full
 * retry policy.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "graph/graph.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"
#include "serve/server.hh"

namespace tsp {
namespace {

using serve::InferenceServer;
using serve::Outcome;
using serve::Result;
using serve::ServerConfig;

struct Compiled
{
    Graph g;
    Lowering lw{true};
    std::map<int, LoweredTensor> tensors;
    int h = 8, w = 8, c = 4;

    explicit Compiled(std::uint64_t input_seed = 7)
        : g(model::buildTinyNet(3, 8, 8, 4))
    {
        tensors = g.lower(lw, randomInput(input_seed));
    }

    std::vector<std::int8_t>
    randomInput(std::uint64_t seed) const
    {
        Rng rng(seed);
        std::vector<std::int8_t> data(
            static_cast<std::size_t>(h) * w * c);
        for (auto &v : data)
            v = static_cast<std::int8_t>(rng.intIn(-100, 100));
        return data;
    }

    ref::QTensor
    reference(const std::vector<std::int8_t> &input) const
    {
        ref::QTensor qin(h, w, c);
        qin.data = input;
        return g.runReference(qin).at(g.outputNode());
    }

    const LoweredTensor &in() const { return tensors.at(0); }
    const LoweredTensor &
    out() const
    {
        return tensors.at(g.outputNode());
    }

    /** Uncorrectable scheduled double-bit pair on the model input:
     *  wired to cycle 0, so it replays on every rebuilt engine. */
    std::vector<FaultEvent>
    poisonInputEvents() const
    {
        const GlobalAddr a = in().t.addrOf(0, 0, 0, 0);
        const int slice =
            (a.hem == Hemisphere::West ? 0 : kMemSlicesPerHem) +
            a.slice;
        return {{0, slice, a.addr, 0, 1}, {0, slice, a.addr, 0, 5}};
    }

    /** Random uncorrectable strikes; this seed condemns the first
     *  attempt well after the default snapshot cadence. */
    void
    armRandomStrikes(ServerConfig &cfg) const
    {
        cfg.chip.fault.seed = 0x5151ull;
        cfg.chip.fault.streamRate = 5e-4;
        cfg.chip.fault.doubleBitFraction = 1.0;
    }
};

TEST(ServeMigration, CondemnedBatchCompletesWithinDeadline)
{
    // maxRetries = 0: the full-retry path is forbidden outright, so
    // the only way this request can be served is the snapshot
    // migration — and it must still meet the deadline it was
    // admitted under.
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxRetries = 0;
    cfg.migrateOnMachineCheck = true;
    m.armRandomStrikes(cfg);
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    const double service = server.serviceSec();
    const double deadline = 25.0 * service;
    const std::vector<std::int8_t> input = m.randomInput(1);
    auto f = server.submit(input, 0.0, deadline);
    server.drain();

    const Result r = f.get();
    ASSERT_EQ(r.outcome, Outcome::Served);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_GE(r.migrations, 1u);
    EXPECT_GE(r.machineChecks, 1u);
    EXPECT_LE(r.completionSec, deadline);
    // The burned pre-fault segments and the rebuilds are not free;
    // the reported completion must be honest about them.
    EXPECT_GT(r.completionSec, r.startSec + service);
    EXPECT_EQ(r.output.data, m.reference(input).data);

    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters().get("served"), 1u);
    EXPECT_GE(snap.counters().get("migrations"), 1u);
    EXPECT_EQ(snap.counters().get("retries"), 0u);
    EXPECT_NE(server.metricsJson().find("\"migrations\""),
              std::string::npos);
}

TEST(ServeMigration, WithoutMigrationSameFaultsFail)
{
    // Control for the test above: identical fault environment and
    // retry budget, migration off — the batch is unrecoverable.
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxRetries = 0;
    cfg.migrateOnMachineCheck = false;
    m.armRandomStrikes(cfg);
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    auto f = server.submit(m.randomInput(1), 0.0,
                           25.0 * server.serviceSec());
    server.drain();
    const Result r = f.get();
    EXPECT_EQ(r.outcome, Outcome::FailedMachineCheck);
    EXPECT_EQ(r.migrations, 0u);
    EXPECT_TRUE(r.output.data.empty());
}

TEST(ServeMigration, MigrationBurnsFewerChipCyclesThanFullRetry)
{
    // The point of migrating: resume from the last snapshot instead
    // of re-running from cycle zero. Same faults, same seed — the
    // migrating server must finish the request with strictly fewer
    // total chip cycles than the retrying server.
    Compiled m;
    const std::vector<std::int8_t> input = m.randomInput(1);

    ServerConfig mig;
    mig.workers = 1;
    mig.maxRetries = 0;
    mig.migrateOnMachineCheck = true;
    m.armRandomStrikes(mig);
    InferenceServer migrate(m.lw, m.in(), m.out(), mig);
    auto fm = migrate.submit(input, 0.0);
    migrate.drain();
    ASSERT_EQ(fm.get().outcome, Outcome::Served);

    ServerConfig ret = mig;
    ret.maxRetries = 30; // This seed lineage needs ~25 full retries.
    ret.migrateOnMachineCheck = false;
    InferenceServer retry(m.lw, m.in(), m.out(), ret);
    auto fr = retry.submit(input, 0.0);
    retry.drain();
    ASSERT_EQ(fr.get().outcome, Outcome::Served);

    EXPECT_LT(migrate.totalChipCycles(), retry.totalChipCycles());
}

TEST(ServeMigration, RetryBookingChargesEngineRebuild)
{
    // Regression: the retry decision used to budget service time
    // alone, admitting a retry whose completion — once the engine
    // image is re-staged over the host link — provably misses the
    // deadline. The deadline here sits between the optimistic
    // estimate (start + 2*service) and the honest one
    // (start + 2*service + rebuild): the old code would have burned
    // a doomed retry; the fixed code must fail fast with zero.
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxRetries = 3;
    cfg.chip.fault.events = m.poisonInputEvents();
    const double rebuild =
        InferenceSession(m.lw, cfg.chip).dmaSeconds();
    ASSERT_GT(rebuild, 0.0);
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    const double service = server.serviceSec();
    const double deadline = 2.0 * service + 0.5 * rebuild;
    auto f = server.submit(m.randomInput(1), 0.0, deadline);
    server.drain();

    const Result r = f.get();
    EXPECT_EQ(r.outcome, Outcome::FailedMachineCheck);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_GE(r.machineChecks, 1u);
}

TEST(ServeMigration, NoSnapshotFallsBackToFullRetry)
{
    // The scheduled double-bit pair fires at cycle 0 — before the
    // first snapshot can possibly be taken — so migration has
    // nothing to restore and the worker must fall through to the
    // bounded full-retry policy (which replays the fault and
    // exhausts).
    Compiled m;
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxRetries = 1;
    cfg.migrateOnMachineCheck = true;
    cfg.snapshotEveryCycles = 100'000'000;
    cfg.chip.fault.events = m.poisonInputEvents();
    InferenceServer server(m.lw, m.in(), m.out(), cfg);

    auto f = server.submit(m.randomInput(1), 0.0);
    server.drain();
    const Result r = f.get();
    EXPECT_EQ(r.outcome, Outcome::FailedMachineCheck);
    EXPECT_EQ(r.retries, 1u);
    EXPECT_EQ(r.migrations, 0u);
    EXPECT_GE(r.machineChecks, 2u);
}

TEST(ServeMigration, SnapshotCadenceAloneDoesNotPerturbServing)
{
    // Arming periodic snapshots without any faults must not change a
    // single byte or booking relative to a plain server.
    Compiled m;
    ServerConfig plain_cfg;
    plain_cfg.workers = 1;
    ServerConfig snap_cfg = plain_cfg;
    snap_cfg.snapshotEveryCycles = 97;

    InferenceServer plain(m.lw, m.in(), m.out(), plain_cfg);
    InferenceServer snapped(m.lw, m.in(), m.out(), snap_cfg);
    const std::vector<std::int8_t> input = m.randomInput(2);

    auto fa = plain.submit(input, 0.0);
    auto fb = snapped.submit(input, 0.0);
    plain.drain();
    snapped.drain();
    const Result a = fa.get();
    const Result b = fb.get();
    ASSERT_EQ(a.outcome, Outcome::Served);
    ASSERT_EQ(b.outcome, Outcome::Served);
    EXPECT_EQ(a.output.data, b.output.data);
    EXPECT_EQ(a.measuredCycles, b.measuredCycles);
    EXPECT_EQ(a.completionSec, b.completionSec);
    EXPECT_EQ(b.migrations, 0u);
}

} // namespace
} // namespace tsp
