/**
 * @file
 * Admission/shedding edge cases and the new serve-layer hooks:
 * zero ("no deadline") and already-expired deadlines, deadlines no
 * feasible batch size can meet, malformed-input rejection before
 * admission, pinned dispatch (fault outcomes replay identically
 * across runs), detached submission via the result callback, and
 * the fleet-facing admission accessors.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "serve/server.hh"

namespace tsp {
namespace {

using serve::InferenceServer;
using serve::Outcome;
using serve::PodBackend;
using serve::Result;
using serve::ServerConfig;

constexpr int kChips = 2;
constexpr Cycle kWire = 17;

std::vector<std::int8_t>
podInput(std::int8_t fill = 1)
{
    return std::vector<std::int8_t>(PodBackend::inputBytes(kChips),
                                    fill);
}

std::unique_ptr<InferenceServer>
makeServer(ServerConfig cfg, int max_batch = 1)
{
    const ChipConfig chip = cfg.chip;
    const std::vector<Cycle> table = PodBackend::serviceCyclesTable(
        kChips, kWire, chip, max_batch);
    cfg.batchMax = max_batch;
    return std::make_unique<InferenceServer>(
        [chip, max_batch](int) {
            return std::make_unique<PodBackend>(kChips, kWire, chip,
                                                max_batch);
        },
        table, cfg);
}

TEST(ServeEdge, ZeroDeadlineMeansNoDeadline)
{
    ServerConfig cfg;
    cfg.workers = 1;
    auto server = makeServer(cfg);
    // Deadline 0 (and negative) = unconstrained: always admitted.
    auto f1 = server->submit(podInput(), 1e-6, 0.0);
    auto f2 = server->submit(podInput(), 1e-6, -3.0);
    EXPECT_EQ(f1.get().outcome, Outcome::Served);
    EXPECT_EQ(f2.get().outcome, Outcome::Served);
}

TEST(ServeEdge, ExpiredDeadlineRejectedWithZeroCycles)
{
    ServerConfig cfg;
    cfg.workers = 1;
    auto server = makeServer(cfg);
    // A deadline at (or before) the arrival stamp can never be met:
    // completion >= arrival + service. The rejection must cost zero
    // chip cycles.
    auto f = server->submit(podInput(), 5e-6, 5e-6);
    const Result r = f.get();
    EXPECT_EQ(r.outcome, Outcome::RejectedDeadline);
    EXPECT_EQ(r.measuredCycles, 0u);
    server->drain();
    EXPECT_EQ(server->totalChipCycles(), 0u);
}

TEST(ServeEdge, DeadlineInfeasibleForEveryBatchSizeRejected)
{
    // Even with batching available (cycles(b) strictly increasing,
    // so batch 1 is the cheapest), a deadline tighter than the
    // batch-1 service time is provably unmeetable and must be
    // rejected at admission — no batch size could save it.
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batchWindowSec = 1.0;
    auto server = makeServer(cfg, /*max_batch=*/4);
    const double service = server->serviceSec();
    auto f = server->submit(podInput(), 0.0, 0.5 * service);
    EXPECT_EQ(f.get().outcome, Outcome::RejectedDeadline);
    server->drain();
    EXPECT_EQ(server->totalChipCycles(), 0u);
}

TEST(ServeEdge, MalformedInputRejectedBeforeAdmission)
{
    ServerConfig cfg;
    cfg.workers = 1;
    auto server = makeServer(cfg);
    // Wrong input length: rejected as invalid before any booking —
    // previously this would TSP_ASSERT-fault inside a worker.
    auto f1 = server->submit(std::vector<std::int8_t>(7), 1e-6, 0.0);
    const Result r1 = f1.get();
    EXPECT_EQ(r1.outcome, Outcome::RejectedInvalid);
    EXPECT_EQ(r1.measuredCycles, 0u);
    auto f2 = server->submit(std::vector<std::int8_t>(), 2e-6, 0.0);
    EXPECT_EQ(f2.get().outcome, Outcome::RejectedInvalid);
    // The admission state is untouched: a valid request still books
    // the idle-server completion.
    auto f3 = server->submit(podInput(), 3e-6, 0.0);
    const Result r3 = f3.get();
    EXPECT_EQ(r3.outcome, Outcome::Served);
    EXPECT_NEAR(r3.startSec, 3e-6, 1e-12);
    server->drain();
    const auto snap = server->metricsSnapshot();
    EXPECT_EQ(snap.counters().get("rejected_invalid"), 2u);
}

TEST(ServeEdge, DetachedSubmitResolvesThroughCallback)
{
    ServerConfig cfg;
    cfg.workers = 1;
    std::atomic<std::uint64_t> served{0}, invalid{0};
    cfg.onResult = [&](const Result &r) {
        if (r.outcome == Outcome::Served)
            served.fetch_add(1);
        if (r.outcome == Outcome::RejectedInvalid)
            invalid.fetch_add(1);
    };
    auto server = makeServer(cfg);
    for (int i = 0; i < 10; ++i)
        server->submitDetached(podInput(), 1e-6 * (i + 1), 0.0);
    server->submitDetached(std::vector<std::int8_t>(3), 12e-6, 0.0);
    server->drain();
    EXPECT_EQ(served.load(), 10u);
    EXPECT_EQ(invalid.load(), 1u);
    EXPECT_EQ(server->metricsSnapshot().counters().get("served"),
              10u);
}

TEST(ServeEdge, FlushOpenBatchSealsWithoutDrain)
{
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batchWindowSec = 1.0;
    auto server = makeServer(cfg, /*max_batch=*/4);
    // One member sits in the open batch (window effectively never
    // expires, batchMax never reached)...
    auto f = server->submit(podInput(), 1e-6, 0.0);
    // ...until flushOpenBatch() seals it; the future then resolves
    // without a drain() or a second submission.
    server->flushOpenBatch();
    EXPECT_EQ(f.get().outcome, Outcome::Served);
}

TEST(ServeEdge, AdmissionAccessorsTrackBookings)
{
    ServerConfig cfg;
    cfg.workers = 2;
    auto server = makeServer(cfg);
    const double service = server->serviceSec();
    EXPECT_EQ(server->admission().backlogSec(0.0), 0.0);
    EXPECT_EQ(server->admission().busyUntil(), 0.0);
    EXPECT_EQ(server->admission().earliestWorker(), 0);

    auto f1 = server->submit(podInput(), 1e-6, 0.0);
    // Worker 0 is booked until 1e-6 + service; the next booking
    // would land on worker 1.
    EXPECT_EQ(server->admission().earliestWorker(), 1);
    EXPECT_NEAR(server->admission().busyUntil(), 1e-6 + service,
                1e-12);
    EXPECT_NEAR(server->admission().backlogSec(1e-6), service,
                1e-12);
    // Backlog decays with the probe time, not with execution.
    EXPECT_NEAR(server->admission().backlogSec(1e-6 + 0.5 * service),
                0.5 * service, 1e-12);
    EXPECT_EQ(server->admission().backlogSec(1.0), 0.0);
    f1.get();
}

TEST(ServeEdge, PinnedDispatchReplaysFaultOutcomes)
{
    // Under pinned dispatch each batch executes on the worker its
    // booking assumed, so with fault injection live the sequence of
    // per-request outcomes (including which requests absorb machine
    // checks and how many retries they take) is a pure function of
    // the submission stream — identical across runs. This is the
    // property the fleet soak's byte-identical time series rests on.
    auto runOnce = [] {
        ServerConfig cfg;
        cfg.workers = 2;
        cfg.pinnedDispatch = true;
        cfg.maxRetries = 2;
        cfg.chip.fault.memReadRate = 1e-2;
        cfg.chip.fault.memWriteRate = 1e-2;
        cfg.chip.fault.streamRate = 1e-2;
        cfg.chip.fault.c2cRate = 1e-2;
        cfg.chip.fault.doubleBitFraction = 0.3;
        auto server = makeServer(cfg);
        const double service = server->serviceSec();
        std::vector<std::future<Result>> futures;
        double now = 0.0;
        for (int i = 0; i < 200; ++i) {
            now += service * 0.4; // Keeps both workers busy.
            futures.push_back(server->submit(
                podInput(static_cast<std::int8_t>(i % 5)), now,
                now + 8.0 * service,
                InferenceServer::OnFull::Block));
        }
        std::vector<std::tuple<std::uint8_t, std::uint32_t,
                               std::uint64_t>>
            outcomes;
        for (auto &f : futures) {
            const Result r = f.get();
            outcomes.emplace_back(
                static_cast<std::uint8_t>(r.outcome), r.retries,
                r.machineChecks);
        }
        return outcomes;
    };
    const auto a = runOnce();
    const auto b = runOnce();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "request " << i;
    // The stream must actually exercise the reliability path for
    // the replay claim to mean anything.
    std::uint64_t checks = 0;
    for (const auto &[o, retries, mc] : a)
        checks += mc;
    EXPECT_GT(checks, 0u);
}

} // namespace
} // namespace tsp
