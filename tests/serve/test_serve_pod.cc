/**
 * @file
 * Multi-chip pod serving: each worker owns an N-chip ring pod running
 * the statically scheduled all-reduce, the admission controller books
 * the collective's exact (calibrated) cycle count, every served
 * result is bit-exact against a host reduction — including under
 * fault injection on SRAM, stream hops and C2C link flight — and a
 * machine check on any member condemns the whole pod through the
 * existing retry/deadline policy.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "serve/server.hh"

namespace tsp {
namespace {

using serve::InferenceServer;
using serve::Outcome;
using serve::PodBackend;
using serve::Result;
using serve::ServerConfig;

std::vector<std::int8_t>
randomPodInput(int chips, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> data(PodBackend::inputBytes(chips));
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-90, 90));
    return data;
}

/** Host saturating reduction with the schedule's chain order. */
std::vector<std::int8_t>
reduceReference(int chips, const std::vector<std::int8_t> &input)
{
    std::vector<std::int8_t> want(
        input.begin(), input.begin() + kLanes);
    for (int c = 1; c < chips; ++c) {
        for (int l = 0; l < kLanes; ++l) {
            const int s =
                int(want[static_cast<std::size_t>(l)]) +
                int(input[static_cast<std::size_t>(c) * kLanes +
                          static_cast<std::size_t>(l)]);
            want[static_cast<std::size_t>(l)] =
                static_cast<std::int8_t>(std::clamp(s, -128, 127));
        }
    }
    return want;
}

InferenceServer
makePodServer(int chips, Cycle wire, const ServerConfig &cfg)
{
    const Cycle service =
        PodBackend::serviceCycles(chips, wire, cfg.chip);
    const ChipConfig chip_cfg = cfg.chip;
    return InferenceServer(
        [chips, wire,
         chip_cfg](int) -> std::unique_ptr<serve::Backend> {
            return std::make_unique<PodBackend>(chips, wire,
                                                chip_cfg);
        },
        service, cfg);
}

TEST(ServePod, ServesExactReductionsWithExactBookings)
{
    constexpr int kChips = 3;
    ServerConfig cfg;
    cfg.workers = 2;
    InferenceServer server = makePodServer(kChips, 17, cfg);
    ASSERT_GT(server.serviceCycles(), 0u);

    constexpr int kRequests = 12;
    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < kRequests; ++i) {
        inputs.push_back(
            randomPodInput(kChips, static_cast<std::uint64_t>(i)));
        futures.push_back(server.submit(
            inputs.back(), static_cast<double>(i) * 1e-7));
    }
    server.drain();

    for (int i = 0; i < kRequests; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, Outcome::Served) << "request " << i;
        // The calibrated booking is exact: measured == predicted,
        // with no mismatch ever recorded.
        EXPECT_EQ(r.measuredCycles, r.predictedCycles);
        const auto want = reduceReference(
            kChips, inputs[static_cast<std::size_t>(i)]);
        ASSERT_EQ(r.output.data, want) << "request " << i;
    }
    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters().get("served"),
              static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(snap.predictionMismatches(), 0u);
}

TEST(ServePod, CorrectableLinkFaultsServeBitExact)
{
    // Heavy single-bit injection, including on C2C link flight: every
    // request still serves the bit-exact reduction on the first
    // attempt, with the corrections reported.
    constexpr int kChips = 4;
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.chip.fault.seed = 0xfeedull;
    cfg.chip.fault.c2cRate = 0.9;
    cfg.chip.fault.doubleBitFraction = 0.0;
    InferenceServer server = makePodServer(kChips, 9, cfg);

    constexpr int kRequests = 8;
    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < kRequests; ++i) {
        inputs.push_back(randomPodInput(
            kChips, static_cast<std::uint64_t>(50 + i)));
        futures.push_back(server.submit(
            inputs.back(), static_cast<double>(i) * 1e-7));
    }
    server.drain();

    std::uint64_t corrected = 0;
    for (int i = 0; i < kRequests; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, Outcome::Served) << "request " << i;
        EXPECT_EQ(r.retries, 0u);
        EXPECT_EQ(r.machineChecks, 0u);
        corrected += r.correctedErrors;
        const auto want = reduceReference(
            kChips, inputs[static_cast<std::size_t>(i)]);
        ASSERT_EQ(r.output.data, want) << "request " << i;
    }
    // At this rate every all-reduce takes link strikes.
    EXPECT_GT(corrected, 0u);
}

TEST(ServePod, UncorrectableLinkFaultsNeverServeCorrupted)
{
    // Random double-bit strikes in link flight: every result must be
    // either a bit-exact Served (a retry on a rebuilt pod whose
    // derived fault seed rolled no strike) or an explicit
    // FailedMachineCheck — one condemned member fails the whole pod.
    constexpr int kChips = 2;
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.maxRetries = 2;
    cfg.chip.fault.seed = 0x51ull;
    cfg.chip.fault.c2cRate = 0.25;
    cfg.chip.fault.doubleBitFraction = 1.0;
    InferenceServer server = makePodServer(kChips, 17, cfg);

    constexpr int kRequests = 16;
    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < kRequests; ++i) {
        inputs.push_back(randomPodInput(
            kChips, static_cast<std::uint64_t>(900 + i)));
        futures.push_back(server.submit(
            inputs.back(), static_cast<double>(i) * 1e-7));
    }
    server.drain();

    int served = 0, failed_mc = 0;
    for (int i = 0; i < kRequests; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        if (r.outcome == Outcome::Served) {
            ++served;
            const auto want = reduceReference(
                kChips, inputs[static_cast<std::size_t>(i)]);
            ASSERT_EQ(r.output.data, want) << "request " << i;
        } else {
            ASSERT_EQ(r.outcome, Outcome::FailedMachineCheck)
                << "request " << i;
            EXPECT_TRUE(r.output.data.empty());
            ++failed_mc;
        }
    }
    EXPECT_EQ(served + failed_mc, kRequests);

    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters().get("served"),
              static_cast<std::uint64_t>(served));
    EXPECT_EQ(snap.counters().get("failed_machine_check"),
              static_cast<std::uint64_t>(failed_mc));
    // At this rate over 16 two-chip all-reduces some strike lands; if
    // this ever flakes the rate is too low, not the invariant wrong.
    EXPECT_GT(snap.counters().get("machine_checks") +
                  snap.counters().get("retries"),
              0u);
}

TEST(ServePod, PodBackendRebuildsAfterMachineCheck)
{
    // Backend-level check of the condemn-and-rebuild path: a pod that
    // machine-checks reports it, and reset() produces a fresh pod
    // (rebuild counter advances, clocks restart).
    ChipConfig cfg;
    cfg.fault.seed = 0x2bull;
    cfg.fault.c2cRate = 0.9;
    cfg.fault.doubleBitFraction = 1.0;
    PodBackend be(3, 17, cfg);
    be.writeInput(randomPodInput(3, 1));
    const RunResult r = be.runBounded(1'000'000);
    ASSERT_FALSE(r.completed);
    ASSERT_EQ(r.status, RunStatus::MachineCheck);
    EXPECT_GE(be.machineCheckCount(), 1u);
    EXPECT_GE(be.session().machineCheckChip(), 0);

    be.reset();
    EXPECT_EQ(be.rebuilds(), 1);
    EXPECT_FALSE(be.session().pod().machineCheck());
}

} // namespace
} // namespace tsp
