/**
 * @file
 * Multi-model, multi-tenant serving: one server holds N compiled
 * model families behind a ModelRegistry. Programs compile lazily on
 * first use (a batch size that never forms is never compiled), LRU
 * eviction under a byte budget eagerly invalidates the evicted
 * model's execution traces, weight swaps between families are booked
 * *exactly* into admission completions, tenant SLO classes scale
 * deadline slack and carry priority, and a high-priority arrival may
 * preempt the open batch — victims re-queued or shed against their
 * original effective deadline, never dropped. With one family and
 * preemption off, everything reduces bit-identically to the
 * single-model server.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/rng.hh"
#include "graph/batch_program.hh"
#include "graph/graph.hh"
#include "model/resnet.hh"
#include "serve/model_registry.hh"
#include "serve/server.hh"
#include "sim/exec_trace.hh"

namespace tsp {
namespace {

using serve::InferenceServer;
using serve::ModelRegistry;
using serve::ModelSpec;
using serve::Outcome;
using serve::Result;
using serve::ServerConfig;
using serve::ServerMetrics;
using serve::SloClass;

constexpr int kH = 8, kW = 8, kC = 4;

std::vector<std::int8_t>
randomInput(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(kH) * kW * kC);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    return data;
}

ModelSpec
makeSpec(const std::string &name, std::uint64_t seed, int max_batch)
{
    ModelSpec sp;
    sp.name = name;
    sp.graph = model::buildTinyNet(seed, kH, kW, kC);
    sp.warmInput = randomInput(seed ^ 0x5eedu);
    sp.maxBatch = max_batch;
    return sp;
}

ref::QTensor
reference(const Graph &g, const std::vector<std::int8_t> &input)
{
    ref::QTensor qin(kH, kW, kC);
    qin.data = input;
    return const_cast<Graph &>(g).runReference(qin).at(
        g.outputNode());
}

std::string
metricsStr(const ServerMetrics &m)
{
    JsonWriter j;
    m.appendJson(j);
    return j.str();
}

// ---------------------------------------------------------------
// Satellite bugfix: lazy compilation in BatchProgramCache.
// ---------------------------------------------------------------

TEST(LazyBatchCompile, NothingCompiledAtConstruction)
{
    Graph g = model::buildTinyNet(3, kH, kW, kC);
    BatchProgramCache cache(g, randomInput(7), 4);
    EXPECT_EQ(cache.compiledCount(), 0u);
    EXPECT_EQ(cache.compileCount(), 0u);
    EXPECT_EQ(cache.residentBytes(), 0u);
}

TEST(LazyBatchCompile, OnlyTheRequestedSizeCompiles)
{
    Graph g = model::buildTinyNet(3, kH, kW, kC);
    BatchProgramCache cache(g, randomInput(7), 4);
    const Cycle c3 = cache.cycles(3);
    EXPECT_GT(c3, 0u);
    EXPECT_TRUE(cache.compiled(3));
    EXPECT_FALSE(cache.compiled(1));
    EXPECT_FALSE(cache.compiled(2));
    EXPECT_FALSE(cache.compiled(4));
    EXPECT_EQ(cache.compileCount(), 1u);
}

TEST(LazyBatchCompile, MemoizedCyclesSurviveEviction)
{
    Graph g = model::buildTinyNet(3, kH, kW, kC);
    BatchProgramCache cache(g, randomInput(7), 4);
    const Cycle c2 = cache.cycles(2);
    EXPECT_EQ(cache.compileCount(), 1u);
    auto evicted = cache.evict(2);
    ASSERT_NE(evicted, nullptr);
    EXPECT_FALSE(cache.compiled(2));
    // The exact cycle count is still served without recompiling —
    // admission arithmetic never waits on the compiler.
    EXPECT_EQ(cache.cycles(2), c2);
    EXPECT_EQ(cache.compileCount(), 1u);
    // Recompilation on re-acquire reproduces the identical count.
    auto again = cache.acquire(2);
    EXPECT_EQ(cache.compileCount(), 2u);
    EXPECT_EQ(again->cycles, c2);
}

/** Regression for the eager-compile bug: a server configured for
 * batches up to 4 must not compile size k until the first k-batch
 * actually forms. (Previously the server ctor compiled every size up
 * front via cyclesByBatch().) */
TEST(LazyBatchCompile, ServerCompilesOnlyFormedBatchSizes)
{
    Graph g = model::buildTinyNet(3, kH, kW, kC);
    BatchProgramCache cache(g, randomInput(7), 4);
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batchMax = 4;
    cfg.batchWindowSec = 0.0; // No joining: every batch is size 1.
    {
        InferenceServer server(cache, cfg);
        // Construction needs exactly batch-1 (the backend arms it
        // and admission prices a batch-1 service).
        EXPECT_EQ(cache.compiledCount(), 1u);
        EXPECT_TRUE(cache.compiled(1));
        std::vector<std::future<Result>> fs;
        for (int i = 0; i < 6; ++i) {
            fs.push_back(server.submit(
                randomInput(100 + static_cast<std::uint64_t>(i)),
                static_cast<double>(i) * 1e-3));
        }
        server.drain();
        for (auto &f : fs)
            EXPECT_EQ(f.get().batch, 1);
        // Six singles served; sizes 2..4 never formed, never
        // compiled.
        EXPECT_EQ(cache.compiledCount(), 1u);
        EXPECT_FALSE(cache.compiled(2));
        EXPECT_FALSE(cache.compiled(4));
    }
    // Now a 2-batch forms: size 2 compiles on first use.
    ServerConfig cfg2 = cfg;
    cfg2.batchWindowSec = 1.0;
    InferenceServer server(cache, cfg2);
    auto f0 = server.submit(randomInput(200), 0.0);
    auto f1 = server.submit(randomInput(201), 1e-7);
    server.flushOpenBatch();
    EXPECT_EQ(f0.get().batch, 2);
    EXPECT_EQ(f1.get().batch, 2);
    EXPECT_TRUE(cache.compiled(2));
    EXPECT_FALSE(cache.compiled(3));
    EXPECT_FALSE(cache.compiled(4));
}

// ---------------------------------------------------------------
// ModelRegistry: LRU eviction and eager trace invalidation.
// ---------------------------------------------------------------

TEST(ModelRegistryTest, LruEvictsColdFamilyUnderBudget)
{
    std::vector<ModelSpec> specs;
    specs.push_back(makeSpec("a", 3, 2));
    specs.push_back(makeSpec("b", 11, 2));
    // A budget of one byte forces every acquire over budget; the
    // just-acquired program must survive its own acquire, so exactly
    // one program is resident at a time.
    ModelRegistry reg(std::move(specs), /*budget_bytes=*/1);
    auto pa = reg.acquire(0, 1);
    ASSERT_NE(pa, nullptr);
    EXPECT_TRUE(reg.compiled(0, 1));
    EXPECT_EQ(reg.evictions(), 0u);

    auto pb = reg.acquire(1, 1);
    ASSERT_NE(pb, nullptr);
    EXPECT_TRUE(reg.compiled(1, 1));
    EXPECT_FALSE(reg.compiled(0, 1)); // LRU victim.
    EXPECT_EQ(reg.evictions(), 1u);

    // The pinned handle keeps the evicted program alive and correct.
    EXPECT_GT(pa->cycles, 0u);

    // Re-acquiring family a recompiles to the identical program.
    auto pa2 = reg.acquire(0, 1);
    EXPECT_EQ(pa2->cycles, pa->cycles);
    EXPECT_EQ(pa2->progHash, pa->progHash);
    EXPECT_EQ(reg.evictions(), 2u);
    EXPECT_EQ(reg.compileCount(), 3u);
}

TEST(ModelRegistryTest, EvictionEagerlyInvalidatesTraces)
{
    std::vector<ModelSpec> specs;
    specs.push_back(makeSpec("a", 3, 1));
    specs.push_back(makeSpec("b", 11, 1));
    ModelRegistry reg(std::move(specs), /*budget_bytes=*/1);
    auto traces = std::make_shared<TraceCache>();
    reg.attachTraceCache(traces);

    auto pa = reg.acquire(0, 1);
    // A recorded trace keyed by family a's compiled program.
    auto tr = std::make_shared<ExecutionTrace>();
    tr->events.resize(64);
    const std::size_t tr_bytes = tr->memoryBytes();
    ASSERT_GT(tr_bytes, 0u);
    traces->insert(TraceKey{pa->prog.get(), pa->progHash}, tr);
    EXPECT_EQ(traces->size(), 1u);
    EXPECT_EQ(traces->memoryBytes(), tr_bytes);

    // Swapping family b in evicts a's program — and its traces leave
    // the shared budget *immediately*, not on some later miss.
    auto pb = reg.acquire(1, 1);
    EXPECT_FALSE(reg.compiled(0, 1));
    EXPECT_EQ(traces->size(), 0u);
    EXPECT_EQ(traces->memoryBytes(), 0u);
}

// ---------------------------------------------------------------
// Satellite bugfix: metrics schema v2 emits every outcome counter.
// ---------------------------------------------------------------

TEST(MetricsSchema, AllOutcomeCountersPresentAtZero)
{
    ServerMetrics m(1e-6, 1, 8);
    const std::string j = metricsStr(m);
    EXPECT_NE(j.find("\"schema_version\":2"), std::string::npos);
    // Every outcome name appears even though nothing was recorded —
    // consumers diff reports across runs without key churn.
    for (const char *name :
         {"served", "rejected_deadline", "rejected_queue_full",
          "rejected_invalid", "deadline_missed", "failed",
          "failed_machine_check", "submitted", "batches",
          "batch_samples", "machine_checks", "retries", "migrations",
          "ecc_corrected", "preemptions", "preempted_requeued",
          "preempted_shed"}) {
        EXPECT_NE(j.find("\"" + std::string(name) + "\":0"),
                  std::string::npos)
            << "missing zero-valued counter " << name;
    }
}

// ---------------------------------------------------------------
// Multi-model serving correctness.
// ---------------------------------------------------------------

TEST(MultiModelServe, TwoFamiliesServeTheirOwnReference)
{
    std::vector<ModelSpec> specs;
    specs.push_back(makeSpec("a", 3, 1));
    specs.push_back(makeSpec("b", 11, 1));
    const Graph ga = specs[0].graph;
    const Graph gb = specs[1].graph;
    ModelRegistry reg(std::move(specs));
    ServerConfig cfg;
    cfg.workers = 2;
    InferenceServer server(reg, cfg);
    ASSERT_EQ(server.models(), 2);

    std::vector<std::future<Result>> fa, fb;
    std::vector<std::vector<std::int8_t>> ia, ib;
    for (int i = 0; i < 4; ++i) {
        ia.push_back(randomInput(400 + static_cast<std::uint64_t>(i)));
        ib.push_back(randomInput(500 + static_cast<std::uint64_t>(i)));
        const double t = static_cast<double>(i) * 1e-5;
        fa.push_back(server.submitModel(0, 0, ia.back(), t));
        fb.push_back(server.submitModel(1, 0, ib.back(), t + 5e-6));
    }
    server.drain();
    for (int i = 0; i < 4; ++i) {
        const Result ra = fa[static_cast<std::size_t>(i)].get();
        const Result rb = fb[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(ra.outcome, Outcome::Served);
        ASSERT_EQ(rb.outcome, Outcome::Served);
        EXPECT_EQ(ra.model, 0);
        EXPECT_EQ(rb.model, 1);
        // Each family's output is bit-identical to its own graph's
        // reference — families never bleed into each other even when
        // the same workers serve both.
        EXPECT_EQ(ra.output.data,
                  reference(ga, ia[static_cast<std::size_t>(i)]).data);
        EXPECT_EQ(rb.output.data,
                  reference(gb, ib[static_cast<std::size_t>(i)]).data);
    }
    EXPECT_EQ(server.metricsSnapshot().predictionMismatches(), 0u);
}

TEST(MultiModelServe, SwapCostBookedExactlyIntoAdmission)
{
    std::vector<ModelSpec> specs;
    specs.push_back(makeSpec("a", 3, 1));
    specs.push_back(makeSpec("b", 11, 1));
    ModelRegistry reg(std::move(specs));
    const double swap1 = reg.swapSec(1, 1);
    const double swap0 = reg.swapSec(0, 1);
    ASSERT_GT(swap1, 0.0);
    ServerConfig cfg;
    cfg.workers = 1;
    InferenceServer server(reg, cfg);

    // Worker starts staged with family 0: no swap.
    Result r0 = server.submitModel(0, 0, randomInput(1), 0.0).get();
    ASSERT_EQ(r0.outcome, Outcome::Served);
    EXPECT_DOUBLE_EQ(r0.startSec, 0.0);

    // First family-1 request on an idle worker pays exactly the
    // modeled weight-swap ahead of its service window.
    Result r1 = server.submitModel(1, 0, randomInput(2), 1.0).get();
    ASSERT_EQ(r1.outcome, Outcome::Served);
    EXPECT_DOUBLE_EQ(r1.startSec, 1.0 + swap1);
    EXPECT_DOUBLE_EQ(r1.completionSec,
                     r1.startSec +
                         server.admission().serviceSecFor(1, 1));

    // Family 1 is now staged: the next request swaps nothing.
    Result r2 = server.submitModel(1, 0, randomInput(3), 2.0).get();
    ASSERT_EQ(r2.outcome, Outcome::Served);
    EXPECT_DOUBLE_EQ(r2.startSec, 2.0);

    // Swapping back to family 0 pays family 0's own image cost.
    Result r3 = server.submitModel(0, 0, randomInput(4), 3.0).get();
    ASSERT_EQ(r3.outcome, Outcome::Served);
    EXPECT_DOUBLE_EQ(r3.startSec, 3.0 + swap0);

    EXPECT_EQ(server.metricsSnapshot().predictionMismatches(), 0u);
}

TEST(MultiModelServe, InvalidModelClassAndInputAreRejected)
{
    std::vector<ModelSpec> specs;
    specs.push_back(makeSpec("a", 3, 1));
    specs.push_back(makeSpec("b", 11, 1));
    ModelRegistry reg(std::move(specs));
    ServerConfig cfg;
    cfg.workers = 1;
    InferenceServer server(reg, cfg);

    EXPECT_EQ(server.submitModel(-1, 0, randomInput(1), 0.0)
                  .get()
                  .outcome,
              Outcome::RejectedInvalid);
    EXPECT_EQ(server.submitModel(2, 0, randomInput(1), 0.0)
                  .get()
                  .outcome,
              Outcome::RejectedInvalid);
    EXPECT_EQ(server.submitModel(0, 7, randomInput(1), 0.0)
                  .get()
                  .outcome,
              Outcome::RejectedInvalid);
    // Payload sized for the wrong family.
    std::vector<std::int8_t> wrong(3, 1);
    EXPECT_EQ(
        server.submitModel(1, 0, std::move(wrong), 0.0).get().outcome,
        Outcome::RejectedInvalid);
    server.drain();
    EXPECT_EQ(server.metricsSnapshot().counters().get(
                  "rejected_invalid"),
              4u);
}

TEST(MultiModelServe, SloClassScalesDeadlineSlack)
{
    std::vector<ModelSpec> specs;
    specs.push_back(makeSpec("a", 3, 1));
    ModelRegistry reg(std::move(specs));
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.sloClasses.push_back(SloClass{1.0, 0});
    cfg.sloClasses.push_back(SloClass{0.5, 1});
    InferenceServer server(reg, cfg);
    const double svc = server.admission().serviceSec(1);

    // Occupy the worker until svc.
    auto f0 = server.submitModel(0, 0, randomInput(1), 0.0);
    // Same nominal deadline, different tenant class: class 1's
    // halved slack makes the identical request infeasible.
    const double deadline = 2.5 * svc;
    Result tight =
        server.submitModel(0, 1, randomInput(2), 0.0, deadline)
            .get();
    EXPECT_EQ(tight.outcome, Outcome::RejectedDeadline);
    Result ok =
        server.submitModel(0, 0, randomInput(3), 0.0, deadline)
            .get();
    EXPECT_EQ(ok.outcome, Outcome::Served);
    EXPECT_LE(ok.completionSec, deadline);
    EXPECT_EQ(f0.get().outcome, Outcome::Served);
}

// ---------------------------------------------------------------
// Priority preemption.
// ---------------------------------------------------------------

struct PreemptRig
{
    std::unique_ptr<ModelRegistry> reg;
    std::unique_ptr<InferenceServer> server;
    double svc1 = 0.0;

    explicit PreemptRig(bool preemption)
    {
        std::vector<ModelSpec> specs;
        specs.push_back(makeSpec("a", 3, 2));
        reg = std::make_unique<ModelRegistry>(std::move(specs));
        ServerConfig cfg;
        cfg.workers = 1;
        cfg.batchMax = 2;
        cfg.batchWindowSec = 1.0; // Open batch lingers.
        cfg.preemption = preemption;
        cfg.sloClasses.push_back(SloClass{1.0, 0});
        cfg.sloClasses.push_back(SloClass{1.0, 1});
        server = std::make_unique<InferenceServer>(*reg, cfg);
        svc1 = server->admission().serviceSec(1);
    }
};

TEST(Preemption, HighPriorityAdmittedWhereControlRejects)
{
    // The demo scenario: a low-priority batch is open; a
    // high-priority request arrives whose deadline is infeasible
    // behind it but feasible in its place.
    PreemptRig rig(/*preemption=*/true);
    auto fa = rig.server->submitModel(0, 0, randomInput(1), 0.0);
    const double deadline = 1.2 * rig.svc1;
    auto fb = rig.server->submitModel(0, 1, randomInput(2), 0.0,
                                      deadline);
    rig.server->flushOpenBatch();
    const Result rb = fb.get();
    EXPECT_EQ(rb.outcome, Outcome::Served);
    EXPECT_DOUBLE_EQ(rb.completionSec, rig.svc1);
    EXPECT_EQ(rb.preemptions, 0u);
    // The victim was re-queued behind the preemptor — served late,
    // never dropped.
    const Result ra = fa.get();
    EXPECT_EQ(ra.outcome, Outcome::Served);
    EXPECT_DOUBLE_EQ(ra.startSec, rig.svc1);
    EXPECT_EQ(ra.preemptions, 1u);
    const auto snap = rig.server->metricsSnapshot();
    EXPECT_EQ(snap.counters().get("preemptions"), 1u);
    EXPECT_EQ(snap.counters().get("preempted_requeued"), 1u);
    EXPECT_EQ(snap.counters().get("preempted_shed"), 0u);

    // Control: identical stream, preemption off — the
    // high-priority deadline is provably missed and rejected.
    PreemptRig ctl(/*preemption=*/false);
    auto ca = ctl.server->submitModel(0, 0, randomInput(1), 0.0);
    auto cb = ctl.server->submitModel(0, 1, randomInput(2), 0.0,
                                      1.2 * ctl.svc1);
    ctl.server->flushOpenBatch();
    EXPECT_EQ(cb.get().outcome, Outcome::RejectedDeadline);
    EXPECT_EQ(ca.get().outcome, Outcome::Served);
    EXPECT_EQ(ctl.server->metricsSnapshot().counters().get(
                  "preemptions"),
              0u);
}

TEST(Preemption, VictimWithInfeasibleDeadlineIsShedNotDropped)
{
    PreemptRig rig(/*preemption=*/true);
    // The victim's own deadline admits it alone (1.3 svc > svc) but
    // not behind the preemptor (2 svc).
    auto fa = rig.server->submitModel(0, 0, randomInput(1), 0.0,
                                      1.3 * rig.svc1);
    auto fb = rig.server->submitModel(0, 1, randomInput(2), 0.0,
                                      1.2 * rig.svc1);
    rig.server->flushOpenBatch();
    EXPECT_EQ(fb.get().outcome, Outcome::Served);
    const Result ra = fa.get();
    // Shed against its original effective deadline, preemption
    // count recorded — a decided rejection, not a lost request.
    EXPECT_EQ(ra.outcome, Outcome::RejectedDeadline);
    EXPECT_EQ(ra.preemptions, 1u);
    const auto snap = rig.server->metricsSnapshot();
    EXPECT_EQ(snap.counters().get("preempted_shed"), 1u);
    EXPECT_EQ(snap.counters().get("preempted_requeued"), 0u);
    // Nothing vanished: every submitted request has a recorded
    // outcome.
    EXPECT_EQ(snap.counters().get("submitted"),
              snap.counters().get("served") +
                  snap.counters().get("rejected_deadline"));
}

TEST(Preemption, PreemptedBatchRetriesThroughMachineCheck)
{
    // Preempt-then-retry: the preemptor's batch hits an
    // uncorrectable fault mid-run and the whole-batch retry path
    // still runs — preemption only rearranges *admission* state, so
    // the fault machinery is untouched.
    std::vector<ModelSpec> specs;
    specs.push_back(makeSpec("a", 3, 2));
    ModelRegistry reg(std::move(specs));
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batchMax = 2;
    cfg.batchWindowSec = 1.0;
    cfg.preemption = true;
    cfg.maxRetries = 4;
    cfg.sloClasses.push_back(SloClass{1.0, 0});
    cfg.sloClasses.push_back(SloClass{1.0, 1});
    cfg.chip.fault.streamRate = 5e-4;
    cfg.chip.fault.doubleBitFraction = 1.0;
    cfg.chip.fault.seed = 0x5151ull;
    InferenceServer server(reg, cfg);
    const double svc = server.admission().serviceSec(1);

    auto fa = server.submitModel(0, 0, randomInput(1), 0.0);
    auto fb =
        server.submitModel(0, 1, randomInput(2), 0.0, 50.0 * svc);
    server.flushOpenBatch();
    server.drain();
    const Result ra = fa.get();
    const Result rb = fb.get();
    const auto snap = server.metricsSnapshot();
    // Under this fault rate the run machine-checks at least once;
    // every outcome is still a decided one and no corrupted output
    // is ever served.
    EXPECT_GT(snap.counters().get("machine_checks"), 0u);
    for (const Result *r : {&ra, &rb}) {
        EXPECT_TRUE(r->outcome == Outcome::Served ||
                    r->outcome == Outcome::DeadlineMissed ||
                    r->outcome == Outcome::FailedMachineCheck ||
                    r->outcome == Outcome::RejectedDeadline)
            << outcomeName(r->outcome);
    }
    EXPECT_EQ(snap.predictionMismatches(), 0u);
}

// ---------------------------------------------------------------
// Reduction to the single-model server, and determinism.
// ---------------------------------------------------------------

TEST(MultiModelReduction, OneFamilyNoPreemptionBitIdenticalToPr8)
{
    // Same graph, same stream: a one-family registry server with
    // preemption off must produce byte-identical serving metrics to
    // the plain BatchProgramCache server.
    Graph g = model::buildTinyNet(3, kH, kW, kC);
    const auto warm = randomInput(3 ^ 0x5eedu);
    BatchProgramCache cache(g, warm, 2);

    std::vector<ModelSpec> specs;
    specs.push_back(makeSpec("a", 3, 2));
    ModelRegistry reg(std::move(specs));

    ServerConfig cfg;
    cfg.workers = 2;
    cfg.batchMax = 2;
    cfg.batchWindowSec = 2e-7;
    cfg.pinnedDispatch = true;

    auto drive = [&](InferenceServer &server) {
        Rng rng(42);
        const double svc = server.admission().serviceSec(1);
        double now = 0.0;
        std::vector<std::future<Result>> fs;
        for (int i = 0; i < 60; ++i) {
            now += -std::log(1.0 - rng.nextDouble()) * svc * 0.4;
            fs.push_back(server.submit(
                randomInput(static_cast<std::uint64_t>(i)), now,
                now + 3.0 * svc,
                InferenceServer::OnFull::Block));
        }
        server.drain();
        std::string outcomes;
        for (auto &f : fs) {
            const Result r = f.get();
            outcomes += outcomeName(r.outcome);
            outcomes += ',';
            outcomes += std::to_string(r.completionSec);
            outcomes += ';';
        }
        return outcomes + "|" + metricsStr(server.metricsSnapshot());
    };

    std::string a, b;
    {
        InferenceServer s(cache, cfg);
        a = drive(s);
    }
    {
        InferenceServer s(reg, cfg);
        b = drive(s);
    }
    EXPECT_EQ(a, b);
}

TEST(MixedSoak, SameSeedByteIdenticalWithFaultsLive)
{
    // Two families, mixed priorities, preemption on, correctable
    // and uncorrectable faults injected: the whole serving report —
    // counters, preemptions, registry state — replays byte-for-byte
    // for a given seed.
    auto run = [&]() {
        std::vector<ModelSpec> specs;
        specs.push_back(makeSpec("a", 3, 2));
        specs.push_back(makeSpec("b", 11, 2));
        ModelRegistry reg(std::move(specs));
        ServerConfig cfg;
        cfg.workers = 2;
        cfg.batchMax = 2;
        cfg.batchWindowSec = 2e-7;
        cfg.preemption = true;
        cfg.maxRetries = 3;
        cfg.sloClasses.push_back(SloClass{1.0, 0});
        cfg.sloClasses.push_back(SloClass{0.8, 1});
        cfg.chip.fault.memReadRate = 1e-6;
        cfg.chip.fault.memWriteRate = 1e-6;
        cfg.chip.fault.streamRate = 1e-6;
        cfg.chip.fault.doubleBitFraction = 0.2;
        cfg.chip.fault.seed = 7;
        InferenceServer server(reg, cfg);
        Rng rng(1234);
        const double svc = server.admission().serviceSec(1);
        double now = 0.0;
        for (int i = 0; i < 120; ++i) {
            now += -std::log(1.0 - rng.nextDouble()) * svc * 0.35;
            const int m = static_cast<int>(rng.intIn(0, 1));
            const int tenant =
                rng.nextDouble() < 0.25 ? 1 : 0;
            server.submitModelDetached(
                m, tenant,
                randomInput(static_cast<std::uint64_t>(i)), now,
                now + 2.5 * svc,
                InferenceServer::OnFull::Block);
        }
        server.drain();
        const auto snap = server.metricsSnapshot();
        EXPECT_EQ(snap.predictionMismatches(), 0u);
        EXPECT_EQ(snap.counters().get("submitted"), 120u);
        return server.metricsJson();
    };
    const std::string first = run();
    const std::string second = run();
    EXPECT_EQ(first, second);
    // The run exercised the multi-tenant machinery, not a quiet
    // corner: both families served and something was preempted or
    // swapped.
    EXPECT_NE(first.find("\"name\":\"a\""), std::string::npos);
    EXPECT_NE(first.find("\"name\":\"b\""), std::string::npos);
}

} // namespace
} // namespace tsp
