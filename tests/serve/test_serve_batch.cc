/**
 * @file
 * Deterministic batched serving: the compiled batch-B program installs
 * weights once and pipelines B per-sample schedules, so cycles(B) is
 * exact, strictly sublinear per sample, and every per-sample output is
 * bit-identical to B independent batch-1 serves — including under
 * injected correctable faults. The batcher's open/tryJoin/seal
 * arithmetic proves feasibility before committing, a mid-batch machine
 * check condemns and retries the whole batch, and the pod backend's
 * batched ring all-reduce keeps the same contracts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hh"
#include "graph/batch_program.hh"
#include "graph/graph.hh"
#include "model/resnet.hh"
#include "serve/server.hh"

namespace tsp {
namespace {

using serve::Admission;
using serve::AdmissionController;
using serve::InferenceServer;
using serve::Outcome;
using serve::PodBackend;
using serve::Result;
using serve::ServerConfig;
using serve::SessionBackend;

constexpr int kH = 8, kW = 8, kC = 4;

std::vector<std::int8_t>
randomInput(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(kH) * kW * kC);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    return data;
}

/** One compiled batch cache over the tiny net, shared per fixture. */
struct BatchCompiled
{
    Graph g;
    BatchProgramCache cache;

    explicit BatchCompiled(int max_batch)
        : g(model::buildTinyNet(3, kH, kW, kC)),
          cache(g, randomInput(7), max_batch)
    {
    }

    ref::QTensor
    reference(const std::vector<std::int8_t> &input) const
    {
        ref::QTensor qin(kH, kW, kC);
        qin.data = input;
        return g.runReference(qin).at(g.outputNode());
    }
};

// ---------------------------------------------------------------
// BatchProgramCache — the compiler-side amortization claims.
// ---------------------------------------------------------------

TEST(BatchProgram, PerSampleCyclesStrictlyDecrease)
{
    BatchCompiled m(8);
    const auto &cycles = m.cache.cyclesByBatch();
    ASSERT_EQ(cycles.size(), 8u);
    for (int b = 2; b <= 8; ++b) {
        const double per_prev =
            static_cast<double>(cycles[static_cast<std::size_t>(
                b - 2)]) /
            (b - 1);
        const double per =
            static_cast<double>(
                cycles[static_cast<std::size_t>(b - 1)]) /
            b;
        // The whole point of batching: amortized weight install and
        // pipelined seams make per-sample cost strictly decreasing.
        EXPECT_LT(per, per_prev) << "batch " << b;
        // And strictly sublinear vs b batch-1 replays.
        EXPECT_LT(cycles[static_cast<std::size_t>(b - 1)],
                  static_cast<Cycle>(b) * cycles[0])
            << "batch " << b;
    }
}

TEST(BatchProgram, WeightInstallIsAmortized)
{
    BatchCompiled m(4);
    // The conv placement cache places each layer's weights exactly
    // once regardless of batch size — repeats reuse the tiles.
    const std::uint64_t solo =
        m.cache.get(1).lw->weightPlacements();
    ASSERT_GT(solo, 0u);
    for (int b = 2; b <= 4; ++b)
        EXPECT_EQ(m.cache.get(b).lw->weightPlacements(), solo)
            << "batch " << b;
}

TEST(BatchProgram, PerSampleSlotsAreDistinct)
{
    BatchCompiled m(4);
    const BatchProgram &bp = m.cache.get(4);
    ASSERT_EQ(bp.inputs.size(), 4u);
    ASSERT_EQ(bp.outputs.size(), 4u);
    for (int a = 0; a < 4; ++a) {
        for (int b = a + 1; b < 4; ++b) {
            // Distinct activation storage per sample: bump-allocated
            // tensors must not alias or batch members would corrupt
            // each other.
            const GlobalAddr pa =
                bp.outputs[static_cast<std::size_t>(a)].t.addrOf(
                    0, 0, 0, 0);
            const GlobalAddr pb =
                bp.outputs[static_cast<std::size_t>(b)].t.addrOf(
                    0, 0, 0, 0);
            EXPECT_FALSE(pa.hem == pb.hem && pa.slice == pb.slice &&
                         pa.addr == pb.addr)
                << "samples " << a << "/" << b;
        }
    }
}

// ---------------------------------------------------------------
// AdmissionController — batch open/tryJoin/seal arithmetic.
// ---------------------------------------------------------------

TEST(BatchAdmission, JoinRebooksExactBatchCompletion)
{
    // cycles table {1000, 1800, 2400} at 1 GHz.
    AdmissionController ac(1, {1000, 1800, 2400}, 1e-9);
    EXPECT_EQ(ac.maxBatch(), 3);
    EXPECT_DOUBLE_EQ(ac.serviceSec(2), 1.8e-6);

    const Admission a = ac.open(0.0, 0.0);
    ASSERT_TRUE(a.admitted);
    EXPECT_DOUBLE_EQ(a.completionSec, 1e-6);

    // Joining re-books the whole batch with the exact cycles(2).
    const Admission b = ac.tryJoin(0.2e-6, 0.0);
    ASSERT_TRUE(b.admitted);
    EXPECT_EQ(b.batch, 2);
    EXPECT_DOUBLE_EQ(b.startSec, 0.2e-6); // Latest member arrival.
    EXPECT_DOUBLE_EQ(b.completionSec, 0.2e-6 + 1.8e-6);

    const Admission sealed = ac.seal();
    EXPECT_EQ(sealed.batch, 2);
    EXPECT_DOUBLE_EQ(sealed.completionSec, 2e-6);

    // The worker is booked through the batch completion.
    EXPECT_DOUBLE_EQ(ac.earliestCompletion(0.0), 2e-6 + 1e-6);
    EXPECT_EQ(ac.admitted(), 2u);
}

TEST(BatchAdmission, JoinRefusedWhenMemberDeadlineWouldBreak)
{
    AdmissionController ac(1, {1000, 1800, 2400}, 1e-9);
    // The opener's deadline fits batch-1 but not batch-2.
    const Admission a = ac.open(0.0, 1.5e-6);
    ASSERT_TRUE(a.admitted);
    const Admission b = ac.tryJoin(0.0, 0.0);
    EXPECT_FALSE(b.admitted);
    // A refused join is not a rejection — the candidate will open
    // the next batch instead.
    EXPECT_EQ(ac.rejected(), 0u);
    // The open batch's booking is untouched.
    const Admission sealed = ac.seal();
    EXPECT_EQ(sealed.batch, 1);
    EXPECT_DOUBLE_EQ(sealed.completionSec, 1e-6);
}

TEST(BatchAdmission, JoinRefusedWhenCandidateDeadlineWouldBreak)
{
    AdmissionController ac(1, {1000, 1800, 2400}, 1e-9);
    ASSERT_TRUE(ac.open(0.0, 0.0).admitted);
    // The candidate's own deadline cannot absorb cycles(2).
    EXPECT_FALSE(ac.tryJoin(0.0, 1.7e-6).admitted);
    // But a feasible candidate still joins afterwards.
    EXPECT_TRUE(ac.tryJoin(0.0, 1.9e-6).admitted);
    EXPECT_EQ(ac.seal().batch, 2);
}

TEST(BatchAdmission, JoinRefusedBeyondMaxBatch)
{
    AdmissionController ac(1, {1000, 1800}, 1e-9);
    ASSERT_TRUE(ac.open(0.0, 0.0).admitted);
    ASSERT_TRUE(ac.tryJoin(0.0, 0.0).admitted);
    EXPECT_FALSE(ac.tryJoin(0.0, 0.0).admitted); // Table ends at 2.
    EXPECT_EQ(ac.seal().batch, 2);
}

// ---------------------------------------------------------------
// InferenceServer end-to-end batching.
// ---------------------------------------------------------------

TEST(BatchServer, BatchedOutputsBitIdenticalToSoloServes)
{
    constexpr int kB = 4;
    constexpr int kRequests = 8;
    BatchCompiled m(kB);

    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < kRequests; ++i)
        inputs.push_back(
            randomInput(static_cast<std::uint64_t>(100 + i)));

    // Solo serves: batching disabled, one request per run.
    std::vector<ref::QTensor> solo;
    {
        ServerConfig cfg;
        cfg.workers = 1;
        InferenceServer server(m.cache, cfg);
        EXPECT_EQ(server.batchMax(), 1);
        std::vector<std::future<Result>> futures;
        for (int i = 0; i < kRequests; ++i)
            futures.push_back(server.submit(
                inputs[static_cast<std::size_t>(i)],
                static_cast<double>(i) * 1e-7));
        server.drain();
        for (auto &f : futures) {
            Result r = f.get();
            ASSERT_EQ(r.outcome, Outcome::Served);
            EXPECT_EQ(r.batch, 1);
            solo.push_back(std::move(r.output));
        }
    }

    // Batched serves of the same inputs.
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batchMax = kB;
    cfg.batchWindowSec = 1.0; // Everything may share a batch.
    cfg.startPaused = true;   // Batches must form, not race a worker.
    InferenceServer server(m.cache, cfg);
    EXPECT_EQ(server.batchMax(), kB);

    std::vector<std::future<Result>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(
            server.submit(inputs[static_cast<std::size_t>(i)],
                          static_cast<double>(i) * 1e-7));
    server.resume();
    server.drain();

    for (int i = 0; i < kRequests; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, Outcome::Served) << "request " << i;
        EXPECT_EQ(r.batch, kB) << "request " << i;
        // The determinism contract survives batching: the booking is
        // the exact cycles(B) and the run matches it.
        EXPECT_EQ(r.predictedCycles,
                  m.cache.cyclesByBatch()[kB - 1]);
        EXPECT_EQ(r.measuredCycles, r.predictedCycles);
        // Byte-for-byte identical to the solo serve and the golden
        // reference.
        ASSERT_EQ(r.output.data,
                  solo[static_cast<std::size_t>(i)].data)
            << "request " << i;
        const ref::QTensor want =
            m.reference(inputs[static_cast<std::size_t>(i)]);
        ASSERT_EQ(r.output.data, want.data) << "request " << i;
    }

    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.predictionMismatches(), 0u);
    EXPECT_EQ(snap.counters().get("served"),
              static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(snap.counters().get("batches"),
              static_cast<std::uint64_t>(kRequests / kB));
    EXPECT_EQ(snap.counters().get("batch_samples"),
              static_cast<std::uint64_t>(kRequests));
}

TEST(BatchServer, BitIdenticalUnderCorrectableFaults)
{
    constexpr int kB = 4;
    BatchCompiled m(kB);
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batchMax = kB;
    cfg.batchWindowSec = 1.0;
    cfg.startPaused = true;
    // Correctable-only injection (see ServeFaults for why read+write
    // strikes never stack into an uncorrectable chunk).
    cfg.chip.fault.seed = 0x77ull;
    cfg.chip.fault.memReadRate = 0.02;
    cfg.chip.fault.memWriteRate = 0.02;
    cfg.chip.fault.doubleBitFraction = 0.0;
    InferenceServer server(m.cache, cfg);

    constexpr int kRequests = 8;
    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < kRequests; ++i) {
        inputs.push_back(
            randomInput(static_cast<std::uint64_t>(i)));
        futures.push_back(
            server.submit(inputs.back(),
                          static_cast<double>(i) * 1e-7));
    }
    server.resume();
    server.drain();

    std::uint64_t corrected = 0;
    for (int i = 0; i < kRequests; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, Outcome::Served) << "request " << i;
        EXPECT_EQ(r.batch, kB);
        EXPECT_EQ(r.retries, 0u);
        EXPECT_EQ(r.measuredCycles, r.predictedCycles);
        corrected += r.correctedErrors;
        const ref::QTensor want =
            m.reference(inputs[static_cast<std::size_t>(i)]);
        ASSERT_EQ(r.output.data, want.data) << "request " << i;
    }
    EXPECT_GT(corrected, 0u); // The injection actually fired.
    EXPECT_EQ(server.metricsSnapshot().predictionMismatches(), 0u);
}

TEST(BatchServer, MidBatchMachineCheckFailsWholeBatch)
{
    constexpr int kB = 4;
    BatchCompiled m(kB);
    // A double-bit (uncorrectable) scheduled fault pair on the first
    // word of sample 0's input, wired to cycle 0 so it replays on
    // every rebuilt chip: every attempt of every batch must
    // machine-check and *all* members fail together — never a
    // partial batch.
    const GlobalAddr a =
        m.cache.get(kB).inputs[0].t.addrOf(0, 0, 0, 0);
    const int slice =
        (a.hem == Hemisphere::West ? 0 : kMemSlicesPerHem) + a.slice;
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batchMax = kB;
    cfg.batchWindowSec = 1.0;
    cfg.startPaused = true;
    cfg.maxRetries = 1;
    cfg.chip.fault.events = {{0, slice, a.addr, 0, 1},
                             {0, slice, a.addr, 0, 5}};
    InferenceServer server(m.cache, cfg);

    std::vector<std::future<Result>> futures;
    for (int i = 0; i < kB; ++i)
        futures.push_back(server.submit(
            randomInput(static_cast<std::uint64_t>(i)),
            static_cast<double>(i) * 1e-7));
    server.resume();
    server.drain();

    for (auto &f : futures) {
        const Result r = f.get();
        ASSERT_EQ(r.outcome, Outcome::FailedMachineCheck);
        EXPECT_EQ(r.batch, kB);
        EXPECT_EQ(r.retries, 1u);          // Shared whole-batch retry.
        EXPECT_GE(r.machineChecks, 2u);    // Attempt + retry.
        EXPECT_TRUE(r.output.data.empty()); // Never partial output.
    }
    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters().get("failed_machine_check"),
              static_cast<std::uint64_t>(kB));
    // The batch's shared physical run is counted once, not per member.
    EXPECT_EQ(snap.counters().get("retries"), 1u);
    EXPECT_EQ(snap.counters().get("served"), 0u);
}

TEST(BatchServer, UncorrectableStrikesNeverServeCorruptedBatch)
{
    constexpr int kB = 4;
    BatchCompiled m(kB);
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.batchMax = kB;
    cfg.batchWindowSec = 1.0;
    cfg.maxRetries = 2;
    cfg.chip.fault.seed = 0x5151ull;
    cfg.chip.fault.streamRate = 2e-4;
    cfg.chip.fault.doubleBitFraction = 1.0;
    InferenceServer server(m.cache, cfg);

    constexpr int kRequests = 24;
    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < kRequests; ++i) {
        inputs.push_back(
            randomInput(static_cast<std::uint64_t>(200 + i)));
        futures.push_back(
            server.submit(inputs.back(),
                          static_cast<double>(i) * 1e-7));
    }
    server.drain();

    int served = 0, failed_mc = 0;
    for (int i = 0; i < kRequests; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        if (r.outcome == Outcome::Served) {
            ++served;
            // Bit-exact or nothing — even when the batch retried on
            // a rebuilt chip.
            const ref::QTensor want =
                m.reference(inputs[static_cast<std::size_t>(i)]);
            ASSERT_EQ(r.output.data, want.data) << "request " << i;
        } else {
            ASSERT_EQ(r.outcome, Outcome::FailedMachineCheck)
                << "request " << i;
            EXPECT_TRUE(r.output.data.empty());
            ++failed_mc;
        }
    }
    EXPECT_EQ(served + failed_mc, kRequests);
}

TEST(BatchServer, WindowZeroBatchesOnlySameArrival)
{
    constexpr int kB = 4;
    BatchCompiled m(kB);
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batchMax = kB;
    cfg.batchWindowSec = 0.0;
    cfg.startPaused = true;
    InferenceServer server(m.cache, cfg);

    // Two same-stamp pairs with distinct stamps between pairs: the
    // zero window seals at each stamp change, deterministically.
    std::vector<std::future<Result>> futures;
    const double stamps[4] = {0.0, 0.0, 1e-6, 1e-6};
    for (int i = 0; i < 4; ++i)
        futures.push_back(server.submit(
            randomInput(static_cast<std::uint64_t>(i)), stamps[i]));
    server.resume();
    server.drain();

    for (auto &f : futures) {
        const Result r = f.get();
        ASSERT_EQ(r.outcome, Outcome::Served);
        EXPECT_EQ(r.batch, 2);
    }
    EXPECT_EQ(server.metricsSnapshot().counters().get("batches"),
              2u);
}

TEST(BatchServer, BatchMaxOneIsPreBatchingBehavior)
{
    BatchCompiled m(2);
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batchMax = 1;
    cfg.batchWindowSec = 1.0; // Ignored at batchMax 1.
    InferenceServer server(m.cache, cfg);
    EXPECT_EQ(server.batchMax(), 1);

    auto f1 = server.submit(randomInput(1), 0.0);
    auto f2 = server.submit(randomInput(2), 0.0);
    server.drain();
    EXPECT_EQ(f1.get().batch, 1);
    EXPECT_EQ(f2.get().batch, 1);
    const auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters().get("batches"), 2u);
    EXPECT_EQ(snap.predictionMismatches(), 0u);
}

// ---------------------------------------------------------------
// Batched pod collective.
// ---------------------------------------------------------------

std::vector<std::int8_t>
randomPodInput(int chips, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> data(PodBackend::inputBytes(chips));
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-90, 90));
    return data;
}

/** Host saturating reduction with the schedule's chain order. */
std::vector<std::int8_t>
reduceReference(int chips, const std::vector<std::int8_t> &input)
{
    std::vector<std::int8_t> want(input.begin(),
                                  input.begin() + kLanes);
    for (int c = 1; c < chips; ++c) {
        for (int l = 0; l < kLanes; ++l) {
            const int s =
                int(want[static_cast<std::size_t>(l)]) +
                int(input[static_cast<std::size_t>(c) * kLanes +
                          static_cast<std::size_t>(l)]);
            want[static_cast<std::size_t>(l)] =
                static_cast<std::int8_t>(std::clamp(s, -128, 127));
        }
    }
    return want;
}

TEST(BatchPod, BatchedAllReduceMatchesPerSampleReference)
{
    constexpr int kChips = 4;
    constexpr int kB = 3;
    ChipConfig cfg;
    PodBackend be(kChips, 17, cfg, kB);
    EXPECT_EQ(be.maxBatch(), kB);

    std::vector<std::vector<std::int8_t>> inputs;
    std::vector<const std::vector<std::int8_t> *> ptrs;
    for (int s = 0; s < kB; ++s) {
        inputs.push_back(randomPodInput(
            kChips, static_cast<std::uint64_t>(40 + s)));
    }
    for (const auto &in : inputs)
        ptrs.push_back(&in);

    const RunResult r = be.serveBatch(ptrs, 1'000'000);
    ASSERT_TRUE(r.completed);
    for (int s = 0; s < kB; ++s) {
        const auto want = reduceReference(
            kChips, inputs[static_cast<std::size_t>(s)]);
        EXPECT_EQ(be.readSample(s).data, want) << "sample " << s;
    }
}

TEST(BatchPod, BatchedCollectiveCyclesStrictlySublinear)
{
    constexpr int kChips = 4;
    ChipConfig cfg;
    const std::vector<Cycle> table =
        PodBackend::serviceCyclesTable(kChips, 17, cfg, 4);
    ASSERT_EQ(table.size(), 4u);
    for (int b = 2; b <= 4; ++b) {
        EXPECT_GT(table[static_cast<std::size_t>(b - 1)],
                  table[static_cast<std::size_t>(b - 2)]);
        // Pipelined around the ring: the marginal sample costs less
        // than a standalone all-reduce.
        EXPECT_LT(table[static_cast<std::size_t>(b - 1)],
                  static_cast<Cycle>(b) * table[0])
            << "batch " << b;
    }
}

TEST(BatchPod, BatchedPodServingExactAndBitIdentical)
{
    constexpr int kChips = 3;
    constexpr int kB = 2;
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.batchMax = kB;
    cfg.batchWindowSec = 1.0;
    cfg.startPaused = true;
    const std::vector<Cycle> table =
        PodBackend::serviceCyclesTable(kChips, 17, cfg.chip, kB);
    const ChipConfig chip_cfg = cfg.chip;
    InferenceServer server(
        [=](int) -> std::unique_ptr<serve::Backend> {
            return std::make_unique<PodBackend>(kChips, 17, chip_cfg,
                                                kB);
        },
        table, cfg);
    EXPECT_EQ(server.batchMax(), kB);

    constexpr int kRequests = 6;
    std::vector<std::future<Result>> futures;
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < kRequests; ++i) {
        inputs.push_back(randomPodInput(
            kChips, static_cast<std::uint64_t>(70 + i)));
        futures.push_back(
            server.submit(inputs.back(),
                          static_cast<double>(i) * 1e-7));
    }
    server.resume();
    server.drain();

    for (int i = 0; i < kRequests; ++i) {
        const Result r = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(r.outcome, Outcome::Served) << "request " << i;
        EXPECT_EQ(r.batch, kB);
        EXPECT_EQ(r.predictedCycles,
                  table[static_cast<std::size_t>(kB - 1)]);
        EXPECT_EQ(r.measuredCycles, r.predictedCycles);
        const auto want = reduceReference(
            kChips, inputs[static_cast<std::size_t>(i)]);
        ASSERT_EQ(r.output.data, want) << "request " << i;
    }
    EXPECT_EQ(server.metricsSnapshot().predictionMismatches(), 0u);
}

} // namespace
} // namespace tsp
