/**
 * @file
 * Executes the worked example from docs/KERNEL_TUTORIAL.md verbatim,
 * so the tutorial can never drift from the real API or the real
 * timing rules.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "compiler/builder.hh"
#include "sim/chip.hh"

namespace tsp {
namespace {

TEST(KernelTutorial, WorkedExampleComputesReluOfSum)
{
    ScheduledProgram prog;
    KernelBuilder kb(prog);

    const GlobalAddr x{Hemisphere::West, 0, 0x10};
    const GlobalAddr c{Hemisphere::West, 1, 0x11};
    const GlobalAddr y{Hemisphere::West, 2, 0x12};

    const Cycle at = 100;

    kb.readArriving(x, {16, Direction::East}, Layout::vxm, at);
    kb.readArriving(c, {17, Direction::East}, Layout::vxm, at);

    const Cycle sum_vis = kb.vxmBinary(0, Opcode::AddSat, DType::Int8,
                                       {16, Direction::East},
                                       {17, Direction::East},
                                       {8, Direction::East}, at);
    const Cycle out_vis = kb.vxmUnary(1, Opcode::Relu, DType::Int8,
                                      {8, Direction::East},
                                      {29, Direction::West}, sum_vis);

    kb.write(y, {29, Direction::West},
             out_vis + Layout::transitDelay(Layout::vxm, y.pos()));

    Chip chip;
    // Lane values chosen to exercise saturation and negative clamp:
    // x = lane index - 100, c = 60.
    Vec320 xv, cv;
    for (int sl = 0; sl < kSuperlanes; ++sl) {
        for (int ln = 0; ln < kLanesPerSuperlane; ++ln) {
            const int lane = sl * kLanesPerSuperlane + ln;
            xv.set(sl, ln, static_cast<std::uint8_t>(
                               static_cast<std::int8_t>(lane - 100)));
            cv.set(sl, ln, 60);
        }
    }
    chip.mem(Hemisphere::West, 0).backdoorWrite(0x10, xv);
    chip.mem(Hemisphere::West, 1).backdoorWrite(0x11, cv);

    chip.loadProgram(prog.toAsm(/*with_preamble=*/true));
    chip.run();

    const Vec320 got = chip.mem(Hemisphere::West, 2).backdoorRead(0x12);
    for (int sl = 0; sl < kSuperlanes; ++sl) {
        for (int ln = 0; ln < kLanesPerSuperlane; ++ln) {
            const int lane = sl * kLanesPerSuperlane + ln;
            const int xi = static_cast<std::int8_t>(lane - 100);
            int sum = std::clamp(xi + 60, -128, 127); // AddSat
            sum = std::max(sum, 0);                   // Relu
            EXPECT_EQ(static_cast<std::int8_t>(got.at(sl, ln)), sum)
                << "lane " << lane;
        }
    }
}

TEST(KernelTutorial, TooEarlyArrivalPanics)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ScheduledProgram prog;
        KernelBuilder kb(prog);
        const GlobalAddr x{Hemisphere::West, 0, 0x10};
        // Arrival before the read could even have been issued.
        kb.readArriving(x, {16, Direction::East}, Layout::vxm, 0);
    };
    ASSERT_DEATH(body(), "");
}

} // namespace
} // namespace tsp
