/**
 * @file
 * Lowering internals: slice-group rotation with avoidance, the
 * MEM-to-MEM copyTensor kernel, ActTensor halo/ownership geometry,
 * and GlobalAddr helpers.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compiler/lowering.hh"
#include "runtime/session.hh"

namespace tsp {
namespace {

std::vector<std::int8_t>
randomData(int h, int w, int c, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> d(static_cast<std::size_t>(h) * w * c);
    for (auto &v : d)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    return d;
}

TEST(LoweringInternals, GroupRotationAvoidsInputs)
{
    Lowering lw(true);
    const auto d = randomData(4, 4, 8, 1);
    const LoweredTensor a = lw.inputTensor(4, 4, 8, d);
    const int ga = Lowering::groupOf(a);
    ASSERT_GE(ga, 0);
    // A conv consuming `a` must land elsewhere.
    ConvGeom g;
    ConvWeights w;
    w.outC = 8;
    w.inC = 8;
    w.kh = w.kw = 1;
    w.w.assign(64, 1);
    w.bias.assign(8, 0);
    w.scale.assign(8, 0.01f);
    const LoweredTensor out = lw.conv2d(a, g, w);
    EXPECT_NE(Lowering::groupOf(out), ga);
}

TEST(LoweringInternals, CopyTensorRoundTrips)
{
    const int h = 6, w = 5, c = 24;
    const auto data = randomData(h, w, c, 3);
    Lowering lw(true);
    const LoweredTensor src = lw.inputTensor(h, w, c, data);
    const LoweredTensor dst =
        lw.copyTensor(src, 1 << Lowering::groupOf(src));
    EXPECT_NE(Lowering::groupOf(dst), Lowering::groupOf(src));

    InferenceSession sess(lw);
    sess.run();
    const auto got = sess.readTensor(dst);
    EXPECT_EQ(got.data, data);

    // Halo rows were copied too: both parts store the duplicated
    // boundary rows.
    for (int e = 0; e < 2; ++e)
        EXPECT_EQ(dst.t.part[e].rows, src.t.part[e].rows);
}

TEST(ActTensorGeometry, HaloAndOwnership)
{
    ActTensor t;
    t.height = 10;
    t.width = 4;
    t.kgCount = 2;
    t.splitY = 5;
    t.halo = 2;
    EXPECT_EQ(t.storedHiY(), 7);
    EXPECT_EQ(t.storedLoY(), 3);
    EXPECT_TRUE(t.stores(0, 0));
    EXPECT_TRUE(t.stores(0, 6));
    EXPECT_FALSE(t.stores(0, 7));
    EXPECT_TRUE(t.stores(1, 3));
    EXPECT_FALSE(t.stores(1, 2));
    EXPECT_FALSE(t.stores(0, -1));
    EXPECT_FALSE(t.stores(1, 10));
    EXPECT_EQ(t.ownerOf(4), 0);
    EXPECT_EQ(t.ownerOf(5), 1);
    EXPECT_EQ(t.ownedRows(0), 5);
    EXPECT_EQ(t.ownedRows(1), 5);
    // Local rows: east part's y=3 is its row 0.
    EXPECT_EQ(t.localRow(1, 3, 0, 0), 0);
    EXPECT_EQ(t.localRow(1, 4, 1, 1), (1 * 4 + 1) * 2 + 1);
}

TEST(GlobalAddrHelpers, BankPositionLinear)
{
    const GlobalAddr a{Hemisphere::East, 7, 0x1003};
    EXPECT_EQ(a.bank(), 1);
    EXPECT_EQ(a.pos(), Layout::memPos(Hemisphere::East, 7));
    EXPECT_EQ(a.icu(), IcuId::mem(Hemisphere::East, 7));
    const GlobalAddr b{Hemisphere::West, 7, 0x1003};
    EXPECT_NE(a.linear(), b.linear());
    EXPECT_EQ(a.toString(), "E7:0x1003");
}

TEST(LoweringInternals, LayerSpansRecorded)
{
    Lowering lw(true);
    const auto d = randomData(4, 4, 8, 5);
    const LoweredTensor in = lw.inputTensor(4, 4, 8, d);
    lw.setNextLayerName("my_pool");
    lw.maxPool(in, 3, 2, 1);
    ASSERT_EQ(lw.layers().size(), 1u);
    EXPECT_EQ(lw.layers()[0].name, "my_pool");
    EXPECT_GT(lw.layers()[0].end, lw.layers()[0].begin);
}

TEST(LoweringInternals, NonPipelinedWaitsForProducer)
{
    // Sequential mode's first consumer read must come after the
    // producer's last write; pipelined mode starts earlier.
    const int h = 8, w = 8, c = 16;
    const auto data = randomData(h, w, c, 7);
    ConvGeom g;
    g.kh = g.kw = 3;
    g.pad = 1;
    ConvWeights wt;
    wt.outC = 16;
    wt.inC = 16;
    wt.kh = wt.kw = 3;
    wt.w.assign(static_cast<std::size_t>(16) * 16 * 9, 1);
    wt.bias.assign(16, 0);
    wt.scale.assign(16, 0.002f);

    Cycle seq = 0, pipe = 0;
    for (const bool pipelined : {false, true}) {
        Lowering lw(pipelined);
        LoweredTensor t = lw.inputTensor(h, w, c, data);
        t = lw.conv2d(t, g, wt);
        t = lw.conv2d(t, g, wt);
        (pipelined ? pipe : seq) = lw.finishCycle();
    }
    EXPECT_LT(pipe, seq);
}

} // namespace
} // namespace tsp
