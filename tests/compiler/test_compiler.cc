/**
 * @file
 * Compiler infrastructure: schedule lowering with NOP padding and the
 * MEM dual-issue co-issue path, over-booking panics, the memory
 * allocator's bank/striping behavior, and the schedule dump formats.
 */

#include <gtest/gtest.h>

#include "compiler/builder.hh"
#include "compiler/mem_alloc.hh"
#include "compiler/schedule.hh"
#include "sim/chip.hh"

namespace tsp {
namespace {

Instruction
readInst(MemAddr a)
{
    Instruction i;
    i.op = Opcode::Read;
    i.addr = a;
    i.dst = {0, Direction::East};
    return i;
}

TEST(Schedule, NopPaddingReconstructsTimes)
{
    ScheduledProgram prog;
    const IcuId icu = IcuId::mem(Hemisphere::East, 0);
    prog.emit(5, icu, readInst(1));
    prog.emit(6, icu, readInst(2));
    prog.emit(20, icu, readInst(3));

    const AsmProgram out = prog.toAsm();
    const auto &q = out.queue(icu);
    ASSERT_EQ(q.size(), 5u);
    EXPECT_EQ(q[0].op, Opcode::Nop);
    EXPECT_EQ(q[0].imm0, 5u);
    EXPECT_EQ(q[1].addr, 1u);
    EXPECT_EQ(q[2].addr, 2u);
    EXPECT_EQ(q[3].op, Opcode::Nop);
    EXPECT_EQ(q[3].imm0, 13u);
    EXPECT_EQ(q[4].addr, 3u);
}

TEST(Schedule, MemDualIssueGetsCoIssueFlag)
{
    ScheduledProgram prog;
    const IcuId icu = IcuId::mem(Hemisphere::West, 3);
    Instruction wr;
    wr.op = Opcode::Write;
    wr.addr = 0x1000; // Opposite bank.
    wr.srcA = {1, Direction::East};
    prog.emit(7, icu, readInst(0x10));
    prog.emit(7, icu, wr);

    const auto &q = prog.toAsm().queue(icu);
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(q[1].flags & Instruction::kFlagCoIssue, 0);
    EXPECT_NE(q[2].flags & Instruction::kFlagCoIssue, 0);
}

TEST(ScheduleDeath, NonMemOverIssuePanics)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ScheduledProgram prog;
        Instruction add;
        add.op = Opcode::Add;
        prog.emit(3, IcuId::vxmAlu(0), add);
        prog.emit(3, IcuId::vxmAlu(0), add);
        (void)prog.toAsm();
    };
    ASSERT_DEATH(body(), "over-issued");
}

TEST(Schedule, PreambleAddsBarrier)
{
    ScheduledProgram prog;
    prog.emit(40, IcuId::mem(Hemisphere::East, 1), readInst(5));
    const AsmProgram out = prog.toAsm(/*with_preamble=*/true);
    // Queue 0 is the notifier.
    ASSERT_FALSE(out.queue(IcuId{0}).empty());
    EXPECT_EQ(out.queue(IcuId{0})[0].op, Opcode::Notify);
    const auto &q = out.queue(IcuId::mem(Hemisphere::East, 1));
    ASSERT_GE(q.size(), 3u);
    EXPECT_EQ(q[0].op, Opcode::Sync);
    EXPECT_EQ(q[1].op, Opcode::Nop);
    EXPECT_EQ(q[1].imm0, 5u); // 40 - 35.
}

TEST(Schedule, DumpsContainEvents)
{
    ScheduledProgram prog;
    prog.emit(2, IcuId::vxmAlu(1), readInst(0)); // Abuses Read; fine.
    const std::string gantt = prog.gantt(0, 10);
    EXPECT_NE(gantt.find("VXM1"), std::string::npos);
    EXPECT_NE(gantt.find('#'), std::string::npos);
    const std::string listing = prog.listing();
    EXPECT_NE(listing.find("VXM1"), std::string::npos);
}

TEST(MemAllocator, BanksFillIndependently)
{
    MemAllocator a;
    const GlobalAddr x =
        a.alloc(Hemisphere::East, 3, 10, /*bank=*/0);
    const GlobalAddr y =
        a.alloc(Hemisphere::East, 3, 10, /*bank=*/1);
    EXPECT_EQ(x.bank(), 0);
    EXPECT_EQ(y.bank(), 1);
    EXPECT_EQ(a.freeWords(Hemisphere::East, 3, 0), 4096 - 10);
    EXPECT_EQ(a.freeWords(Hemisphere::East, 3, 1), 4096 - 10);
    // Default picks the fuller-free bank.
    a.alloc(Hemisphere::East, 3, 100, 0);
    const GlobalAddr z = a.alloc(Hemisphere::East, 3, 5);
    EXPECT_EQ(z.bank(), 1);
}

TEST(MemAllocator, StripedSharesOffset)
{
    MemAllocator a;
    a.alloc(Hemisphere::West, 10, 7, 0); // Unbalance one slice.
    const GlobalAddr s =
        a.allocStriped(Hemisphere::West, 10, 4, 20, /*bank=*/0);
    // All four slices advance to the same high-water mark.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(a.freeWords(Hemisphere::West, 10 + i, 0),
                  4096 - 7 - 20);
    }
    EXPECT_EQ(s.addr, 7u);
}

TEST(MemAllocator, ZeroPageReserved)
{
    MemAllocator a;
    const GlobalAddr z = a.zeroAddr(Hemisphere::East);
    EXPECT_EQ(z.slice, 0);
    EXPECT_EQ(z.addr, 0u);
    const GlobalAddr first = a.alloc(Hemisphere::East, 0, 1, 0);
    EXPECT_NE(first.addr, 0u);
}

TEST(MemAllocatorDeath, ExhaustionIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        MemAllocator a;
        a.alloc(Hemisphere::East, 5, 4096, 0);
        a.alloc(Hemisphere::East, 5, 1, 0);
    };
    ASSERT_EXIT(body(), ::testing::ExitedWithCode(1), "exhausted");
}

TEST(Builder, ReadArrivingComputesLead)
{
    ScheduledProgram prog;
    KernelBuilder kb(prog);
    const GlobalAddr a{Hemisphere::West, 0, 0x10}; // pos 46.
    const Cycle issue =
        kb.readArriving(a, {4, Direction::East}, Layout::vxm, 100);
    // lead = dFunc(Read) + delta(46, 47) = 2 + 1.
    EXPECT_EQ(issue, 97u);
    ASSERT_EQ(prog.size(), 1u);
    EXPECT_EQ(prog.events()[0].cycle, 97u);
}

} // namespace
} // namespace tsp

namespace tsp {
namespace {

TEST(Schedule, RepeatCompressionPreservesExecution)
{
    // A streaming pattern with gap-1 and gap-3 runs; the compressed
    // and raw programs must behave identically on the chip.
    ScheduledProgram prog;
    const IcuId mem0 = IcuId::mem(Hemisphere::West, 0);
    const IcuId mem1 = IcuId::mem(Hemisphere::West, 1);
    Instruction rd;
    rd.op = Opcode::Read;
    rd.addr = 0x11;
    rd.dst = {0, Direction::West};
    for (int i = 0; i < 12; ++i)
        prog.emit(10 + static_cast<Cycle>(i), mem0, rd);
    Instruction rd3 = rd;
    rd3.addr = 0x22;
    for (int i = 0; i < 7; ++i)
        prog.emit(40 + 3 * static_cast<Cycle>(i), mem1, rd3);

    const AsmProgram compressed = prog.toAsm(false, true);
    const AsmProgram raw = prog.toAsm(false, false);
    EXPECT_LT(ScheduledProgram::instructionCount(compressed),
              ScheduledProgram::instructionCount(raw));
    // Repeats present in the compressed form.
    bool has_repeat = false;
    for (const auto &[id, q] : compressed.queues) {
        for (const auto &inst : q)
            has_repeat |= inst.op == Opcode::Repeat;
    }
    EXPECT_TRUE(has_repeat);

    auto run = [](const AsmProgram &p) {
        Chip chip;
        chip.loadProgram(p);
        const Cycle cycles = chip.run();
        return std::make_tuple(cycles,
                               chip.mem(Hemisphere::West, 0).reads(),
                               chip.mem(Hemisphere::West, 1).reads());
    };
    EXPECT_EQ(run(compressed), run(raw));
    const auto [cycles, r0, r1] = run(compressed);
    EXPECT_EQ(r0, 12u);
    EXPECT_EQ(r1, 7u);
    EXPECT_EQ(cycles, 40u + 3 * 6 + 1);
}

} // namespace
} // namespace tsp
