/**
 * @file
 * Parameterized sweeps of the non-conv engines — max pooling,
 * residual addition (including the same-group staging fallback),
 * and global average pooling — against the golden reference.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

namespace tsp {
namespace {

std::vector<std::int8_t>
randomData(int h, int w, int c, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> d(static_cast<std::size_t>(h) * w * c);
    for (auto &v : d)
        v = static_cast<std::int8_t>(rng.intIn(-110, 110));
    return d;
}

void
expectEqual(const ref::QTensor &got, const ref::QTensor &want)
{
    ASSERT_EQ(got.data.size(), want.data.size());
    std::size_t bad = 0;
    for (std::size_t i = 0; i < got.data.size(); ++i)
        bad += got.data[i] != want.data[i];
    EXPECT_EQ(bad, 0u);
}

struct PoolCase
{
    int h, w, c, k, stride, pad;
    const char *name;
};

class PoolSweep : public ::testing::TestWithParam<PoolCase>
{
};

TEST_P(PoolSweep, MatchesReference)
{
    const PoolCase &p = GetParam();
    const auto data = randomData(p.h, p.w, p.c, 31);
    Lowering lw(true);
    auto in = lw.inputTensor(p.h, p.w, p.c, data);
    auto out = lw.maxPool(in, p.k, p.stride, p.pad);
    InferenceSession sess(lw);
    sess.run();
    ref::QTensor qin(p.h, p.w, p.c);
    qin.data = data;
    expectEqual(sess.readTensor(out),
                ref::maxPool(qin, p.k, p.stride, p.pad));
}

const PoolCase kPools[] = {
    {8, 8, 16, 3, 2, 1, "p3s2"},
    {9, 9, 8, 3, 1, 1, "p3s1_odd"},
    {8, 8, 16, 2, 2, 0, "p2s2_serial"}, // k != 3: serial plan.
    {12, 8, 330, 3, 2, 1, "p3_kg2"},
    {6, 6, 8, 3, 3, 0, "p3s3"},
};

INSTANTIATE_TEST_SUITE_P(Shapes, PoolSweep, ::testing::ValuesIn(kPools),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

struct ResCase
{
    int h, w, c;
    float sa, sb;
    bool relu;
    const char *name;
};

class ResidualSweep : public ::testing::TestWithParam<ResCase>
{
};

TEST_P(ResidualSweep, MatchesReference)
{
    const ResCase &p = GetParam();
    const auto da = randomData(p.h, p.w, p.c, 41);
    const auto db = randomData(p.h, p.w, p.c, 43);
    Lowering lw(true);
    auto a = lw.inputTensor(p.h, p.w, p.c, da);
    auto b = lw.inputTensor(p.h, p.w, p.c, db);
    auto out = lw.residualAdd(a, b, p.sa, p.sb, p.relu);
    InferenceSession sess(lw);
    sess.run();
    ref::QTensor qa(p.h, p.w, p.c), qb(p.h, p.w, p.c);
    qa.data = da;
    qb.data = db;
    expectEqual(sess.readTensor(out),
                ref::residualAdd(qa, qb, p.sa, p.sb, p.relu));
}

const ResCase kRes[] = {
    {8, 8, 16, 0.7f, 0.5f, true, "basic"},
    {5, 7, 24, 1.0f, 1.0f, false, "norelu_odd"},
    {4, 4, 400, 0.3f, 0.9f, true, "kg2"},
    {8, 8, 16, 2.0f, 2.0f, true, "saturating"},
    {1, 4, 8, 0.5f, 0.5f, true, "single_row"},
};

INSTANTIATE_TEST_SUITE_P(Shapes, ResidualSweep,
                         ::testing::ValuesIn(kRes),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

TEST(ResidualStaging, SameGroupOperandsAreCopied)
{
    // Force both operands into the same slice group by allocating
    // three dummies between them (group rotation is mod 4).
    const int h = 4, w = 4, c = 8;
    const auto da = randomData(h, w, c, 51);
    const auto db = randomData(h, w, c, 53);
    Lowering lw(true);
    auto a = lw.inputTensor(h, w, c, da);
    lw.inputTensor(h, w, c, da);
    lw.inputTensor(h, w, c, da);
    lw.inputTensor(h, w, c, da);
    auto b = lw.inputTensor(h, w, c, db); // Same group as a.
    ASSERT_EQ(Lowering::groupOf(a), Lowering::groupOf(b));
    auto out = lw.residualAdd(a, b, 0.5f, 0.25f, true);
    InferenceSession sess(lw);
    sess.run();
    ref::QTensor qa(h, w, c), qb(h, w, c);
    qa.data = da;
    qb.data = db;
    expectEqual(sess.readTensor(out),
                ref::residualAdd(qa, qb, 0.5f, 0.25f, true));
}

struct GapCase
{
    int h, w, c;
    const char *name;
};

class GapSweep : public ::testing::TestWithParam<GapCase>
{
};

TEST_P(GapSweep, MatchesReference)
{
    const GapCase &p = GetParam();
    const auto data = randomData(p.h, p.w, p.c, 61);
    const float scale = 1.0f / static_cast<float>(p.h * p.w);
    Lowering lw(true);
    auto in = lw.inputTensor(p.h, p.w, p.c, data);
    auto out = lw.globalAvgPool(in, scale);
    InferenceSession sess(lw);
    sess.run();
    ref::QTensor qin(p.h, p.w, p.c);
    qin.data = data;
    expectEqual(sess.readTensor(out),
                ref::globalAvgPool(qin, scale));
}

const GapCase kGaps[] = {
    {7, 7, 64, "g7x7"},
    {7, 7, 2048, "g7x7_kg7"},
    {1, 1, 16, "degenerate"},
    {5, 3, 330, "odd_kg2"},
};

INSTANTIATE_TEST_SUITE_P(Shapes, GapSweep, ::testing::ValuesIn(kGaps),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

} // namespace
} // namespace tsp
