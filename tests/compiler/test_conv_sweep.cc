/**
 * @file
 * Property-style sweep: every lowered conv2d configuration must be
 * bit-exact with the golden reference. Covers channel groups beyond
 * one (inC > 320), output-channel tiling (outC > 320), strides, kernel
 * sizes, padding, odd spatial sizes, and both ReLU settings.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

namespace tsp {
namespace {

struct ConvCase
{
    int h, w, in_c, out_c, k, stride, pad;
    bool relu;
    const char *name;
};

std::ostream &
operator<<(std::ostream &os, const ConvCase &c)
{
    return os << c.name;
}

class ConvSweep : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvSweep, MatchesGoldenReference)
{
    const ConvCase &p = GetParam();
    Rng rng(0xc0ffee ^ static_cast<std::uint64_t>(p.in_c * 131 +
                                                  p.out_c));
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(p.h) * p.w * p.in_c);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-90, 90));

    const ConvWeights cw = model::makeConvWeights(
        p.out_c, p.in_c, p.k, p.k, /*seed=*/17);
    ConvGeom g;
    g.kh = p.k;
    g.kw = p.k;
    g.stride = p.stride;
    g.pad = p.pad;
    g.relu = p.relu;

    Lowering lw(/*pipelined=*/true);
    LoweredTensor in = lw.inputTensor(p.h, p.w, p.in_c, data);
    LoweredTensor out = lw.conv2d(in, g, cw);

    InferenceSession sess(lw);
    sess.run();

    ref::QTensor qin(p.h, p.w, p.in_c);
    qin.data = data;
    const ref::QTensor want =
        ref::conv2d(qin, cw.w.data(), p.out_c, p.k, p.k, p.stride,
                    p.pad, cw.bias.data(), cw.scale.data(), p.relu);
    const ref::QTensor got = sess.readTensor(out);

    ASSERT_EQ(got.data.size(), want.data.size());
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < want.data.size(); ++i) {
        if (got.data[i] != want.data[i])
            ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u);
}

const ConvCase kCases[] = {
    {8, 8, 16, 16, 1, 1, 0, true, "c1x1_small"},
    {8, 8, 16, 16, 3, 1, 1, true, "c3x3_pad"},
    {9, 7, 24, 40, 3, 1, 1, true, "c3x3_odd_shape"},
    {8, 8, 16, 32, 3, 2, 1, true, "c3x3_stride2"},
    {12, 12, 8, 16, 5, 2, 2, true, "c5x5_stride2"},
    {6, 6, 16, 16, 3, 1, 0, false, "c3x3_nopad_norelu"},
    {4, 4, 400, 24, 1, 1, 0, true, "kg2_input"},
    {4, 4, 24, 400, 1, 1, 0, true, "cog2_output"},
    {4, 4, 330, 330, 3, 1, 1, false, "kg2_cog2_3x3"},
    {3, 3, 650, 40, 1, 1, 0, true, "kg3_input"},
    {1, 1, 512, 1000, 1, 1, 0, false, "fc_style"},
    {16, 16, 8, 8, 3, 1, 1, true, "wide_spatial"},
    {5, 5, 16, 16, 2, 1, 0, true, "even_kernel"},
    {7, 7, 64, 64, 3, 2, 1, true, "c3x3_stride2_odd"},
};

INSTANTIATE_TEST_SUITE_P(Shapes, ConvSweep, ::testing::ValuesIn(kCases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

} // namespace
} // namespace tsp
