/**
 * @file
 * Golden reference self-checks: requantize saturation/rounding,
 * operator shape handling, and the fp32 reference used by the
 * quantization-loss experiment.
 */

#include <gtest/gtest.h>

#include "ref/qnn.hh"

namespace tsp::ref {
namespace {

TEST(Requantize, RoundsAndSaturates)
{
    EXPECT_EQ(requantize(100, 0, 1.0f, false), 100);
    EXPECT_EQ(requantize(1000, 0, 1.0f, false), 127);
    EXPECT_EQ(requantize(-1000, 0, 1.0f, false), -128);
    EXPECT_EQ(requantize(-5, 0, 1.0f, true), 0); // ReLU.
    EXPECT_EQ(requantize(5, 0, 0.5f, false), 2); // RNE: 2.5 -> 2.
    EXPECT_EQ(requantize(7, 0, 0.5f, false), 4); // 3.5 -> 4.
    EXPECT_EQ(requantize(0, 42, 1.0f, false), 42);
    // Saturating int32 bias add.
    EXPECT_EQ(requantize(2'000'000'000, 2'000'000'000, 1e-8f, false),
              21); // Bias add saturates to INT32_MAX first.
}

TEST(Conv2d, IdentityKernelPassesThrough)
{
    QTensor in(3, 3, 2);
    for (std::size_t i = 0; i < in.data.size(); ++i)
        in.data[i] = static_cast<std::int8_t>(i + 1);
    // 1x1 conv, identity weights, unity scale.
    const std::int8_t w[4] = {1, 0, 0, 1}; // [oc][ic].
    const std::int32_t bias[2] = {0, 0};
    const float scale[2] = {1.0f, 1.0f};
    const QTensor out = conv2d(in, w, 2, 1, 1, 1, 0, bias, scale,
                               false);
    EXPECT_EQ(out.data, in.data);
}

TEST(Conv2d, PaddingAndStrideShapes)
{
    QTensor in(7, 5, 1);
    const std::int8_t w[9] = {0, 0, 0, 0, 1, 0, 0, 0, 0};
    const std::int32_t bias[1] = {0};
    const float scale[1] = {1.0f};
    const QTensor out =
        conv2d(in, w, 1, 3, 3, 2, 1, bias, scale, false);
    EXPECT_EQ(out.h, 4);
    EXPECT_EQ(out.w, 3);
}

TEST(MaxPool, UsesNegativePaddingSemantics)
{
    QTensor in(2, 2, 1);
    in.at(0, 0, 0) = -100;
    in.at(0, 1, 0) = -90;
    in.at(1, 0, 0) = -80;
    in.at(1, 1, 0) = -70;
    const QTensor out = maxPool(in, 3, 2, 1);
    // Window at (0,0) covers in-bounds values only; max is -70 for
    // the full window at (0,0) with pad... window covers rows -1..1.
    EXPECT_EQ(out.h, 1);
    EXPECT_EQ(out.at(0, 0, 0), -70);
}

TEST(GlobalAvgPool, AveragesExactly)
{
    QTensor in(2, 2, 1);
    in.at(0, 0, 0) = 10;
    in.at(0, 1, 0) = 20;
    in.at(1, 0, 0) = 30;
    in.at(1, 1, 0) = 41;
    const QTensor out = globalAvgPool(in, 0.25f);
    // (101) * 0.25 = 25.25 -> 25.
    EXPECT_EQ(out.at(0, 0, 0), 25);
}

TEST(ResidualAdd, ScalesAndClamps)
{
    QTensor a(1, 1, 3), b(1, 1, 3);
    a.data = {100, -100, 4};
    b.data = {100, -100, 3};
    const QTensor out = residualAdd(a, b, 1.0f, 1.0f, false);
    EXPECT_EQ(out.data[0], 127);
    EXPECT_EQ(out.data[1], -128);
    EXPECT_EQ(out.data[2], 7);
    const QTensor relu_out = residualAdd(a, b, 1.0f, 1.0f, true);
    EXPECT_EQ(relu_out.data[1], 0);
}

TEST(Conv2dF32, MatchesHandComputation)
{
    const std::vector<float> in = {1.0f, 2.0f, 3.0f, 4.0f}; // 2x2x1.
    const float w[1] = {2.0f};                              // 1x1.
    const float bias[1] = {0.5f};
    const auto out =
        conv2dF32(in, 2, 2, 1, w, 1, 1, 1, 1, 0, bias, false);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_FLOAT_EQ(out[0], 2.5f);
    EXPECT_FLOAT_EQ(out[3], 8.5f);
    const auto relu_out =
        conv2dF32(in, 2, 2, 1, w, 1, 1, 1, 1, 0, nullptr, true);
    EXPECT_FLOAT_EQ(relu_out[0], 2.0f);
}

} // namespace
} // namespace tsp::ref
