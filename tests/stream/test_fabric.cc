/**
 * @file
 * Stream register file semantics (paper II.A, V.c): one-hop-per-cycle
 * propagation in the direction of flow, values falling off the chip
 * edge, producer overwrites, scheduled future writes, and the
 * two-producers-per-slot panic.
 */

#include <gtest/gtest.h>

#include "stream/fabric.hh"

namespace tsp {
namespace {

Vec320
mark(std::uint8_t v)
{
    Vec320 x;
    x.bytes.fill(v);
    return x;
}

TEST(Fabric, EastwardPropagation)
{
    StreamFabric f;
    const StreamRef s{4, Direction::East};
    f.write(s, 10, mark(7));
    EXPECT_NE(f.peek(s, 10), nullptr);
    EXPECT_EQ(f.peek(s, 11), nullptr);

    f.advance();
    EXPECT_EQ(f.peek(s, 10), nullptr);
    ASSERT_NE(f.peek(s, 11), nullptr);
    EXPECT_EQ(f.peek(s, 11)->bytes[0], 7);

    for (int i = 0; i < 5; ++i)
        f.advance();
    ASSERT_NE(f.peek(s, 16), nullptr);
}

TEST(Fabric, WestwardPropagation)
{
    StreamFabric f;
    const StreamRef s{0, Direction::West};
    f.write(s, 50, mark(9));
    f.advance();
    EXPECT_EQ(f.peek(s, 50), nullptr);
    ASSERT_NE(f.peek(s, 49), nullptr);
    EXPECT_EQ(f.peek(s, 49)->bytes[10], 9);
}

TEST(Fabric, ValuesFallOffTheEdge)
{
    StreamFabric f;
    const StreamRef e{1, Direction::East};
    const StreamRef w{1, Direction::West};
    f.write(e, Layout::numPositions - 1, mark(1));
    f.write(w, 0, mark(2));
    EXPECT_EQ(f.validEntries(), 2u);
    f.advance();
    EXPECT_EQ(f.validEntries(), 0u);
}

TEST(Fabric, ScheduledWritesAppearOnTime)
{
    StreamFabric f;
    const StreamRef s{2, Direction::East};
    f.scheduleWrite(s, 20, mark(5), /*when=*/3);
    f.advance(); // 1
    f.advance(); // 2
    EXPECT_EQ(f.peek(s, 20), nullptr);
    f.advance(); // 3
    ASSERT_NE(f.peek(s, 20), nullptr);
    EXPECT_EQ(f.peek(s, 20)->bytes[0], 5);
}

TEST(Fabric, ProducerOverwritesFlowingValue)
{
    StreamFabric f;
    const StreamRef s{3, Direction::East};
    f.write(s, 10, mark(1)); // Will be at 12 after two hops.
    f.advance();
    f.write(s, 11, mark(2)); // Overwrites the slot at pos 11 now.
    f.advance();
    // Only one value lives on: the overwriting producer's.
    ASSERT_NE(f.peek(s, 12), nullptr);
    EXPECT_EQ(f.peek(s, 12)->bytes[0], 2);
}

TEST(Fabric, IndependentStreamsAndDirections)
{
    StreamFabric f;
    f.write({5, Direction::East}, 30, mark(1));
    f.write({5, Direction::West}, 30, mark(2));
    f.write({6, Direction::East}, 30, mark(3));
    f.advance();
    EXPECT_EQ(f.peek({5, Direction::East}, 31)->bytes[0], 1);
    EXPECT_EQ(f.peek({5, Direction::West}, 29)->bytes[0], 2);
    EXPECT_EQ(f.peek({6, Direction::East}, 31)->bytes[0], 3);
}

TEST(Fabric, HopAccounting)
{
    StreamFabric f;
    f.write({0, Direction::East}, 0, mark(1));
    const auto before = f.totalHops();
    f.advance();
    f.advance();
    EXPECT_EQ(f.totalHops() - before, 2u);
}

TEST(Fabric, ClearInvalidatesEverything)
{
    StreamFabric f;
    f.write({7, Direction::East}, 40, mark(4));
    f.scheduleWrite({7, Direction::East}, 41, mark(5), 10);
    f.clear();
    EXPECT_EQ(f.validEntries(), 0u);
    for (int i = 0; i < 12; ++i)
        f.advance();
    EXPECT_EQ(f.validEntries(), 0u) << "pending writes were dropped";
}

TEST(FabricDeath, TwoProducersSameSlotPanic)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        StreamFabric f;
        f.write({1, Direction::East}, 10, mark(1));
        f.write({1, Direction::East}, 10, mark(2));
    };
    ASSERT_DEATH(body(), "two producers");
}

TEST(Fabric, FullTraversalTiming)
{
    // A value written at the west edge reaches the east edge after
    // exactly numPositions - 1 hops, then falls off.
    StreamFabric f;
    const StreamRef s{9, Direction::East};
    f.write(s, 0, mark(6));
    for (int i = 0; i < Layout::numPositions - 1; ++i)
        f.advance();
    ASSERT_NE(f.peek(s, Layout::numPositions - 1), nullptr);
    f.advance();
    EXPECT_EQ(f.validEntries(), 0u);
}

} // namespace
} // namespace tsp
