/**
 * @file
 * Stream register file semantics (paper II.A, V.c): one-hop-per-cycle
 * propagation in the direction of flow, values falling off the chip
 * edge, producer overwrites, scheduled future writes, and the
 * two-producers-per-slot panic.
 */

#include <gtest/gtest.h>

#include "arch/config.hh"
#include "stream/fabric.hh"
#include "stream/stream_io.hh"

namespace tsp {
namespace {

Vec320
mark(std::uint8_t v)
{
    Vec320 x;
    x.bytes.fill(v);
    return x;
}

TEST(Fabric, EastwardPropagation)
{
    StreamFabric f;
    const StreamRef s{4, Direction::East};
    f.write(s, 10, mark(7));
    EXPECT_NE(f.peek(s, 10), nullptr);
    EXPECT_EQ(f.peek(s, 11), nullptr);

    f.advance();
    EXPECT_EQ(f.peek(s, 10), nullptr);
    ASSERT_NE(f.peek(s, 11), nullptr);
    EXPECT_EQ(f.peek(s, 11)->bytes[0], 7);

    for (int i = 0; i < 5; ++i)
        f.advance();
    ASSERT_NE(f.peek(s, 16), nullptr);
}

TEST(Fabric, WestwardPropagation)
{
    StreamFabric f;
    const StreamRef s{0, Direction::West};
    f.write(s, 50, mark(9));
    f.advance();
    EXPECT_EQ(f.peek(s, 50), nullptr);
    ASSERT_NE(f.peek(s, 49), nullptr);
    EXPECT_EQ(f.peek(s, 49)->bytes[10], 9);
}

TEST(Fabric, ValuesFallOffTheEdge)
{
    StreamFabric f;
    const StreamRef e{1, Direction::East};
    const StreamRef w{1, Direction::West};
    f.write(e, Layout::numPositions - 1, mark(1));
    f.write(w, 0, mark(2));
    EXPECT_EQ(f.validEntries(), 2u);
    f.advance();
    EXPECT_EQ(f.validEntries(), 0u);
}

TEST(Fabric, ScheduledWritesAppearOnTime)
{
    StreamFabric f;
    const StreamRef s{2, Direction::East};
    f.scheduleWrite(s, 20, mark(5), /*when=*/3);
    f.advance(); // 1
    f.advance(); // 2
    EXPECT_EQ(f.peek(s, 20), nullptr);
    f.advance(); // 3
    ASSERT_NE(f.peek(s, 20), nullptr);
    EXPECT_EQ(f.peek(s, 20)->bytes[0], 5);
}

TEST(Fabric, ProducerOverwritesFlowingValue)
{
    StreamFabric f;
    const StreamRef s{3, Direction::East};
    f.write(s, 10, mark(1)); // Will be at 12 after two hops.
    f.advance();
    f.write(s, 11, mark(2)); // Overwrites the slot at pos 11 now.
    f.advance();
    // Only one value lives on: the overwriting producer's.
    ASSERT_NE(f.peek(s, 12), nullptr);
    EXPECT_EQ(f.peek(s, 12)->bytes[0], 2);
}

TEST(Fabric, IndependentStreamsAndDirections)
{
    StreamFabric f;
    f.write({5, Direction::East}, 30, mark(1));
    f.write({5, Direction::West}, 30, mark(2));
    f.write({6, Direction::East}, 30, mark(3));
    f.advance();
    EXPECT_EQ(f.peek({5, Direction::East}, 31)->bytes[0], 1);
    EXPECT_EQ(f.peek({5, Direction::West}, 29)->bytes[0], 2);
    EXPECT_EQ(f.peek({6, Direction::East}, 31)->bytes[0], 3);
}

TEST(Fabric, HopAccounting)
{
    StreamFabric f;
    f.write({0, Direction::East}, 0, mark(1));
    const auto before = f.totalHops();
    f.advance();
    f.advance();
    EXPECT_EQ(f.totalHops() - before, 2u);
}

TEST(Fabric, ClearInvalidatesEverything)
{
    StreamFabric f;
    f.write({7, Direction::East}, 40, mark(4));
    f.scheduleWrite({7, Direction::East}, 41, mark(5), 10);
    f.clear();
    EXPECT_EQ(f.validEntries(), 0u);
    for (int i = 0; i < 12; ++i)
        f.advance();
    EXPECT_EQ(f.validEntries(), 0u) << "pending writes were dropped";
}

TEST(FabricDeath, TwoProducersSameSlotPanic)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        StreamFabric f;
        f.write({1, Direction::East}, 10, mark(1));
        f.write({1, Direction::East}, 10, mark(2));
    };
    ASSERT_DEATH(body(), "two producers");
}

TEST(Fabric, AdvanceByMatchesPerCycleAdvance)
{
    // Bulk advance must leave the fabric in exactly the state N
    // single advances produce: same positions, same validity, same
    // hop totals — for entries that survive and entries that fall
    // off the edge mid-span.
    StreamFabric a, b;
    for (StreamFabric *f : {&a, &b}) {
        f->write({4, Direction::East}, 10, mark(7));
        f->write({4, Direction::East}, 90, mark(8)); // Falls off.
        f->write({0, Direction::West}, 3, mark(9));  // Falls off.
        f->write({11, Direction::West}, 80, mark(4));
    }
    const Cycle n = 20;
    for (Cycle i = 0; i < n; ++i)
        a.advance();
    b.advanceBy(n);

    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.totalHops(), b.totalHops());
    EXPECT_EQ(a.validEntries(), b.validEntries());
    ASSERT_NE(b.peek({4, Direction::East}, 30), nullptr);
    EXPECT_EQ(b.peek({4, Direction::East}, 30)->bytes[0], 7);
    ASSERT_NE(b.peek({11, Direction::West}, 60), nullptr);
    EXPECT_EQ(b.peek({11, Direction::West}, 60)->bytes[0], 4);
}

TEST(Fabric, AdvanceByAppliesWritesDueAtTarget)
{
    // A pending write due exactly at the jump target is applied when
    // the jump lands (the fabric applies writes for the new cycle),
    // matching what per-cycle advance() does on arrival.
    StreamFabric f;
    const StreamRef s{2, Direction::East};
    f.scheduleWrite(s, 20, mark(5), /*when=*/8);
    EXPECT_EQ(f.earliestPendingCycle(), Cycle{8});
    f.advanceBy(8);
    EXPECT_EQ(f.now(), Cycle{8});
    ASSERT_NE(f.peek(s, 20), nullptr);
    EXPECT_EQ(f.peek(s, 20)->bytes[0], 5);
    EXPECT_EQ(f.earliestPendingCycle(), kNoEventCycle);
}

TEST(Fabric, EarliestPendingCycleTracksSchedule)
{
    StreamFabric f;
    EXPECT_EQ(f.earliestPendingCycle(), kNoEventCycle);
    f.scheduleWrite({1, Direction::East}, 10, mark(1), 12);
    f.scheduleWrite({2, Direction::East}, 11, mark(2), 5);
    // Far beyond the pending ring horizon: exercises the overflow map.
    f.scheduleWrite({3, Direction::East}, 12, mark(3), 500);
    EXPECT_EQ(f.earliestPendingCycle(), Cycle{5});
    for (int i = 0; i < 5; ++i)
        f.advance();
    EXPECT_EQ(f.earliestPendingCycle(), Cycle{12});
    for (int i = 0; i < 7; ++i)
        f.advance();
    EXPECT_EQ(f.earliestPendingCycle(), Cycle{500});
    f.advanceBy(488);
    EXPECT_EQ(f.earliestPendingCycle(), kNoEventCycle);
    ASSERT_NE(f.peek({3, Direction::East}, 12), nullptr);
}

/** Minimal replay tape: every exchange resolves to one fixed slot. */
struct StubReplayer final : TapeReplayer
{
    Vec320 slot{};
    Vec320 *onProduce() override { return &slot; }
    const Vec320 *onConsume() override { return &slot; }
    void
    onConsumeRun(const Vec320 **outs, std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i)
            outs[i] = &slot;
    }
};

TEST(Fabric, ReplayConsumeResolvesFromTapeNotFabric)
{
    // While a TapeReplayer is attached, consumes read the tape arena;
    // the fabric stays empty and nothing panics.
    ChipConfig cfg;
    StreamFabric f;
    StubReplayer rep;
    rep.slot = mark(9);
    f.attachTapeHooks(nullptr, &rep);
    StreamIo io(cfg, f, "TEST");

    Vec320 out;
    ASSERT_TRUE(io.tryConsume({4, Direction::East}, 10, out));
    EXPECT_EQ(out.bytes[0], 9);

    const Vec320 *outs[4] = {};
    ASSERT_TRUE(io.replayConsumeRun({4, Direction::East}, 10, outs, 4));
    for (const Vec320 *v : outs) {
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(v->bytes[0], 9);
    }
    EXPECT_EQ(io.consumed(), 5u);
}

TEST(FabricDeath, UntaggedEntryConsumedDuringReplayPanics)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // Replay resolves consumes by recorded tape order, so a value
    // poked into the fabric from outside any StreamIo (a direct
    // StreamFabric::write carries kTapeUntagged) would be silently
    // ignored — the replayed consume would read stale arena state
    // instead of the poked value. Both consume paths must hard-fail.
    const auto single = [] {
        ChipConfig cfg;
        StreamFabric f;
        StubReplayer rep;
        f.attachTapeHooks(nullptr, &rep);
        StreamIo io(cfg, f, "TEST");
        f.write({4, Direction::East}, 10, mark(7)); // Untagged poke.
        Vec320 out;
        io.tryConsume({4, Direction::East}, 10, out);
    };
    ASSERT_DEATH(single(), "outside any StreamIo");

    const auto batched = [] {
        ChipConfig cfg;
        StreamFabric f;
        StubReplayer rep;
        f.attachTapeHooks(nullptr, &rep);
        StreamIo io(cfg, f, "TEST");
        // Poke a mid-run register: ids 4..7 are checked one by one.
        f.write({6, Direction::East}, 10, mark(7));
        const Vec320 *outs[4] = {};
        io.replayConsumeRun({4, Direction::East}, 10, outs, 4);
    };
    ASSERT_DEATH(batched(), "outside any StreamIo");
}

TEST(Fabric, FullTraversalTiming)
{
    // A value written at the west edge reaches the east edge after
    // exactly numPositions - 1 hops, then falls off.
    StreamFabric f;
    const StreamRef s{9, Direction::East};
    f.write(s, 0, mark(6));
    for (int i = 0; i < Layout::numPositions - 1; ++i)
        f.advance();
    ASSERT_NE(f.peek(s, Layout::numPositions - 1), nullptr);
    f.advance();
    EXPECT_EQ(f.validEntries(), 0u);
}

} // namespace
} // namespace tsp
