/**
 * @file
 * Host runtime: DMA-time model, latency accounting, tensor readback
 * geometry, and back-to-back sessions on fresh chips.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

namespace tsp {
namespace {

TEST(Session, DmaAndLatencyAccounting)
{
    Graph g = model::buildTinyNet(11, 8, 8, 4);
    Rng rng(2);
    std::vector<std::int8_t> input(8 * 8 * 4);
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.intIn(-50, 50));

    Lowering lw(true);
    const auto tensors = g.lower(lw, input);
    const std::size_t image_bytes = lw.image().totalBytes();
    EXPECT_GT(image_bytes, 0u);

    InferenceSession sess(lw);
    EXPECT_DOUBLE_EQ(sess.dmaSeconds(),
                     static_cast<double>(image_bytes) /
                         kPcieGen4Bps);
    const Cycle cycles = sess.run();
    EXPECT_DOUBLE_EQ(sess.latencySeconds(),
                     static_cast<double>(cycles) * 1e-9);
    EXPECT_EQ(sess.cycles(), cycles);

    // Readback geometry matches the graph's output shape.
    const auto out = sess.readTensor(tensors.at(g.outputNode()));
    EXPECT_EQ(out.h, 1);
    EXPECT_EQ(out.w, 1);
    EXPECT_EQ(out.c, 10);
}

TEST(Session, IndependentSessionsAgree)
{
    Graph g = model::buildTinyNet(5, 8, 8, 4);
    Rng rng(9);
    std::vector<std::int8_t> input(8 * 8 * 4);
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.intIn(-50, 50));

    std::vector<std::int8_t> first;
    for (int run = 0; run < 2; ++run) {
        Lowering lw(true);
        const auto tensors = g.lower(lw, input);
        InferenceSession sess(lw);
        sess.run();
        const auto out =
            sess.readTensor(tensors.at(g.outputNode()));
        if (run == 0)
            first = out.data;
        else
            EXPECT_EQ(out.data, first);
    }
}

TEST(Session, CustomClockScalesLatencyOnly)
{
    Graph g = model::buildTinyNet(5, 6, 6, 4);
    Rng rng(4);
    std::vector<std::int8_t> input(6 * 6 * 4);
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.intIn(-50, 50));

    Lowering lw(true);
    const auto t = g.lower(lw, input);
    (void)t;
    ChipConfig cfg;
    cfg.clockHz = 900e6; // The nominal silicon clock.
    InferenceSession sess(lw, cfg);
    const Cycle cycles = sess.run();
    EXPECT_DOUBLE_EQ(sess.latencySeconds(),
                     static_cast<double>(cycles) / 900e6);
}

} // namespace
} // namespace tsp
