/**
 * @file
 * Graph IR: construction, shape inference, MAC/parameter accounting,
 * reference execution, and error handling.
 */

#include <gtest/gtest.h>

#include "graph/graph.hh"
#include "model/resnet.hh"

namespace tsp {
namespace {

TEST(Graph, ShapeInference)
{
    Graph g;
    const int in = g.addInput(8, 8, 3);
    ConvGeom geom;
    geom.kh = 3;
    geom.kw = 3;
    geom.stride = 2;
    geom.pad = 1;
    const int c1 =
        g.addConv(in, geom, model::makeConvWeights(16, 3, 3, 3, 1));
    const int p = g.addMaxPool(c1, 2, 2, 0);
    const int gap = g.addGlobalAvgPool(p, 0.25f);
    g.inferShapes();

    EXPECT_EQ(g.node(c1).outH, 4);
    EXPECT_EQ(g.node(c1).outW, 4);
    EXPECT_EQ(g.node(c1).outC, 16);
    EXPECT_EQ(g.node(p).outH, 2);
    EXPECT_EQ(g.node(gap).outH, 1);
    EXPECT_EQ(g.node(gap).outC, 16);
    EXPECT_EQ(g.outputNode(), gap);
}

TEST(Graph, MaccAndParameterCounts)
{
    Graph g;
    const int in = g.addInput(4, 4, 8);
    ConvGeom geom; // 1x1.
    g.addConv(in, geom, model::makeConvWeights(16, 8, 1, 1, 2));
    g.inferShapes();
    EXPECT_EQ(g.parameterCount(), 16u * 8);
    EXPECT_EQ(g.maccCount(), 4ull * 4 * 16 * 8);
}

TEST(Graph, ResNet50Structure)
{
    Graph g = model::buildResNet(50, 1);
    // conv1 + pool + 16 blocks x (3 conv + residual) + 4 downsample
    // convs + gap + fc = 73 nodes including the input.
    EXPECT_EQ(g.size(), 73);
    EXPECT_EQ(g.node(g.outputNode()).outC, 1000);
    // ~25.5M parameters, ~4.1 GMACs (the well-known figures).
    EXPECT_NEAR(static_cast<double>(g.parameterCount()), 25.5e6,
                0.3e6);
    EXPECT_NEAR(static_cast<double>(g.maccCount()), 4.1e9, 0.2e9);
}

TEST(Graph, DeeperVariantsScale)
{
    Graph g101 = model::buildResNet(101, 1);
    Graph g152 = model::buildResNet(152, 1);
    EXPECT_GT(g101.parameterCount(), 40e6);
    EXPECT_GT(g152.parameterCount(), g101.parameterCount());
    EXPECT_GT(g101.maccCount(), 7e9);
}

TEST(Graph, WideVariantAlignsTo320)
{
    Graph g = model::buildResNet(50, 1, /*wide=*/true);
    for (int i = 0; i < g.size(); ++i) {
        const Node &n = g.node(i);
        // Every conv except the 1000-way classifier head.
        if (n.kind == OpKind::Conv2d && n.outC >= 320 &&
            i != g.outputNode()) {
            EXPECT_EQ(n.outC % 320, 0) << "node " << i;
        }
    }
}

TEST(Graph, ReferenceExecutionRuns)
{
    Graph g = model::buildTinyNet(7, 8, 8, 4);
    ref::QTensor in(8, 8, 4);
    for (std::size_t i = 0; i < in.data.size(); ++i)
        in.data[i] = static_cast<std::int8_t>(i % 37);
    const auto outs = g.runReference(in);
    const auto &logits = outs.at(g.outputNode());
    EXPECT_EQ(logits.c, 10);
    EXPECT_EQ(logits.h, 1);
}

TEST(GraphDeath, ChannelMismatchIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        Graph g;
        const int in = g.addInput(4, 4, 8);
        ConvGeom geom;
        g.addConv(in, geom,
                  model::makeConvWeights(16, 99, 1, 1, 3));
        g.inferShapes();
    };
    ASSERT_EXIT(body(), ::testing::ExitedWithCode(1), "channels");
}

TEST(Model, Im2colStemMatchesDirectConv)
{
    // The host-side im2col plus a 1x1 conv must equal the original
    // 7x7 stride-2 convolution.
    const auto img = model::makeImage(3);
    const auto col = model::im2colStem(img);

    const ConvWeights w =
        model::makeConvWeights(8, model::kStemC, 1, 1, 4);
    // Reference: conv on the im2col input.
    ref::QTensor qcol(model::kStemH, model::kStemW, model::kStemC);
    qcol.data = col;
    const auto a =
        ref::conv2d(qcol, w.w.data(), 8, 1, 1, 1, 0, w.bias.data(),
                    w.scale.data(), true);

    // Same weights arranged as 7x7x3 applied to the raw image.
    std::vector<std::int8_t> w7(
        static_cast<std::size_t>(8) * 3 * 7 * 7);
    for (int oc = 0; oc < 8; ++oc) {
        for (int ky = 0; ky < 7; ++ky) {
            for (int kx = 0; kx < 7; ++kx) {
                for (int c = 0; c < 3; ++c) {
                    w7[((static_cast<std::size_t>(oc) * 3 + c) * 7 +
                        ky) *
                           7 +
                       kx] = w.at(oc, (ky * 7 + kx) * 3 + c, 0, 0);
                }
            }
        }
    }
    ref::QTensor qimg(224, 224, 3);
    qimg.data = img;
    const auto b =
        ref::conv2d(qimg, w7.data(), 8, 7, 7, 2, 3, w.bias.data(),
                    w.scale.data(), true);
    ASSERT_EQ(a.data.size(), b.data.size());
    EXPECT_EQ(a.data, b.data);
}

} // namespace
} // namespace tsp
