/**
 * @file
 * End-to-end integration: a small network covering every engine
 * (conv 3x3, residual add, max pool, global average pool, classifier)
 * is compiled, simulated cycle-accurately, and compared bit-exactly
 * against the golden CPU reference — for both scheduling modes.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "graph/graph.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

namespace tsp {
namespace {

std::vector<std::int8_t>
randomInput(int h, int w, int c, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(h) * w * c);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    return data;
}

class TinyNetTest : public ::testing::TestWithParam<bool>
{
};

TEST_P(TinyNetTest, MatchesGoldenReference)
{
    const bool pipelined = GetParam();
    const int h = 12, w = 12, c = 8;
    Graph g = model::buildTinyNet(/*seed=*/42, h, w, c);
    const auto input = randomInput(h, w, c, 7);

    Lowering lw(pipelined);
    const auto lowered = g.lower(lw, input);

    InferenceSession sess(lw);
    const Cycle cycles = sess.run();
    EXPECT_GT(cycles, 0u);

    ref::QTensor qin(h, w, c);
    qin.data = input;
    const auto refs = g.runReference(qin);

    // Compare every node's output tensor bit-exactly.
    for (const auto &[id, lt] : lowered) {
        if (g.node(id).kind == OpKind::Input)
            continue;
        const ref::QTensor got = sess.readTensor(lt);
        const ref::QTensor &want = refs.at(id);
        ASSERT_EQ(got.data.size(), want.data.size())
            << "node " << id;
        for (std::size_t i = 0; i < got.data.size(); ++i) {
            ASSERT_EQ(static_cast<int>(got.data[i]),
                      static_cast<int>(want.data[i]))
                << "node " << id << " element " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, TinyNetTest, ::testing::Bool(),
                         [](const auto &info) {
                             return info.param ? "pipelined"
                                               : "sequential";
                         });

TEST(TinyNetTest, DeterministicAcrossRuns)
{
    const int h = 8, w = 8, c = 4;
    Graph g = model::buildTinyNet(3, h, w, c);
    const auto input = randomInput(h, w, c, 11);

    Cycle first = 0;
    std::vector<std::int8_t> first_out;
    for (int run = 0; run < 3; ++run) {
        Lowering lw(true);
        const auto lowered = g.lower(lw, input);
        InferenceSession sess(lw);
        const Cycle cycles = sess.run();
        const auto out =
            sess.readTensor(lowered.at(g.outputNode()));
        if (run == 0) {
            first = cycles;
            first_out = out.data;
        } else {
            EXPECT_EQ(cycles, first) << "nondeterministic cycles";
            EXPECT_EQ(out.data, first_out);
        }
    }
}

} // namespace
} // namespace tsp
