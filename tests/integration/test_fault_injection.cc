/**
 * @file
 * Whole-chip ECC fault injection (paper III.C: producers generate
 * ECC, consumers check and correct) and the machine-check path built
 * on it: single-bit upsets are absorbed bit-exactly, double-bit
 * upsets condemn the chip with first-error context instead of
 * flowing corrupted data into results, and the injector is
 * bit-identical under per-cycle stepping and the event-driven
 * fast-forward core.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "graph/graph.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

namespace tsp {
namespace {

std::vector<std::int8_t>
randomInput(int h, int w, int c, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> data(static_cast<std::size_t>(h) * w *
                                  c);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    return data;
}

TEST(FaultInjection, UniversalSingleBitUpsetIsFullyCorrected)
{
    const int h = 12, w = 12, c = 8;
    Graph g = model::buildTinyNet(/*seed=*/42, h, w, c);
    const auto input = randomInput(h, w, c, 7);

    Lowering lw(/*pipelined=*/true);
    const auto lowered = g.lower(lw, input);

    InferenceSession sess(lw);

    // One upset per stored word, in a position that varies with the
    // address so every byte lane and bit index gets hit somewhere.
    Rng rng(99);
    for (const auto hem : {Hemisphere::West, Hemisphere::East}) {
        for (int sl = 0; sl < kMemSlicesPerHem; ++sl) {
            auto &mem = sess.chip().mem(hem, sl);
            for (MemAddr a = 0; a < kMemWordsPerSlice; ++a) {
                mem.injectBitFlip(a, rng.intIn(0, 319),
                                  rng.intIn(0, 7));
            }
        }
    }

    const Cycle cycles = sess.run();
    EXPECT_GT(cycles, 0u);
    // Every word the program consumed had a flipped bit; the
    // corrected count proves the error path actually ran.
    EXPECT_GT(sess.chip().stats().get("ecc_corrected"), 100u);
    EXPECT_FALSE(sess.chip().machineCheck());

    ref::QTensor qin(h, w, c);
    qin.data = input;
    const auto refs = g.runReference(qin);
    for (const auto &[id, lt] : lowered) {
        if (g.node(id).kind == OpKind::Input)
            continue;
        const ref::QTensor got = sess.readTensor(lt);
        const ref::QTensor &want = refs.at(id);
        ASSERT_EQ(got.data, want.data) << "node " << id;
    }
}

TEST(FaultInjection, DoubleBitUpsetRaisesMachineCheck)
{
    // Two flips in one 128-bit chunk exceed SECDED's correction
    // ability. The first consumer that touches a poisoned chunk must
    // condemn the chip: the run ends in MachineCheck with first-error
    // context, and nothing was silently "fixed".
    const int h = 8, w = 8, c = 4;
    Graph g = model::buildTinyNet(3, h, w, c);
    const auto input = randomInput(h, w, c, 11);
    Lowering lw(true);
    g.lower(lw, input);
    InferenceSession sess(lw);
    for (const auto hem : {Hemisphere::West, Hemisphere::East}) {
        for (int sl = 0; sl < kMemSlicesPerHem; ++sl) {
            auto &mem = sess.chip().mem(hem, sl);
            for (MemAddr a = 0; a < kMemWordsPerSlice; ++a) {
                // Both flips land in ECC chunk 0 (bytes 0..15).
                mem.injectBitFlip(a, 0, 1);
                mem.injectBitFlip(a, 1, 5);
            }
        }
    }
    const RunResult rr = sess.runBounded();
    EXPECT_EQ(rr.status, RunStatus::MachineCheck);
    EXPECT_FALSE(rr.completed);
    EXPECT_TRUE(sess.machineChecked());
    EXPECT_FALSE(sess.timedOut());

    const Chip &chip = sess.chip();
    EXPECT_TRUE(chip.machineCheck());
    EXPECT_GE(chip.stats().get("ecc_uncorrectable"), 1u);
    EXPECT_EQ(chip.stats().get("machine_checks"),
              chip.stats().get("ecc_uncorrectable"));
    // Corrections require a clean syndrome, which a double flip
    // never produces.
    EXPECT_EQ(chip.stats().get("ecc_corrected"), 0u);

    // First-error context names the detecting unit and cycle.
    const MachineCheckInfo &mc = chip.machineCheckInfo();
    EXPECT_FALSE(mc.unit.empty());
    EXPECT_FALSE(mc.detail.empty());
    EXPECT_LE(mc.cycle, chip.now());
    EXPECT_EQ(mc.cycle, sess.lastMachineCheck().cycle);
    EXPECT_EQ(mc.unit, sess.lastMachineCheck().unit);

    // The halt is prompt: the chip stopped at the detection cycle,
    // not at program retirement.
    EXPECT_FALSE(chip.done());
}

TEST(FaultInjection, DoubleBitStreamFlipNeverServesSilently)
{
    // Satellite regression for the old StreamIo::consume bug: an
    // uncorrectable stream error used to warn and return the
    // corrupted vector as success. Force stream strikes that are
    // always double-bit: the run must end in MachineCheck, never in a
    // "completed" run whose output silently differs from the golden
    // reference.
    const int h = 8, w = 8, c = 4;
    Graph g = model::buildTinyNet(5, h, w, c);
    const auto input = randomInput(h, w, c, 13);
    Lowering lw(true);
    const auto lowered = g.lower(lw, input);

    ChipConfig cfg;
    cfg.fault.seed = 0xdeadull;
    cfg.fault.streamRate = 0.01;
    cfg.fault.doubleBitFraction = 1.0; // Every strike uncorrectable.
    InferenceSession sess(lw, cfg);

    const RunResult rr = sess.runBounded();
    if (rr.status == RunStatus::Completed) {
        // No strike hit (possible at low rates): the output must be
        // bit-exact — corruption without detection is the one
        // forbidden outcome.
        ref::QTensor qin(h, w, c);
        qin.data = input;
        const auto refs = g.runReference(qin);
        for (const auto &[id, lt] : lowered) {
            if (g.node(id).kind == OpKind::Input)
                continue;
            ASSERT_EQ(sess.readTensor(lt).data, refs.at(id).data);
        }
        EXPECT_EQ(sess.chip().stats().get("faults_injected_stream"),
                  0u);
    } else {
        EXPECT_EQ(rr.status, RunStatus::MachineCheck);
        EXPECT_GE(sess.chip().stats().get("faults_injected_stream"),
                  2u);
        EXPECT_GE(sess.chip().machineCheckCount(), 1u);
    }
}

TEST(FaultInjection, RateInjectedSingleBitUpsetsAreCorrected)
{
    // The injector's single-bit strikes (doubleBitFraction = 0) land
    // anywhere in the 137-bit codeword, check bits included, and the
    // consumer-side SECDED must absorb every one bit-exactly.
    const int h = 8, w = 8, c = 4;
    Graph g = model::buildTinyNet(9, h, w, c);
    const auto input = randomInput(h, w, c, 17);
    Lowering lw(true);
    const auto lowered = g.lower(lw, input);

    ChipConfig cfg;
    cfg.fault.seed = 0xfeedull;
    // Write and stream strikes: each is checked (and corrected)
    // immediately downstream. Read-path strikes are left out here —
    // a read strike plus a consume strike could stack two errors
    // into one chunk between checks, which is the *uncorrectable*
    // scenario tested elsewhere.
    cfg.fault.memWriteRate = 0.05;
    cfg.fault.streamRate = 0.02;
    cfg.fault.doubleBitFraction = 0.0;
    InferenceSession sess(lw, cfg);

    const RunResult rr = sess.runBounded();
    ASSERT_EQ(rr.status, RunStatus::Completed);
    const auto stats = sess.chip().stats();
    EXPECT_GT(stats.get("faults_injected_mem") +
                  stats.get("faults_injected_stream"),
              0u);
    EXPECT_GT(stats.get("ecc_corrected"), 0u);
    EXPECT_EQ(stats.get("machine_checks"), 0u);

    ref::QTensor qin(h, w, c);
    qin.data = input;
    const auto refs = g.runReference(qin);
    for (const auto &[id, lt] : lowered) {
        if (g.node(id).kind == OpKind::Input)
            continue;
        ASSERT_EQ(sess.readTensor(lt).data, refs.at(id).data)
            << "node " << id;
    }
}

/** Runs @p cfg on a fresh tiny-net session; returns (result, stats,
 *  mc info, final cycle). */
struct FaultRunOutcome
{
    RunResult rr;
    StatGroup stats;
    bool machineChecked = false;
    MachineCheckInfo mc;
    Cycle haltCycle = 0;
};

FaultRunOutcome
runFaulted(Lowering &lw, ChipConfig cfg)
{
    InferenceSession sess(lw, cfg);
    FaultRunOutcome out;
    out.rr = sess.runBounded();
    out.stats = sess.chip().stats();
    out.machineChecked = sess.machineChecked();
    if (out.machineChecked)
        out.mc = sess.chip().machineCheckInfo();
    out.haltCycle = sess.chip().now();
    return out;
}

void
expectIdenticalOutcomes(const FaultRunOutcome &a,
                        const FaultRunOutcome &b)
{
    EXPECT_EQ(a.rr.status, b.rr.status);
    EXPECT_EQ(a.rr.cycles, b.rr.cycles);
    EXPECT_EQ(a.haltCycle, b.haltCycle);
    EXPECT_EQ(a.machineChecked, b.machineChecked);
    if (a.machineChecked && b.machineChecked) {
        EXPECT_EQ(a.mc.cycle, b.mc.cycle);
        EXPECT_EQ(a.mc.unit, b.mc.unit);
        EXPECT_EQ(a.mc.detail, b.mc.detail);
    }
    EXPECT_EQ(a.stats.all(), b.stats.all());
}

TEST(FaultInjection, RateFaultsBitIdenticalUnderFastForward)
{
    // Rate-based strikes draw from the RNG per *access*, and the
    // access sequence is identical under per-cycle stepping and
    // fast-forward — so the entire upset history, halt cycle and
    // machine-check context must match bit for bit.
    const int h = 8, w = 8, c = 4;
    Graph g = model::buildTinyNet(21, h, w, c);
    const auto input = randomInput(h, w, c, 23);
    Lowering lw(true);
    g.lower(lw, input);

    for (const double dbl : {0.0, 0.3}) {
        ChipConfig cfg;
        cfg.fault.seed = 0xabcdull;
        cfg.fault.memReadRate = 0.02;
        cfg.fault.memWriteRate = 0.01;
        cfg.fault.streamRate = 0.01;
        cfg.fault.doubleBitFraction = dbl;

        ChipConfig ff = cfg, step = cfg;
        ff.fastForwardEnabled = true;
        step.fastForwardEnabled = false;
        expectIdenticalOutcomes(runFaulted(lw, ff),
                                runFaulted(lw, step));
    }
}

TEST(FaultInjection, ScheduledFaultsBitIdenticalUnderFastForward)
{
    // Scheduled (cycle, site, bit) faults are events: fast-forward
    // must stop at each fault cycle instead of jumping the span, so
    // both stepping modes observe the same persistent SRAM upsets.
    const int h = 8, w = 8, c = 4;
    Graph g = model::buildTinyNet(33, h, w, c);
    const auto input = randomInput(h, w, c, 29);
    Lowering lw(true);
    g.lower(lw, input);

    ChipConfig cfg;
    // A spread of cycles, sites and bits — data and check bits, both
    // hemispheres, including one double flip in the same chunk
    // (uncorrectable if that word is ever consumed afterwards).
    cfg.fault.events = {
        {50, 0, 0x10, 0, 3},     {400, 3, 0x10, 1, 130},
        {900, 47, 0x20, 5, 64},  {1500, 12, 0x08, 2, 7},
        {1500, 12, 0x08, 2, 9},  {4000, 80, 0x40, 19, 136},
    };

    ChipConfig ff = cfg, step = cfg;
    ff.fastForwardEnabled = true;
    step.fastForwardEnabled = false;
    const FaultRunOutcome a = runFaulted(lw, ff);
    const FaultRunOutcome b = runFaulted(lw, step);
    expectIdenticalOutcomes(a, b);
    // Every event at a cycle the run reached was applied.
    EXPECT_GT(a.stats.get("faults_injected_scheduled"), 0u);
}

TEST(FaultInjection, ZeroRateConfigBitIdenticalToCleanRun)
{
    // An injector that never fires (zero rates; its one event lies
    // beyond the program's end) must leave the run bit-identical to
    // a chip with no injector at all.
    const int h = 8, w = 8, c = 4;
    Graph g = model::buildTinyNet(55, h, w, c);
    const auto input = randomInput(h, w, c, 31);
    Lowering lw(true);
    const auto lowered = g.lower(lw, input);

    const FaultRunOutcome clean = runFaulted(lw, ChipConfig{});

    ChipConfig armed;
    armed.fault.events = {{~Cycle{0} - 1, 0, 0, 0, 0}};
    const FaultRunOutcome idle = runFaulted(lw, armed);

    EXPECT_EQ(clean.rr.status, idle.rr.status);
    EXPECT_EQ(clean.rr.cycles, idle.rr.cycles);
    EXPECT_EQ(clean.haltCycle, idle.haltCycle);
    // The armed run adds the faults_injected_* keys (all zero); every
    // shared counter must match exactly.
    for (const auto &[name, v] : clean.stats.all())
        EXPECT_EQ(idle.stats.get(name), v) << name;
    EXPECT_EQ(idle.stats.get("faults_injected_scheduled"), 0u);
    EXPECT_EQ(idle.stats.get("faults_injected_mem"), 0u);
    EXPECT_EQ(idle.stats.get("faults_injected_stream"), 0u);
}

} // namespace
} // namespace tsp
