/**
 * @file
 * Whole-chip ECC fault injection (paper III.C: producers generate
 * ECC, consumers check and correct). A single-bit upset is injected
 * into EVERY word of EVERY MEM slice after the model image is
 * emplaced — weights, biases, scales, activations, instruction-free
 * scratch — and the network must still produce bit-exact logits,
 * because every 128-bit ECC chunk can absorb one flipped bit.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "graph/graph.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"

namespace tsp {
namespace {

std::vector<std::int8_t>
randomInput(int h, int w, int c, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> data(static_cast<std::size_t>(h) * w *
                                  c);
    for (auto &v : data)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    return data;
}

TEST(FaultInjection, UniversalSingleBitUpsetIsFullyCorrected)
{
    const int h = 12, w = 12, c = 8;
    Graph g = model::buildTinyNet(/*seed=*/42, h, w, c);
    const auto input = randomInput(h, w, c, 7);

    Lowering lw(/*pipelined=*/true);
    const auto lowered = g.lower(lw, input);

    InferenceSession sess(lw);

    // One upset per stored word, in a position that varies with the
    // address so every byte lane and bit index gets hit somewhere.
    Rng rng(99);
    for (const auto hem : {Hemisphere::West, Hemisphere::East}) {
        for (int sl = 0; sl < kMemSlicesPerHem; ++sl) {
            auto &mem = sess.chip().mem(hem, sl);
            for (MemAddr a = 0; a < kMemWordsPerSlice; ++a) {
                mem.injectBitFlip(a, rng.intIn(0, 319),
                                  rng.intIn(0, 7));
            }
        }
    }

    const Cycle cycles = sess.run();
    EXPECT_GT(cycles, 0u);
    // Every word the program consumed had a flipped bit; the
    // corrected count proves the error path actually ran.
    EXPECT_GT(sess.chip().stats().get("ecc_corrected"), 100u);

    ref::QTensor qin(h, w, c);
    qin.data = input;
    const auto refs = g.runReference(qin);
    for (const auto &[id, lt] : lowered) {
        if (g.node(id).kind == OpKind::Input)
            continue;
        const ref::QTensor got = sess.readTensor(lt);
        const ref::QTensor &want = refs.at(id);
        ASSERT_EQ(got.data, want.data) << "node " << id;
    }
}

TEST(FaultInjection, DoubleBitUpsetIsDetectedAndCounted)
{
    // Two flips in one 128-bit chunk exceed SECDED's correction
    // ability. The chip keeps running (hardware raises a CSR error
    // flag, it does not halt a systolic array mid-beat), but every
    // consumer that touched a poisoned chunk must have *detected*
    // it: the uncorrectable counter is how the host learns the
    // result cannot be trusted.
    const int h = 8, w = 8, c = 4;
    Graph g = model::buildTinyNet(3, h, w, c);
    const auto input = randomInput(h, w, c, 11);
    Lowering lw(true);
    g.lower(lw, input);
    InferenceSession sess(lw);
    for (const auto hem : {Hemisphere::West, Hemisphere::East}) {
        for (int sl = 0; sl < kMemSlicesPerHem; ++sl) {
            auto &mem = sess.chip().mem(hem, sl);
            for (MemAddr a = 0; a < kMemWordsPerSlice; ++a) {
                // Both flips land in ECC chunk 0 (bytes 0..15).
                mem.injectBitFlip(a, 0, 1);
                mem.injectBitFlip(a, 1, 5);
            }
        }
    }
    sess.run();
    EXPECT_GT(sess.chip().stats().get("ecc_uncorrectable"), 100u);
    // Nothing was silently "fixed": corrections require a clean
    // syndrome, which a double flip never produces.
    EXPECT_EQ(sess.chip().stats().get("ecc_corrected"), 0u);
}

} // namespace
} // namespace tsp
