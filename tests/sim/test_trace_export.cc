/**
 * @file
 * Chrome-trace export: event structure, escaping, and a file
 * round-trip from a real program's dispatch trace.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "isa/assembler.hh"
#include "sim/trace_export.hh"

namespace tsp {
namespace {

TEST(TraceExport, JsonContainsQueuesAndEvents)
{
    ChipConfig cfg;
    cfg.traceEnabled = true;
    Chip chip(cfg);
    const AsmResult r = assemble("@MEM_W0:\n"
                                 "    read 0x1, s0.e\n"
                                 "    nop 2\n"
                                 "    read 0x2, s1.e\n"
                                 "@VXM3:\n"
                                 "    nop 3\n"
                                 "    relu s0.e, s2.e\n");
    ASSERT_TRUE(r.ok) << r.error;
    chip.loadProgram(r.program);
    chip.run();

    const std::string json = traceToChromeJson(chip.trace());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("MEM_W0"), std::string::npos);
    EXPECT_NE(json.find("VXM3"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"read\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"relu\""), std::string::npos);
    // Three dispatched instructions -> three duration events.
    std::size_t durations = 0, pos = 0;
    while ((pos = json.find("\"ph\":\"X\"", pos)) !=
           std::string::npos) {
        ++durations;
        ++pos;
    }
    EXPECT_EQ(durations, 3u);
}

TEST(TraceExport, WritesFile)
{
    ChipConfig cfg;
    cfg.traceEnabled = true;
    Chip chip(cfg);
    const AsmResult r = assemble("@MEM_E1:\n    read 0x4, s5.w\n");
    ASSERT_TRUE(r.ok);
    chip.loadProgram(r.program);
    chip.run();

    const std::string path = "/tmp/tsp_trace_test.json";
    ASSERT_TRUE(writeChromeTrace(chip, path));
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("MEM_E1"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceExport, EscapesAssemblyText)
{
    // toString never emits quotes/backslashes today, but the escaper
    // must be safe regardless.
    std::vector<TraceEvent> events(1);
    events[0].cycle = 3;
    events[0].icu = IcuId::vxmAlu(0);
    events[0].inst.op = Opcode::Relu;
    const std::string json = traceToChromeJson(events);
    EXPECT_NE(json.find("\"asm\""), std::string::npos);
    EXPECT_EQ(json.find('\n', json.find("\"asm\"")),
              json.find("\"}}", json.find("\"asm\"")) + 3);
}

} // namespace
} // namespace tsp
