/**
 * @file
 * Differential fuzzing: hundreds of randomly generated (but legally
 * scheduled) read -> VXM -> write pipelines execute on the chip and
 * are checked element-for-element against a host interpreter built on
 * the same ALU semantics. Exercises random slices, directions, ALUs,
 * opcodes and stream ids under exact Eq. 4 timing.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "mem/ecc.hh"
#include "sim/chip.hh"
#include "vxm/alu_ops.hh"

namespace tsp {
namespace {

struct HostMem
{
    std::map<std::uint64_t, std::array<std::int8_t, kLanes>> words;

    static std::uint64_t
    key(const GlobalAddr &a)
    {
        return a.linear();
    }

    std::array<std::int8_t, kLanes>
    read(const GlobalAddr &a) const
    {
        auto it = words.find(key(a));
        if (it == words.end())
            return {};
        return it->second;
    }

    void
    write(const GlobalAddr &a,
          const std::array<std::int8_t, kLanes> &v)
    {
        words[key(a)] = v;
    }
};

class FuzzPipelines : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzPipelines, ChipMatchesInterpreter)
{
    Rng rng(GetParam());
    Chip chip;
    HostMem host;
    ScheduledProgram prog;
    KernelBuilder kb(prog);

    // Seed a pool of source words on both hemispheres.
    std::vector<GlobalAddr> pool;
    for (int i = 0; i < 24; ++i) {
        const Hemisphere hem =
            rng.nextBelow(2) ? Hemisphere::East : Hemisphere::West;
        const int slice = rng.intIn(1, 40);
        const MemAddr addr =
            static_cast<MemAddr>(rng.nextBelow(4096));
        const GlobalAddr a{hem, slice, addr};
        std::array<std::int8_t, kLanes> data{};
        Vec320 v;
        for (int l = 0; l < kLanes; ++l) {
            data[static_cast<std::size_t>(l)] =
                static_cast<std::int8_t>(rng.intIn(-120, 120));
            v.bytes[static_cast<std::size_t>(l)] =
                static_cast<std::uint8_t>(
                    data[static_cast<std::size_t>(l)]);
        }
        chip.mem(hem, slice).backdoorWrite(addr, v);
        host.write(a, data);
        pool.push_back(a);
    }

    const Opcode kBinary[] = {Opcode::Add,    Opcode::Sub,
                              Opcode::Mul,    Opcode::AddSat,
                              Opcode::SubSat, Opcode::MulSat,
                              Opcode::Max,    Opcode::Min};
    const Opcode kUnary[] = {Opcode::Neg, Opcode::Abs, Opcode::Relu,
                             Opcode::Shift};

    struct Check
    {
        GlobalAddr dst;
        std::array<std::int8_t, kLanes> want;
    };
    std::vector<Check> checks;

    // Pipelines spaced far enough apart to never interact; each
    // uses its own stream ids from a rotating window.
    Cycle t = 120;
    for (int round = 0; round < 40; ++round, t += 60) {
        const bool binary = rng.nextBelow(2) == 0;
        const Opcode op =
            binary ? kBinary[rng.nextBelow(8)]
                   : kUnary[rng.nextBelow(4)];
        const std::uint32_t shift =
            static_cast<std::uint32_t>(rng.nextBelow(4));
        const int alu = static_cast<int>(rng.nextBelow(16));

        const GlobalAddr &src_a =
            pool[rng.nextBelow(pool.size())];
        const GlobalAddr &src_b =
            pool[rng.nextBelow(pool.size())];
        const StreamId sa =
            static_cast<StreamId>(rng.nextBelow(14));
        // Distinct operand stream ids.
        const StreamId sb = static_cast<StreamId>(14 + sa % 14);

        const StreamRef ra{
            sa, Layout::flowDirection(src_a.pos(), Layout::vxm)};
        const StreamRef rb{
            sb, Layout::flowDirection(src_b.pos(), Layout::vxm)};

        // Destination: a fresh word in a random slice.
        const Hemisphere dhem =
            rng.nextBelow(2) ? Hemisphere::East : Hemisphere::West;
        const GlobalAddr dst{
            dhem, rng.intIn(1, 40),
            static_cast<MemAddr>(4096 + rng.nextBelow(4096))};
        const StreamRef rd{
            28, Layout::flowDirection(Layout::vxm, dst.pos())};

        // Same-slice operands cannot be read in one cycle; such a
        // draw degrades to a unary op instead.
        const bool same_slice = binary &&
                                src_b.hem == src_a.hem &&
                                src_b.slice == src_a.slice;
        kb.readArriving(src_a, ra, Layout::vxm, t);
        Cycle vis;
        std::array<std::int8_t, kLanes> want{};
        const auto a_host = host.read(src_a);
        if (binary && !same_slice) {
            kb.readArriving(src_b, rb, Layout::vxm, t);
            vis = kb.vxmBinary(alu, op, DType::Int8, ra, rb, rd, t);
            const auto b_host = host.read(src_b);
            for (int l = 0; l < kLanes; ++l) {
                LaneValue x, y;
                x.i = a_host[static_cast<std::size_t>(l)];
                y.i = b_host[static_cast<std::size_t>(l)];
                want[static_cast<std::size_t>(l)] =
                    static_cast<std::int8_t>(
                        aluBinary(op, DType::Int8, x, y).i);
            }
        } else {
            const Opcode uop =
                binary ? Opcode::Relu : op; // Fall back to unary.
            vis = kb.vxmUnary(alu, uop, DType::Int8, ra, rd, t,
                              shift);
            for (int l = 0; l < kLanes; ++l) {
                LaneValue x;
                x.i = a_host[static_cast<std::size_t>(l)];
                want[static_cast<std::size_t>(l)] =
                    static_cast<std::int8_t>(
                        aluUnary(uop, DType::Int8, x, shift).i);
            }
        }

        const Cycle w_at =
            vis + Layout::transitDelay(Layout::vxm, dst.pos());
        Instruction wr;
        wr.op = Opcode::Write;
        wr.addr = dst.addr;
        wr.srcA = rd;
        prog.emit(w_at, dst.icu(), wr);
        checks.push_back({dst, want});
    }

    chip.loadProgram(prog.toAsm());
    chip.run();

    for (std::size_t i = 0; i < checks.size(); ++i) {
        const Vec320 got =
            chip.mem(checks[i].dst.hem, checks[i].dst.slice)
                .backdoorRead(checks[i].dst.addr);
        for (int l = 0; l < kLanes; ++l) {
            ASSERT_EQ(static_cast<std::int8_t>(
                          got.bytes[static_cast<std::size_t>(l)]),
                      checks[i].want[static_cast<std::size_t>(l)])
                << "pipeline " << i << " lane " << l;
        }
    }
    EXPECT_EQ(chip.stats().get("ecc_uncorrectable"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipelines,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const auto &info) {
                             return "seed" +
                                    std::to_string(info.param);
                         });

} // namespace
} // namespace tsp
