/**
 * @file
 * Activity-based power model: static floor, activity scaling,
 * downsampling, and configuration validation.
 */

#include <gtest/gtest.h>

#include "arch/layout.hh"
#include "sim/power.hh"

namespace tsp {
namespace {

TEST(PowerModel, StaticFloorMatchesConfig)
{
    ChipConfig cfg;
    PowerModel pm(cfg);
    pm.sample({}); // One idle cycle.
    const double floor = cfg.power.uncoreStaticW +
                         cfg.power.superlaneStaticW * kSuperlanes;
    EXPECT_NEAR(pm.averagePowerW(), floor, 1e-9);
    EXPECT_EQ(pm.cycles(), 1u);
}

TEST(PowerModel, ActivityAddsDynamicEnergy)
{
    ChipConfig cfg;
    PowerModel idle(cfg), busy(cfg);
    idle.sample({});
    ActivitySample act;
    act.maccOps = 4ull * 320 * 320; // Peak MXM cycle.
    act.vxmLaneOps = 320;
    act.sramWords = 88 * 20;
    act.icuDispatches = 100;
    busy.sample(act);
    EXPECT_GT(busy.totalEnergyJ(), idle.totalEnergyJ());
    // Peak MXM activity should dominate: 409,600 MACCs x 0.4 pJ =
    // ~164 W of dynamic power at 1 GHz.
    EXPECT_GT(busy.averagePowerW(), idle.averagePowerW() + 150.0);
}

TEST(PowerModel, TraceOnlyWhenEnabled)
{
    ChipConfig off;
    PowerModel a(off);
    a.sample({});
    EXPECT_TRUE(a.traceW().empty());

    ChipConfig on;
    on.powerTraceEnabled = true;
    PowerModel b(on);
    b.sample({});
    b.sample({});
    EXPECT_EQ(b.traceW().size(), 2u);
}

TEST(PowerModel, DownsampleAverages)
{
    ChipConfig cfg;
    cfg.powerTraceEnabled = true;
    PowerModel pm(cfg);
    // 8 idle cycles then 8 busy cycles.
    for (int i = 0; i < 8; ++i)
        pm.sample({});
    ActivitySample act;
    act.maccOps = 100000;
    for (int i = 0; i < 8; ++i)
        pm.sample(act);
    const auto buckets = pm.downsampledTrace(2);
    ASSERT_EQ(buckets.size(), 2u);
    EXPECT_GT(buckets[1], buckets[0]);
    EXPECT_TRUE(pm.downsampledTrace(0).empty());
}

TEST(ChipConfigDeath, BadSuperlaneCountIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ChipConfig cfg;
        cfg.activeSuperlanes = 21;
        cfg.validate();
    };
    ASSERT_EXIT(body(), ::testing::ExitedWithCode(1),
                "activeSuperlanes");
}

TEST(ChipConfigDeath, BadClockIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ChipConfig cfg;
        cfg.clockHz = 0.0;
        cfg.validate();
    };
    ASSERT_EXIT(body(), ::testing::ExitedWithCode(1), "clockHz");
}

TEST(Vec320, LaneHelpers)
{
    Vec320 v;
    v.set(3, 7, 0xab);
    EXPECT_EQ(v.at(3, 7), 0xab);
    EXPECT_EQ(v.bytes[3 * kLanesPerSuperlane + 7], 0xab);
    Vec320 w = v;
    EXPECT_EQ(v, w);
    w.set(0, 0, 1);
    EXPECT_FALSE(v == w);
}

TEST(Layout, PosNamesReadable)
{
    EXPECT_EQ(Layout::posName(Layout::vxm), "VXM");
    EXPECT_EQ(Layout::posName(Layout::mxmWest), "MXM_W");
    EXPECT_EQ(Layout::posName(Layout::sxmEast), "SXM_E");
    EXPECT_EQ(Layout::posName(Layout::c2cEast), "C2C_E");
    EXPECT_EQ(Layout::posName(Layout::memPos(Hemisphere::West, 0)),
              "MEM_W0");
    EXPECT_EQ(Layout::posName(Layout::memPos(Hemisphere::East, 43)),
              "MEM_E43");
}

} // namespace
} // namespace tsp
