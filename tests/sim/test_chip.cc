/**
 * @file
 * Full-chip integration at the assembly level: a hand-written Table I
 * program (read -> add -> write) with the compulsory barrier preamble,
 * Repeat-driven streaming, gather/scatter, run-to-run determinism of
 * the cycle count, and stat/power plumbing.
 */

#include <gtest/gtest.h>

#include "compiler/schedule.hh"
#include "isa/assembler.hh"
#include "mem/ecc.hh"
#include "sim/chip.hh"

namespace tsp {
namespace {

Vec320
fill(std::uint8_t v)
{
    Vec320 x;
    x.bytes.fill(v);
    return x;
}

TEST(Chip, HandAssembledStreamAdd)
{
    // Z = X + Y with X in MEM_W0 (pos 46), Y in MEM_W1 (pos 45),
    // both flowing east to the VXM (pos 47), result flowing west to
    // MEM_W2 (pos 44).
    //
    // Timing: Read issued at t makes the vector visible at its slice
    // at t+2; arrival at the VXM adds the transit. X@46: t=10 ->
    // visible 12 -> VXM at 13. Y@45: t=9 -> visible 11 -> VXM at 13.
    // Add at 13 -> s29.w visible 14 -> MEM_W2 (44) at 17.
    const std::string text = "@MEM_W0:\n"
                             "    nop 10\n"
                             "    read 0x5, s16.e\n"
                             "@MEM_W1:\n"
                             "    nop 9\n"
                             "    read 0x6, s17.e\n"
                             "@MEM_W2:\n"
                             "    nop 17\n"
                             "    write 0x7, s29.w\n"
                             "@VXM0:\n"
                             "    nop 13\n"
                             "    add.sat s16.e, s17.e, s29.w\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;

    Chip chip;
    chip.mem(Hemisphere::West, 0).backdoorWrite(0x5, fill(30));
    chip.mem(Hemisphere::West, 1).backdoorWrite(0x6, fill(40));
    chip.loadProgram(r.program);
    const Cycle cycles = chip.run();
    EXPECT_GE(cycles, 18u);

    const Vec320 z = chip.mem(Hemisphere::West, 2).backdoorRead(0x7);
    for (int i = 0; i < kLanes; ++i)
        EXPECT_EQ(z.bytes[static_cast<std::size_t>(i)], 70);

    const StatGroup stats = chip.stats();
    EXPECT_EQ(stats.get("mem_reads"), 2u);
    EXPECT_EQ(stats.get("mem_writes"), 1u);
    EXPECT_EQ(stats.get("vxm_lane_ops"),
              static_cast<std::uint64_t>(kLanes));
    EXPECT_EQ(stats.get("ecc_uncorrectable"), 0u);
    EXPECT_GT(chip.power().totalEnergyJ(), 0.0);
}

TEST(Chip, RepeatStreamsVectorsEveryCycle)
{
    // Stream 4 vectors from MEM_E0 via Repeat: addresses differ, so
    // use 4 explicit reads driven at 1/cycle; the identical-read
    // Repeat form streams the same address.
    const std::string text = "@MEM_E3:\n"
                             "    read 0x9, s2.e\n"
                             "    repeat 3, 1\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    Chip chip;
    chip.mem(Hemisphere::East, 3).backdoorWrite(0x9, fill(5));
    chip.loadProgram(r.program);
    chip.run();
    EXPECT_EQ(chip.mem(Hemisphere::East, 3).reads(), 4u);
}

TEST(Chip, BarrierPreambleCostsThirtyFiveCycles)
{
    // An empty preamble'd program retires right after the barrier.
    ScheduledProgram empty;
    Chip chip;
    chip.loadProgram(empty.toAsm(/*with_preamble=*/true));
    const Cycle cycles = chip.run();
    // Notify at 0; the broadcast satisfies the parked Syncs at 35
    // and the final step advances once more (paper III.A.2:
    // 35-cycle chip-wide barrier).
    EXPECT_EQ(cycles, kBarrierLatency + 1);
}

TEST(Chip, GatherReadsIndirectAddresses)
{
    // Map vector selects address 0x20 for every superlane; gather
    // places the addressed words on the stream; a write commits.
    const std::string text = "@MEM_W5:\n"
                             "    read 0x1, s0.e\n"      // map
                             "@MEM_W4:\n"
                             "    nop 3\n"               // map arrives
                             "    gather s1.e, s0.e\n"
                             "@MEM_W3:\n"
                             "    nop 6\n"
                             "    write 0x30, s1.e\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;

    Chip chip;
    // Map word: per-superlane little-endian address 0x20.
    Vec320 map;
    for (int sl = 0; sl < kSuperlanes; ++sl) {
        map.bytes[static_cast<std::size_t>(sl * kWordBytes)] = 0x20;
    }
    chip.mem(Hemisphere::West, 5).backdoorWrite(0x1, map);
    chip.mem(Hemisphere::West, 4).backdoorWrite(0x20, fill(77));
    chip.loadProgram(r.program);
    chip.run();
    const Vec320 out =
        chip.mem(Hemisphere::West, 3).backdoorRead(0x30);
    for (int i = 0; i < kLanes; ++i)
        EXPECT_EQ(out.bytes[static_cast<std::size_t>(i)], 77);
}

TEST(Chip, DeterministicCycleCounts)
{
    const std::string text = "@MEM_W0:\n"
                             "    read 0x5, s16.e\n"
                             "    repeat 10, 2\n"
                             "@VXM1:\n"
                             "    nop 3\n"
                             "    relu s16.e, s20.e\n"
                             "    repeat 10, 2\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    Cycle first = 0;
    for (int run = 0; run < 3; ++run) {
        Chip chip;
        chip.mem(Hemisphere::West, 0).backdoorWrite(0x5, fill(1));
        chip.loadProgram(r.program);
        const Cycle c = chip.run();
        if (run == 0)
            first = c;
        EXPECT_EQ(c, first);
    }
}

TEST(Chip, EccErrorInSramIsCorrectedByConsumer)
{
    const std::string text = "@MEM_W0:\n"
                             "    read 0x5, s16.e\n"
                             "@VXM0:\n"
                             "    nop 3\n"
                             "    relu s16.e, s20.w\n"
                             "@MEM_W1:\n"
                             "    nop 6\n"
                             "    write 0x6, s20.w\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    Chip chip;
    chip.mem(Hemisphere::West, 0).backdoorWrite(0x5, fill(9));
    chip.mem(Hemisphere::West, 0).injectBitFlip(0x5, 100, 3);
    chip.loadProgram(r.program);
    chip.run();
    EXPECT_EQ(chip.stats().get("ecc_corrected"), 1u);
    const Vec320 out =
        chip.mem(Hemisphere::West, 1).backdoorRead(0x6);
    EXPECT_EQ(out.bytes[100], 9); // Corrected before the ALU.
}

TEST(Chip, PowerTraceRecordsPerCycle)
{
    ChipConfig cfg;
    cfg.powerTraceEnabled = true;
    Chip chip(cfg);
    const std::string text = "@MEM_W0:\n    read 0x1, s0.e\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok);
    chip.loadProgram(r.program);
    const Cycle cycles = chip.run();
    EXPECT_EQ(chip.power().traceW().size(),
              static_cast<std::size_t>(cycles));
    // Static floor: uncore + 20 superlanes.
    const double floor = cfg.power.uncoreStaticW +
                         cfg.power.superlaneStaticW * kSuperlanes;
    for (const float w : chip.power().traceW())
        EXPECT_GE(w, floor * 0.99);
}

TEST(Chip, ReducedVectorLengthLowersStaticPower)
{
    ChipConfig full;
    ChipConfig narrow;
    narrow.activeSuperlanes = 4; // VL 64 (paper II.F power gating).
    Chip a(full), b(narrow);
    a.loadProgram(AsmProgram{});
    b.loadProgram(AsmProgram{});
    a.step();
    b.step();
    EXPECT_GT(a.power().totalEnergyJ(), b.power().totalEnergyJ());
}

} // namespace
} // namespace tsp
