/**
 * @file
 * Differential tests for chip snapshot/restore: serialize the full
 * architectural state mid-run, restore it onto a freshly built chip,
 * run to completion, and require the result to be indistinguishable
 * from an uninterrupted run — same clock, same stats() counters
 * (including ECC corrections), same memory bytes, same energy — with
 * fault injection live, across the per-cycle and fast-forward tiers
 * in every source/destination combination. Also covers the format
 * itself (round trip, corruption rejection), the quiesce/refusal
 * rules, the fault-seed restore policy (same seed resumes the RNG
 * streams; a migration seed keeps fresh ones), pod snapshots with
 * in-flight C2C traffic, and the session-level periodic-snapshot +
 * migrate-and-resume path.
 */

#include <gtest/gtest.h>

#include <string>

#include "c2c/collective.hh"
#include "common/rng.hh"
#include "graph/graph.hh"
#include "isa/assembler.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"
#include "sim/chip.hh"
#include "sim/snapshot.hh"

namespace tsp {
namespace {

Vec320
fill(std::uint8_t v)
{
    Vec320 x;
    x.bytes.fill(v);
    return x;
}

ChipConfig
configFor(bool fast_forward)
{
    ChipConfig cfg;
    cfg.fastForwardEnabled = fast_forward;
    return cfg;
}

/**
 * A fault environment that is live but survivable: random strikes on
 * MEM ports (all correctable) plus one scheduled single-bit flip on
 * the first input word, latent in memory until its read corrects it.
 */
ChipConfig
faultConfigFor(bool fast_forward)
{
    ChipConfig cfg = configFor(fast_forward);
    cfg.fault.seed = 0xabcdull;
    cfg.fault.memReadRate = 0.25;
    cfg.fault.memWriteRate = 0.25;
    cfg.fault.doubleBitFraction = 0.0;
    cfg.fault.events = {{1, 0, 0x5, 0, 1}};
    return cfg;
}

/**
 * The Table I read->add->write program with ~1000-cycle leading NOP
 * spans (every queue shifted by the same constant, so the stream
 * timing still lines up): long provably idle regions for snapshot
 * cuts inside fast-forwarded spans, and enough runway that cycle
 * 1015 is past the reads but before retirement.
 */
const char *const kProgram = "@MEM_W0:\n"
                             "    nop 1010\n"
                             "    read 0x5, s16.e\n"
                             "@MEM_W1:\n"
                             "    nop 1009\n"
                             "    read 0x6, s17.e\n"
                             "@MEM_W2:\n"
                             "    nop 1017\n"
                             "    write 0x7, s29.w\n"
                             "@VXM0:\n"
                             "    nop 1013\n"
                             "    add.sat s16.e, s17.e, s29.w\n";

AsmProgram
program()
{
    const AsmResult r = assemble(kProgram);
    EXPECT_TRUE(r.ok) << r.error;
    return r.program;
}

void
seedInputs(Chip &chip)
{
    chip.mem(Hemisphere::West, 0).backdoorWrite(0x5, fill(30));
    chip.mem(Hemisphere::West, 1).backdoorWrite(0x6, fill(40));
}

/**
 * Asserts two completed chips are indistinguishable. With
 * @p exact_payload (same-tier, per-cycle runs), the comparison is a
 * byte-for-byte diff of both chips' serialized state — the full MEM
 * image (data + check bits), fabric, unit latches, counters, RNG
 * streams and the energy accumulator. Across tiers the energy
 * accumulator only differs in floating-point association (one span
 * sample vs N per-cycle samples), so it is compared with a relative
 * tolerance and everything else through stats()/probes.
 */
void
expectChipsIdentical(const Chip &a, const Chip &b, bool exact_payload)
{
    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.stats().all(), b.stats().all());
    EXPECT_EQ(a.power().cycles(), b.power().cycles());
    EXPECT_NEAR(a.power().totalEnergyJ(), b.power().totalEnergyJ(),
                1e-9 * a.power().totalEnergyJ());
    const Vec320 ra =
        a.mem(Hemisphere::West, 2).backdoorRead(0x7);
    const Vec320 rb =
        b.mem(Hemisphere::West, 2).backdoorRead(0x7);
    EXPECT_EQ(ra.bytes, rb.bytes);
    if (!exact_payload)
        return;
    ChipSnapshot sa, sb;
    std::string err;
    ASSERT_TRUE(a.snapshot(sa, &err)) << err;
    ASSERT_TRUE(b.snapshot(sb, &err)) << err;
    EXPECT_EQ(sa.payload, sb.payload);
    EXPECT_EQ(sa.serialize(), sb.serialize());
}

/** (source tier, destination tier, cut cycle). */
using MatrixParam = std::tuple<bool, bool, Cycle>;

class SnapshotMatrix : public ::testing::TestWithParam<MatrixParam>
{
};

TEST_P(SnapshotMatrix, MidRunRestoreMatchesUninterruptedRun)
{
    const auto [src_ff, dst_ff, cut] = GetParam();
    const AsmProgram prog = program();

    // Reference: uninterrupted run on the destination tier.
    Chip ref(faultConfigFor(dst_ff));
    seedInputs(ref);
    ref.loadProgram(prog);
    ref.run();

    // Source: run to the cut (inside an idle span for the early cut,
    // past the fault-corrected reads for the late one), snapshot.
    Chip src(faultConfigFor(src_ff));
    seedInputs(src);
    src.loadProgram(prog);
    EXPECT_FALSE(src.runBounded(cut));
    ASSERT_EQ(src.now(), cut);
    ChipSnapshot snap;
    std::string err;
    ASSERT_TRUE(src.snapshot(snap, &err)) << err;
    EXPECT_EQ(snap.cycle, cut);

    // Wire round trip: the restored snapshot is the deserialized one.
    const std::vector<std::uint8_t> bytes = snap.serialize();
    ChipSnapshot wire;
    ASSERT_TRUE(ChipSnapshot::deserialize(bytes.data(), bytes.size(),
                                          wire, &err))
        << err;
    EXPECT_EQ(wire.payload, snap.payload);
    EXPECT_EQ(wire.cycle, snap.cycle);

    // Destination: fresh chip, same program, no seeded inputs —
    // restore() must reproduce every byte of memory on its own.
    Chip dst(faultConfigFor(dst_ff));
    dst.loadProgram(prog);
    ASSERT_TRUE(dst.restore(wire, &err)) << err;
    EXPECT_EQ(dst.now(), cut);
    dst.run();

    // Byte-exact serialized-state diff is only meaningful when both
    // executions sampled power with identical FP association: both
    // final runs fully per-cycle.
    const bool exact = !src_ff && !dst_ff;
    expectChipsIdentical(ref, dst, exact);

    // The scheduled single-bit flip (and the random strikes) must
    // have been corrected identically on both paths.
    EXPECT_EQ(ref.stats().get("ecc_corrected"),
              dst.stats().get("ecc_corrected"));
    EXPECT_GE(ref.stats().get("ecc_corrected"), 1u);
    EXPECT_FALSE(dst.machineCheck());
}

INSTANTIATE_TEST_SUITE_P(
    Tiers, SnapshotMatrix,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       // 500: inside the fast-forwardable idle span,
                       // before the latent flip is read. 1015: past
                       // the reads, corrections already recorded.
                       ::testing::Values<Cycle>(500, 1015)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "ff" : "cyc") +
               "_to_" + (std::get<1>(info.param) ? "ff" : "cyc") +
               "_cut" + std::to_string(std::get<2>(info.param));
    });

TEST(Snapshot, SerializeRejectsCorruption)
{
    Chip chip(configFor(false));
    seedInputs(chip);
    chip.loadProgram(program());
    EXPECT_FALSE(chip.runBounded(400));

    ChipSnapshot snap;
    ASSERT_TRUE(chip.snapshot(snap));
    std::vector<std::uint8_t> bytes = snap.serialize();

    ChipSnapshot out;
    std::string err;
    ASSERT_TRUE(ChipSnapshot::deserialize(bytes.data(), bytes.size(),
                                          out, &err));

    // A flipped payload byte fails the content hash.
    std::vector<std::uint8_t> flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;
    EXPECT_FALSE(ChipSnapshot::deserialize(
        flipped.data(), flipped.size(), out, &err));
    EXPECT_NE(err.find("hash"), std::string::npos);

    // Truncation and trailing garbage are both rejected.
    EXPECT_FALSE(ChipSnapshot::deserialize(
        bytes.data(), bytes.size() - 5, out, &err));
    std::vector<std::uint8_t> extended = bytes;
    extended.push_back(0);
    EXPECT_FALSE(ChipSnapshot::deserialize(
        extended.data(), extended.size(), out, &err));

    // Bad magic.
    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 0xff;
    EXPECT_FALSE(ChipSnapshot::deserialize(bad.data(), bad.size(),
                                           out, &err));
    EXPECT_NE(err.find("magic"), std::string::npos);
}

TEST(Snapshot, RestoreRefusesMismatches)
{
    const AsmProgram prog = program();
    Chip src(faultConfigFor(false));
    seedInputs(src);
    src.loadProgram(prog);
    EXPECT_FALSE(src.runBounded(400));
    ChipSnapshot snap;
    ASSERT_TRUE(src.snapshot(snap));
    std::string err;

    {
        // No program loaded: content hash cannot match.
        Chip dst(faultConfigFor(false));
        EXPECT_FALSE(dst.restore(snap, &err));
        EXPECT_NE(err.find("program"), std::string::npos);
    }
    {
        // Different chip configuration (ECC off).
        ChipConfig cfg = faultConfigFor(false);
        cfg.eccEnabled = false;
        Chip dst(cfg);
        dst.loadProgram(prog);
        EXPECT_FALSE(dst.restore(snap, &err));
        EXPECT_NE(err.find("configuration"), std::string::npos);
    }
    {
        // Different fault environment: a changed rate refuses...
        ChipConfig cfg = faultConfigFor(false);
        cfg.fault.memReadRate = 0.5;
        Chip dst(cfg);
        dst.loadProgram(prog);
        EXPECT_FALSE(dst.restore(snap, &err));
        EXPECT_NE(err.find("fault environment"), std::string::npos);
    }
    {
        // ...as does an extra scheduled event...
        ChipConfig cfg = faultConfigFor(false);
        cfg.fault.events.push_back({2000, 3, 0x9, 1, 2});
        Chip dst(cfg);
        dst.loadProgram(prog);
        EXPECT_FALSE(dst.restore(snap, &err));
    }
    {
        // ...and a chip with injection off entirely.
        Chip dst(configFor(false));
        dst.loadProgram(prog);
        EXPECT_FALSE(dst.restore(snap, &err));
    }
    {
        // The dispatch trace is a quiesce violation on both sides.
        ChipConfig cfg = faultConfigFor(false);
        cfg.traceEnabled = true;
        Chip dst(cfg);
        dst.loadProgram(prog);
        EXPECT_FALSE(dst.restore(snap, &err));
        EXPECT_NE(err.find("trace"), std::string::npos);
        ChipSnapshot unused;
        EXPECT_FALSE(dst.snapshot(unused, &err));
    }
}

TEST(Snapshot, DifferentFaultSeedRestoresWithFreshStreams)
{
    // Migration semantics: a rebuilt chip draws a different fault
    // seed, and restore() must accept it (same environment) while
    // keeping the fresh RNG streams — but still resume the scheduled
    // event cursor. All strikes here are correctable, so the data
    // path must be byte-identical to the same-seed continuation even
    // though the random upset history differs.
    const AsmProgram prog = program();
    Chip src(faultConfigFor(false));
    seedInputs(src);
    src.loadProgram(prog);
    EXPECT_FALSE(src.runBounded(500));
    ChipSnapshot snap;
    ASSERT_TRUE(src.snapshot(snap));

    Chip same(faultConfigFor(false));
    same.loadProgram(prog);
    ChipConfig other_cfg = faultConfigFor(false);
    other_cfg.fault.seed = 0x1234ull;
    Chip other(other_cfg);
    other.loadProgram(prog);

    std::string err;
    ASSERT_TRUE(same.restore(snap, &err)) << err;
    ASSERT_TRUE(other.restore(snap, &err)) << err;
    same.run();
    other.run();

    EXPECT_EQ(same.now(), other.now());
    EXPECT_FALSE(other.machineCheck());
    // The scheduled flip landed before the cut; both continuations
    // correct it on the read.
    EXPECT_GE(other.stats().get("ecc_corrected"), 1u);
    const Vec320 a = same.mem(Hemisphere::West, 2).backdoorRead(0x7);
    const Vec320 b = other.mem(Hemisphere::West, 2).backdoorRead(0x7);
    EXPECT_EQ(a.bytes, b.bytes);
}

TEST(Snapshot, RefusesWhileTraceRecorderArmed)
{
    Chip chip(configFor(false));
    seedInputs(chip);
    chip.loadProgram(program());
    TraceRecording rec({&chip});
    ChipSnapshot snap;
    std::string err;
    EXPECT_FALSE(chip.snapshot(snap, &err));
    EXPECT_NE(err.find("recorder"), std::string::npos);
}

TEST(PodSnapshot, RestoreWithInFlightC2cTraffic)
{
    // Snapshot a pod mid-collective, at a cut where at least one
    // ring link has vectors in flight, restore onto a fresh pod and
    // require the finished all-reduce to match the uninterrupted
    // pod byte-for-byte.
    constexpr int kChips = 3;
    constexpr Cycle kWire = 17;
    Pod ref(kChips, kWire);
    Pod pod2(kChips, kWire);

    Rng rng(99);
    for (int c = 0; c < kChips; ++c) {
        Vec320 v;
        for (int l = 0; l < kLanes; ++l)
            v.bytes[static_cast<std::size_t>(l)] =
                static_cast<std::uint8_t>(rng.intIn(-90, 90));
        ref.chip(c)
            .mem(Hemisphere::East, AllReducePlan::kSlice)
            .backdoorWrite(AllReducePlan::kLocalAddr, v);
    }

    std::vector<ScheduledProgram> sched;
    buildRingAllReduce(ref, sched);
    std::vector<AsmProgram> progs;
    for (auto &p : sched)
        progs.push_back(p.toAsm());
    for (int c = 0; c < kChips; ++c) {
        ref.chip(c).loadProgram(progs[static_cast<std::size_t>(c)]);
        pod2.chip(c).loadProgram(progs[static_cast<std::size_t>(c)]);
    }

    // Step until some link has undelivered flight.
    bool in_flight = false;
    for (Cycle t = 0; t < 100'000 && !in_flight; ++t) {
        ref.stepAll();
        for (int c = 0; c < kChips && !in_flight; ++c)
            for (int l = 0; l < 2; ++l)
                in_flight |= ref.chip(c).c2c().pendingRx(l) > 0;
    }
    ASSERT_TRUE(in_flight);
    ASSERT_FALSE(ref.allDone());

    PodSnapshot snap;
    std::string err;
    ASSERT_TRUE(ref.snapshot(snap, &err)) << err;
    ASSERT_TRUE(pod2.restore(snap, &err)) << err;

    ref.runAll();
    pod2.runAll();

    for (int c = 0; c < kChips; ++c) {
        const Chip &a = ref.chip(c);
        const Chip &b = pod2.chip(c);
        EXPECT_EQ(a.now(), b.now()) << "chip " << c;
        EXPECT_EQ(a.stats().all(), b.stats().all()) << "chip " << c;
        const Vec320 ra =
            a.mem(Hemisphere::East, AllReducePlan::kSlice)
                .backdoorRead(AllReducePlan::kResultAddr);
        const Vec320 rb =
            b.mem(Hemisphere::East, AllReducePlan::kSlice)
                .backdoorRead(AllReducePlan::kResultAddr);
        EXPECT_EQ(ra.bytes, rb.bytes) << "chip " << c;
        ChipSnapshot sa, sb;
        ASSERT_TRUE(a.snapshot(sa, &err)) << err;
        ASSERT_TRUE(b.snapshot(sb, &err)) << err;
        EXPECT_EQ(sa.payload, sb.payload) << "chip " << c;
    }

    // Size mismatch refuses.
    Pod small(2, kWire);
    EXPECT_FALSE(small.restore(snap, &err));
}

/** Compiled tiny network for the session-level tests. */
struct Compiled
{
    Graph g;
    Lowering lw{true};
    std::map<int, LoweredTensor> tensors;

    Compiled() : g(model::buildTinyNet(3, 8, 8, 4))
    {
        tensors = g.lower(lw, input());
    }

    static std::vector<std::int8_t>
    input()
    {
        Rng rng(7);
        std::vector<std::int8_t> data(8 * 8 * 4);
        for (auto &v : data)
            v = static_cast<std::int8_t>(rng.intIn(-100, 100));
        return data;
    }

    const LoweredTensor &in() const { return tensors.at(0); }
    const LoweredTensor &
    out() const
    {
        return tensors.at(g.outputNode());
    }
};

TEST(SessionSnapshot, PeriodicSnapshotsAreInvisible)
{
    // Chunking a bounded run into snapshot intervals must not perturb
    // the simulation in any observable way.
    Compiled m;
    ChipConfig cfg;
    InferenceSession plain(m.lw, cfg);
    InferenceSession snapped(m.lw, cfg);
    snapped.enableSnapshots(911); // Deliberately unaligned cadence.

    const RunResult a = plain.runBounded();
    const RunResult b = snapped.runBounded();
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_GT(snapped.snapshotCount(), 0u);
    ASSERT_NE(snapped.lastSnapshot(), nullptr);
    EXPECT_EQ(plain.chip().stats().all(),
              snapped.chip().stats().all());
    EXPECT_EQ(plain.readTensor(m.out()).data,
              snapped.readTensor(m.out()).data);

    // reset() drops the stale snapshot: it must never leak into the
    // next batch's migration decisions.
    snapped.reset();
    EXPECT_EQ(snapped.lastSnapshot(), nullptr);
}

TEST(SessionSnapshot, MigrateAndResumeRecoversMachineCheck)
{
    // Golden output from a fault-free run.
    Compiled m;
    InferenceSession golden(m.lw, ChipConfig{});
    ASSERT_TRUE(golden.runBounded().completed);
    const ref::QTensor want = golden.readTensor(m.out());

    // Random uncorrectable strikes, seed chosen so the first run is
    // condemned; migration restores the last pre-fault snapshot onto
    // a rebuilt chip (fresh seed) and resumes.
    ChipConfig cfg;
    cfg.fault.seed = 0x5151ull;
    cfg.fault.streamRate = 5e-4;
    cfg.fault.doubleBitFraction = 1.0;
    InferenceSession sess(m.lw, cfg);
    sess.enableSnapshots(250);

    RunResult r = sess.runBounded();
    ASSERT_EQ(r.status, RunStatus::MachineCheck)
        << "seed expected to condemn the first run";
    ASSERT_NE(sess.lastSnapshot(), nullptr)
        << "a snapshot must precede the first uncorrectable error";

    int hops = 0;
    while (r.status == RunStatus::MachineCheck &&
           sess.lastSnapshot() != nullptr && hops < 16) {
        r = sess.migrateAndResume();
        ++hops;
    }
    ASSERT_TRUE(r.completed);
    EXPECT_GE(sess.migrations(), 1);
    EXPECT_EQ(sess.rebuilds(), sess.migrations());
    // The resumed computation must finish with the correct bytes.
    EXPECT_EQ(sess.readTensor(m.out()).data, want.data);
}

} // namespace
} // namespace tsp
