/**
 * @file
 * Differential tests for the trace record/replay execution tier:
 * every program runs per-cycle (the reference), once while recording,
 * and once replayed from the recording — and the three executions
 * must be indistinguishable. Identical cycle counts, identical
 * stats() counters (idle, power-activity, fabric and ECC counters
 * included), energy equal to floating-point association, and
 * bit-identical memory results. Also covers the eligibility gates
 * (fault injection bypasses replay, bind() invalidates the trace,
 * failed runs record nothing, out-of-band fabric writes poison the
 * recording), fresh inputs flowing through a replayed run, pod-scale
 * replay, and TraceCache LRU accounting.
 */

#include <gtest/gtest.h>

#include "c2c/collective.hh"
#include "common/fp16.hh"
#include "common/rng.hh"
#include "compiler/builder.hh"
#include "compiler/host_image.hh"
#include "compiler/schedule.hh"
#include "graph/graph.hh"
#include "isa/assembler.hh"
#include "mem/ecc.hh"
#include "model/resnet.hh"
#include "runtime/pod_session.hh"
#include "runtime/session.hh"
#include "sim/chip.hh"
#include "sim/exec_trace.hh"

namespace tsp {
namespace {

Vec320
fill(std::uint8_t v)
{
    Vec320 x;
    x.bytes.fill(v);
    return x;
}

ChipConfig
configFor(bool fast_forward)
{
    ChipConfig cfg;
    cfg.fastForwardEnabled = fast_forward;
    return cfg;
}

/** One memory word to seed before the run. */
struct Seed
{
    Hemisphere hem;
    int slice;
    MemAddr addr;
    Vec320 vec;
};

/** One memory word to read back and compare after the run. */
struct Probe
{
    Hemisphere hem;
    int slice;
    MemAddr addr;
};

void
expectChipsIdentical(const Chip &ref, const Chip &other,
                     const std::vector<Probe> &probes,
                     const char *label)
{
    EXPECT_EQ(ref.now(), other.now()) << label;
    EXPECT_EQ(ref.stats().all(), other.stats().all()) << label;
    EXPECT_EQ(ref.power().cycles(), other.power().cycles()) << label;
    EXPECT_NEAR(ref.power().totalEnergyJ(),
                other.power().totalEnergyJ(),
                1e-9 * ref.power().totalEnergyJ())
        << label;
    for (const auto &p : probes) {
        const Vec320 a = ref.mem(p.hem, p.slice).backdoorRead(p.addr);
        const Vec320 b =
            other.mem(p.hem, p.slice).backdoorRead(p.addr);
        EXPECT_EQ(a.bytes, b.bytes)
            << label << ": probe slice " << p.slice << " addr "
            << p.addr;
    }
}

/**
 * Runs @p prog per-cycle (reference), recorded, and replayed, and
 * asserts the three executions are indistinguishable.
 */
void
expectIdenticalReplay(const AsmProgram &prog,
                      const std::vector<Seed> &seeds,
                      const std::vector<Probe> &probes)
{
    Chip legacy(configFor(false));
    Chip recorded(configFor(true));
    Chip replayed(configFor(true));
    for (Chip *chip : {&legacy, &recorded, &replayed}) {
        for (const auto &s : seeds)
            chip->mem(s.hem, s.slice).backdoorWrite(s.addr, s.vec);
        chip->loadProgram(prog);
    }

    const Cycle legacy_cycles = legacy.run();

    std::shared_ptr<const ExecutionTrace> trace;
    {
        TraceRecording rec({&recorded});
        const Cycle recorded_cycles = recorded.run();
        EXPECT_EQ(recorded_cycles, legacy_cycles);
        trace = rec.finish(/*completed=*/true);
    }
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(trace->span, legacy_cycles);
    expectChipsIdentical(legacy, recorded, probes, "recorded");

    replayTrace(*trace, {&replayed});
    EXPECT_TRUE(replayed.done());
    expectChipsIdentical(legacy, replayed, probes, "replayed");
}

TEST(Replay, StreamAddWithLongIdleSpans)
{
    // The Table I read->add->write program, NOP-padded: dispatches,
    // a VXM op and long skipped spans all inside one recording.
    const std::string text = "@MEM_W0:\n"
                             "    nop 510\n"
                             "    read 0x5, s16.e\n"
                             "@MEM_W1:\n"
                             "    nop 509\n"
                             "    read 0x6, s17.e\n"
                             "@MEM_W2:\n"
                             "    nop 517\n"
                             "    write 0x7, s29.w\n"
                             "@VXM0:\n"
                             "    nop 513\n"
                             "    add.sat s16.e, s17.e, s29.w\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    expectIdenticalReplay(r.program,
                          {{Hemisphere::West, 0, 0x5, fill(30)},
                           {Hemisphere::West, 1, 0x6, fill(40)}},
                          {{Hemisphere::West, 2, 0x7}});
}

TEST(Replay, RepeatWithWideGaps)
{
    // Repeat re-issues with a 7-cycle gap: the re-issues are resolved
    // dispatch events in the trace, not Repeat bookkeeping.
    const std::string text = "@MEM_E3:\n"
                             "    nop 40\n"
                             "    read 0x9, s2.w\n"
                             "    repeat 12, 7\n"
                             "@MEM_E2:\n"
                             "    nop 121\n"
                             "    write 0x30, s2.w\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    expectIdenticalReplay(r.program,
                          {{Hemisphere::East, 3, 0x9, fill(5)}},
                          {{Hemisphere::East, 2, 0x30}});
}

TEST(Replay, SyncNotifyBarrier)
{
    // Sync parking never re-executes at replay (only the Notify
    // dispatch does), so parked-cycle crediting must carry it all.
    const std::string text = "@MEM_W1:\n"
                             "    sync\n"
                             "    read 0x5, s16.e\n"
                             "@MEM_W0:\n"
                             "    sync\n"
                             "    nop 3\n"
                             "    write 0x6, s16.e\n"
                             "@VXM0:\n"
                             "    nop 300\n"
                             "    notify\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    expectIdenticalReplay(r.program,
                          {{Hemisphere::West, 1, 0x5, fill(21)}},
                          {{Hemisphere::West, 0, 0x6}});
}

TEST(Replay, BarrierPreambleProgram)
{
    // The compulsory all-queue barrier preamble: 144 parked queues
    // plus one Notify.
    ScheduledProgram empty;
    expectIdenticalReplay(empty.toAsm(/*with_preamble=*/true), {},
                          {});
}

TEST(Replay, GatherScatterIndirection)
{
    // Address-indirect MEM paths: the replayed gather/scatter read
    // live SRAM through the re-executed map consumes.
    Vec320 map;
    for (int sl = 0; sl < kSuperlanes; ++sl)
        map.bytes[static_cast<std::size_t>(sl * kWordBytes)] = 0x20;
    const std::string text = "@MEM_W5:\n"
                             "    nop 60\n"
                             "    read 0x1, s0.e\n"
                             "    nop 1\n"
                             "    repeat 1, 2\n"
                             "@MEM_W4:\n"
                             "    nop 63\n"
                             "    gather s1.e, s0.e\n"
                             "@MEM_W3:\n"
                             "    nop 66\n"
                             "    scatter s1.e, s0.e\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    expectIdenticalReplay(r.program,
                          {{Hemisphere::West, 5, 0x1, map},
                           {Hemisphere::West, 4, 0x20, fill(77)}},
                          {{Hemisphere::West, 3, 0x20}});
}

TEST(Replay, CompiledNetworkSessionReplayWithFreshInputs)
{
    // End-to-end: a replay-enabled session serves three inferences of
    // a compiled network with a *different* input each time. Run 1
    // records; runs 2 and 3 replay — and every one must be
    // indistinguishable from a session running the normal tiers on
    // the same inputs, because the replayed numerics re-read live
    // SRAM where the fresh input was staged.
    const int h = 12, w = 12, c = 8;
    Graph g = model::buildTinyNet(/*seed=*/42, h, w, c);
    Rng rng(7);
    std::vector<std::vector<std::int8_t>> inputs;
    for (int i = 0; i < 3; ++i) {
        std::vector<std::int8_t> in(static_cast<std::size_t>(h) * w *
                                    c);
        for (auto &v : in)
            v = static_cast<std::int8_t>(rng.intIn(-100, 100));
        inputs.push_back(std::move(in));
    }

    Lowering lw_ref(true);
    const auto lowered_ref = g.lower(lw_ref, inputs[0]);
    Lowering lw_rep(true);
    const auto lowered_rep = g.lower(lw_rep, inputs[0]);

    InferenceSession ref(lw_ref);
    InferenceSession rep(lw_rep);
    rep.enableReplay();

    std::vector<std::vector<std::int8_t>> outputs;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (i > 0) {
            for (InferenceSession *s : {&ref, &rep})
                s->reset();
            ref.writeTensor(lowered_ref.at(0), inputs[i]);
            rep.writeTensor(lowered_rep.at(0), inputs[i]);
        }
        ASSERT_TRUE(ref.runBounded().completed);
        ASSERT_TRUE(rep.runBounded().completed);
        EXPECT_EQ(ref.cycles(), rep.cycles()) << "run " << i;
        EXPECT_EQ(ref.chip().stats().all(), rep.chip().stats().all())
            << "run " << i;
        EXPECT_NEAR(ref.chip().power().totalEnergyJ(),
                    rep.chip().power().totalEnergyJ(),
                    1e-9 * ref.chip().power().totalEnergyJ())
            << "run " << i;
        for (const auto &[id, lt] : lowered_ref) {
            EXPECT_EQ(ref.readTensor(lt).data,
                      rep.readTensor(lowered_rep.at(id)).data)
                << "run " << i << " node " << id;
        }
        outputs.push_back(
            ref.readTensor(lowered_ref.at(g.outputNode())).data);
    }
    EXPECT_EQ(rep.recordCount(), 1u);
    EXPECT_EQ(rep.replayCount(), 2u);
    // Guard against a vacuous pass: distinct inputs must actually
    // produce distinct outputs for the fresh-input property to mean
    // anything.
    EXPECT_NE(outputs[0], outputs[1]);
}

TEST(Replay, FaultInjectionBypassesReplay)
{
    // An armed fault injector disqualifies record and replay: both
    // runs take the normal tiers and stay bit-identical to a session
    // that never heard of replay.
    ChipConfig cfg;
    cfg.fault.seed = 0xfaceull;
    cfg.fault.memReadRate = 0.001;
    cfg.fault.doubleBitFraction = 0.0;

    const int h = 8, w = 8, c = 8;
    Graph g = model::buildTinyNet(/*seed=*/3, h, w, c);
    Rng rng(11);
    std::vector<std::int8_t> input(static_cast<std::size_t>(h) * w *
                                   c);
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));

    Lowering lw_ref(true);
    g.lower(lw_ref, input);
    Lowering lw_rep(true);
    const auto lowered_rep = g.lower(lw_rep, input);

    InferenceSession ref(lw_ref, cfg);
    InferenceSession rep(lw_rep, cfg);
    rep.enableReplay();

    for (int run = 0; run < 2; ++run) {
        if (run > 0) {
            ref.reset();
            rep.reset();
        }
        const RunResult a = ref.runBounded();
        const RunResult b = rep.runBounded();
        EXPECT_EQ(a.completed, b.completed);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(ref.chip().stats().all(), rep.chip().stats().all());
    }
    EXPECT_EQ(rep.recordCount(), 0u);
    EXPECT_EQ(rep.replayCount(), 0u);
    EXPECT_EQ(rep.trace(), nullptr);
}

TEST(Replay, BindInvalidatesTrace)
{
    // Rebinding (a different program, or a weight reinstall) drops
    // the recorded trace; the next fresh run re-records.
    const int h = 8, w = 8, c = 8;
    Graph g = model::buildTinyNet(/*seed=*/5, h, w, c);
    Rng rng(13);
    std::vector<std::int8_t> input(static_cast<std::size_t>(h) * w *
                                   c);
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));

    Lowering lw(true);
    g.lower(lw, input);
    InferenceSession sess(lw);
    sess.enableReplay();
    ASSERT_TRUE(sess.runBounded().completed);
    ASSERT_NE(sess.trace(), nullptr);
    EXPECT_EQ(sess.recordCount(), 1u);

    // Rebind to a fresh compile of the same model: the old trace is
    // for the old program object and must not survive.
    Lowering lw2(true);
    g.lower(lw2, input);
    auto prog2 = std::make_shared<const AsmProgram>(
        lw2.program().toAsm(/*with_preamble=*/true));
    sess.bind(lw2, prog2);
    EXPECT_EQ(sess.trace(), nullptr);
    EXPECT_EQ(sess.program(), prog2.get());

    // Before the reset that loads the new program the session is not
    // fresh: nothing records.
    sess.reset();
    ASSERT_TRUE(sess.runBounded().completed);
    EXPECT_EQ(sess.recordCount(), 2u);
    sess.reset();
    ASSERT_TRUE(sess.runBounded().completed);
    EXPECT_EQ(sess.replayCount(), 1u);
}

TEST(Replay, TimedOutRunRecordsNothing)
{
    // A run that hits its cycle budget is mid-program: finish(false)
    // must seal no trace, and the session recovers via reset().
    const int h = 8, w = 8, c = 8;
    Graph g = model::buildTinyNet(/*seed=*/9, h, w, c);
    Rng rng(17);
    std::vector<std::int8_t> input(static_cast<std::size_t>(h) * w *
                                   c);
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.intIn(-100, 100));
    Lowering lw(true);
    g.lower(lw, input);

    InferenceSession sess(lw);
    sess.enableReplay();
    const RunResult r = sess.runBounded(/*max_cycles=*/10);
    ASSERT_FALSE(r.completed);
    EXPECT_EQ(sess.trace(), nullptr);
    EXPECT_EQ(sess.recordCount(), 0u);

    sess.reset();
    ASSERT_TRUE(sess.runBounded().completed);
    EXPECT_EQ(sess.recordCount(), 1u);
}

TEST(Replay, OutOfBandFabricWritePoisonsRecording)
{
    // A value consumed from the fabric that no StreamIo produced
    // (here: a test writing the register file directly) cannot be
    // reproduced by the tape — the recording must refuse to seal.
    const std::string text = "@MEM_W0:\n"
                             "    write 0x7, s16.e\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;

    Chip chip(configFor(true));
    chip.loadProgram(r.program);
    Vec320 v = fill(99);
    eccComputeVec(v); // Valid codeword: only provenance is missing.
    chip.fabric().write(StreamRef{16, Direction::East},
                        IcuId::mem(Hemisphere::West, 0).pos(), v);
    TraceRecording rec({&chip});
    chip.run();
    EXPECT_TRUE(rec.poisoned());
    EXPECT_EQ(rec.finish(/*completed=*/true), nullptr);
    // The out-of-band value still flowed: the run itself is fine.
    EXPECT_EQ(chip.mem(Hemisphere::West, 0).backdoorRead(0x7).bytes,
              v.bytes);
}

TEST(Replay, PodAllReduceReplayIdentical)
{
    // Pod-scale: a 4-chip ring all-reduce recorded once and replayed
    // with fresh local vectors, against a reference pod running the
    // normal tiers on the same data.
    constexpr int kChips = 4;
    constexpr Cycle kWire = 12;

    PodSession ref(kChips, kWire);
    PodSession rep(kChips, kWire);
    rep.enableReplay();
    for (PodSession *ps : {&ref, &rep}) {
        std::vector<ScheduledProgram> programs;
        buildRingAllReduce(ps->pod(), programs);
        std::vector<AsmProgram> asm_programs;
        asm_programs.reserve(programs.size());
        for (auto &p : programs)
            asm_programs.push_back(p.toAsm());
        ps->loadPrograms(std::move(asm_programs));
    }

    for (int run = 0; run < 3; ++run) {
        if (run > 0) {
            ref.reset();
            rep.reset();
        }
        Rng rng(static_cast<std::uint64_t>(run) * 1009 + 5);
        for (int c = 0; c < kChips; ++c) {
            Vec320 v;
            for (int l = 0; l < kLanes; ++l) {
                v.bytes[static_cast<std::size_t>(l)] =
                    static_cast<std::uint8_t>(rng.intIn(-90, 90));
            }
            for (PodSession *ps : {&ref, &rep}) {
                ps->writeWord(c, Hemisphere::East,
                              AllReducePlan::kSlice,
                              AllReducePlan::kLocalAddr, v);
            }
        }
        ASSERT_TRUE(ref.runBounded().completed) << "run " << run;
        ASSERT_TRUE(rep.runBounded().completed) << "run " << run;
        EXPECT_EQ(ref.cycles(), rep.cycles()) << "run " << run;
        EXPECT_EQ(ref.stats().all(), rep.stats().all())
            << "run " << run;
        for (int c = 0; c < kChips; ++c) {
            EXPECT_EQ(ref.readWord(c, Hemisphere::East,
                                   AllReducePlan::kSlice,
                                   AllReducePlan::kResultAddr)
                          .bytes,
                      rep.readWord(c, Hemisphere::East,
                                   AllReducePlan::kSlice,
                                   AllReducePlan::kResultAddr)
                          .bytes)
                << "run " << run << " chip " << c;
            EXPECT_NEAR(
                ref.pod().chip(c).power().totalEnergyJ(),
                rep.pod().chip(c).power().totalEnergyJ(),
                1e-9 * ref.pod().chip(c).power().totalEnergyJ())
                << "run " << run << " chip " << c;
        }
    }
    EXPECT_EQ(rep.recordCount(), 1u);
    EXPECT_EQ(rep.replayCount(), 2u);
}

/**
 * Builds the fp16 matmul of test_fp16_matmul.cc — weights installed
 * as byte-plane pairs (LW bursts of 16 streams), @p n activation
 * vectors broadcast as stream pairs, fp32 results drained through ACC
 * and committed to MEM — from raw fp16 bit patterns, so adversarial
 * encodings (NaN payloads, infinities, denormals) flow through the
 * whole LW/IW/ABC/ACC surface. @return probes over the result words.
 */
std::vector<Probe>
buildF16Matmul(ScheduledProgram &prog, HostImage &image, int n,
               const std::vector<std::uint16_t> &wbits,
               const std::vector<std::uint16_t> &abits)
{
    MemAllocator alloc;
    KernelBuilder kb(prog);
    const Hemisphere hem = Hemisphere::East;
    const int plane = 2;
    const SlicePos mxm = Layout::mxmPos(hem);
    const IcuId wq = IcuId::mxm(plane, true);

    auto split = [](const std::uint16_t *bits,
                    std::array<std::uint8_t, kLanes> &lo,
                    std::array<std::uint8_t, kLanes> &hi) {
        for (int c = 0; c < kMxmDim; ++c) {
            lo[static_cast<std::size_t>(c)] =
                static_cast<std::uint8_t>(bits[c] & 0xff);
            hi[static_cast<std::size_t>(c)] =
                static_cast<std::uint8_t>(bits[c] >> 8);
        }
    };

    std::vector<GlobalAddr> lo_addr(kMxmDim), hi_addr(kMxmDim);
    for (int r = 0; r < kMxmDim; ++r) {
        const int s_lo = 28 + 2 * (r % 8);
        lo_addr[static_cast<std::size_t>(r)] =
            alloc.alloc(hem, s_lo, 1);
        hi_addr[static_cast<std::size_t>(r)] =
            alloc.alloc(hem, s_lo + 1, 1);
        std::array<std::uint8_t, kLanes> lo{}, hi{};
        split(&wbits[static_cast<std::size_t>(r) * kMxmDim], lo, hi);
        image.add(lo_addr[static_cast<std::size_t>(r)], lo);
        image.add(hi_addr[static_cast<std::size_t>(r)], hi);
    }

    const Cycle t0 = 80;
    for (int burst = 0; burst < kMxmDim / 8; ++burst) {
        const Cycle at = t0 + static_cast<Cycle>(burst);
        for (int i = 0; i < 8; ++i) {
            const int r = burst * 8 + i;
            kb.readArriving(lo_addr[static_cast<std::size_t>(r)],
                            {static_cast<StreamId>(2 * i),
                             Direction::East},
                            mxm, at);
            kb.readArriving(hi_addr[static_cast<std::size_t>(r)],
                            {static_cast<StreamId>(2 * i + 1),
                             Direction::East},
                            mxm, at);
        }
        Instruction lw;
        lw.op = Opcode::Lw;
        lw.srcA = {0, Direction::East};
        lw.groupSize = 16;
        lw.dtype = DType::Fp16;
        prog.emit(at, wq, lw);
    }
    Instruction iw;
    iw.op = Opcode::Iw;
    iw.imm0 = static_cast<std::uint32_t>(plane);
    const Cycle iw_at = t0 + kMxmDim / 8;
    prog.emit(iw_at, wq, iw);

    const Cycle abc_at = iw_at + 2;
    for (int i = 0; i < n; ++i) {
        const GlobalAddr alo = alloc.alloc(hem, 10, 1);
        const GlobalAddr ahi = alloc.alloc(hem, 11, 1);
        std::array<std::uint8_t, kLanes> lo{}, hi{};
        split(&abits[static_cast<std::size_t>(i) * kMxmDim], lo, hi);
        image.add(alo, lo);
        image.add(ahi, hi);
        kb.readArriving(alo, {16, Direction::East}, mxm,
                        abc_at + static_cast<Cycle>(i));
        kb.readArriving(ahi, {17, Direction::East}, mxm,
                        abc_at + static_cast<Cycle>(i));
    }
    kb.abc(plane, {16, Direction::East}, n, false, DType::Fp16,
           abc_at);

    kb.acc(plane, {20, Direction::West}, n, abc_at + 1);
    std::vector<Probe> probes;
    for (int i = 0; i < n; ++i) {
        const Cycle vis = abc_at + 1 + static_cast<Cycle>(i) +
                          opTiming(Opcode::Acc).dFunc;
        for (int k = 0; k < 4; ++k) {
            const GlobalAddr dst = alloc.alloc(hem, 20 + k, 1);
            Instruction wr;
            wr.op = Opcode::Write;
            wr.addr = dst.addr;
            wr.srcA = {static_cast<StreamId>(20 + k),
                       Direction::West};
            prog.emit(vis + Layout::transitDelay(mxm, dst.pos()),
                      dst.icu(), wr);
            probes.push_back({dst.hem, dst.slice, dst.addr});
        }
    }
    return probes;
}

/** Fp16 operand bits: mostly random finite, specials up front. */
void
fillF16Bits(std::vector<std::uint16_t> &bits, std::uint64_t seed)
{
    const std::uint16_t specials[] = {
        0x7e55, // qNaN with payload
        0xfe00, // -qNaN
        0x7c00, // +inf
        0xfc00, // -inf
        0x0001, // smallest denormal
        0x8000, // -0
        0x7bff, // largest finite
    };
    Rng rng(seed);
    for (auto &b : bits)
        b = Fp16(rng.uniform(-1.0f, 1.0f)).bits();
    for (std::size_t i = 0; i < std::size(specials); ++i)
        bits[i] = specials[i];
}

TEST(Replay, Fp16MatmulReplayIdentical)
{
    // The fp16 MXM surface under replay: byte-plane LW bursts
    // (batched tape consumes), fp16 ABC (SIMD kernels + pair
    // consumes), zero-copy ACC drains — bit-identical to the
    // per-cycle reference, NaN payloads and infinities included.
    constexpr int kN = 4;
    std::vector<std::uint16_t> wbits(
        static_cast<std::size_t>(kMxmDim) * kMxmDim);
    std::vector<std::uint16_t> abits(static_cast<std::size_t>(kN) *
                                     kMxmDim);
    fillF16Bits(wbits, 77);
    fillF16Bits(abits, 78);

    ScheduledProgram prog;
    HostImage image;
    const std::vector<Probe> probes =
        buildF16Matmul(prog, image, kN, wbits, abits);
    const AsmProgram asmProg = prog.toAsm();

    Chip legacy(configFor(false));
    Chip recorded(configFor(true));
    Chip replayed(configFor(true));
    for (Chip *chip : {&legacy, &recorded, &replayed}) {
        image.applyTo(*chip);
        chip->loadProgram(asmProg);
    }

    const Cycle legacy_cycles = legacy.run();

    std::shared_ptr<const ExecutionTrace> trace;
    {
        TraceRecording rec({&recorded});
        EXPECT_EQ(recorded.run(), legacy_cycles);
        trace = rec.finish(/*completed=*/true);
    }
    ASSERT_NE(trace, nullptr);
    expectChipsIdentical(legacy, recorded, probes, "recorded");

    replayTrace(*trace, {&replayed});
    EXPECT_TRUE(replayed.done());
    expectChipsIdentical(legacy, replayed, probes, "replayed");
}

TEST(Replay, Fp16FaultInjectionDeterministicAcrossLiveTiers)
{
    // Faults armed: replay is ineligible (the session gate is
    // covered by FaultInjectionBypassesReplay), but the *live*
    // consume paths the replay refactor rerouted — consumeRef, the
    // batched LW group reads — must keep injecting stream upsets at
    // exactly the recorded-by-seed points: same seed, same end
    // state, on both the per-cycle and fast-forward tiers.
    constexpr int kN = 4;
    std::vector<std::uint16_t> wbits(
        static_cast<std::size_t>(kMxmDim) * kMxmDim);
    std::vector<std::uint16_t> abits(static_cast<std::size_t>(kN) *
                                     kMxmDim);
    fillF16Bits(wbits, 81);
    fillF16Bits(abits, 82);

    ScheduledProgram prog;
    HostImage image;
    const std::vector<Probe> probes =
        buildF16Matmul(prog, image, kN, wbits, abits);
    const AsmProgram asmProg = prog.toAsm();

    ChipConfig cfg = configFor(false);
    cfg.fault.seed = 0xf16ull;
    cfg.fault.streamRate = 0.01;
    cfg.fault.doubleBitFraction = 0.0;
    ChipConfig cfg_ff = cfg;
    cfg_ff.fastForwardEnabled = true;

    Chip a(cfg), b(cfg), ff(cfg_ff);
    for (Chip *chip : {&a, &b, &ff}) {
        image.applyTo(*chip);
        chip->loadProgram(asmProg);
        chip->run();
    }
    expectChipsIdentical(a, b, probes, "same-seed repeat");
    expectChipsIdentical(a, ff, probes, "fast-forward");

    // Non-vacuous: upsets were actually injected on the fp16 consume
    // paths, and SECDED corrected every one of them.
    EXPECT_GT(a.stats().get("faults_injected_stream"), 0u);
    EXPECT_GT(a.stats().get("ecc_corrected_mxm"), 0u);
    EXPECT_EQ(a.stats().get("ecc_uncorrectable"), 0u);
}

TEST(Replay, TraceCacheLruEviction)
{
    auto make_trace = [](std::size_t events) {
        auto t = std::make_shared<ExecutionTrace>();
        t->events.resize(events);
        return std::shared_ptr<const ExecutionTrace>(std::move(t));
    };
    const std::size_t unit = make_trace(1000)->memoryBytes();

    int keys[4];
    TraceCache cache(2 * unit + unit / 2); // Fits two entries.
    cache.insert(&keys[0], make_trace(1000));
    cache.insert(&keys[1], make_trace(1000));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.memoryBytes(), 2 * unit);

    // Touch key 0 so key 1 is the LRU victim of the next insert.
    EXPECT_NE(cache.find(&keys[0]), nullptr);
    cache.insert(&keys[2], make_trace(1000));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.find(&keys[1]), nullptr);
    EXPECT_NE(cache.find(&keys[0]), nullptr);
    EXPECT_NE(cache.find(&keys[2]), nullptr);

    // An oversized trace still caches (never thrash to empty) but
    // evicts everything else.
    cache.insert(&keys[3], make_trace(5000));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_NE(cache.find(&keys[3]), nullptr);

    cache.invalidate(&keys[3]);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.memoryBytes(), 0u);
}

TEST(Replay, ArenaAccountingMatchesAllocation)
{
    // Record a real program and pin the trace's self-reported
    // footprint against the allocation formulas: arenaBytes() is
    // exactly the pinned replay log (slotCount Vec320 slots), and
    // memoryBytes() is the component sum including that arena.
    const std::string text = "@MEM_W0:\n"
                             "    nop 510\n"
                             "    read 0x5, s16.e\n"
                             "@MEM_W1:\n"
                             "    nop 509\n"
                             "    read 0x6, s17.e\n"
                             "@MEM_W2:\n"
                             "    nop 517\n"
                             "    write 0x7, s29.w\n"
                             "@VXM0:\n"
                             "    nop 513\n"
                             "    add.sat s16.e, s17.e, s29.w\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;

    Chip chip(configFor(true));
    chip.mem(Hemisphere::West, 0).backdoorWrite(0x5, fill(30));
    chip.mem(Hemisphere::West, 1).backdoorWrite(0x6, fill(40));
    chip.loadProgram(r.program);
    TraceRecording rec({&chip});
    chip.run();
    const auto trace = rec.finish(/*completed=*/true);
    ASSERT_NE(trace, nullptr);

    // Liveness compaction: one slot entry per produce, but the log
    // itself holds only the peak number of simultaneously-live
    // values — never one slot per produce.
    EXPECT_EQ(trace->produceSlot.size(), trace->produces);
    EXPECT_GE(trace->slotCount, 1u);
    EXPECT_LE(trace->slotCount, trace->produceSlot.size() + 1);

    EXPECT_EQ(trace->arenaBytes(),
              static_cast<std::size_t>(trace->slotCount) *
                  sizeof(Vec320));
    EXPECT_EQ(trace->memoryBytes(),
              sizeof(ExecutionTrace) +
                  trace->events.size() *
                      sizeof(ExecutionTrace::Event) +
                  trace->insts.size() * sizeof(Instruction) +
                  trace->consumeTape.size() * sizeof(std::uint32_t) +
                  trace->produceSlot.size() * sizeof(std::uint32_t) +
                  trace->chips.size() *
                      sizeof(ExecutionTrace::ChipDeltas) +
                  trace->arenaBytes());
}

TEST(Replay, TraceCacheBudgetsArenaStorage)
{
    // Two traces with identical heap contents but different replay
    // arenas: if the cache ignored arenaBytes(), both would fit the
    // budget below. The arena-heavy one must evict its peer.
    auto make_trace = [](std::uint32_t slots) {
        auto t = std::make_shared<ExecutionTrace>();
        t->events.resize(100);
        t->slotCount = slots;
        return std::shared_ptr<const ExecutionTrace>(std::move(t));
    };
    const std::size_t lean = make_trace(1)->memoryBytes();
    const std::size_t heavy = make_trace(4096)->memoryBytes();
    ASSERT_EQ(heavy, lean + 4095 * sizeof(Vec320));

    int keys[2];
    TraceCache cache(lean + heavy - 1); // Both only fit sans arena.
    cache.insert(&keys[0], make_trace(1));
    cache.insert(&keys[1], make_trace(4096));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.find(&keys[0]), nullptr);
    EXPECT_NE(cache.find(&keys[1]), nullptr);
    EXPECT_EQ(cache.memoryBytes(), heavy);
}

TEST(Replay, TraceCacheKeyFingerprintDefeatsPointerAba)
{
    // Regression: the cache used to key on the program's address
    // alone. A program freed and a *different* one allocated at the
    // same address (ABA) would silently replay the stale trace. The
    // key now pairs the pointer with a content fingerprint, so the
    // recycled address with a different fingerprint misses — and the
    // stale hit is impossible by construction.
    auto make_trace = [](std::size_t events) {
        auto t = std::make_shared<ExecutionTrace>();
        t->events.resize(events);
        return std::shared_ptr<const ExecutionTrace>(std::move(t));
    };
    int slot; // One address, two successive "programs".
    const TraceKey first{&slot, 0x1111111111111111ull};
    const TraceKey recycled{&slot, 0x2222222222222222ull};

    TraceCache cache(1 << 20);
    cache.insert(first, make_trace(100));
    EXPECT_NE(cache.find(first), nullptr);

    // Same pointer, different content: must MISS, not replay stale.
    EXPECT_EQ(cache.find(recycled), nullptr);

    // Both fingerprints may coexist at one address; each resolves to
    // its own trace and invalidation is per-key.
    cache.insert(recycled, make_trace(200));
    EXPECT_EQ(cache.size(), 2u);
    ASSERT_NE(cache.find(first), nullptr);
    ASSERT_NE(cache.find(recycled), nullptr);
    EXPECT_EQ(cache.find(first)->events.size(), 100u);
    EXPECT_EQ(cache.find(recycled)->events.size(), 200u);
    cache.invalidate(first);
    EXPECT_EQ(cache.find(first), nullptr);
    EXPECT_NE(cache.find(recycled), nullptr);
}

} // namespace
} // namespace tsp
