/**
 * @file
 * Differential tests for the event-driven fast-forward core: every
 * program runs once with per-cycle stepping (fastForwardEnabled =
 * false) and once with fast-forward, and the two executions must be
 * indistinguishable — identical cycle counts, identical stats()
 * counters (including the idle-cycle and power-activity counters),
 * and bit-identical output bytes. Covers ICU-heavy microprograms
 * (NOP spans, Repeat, Sync/Notify, co-issue, gather/scatter), a
 * compiled end-to-end network, and bounded-run timeout behaviour.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compiler/schedule.hh"
#include "graph/graph.hh"
#include "isa/assembler.hh"
#include "model/resnet.hh"
#include "runtime/session.hh"
#include "sim/chip.hh"

namespace tsp {
namespace {

Vec320
fill(std::uint8_t v)
{
    Vec320 x;
    x.bytes.fill(v);
    return x;
}

ChipConfig
configFor(bool fast_forward)
{
    ChipConfig cfg;
    cfg.fastForwardEnabled = fast_forward;
    return cfg;
}

/** One memory word to seed before the run. */
struct Seed
{
    Hemisphere hem;
    int slice;
    MemAddr addr;
    Vec320 vec;
};

/** One memory word to read back and compare after the run. */
struct Probe
{
    Hemisphere hem;
    int slice;
    MemAddr addr;
};

/**
 * Runs @p prog under both stepping modes and asserts the executions
 * are indistinguishable: same cycle count, same stats() counters,
 * same bytes at every probe address, same accumulated energy.
 */
void
expectIdenticalExecutions(const AsmProgram &prog,
                          const std::vector<Seed> &seeds,
                          const std::vector<Probe> &probes)
{
    Chip legacy(configFor(false));
    Chip fast(configFor(true));
    for (Chip *chip : {&legacy, &fast}) {
        for (const auto &s : seeds)
            chip->mem(s.hem, s.slice).backdoorWrite(s.addr, s.vec);
        chip->loadProgram(prog);
    }

    const Cycle legacy_cycles = legacy.run();
    const Cycle fast_cycles = fast.run();
    EXPECT_EQ(legacy_cycles, fast_cycles);

    EXPECT_EQ(legacy.stats().all(), fast.stats().all());
    EXPECT_EQ(legacy.power().cycles(), fast.power().cycles());
    // Energy integrates the same activity; only floating-point
    // association differs between one span sample and N per-cycle
    // samples.
    EXPECT_NEAR(legacy.power().totalEnergyJ(),
                fast.power().totalEnergyJ(),
                1e-9 * legacy.power().totalEnergyJ());

    for (const auto &p : probes) {
        const Vec320 a = legacy.mem(p.hem, p.slice).backdoorRead(p.addr);
        const Vec320 b = fast.mem(p.hem, p.slice).backdoorRead(p.addr);
        EXPECT_EQ(a.bytes, b.bytes)
            << "probe slice " << p.slice << " addr " << p.addr;
    }
}

TEST(FastForward, StreamAddWithLongIdleSpans)
{
    // The Table I read->add->write program, padded with long NOPs so
    // fast-forward has hundreds of provably idle cycles to jump.
    const std::string text = "@MEM_W0:\n"
                             "    nop 510\n"
                             "    read 0x5, s16.e\n"
                             "@MEM_W1:\n"
                             "    nop 509\n"
                             "    read 0x6, s17.e\n"
                             "@MEM_W2:\n"
                             "    nop 517\n"
                             "    write 0x7, s29.w\n"
                             "@VXM0:\n"
                             "    nop 513\n"
                             "    add.sat s16.e, s17.e, s29.w\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    expectIdenticalExecutions(
        r.program,
        {{Hemisphere::West, 0, 0x5, fill(30)},
         {Hemisphere::West, 1, 0x6, fill(40)}},
        {{Hemisphere::West, 2, 0x7}});
}

TEST(FastForward, RepeatWithWideGaps)
{
    // Repeat with a 7-cycle gap: the queue is idle between re-issues
    // but holds a pending event, so fast-forward must land exactly on
    // every re-issue cycle.
    // E3 (pos 51) reads westward at 40; Repeat re-issues at 41, 48,
    // ..., 118. The last vector is visible at 120 and reaches E2
    // (pos 50) at 121, where the write commits it.
    const std::string text = "@MEM_E3:\n"
                             "    nop 40\n"
                             "    read 0x9, s2.w\n"
                             "    repeat 12, 7\n"
                             "@MEM_E2:\n"
                             "    nop 121\n"
                             "    write 0x30, s2.w\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    expectIdenticalExecutions(
        r.program, {{Hemisphere::East, 3, 0x9, fill(5)}},
        {{Hemisphere::East, 2, 0x30}});
}

TEST(FastForward, SyncNotifyBarrier)
{
    // Two queues park on Sync; a third runs a long NOP and then
    // Notifies. The parked queues release exactly kBarrierLatency
    // cycles after the broadcast in both modes.
    // W1 (pos 45) and W0 (pos 46) park at cycle 0; the Notify at 300
    // releases both at 300 + kBarrierLatency = 335. W1's read is
    // visible at 337 and reaches pos 46 at 338, where W0's write
    // (released 335, NOP 3) commits it.
    const std::string text = "@MEM_W1:\n"
                             "    sync\n"
                             "    read 0x5, s16.e\n"
                             "@MEM_W0:\n"
                             "    sync\n"
                             "    nop 3\n"
                             "    write 0x6, s16.e\n"
                             "@VXM0:\n"
                             "    nop 300\n"
                             "    notify\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    expectIdenticalExecutions(
        r.program, {{Hemisphere::West, 1, 0x5, fill(21)}},
        {{Hemisphere::West, 0, 0x6}});
}

TEST(FastForward, BarrierPreambleProgram)
{
    // The compulsory all-queue barrier preamble: 144 parked queues
    // plus one Notify — the densest Sync/Notify pattern we generate.
    ScheduledProgram empty;
    expectIdenticalExecutions(empty.toAsm(/*with_preamble=*/true), {},
                              {});
}

TEST(FastForward, CoIssuedReadWritePair)
{
    // A MEM queue dual-issuing a read+write in one cycle via the
    // co-issue flag (the scheduler's MEM pairing), after a long idle
    // span.
    // Timing: W5 (pos 41) reads s8.e at 147, visible 149, reaching
    // W4 (pos 42) at 150 — the cycle W4 dual-issues its read (s3.e)
    // and the co-issued write that commits s8.e. W4's read is
    // visible at 152 and reaches W3 (pos 43) at 153.
    const std::string text = "@MEM_W4:\n"
                             "    nop 150\n"
                             "    read 0x10, s3.e\n"
                             "    write 0x1011, s8.e\n"
                             "@MEM_W5:\n"
                             "    nop 147\n"
                             "    read 0x12, s8.e\n"
                             "@MEM_W3:\n"
                             "    nop 153\n"
                             "    write 0x20, s3.e\n";
    AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    // Mark the write as co-issued with the preceding read.
    auto &w4 = r.program.queues.at(IcuId::mem(Hemisphere::West, 4).id);
    ASSERT_EQ(w4.back().op, Opcode::Write);
    w4.back().flags |= Instruction::kFlagCoIssue;
    expectIdenticalExecutions(
        r.program,
        {{Hemisphere::West, 4, 0x10, fill(9)},
         {Hemisphere::West, 5, 0x12, fill(33)}},
        {{Hemisphere::West, 4, 0x1011}, {Hemisphere::West, 3, 0x20}});
}

TEST(FastForward, GatherScatterIndirection)
{
    // Gather through a map vector, then scatter the gathered data to
    // map-selected addresses — both address-indirect MEM paths.
    Vec320 map;
    for (int sl = 0; sl < kSuperlanes; ++sl)
        map.bytes[static_cast<std::size_t>(sl * kWordBytes)] = 0x20;
    // Timing: map read at 60 is visible at W5 (pos 41) at 62, so it
    // reaches W4 (pos 42) at 63 for the gather. The NOP-spaced
    // Repeat re-reads the map at 62, placing a second copy at W3
    // (pos 43) at 66 —
    // the same cycle the gathered data (visible 65 at pos 42)
    // arrives there for the scatter.
    const std::string text = "@MEM_W5:\n"
                             "    nop 60\n"
                             "    read 0x1, s0.e\n"
                             "    nop 1\n"
                             "    repeat 1, 2\n"
                             "@MEM_W4:\n"
                             "    nop 63\n"
                             "    gather s1.e, s0.e\n"
                             "@MEM_W3:\n"
                             "    nop 66\n"
                             "    scatter s1.e, s0.e\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    expectIdenticalExecutions(
        r.program,
        {{Hemisphere::West, 5, 0x1, map},
         {Hemisphere::West, 4, 0x20, fill(77)}},
        {{Hemisphere::West, 3, 0x20}});
}

TEST(FastForward, CompiledNetworkMatchesLegacy)
{
    // End-to-end: a compiled network (conv/pool/residual/classifier
    // layers, real NOP-padded schedules) under both modes, for both
    // scheduling strategies. Cycle counts, stats and every output
    // byte must match.
    for (const bool pipelined : {false, true}) {
        const int h = 12, w = 12, c = 8;
        Graph g = model::buildTinyNet(/*seed=*/42, h, w, c);
        Rng rng(7);
        std::vector<std::int8_t> input(
            static_cast<std::size_t>(h) * w * c);
        for (auto &v : input)
            v = static_cast<std::int8_t>(rng.intIn(-100, 100));

        Lowering lw(pipelined);
        const auto lowered = g.lower(lw, input);

        InferenceSession legacy(lw, configFor(false));
        InferenceSession fast(lw, configFor(true));
        const Cycle legacy_cycles = legacy.run();
        const Cycle fast_cycles = fast.run();
        EXPECT_EQ(legacy_cycles, fast_cycles)
            << (pipelined ? "pipelined" : "sequential");
        EXPECT_EQ(legacy.chip().stats().all(),
                  fast.chip().stats().all());

        for (const auto &[id, lt] : lowered) {
            const ref::QTensor a = legacy.readTensor(lt);
            const ref::QTensor b = fast.readTensor(lt);
            ASSERT_EQ(a.data, b.data)
                << "node " << id << " differs under fast-forward";
        }
    }
}

TEST(FastForward, BoundedRunTimeoutIsIdentical)
{
    // A queue parked forever (Sync with no Notify): fast-forward
    // jumps straight to the cycle limit; the legacy core crawls to
    // it. Both must report exhaustion at exactly the same clock with
    // the same idle accounting.
    const std::string text = "@MEM_W0:\n"
                             "    nop 5\n"
                             "    sync\n"
                             "    read 0x5, s16.e\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;

    Chip legacy(configFor(false));
    Chip fast(configFor(true));
    for (Chip *chip : {&legacy, &fast})
        chip->loadProgram(r.program);

    const Cycle limit = 5000;
    EXPECT_FALSE(legacy.runBounded(limit));
    EXPECT_FALSE(fast.runBounded(limit));
    EXPECT_EQ(legacy.now(), limit);
    EXPECT_EQ(fast.now(), limit);
    EXPECT_EQ(legacy.stats().all(), fast.stats().all());
}

TEST(FastForward, PowerTraceForcesPerCycleSampling)
{
    // With the power trace on, runs fall back to per-cycle stepping
    // so the trace keeps exactly one entry per cycle.
    ChipConfig cfg;
    cfg.powerTraceEnabled = true;
    cfg.fastForwardEnabled = true;
    Chip chip(cfg);
    const std::string text = "@MEM_W0:\n"
                             "    nop 400\n"
                             "    read 0x1, s0.e\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    chip.loadProgram(r.program);
    const Cycle cycles = chip.run();
    EXPECT_EQ(chip.power().traceW().size(),
              static_cast<std::size_t>(cycles));
}

TEST(FastForward, NextEventCycleReportsQueueEvents)
{
    // White-box: after dispatching a NOP the chip's next event is the
    // NOP expiry, and a retired chip reports no event at all.
    const std::string text = "@MEM_W0:\n"
                             "    nop 100\n"
                             "    read 0x1, s0.e\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error;
    Chip chip(configFor(true));
    chip.loadProgram(r.program);
    EXPECT_EQ(chip.nextEventCycle(), chip.now());
    chip.step(); // Dispatches the NOP; queue idle until cycle 100.
    EXPECT_EQ(chip.nextEventCycle(), Cycle{100});
    chip.run();
    // The queue retired at 100 but its read scheduled a stream write
    // for cycle 102 (d_func = 2) — still a fabric event.
    EXPECT_EQ(chip.nextEventCycle(), Cycle{102});
    chip.step();
    EXPECT_EQ(chip.nextEventCycle(), kNoEventCycle);
}

} // namespace
} // namespace tsp
