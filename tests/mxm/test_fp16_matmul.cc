/**
 * @file
 * fp16 end-to-end through the chip: install fp16 weights (two byte
 * planes in tandem), stream fp16 activations as stream pairs, drain
 * fp32 results through ACC, and commit them to MEM — validated
 * against host math with the same accumulation order (paper III.D:
 * "supports numerics for both 8-bit integer and 16-bit floating
 * point", fp32 accumulation with a single rounding step).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/fp16.hh"
#include "common/rng.hh"
#include "compiler/builder.hh"
#include "compiler/host_image.hh"
#include "mem/ecc.hh"
#include "sim/chip.hh"

namespace tsp {
namespace {

TEST(MxmFp16, MatmulThroughTheChip)
{
    Rng rng(21);
    // Host-side fp16 weights [320][320] and activations [n][320].
    constexpr int kN = 6;
    std::vector<float> w(static_cast<std::size_t>(kMxmDim) *
                         kMxmDim);
    for (auto &v : w)
        v = Fp16(rng.uniform(-1.0f, 1.0f)).toFloat();
    std::vector<float> act(static_cast<std::size_t>(kN) * kMxmDim);
    for (auto &v : act)
        v = Fp16(rng.uniform(-1.0f, 1.0f)).toFloat();

    // --- Placement: weights striped over 16 east slices as fp16
    // pairs; each LW burst of 16 streams installs 8 rows.
    MemAllocator alloc;
    HostImage image;
    ScheduledProgram prog;
    KernelBuilder kb(prog);
    const Hemisphere hem = Hemisphere::East;
    const int plane = 2; // East plane.
    const SlicePos mxm = Layout::mxmPos(hem);
    const IcuId wq = IcuId::mxm(plane, true);

    // Weight words: row r split into low/high byte vectors.
    std::vector<GlobalAddr> lo_addr(kMxmDim), hi_addr(kMxmDim);
    for (int r = 0; r < kMxmDim; ++r) {
        // Row r rides stream pair (2*(r%8), 2*(r%8)+1) in burst r/8;
        // place the two vectors in distinct slices 28 + 2*(r%8) and
        // 29 + 2*(r%8).
        const int s_lo = 28 + 2 * (r % 8);
        const int s_hi = s_lo + 1;
        lo_addr[static_cast<std::size_t>(r)] =
            alloc.alloc(hem, s_lo, 1);
        hi_addr[static_cast<std::size_t>(r)] =
            alloc.alloc(hem, s_hi, 1);
        HostImage::Entry elo, ehi;
        std::array<std::uint8_t, kLanes> lo{}, hi{};
        for (int c = 0; c < kMxmDim; ++c) {
            const std::uint16_t bits =
                Fp16(w[static_cast<std::size_t>(r) * kMxmDim + c])
                    .bits();
            lo[static_cast<std::size_t>(c)] =
                static_cast<std::uint8_t>(bits & 0xff);
            hi[static_cast<std::size_t>(c)] =
                static_cast<std::uint8_t>(bits >> 8);
        }
        image.add(lo_addr[static_cast<std::size_t>(r)], lo);
        image.add(hi_addr[static_cast<std::size_t>(r)], hi);
    }

    // LW bursts: 40 bursts x 8 rows, streams 0..15 eastward.
    const Cycle t0 = 80;
    for (int burst = 0; burst < kMxmDim / 8; ++burst) {
        const Cycle at = t0 + static_cast<Cycle>(burst);
        for (int i = 0; i < 8; ++i) {
            const int r = burst * 8 + i;
            kb.readArriving(lo_addr[static_cast<std::size_t>(r)],
                            {static_cast<StreamId>(2 * i),
                             Direction::East},
                            mxm, at);
            kb.readArriving(hi_addr[static_cast<std::size_t>(r)],
                            {static_cast<StreamId>(2 * i + 1),
                             Direction::East},
                            mxm, at);
        }
        Instruction lw;
        lw.op = Opcode::Lw;
        lw.srcA = {0, Direction::East};
        lw.groupSize = 16;
        lw.dtype = DType::Fp16;
        prog.emit(at, wq, lw);
    }
    Instruction iw;
    iw.op = Opcode::Iw;
    iw.imm0 = static_cast<std::uint32_t>(plane);
    const Cycle iw_at = t0 + kMxmDim / 8;
    prog.emit(iw_at, wq, iw);

    // Activations: vectors in two slices (lo/hi), streamed as the
    // pair (16, 17) eastward, one per cycle.
    std::vector<GlobalAddr> alo(kN), ahi(kN);
    for (int i = 0; i < kN; ++i) {
        alo[static_cast<std::size_t>(i)] = alloc.alloc(hem, 10, 1);
        ahi[static_cast<std::size_t>(i)] = alloc.alloc(hem, 11, 1);
        std::array<std::uint8_t, kLanes> lo{}, hi{};
        for (int c = 0; c < kMxmDim; ++c) {
            const std::uint16_t bits =
                Fp16(act[static_cast<std::size_t>(i) * kMxmDim + c])
                    .bits();
            lo[static_cast<std::size_t>(c)] =
                static_cast<std::uint8_t>(bits & 0xff);
            hi[static_cast<std::size_t>(c)] =
                static_cast<std::uint8_t>(bits >> 8);
        }
        image.add(alo[static_cast<std::size_t>(i)], lo);
        image.add(ahi[static_cast<std::size_t>(i)], hi);
    }
    const Cycle abc_at = iw_at + 2;
    for (int i = 0; i < kN; ++i) {
        kb.readArriving(alo[static_cast<std::size_t>(i)],
                        {16, Direction::East}, mxm,
                        abc_at + static_cast<Cycle>(i));
        kb.readArriving(ahi[static_cast<std::size_t>(i)],
                        {17, Direction::East}, mxm,
                        abc_at + static_cast<Cycle>(i));
    }
    kb.abc(plane, {16, Direction::East}, kN, false, DType::Fp16,
           abc_at);

    // Drain fp32 results westward and commit them to 4 slices.
    kb.acc(plane, {20, Direction::West}, kN, abc_at + 1);
    std::vector<GlobalAddr> out(static_cast<std::size_t>(kN) * 4);
    for (int i = 0; i < kN; ++i) {
        const Cycle vis = abc_at + 1 + static_cast<Cycle>(i) +
                          opTiming(Opcode::Acc).dFunc;
        for (int k = 0; k < 4; ++k) {
            const GlobalAddr dst = alloc.alloc(hem, 20 + k, 1);
            out[static_cast<std::size_t>(i) * 4 +
                static_cast<std::size_t>(k)] = dst;
            Instruction wr;
            wr.op = Opcode::Write;
            wr.addr = dst.addr;
            wr.srcA = {static_cast<StreamId>(20 + k),
                       Direction::West};
            prog.emit(vis + Layout::transitDelay(mxm, dst.pos()),
                      dst.icu(), wr);
        }
    }

    Chip chip;
    image.applyTo(chip);
    chip.loadProgram(prog.toAsm());
    chip.run();

    // Host reference with the same accumulation order (c ascending,
    // fp32 accumulate of exact fp16 products).
    for (int i = 0; i < kN; ++i) {
        Vec320 res[4];
        for (int k = 0; k < 4; ++k) {
            const GlobalAddr &a =
                out[static_cast<std::size_t>(i) * 4 +
                    static_cast<std::size_t>(k)];
            res[k] = chip.mem(a.hem, a.slice).backdoorRead(a.addr);
        }
        for (int r = 0; r < kMxmDim; ++r) {
            float want = 0.0f;
            for (int c = 0; c < kMxmDim; ++c) {
                want += w[static_cast<std::size_t>(r) * kMxmDim + c] *
                        act[static_cast<std::size_t>(i) * kMxmDim +
                            c];
            }
            std::uint32_t u = 0;
            for (int k = 0; k < 4; ++k) {
                u |= static_cast<std::uint32_t>(
                         res[k].bytes[static_cast<std::size_t>(r)])
                     << (8 * k);
            }
            float got;
            std::memcpy(&got, &u, sizeof(got));
            ASSERT_FLOAT_EQ(got, want)
                << "vector " << i << " row " << r;
        }
    }
}

} // namespace
} // namespace tsp
