/**
 * @file
 * MXM plane: LW/IW weight staging, int8 matvec against a host
 * reference, multi-window accumulation, fp16 mode with fp32
 * accumulation, the drain-generation consistency check, and the
 * 40-cycle weight-install claim's arithmetic.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/fp16.hh"
#include "common/rng.hh"
#include "mem/ecc.hh"
#include "mxm/mxm_plane.hh"

namespace tsp {
namespace {

/** Drives LW bursts of 16 rows per cycle from prepared row data. */
class MxmHarness
{
  public:
    MxmHarness()
        : fabric_(), plane_(0, cfg_, fabric_)
    {
    }

    void
    putStream(StreamId id, Direction dir, const Vec320 &v)
    {
        Vec320 x = v;
        eccComputeVec(x);
        fabric_.write({id, dir}, plane_.pos(), x);
    }

    void
    loadWeights(const std::vector<std::int8_t> &w) // [320][320]
    {
        for (int burst = 0; burst < 20; ++burst) {
            for (int j = 0; j < 16; ++j) {
                Vec320 row;
                const int r = burst * 16 + j;
                for (int c = 0; c < kMxmDim; ++c) {
                    row.bytes[static_cast<std::size_t>(c)] =
                        static_cast<std::uint8_t>(
                            w[static_cast<std::size_t>(r) * kMxmDim +
                              c]);
                }
                putStream(static_cast<StreamId>(j), Direction::West,
                          row);
            }
            Instruction lw;
            lw.op = Opcode::Lw;
            lw.srcA = {0, Direction::West};
            lw.groupSize = 16;
            plane_.issue(lw, fabric_.now());
            step();
        }
        Instruction iw;
        iw.op = Opcode::Iw;
        plane_.issue(iw, fabric_.now());
        step();
    }

    void
    step()
    {
        plane_.tick(fabric_.now());
        fabric_.advance();
    }

    ChipConfig cfg_;
    StreamFabric fabric_;
    MxmPlane plane_;
};

TEST(Mxm, WeightInstallRoundTrip)
{
    Rng rng(1);
    std::vector<std::int8_t> w(
        static_cast<std::size_t>(kMxmDim) * kMxmDim);
    for (auto &v : w)
        v = static_cast<std::int8_t>(rng.intIn(-127, 127));

    MxmHarness h;
    h.loadWeights(w);
    for (int r = 0; r < kMxmDim; r += 37) {
        for (int c = 0; c < kMxmDim; c += 41) {
            EXPECT_EQ(h.plane_.installedWeight(r, c),
                      w[static_cast<std::size_t>(r) * kMxmDim + c]);
        }
    }
    EXPECT_EQ(h.plane_.weightBytesLoaded(),
              static_cast<std::uint64_t>(kMxmDim) * kMxmDim);
}

TEST(Mxm, MatvecMatchesHostReference)
{
    Rng rng(2);
    std::vector<std::int8_t> w(
        static_cast<std::size_t>(kMxmDim) * kMxmDim);
    for (auto &v : w)
        v = static_cast<std::int8_t>(rng.intIn(-50, 50));
    std::vector<std::int8_t> act(kMxmDim);
    for (auto &v : act)
        v = static_cast<std::int8_t>(rng.intIn(-50, 50));

    MxmHarness h;
    h.loadWeights(w);

    // One-activation window, then drain one vector.
    Vec320 a;
    for (int c = 0; c < kMxmDim; ++c) {
        a.bytes[static_cast<std::size_t>(c)] =
            static_cast<std::uint8_t>(act[static_cast<std::size_t>(c)]);
    }
    h.putStream(16, Direction::West, a);
    Instruction abc;
    abc.op = Opcode::Abc;
    abc.imm1 = 1;
    abc.srcA = {16, Direction::West};
    abc.dtype = DType::Int8;
    h.plane_.issue(abc, h.fabric_.now());
    h.step();

    Instruction acc;
    acc.op = Opcode::Acc;
    acc.imm1 = 1;
    acc.dst = {20, Direction::East};
    h.plane_.issue(acc, h.fabric_.now());
    const Cycle emit = h.fabric_.now();
    // Result visible at emit + dFunc(Acc).
    while (h.fabric_.now() <= emit + opTiming(Opcode::Acc).dFunc)
        h.step();

    Vec320 out[4];
    for (int k = 0; k < 4; ++k) {
        // The result flowed (dFunc - hops...) — peek at the MXM
        // position after rewinding: easier to recompute expected
        // location: visible at (pos, emit + 21), now it is at
        // pos + (now - (emit + 21)) eastward.
        const SlicePos p =
            h.plane_.pos() +
            static_cast<SlicePos>(h.fabric_.now() -
                                  (emit + opTiming(Opcode::Acc).dFunc));
        const Vec320 *v = h.fabric_.peek(
            {static_cast<StreamId>(20 + k), Direction::East}, p);
        ASSERT_NE(v, nullptr) << k;
        out[k] = *v;
    }
    for (int r = 0; r < kMxmDim; ++r) {
        std::int32_t want = 0;
        for (int c = 0; c < kMxmDim; ++c) {
            want += static_cast<std::int32_t>(
                        w[static_cast<std::size_t>(r) * kMxmDim + c]) *
                    act[static_cast<std::size_t>(c)];
        }
        std::uint32_t u = 0;
        for (int k = 0; k < 4; ++k) {
            u |= static_cast<std::uint32_t>(
                     out[k].bytes[static_cast<std::size_t>(r)])
                 << (8 * k);
        }
        ASSERT_EQ(static_cast<std::int32_t>(u), want) << "row " << r;
    }
    EXPECT_EQ(h.plane_.maccOps(),
              static_cast<std::uint64_t>(kMxmDim) * kMxmDim);
}

TEST(Mxm, AccumulateAcrossWindows)
{
    // Two accumulating windows double the dot product.
    std::vector<std::int8_t> w(
        static_cast<std::size_t>(kMxmDim) * kMxmDim, 0);
    for (int r = 0; r < kMxmDim; ++r)
        w[static_cast<std::size_t>(r) * kMxmDim + r] = 1; // Identity.

    MxmHarness h;
    h.loadWeights(w);

    Vec320 a;
    for (int c = 0; c < kMxmDim; ++c)
        a.bytes[static_cast<std::size_t>(c)] =
            static_cast<std::uint8_t>(c % 100);

    for (int win = 0; win < 2; ++win) {
        h.putStream(16, Direction::West, a);
        Instruction abc;
        abc.op = Opcode::Abc;
        abc.imm1 = 1;
        abc.srcA = {16, Direction::West};
        abc.dtype = DType::Int8;
        if (win > 0)
            abc.flags |= Instruction::kFlagAccumulate;
        h.plane_.issue(abc, h.fabric_.now());
        h.step();
    }

    Instruction acc;
    acc.op = Opcode::Acc;
    acc.imm1 = 1;
    acc.dst = {20, Direction::East};
    h.plane_.issue(acc, h.fabric_.now());
    const Cycle emit = h.fabric_.now();
    while (h.fabric_.now() <= emit + opTiming(Opcode::Acc).dFunc)
        h.step();
    const SlicePos p =
        h.plane_.pos() +
        static_cast<SlicePos>(h.fabric_.now() -
                              (emit + opTiming(Opcode::Acc).dFunc));
    const Vec320 *lo =
        h.fabric_.peek({20, Direction::East}, p);
    ASSERT_NE(lo, nullptr);
    EXPECT_EQ(lo->bytes[57], static_cast<std::uint8_t>(2 * 57));
}

TEST(Mxm, WeightInstallMeetsPaperBudget)
{
    // Paper V.b: all 409,600 weights install in < 40 cycles. Our
    // model: 20 LW bursts + IW per plane, all four planes in
    // parallel, plus worst-case transit from mid-hemisphere MEM.
    const int bursts = kMxmDim / 16;       // 20 streaming cycles.
    const Cycle iw = 1;                    // Commit.
    const Cycle read_dfunc = opTiming(Opcode::Read).dFunc;
    const Cycle transit = Layout::transitDelay(
        Layout::memPos(Hemisphere::West, 43), Layout::mxmWest);
    const Cycle total = bursts + iw + read_dfunc + transit;
    EXPECT_LT(total, 40u);
    // Total weights across four planes.
    EXPECT_EQ(4 * kMxmDim * kMxmDim, 409'600);
}

TEST(MxmDeath, OverlappingAbcPanics)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ChipConfig cfg;
        cfg.strictStreams = false;
        StreamFabric fabric;
        MxmPlane plane(0, cfg, fabric);
        Instruction abc;
        abc.op = Opcode::Abc;
        abc.imm1 = 8;
        abc.srcA = {16, Direction::West};
        plane.issue(abc, 0);
        plane.issue(abc, 1); // Window still active.
    };
    ASSERT_DEATH(body(), "window is active");
}

TEST(MxmDeath, StaleGenerationDrainPanics)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ChipConfig cfg;
        cfg.strictStreams = false;
        StreamFabric fabric;
        MxmPlane plane(0, cfg, fabric);

        auto window = [&](std::uint32_t n) {
            Instruction abc;
            abc.op = Opcode::Abc;
            abc.imm1 = n;
            abc.srcA = {16, Direction::West};
            plane.issue(abc, fabric.now());
            for (std::uint32_t i = 0; i < n; ++i) {
                plane.tick(fabric.now());
                fabric.advance();
            }
        };
        window(2); // Generation 1 fills indices 0 and 1.
        window(1); // Generation 2 overwrites index 0 only.
        // Draining two indices now mixes generations: index 1 is
        // stale.
        Instruction acc;
        acc.op = Opcode::Acc;
        acc.imm1 = 2;
        acc.dst = {20, Direction::East};
        plane.issue(acc, fabric.now());
        for (int i = 0; i < 3; ++i) {
            plane.tick(fabric.now());
            fabric.advance();
        }
    };
    ASSERT_DEATH(body(), "generation");
}

TEST(Mxm, Fp16ModeAccumulatesInFp32)
{
    ChipConfig cfg;
    StreamFabric fabric;
    MxmPlane plane(1, cfg, fabric);
    const SlicePos pos = plane.pos();

    auto put = [&](StreamId id, const Vec320 &v) {
        Vec320 x = v;
        eccComputeVec(x);
        fabric.write({id, Direction::West}, pos, x);
    };

    // Install fp16 weights: row r has weight 0.5 at column r.
    for (int burst = 0; burst < 20; ++burst) {
        for (int i = 0; i < 8; ++i) { // 8 rows per burst (2 streams).
            Vec320 lo, hi;
            const int r = burst * 8 + i;
            if (r < kMxmDim) {
                const std::uint16_t bits = Fp16(0.5f).bits();
                lo.bytes[static_cast<std::size_t>(r)] =
                    static_cast<std::uint8_t>(bits & 0xff);
                hi.bytes[static_cast<std::size_t>(r)] =
                    static_cast<std::uint8_t>(bits >> 8);
            }
            put(static_cast<StreamId>(2 * i), lo);
            put(static_cast<StreamId>(2 * i + 1), hi);
        }
        Instruction lw;
        lw.op = Opcode::Lw;
        lw.srcA = {0, Direction::West};
        lw.groupSize = 16;
        lw.dtype = DType::Fp16;
        plane.issue(lw, fabric.now());
        plane.tick(fabric.now());
        fabric.advance();
    }
    // Only 160 rows filled by this pattern — pad the rest.
    while (true) {
        Instruction lw;
        lw.op = Opcode::Lw;
        lw.srcA = {0, Direction::West};
        lw.groupSize = 16;
        lw.dtype = DType::Fp16;
        // Stop once full: 20 bursts x 8 rows = 160; need 320.
        Vec320 zero;
        for (int i = 0; i < 16; ++i)
            put(static_cast<StreamId>(i), zero);
        plane.issue(lw, fabric.now());
        plane.tick(fabric.now());
        fabric.advance();
        static int extra = 0;
        if (++extra >= 20)
            break;
    }
    Instruction iw;
    iw.op = Opcode::Iw;
    plane.issue(iw, fabric.now());
    plane.tick(fabric.now());
    fabric.advance();

    EXPECT_EQ(plane.installedWeightF16(7, 7), Fp16(0.5f).bits());

    // Stream one fp16 activation vector of 2.0s.
    Vec320 alo, ahi;
    const std::uint16_t abits = Fp16(2.0f).bits();
    for (int c = 0; c < kMxmDim; ++c) {
        alo.bytes[static_cast<std::size_t>(c)] =
            static_cast<std::uint8_t>(abits & 0xff);
        ahi.bytes[static_cast<std::size_t>(c)] =
            static_cast<std::uint8_t>(abits >> 8);
    }
    put(16, alo);
    put(17, ahi);
    Instruction abc;
    abc.op = Opcode::Abc;
    abc.imm1 = 1;
    abc.srcA = {16, Direction::West};
    abc.dtype = DType::Fp16;
    plane.issue(abc, fabric.now());
    plane.tick(fabric.now());
    fabric.advance();

    Instruction acc;
    acc.op = Opcode::Acc;
    acc.imm1 = 1;
    acc.dst = {20, Direction::East};
    plane.issue(acc, fabric.now());
    const Cycle emit = fabric.now();
    while (fabric.now() <= emit + opTiming(Opcode::Acc).dFunc) {
        plane.tick(fabric.now());
        fabric.advance();
    }
    const SlicePos p =
        pos + static_cast<SlicePos>(
                  fabric.now() - (emit + opTiming(Opcode::Acc).dFunc));
    Vec320 out[4];
    for (int k = 0; k < 4; ++k) {
        const Vec320 *v = fabric.peek(
            {static_cast<StreamId>(20 + k), Direction::East}, p);
        ASSERT_NE(v, nullptr);
        out[k] = *v;
    }
    // Row 7: 0.5 * 2.0 = 1.0 (fp32).
    std::uint32_t u = 0;
    for (int k = 0; k < 4; ++k) {
        u |= static_cast<std::uint32_t>(out[k].bytes[7]) << (8 * k);
    }
    float f;
    std::memcpy(&f, &u, sizeof(f));
    EXPECT_FLOAT_EQ(f, 1.0f);
}

} // namespace
} // namespace tsp
