/**
 * @file
 * SXM functional semantics (paper III.E, Fig. 8): lane shifts with
 * zero fill, the North/South select, 320-lane permutation, the
 * per-superlane distributor with zero-fill, n x n rotations, and the
 * 16x16 transposer.
 */

#include <gtest/gtest.h>

#include "arch/config.hh"
#include "mem/ecc.hh"
#include "sxm/sxm_complex.hh"

namespace tsp {
namespace {

class SxmTest : public ::testing::Test
{
  protected:
    SxmTest() : sxm_(Hemisphere::West, cfg_, fabric_) {}

    Vec320
    ramp() const
    {
        Vec320 v;
        for (int i = 0; i < kLanes; ++i) {
            v.bytes[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(i & 0xff);
        }
        return v;
    }

    void
    put(StreamId id, const Vec320 &v)
    {
        Vec320 x = v;
        eccComputeVec(x);
        fabric_.write({id, Direction::West}, sxm_.pos(), x);
    }

    /** Runs @p inst and returns the vector on @p out after dFunc. */
    Vec320
    runOne(const Instruction &inst, SxmUnit unit, StreamId out)
    {
        sxm_.execute(inst, unit, fabric_.now());
        const Cycle vis =
            fabric_.now() + opTiming(inst.op).dFunc;
        while (fabric_.now() < vis)
            fabric_.advance();
        const Vec320 *v =
            fabric_.peek({out, inst.dst.dir}, sxm_.pos());
        EXPECT_NE(v, nullptr);
        return v ? *v : Vec320{};
    }

    ChipConfig cfg_;
    StreamFabric fabric_;
    SxmComplex sxm_;
};

TEST_F(SxmTest, ShiftUpMovesNorthWithZeroFill)
{
    put(0, ramp());
    Instruction inst;
    inst.op = Opcode::ShiftUp;
    inst.srcA = {0, Direction::West};
    inst.dst = {1, Direction::West};
    inst.imm0 = 3;
    const Vec320 out = runOne(inst, SxmUnit::ShiftNorth, 1);
    EXPECT_EQ(out.bytes[0], 0);
    EXPECT_EQ(out.bytes[2], 0);
    EXPECT_EQ(out.bytes[3], 0); // Was lane 0's value (0).
    EXPECT_EQ(out.bytes[10], 7);
    EXPECT_EQ(out.bytes[319], static_cast<std::uint8_t>(316 & 0xff));
}

TEST_F(SxmTest, ShiftDownMovesSouthWithZeroFill)
{
    put(0, ramp());
    Instruction inst;
    inst.op = Opcode::ShiftDown;
    inst.srcA = {0, Direction::West};
    inst.dst = {1, Direction::West};
    inst.imm0 = 5;
    const Vec320 out = runOne(inst, SxmUnit::ShiftSouth, 1);
    EXPECT_EQ(out.bytes[0], 5);
    EXPECT_EQ(out.bytes[314], static_cast<std::uint8_t>(319 & 0xff));
    EXPECT_EQ(out.bytes[315], 0);
    EXPECT_EQ(out.bytes[319], 0);
}

TEST_F(SxmTest, SelectPerSuperlaneMask)
{
    Vec320 a, b;
    a.bytes.fill(1);
    b.bytes.fill(2);
    put(0, a);
    put(1, b);
    Instruction inst;
    inst.op = Opcode::SelectNS;
    inst.srcA = {0, Direction::West};
    inst.srcB = {1, Direction::West};
    inst.dst = {2, Direction::West};
    inst.imm0 = 0b101; // Superlanes 0 and 2 take b.
    const Vec320 out = runOne(inst, SxmUnit::Select, 2);
    EXPECT_EQ(out.bytes[0], 2);
    EXPECT_EQ(out.bytes[16], 1);
    EXPECT_EQ(out.bytes[32], 2);
    EXPECT_EQ(out.bytes[48], 1);
}

TEST_F(SxmTest, PermuteAppliesBijection)
{
    put(0, ramp());
    Instruction inst;
    inst.op = Opcode::Permute;
    inst.srcA = {0, Direction::West};
    inst.dst = {1, Direction::West};
    auto map = std::make_shared<std::vector<std::uint16_t>>();
    for (int i = 0; i < kLanes; ++i)
        map->push_back(static_cast<std::uint16_t>(kLanes - 1 - i));
    inst.map = map;
    const Vec320 out = runOne(inst, SxmUnit::Permute, 1);
    for (int i = 0; i < kLanes; ++i) {
        EXPECT_EQ(out.bytes[static_cast<std::size_t>(i)],
                  static_cast<std::uint8_t>((kLanes - 1 - i) & 0xff));
    }
}

TEST_F(SxmTest, DistributeRemapsWithinSuperlanes)
{
    put(0, ramp());
    Instruction inst;
    inst.op = Opcode::Distribute;
    inst.srcA = {0, Direction::West};
    inst.dst = {1, Direction::West};
    auto map = std::make_shared<std::vector<std::uint16_t>>();
    // Broadcast lane 3, except lane 15 which zero-fills.
    for (int j = 0; j < 15; ++j)
        map->push_back(3);
    map->push_back(0xffff);
    inst.map = map;
    const Vec320 out = runOne(inst, SxmUnit::Distribute, 1);
    for (int sl = 0; sl < kSuperlanes; ++sl) {
        EXPECT_EQ(out.bytes[static_cast<std::size_t>(sl * 16)],
                  static_cast<std::uint8_t>((sl * 16 + 3) & 0xff));
        EXPECT_EQ(out.bytes[static_cast<std::size_t>(sl * 16 + 15)],
                  0);
    }
}

TEST_F(SxmTest, RotateProducesAllRotations)
{
    put(0, ramp());
    Instruction inst;
    inst.op = Opcode::Rotate;
    inst.srcA = {0, Direction::West};
    inst.dst = {4, Direction::West};
    inst.imm0 = 3; // 3x3: 9 outputs, 9-lane blocks.
    inst.groupSize = 9;
    sxm_.execute(inst, SxmUnit::Rotate, fabric_.now());
    const Cycle vis = fabric_.now() + opTiming(Opcode::Rotate).dFunc;
    while (fabric_.now() < vis)
        fabric_.advance();
    for (int r = 0; r < 9; ++r) {
        const Vec320 *v = fabric_.peek(
            {static_cast<StreamId>(4 + r), Direction::West},
            sxm_.pos());
        ASSERT_NE(v, nullptr) << r;
        // Block 2 (lanes 18..26), element j holds lane
        // 18 + (j + r) % 9.
        for (int j = 0; j < 9; ++j) {
            EXPECT_EQ(v->bytes[static_cast<std::size_t>(18 + j)],
                      static_cast<std::uint8_t>(18 + (j + r) % 9))
                << r << "," << j;
        }
    }
}

TEST_F(SxmTest, TransposeSwapsStreamAndLane)
{
    // Stream j's superlane-s tile column j: in[j].lane(16s + k) ->
    // out[k].lane(16s + j).
    for (int j = 0; j < 16; ++j) {
        Vec320 v;
        for (int sl = 0; sl < kSuperlanes; ++sl) {
            for (int k = 0; k < 16; ++k) {
                v.bytes[static_cast<std::size_t>(sl * 16 + k)] =
                    static_cast<std::uint8_t>(16 * j + k);
            }
        }
        put(static_cast<StreamId>(j), v);
    }
    Instruction inst;
    inst.op = Opcode::Transpose;
    inst.srcA = {0, Direction::West};
    inst.dst = {16, Direction::West};
    inst.groupSize = 16;
    sxm_.execute(inst, SxmUnit::Transpose0, fabric_.now());
    const Cycle vis =
        fabric_.now() + opTiming(Opcode::Transpose).dFunc;
    while (fabric_.now() < vis)
        fabric_.advance();
    for (int k = 0; k < 16; ++k) {
        const Vec320 *v = fabric_.peek(
            {static_cast<StreamId>(16 + k), Direction::West},
            sxm_.pos());
        ASSERT_NE(v, nullptr);
        for (int j = 0; j < 16; ++j) {
            // out[k].lane(16*0 + j) == in[j].lane(16*0 + k).
            EXPECT_EQ(v->bytes[static_cast<std::size_t>(j)],
                      static_cast<std::uint8_t>(16 * j + k));
        }
    }
}

TEST_F(SxmTest, DoubleTransposeIsIdentity)
{
    Vec320 in[16];
    for (int j = 0; j < 16; ++j) {
        for (int i = 0; i < kLanes; ++i) {
            in[j].bytes[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>((j * 31 + i * 7) & 0xff);
        }
        put(static_cast<StreamId>(j), in[j]);
    }
    Instruction t1;
    t1.op = Opcode::Transpose;
    t1.srcA = {0, Direction::West};
    t1.dst = {16, Direction::West};
    t1.groupSize = 16;
    sxm_.execute(t1, SxmUnit::Transpose0, fabric_.now());
    const Cycle v1 = fabric_.now() + opTiming(Opcode::Transpose).dFunc;
    while (fabric_.now() < v1)
        fabric_.advance();
    Instruction t2 = t1;
    t2.srcA = {16, Direction::West};
    t2.dst = {0, Direction::West};
    sxm_.execute(t2, SxmUnit::Transpose1, fabric_.now());
    const Cycle v2 = fabric_.now() + opTiming(Opcode::Transpose).dFunc;
    while (fabric_.now() < v2)
        fabric_.advance();
    for (int j = 0; j < 16; ++j) {
        const Vec320 *v = fabric_.peek(
            {static_cast<StreamId>(j), Direction::West}, sxm_.pos());
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(v->bytes, in[j].bytes) << j;
    }
}

TEST_F(SxmTest, WrongUnitPanics)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ChipConfig cfg;
        StreamFabric fabric;
        SxmComplex sxm(Hemisphere::East, cfg, fabric);
        Instruction inst;
        inst.op = Opcode::Permute;
        sxm.execute(inst, SxmUnit::Rotate, 0);
    };
    ASSERT_DEATH(body(), "dispatched to unit");
}

} // namespace
} // namespace tsp
