/**
 * @file
 * Algebraic properties of the SXM units, swept over random seeds:
 * permutations compose and invert like the symmetric group, opposite
 * lane shifts cancel up to their zero-fill, and identity maps are
 * identities. These pin down the semantics the compiler's layout
 * passes rely on when they reshape tensors through the SXM.
 */

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "arch/config.hh"
#include "common/rng.hh"
#include "mem/ecc.hh"
#include "sxm/sxm_complex.hh"

namespace tsp {
namespace {

class SxmProperty : public ::testing::TestWithParam<int>
{
  protected:
    SxmProperty() : sxm_(Hemisphere::East, cfg_, fabric_) {}

    Vec320
    randomVec(Rng &rng) const
    {
        Vec320 v;
        for (auto &b : v.bytes)
            b = static_cast<std::uint8_t>(rng.intIn(0, 255));
        return v;
    }

    static std::shared_ptr<std::vector<std::uint16_t>>
    randomPermutation(Rng &rng, int n)
    {
        auto p = std::make_shared<std::vector<std::uint16_t>>(
            static_cast<std::size_t>(n));
        std::iota(p->begin(), p->end(), std::uint16_t{0});
        for (int i = n - 1; i > 0; --i) {
            std::swap((*p)[static_cast<std::size_t>(i)],
                      (*p)[static_cast<std::size_t>(
                          rng.intIn(0, i))]);
        }
        return p;
    }

    void
    put(StreamId id, const Vec320 &v)
    {
        Vec320 x = v;
        eccComputeVec(x);
        fabric_.write({id, Direction::East}, sxm_.pos(), x);
    }

    Vec320
    runOne(const Instruction &inst, SxmUnit unit)
    {
        sxm_.execute(inst, unit, fabric_.now());
        const Cycle vis = fabric_.now() + opTiming(inst.op).dFunc;
        while (fabric_.now() < vis)
            fabric_.advance();
        const Vec320 *v = fabric_.peek(inst.dst, sxm_.pos());
        EXPECT_NE(v, nullptr);
        return v ? *v : Vec320{};
    }

    Instruction
    permuteInst(StreamId src, StreamId dst,
                std::shared_ptr<std::vector<std::uint16_t>> map) const
    {
        Instruction inst;
        inst.op = Opcode::Permute;
        inst.srcA = {src, Direction::East};
        inst.dst = {dst, Direction::East};
        inst.map = std::move(map);
        return inst;
    }

    ChipConfig cfg_;
    StreamFabric fabric_;
    SxmComplex sxm_;
};

TEST_P(SxmProperty, PermuteThenInverseIsIdentity)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const Vec320 in = randomVec(rng);
    const auto sigma = randomPermutation(rng, kLanes);
    // out[i] = in[sigma[i]], so the inverse map satisfies
    // inv[sigma[i]] = i.
    auto inv = std::make_shared<std::vector<std::uint16_t>>(
        static_cast<std::size_t>(kLanes));
    for (int i = 0; i < kLanes; ++i) {
        (*inv)[(*sigma)[static_cast<std::size_t>(i)]] =
            static_cast<std::uint16_t>(i);
    }

    put(0, in);
    // The permuted vector is already flowing on stream 1 at the SXM
    // when runOne returns, so the second op chains directly off it.
    runOne(permuteInst(0, 1, sigma), SxmUnit::Permute);
    const Vec320 out = runOne(permuteInst(1, 2, inv),
                              SxmUnit::Permute);
    EXPECT_EQ(out.bytes, in.bytes);
}

TEST_P(SxmProperty, PermutationsComposeAsFunctions)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
    const Vec320 in = randomVec(rng);
    const auto sigma = randomPermutation(rng, kLanes);
    const auto tau = randomPermutation(rng, kLanes);
    // Applying sigma then tau reads lane tau[i] of the intermediate,
    // i.e. lane sigma[tau[i]] of the input.
    auto comp = std::make_shared<std::vector<std::uint16_t>>(
        static_cast<std::size_t>(kLanes));
    for (int i = 0; i < kLanes; ++i) {
        (*comp)[static_cast<std::size_t>(i)] =
            (*sigma)[(*tau)[static_cast<std::size_t>(i)]];
    }

    put(0, in);
    runOne(permuteInst(0, 1, sigma), SxmUnit::Permute);
    const Vec320 two_step = runOne(permuteInst(1, 2, tau),
                                   SxmUnit::Permute);
    put(3, in);
    const Vec320 one_step = runOne(permuteInst(3, 4, comp),
                                   SxmUnit::Permute);
    EXPECT_EQ(two_step.bytes, one_step.bytes);
}

TEST_P(SxmProperty, IdentityPermuteAndDistributeAreIdentities)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
    const Vec320 in = randomVec(rng);

    auto ident = std::make_shared<std::vector<std::uint16_t>>(
        static_cast<std::size_t>(kLanes));
    std::iota(ident->begin(), ident->end(), std::uint16_t{0});
    put(0, in);
    EXPECT_EQ(runOne(permuteInst(0, 1, ident), SxmUnit::Permute).bytes,
              in.bytes);

    Instruction dist;
    dist.op = Opcode::Distribute;
    dist.srcA = {0, Direction::East};
    dist.dst = {2, Direction::East};
    auto within = std::make_shared<std::vector<std::uint16_t>>(
        static_cast<std::size_t>(kLanesPerSuperlane));
    std::iota(within->begin(), within->end(), std::uint16_t{0});
    dist.map = within;
    put(0, in);
    EXPECT_EQ(runOne(dist, SxmUnit::Distribute).bytes, in.bytes);
}

TEST_P(SxmProperty, OppositeShiftsCancelUpToZeroFill)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
    const Vec320 in = randomVec(rng);
    const int k = GetParam(); // Shift distance = the seed, 1..8.

    Instruction up;
    up.op = Opcode::ShiftUp;
    up.srcA = {0, Direction::East};
    up.dst = {1, Direction::East};
    up.imm0 = static_cast<std::uint32_t>(k);
    put(0, in);
    runOne(up, SxmUnit::ShiftNorth);

    Instruction down;
    down.op = Opcode::ShiftDown;
    down.srcA = {1, Direction::East};
    down.dst = {2, Direction::East};
    down.imm0 = static_cast<std::uint32_t>(k);
    const Vec320 out = runOne(down, SxmUnit::ShiftSouth);

    for (int i = 0; i < kLanes; ++i) {
        const std::uint8_t want =
            i < kLanes - k ? in.bytes[static_cast<std::size_t>(i)]
                           : 0;
        EXPECT_EQ(out.bytes[static_cast<std::size_t>(i)], want)
            << "lane " << i << " shift " << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SxmProperty, ::testing::Range(1, 9));

} // namespace
} // namespace tsp
