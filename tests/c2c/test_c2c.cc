/**
 * @file
 * Chip-to-chip links: deskew-before-use, send/receive vector exchange
 * between two chips' fabrics, serialization occupancy, and the
 * 3.84 Tb/s aggregate bandwidth arithmetic (paper II item 6).
 */

#include <gtest/gtest.h>

#include "c2c/c2c_module.hh"
#include "mem/ecc.hh"

namespace tsp {
namespace {

struct TwoChips
{
    ChipConfig cfg;
    StreamFabric fa, fb;
    C2cModule a{cfg, fa}, b{cfg, fb};

    TwoChips()
    {
        a.connect(/*link=*/0, b, /*peer_link=*/0,
                  /*wire_latency=*/10);
        Instruction d;
        d.op = Opcode::Deskew;
        a.execute(d, 0, 0);
        b.execute(d, 0, 0);
    }

    void
    step()
    {
        fa.advance();
        fb.advance();
    }
};

TEST(C2c, SendReceiveRoundTrip)
{
    TwoChips t;
    // Put a vector on chip A's outbound stream at the link position.
    const SlicePos pa = IcuId::c2c(0).pos();
    Vec320 v;
    for (int i = 0; i < kLanes; ++i)
        v.bytes[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(i * 3);
    eccComputeVec(v);
    t.fa.write({5, Direction::West}, pa, v);

    Instruction send;
    send.op = Opcode::Send;
    send.imm0 = 0;
    send.srcA = {5, Direction::West};
    t.a.execute(send, 0, t.fa.now());
    EXPECT_EQ(t.a.sent(), 1u);

    // Arrival at serialization + wire latency.
    const Cycle arrival = kC2cSerializationCycles + 10;
    while (t.fb.now() < arrival)
        t.step();
    EXPECT_EQ(t.b.pendingRx(0), 1u);

    Instruction recv;
    recv.op = Opcode::Receive;
    recv.imm0 = 0;
    recv.dst = {6, Direction::East};
    t.b.execute(recv, 0, t.fb.now());
    EXPECT_EQ(t.b.received(), 1u);

    const Cycle vis =
        t.fb.now() + opTiming(Opcode::Receive).dFunc;
    while (t.fb.now() < vis)
        t.step();
    // The link sits at an edge; the vector flows inward from there.
    const SlicePos pb = IcuId::c2c(0).pos();
    const SlicePos at =
        pb + static_cast<SlicePos>(t.fb.now() - vis) *
                 (IcuId::c2c(0).pos() == Layout::c2cWest ? 1 : -1);
    const Vec320 *got = t.fb.peek({6, Direction::East}, at);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->bytes, v.bytes);
}

TEST(C2cDeath, SendWithoutDeskewPanics)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ChipConfig cfg;
        cfg.strictStreams = false;
        StreamFabric fa, fb;
        C2cModule a(cfg, fa), b(cfg, fb);
        a.connect(1, b, 1, 5);
        Instruction send;
        send.op = Opcode::Send;
        send.imm0 = 1;
        send.srcA = {0, Direction::West};
        a.execute(send, 1, 0);
    };
    ASSERT_DEATH(body(), "deskew");
}

TEST(C2cDeath, OverlappingSendsPanic)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ChipConfig cfg;
        cfg.strictStreams = false;
        StreamFabric fa, fb;
        C2cModule a(cfg, fa), b(cfg, fb);
        a.connect(0, b, 0, 5);
        Instruction d;
        d.op = Opcode::Deskew;
        a.execute(d, 0, 0);
        Instruction send;
        send.op = Opcode::Send;
        send.imm0 = 0;
        send.srcA = {0, Direction::West};
        a.execute(send, 0, 10);
        a.execute(send, 0, 12); // Mid-serialization.
    };
    ASSERT_DEATH(body(), "serializing");
}

TEST(C2cDeath, ReceiveWithNothingArrivedPanics)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ChipConfig cfg; // Strict.
        StreamFabric fa, fb;
        C2cModule a(cfg, fa), b(cfg, fb);
        a.connect(0, b, 0, 5);
        Instruction d;
        d.op = Opcode::Deskew;
        b.execute(d, 0, 0);
        Instruction recv;
        recv.op = Opcode::Receive;
        recv.imm0 = 0;
        recv.dst = {0, Direction::East};
        b.execute(recv, 0, 3);
    };
    ASSERT_DEATH(body(), "no arrived vector");
}

TEST(C2cDeath, ReceiveBeforeDeskewPanics)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ChipConfig cfg;
        cfg.strictStreams = false; // Deskew check precedes strictness.
        StreamFabric fa, fb;
        C2cModule a(cfg, fa), b(cfg, fb);
        a.connect(0, b, 0, 5);
        Instruction recv;
        recv.op = Opcode::Receive;
        recv.imm0 = 0;
        recv.dst = {0, Direction::East};
        b.execute(recv, 0, 3);
    };
    ASSERT_DEATH(body(), "receive before deskew");
}

TEST(C2cDeath, SendOnUnconnectedLinkPanics)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ChipConfig cfg;
        cfg.strictStreams = false;
        StreamFabric fa;
        C2cModule a(cfg, fa);
        Instruction d;
        d.op = Opcode::Deskew;
        a.execute(d, 3, 0);
        Instruction send;
        send.op = Opcode::Send;
        send.imm0 = 3;
        send.srcA = {0, Direction::West};
        a.execute(send, 3, 10);
    };
    ASSERT_DEATH(body(), "unconnected link");
}

TEST(C2c, NonStrictReceiveUnderflowIsCountedPerLink)
{
    // A Receive that finds nothing arrived is a schedule bug; in
    // non-strict mode it must not vanish silently — the drop is
    // counted on its link and chip-wide.
    ChipConfig cfg;
    cfg.strictStreams = false;
    StreamFabric fa, fb;
    C2cModule a(cfg, fa), b(cfg, fb);
    a.connect(0, b, 0, 5);
    Instruction d;
    d.op = Opcode::Deskew;
    b.execute(d, 0, 0);

    Instruction recv;
    recv.op = Opcode::Receive;
    recv.imm0 = 0;
    recv.dst = {0, Direction::East};
    b.execute(recv, 0, 3); // Nothing ever sent.
    EXPECT_EQ(b.received(), 0u);
    EXPECT_EQ(b.droppedReceives(0), 1u);
    EXPECT_EQ(b.droppedReceives(), 1u);

    // A vector in flight but not yet arrived is still an underflow.
    d.op = Opcode::Deskew;
    a.execute(d, 0, 0);
    Vec320 v;
    v.bytes.fill(0x5a);
    eccComputeVec(v);
    fa.write({2, Direction::West}, IcuId::c2c(0).pos(), v);
    Instruction send;
    send.op = Opcode::Send;
    send.imm0 = 0;
    send.srcA = {2, Direction::West};
    a.execute(send, 0, 4); // Arrives at 4 + 22 + 5 = 31.
    b.execute(recv, 0, 10);
    EXPECT_EQ(b.received(), 0u);
    EXPECT_EQ(b.droppedReceives(0), 2u);
    EXPECT_EQ(b.droppedReceives(), 2u);
    EXPECT_EQ(b.pendingRx(0), 1u); // The in-flight vector survives.

    // Other links are untouched.
    EXPECT_EQ(b.droppedReceives(1), 0u);

    // Once arrived, the receive consumes it normally.
    while (fb.now() < 31) {
        fa.advance();
        fb.advance();
    }
    b.execute(recv, 0, fb.now());
    EXPECT_EQ(b.received(), 1u);
    EXPECT_EQ(b.pendingRx(0), 0u);
    EXPECT_EQ(b.droppedReceives(), 2u);
}

TEST(C2c, PendingRxAccountingAcrossBackToBackSends)
{
    TwoChips t;
    const SlicePos pa = IcuId::c2c(0).pos();
    Instruction send;
    send.op = Opcode::Send;
    send.imm0 = 0;
    send.srcA = {5, Direction::West};

    Vec320 v;
    v.bytes.fill(1);
    eccComputeVec(v);
    t.fa.write({5, Direction::West}, pa, v);
    t.a.execute(send, 0, 0);
    // Earliest legal back-to-back send: one serialization later.
    while (t.fa.now() < kC2cSerializationCycles)
        t.step();
    v.bytes.fill(2);
    eccComputeVec(v);
    t.fa.write({5, Direction::West}, pa, v);
    t.a.execute(send, 0, t.fa.now());
    EXPECT_EQ(t.a.sent(), 2u);

    // Delivery is eager: both entries queue at Send time, each
    // carrying its own arrival cycle, one serialization apart.
    EXPECT_EQ(t.b.pendingRx(0), 2u);
    const Cycle second = 2 * kC2cSerializationCycles + 10;
    while (t.fb.now() < second)
        t.step();

    Instruction recv;
    recv.op = Opcode::Receive;
    recv.imm0 = 0;
    recv.dst = {6, Direction::East};
    t.b.execute(recv, 0, t.fb.now());
    EXPECT_EQ(t.b.pendingRx(0), 1u);
    t.b.execute(recv, 0, t.fb.now());
    EXPECT_EQ(t.b.pendingRx(0), 0u);
    EXPECT_EQ(t.b.received(), 2u);
    EXPECT_EQ(t.b.droppedReceives(), 0u);
}

TEST(C2c, EarliestEventCycleTracksLinkActivity)
{
    TwoChips t;
    // Nothing in flight: no events ever.
    EXPECT_EQ(t.a.earliestEventCycle(0), kNoEventCycle);
    EXPECT_EQ(t.b.earliestEventCycle(0), kNoEventCycle);

    const SlicePos pa = IcuId::c2c(0).pos();
    Vec320 v;
    v.bytes.fill(7);
    eccComputeVec(v);
    t.fa.write({5, Direction::West}, pa, v);
    Instruction send;
    send.op = Opcode::Send;
    send.imm0 = 0;
    send.srcA = {5, Direction::West};
    t.a.execute(send, 0, 0);

    // Sender: next event is the serializer going idle.
    EXPECT_EQ(t.a.earliestEventCycle(0), kC2cSerializationCycles);
    EXPECT_EQ(t.a.earliestEventCycle(kC2cSerializationCycles),
              kNoEventCycle);

    // Receiver: next event is the arrival (delivery is eager, so the
    // rx entry carries its future arrival cycle).
    const Cycle arrival = kC2cSerializationCycles + 10;
    EXPECT_EQ(t.b.earliestEventCycle(0), arrival);
    EXPECT_EQ(t.b.earliestEventCycle(arrival - 1), arrival);
    // At (or past) the arrival the event is now, not in the future.
    EXPECT_EQ(t.b.earliestEventCycle(arrival), kNoEventCycle);

    // Consuming the vector clears the rx event.
    while (t.fb.now() < arrival)
        t.step();
    Instruction recv;
    recv.op = Opcode::Receive;
    recv.imm0 = 0;
    recv.dst = {6, Direction::East};
    t.b.execute(recv, 0, t.fb.now());
    EXPECT_EQ(t.b.earliestEventCycle(0), kNoEventCycle);
}

TEST(C2c, AggregateBandwidthMatchesPaper)
{
    // 16 links x 4 lanes x 30 Gb/s x 2 directions = 3.84 Tb/s.
    const double tbps =
        kC2cLinks * kC2cLinkGbps * 2 / 1000.0;
    EXPECT_DOUBLE_EQ(tbps, 3.84);
    // Serialization of one 320-byte vector on one link at 1 GHz:
    // 2560 bits / 120 Gb/s = 21.3 ns -> 22 cycles.
    EXPECT_EQ(kC2cSerializationCycles, 22u);
}

TEST(C2c, BidirectionalTrafficIsIndependent)
{
    TwoChips t;
    Vec320 va, vb;
    va.bytes.fill(0xaa);
    vb.bytes.fill(0xbb);
    eccComputeVec(va);
    eccComputeVec(vb);
    t.fa.write({1, Direction::West}, IcuId::c2c(0).pos(), va);
    t.fb.write({1, Direction::West}, IcuId::c2c(0).pos(), vb);

    Instruction send;
    send.op = Opcode::Send;
    send.imm0 = 0;
    send.srcA = {1, Direction::West};
    t.a.execute(send, 0, t.fa.now());
    t.b.execute(send, 0, t.fb.now());

    const Cycle arrival = kC2cSerializationCycles + 10;
    while (t.fa.now() < arrival)
        t.step();
    EXPECT_EQ(t.a.pendingRx(0), 1u);
    EXPECT_EQ(t.b.pendingRx(0), 1u);
}

} // namespace
} // namespace tsp
