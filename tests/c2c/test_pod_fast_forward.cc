/**
 * @file
 * Differential tests for pod-scale fast-forward: every collective
 * runs once under lock-step stepAll() (the reference semantics) and
 * once under Pod::runAllBounded()'s conservative-lookahead scheduler,
 * and the two executions must be indistinguishable — identical final
 * clocks, identical per-chip stats() counters (including idle and
 * power-activity counters and injected-fault counts), energy equal to
 * floating-point association, and bit-identical memory results —
 * across ring sizes, wire latencies, and fault injection.
 */

#include <gtest/gtest.h>

#include "c2c/collective.hh"
#include "common/rng.hh"
#include "mem/ecc.hh"

namespace tsp {
namespace {

/** Seeds every chip's local vector identically in both pods. */
void
seedLocals(Pod &a, Pod &b, std::uint64_t seed)
{
    Rng rng(seed);
    for (int c = 0; c < a.size(); ++c) {
        Vec320 v;
        for (int l = 0; l < kLanes; ++l) {
            v.bytes[static_cast<std::size_t>(l)] =
                static_cast<std::uint8_t>(rng.intIn(-90, 90));
        }
        for (Pod *p : {&a, &b}) {
            p->chip(c)
                .mem(Hemisphere::East, AllReducePlan::kSlice)
                .backdoorWrite(AllReducePlan::kLocalAddr, v);
        }
    }
}

void
loadAllReduce(Pod &pod)
{
    std::vector<ScheduledProgram> programs;
    buildRingAllReduce(pod, programs);
    for (int c = 0; c < pod.size(); ++c) {
        pod.chip(c).loadProgram(
            programs[static_cast<std::size_t>(c)].toAsm());
    }
}

/**
 * Runs the ring all-reduce on two identically configured pods — one
 * lock-step, one bounded-lookahead — and asserts the executions are
 * indistinguishable.
 */
void
expectIdenticalPodExecutions(int chips, Cycle wire, ChipConfig cfg)
{
    Pod lock(chips, wire, cfg);
    Pod fast(chips, wire, cfg);
    seedLocals(lock, fast, static_cast<std::uint64_t>(chips) * 131);
    loadAllReduce(lock);
    loadAllReduce(fast);

    while (!lock.allDone())
        lock.stepAll();
    ASSERT_TRUE(fast.runAllBounded());

    EXPECT_EQ(fast.now(), lock.now());
    for (int c = 0; c < chips; ++c) {
        const Chip &lc = lock.chip(c);
        const Chip &fc = fast.chip(c);
        EXPECT_EQ(fc.now(), lc.now()) << "chip " << c;
        EXPECT_EQ(lc.stats().all(), fc.stats().all())
            << "chip " << c;
        EXPECT_EQ(lc.power().cycles(), fc.power().cycles());
        EXPECT_NEAR(lc.power().totalEnergyJ(),
                    fc.power().totalEnergyJ(),
                    1e-9 * lc.power().totalEnergyJ())
            << "chip " << c;
        const Vec320 a =
            lc.mem(Hemisphere::East, AllReducePlan::kSlice)
                .backdoorRead(AllReducePlan::kResultAddr);
        const Vec320 b =
            fc.mem(Hemisphere::East, AllReducePlan::kSlice)
                .backdoorRead(AllReducePlan::kResultAddr);
        EXPECT_EQ(a.bytes, b.bytes) << "chip " << c;
    }
}

class PodFastForward
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PodFastForward, BitIdenticalToLockStep)
{
    const auto [chips, wire] = GetParam();
    expectIdenticalPodExecutions(chips, static_cast<Cycle>(wire),
                                 ChipConfig{});
}

TEST_P(PodFastForward, BitIdenticalUnderCorrectableFaults)
{
    // Single-bit-only injection on SRAM, stream hops and C2C link
    // flight. Per-link RNG streams make link strikes a pure function
    // of each link's arrival order, so upset histories cannot depend
    // on how the two schedulers interleave chips.
    const auto [chips, wire] = GetParam();
    ChipConfig cfg;
    cfg.fault.seed = 0x90d5eedull;
    cfg.fault.memReadRate = 0.01;
    cfg.fault.memWriteRate = 0.01;
    cfg.fault.streamRate = 0.002;
    cfg.fault.c2cRate = 0.9; // Nearly every hop takes a strike.
    cfg.fault.doubleBitFraction = 0.0;
    expectIdenticalPodExecutions(chips, static_cast<Cycle>(wire),
                                 cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Rings, PodFastForward,
    ::testing::Combine(::testing::Values(2, 3, 4, 6),
                       ::testing::Values(5, 17)),
    [](const auto &info) {
        return "chips" + std::to_string(std::get<0>(info.param)) +
               "_wire" + std::to_string(std::get<1>(info.param));
    });

TEST(PodFastForward, LinkFaultsAreInjectedAndCorrected)
{
    // The PR-3 coverage gap: upsets must strike vectors in C2C link
    // flight and surface at the consumer-side SECDED check.
    ChipConfig cfg;
    cfg.fault.seed = 0xabcull;
    cfg.fault.c2cRate = 0.9;
    cfg.fault.doubleBitFraction = 0.0;
    Pod pod(4, 9, cfg);
    Pod other(4, 9, cfg); // seedLocals wants a pair.
    seedLocals(pod, other, 77);
    loadAllReduce(pod);
    ASSERT_TRUE(pod.runAllBounded());

    std::uint64_t injected = 0, corrected = 0;
    for (int c = 0; c < pod.size(); ++c) {
        const StatGroup s = pod.chip(c).stats();
        injected += s.get("faults_injected_c2c");
        corrected += s.get("ecc_corrected");
    }
    EXPECT_GT(injected, 0u);
    // Every link strike is single-bit here and every received vector
    // is consumed downstream, so corrections must keep pace.
    EXPECT_GE(corrected, injected);
}

TEST(PodFastForward, UncorrectableLinkFaultMachineChecksBothModes)
{
    // Double-bit strikes in link flight must condemn the consumer
    // chip — identically under both schedulers: same chip, same
    // first-error cycle, unit and detail.
    ChipConfig cfg;
    cfg.fault.seed = 0x2bull;
    cfg.fault.c2cRate = 0.9;
    cfg.fault.doubleBitFraction = 1.0;
    Pod lock(3, 17, cfg);
    Pod fast(3, 17, cfg);
    seedLocals(lock, fast, 5);
    loadAllReduce(lock);
    loadAllReduce(fast);

    ASSERT_FALSE(fast.runAllBounded());
    ASSERT_TRUE(fast.machineCheck());
    const int idx = fast.machineCheckChip();
    ASSERT_GE(idx, 0);

    // Lock-step the reference until the same member condemns itself
    // (the latch does not halt the clock, so run to pod completion
    // would also work; stopping at the raise keeps this fast).
    while (!lock.chip(idx).machineCheck() && !lock.allDone())
        lock.stepAll();
    ASSERT_TRUE(lock.chip(idx).machineCheck());

    const MachineCheckInfo &a = lock.chip(idx).machineCheckInfo();
    const MachineCheckInfo &b = fast.chip(idx).machineCheckInfo();
    EXPECT_EQ(a.cycle, b.cycle);
    EXPECT_EQ(a.unit, b.unit);
    EXPECT_EQ(a.detail, b.detail);
}

TEST(PodFastForward, BoundedRunResumesAfterTimeout)
{
    // Hitting the absolute limit mid-collective is recoverable: the
    // conservative scheduler left no arrival undelivered, so resuming
    // with a larger limit completes with the correct reduction.
    Pod pod(3, 17);
    Rng rng(99);
    std::vector<std::array<std::int8_t, kLanes>> locals(3);
    for (int c = 0; c < 3; ++c) {
        Vec320 v;
        for (int l = 0; l < kLanes; ++l) {
            const auto x =
                static_cast<std::int8_t>(rng.intIn(-40, 40));
            locals[static_cast<std::size_t>(c)]
                  [static_cast<std::size_t>(l)] = x;
            v.bytes[static_cast<std::size_t>(l)] =
                static_cast<std::uint8_t>(x);
        }
        pod.chip(c)
            .mem(Hemisphere::East, AllReducePlan::kSlice)
            .backdoorWrite(AllReducePlan::kLocalAddr, v);
    }
    loadAllReduce(pod);

    ASSERT_FALSE(pod.runAllBounded(50));
    EXPECT_FALSE(pod.allDone());
    EXPECT_FALSE(pod.machineCheck());
    ASSERT_TRUE(pod.runAllBounded());
    EXPECT_TRUE(pod.allDone());

    std::array<std::int8_t, kLanes> want = locals[0];
    for (int c = 1; c < 3; ++c) {
        for (int l = 0; l < kLanes; ++l) {
            const int s = int(want[static_cast<std::size_t>(l)]) +
                          int(locals[static_cast<std::size_t>(c)]
                                    [static_cast<std::size_t>(l)]);
            want[static_cast<std::size_t>(l)] =
                static_cast<std::int8_t>(std::clamp(s, -128, 127));
        }
    }
    for (int c = 0; c < 3; ++c) {
        const Vec320 got =
            pod.chip(c)
                .mem(Hemisphere::East, AllReducePlan::kSlice)
                .backdoorRead(AllReducePlan::kResultAddr);
        for (int l = 0; l < kLanes; ++l) {
            ASSERT_EQ(static_cast<std::int8_t>(
                          got.bytes[static_cast<std::size_t>(l)]),
                      want[static_cast<std::size_t>(l)])
                << "chip " << c << " lane " << l;
        }
    }
}

} // namespace
} // namespace tsp
