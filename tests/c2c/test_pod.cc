/**
 * @file
 * Multi-chip pod: ring wiring, lock-step determinism, and the
 * statically scheduled ring all-reduce against a host reference —
 * scale-out with zero handshakes (paper II item 6).
 */

#include <gtest/gtest.h>

#include "c2c/collective.hh"
#include "common/rng.hh"
#include "mem/ecc.hh"

namespace tsp {
namespace {

class PodAllReduce : public ::testing::TestWithParam<int>
{
};

TEST_P(PodAllReduce, MatchesHostReduction)
{
    const int n = GetParam();
    Pod pod(n, /*wire_latency=*/17);

    // Seed each chip's local vector.
    Rng rng(static_cast<std::uint64_t>(n) * 7919);
    std::vector<std::array<std::int8_t, kLanes>> locals(
        static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
        Vec320 v;
        for (int l = 0; l < kLanes; ++l) {
            const auto x =
                static_cast<std::int8_t>(rng.intIn(-90, 90));
            locals[static_cast<std::size_t>(c)]
                  [static_cast<std::size_t>(l)] = x;
            v.bytes[static_cast<std::size_t>(l)] =
                static_cast<std::uint8_t>(x);
        }
        pod.chip(c)
            .mem(Hemisphere::East, AllReducePlan::kSlice)
            .backdoorWrite(AllReducePlan::kLocalAddr, v);
    }

    std::vector<ScheduledProgram> programs;
    const AllReducePlan plan = buildRingAllReduce(pod, programs);
    const Cycle cycles = runAllReduce(pod, programs);
    EXPECT_LE(cycles, plan.finish + 16);

    // Host reference with the same saturating chain order.
    std::array<std::int8_t, kLanes> want =
        locals[0];
    for (int c = 1; c < n; ++c) {
        for (int l = 0; l < kLanes; ++l) {
            const int s =
                int(want[static_cast<std::size_t>(l)]) +
                int(locals[static_cast<std::size_t>(c)]
                          [static_cast<std::size_t>(l)]);
            want[static_cast<std::size_t>(l)] =
                static_cast<std::int8_t>(std::clamp(s, -128, 127));
        }
    }

    for (int c = 0; c < n; ++c) {
        const Vec320 got =
            pod.chip(c)
                .mem(Hemisphere::East, AllReducePlan::kSlice)
                .backdoorRead(AllReducePlan::kResultAddr);
        for (int l = 0; l < kLanes; ++l) {
            ASSERT_EQ(static_cast<std::int8_t>(
                          got.bytes[static_cast<std::size_t>(l)]),
                      want[static_cast<std::size_t>(l)])
                << "chip " << c << " lane " << l;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, PodAllReduce,
                         ::testing::Values(2, 3, 4, 6),
                         [](const auto &info) {
                             return "chips" +
                                    std::to_string(info.param);
                         });

TEST(Pod, LockStepIsDeterministic)
{
    Cycle first = 0;
    for (int run = 0; run < 2; ++run) {
        Pod pod(3, 9);
        for (int c = 0; c < 3; ++c) {
            Vec320 v;
            v.bytes.fill(static_cast<std::uint8_t>(c + 1));
            pod.chip(c)
                .mem(Hemisphere::East, AllReducePlan::kSlice)
                .backdoorWrite(AllReducePlan::kLocalAddr, v);
        }
        std::vector<ScheduledProgram> programs;
        buildRingAllReduce(pod, programs);
        const Cycle cycles = runAllReduce(pod, programs);
        if (run == 0)
            first = cycles;
        EXPECT_EQ(cycles, first);
    }
}

} // namespace
} // namespace tsp
