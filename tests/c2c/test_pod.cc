/**
 * @file
 * Multi-chip pod: ring wiring, lock-step determinism, and the
 * statically scheduled ring all-reduce against a host reference —
 * scale-out with zero handshakes (paper II item 6).
 */

#include <gtest/gtest.h>

#include "c2c/collective.hh"
#include "common/rng.hh"
#include "mem/ecc.hh"

namespace tsp {
namespace {

class PodAllReduce : public ::testing::TestWithParam<int>
{
};

TEST_P(PodAllReduce, MatchesHostReduction)
{
    const int n = GetParam();
    Pod pod(n, /*wire_latency=*/17);

    // Seed each chip's local vector.
    Rng rng(static_cast<std::uint64_t>(n) * 7919);
    std::vector<std::array<std::int8_t, kLanes>> locals(
        static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
        Vec320 v;
        for (int l = 0; l < kLanes; ++l) {
            const auto x =
                static_cast<std::int8_t>(rng.intIn(-90, 90));
            locals[static_cast<std::size_t>(c)]
                  [static_cast<std::size_t>(l)] = x;
            v.bytes[static_cast<std::size_t>(l)] =
                static_cast<std::uint8_t>(x);
        }
        pod.chip(c)
            .mem(Hemisphere::East, AllReducePlan::kSlice)
            .backdoorWrite(AllReducePlan::kLocalAddr, v);
    }

    std::vector<ScheduledProgram> programs;
    const AllReducePlan plan = buildRingAllReduce(pod, programs);
    const Cycle cycles = runAllReduce(pod, programs);
    EXPECT_LE(cycles, plan.finish + 16);

    // Host reference with the same saturating chain order.
    std::array<std::int8_t, kLanes> want =
        locals[0];
    for (int c = 1; c < n; ++c) {
        for (int l = 0; l < kLanes; ++l) {
            const int s =
                int(want[static_cast<std::size_t>(l)]) +
                int(locals[static_cast<std::size_t>(c)]
                          [static_cast<std::size_t>(l)]);
            want[static_cast<std::size_t>(l)] =
                static_cast<std::int8_t>(std::clamp(s, -128, 127));
        }
    }

    for (int c = 0; c < n; ++c) {
        const Vec320 got =
            pod.chip(c)
                .mem(Hemisphere::East, AllReducePlan::kSlice)
                .backdoorRead(AllReducePlan::kResultAddr);
        for (int l = 0; l < kLanes; ++l) {
            ASSERT_EQ(static_cast<std::int8_t>(
                          got.bytes[static_cast<std::size_t>(l)]),
                      want[static_cast<std::size_t>(l)])
                << "chip " << c << " lane " << l;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, PodAllReduce,
                         ::testing::Values(2, 3, 4, 6),
                         [](const auto &info) {
                             return "chips" +
                                    std::to_string(info.param);
                         });

TEST(PodDeath, RunAllLimitIsAbsolute)
{
    // max_cycles bounds the pod *clock*, exactly like
    // Chip::runBounded — not the number of additional loop
    // iterations. A resumed pod whose clock already exceeds the
    // budget must fatal instead of silently granting max_cycles more
    // cycles (the old iteration-counting behaviour would have let
    // this second collective finish).
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Pod pod(2, 9);
    for (int c = 0; c < 2; ++c) {
        Vec320 v;
        v.bytes.fill(static_cast<std::uint8_t>(c + 1));
        pod.chip(c)
            .mem(Hemisphere::East, AllReducePlan::kSlice)
            .backdoorWrite(AllReducePlan::kLocalAddr, v);
    }
    std::vector<ScheduledProgram> programs;
    buildRingAllReduce(pod, programs);
    const Cycle first = runAllReduce(pod, programs);
    ASSERT_GT(first, 100u);
    // Reload and rerun with a budget only slightly past the current
    // clock: the second collective needs ~first more cycles, far
    // more than the 5 remaining in the absolute budget — yet under
    // iteration counting, now() + 5 iterations would cover it.
    for (int c = 0; c < 2; ++c) {
        pod.chip(c).loadProgram(
            programs[static_cast<std::size_t>(c)].toAsm());
    }
    ASSERT_DEATH(pod.runAll(pod.now() + 5), "cycle limit");
}

TEST(Pod, RunAllHonorsGenerousAbsoluteLimit)
{
    // The flip side of the absolute semantics: a resumed pod given a
    // budget covering the second collective completes normally.
    Pod pod(2, 9);
    for (int c = 0; c < 2; ++c) {
        Vec320 v;
        v.bytes.fill(static_cast<std::uint8_t>(c + 1));
        pod.chip(c)
            .mem(Hemisphere::East, AllReducePlan::kSlice)
            .backdoorWrite(AllReducePlan::kLocalAddr, v);
    }
    std::vector<ScheduledProgram> programs;
    buildRingAllReduce(pod, programs);
    const Cycle first = runAllReduce(pod, programs);
    for (int c = 0; c < 2; ++c) {
        pod.chip(c).loadProgram(
            programs[static_cast<std::size_t>(c)].toAsm());
    }
    const Cycle second = pod.runAll(2 * first + 64);
    EXPECT_EQ(second, 2 * first);
}

TEST(Pod, LockStepIsDeterministic)
{
    Cycle first = 0;
    for (int run = 0; run < 2; ++run) {
        Pod pod(3, 9);
        for (int c = 0; c < 3; ++c) {
            Vec320 v;
            v.bytes.fill(static_cast<std::uint8_t>(c + 1));
            pod.chip(c)
                .mem(Hemisphere::East, AllReducePlan::kSlice)
                .backdoorWrite(AllReducePlan::kLocalAddr, v);
        }
        std::vector<ScheduledProgram> programs;
        buildRingAllReduce(pod, programs);
        const Cycle cycles = runAllReduce(pod, programs);
        if (run == 0)
            first = cycles;
        EXPECT_EQ(cycles, first);
    }
}

} // namespace
} // namespace tsp
