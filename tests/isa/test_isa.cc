/**
 * @file
 * ISA-level tests: mnemonic table, assembler round trips for every
 * instruction form in Table I, binary encode/decode round trips
 * (including a randomized fuzz sweep), and timing-table sanity.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "isa/encoding.hh"

namespace tsp {
namespace {

TEST(Opcode, NamesRoundTrip)
{
    for (int i = 0; i < kNumOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        Opcode back;
        ASSERT_TRUE(opcodeFromName(opcodeName(op), back))
            << opcodeName(op);
        EXPECT_EQ(back, op);
    }
    Opcode out;
    EXPECT_FALSE(opcodeFromName("bogus", out));
}

TEST(Opcode, SliceAssignmentsMatchTableOne)
{
    EXPECT_EQ(opcodeSlice(Opcode::Nop), SliceKind::ICU);
    EXPECT_EQ(opcodeSlice(Opcode::Read), SliceKind::MEM);
    EXPECT_EQ(opcodeSlice(Opcode::Gather), SliceKind::MEM);
    EXPECT_EQ(opcodeSlice(Opcode::AddSat), SliceKind::VXM);
    EXPECT_EQ(opcodeSlice(Opcode::Rsqrt), SliceKind::VXM);
    EXPECT_EQ(opcodeSlice(Opcode::Iw), SliceKind::MXM);
    EXPECT_EQ(opcodeSlice(Opcode::Transpose), SliceKind::SXM);
    EXPECT_EQ(opcodeSlice(Opcode::Deskew), SliceKind::C2C);
}

TEST(Assembler, IcuNames)
{
    IcuId id;
    ASSERT_TRUE(parseIcuName("MEM_E12", id));
    EXPECT_EQ(id, IcuId::mem(Hemisphere::East, 12));
    ASSERT_TRUE(parseIcuName("vxm15", id));
    EXPECT_EQ(id, IcuId::vxmAlu(15));
    ASSERT_TRUE(parseIcuName("MXM3_A", id));
    EXPECT_EQ(id, IcuId::mxm(3, false));
    ASSERT_TRUE(parseIcuName("SXM_W_TR1", id));
    EXPECT_EQ(id,
              IcuId::sxm(Hemisphere::West,
                         static_cast<int>(SxmUnit::Transpose1)));
    EXPECT_FALSE(parseIcuName("MEM_X1", id));
    EXPECT_FALSE(parseIcuName("VXM16", id));
    EXPECT_FALSE(parseIcuName("C2C16", id));
}

TEST(Assembler, StreamRefs)
{
    StreamRef s;
    ASSERT_TRUE(parseStreamRef("s31.w", s));
    EXPECT_EQ(s.id, 31);
    EXPECT_EQ(s.dir, Direction::West);
    EXPECT_FALSE(parseStreamRef("s32.e", s)); // Out of range.
    EXPECT_FALSE(parseStreamRef("s1.x", s));
    EXPECT_FALSE(parseStreamRef("x1.e", s));
}

/** Round-trips one instruction line through parse + print. */
void
roundTrip(const std::string &line)
{
    Instruction inst;
    std::string err;
    ASSERT_TRUE(parseInstruction(line, inst, err))
        << line << ": " << err;
    EXPECT_EQ(inst.toString(), line);
}

TEST(Assembler, EveryFormRoundTrips)
{
    roundTrip("nop 17");
    roundTrip("repeat 8, 2");
    roundTrip("sync");
    roundTrip("notify");
    roundTrip("config 12");
    roundTrip("ifetch s3.e");
    roundTrip("read 0x1a2, s7.e");
    roundTrip("write 0x1fff, s30.w");
    roundTrip("gather s5.e, s6.e");
    roundTrip("scatter s5.w, s6.w");
    roundTrip("add s1.e, s2.e, s3.e");
    roundTrip("mul.sat s4.w, s5.w, s6.w");
    roundTrip("max s1.e, s2.e, s3.e");
    roundTrip("mask s1.e, s2.e, s3.e");
    roundTrip("relu s9.e, s10.e");
    roundTrip("tanh s9.e, s10.e");
    roundTrip("rsqrt s9.w, s10.w");
    roundTrip("shift s8.e, s12.e, 5");
    roundTrip("convert s0.e, s4.e, int32 -> fp32");
    roundTrip("lw s0.e, n16");
    roundTrip("iw p2");
    roundTrip("abc p1, s16.e, n64");
    roundTrip("abc p1, s16.e, n64, acc");
    roundTrip("acc p3, s20.w, n32");
    roundTrip("shift.up s1.e, s2.e, 4");
    roundTrip("shift.down s1.w, s2.w, 16");
    roundTrip("select.ns s1.e, s2.e, s3.e, m5");
    roundTrip("permute s1.e, s2.e");
    roundTrip("distribute s1.e, s2.e");
    roundTrip("rotate s0.e, s9.e, n3");
    roundTrip("transpose s0.e, s16.e");
    roundTrip("deskew");
    roundTrip("send l3, s1.e");
    roundTrip("receive l3, s1.w");
}

TEST(Assembler, RejectsMalformed)
{
    Instruction inst;
    std::string err;
    EXPECT_FALSE(parseInstruction("read 0x10", inst, err));
    EXPECT_FALSE(parseInstruction("add s1.e, s2.e", inst, err));
    EXPECT_FALSE(parseInstruction("rotate s0.e, s1.e, n5", inst, err));
    EXPECT_FALSE(parseInstruction("iw p9", inst, err));
    EXPECT_FALSE(parseInstruction("frobnicate s1.e", inst, err));
    EXPECT_FALSE(
        parseInstruction("read 0x9999, s1.e", inst, err)); // >13 bit.
}

TEST(Assembler, FullListingRoundTrips)
{
    const std::string text = "@MEM_E0:\n"
                             "    read 0x10, s4.e\n"
                             "    nop 3\n"
                             "    write 0x20, s0.w\n"
                             "@VXM0:\n"
                             "    add s4.e, s5.e, s0.w\n"
                             "@MXM0_W:\n"
                             "    lw s0.e, n16\n"
                             "    iw p0\n";
    const AsmResult r = assemble(text);
    ASSERT_TRUE(r.ok) << r.error << " line " << r.errorLine;
    EXPECT_EQ(r.program.queues.size(), 3u);
    // Disassemble and re-assemble: fixed point.
    const std::string dis = disassemble(r.program);
    const AsmResult r2 = assemble(dis);
    ASSERT_TRUE(r2.ok);
    EXPECT_EQ(disassemble(r2.program), dis);
}

TEST(Assembler, RejectsWrongSliceSection)
{
    const AsmResult r = assemble("@MEM_E0:\n    add s1.e, s2.e, s3.e\n");
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorLine, 2);
}

TEST(Encoding, HeaderSizeAndBundles)
{
    Instruction inst;
    inst.op = Opcode::Read;
    EXPECT_EQ(encodedSize(inst), kInstHeaderBytes);
    EXPECT_EQ(kIfetchBundleBytes, 640u); // Pair of 320-byte vectors.
}

TEST(Encoding, MapPayloadRoundTrips)
{
    Instruction inst;
    inst.op = Opcode::Permute;
    inst.srcA = {1, Direction::East};
    inst.dst = {2, Direction::East};
    auto map = std::make_shared<std::vector<std::uint16_t>>();
    for (int i = 0; i < kLanes; ++i)
        map->push_back(static_cast<std::uint16_t>(kLanes - 1 - i));
    inst.map = map;

    std::vector<std::uint8_t> bytes;
    encodeInstruction(inst, bytes);
    EXPECT_EQ(bytes.size(), kInstHeaderBytes + 2u * kLanes);

    std::size_t off = 0;
    auto back = decodeInstruction(bytes, off);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(off, bytes.size());
    EXPECT_EQ(*back, inst);
}

TEST(Encoding, FuzzRoundTrip)
{
    Rng rng(99);
    std::vector<Instruction> queue;
    for (int i = 0; i < 500; ++i) {
        Instruction inst;
        inst.op = static_cast<Opcode>(rng.nextBelow(kNumOpcodes));
        inst.imm0 = static_cast<std::uint32_t>(rng.next());
        inst.imm1 = static_cast<std::uint32_t>(rng.next());
        inst.addr = static_cast<MemAddr>(rng.nextBelow(8192));
        inst.srcA = {static_cast<StreamId>(rng.nextBelow(32)),
                     rng.nextBelow(2) ? Direction::East
                                      : Direction::West};
        inst.srcB = {static_cast<StreamId>(rng.nextBelow(32)),
                     Direction::West};
        inst.dst = {static_cast<StreamId>(rng.nextBelow(32)),
                    Direction::East};
        inst.groupSize =
            static_cast<std::uint8_t>(1 + rng.nextBelow(32));
        inst.dtype = static_cast<DType>(rng.nextBelow(5));
        inst.flags = static_cast<std::uint8_t>(rng.nextBelow(4));
        queue.push_back(std::move(inst));
    }
    const auto bytes = encodeQueue(queue);
    std::vector<Instruction> back;
    ASSERT_TRUE(decodeQueue(bytes, back));
    ASSERT_EQ(back.size(), queue.size());
    for (std::size_t i = 0; i < queue.size(); ++i)
        EXPECT_EQ(back[i], queue[i]) << i;
}

TEST(Encoding, RejectsTruncation)
{
    Instruction inst;
    inst.op = Opcode::Add;
    std::vector<std::uint8_t> bytes;
    encodeInstruction(inst, bytes);
    bytes.pop_back();
    std::vector<Instruction> out;
    EXPECT_FALSE(decodeQueue(bytes, out));
}

TEST(Timing, TemporalParametersExposed)
{
    // Eq. 4: T = N + d_func + delta.
    EXPECT_EQ(instructionTime(Opcode::Read, 10, 15, kSuperlanes),
              20u + opTiming(Opcode::Read).dFunc + 5u);
    // Every opcode has a positive functional delay.
    for (int i = 0; i < kNumOpcodes; ++i) {
        EXPECT_GE(opTiming(static_cast<Opcode>(i)).dFunc, 1u);
    }
    // The ACC exit latency spans the supercell chain.
    EXPECT_EQ(opTiming(Opcode::Acc).dFunc,
              static_cast<Cycle>(kSuperlanes) + 1);
}

} // namespace
} // namespace tsp
