/**
 * @file
 * SECDED properties: exhaustive single-bit correction over data and
 * check bits, double-bit detection, zero-word code, and vector-level
 * helpers — the paper's 9-bit code over 128-bit words (II.D).
 */

#include <gtest/gtest.h>

#include <array>

#include "common/rng.hh"
#include "mem/ecc.hh"

namespace tsp {
namespace {

using Word = std::array<std::uint8_t, 16>;

Word
randomWord(Rng &rng)
{
    Word w;
    for (auto &b : w)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    return w;
}

TEST(Ecc, ZeroWordHasZeroCode)
{
    Word w{};
    EXPECT_EQ(eccCompute(w.data()), 0u);
    std::uint16_t code = 0;
    EXPECT_EQ(eccCheckCorrect(w.data(), code), EccStatus::Ok);
}

TEST(Ecc, CleanWordsPass)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        Word w = randomWord(rng);
        std::uint16_t code = eccCompute(w.data());
        EXPECT_EQ(code & ~0x1ffu, 0u) << "code uses 9 bits only";
        EXPECT_EQ(eccCheckCorrect(w.data(), code), EccStatus::Ok);
    }
}

TEST(Ecc, EverySingleDataBitCorrects)
{
    Rng rng(2);
    const Word orig = randomWord(rng);
    const std::uint16_t code = eccCompute(orig.data());
    for (int bit = 0; bit < 128; ++bit) {
        Word w = orig;
        w[static_cast<std::size_t>(bit / 8)] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        std::uint16_t c = code;
        ASSERT_EQ(eccCheckCorrect(w.data(), c), EccStatus::Corrected)
            << "bit " << bit;
        EXPECT_EQ(w, orig) << "bit " << bit;
    }
}

TEST(Ecc, EverySingleCheckBitCorrects)
{
    Rng rng(3);
    Word orig = randomWord(rng);
    const std::uint16_t code = eccCompute(orig.data());
    for (int bit = 0; bit < 9; ++bit) {
        Word w = orig;
        std::uint16_t c =
            static_cast<std::uint16_t>(code ^ (1u << bit));
        ASSERT_EQ(eccCheckCorrect(w.data(), c), EccStatus::Corrected)
            << "check bit " << bit;
        EXPECT_EQ(w, orig);
        EXPECT_EQ(c, code);
    }
}

TEST(Ecc, DoubleBitErrorsDetected)
{
    Rng rng(4);
    for (int trial = 0; trial < 500; ++trial) {
        Word orig = randomWord(rng);
        const std::uint16_t code = eccCompute(orig.data());
        const int b1 = static_cast<int>(rng.nextBelow(128));
        int b2 = static_cast<int>(rng.nextBelow(128));
        while (b2 == b1)
            b2 = static_cast<int>(rng.nextBelow(128));
        Word w = orig;
        w[static_cast<std::size_t>(b1 / 8)] ^=
            static_cast<std::uint8_t>(1u << (b1 % 8));
        w[static_cast<std::size_t>(b2 / 8)] ^=
            static_cast<std::uint8_t>(1u << (b2 % 8));
        std::uint16_t c = code;
        EXPECT_EQ(eccCheckCorrect(w.data(), c),
                  EccStatus::Uncorrectable)
            << b1 << "," << b2;
    }
}

TEST(Ecc, DataPlusCheckDoubleDetected)
{
    Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        Word w = randomWord(rng);
        std::uint16_t c = eccCompute(w.data());
        const int db = static_cast<int>(rng.nextBelow(128));
        const int cb = static_cast<int>(rng.nextBelow(9));
        w[static_cast<std::size_t>(db / 8)] ^=
            static_cast<std::uint8_t>(1u << (db % 8));
        c = static_cast<std::uint16_t>(c ^ (1u << cb));
        EXPECT_EQ(eccCheckCorrect(w.data(), c),
                  EccStatus::Uncorrectable);
    }
}

TEST(Ecc, ExhaustiveAllPairsDoubleBitNeverMiscorrects)
{
    // Every one of the C(137,2) = 9316 distinct double flips across
    // the full codeword (128 data + 9 check bits) must come back
    // Uncorrectable — and, critically, must never *miscorrect*: an
    // Uncorrectable result leaves word and code exactly as presented,
    // so no consumer can be handed plausibly-repaired garbage.
    Rng rng(7);
    const Word orig = randomWord(rng);
    const std::uint16_t code = eccCompute(orig.data());

    auto flip = [](Word &w, std::uint16_t &c, int bit) {
        if (bit < 128) {
            w[static_cast<std::size_t>(bit / 8)] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
        } else {
            c = static_cast<std::uint16_t>(c ^ (1u << (bit - 128)));
        }
    };

    for (int b1 = 0; b1 < 137; ++b1) {
        for (int b2 = b1 + 1; b2 < 137; ++b2) {
            Word w = orig;
            std::uint16_t c = code;
            flip(w, c, b1);
            flip(w, c, b2);
            const Word damaged = w;
            const std::uint16_t damaged_code = c;
            ASSERT_EQ(eccCheckCorrect(w.data(), c),
                      EccStatus::Uncorrectable)
                << b1 << "," << b2;
            ASSERT_EQ(w, damaged) << b1 << "," << b2;
            ASSERT_EQ(c, damaged_code) << b1 << "," << b2;
        }
    }
}

TEST(Ecc, VectorRoundTripOnRandomVectors)
{
    // eccComputeVec / eccCheckVec round-trip: freshly coded random
    // vectors always check Ok with data untouched, and a single flip
    // in any superlane is restored to the original bytes.
    Rng rng(8);
    for (int trial = 0; trial < 100; ++trial) {
        Vec320 v;
        for (auto &b : v.bytes)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        eccComputeVec(v);
        const Vec320 orig = v;
        ASSERT_EQ(eccCheckVec(v), EccStatus::Ok);
        ASSERT_EQ(v.bytes, orig.bytes);
        ASSERT_EQ(v.ecc, orig.ecc);

        const int sl = static_cast<int>(rng.nextBelow(kSuperlanes));
        const int bit = static_cast<int>(rng.nextBelow(128));
        Vec320 hit = orig;
        hit.bytes[static_cast<std::size_t>(sl * 16 + bit / 8)] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        ASSERT_EQ(eccCheckVec(hit), EccStatus::Corrected);
        ASSERT_EQ(hit.bytes, orig.bytes);
        ASSERT_EQ(hit.ecc, orig.ecc);
    }
}

TEST(Ecc, VectorHelpersCoverAllSuperlanes)
{
    Rng rng(6);
    Vec320 v;
    for (auto &b : v.bytes)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    eccComputeVec(v);
    EXPECT_EQ(eccCheckVec(v), EccStatus::Ok);

    // Flip one bit in superlane 13.
    v.bytes[13 * 16 + 5] ^= 0x10;
    Vec320 corrected = v;
    EXPECT_EQ(eccCheckVec(corrected), EccStatus::Corrected);
    // Each superlane's word is independently protected.
    Vec320 double_err = v;
    double_err.bytes[13 * 16 + 5] ^= 0x20; // Second flip, same word.
    EXPECT_EQ(eccCheckVec(double_err), EccStatus::Uncorrectable);
}

} // namespace
} // namespace tsp
