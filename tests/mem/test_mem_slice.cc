/**
 * @file
 * MEM slice model: timed read/write, pseudo-dual-port bank rules
 * (violations panic — there is no arbiter), gather/scatter indirect
 * addressing, ECC maintenance, and soft-error injection.
 */

#include <gtest/gtest.h>

#include "mem/mem_slice.hh"

namespace tsp {
namespace {

Vec320
pattern(std::uint8_t seed)
{
    Vec320 v;
    for (int i = 0; i < kLanes; ++i) {
        v.bytes[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(seed + i);
    }
    eccComputeVec(v);
    return v;
}

TEST(MemSlice, WriteThenReadBack)
{
    MemSlice m(Hemisphere::East, 3, /*ecc=*/true);
    const Vec320 v = pattern(7);
    m.write(0x10, v, /*now=*/1);
    const Vec320 r = m.read(0x10, /*now=*/2);
    EXPECT_EQ(r.bytes, v.bytes);
    EXPECT_EQ(m.reads(), 1u);
    EXPECT_EQ(m.writes(), 1u);
}

TEST(MemSlice, UntouchedReadsZeroWithValidEcc)
{
    MemSlice m(Hemisphere::West, 0, true);
    Vec320 r = m.read(0x1f0, 5);
    for (const auto b : r.bytes)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(eccCheckVec(r), EccStatus::Ok);
}

TEST(MemSlice, BankBitIsAddressBit12)
{
    EXPECT_EQ(MemSlice::bankOf(0x0000), 0);
    EXPECT_EQ(MemSlice::bankOf(0x0fff), 0);
    EXPECT_EQ(MemSlice::bankOf(0x1000), 1);
    EXPECT_EQ(MemSlice::bankOf(0x1fff), 1);
}

TEST(MemSlice, ReadAndWriteOppositeBanksSameCycle)
{
    MemSlice m(Hemisphere::East, 1, true);
    m.backdoorWrite(0x0010, pattern(1));
    // Same cycle: read bank 0, write bank 1 — the paper's
    // pseudo-dual-port concurrency (IV.A).
    const Vec320 r = m.read(0x0010, 9);
    m.write(0x1010, pattern(2), 9);
    EXPECT_EQ(r.bytes, pattern(1).bytes);
    EXPECT_EQ(m.backdoorRead(0x1010).bytes, pattern(2).bytes);
}

using MemSliceDeath = ::testing::Test;

TEST(MemSliceDeath, SameBankReadWriteConflictPanics)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ASSERT_DEATH(
        {
            MemSlice m(Hemisphere::East, 2, true);
            (void)m.read(0x0010, 3);
            m.write(0x0020, pattern(0), 3); // Same bank, same cycle.
        },
        "bank conflict");
}

TEST(MemSliceDeath, TwoReadsSameCyclePanic)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ASSERT_DEATH(
        {
            MemSlice m(Hemisphere::East, 2, true);
            (void)m.read(0x0010, 3);
            (void)m.read(0x1010, 3); // Even opposite banks.
        },
        "second read");
}

TEST(MemSlice, GatherReadsPerTileAddresses)
{
    MemSlice m(Hemisphere::West, 5, true);
    // Distinct pattern at two addresses.
    m.backdoorWrite(0x100, pattern(10));
    m.backdoorWrite(0x200, pattern(99));
    std::array<MemAddr, kSuperlanes> addrs;
    for (int sl = 0; sl < kSuperlanes; ++sl)
        addrs[static_cast<std::size_t>(sl)] =
            sl % 2 ? 0x200 : 0x100;
    Vec320 g = m.gather(addrs, 4);
    EXPECT_EQ(eccCheckVec(g), EccStatus::Ok);
    for (int sl = 0; sl < kSuperlanes; ++sl) {
        const Vec320 src = sl % 2 ? pattern(99) : pattern(10);
        for (int b = 0; b < kWordBytes; ++b) {
            EXPECT_EQ(g.bytes[static_cast<std::size_t>(
                          sl * kWordBytes + b)],
                      src.bytes[static_cast<std::size_t>(
                          sl * kWordBytes + b)]);
        }
    }
}

TEST(MemSlice, ScatterWritesPerTileAddresses)
{
    MemSlice m(Hemisphere::West, 6, true);
    std::array<MemAddr, kSuperlanes> addrs;
    for (int sl = 0; sl < kSuperlanes; ++sl)
        addrs[static_cast<std::size_t>(sl)] =
            static_cast<MemAddr>(0x300 + sl);
    const Vec320 v = pattern(42);
    m.scatter(addrs, v, 8);
    for (int sl = 0; sl < kSuperlanes; ++sl) {
        const Vec320 back = m.backdoorRead(
            static_cast<MemAddr>(0x300 + sl));
        for (int b = 0; b < kWordBytes; ++b) {
            EXPECT_EQ(back.bytes[static_cast<std::size_t>(
                          sl * kWordBytes + b)],
                      v.bytes[static_cast<std::size_t>(
                          sl * kWordBytes + b)]);
        }
    }
}

TEST(MemSlice, InjectedBitFlipTravelsWithStoredEcc)
{
    MemSlice m(Hemisphere::East, 7, true);
    m.backdoorWrite(0x40, pattern(5));
    m.injectBitFlip(0x40, /*byte=*/33, /*bit=*/2);
    // The read forwards the stored (stale) ECC; a consumer-side
    // check corrects the flip.
    Vec320 r = m.read(0x40, 11);
    EXPECT_EQ(eccCheckVec(r), EccStatus::Corrected);
    EXPECT_EQ(r.bytes, pattern(5).bytes);
}

TEST(MemSlice, WriteCountsCorrectedStreamErrors)
{
    MemSlice m(Hemisphere::East, 8, true);
    Vec320 v = pattern(3);
    v.bytes[5] ^= 0x1; // Simulated datapath upset after ECC gen.
    m.write(0x50, v, 2);
    EXPECT_EQ(m.correctedErrors(), 1u);
    EXPECT_EQ(m.backdoorRead(0x50).bytes, pattern(3).bytes);
}

} // namespace
} // namespace tsp
