/**
 * @file
 * VXM ALU semantics: saturating vs modulo arithmetic (the paper's
 * stateless exception handling, III.C), activation functions, the
 * rounding shift, and conversions — element-level and through the
 * full VxmUnit stream path.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/config.hh"
#include "mem/ecc.hh"
#include "stream/fabric.hh"
#include "vxm/alu_ops.hh"
#include "vxm/vxm_unit.hh"

namespace tsp {
namespace {

LaneValue
iv(std::int64_t x)
{
    LaneValue v;
    v.i = x;
    return v;
}

LaneValue
fv(float x)
{
    LaneValue v;
    v.f = x;
    return v;
}

TEST(AluOps, SaturatingVsModulo)
{
    // int8: 100 + 100 wraps to -56, saturates to 127.
    EXPECT_EQ(aluBinary(Opcode::Add, DType::Int8, iv(100), iv(100)).i,
              -56);
    EXPECT_EQ(
        aluBinary(Opcode::AddSat, DType::Int8, iv(100), iv(100)).i,
        127);
    EXPECT_EQ(
        aluBinary(Opcode::SubSat, DType::Int8, iv(-100), iv(100)).i,
        -128);
    EXPECT_EQ(
        aluBinary(Opcode::MulSat, DType::Int8, iv(50), iv(50)).i,
        127);
    EXPECT_EQ(aluBinary(Opcode::Mul, DType::Int8, iv(50), iv(50)).i,
              static_cast<std::int8_t>(2500));
    // int32 saturation.
    EXPECT_EQ(aluBinary(Opcode::AddSat, DType::Int32,
                        iv(2'000'000'000), iv(2'000'000'000))
                  .i,
              2'147'483'647);
}

TEST(AluOps, MinMaxNegAbsMaskRelu)
{
    EXPECT_EQ(aluBinary(Opcode::Max, DType::Int8, iv(-3), iv(9)).i, 9);
    EXPECT_EQ(aluBinary(Opcode::Min, DType::Int8, iv(-3), iv(9)).i,
              -3);
    EXPECT_EQ(aluUnary(Opcode::Neg, DType::Int8, iv(7), 0).i, -7);
    EXPECT_EQ(aluUnary(Opcode::Abs, DType::Int8, iv(-7), 0).i, 7);
    EXPECT_EQ(aluUnary(Opcode::Abs, DType::Int8, iv(-128), 0).i,
              127); // |INT8_MIN| saturates.
    EXPECT_EQ(aluBinary(Opcode::Mask, DType::Int8, iv(5), iv(0)).i, 0);
    EXPECT_EQ(aluBinary(Opcode::Mask, DType::Int8, iv(5), iv(1)).i, 5);
    EXPECT_EQ(aluUnary(Opcode::Relu, DType::Int8, iv(-4), 0).i, 0);
    EXPECT_EQ(aluUnary(Opcode::Relu, DType::Int8, iv(4), 0).i, 4);
}

TEST(AluOps, FloatActivations)
{
    EXPECT_FLOAT_EQ(aluUnary(Opcode::Tanh, DType::Fp32, fv(0.5f), 0).f,
                    std::tanh(0.5f));
    EXPECT_FLOAT_EQ(aluUnary(Opcode::Exp, DType::Fp32, fv(1.0f), 0).f,
                    std::exp(1.0f));
    EXPECT_FLOAT_EQ(
        aluUnary(Opcode::Rsqrt, DType::Fp32, fv(4.0f), 0).f, 0.5f);
}

TEST(AluOps, RoundingShift)
{
    // Round-half-away-from-zero arithmetic shift.
    EXPECT_EQ(aluUnary(Opcode::Shift, DType::Int32, iv(5), 1).i, 3);
    EXPECT_EQ(aluUnary(Opcode::Shift, DType::Int32, iv(4), 1).i, 2);
    EXPECT_EQ(aluUnary(Opcode::Shift, DType::Int32, iv(-5), 1).i,
              -3); // -2.5 rounds away from zero.
    EXPECT_EQ(aluUnary(Opcode::Shift, DType::Int32, iv(100), 4).i, 6);
    EXPECT_EQ(aluUnary(Opcode::Shift, DType::Int32, iv(7), 0).i, 7);
}

TEST(AluOps, ConvertSaturatesAndRounds)
{
    // fp32 -> int8: round-to-nearest-even then saturate.
    EXPECT_EQ(aluConvert(DType::Fp32, DType::Int8, fv(2.5f)).i, 2);
    EXPECT_EQ(aluConvert(DType::Fp32, DType::Int8, fv(3.5f)).i, 4);
    EXPECT_EQ(aluConvert(DType::Fp32, DType::Int8, fv(-2.5f)).i, -2);
    EXPECT_EQ(aluConvert(DType::Fp32, DType::Int8, fv(300.0f)).i,
              127);
    EXPECT_EQ(aluConvert(DType::Fp32, DType::Int8, fv(-300.0f)).i,
              -128);
    // int32 -> fp32 widens exactly for small values.
    EXPECT_FLOAT_EQ(
        aluConvert(DType::Int32, DType::Fp32, iv(12345)).f, 12345.0f);
    // int32 -> int8 narrows with saturation.
    EXPECT_EQ(aluConvert(DType::Int32, DType::Int8, iv(1000)).i, 127);
    // fp32 -> fp16 snaps to the fp16 grid.
    const float v = 1.0009765625f; // 1 + 2^-10: exactly fp16.
    EXPECT_EQ(aluConvert(DType::Fp32, DType::Fp16, fv(v)).f, v);
}

TEST(AluOps, LaneLoadStoreRoundTrip)
{
    std::uint8_t bytes[4];
    for (const std::int64_t x : {-128ll, -1ll, 0ll, 127ll}) {
        laneStore(bytes, DType::Int8, iv(x));
        EXPECT_EQ(laneLoad(bytes, DType::Int8).i, x);
    }
    for (const std::int64_t x : {-2'000'000'000ll, 70'000ll}) {
        laneStore(bytes, DType::Int32, iv(x));
        EXPECT_EQ(laneLoad(bytes, DType::Int32).i, x);
    }
    laneStore(bytes, DType::Fp32, fv(3.25f));
    EXPECT_FLOAT_EQ(laneLoad(bytes, DType::Fp32).f, 3.25f);
    laneStore(bytes, DType::Fp16, fv(1.5f));
    EXPECT_FLOAT_EQ(laneLoad(bytes, DType::Fp16).f, 1.5f);
}

/** Full-unit test: an int32 add over stream groups. */
TEST(VxmUnit, StreamGroupAdd)
{
    ChipConfig cfg;
    StreamFabric fabric;
    VxmUnit vxm(cfg, fabric);

    // Build two int32 operand groups visible at the VXM now.
    Vec320 a[4], b[4];
    for (int lane = 0; lane < kLanes; ++lane) {
        const std::int32_t av = lane * 1000 - 7;
        const std::int32_t bv = 5 - lane;
        for (int k = 0; k < 4; ++k) {
            a[k].bytes[static_cast<std::size_t>(lane)] =
                static_cast<std::uint8_t>(
                    (static_cast<std::uint32_t>(av) >> (8 * k)) &
                    0xff);
            b[k].bytes[static_cast<std::size_t>(lane)] =
                static_cast<std::uint8_t>(
                    (static_cast<std::uint32_t>(bv) >> (8 * k)) &
                    0xff);
        }
    }
    for (int k = 0; k < 4; ++k) {
        eccComputeVec(a[k]);
        eccComputeVec(b[k]);
        fabric.write({static_cast<StreamId>(0 + k), Direction::East},
                     Layout::vxm, a[k]);
        fabric.write({static_cast<StreamId>(4 + k), Direction::East},
                     Layout::vxm, b[k]);
    }

    Instruction inst;
    inst.op = Opcode::AddSat;
    inst.dtype = DType::Int32;
    inst.srcA = {0, Direction::East};
    inst.srcB = {4, Direction::East};
    inst.dst = {8, Direction::West};
    vxm.execute(inst, /*alu=*/0, fabric.now());

    fabric.advance(); // Result visible at now + 1.
    Vec320 out[4];
    for (int k = 0; k < 4; ++k) {
        const Vec320 *p = fabric.peek(
            {static_cast<StreamId>(8 + k), Direction::West},
            Layout::vxm);
        ASSERT_NE(p, nullptr) << k;
        out[k] = *p;
    }
    for (int lane = 0; lane < kLanes; ++lane) {
        std::uint32_t u = 0;
        for (int k = 0; k < 4; ++k) {
            u |= static_cast<std::uint32_t>(
                     out[k].bytes[static_cast<std::size_t>(lane)])
                 << (8 * k);
        }
        EXPECT_EQ(static_cast<std::int32_t>(u),
                  (lane * 1000 - 7) + (5 - lane))
            << lane;
    }
    EXPECT_EQ(vxm.laneOps(), static_cast<std::uint64_t>(kLanes));
}

TEST(VxmUnitDeath, MisalignedGroupPanics)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ChipConfig cfg;
        cfg.strictStreams = false;
        StreamFabric fabric;
        VxmUnit vxm(cfg, fabric);
        Instruction inst;
        inst.op = Opcode::Add;
        inst.dtype = DType::Int32;
        inst.srcA = {1, Direction::East}; // Not 4-aligned.
        inst.srcB = {4, Direction::East};
        inst.dst = {8, Direction::East};
        vxm.execute(inst, 0, 0);
    };
    ASSERT_DEATH(body(), "aligned");
}

TEST(VxmUnitDeath, MissingOperandPanicsInStrictMode)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const auto body = [] {
        ChipConfig cfg; // strictStreams defaults true.
        StreamFabric fabric;
        VxmUnit vxm(cfg, fabric);
        Instruction inst;
        inst.op = Opcode::Relu;
        inst.dtype = DType::Int8;
        inst.srcA = {0, Direction::East};
        inst.dst = {1, Direction::East};
        vxm.execute(inst, 0, 0);
    };
    ASSERT_DEATH(body(), "no value flowing");
}

} // namespace
} // namespace tsp
