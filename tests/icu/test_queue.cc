/**
 * @file
 * Instruction queue semantics: NOP delay precision, Repeat re-issue,
 * Sync/Notify barrier timing (35 cycles, paper III.A.2), and MEM
 * dual-issue via the co-issue flag.
 */

#include <gtest/gtest.h>

#include "icu/queue.hh"

namespace tsp {
namespace {

Instruction
readInst(MemAddr a)
{
    Instruction i;
    i.op = Opcode::Read;
    i.addr = a;
    i.dst = {0, Direction::East};
    return i;
}

Instruction
nop(std::uint32_t n)
{
    Instruction i;
    i.op = Opcode::Nop;
    i.imm0 = n;
    return i;
}

/** Ticks the queue once; returns the dispatched count. */
int
tick(InstructionQueue &q, Cycle now, const Instruction *out[2])
{
    out[0] = out[1] = nullptr;
    return q.tick(now, out);
}

TEST(Queue, NopDelaysExactly)
{
    BarrierController barrier;
    InstructionQueue q(IcuId::mem(Hemisphere::East, 0), barrier);
    q.loadProgram({readInst(1), nop(5), readInst(2)});

    const Instruction *out[2];
    EXPECT_EQ(tick(q, 0, out), 1);
    EXPECT_EQ(out[0]->addr, 1u);
    // Cycles 1..5: the NOP retires at 1 and gates until 6.
    for (Cycle t = 1; t <= 5; ++t)
        EXPECT_EQ(tick(q, t, out), 0) << t;
    EXPECT_EQ(tick(q, 6, out), 1);
    EXPECT_EQ(out[0]->addr, 2u);
    EXPECT_TRUE(q.done());
}

TEST(Queue, BackToBackDispatch)
{
    BarrierController barrier;
    InstructionQueue q(IcuId::mem(Hemisphere::East, 1), barrier);
    q.loadProgram({readInst(1), readInst(2), readInst(3)});
    const Instruction *out[2];
    for (Cycle t = 0; t < 3; ++t) {
        ASSERT_EQ(tick(q, t, out), 1);
        EXPECT_EQ(out[0]->addr, t + 1);
    }
    EXPECT_TRUE(q.done());
    EXPECT_EQ(q.dispatched(), 3u);
}

TEST(Queue, RepeatReissuesPrevious)
{
    BarrierController barrier;
    InstructionQueue q(IcuId::mem(Hemisphere::West, 0), barrier);
    Instruction rep;
    rep.op = Opcode::Repeat;
    rep.imm0 = 3; // Three more issues...
    rep.imm1 = 2; // ...two cycles apart.
    q.loadProgram({readInst(9), rep});

    const Instruction *out[2];
    EXPECT_EQ(tick(q, 0, out), 1); // Original at cycle 0.
    // First iteration fires at the Repeat's dispatch, then every
    // d = 2 cycles: cycles 1, 3, 5.
    EXPECT_EQ(tick(q, 1, out), 1);
    EXPECT_EQ(out[0]->addr, 9u);
    EXPECT_EQ(tick(q, 2, out), 0);
    EXPECT_EQ(tick(q, 3, out), 1);
    EXPECT_EQ(tick(q, 4, out), 0);
    EXPECT_EQ(tick(q, 5, out), 1);
    EXPECT_TRUE(q.done());
    EXPECT_EQ(q.dispatched(), 4u);
}

TEST(Queue, SyncParksUntilNotify)
{
    BarrierController barrier;
    InstructionQueue q(IcuId::vxmAlu(0), barrier);
    Instruction sync;
    sync.op = Opcode::Sync;
    q.loadProgram({sync, readInst(5)});

    const Instruction *out[2];
    EXPECT_EQ(tick(q, 0, out), 0);
    EXPECT_TRUE(q.parked());
    for (Cycle t = 1; t < 10; ++t)
        EXPECT_EQ(tick(q, t, out), 0);

    barrier.notify(10);
    // Broadcast arrives at 10 + 35 = 45 (paper: 35-cycle barrier).
    EXPECT_EQ(tick(q, 44, out), 0);
    EXPECT_TRUE(q.parked());
    EXPECT_EQ(tick(q, 45, out), 1);
    EXPECT_EQ(out[0]->addr, 5u);
    EXPECT_FALSE(q.parked());
}

TEST(Queue, MissedBroadcastWaitsForNext)
{
    BarrierController barrier;
    barrier.notify(0); // Arrives at 35.
    InstructionQueue q(IcuId::vxmAlu(1), barrier);
    Instruction sync;
    sync.op = Opcode::Sync;
    q.loadProgram({sync, readInst(1)});

    const Instruction *out[2];
    // Parks at cycle 40, after the broadcast passed: must wait for a
    // new Notify.
    EXPECT_EQ(tick(q, 40, out), 0);
    EXPECT_EQ(tick(q, 50, out), 0);
    barrier.notify(60);
    EXPECT_EQ(tick(q, 94, out), 0);
    EXPECT_EQ(tick(q, 95, out), 1);
}

TEST(Queue, CoIssueDispatchesPairTogether)
{
    BarrierController barrier;
    InstructionQueue q(IcuId::mem(Hemisphere::East, 2), barrier);
    Instruction rd = readInst(0x10);
    Instruction wr;
    wr.op = Opcode::Write;
    wr.addr = 0x1010;
    wr.srcA = {1, Direction::East};
    wr.flags |= Instruction::kFlagCoIssue;
    q.loadProgram({rd, wr, readInst(0x20)});

    const Instruction *out[2];
    EXPECT_EQ(tick(q, 0, out), 2);
    EXPECT_EQ(out[0]->op, Opcode::Read);
    EXPECT_EQ(out[1]->op, Opcode::Write);
    EXPECT_EQ(tick(q, 1, out), 1);
    EXPECT_EQ(out[0]->addr, 0x20u);
}

TEST(Queue, StatsTrackNopAndParkCycles)
{
    BarrierController barrier;
    InstructionQueue q(IcuId::vxmAlu(2), barrier);
    q.loadProgram({nop(3), readInst(1)});
    const Instruction *out[2];
    for (Cycle t = 0; t <= 3; ++t)
        tick(q, t, out);
    EXPECT_EQ(q.nopCycles(), 3u); // Dispatch cycle + 2 gated.
    EXPECT_EQ(q.dispatched(), 1u);
}

TEST(Queue, NextEventCycleMirrorsTickStates)
{
    BarrierController barrier;
    InstructionQueue q(IcuId::mem(Hemisphere::East, 4), barrier);
    Instruction sync;
    sync.op = Opcode::Sync;
    q.loadProgram({nop(10), readInst(1), sync, readInst(2)});

    const Instruction *out[2];
    // Ready instruction: the event is now.
    EXPECT_EQ(q.nextEventCycle(0), Cycle{0});
    tick(q, 0, out); // NOP; idle until 10.
    EXPECT_EQ(q.nextEventCycle(1), Cycle{10});
    EXPECT_EQ(q.nextEventCycle(9), Cycle{10});
    tick(q, 10, out); // Read dispatches.
    tick(q, 11, out); // Sync parks; no broadcast pending.
    EXPECT_TRUE(q.parked());
    EXPECT_EQ(q.nextEventCycle(12), kNoEventCycle);
    barrier.notify(20); // Release at 55.
    EXPECT_EQ(q.nextEventCycle(12), Cycle{55});
    tick(q, 55, out); // Unparks and dispatches.
    EXPECT_EQ(tick(q, 56, out), 0);
    EXPECT_TRUE(q.done());
    EXPECT_EQ(q.nextEventCycle(57), kNoEventCycle);
}

TEST(Queue, NextEventCycleTracksRepeatGaps)
{
    BarrierController barrier;
    InstructionQueue q(IcuId::mem(Hemisphere::West, 7), barrier);
    Instruction rep;
    rep.op = Opcode::Repeat;
    rep.imm0 = 2;
    rep.imm1 = 4;
    q.loadProgram({readInst(3), rep});

    const Instruction *out[2];
    tick(q, 0, out); // Original read.
    tick(q, 1, out); // Repeat dispatches; first re-issue fires.
    // One re-issue left, due at 5.
    EXPECT_EQ(q.nextEventCycle(2), Cycle{5});
    EXPECT_EQ(q.nextEventCycle(4), Cycle{5});
    tick(q, 5, out);
    EXPECT_TRUE(q.done());
}

TEST(Queue, SkipIdleCreditsCountersLikePerCycleTicks)
{
    // Two identical queues: one ticked per cycle through an idle
    // span, one fast-forwarded with skipIdle. Counters must match.
    BarrierController barrier;
    InstructionQueue slow(IcuId::mem(Hemisphere::East, 5), barrier);
    InstructionQueue fast(IcuId::mem(Hemisphere::East, 6), barrier);
    const std::vector<Instruction> prog{nop(50), readInst(1)};
    slow.loadProgram(prog);
    fast.loadProgram(prog);

    const Instruction *out[2];
    tick(slow, 0, out);
    tick(fast, 0, out);
    for (Cycle t = 1; t < 50; ++t)
        tick(slow, t, out);
    fast.skipIdle(1, 50);
    EXPECT_EQ(fast.nopCycles(), slow.nopCycles());
    tick(slow, 50, out);
    tick(fast, 50, out);
    EXPECT_EQ(fast.dispatched(), slow.dispatched());
    EXPECT_TRUE(slow.done());
    EXPECT_TRUE(fast.done());
}

TEST(Barrier, ReleaseTimeSemantics)
{
    BarrierController b;
    EXPECT_FALSE(b.releaseTime(0).has_value());
    b.notify(100);
    ASSERT_TRUE(b.releaseTime(100).has_value());
    EXPECT_EQ(*b.releaseTime(100), 135u);
    EXPECT_EQ(*b.releaseTime(0), 135u);
    // A Sync parked after the broadcast misses it.
    EXPECT_FALSE(b.releaseTime(136).has_value());
    b.notify(200);
    EXPECT_EQ(*b.releaseTime(136), 235u);
}

TEST(Barrier, PruneDropsOnlyUnreachableBroadcasts)
{
    BarrierController b;
    b.notify(0);   // Arrives 35.
    b.notify(100); // Arrives 135.
    b.notify(200); // Arrives 235.
    EXPECT_EQ(b.notifyCount(), 3u);

    // A queue parked at 120 still needs the 135 arrival; pruning with
    // that floor drops only the cycle-35 broadcast.
    b.prune(120);
    EXPECT_EQ(b.notifyCount(), 2u);
    EXPECT_EQ(b.totalNotifies(), 3u);
    ASSERT_TRUE(b.releaseTime(120).has_value());
    EXPECT_EQ(*b.releaseTime(120), 135u);
    EXPECT_EQ(*b.releaseTime(150), 235u);

    // Nothing parked, clock at 300: every past broadcast is useless
    // for present *and* future Syncs except the one arriving >= 265.
    b.prune(300);
    EXPECT_EQ(b.notifyCount(), 0u);
    EXPECT_EQ(b.totalNotifies(), 3u);
    EXPECT_FALSE(b.releaseTime(300).has_value());
}

TEST(Barrier, ClearForgetsBroadcasts)
{
    BarrierController b;
    b.notify(10);
    ASSERT_TRUE(b.releaseTime(10).has_value());
    b.clear();
    EXPECT_FALSE(b.releaseTime(10).has_value());
    EXPECT_EQ(b.notifyCount(), 0u);
}

TEST(Barrier, NotifiesStayBoundedUnderSteadyTraffic)
{
    // The regression the prune exists for: a long-running serving
    // loop issuing a Notify per request must not accumulate
    // broadcasts without bound.
    BarrierController b;
    for (Cycle t = 0; t < 10'000; ++t) {
        b.notify(t * 100);
        b.prune(t * 100); // Nothing parked: floor = current cycle.
    }
    EXPECT_EQ(b.totalNotifies(), 10'000u);
    EXPECT_LE(b.notifyCount(), 2u);
}

} // namespace
} // namespace tsp
