/**
 * @file
 * The groq.api-style facade: Listing 1's streaming add, ReLU
 * chaining, Listing 2's transpose16, and the staged-copy fallback
 * when both operands share a slice region.
 */

#include <gtest/gtest.h>

#include "api/stream_api.hh"
#include "common/rng.hh"

namespace tsp::api {
namespace {

TEST(Api, StreamingAddMatchesHostMath)
{
    Program p;
    const int rows = 48;
    TensorHandle x = p.randomTensor(rows, 1);
    TensorHandle y = p.randomTensor(rows, 2);
    TensorHandle z = p.add(x, y);
    const RunInfo info = p.run();
    EXPECT_GT(info.cycles, 0u);

    const auto xv = p.read(x);
    const auto yv = p.read(y);
    const auto zv = p.read(z);
    for (std::size_t i = 0; i < zv.size(); ++i) {
        const int sum = int(xv[i]) + int(yv[i]);
        const int want = std::clamp(sum, -128, 127);
        ASSERT_EQ(int(zv[i]), want) << i;
    }
}

TEST(Api, ReluChain)
{
    Program p;
    TensorHandle x = p.randomTensor(16, 5);
    TensorHandle y = p.relu(x);
    p.run();
    const auto xv = p.read(x);
    const auto yv = p.read(y);
    for (std::size_t i = 0; i < yv.size(); ++i)
        EXPECT_EQ(int(yv[i]), std::max(0, int(xv[i])));
}

TEST(Api, Transpose16SwapsRowAndLaneWithinSuperlanes)
{
    Program p;
    const int rows = 16;
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(rows) * kLanes);
    for (int r = 0; r < rows; ++r) {
        for (int l = 0; l < kLanes; ++l) {
            data[static_cast<std::size_t>(r) * kLanes + l] =
                static_cast<std::int8_t>((r * 16 + l) & 0x7f);
        }
    }
    TensorHandle x = p.tensor(rows);
    p.setData(x, data);
    TensorHandle z = p.transpose16(x);
    p.run();
    const auto zv = p.read(z);
    // out[row k][lane 16s + j] == in[row j][lane 16s + k].
    for (int k = 0; k < 16; ++k) {
        for (int sl = 0; sl < kSuperlanes; ++sl) {
            for (int j = 0; j < 16; ++j) {
                const auto got =
                    zv[static_cast<std::size_t>(k) * kLanes +
                       sl * 16 + j];
                const auto want =
                    data[static_cast<std::size_t>(j) * kLanes +
                         sl * 16 + k];
                ASSERT_EQ(got, want) << k << "," << sl << "," << j;
            }
        }
    }
}

TEST(Api, SameRegionOperandsAreStaged)
{
    Program p;
    TensorHandle x = p.randomTensor(8, 1); // Region 0.
    p.tensor(8);                           // Region 1 filler.
    TensorHandle y = p.randomTensor(8, 2); // Region 0 again.
    TensorHandle z = p.add(x, y);
    p.run();
    const auto xv = p.read(x);
    const auto yv = p.read(y);
    const auto zv = p.read(z);
    for (std::size_t i = 0; i < zv.size(); ++i) {
        const int want =
            std::clamp(int(xv[i]) + int(yv[i]), -128, 127);
        ASSERT_EQ(int(zv[i]), want);
    }
}

TEST(Api, DeterministicCycleCount)
{
    Cycle first = 0;
    for (int run = 0; run < 2; ++run) {
        Program p;
        TensorHandle x = p.randomTensor(32, 3);
        TensorHandle y = p.randomTensor(32, 4);
        p.add(x, y);
        const RunInfo info = p.run();
        if (run == 0)
            first = info.cycles;
        EXPECT_EQ(info.cycles, first);
    }
}

} // namespace
} // namespace tsp::api
