/**
 * @file
 * Fleet controller and soak-driver behavior: the autoscaler's
 * hysteresis state machine, deterministic soak time series (byte-
 * identical JSON across same-seed runs, faults live), exact
 * fleet-level shedding, pod draining semantics, and the windowed
 * time-series bookkeeping.
 */

#include <gtest/gtest.h>

#include <memory>

#include "fleet/autoscaler.hh"
#include "fleet/fleet.hh"
#include "fleet/soak.hh"
#include "serve/backend.hh"

namespace tsp {
namespace {

using fleet::Autoscaler;
using fleet::AutoscalerConfig;
using fleet::AutoscalerSignal;
using fleet::Fleet;
using fleet::FleetConfig;
using fleet::PodState;
using fleet::ScaleDecision;
using fleet::SoakTimeSeries;

// ---------------------------------------------------------------
// Autoscaler state machine (pure unit tests).
// ---------------------------------------------------------------

AutoscalerConfig
scalerConfig()
{
    AutoscalerConfig cfg;
    cfg.minPods = 1;
    cfg.maxPods = 4;
    cfg.scaleUpBacklogSec = 1.0;
    cfg.scaleDownBacklogSec = 0.1;
    cfg.scaleUpShedFrac = 0.01;
    cfg.upWindows = 2;
    cfg.downWindows = 3;
    return cfg;
}

TEST(Autoscaler, UpNeedsConsecutivePressuredWindows)
{
    Autoscaler s(scalerConfig());
    const AutoscalerSignal hot{2.0, 0.0};
    const AutoscalerSignal quiet{0.5, 0.0};
    EXPECT_EQ(s.evaluate(hot, 1, 0), ScaleDecision::Hold);
    // A calm window resets the streak.
    EXPECT_EQ(s.evaluate(quiet, 1, 0), ScaleDecision::Hold);
    EXPECT_EQ(s.evaluate(hot, 1, 0), ScaleDecision::Hold);
    EXPECT_EQ(s.evaluate(hot, 1, 0), ScaleDecision::Up);
    // The decision itself resets the streak (cooldown).
    EXPECT_EQ(s.evaluate(hot, 2, 0), ScaleDecision::Hold);
}

TEST(Autoscaler, ShedFractionAlonePressures)
{
    Autoscaler s(scalerConfig());
    const AutoscalerSignal shedding{0.0, 0.5};
    EXPECT_EQ(s.evaluate(shedding, 1, 0), ScaleDecision::Hold);
    EXPECT_EQ(s.evaluate(shedding, 1, 0), ScaleDecision::Up);
}

TEST(Autoscaler, DownNeedsIdleStreakAndRespectsFloor)
{
    Autoscaler s(scalerConfig());
    const AutoscalerSignal idle{0.0, 0.0};
    EXPECT_EQ(s.evaluate(idle, 2, 0), ScaleDecision::Hold);
    EXPECT_EQ(s.evaluate(idle, 2, 0), ScaleDecision::Hold);
    EXPECT_EQ(s.evaluate(idle, 2, 0), ScaleDecision::Down);
    // At the floor no drain is ever issued.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(s.evaluate(idle, 1, 0), ScaleDecision::Hold);
}

TEST(Autoscaler, CeilingAndProvisioningBlockScaling)
{
    Autoscaler s(scalerConfig());
    const AutoscalerSignal hot{5.0, 0.2};
    // At max pods (counting in-flight launches), never scale up.
    EXPECT_EQ(s.evaluate(hot, 3, 1), ScaleDecision::Hold);
    EXPECT_EQ(s.evaluate(hot, 3, 1), ScaleDecision::Hold);
    // A pod in provisioning also blocks a drain decision.
    Autoscaler s2(scalerConfig());
    const AutoscalerSignal idle{0.0, 0.0};
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(s2.evaluate(idle, 2, 1), ScaleDecision::Hold);
}

TEST(Autoscaler, MidSignalHoldsAndResetsDownStreak)
{
    Autoscaler s(scalerConfig());
    const AutoscalerSignal idle{0.0, 0.0};
    const AutoscalerSignal mid{0.5, 0.0}; // Neither hot nor idle.
    EXPECT_EQ(s.evaluate(idle, 2, 0), ScaleDecision::Hold);
    EXPECT_EQ(s.evaluate(idle, 2, 0), ScaleDecision::Hold);
    EXPECT_EQ(s.evaluate(mid, 2, 0), ScaleDecision::Hold);
    // The mid window broke the idle streak: two more needed.
    EXPECT_EQ(s.evaluate(idle, 2, 0), ScaleDecision::Hold);
    EXPECT_EQ(s.evaluate(idle, 2, 0), ScaleDecision::Hold);
    EXPECT_EQ(s.evaluate(idle, 2, 0), ScaleDecision::Down);
}

// ---------------------------------------------------------------
// Fleet controller over real pod backends.
// ---------------------------------------------------------------

constexpr int kChips = 2;
constexpr Cycle kWire = 17;

FleetConfig
fleetConfig(int pods)
{
    ChipConfig chip;
    FleetConfig fc;
    fc.initialPods = pods;
    fc.cyclesByBatch = serve::PodBackend::serviceCyclesTable(
        kChips, kWire, chip, 1);
    fc.makeBackend = [chip](int, int) {
        return std::make_unique<serve::PodBackend>(kChips, kWire,
                                                   chip, 1);
    };
    fc.windowSec = 0.001;
    fc.server.workers = 1;
    return fc;
}

std::vector<std::int8_t>
podInput()
{
    return std::vector<std::int8_t>(
        serve::PodBackend::inputBytes(kChips), 1);
}

TEST(Fleet, ShedsProvablyLateRequestZeroCycles)
{
    SoakTimeSeries ts(0.001, 1e-3);
    FleetConfig fc = fleetConfig(1);
    const double service =
        static_cast<double>(fc.cyclesByBatch[0]) * 1e-9;
    Fleet fleet(fc, ts);

    // Deadline equal to the arrival stamp: completion is provably
    // at least arrival + service, so the fleet must shed without
    // booking a cycle anywhere.
    fleet.submit(podInput(), 1e-6, 1e-6);
    EXPECT_EQ(fleet.shedCount(), 1u);
    EXPECT_EQ(ts.totalShed(), 1u);
    EXPECT_EQ(fleet.totalBacklogSec(0.0), 0.0);

    // A zero deadline means "no deadline": never shed, always
    // served.
    fleet.submit(podInput(), 2e-6, 0.0);
    // And a feasible deadline routes normally.
    fleet.submit(podInput(), 3e-6, 3e-6 + 4.0 * service);
    fleet.drainAll();
    EXPECT_EQ(fleet.shedCount(), 1u);
    EXPECT_EQ(ts.totalServed(), 2u);
    EXPECT_EQ(ts.totalSubmitted(), 3u);
}

TEST(Fleet, RoutesToEarliestCompletionPod)
{
    SoakTimeSeries ts(0.001, 1e-3);
    FleetConfig fc = fleetConfig(2);
    const double service =
        static_cast<double>(fc.cyclesByBatch[0]) * 1e-9;
    Fleet fleet(fc, ts);

    // Same arrival stamp: the second submit must land on the other
    // (idle) pod, because pod 0 is already booked through
    // arrival + service.
    fleet.submit(podInput(), 1e-6, 0.0);
    fleet.submit(podInput(), 1e-6, 0.0);
    EXPECT_GT(fleet.podServer(0).admission().backlogSec(1e-6), 0.0);
    EXPECT_GT(fleet.podServer(1).admission().backlogSec(1e-6), 0.0);
    EXPECT_NEAR(fleet.totalBacklogSec(1e-6), 2.0 * service,
                service * 0.01);
    fleet.drainAll();
    EXPECT_EQ(ts.totalServed(), 2u);
}

TEST(Fleet, DrainedPodStopsRoutingAndRetires)
{
    SoakTimeSeries ts(0.01, 1e-3);
    FleetConfig fc = fleetConfig(2);
    fc.windowSec = 0.01;
    fc.autoscaler.minPods = 1;
    fc.autoscaler.maxPods = 2;
    fc.autoscaler.downWindows = 1;
    fc.autoscaler.scaleUpBacklogSec = 2.0;
    fc.autoscaler.scaleDownBacklogSec = 1.0; // Everything is idle.
    Fleet fleet(fc, ts);
    EXPECT_EQ(fleet.activePods(), 2);

    // Crossing one idle window boundary must start a drain; the
    // drained pod's booking is empty so it retires at the same
    // boundary.
    fleet.advanceTo(0.011);
    EXPECT_EQ(fleet.activePods(), 1);
    EXPECT_EQ(fleet.podsRetired(), 1);

    // All subsequent traffic lands on the surviving pod.
    const auto &survivor = fleet.podInfo(0).state == PodState::Active
                               ? fleet.podServer(0)
                               : fleet.podServer(1);
    const auto &victim = fleet.podInfo(0).state == PodState::Active
                             ? fleet.podServer(1)
                             : fleet.podServer(0);
    for (int i = 0; i < 5; ++i)
        fleet.submit(podInput(), 0.011 + i * 1e-6, 0.0);
    fleet.drainAll();
    EXPECT_EQ(
        survivor.metricsSnapshot().counters().get("submitted"), 5u);
    EXPECT_EQ(victim.metricsSnapshot().counters().get("submitted"),
              0u);
    EXPECT_EQ(ts.totalServed(), 5u);
}

TEST(Fleet, DrainSealsOpenBatchOnVictim)
{
    // A pod with an *open* (unsealed) batch that starts draining
    // must still complete that batch: flushOpenBatch() at drain
    // start seals it without waiting for traffic that will never
    // arrive.
    SoakTimeSeries ts(0.01, 1e-3);
    ChipConfig chip;
    FleetConfig fc;
    fc.initialPods = 2;
    fc.cyclesByBatch = serve::PodBackend::serviceCyclesTable(
        kChips, kWire, chip, 4);
    fc.makeBackend = [chip](int, int) {
        return std::make_unique<serve::PodBackend>(kChips, kWire,
                                                   chip, 4);
    };
    fc.windowSec = 0.01;
    fc.server.workers = 1;
    fc.server.batchMax = 4;
    fc.server.batchWindowSec = 1.0; // Joins effectively always open.
    fc.autoscaler.downWindows = 1;
    fc.autoscaler.scaleUpBacklogSec = 2.0;
    fc.autoscaler.scaleDownBacklogSec = 1.0;
    Fleet fleet(fc, ts);

    // One request each: both pods now hold an open single-member
    // batch (batchMax 4 is never reached, window never expires).
    fleet.submit(podInput(), 1e-6, 0.0);
    fleet.submit(podInput(), 1e-6, 0.0);

    // The boundary drains one pod; its open batch must seal and
    // execute (not deadlock waiting for more members).
    fleet.advanceTo(0.011);
    EXPECT_EQ(fleet.podsRetired(), 1);
    fleet.drainAll();
    EXPECT_EQ(ts.totalServed(), 2u);
}

// ---------------------------------------------------------------
// Soak driver end to end.
// ---------------------------------------------------------------

fleet::SoakConfig
soakConfig()
{
    fleet::SoakConfig cfg;
    cfg.seed = 99;
    cfg.chipsPerPod = 2;
    cfg.wireLatencySec = 17;
    cfg.workersPerPod = 2;
    cfg.initialPods = 2;
    cfg.durationSec = 0.2;
    cfg.windowSec = 0.05;
    cfg.load.rateRps = 20000.0;
    cfg.deadlineSlackSec = 4e-6;
    cfg.fault.memReadRate = 1e-4;
    cfg.fault.memWriteRate = 1e-4;
    cfg.fault.streamRate = 1e-4;
    cfg.fault.c2cRate = 1e-4;
    cfg.fault.doubleBitFraction = 0.2;
    return cfg;
}

TEST(Soak, SameSeedByteIdenticalJsonWithFaultsLive)
{
    const fleet::SoakConfig cfg = soakConfig();
    const fleet::SoakReport a = fleet::runSoak(cfg);
    const fleet::SoakReport b = fleet::runSoak(cfg);
    EXPECT_GT(a.submitted, 1000u);
    EXPECT_EQ(a.json, b.json);
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.machineChecks, b.machineChecks);
}

TEST(Soak, DifferentSeedsProduceDifferentRuns)
{
    fleet::SoakConfig cfg = soakConfig();
    const fleet::SoakReport a = fleet::runSoak(cfg);
    cfg.seed = 100;
    const fleet::SoakReport b = fleet::runSoak(cfg);
    EXPECT_NE(a.json, b.json);
}

TEST(Soak, AccountsEveryRequestExactlyOnce)
{
    // Fault-free run: every submission is either served or shed, so
    // the time series must balance exactly (nothing lost, nothing
    // double-counted). With faults live a retried batch can also
    // land DeadlineMissed/FailedMachineCheck, so the balance is
    // checked without injection.
    fleet::SoakConfig cfg = soakConfig();
    cfg.fault = FaultConfig{};
    const fleet::SoakReport rep = fleet::runSoak(cfg);
    EXPECT_GT(rep.submitted, 1000u);
    EXPECT_EQ(rep.submitted, rep.served + rep.shed);
    EXPECT_GE(rep.availability, 0.9);
}

TEST(Soak, RequestCapStopsTheRun)
{
    fleet::SoakConfig cfg = soakConfig();
    cfg.maxRequests = 500;
    cfg.durationSec = 100.0;
    const fleet::SoakReport rep = fleet::runSoak(cfg);
    EXPECT_EQ(rep.submitted, 500u);
}

// ---------------------------------------------------------------
// Windowed quantile edge cases.
// ---------------------------------------------------------------

TEST(TimeSeries, EmptyWindowQuantilesEmitSentinelNotZero)
{
    // Regression: a window that served nothing used to emit 0.0 in
    // the p50/p99 series — indistinguishable from a legitimately
    // tiny quantile, and read by dashboards as "infinitely fast".
    // The sentinel is -1, a value no real latency can take.
    SoakTimeSeries ts(0.001, 1e-3);
    serve::Result r;
    r.outcome = serve::Outcome::Served;
    r.arrivalSec = 0.0025; // Window 2; windows 0 and 1 stay empty.
    r.startSec = r.arrivalSec;
    r.completionSec = r.arrivalSec + 123e-6;
    ts.recordResult(r);
    ASSERT_EQ(ts.windowCount(), 3u);

    JsonWriter j;
    ts.appendJson(j);
    const std::string json = j.str();
    EXPECT_NE(json.find("\"p50_us\":[-1,-1,"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"p99_us\":[-1,-1,"), std::string::npos)
        << json;
    // The populated window still reports its real quantile.
    EXPECT_EQ(json.find("\"p50_us\":[-1,-1,-1"), std::string::npos)
        << json;
}

TEST(TimeSeries, SingleSampleWindowQuantileIsTheSample)
{
    // One served request in a window: every quantile of a
    // single-sample population is that sample, exactly — the
    // histogram's bucket-midpoint estimate must clamp to the
    // observed range rather than leak bucket geometry.
    SoakTimeSeries ts(0.001, 1e-3);
    serve::Result r;
    r.outcome = serve::Outcome::Served;
    r.arrivalSec = 0.0001;
    r.startSec = r.arrivalSec;
    r.completionSec = r.arrivalSec + 437e-6;
    ts.recordResult(r);

    JsonWriter j;
    ts.appendJson(j);
    const std::string json = j.str();
    const auto p50 = json.find("\"p50_us\":[437");
    const auto p99 = json.find("\"p99_us\":[437");
    EXPECT_NE(p50, std::string::npos) << json;
    EXPECT_NE(p99, std::string::npos) << json;

    // Two identical emissions are byte-identical (determinism).
    JsonWriter j2;
    ts.appendJson(j2);
    EXPECT_EQ(json, j2.str());
}

TEST(TimeSeries, ZeroAndSingleSampleHistogramQuantiles)
{
    // The underlying primitives the series relies on.
    Histogram h(0.0, 1e-3, 64);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0); // Defined, deterministic.
    h.record(437e-6);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.quantile(0.0), 437e-6);
    EXPECT_EQ(h.quantile(0.5), 437e-6);
    EXPECT_EQ(h.quantile(0.99), 437e-6);
    EXPECT_EQ(h.quantile(1.0), 437e-6);
}

} // namespace
} // namespace tsp
