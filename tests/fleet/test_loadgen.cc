/**
 * @file
 * Load-generator determinism and distribution sanity: same-seed
 * streams replay identically (arrivals and payloads), arrival stamps
 * are monotone, and each model's long-run mean rate lands near the
 * configured rate.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fleet/loadgen.hh"

namespace tsp {
namespace {

using fleet::ArrivalModel;
using fleet::LoadGenConfig;
using fleet::LoadGenerator;

LoadGenConfig
configFor(ArrivalModel m, std::uint64_t seed)
{
    LoadGenConfig cfg;
    cfg.model = m;
    cfg.rateRps = 1000.0;
    cfg.seed = seed;
    cfg.inputBytes = 64;
    return cfg;
}

TEST(LoadGen, SameSeedReplaysArrivalsAndPayloads)
{
    for (ArrivalModel m :
         {ArrivalModel::Poisson, ArrivalModel::Bursty,
          ArrivalModel::Diurnal}) {
        LoadGenerator a(configFor(m, 42));
        LoadGenerator b(configFor(m, 42));
        std::vector<std::int8_t> pa, pb;
        for (int i = 0; i < 2000; ++i) {
            EXPECT_DOUBLE_EQ(a.nextArrivalSec(),
                             b.nextArrivalSec())
                << fleet::arrivalModelName(m) << " @" << i;
            a.fillPayload(pa);
            b.fillPayload(pb);
            ASSERT_EQ(pa, pb);
        }
    }
}

TEST(LoadGen, DifferentSeedsDiverge)
{
    LoadGenerator a(configFor(ArrivalModel::Poisson, 1));
    LoadGenerator b(configFor(ArrivalModel::Poisson, 2));
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.nextArrivalSec() == b.nextArrivalSec() ? 1 : 0;
    EXPECT_EQ(equal, 0);
}

TEST(LoadGen, ArrivalsAreMonotone)
{
    for (ArrivalModel m :
         {ArrivalModel::Poisson, ArrivalModel::Bursty,
          ArrivalModel::Diurnal}) {
        LoadGenerator g(configFor(m, 7));
        double prev = 0.0;
        for (int i = 0; i < 5000; ++i) {
            const double t = g.nextArrivalSec();
            EXPECT_GE(t, prev) << fleet::arrivalModelName(m);
            prev = t;
        }
    }
}

TEST(LoadGen, LongRunMeanRateMatchesConfig)
{
    // 50k samples: the sample mean of the arrival rate should land
    // within a few percent of the configured rate for every model
    // (bursty and diurnal modulate the *instantaneous* rate but are
    // constructed to preserve the long-run mean).
    const int n = 50000;
    for (ArrivalModel m :
         {ArrivalModel::Poisson, ArrivalModel::Bursty,
          ArrivalModel::Diurnal}) {
        LoadGenerator g(configFor(m, 11));
        double last = 0.0;
        for (int i = 0; i < n; ++i)
            last = g.nextArrivalSec();
        const double observed = static_cast<double>(n) / last;
        EXPECT_NEAR(observed, 1000.0, 80.0)
            << fleet::arrivalModelName(m);
    }
}

TEST(LoadGen, BurstyActuallyBursts)
{
    // Gap variance under MMPP must exceed Poisson's at equal mean
    // rate (that is the point of the model).
    LoadGenConfig pc = configFor(ArrivalModel::Poisson, 5);
    LoadGenConfig bc = configFor(ArrivalModel::Bursty, 5);
    bc.burstFactor = 8.0;
    bc.burstFraction = 0.1;
    auto gapVariance = [](LoadGenerator &g, int n) {
        double prev = 0.0, sum = 0.0, sum2 = 0.0;
        for (int i = 0; i < n; ++i) {
            const double t = g.nextArrivalSec();
            const double gap = t - prev;
            prev = t;
            sum += gap;
            sum2 += gap * gap;
        }
        const double mean = sum / n;
        return sum2 / n - mean * mean;
    };
    LoadGenerator p(pc), b(bc);
    EXPECT_GT(gapVariance(b, 30000), 1.5 * gapVariance(p, 30000));
}

TEST(LoadGen, PayloadSizedAndDeterministic)
{
    LoadGenConfig cfg = configFor(ArrivalModel::Poisson, 9);
    cfg.inputBytes = 13; // Exercise the non-multiple-of-8 tail.
    LoadGenerator g(cfg);
    std::vector<std::int8_t> p1, p2;
    g.fillPayload(p1);
    g.fillPayload(p2);
    EXPECT_EQ(p1.size(), 13u);
    EXPECT_EQ(p2.size(), 13u);
    EXPECT_NE(p1, p2); // Consecutive payloads differ...
    LoadGenerator h(cfg);
    std::vector<std::int8_t> q1;
    h.fillPayload(q1);
    EXPECT_EQ(p1, q1); // ...but the stream replays per seed.
}

} // namespace
} // namespace tsp
