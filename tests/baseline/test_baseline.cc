/**
 * @file
 * Baseline core and cache hierarchy: hit/miss behavior, the Fig. 3
 * four-instructions-per-element contrast, and the determinism gap
 * (same seed = same cycles; different seeds = different cycles).
 */

#include <gtest/gtest.h>

#include "baseline/core.hh"

namespace tsp::baseline {
namespace {

TEST(Cache, HitsAfterInstall)
{
    Rng rng(1);
    CacheLevel c(CacheLevelConfig{1024, 2, 64, 1}, rng);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1010)); // Same line.
    EXPECT_FALSE(c.access(0x2000));
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, EvictsWhenSetFull)
{
    Rng rng(2);
    // 2 ways x 4 sets x 64 B lines = 512 B.
    CacheLevel c(CacheLevelConfig{512, 2, 64, 1}, rng);
    // Three lines mapping to set 0 (stride = sets * line = 256).
    c.access(0x0000);
    c.access(0x0100);
    c.access(0x0200); // Evicts one of the two.
    const bool first = c.access(0x0000);
    const bool second = c.access(0x0100);
    EXPECT_FALSE(first && second) << "one way must have been evicted";
}

TEST(Hierarchy, LatenciesOrdered)
{
    MemoryHierarchy m(3);
    const auto cold = m.access(0x5000, 4);
    const auto warm = m.access(0x5000, 4);
    EXPECT_GT(cold, warm);
    EXPECT_EQ(warm, m.l1().config().hitLatency);
}

TEST(Core, VectorAddIssuesFourInstructionsPerChunk)
{
    CoreConfig cfg;
    BaselineCore core(cfg);
    const std::size_t elements = 64 * 100;
    const RunResult r = core.runVectorAdd(elements);
    // Fig. 3: LOAD, LOAD, ADD, STORE per SIMD chunk.
    EXPECT_EQ(r.instructions, 4u * (elements / cfg.simdLanes));
    EXPECT_GT(r.cycles, elements / cfg.simdLanes);
}

TEST(Core, SameSeedIsReproducible)
{
    CoreConfig cfg;
    cfg.seed = 7;
    const RunResult a = BaselineCore(cfg).runGemm(32, 64, 64);
    const RunResult b = BaselineCore(cfg).runGemm(32, 64, 64);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Core, DifferentSeedsVaryRunToRun)
{
    // The determinism contrast (paper IV.F): a cache-based part's
    // latency moves run to run; the TSP's does not.
    std::set<std::uint64_t> cycles;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        CoreConfig cfg;
        cfg.seed = seed;
        cycles.insert(BaselineCore(cfg).runGemm(48, 64, 256).cycles);
    }
    EXPECT_GT(cycles.size(), 1u);
}

TEST(Core, BatchingAmortizesWeightTraffic)
{
    const std::vector<BaselineCore::ConvLayerDesc> net = {
        {64 * 64, 1024, 8 * 1024 * 1024},
        {32 * 32, 4096, 16 * 1024 * 1024}};
    CoreConfig cfg;
    const RunResult b1 = BaselineCore(cfg).runConvNet(net, 1);
    const RunResult b8 = BaselineCore(cfg).runConvNet(net, 8);
    // Per-image cost shrinks with batch (the GPU-style regime the
    // TSP's batch-1 story contrasts against).
    EXPECT_LT(static_cast<double>(b8.cycles) / 8.0,
              static_cast<double>(b1.cycles));
}

TEST(ReferenceChips, PaperNumbersPresent)
{
    const auto &chips = referenceChips();
    ASSERT_GE(chips.size(), 3u);
    EXPECT_DOUBLE_EQ(chips[0].resnet50Ips, kPaperTspIps);
    // Goya batch-1 latency ~240 us (paper V).
    bool found_goya = false;
    for (const auto &c : chips) {
        if (std::string(c.name).find("Goya") != std::string::npos) {
            found_goya = true;
            EXPECT_DOUBLE_EQ(c.batch1LatencyUs, 240.0);
        }
    }
    EXPECT_TRUE(found_goya);
}

} // namespace
} // namespace tsp::baseline
