/**
 * @file
 * binary16 soft-float: exact widening, round-to-nearest-even
 * narrowing, subnormals, infinities, NaN, and arithmetic identities.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/fp16.hh"
#include "common/rng.hh"

namespace tsp {
namespace {

TEST(Fp16, ZeroAndSigns)
{
    EXPECT_EQ(Fp16(0.0f).bits(), 0x0000);
    EXPECT_EQ(Fp16(-0.0f).bits(), 0x8000);
    EXPECT_EQ(Fp16::fromBits(0x8000).toFloat(), 0.0f);
    EXPECT_TRUE(std::signbit(Fp16::fromBits(0x8000).toFloat()));
}

TEST(Fp16, KnownValues)
{
    EXPECT_EQ(Fp16(1.0f).bits(), 0x3c00);
    EXPECT_EQ(Fp16(-2.0f).bits(), 0xc000);
    EXPECT_EQ(Fp16(0.5f).bits(), 0x3800);
    EXPECT_EQ(Fp16(65504.0f).bits(), 0x7bff); // Max finite.
    EXPECT_EQ(Fp16::fromBits(0x3c00).toFloat(), 1.0f);
    EXPECT_EQ(Fp16::fromBits(0x7bff).toFloat(), 65504.0f);
}

TEST(Fp16, OverflowToInfinity)
{
    EXPECT_EQ(Fp16(65520.0f).bits(), 0x7c00); // Rounds to inf.
    EXPECT_EQ(Fp16(1e10f).bits(), 0x7c00);
    EXPECT_EQ(Fp16(-1e10f).bits(), 0xfc00);
    EXPECT_TRUE(Fp16(1e10f).isInf());
}

TEST(Fp16, NaNPropagation)
{
    const Fp16 nan(std::nanf(""));
    EXPECT_TRUE(nan.isNaN());
    EXPECT_TRUE(std::isnan(nan.toFloat()));
    EXPECT_FALSE(nan.isInf());
}

TEST(Fp16, Subnormals)
{
    // Smallest positive subnormal: 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(Fp16(tiny).bits(), 0x0001);
    EXPECT_EQ(Fp16::fromBits(0x0001).toFloat(), tiny);
    // Largest subnormal: (1023/1024) * 2^-14.
    const float big_sub = 1023.0f / 1024.0f * std::ldexp(1.0f, -14);
    EXPECT_EQ(Fp16(big_sub).bits(), 0x03ff);
    EXPECT_EQ(Fp16::fromBits(0x03ff).toFloat(), big_sub);
    // Below half the smallest subnormal flushes to zero.
    EXPECT_EQ(Fp16(std::ldexp(1.0f, -26)).bits(), 0x0000);
}

TEST(Fp16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly between 1.0 and the next fp16 value; RNE
    // picks the even significand (1.0).
    EXPECT_EQ(Fp16(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00);
    // 1 + 3*2^-11 is between nextafter values; RNE rounds up to the
    // even 0x3c02.
    EXPECT_EQ(Fp16(1.0f + 3.0f * std::ldexp(1.0f, -11)).bits(),
              0x3c02);
}

TEST(Fp16, RoundTripAllFinitePatterns)
{
    // Every finite fp16 must survive fp16 -> float -> fp16 exactly.
    for (std::uint32_t b = 0; b <= 0xffff; ++b) {
        const Fp16 h = Fp16::fromBits(static_cast<std::uint16_t>(b));
        if (h.isNaN())
            continue;
        const Fp16 back(h.toFloat());
        ASSERT_EQ(back.bits(), h.bits()) << "pattern " << b;
    }
}

TEST(Fp16, ArithmeticMatchesSingleRounding)
{
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const float a = rng.uniform(-100.0f, 100.0f);
        const float b = rng.uniform(-100.0f, 100.0f);
        const Fp16 ha(a), hb(b);
        EXPECT_EQ(fp16Add(ha, hb).bits(),
                  Fp16(ha.toFloat() + hb.toFloat()).bits());
        EXPECT_EQ(fp16Mul(ha, hb).bits(),
                  Fp16(ha.toFloat() * hb.toFloat()).bits());
    }
}

TEST(Fp16, RoundTripAllPatternsIncludingNaNs)
{
    // Exhaustive: every one of the 65,536 bit patterns. Finite values
    // and infinities round-trip bit-exactly; NaNs widen to a float
    // NaN of the same sign and narrow back to the canonical quiet
    // NaN (sign | 0x7e00) — payloads are not preserved, NaN-ness is.
    for (std::uint32_t b = 0; b <= 0xffff; ++b) {
        const Fp16 h = Fp16::fromBits(static_cast<std::uint16_t>(b));
        const float f = h.toFloat();
        const Fp16 back(f);
        if (h.isNaN()) {
            ASSERT_TRUE(std::isnan(f)) << "pattern " << b;
            ASSERT_EQ(back.bits(), (b & 0x8000u) | 0x7e00u)
                << "pattern " << b;
        } else {
            ASSERT_EQ(back.bits(), h.bits()) << "pattern " << b;
            if (h.isInf()) {
                ASSERT_TRUE(std::isinf(f)) << "pattern " << b;
            }
        }
    }
}

TEST(Fp16, ExhaustiveWideningMatchesLadder)
{
    // Every finite pattern's widened value must equal the one built
    // arithmetically from its fields: (-1)^s * 2^(e-15) * 1.m for
    // normals, (-1)^s * 2^-14 * 0.m for subnormals.
    for (std::uint32_t b = 0; b <= 0xffff; ++b) {
        const std::uint32_t exp = (b >> 10) & 0x1f;
        if (exp == 0x1f)
            continue; // Inf/NaN covered elsewhere.
        const std::uint32_t frac = b & 0x3ff;
        const float sign = (b & 0x8000) ? -1.0f : 1.0f;
        float want;
        if (exp == 0) {
            want = sign * std::ldexp(static_cast<float>(frac), -24);
        } else {
            want = sign *
                   std::ldexp(1.0f + static_cast<float>(frac) /
                                         1024.0f,
                              static_cast<int>(exp) - 15);
        }
        const float got =
            Fp16::fromBits(static_cast<std::uint16_t>(b)).toFloat();
        ASSERT_EQ(got, want) << "pattern " << b;
    }
}

TEST(Fp16, SubnormalTiesRoundToEven)
{
    // Halfway between consecutive subnormals: RNE must pick the even
    // significand in both directions.
    const float ulp = std::ldexp(1.0f, -24); // Subnormal spacing.
    // Exactly between 0x0001 (odd) and 0x0002 (even): up to even.
    EXPECT_EQ(Fp16(1.5f * ulp).bits(), 0x0002);
    // Exactly between 0x0002 (even) and 0x0003 (odd): down to even.
    EXPECT_EQ(Fp16(2.5f * ulp).bits(), 0x0002);
    EXPECT_EQ(Fp16(3.5f * ulp).bits(), 0x0004);
    // Half the smallest subnormal ties to zero (even).
    EXPECT_EQ(Fp16(0.5f * ulp).bits(), 0x0000);
    // Just above the tie rounds away from zero.
    EXPECT_EQ(Fp16(std::nextafter(0.5f * ulp, 1.0f)).bits(), 0x0001);
    // The subnormal/normal seam: between 0x03ff and 0x0400.
    EXPECT_EQ(Fp16(1023.5f * ulp).bits(), 0x0400);
    // Negative mirror.
    EXPECT_EQ(Fp16(-1.5f * ulp).bits(), 0x8002);
    EXPECT_EQ(Fp16(-2.5f * ulp).bits(), 0x8002);
}

TEST(Fp16, OverflowBoundaryIsExact)
{
    // The rounding boundary between max-finite (65504) and infinity
    // is 65520: below it rounds down, at and above rounds to inf
    // (65520 is a tie whose even neighbour is the infinite one).
    EXPECT_EQ(Fp16(std::nextafter(65520.0f, 0.0f)).bits(), 0x7bff);
    EXPECT_EQ(Fp16(65520.0f).bits(), 0x7c00);
    EXPECT_EQ(Fp16(std::nextafter(65520.0f, 1e9f)).bits(), 0x7c00);
    EXPECT_EQ(Fp16(-65520.0f).bits(), 0xfc00);
    EXPECT_EQ(Fp16(std::nextafter(-65520.0f, 0.0f)).bits(), 0xfbff);
    // Infinity in, infinity out.
    EXPECT_EQ(Fp16(std::numeric_limits<float>::infinity()).bits(),
              0x7c00);
    EXPECT_EQ(Fp16(-std::numeric_limits<float>::infinity()).bits(),
              0xfc00);
}

TEST(Fp16, MaccMatchesDoublePrecisionReference)
{
    // The fp32 accumulator takes exactly one rounding per step (the
    // fp16 product is exact in fp32). Check against a double
    // reference that models precisely that: products exact, one
    // float-rounding of (acc + product) per step.
    Rng rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        float acc = 0.0f;
        double ref = 0.0;
        for (int i = 0; i < 64; ++i) {
            const Fp16 a(rng.uniform(-8.0f, 8.0f));
            const Fp16 b(rng.uniform(-8.0f, 8.0f));
            acc = fp16MaccToF32(a, b, acc);
            // The fp16 product is exact in double too; the single
            // rounding is the narrowing of the sum back to float.
            ref = static_cast<float>(
                ref + static_cast<double>(a.toFloat()) *
                          static_cast<double>(b.toFloat()));
            ASSERT_EQ(acc, static_cast<float>(ref))
                << "trial " << trial << " step " << i;
        }
    }
}

TEST(Fp16, MaccAccumulatesInFp32)
{
    // Products exact in fp32; accumulation must not round to fp16.
    const Fp16 a(0.001f), b(0.001f);
    float acc = 0.0f;
    for (int i = 0; i < 1000; ++i)
        acc = fp16MaccToF32(a, b, acc);
    EXPECT_NEAR(acc, 1000.0f * a.toFloat() * b.toFloat(), 3e-8f);
}

} // namespace
} // namespace tsp
