/**
 * @file
 * binary16 soft-float: exact widening, round-to-nearest-even
 * narrowing, subnormals, infinities, NaN, and arithmetic identities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/fp16.hh"
#include "common/rng.hh"

namespace tsp {
namespace {

TEST(Fp16, ZeroAndSigns)
{
    EXPECT_EQ(Fp16(0.0f).bits(), 0x0000);
    EXPECT_EQ(Fp16(-0.0f).bits(), 0x8000);
    EXPECT_EQ(Fp16::fromBits(0x8000).toFloat(), 0.0f);
    EXPECT_TRUE(std::signbit(Fp16::fromBits(0x8000).toFloat()));
}

TEST(Fp16, KnownValues)
{
    EXPECT_EQ(Fp16(1.0f).bits(), 0x3c00);
    EXPECT_EQ(Fp16(-2.0f).bits(), 0xc000);
    EXPECT_EQ(Fp16(0.5f).bits(), 0x3800);
    EXPECT_EQ(Fp16(65504.0f).bits(), 0x7bff); // Max finite.
    EXPECT_EQ(Fp16::fromBits(0x3c00).toFloat(), 1.0f);
    EXPECT_EQ(Fp16::fromBits(0x7bff).toFloat(), 65504.0f);
}

TEST(Fp16, OverflowToInfinity)
{
    EXPECT_EQ(Fp16(65520.0f).bits(), 0x7c00); // Rounds to inf.
    EXPECT_EQ(Fp16(1e10f).bits(), 0x7c00);
    EXPECT_EQ(Fp16(-1e10f).bits(), 0xfc00);
    EXPECT_TRUE(Fp16(1e10f).isInf());
}

TEST(Fp16, NaNPropagation)
{
    const Fp16 nan(std::nanf(""));
    EXPECT_TRUE(nan.isNaN());
    EXPECT_TRUE(std::isnan(nan.toFloat()));
    EXPECT_FALSE(nan.isInf());
}

TEST(Fp16, Subnormals)
{
    // Smallest positive subnormal: 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(Fp16(tiny).bits(), 0x0001);
    EXPECT_EQ(Fp16::fromBits(0x0001).toFloat(), tiny);
    // Largest subnormal: (1023/1024) * 2^-14.
    const float big_sub = 1023.0f / 1024.0f * std::ldexp(1.0f, -14);
    EXPECT_EQ(Fp16(big_sub).bits(), 0x03ff);
    EXPECT_EQ(Fp16::fromBits(0x03ff).toFloat(), big_sub);
    // Below half the smallest subnormal flushes to zero.
    EXPECT_EQ(Fp16(std::ldexp(1.0f, -26)).bits(), 0x0000);
}

TEST(Fp16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly between 1.0 and the next fp16 value; RNE
    // picks the even significand (1.0).
    EXPECT_EQ(Fp16(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00);
    // 1 + 3*2^-11 is between nextafter values; RNE rounds up to the
    // even 0x3c02.
    EXPECT_EQ(Fp16(1.0f + 3.0f * std::ldexp(1.0f, -11)).bits(),
              0x3c02);
}

TEST(Fp16, RoundTripAllFinitePatterns)
{
    // Every finite fp16 must survive fp16 -> float -> fp16 exactly.
    for (std::uint32_t b = 0; b <= 0xffff; ++b) {
        const Fp16 h = Fp16::fromBits(static_cast<std::uint16_t>(b));
        if (h.isNaN())
            continue;
        const Fp16 back(h.toFloat());
        ASSERT_EQ(back.bits(), h.bits()) << "pattern " << b;
    }
}

TEST(Fp16, ArithmeticMatchesSingleRounding)
{
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const float a = rng.uniform(-100.0f, 100.0f);
        const float b = rng.uniform(-100.0f, 100.0f);
        const Fp16 ha(a), hb(b);
        EXPECT_EQ(fp16Add(ha, hb).bits(),
                  Fp16(ha.toFloat() + hb.toFloat()).bits());
        EXPECT_EQ(fp16Mul(ha, hb).bits(),
                  Fp16(ha.toFloat() * hb.toFloat()).bits());
    }
}

TEST(Fp16, MaccAccumulatesInFp32)
{
    // Products exact in fp32; accumulation must not round to fp16.
    const Fp16 a(0.001f), b(0.001f);
    float acc = 0.0f;
    for (int i = 0; i < 1000; ++i)
        acc = fp16MaccToF32(a, b, acc);
    EXPECT_NEAR(acc, 1000.0f * a.toFloat() * b.toFloat(), 3e-8f);
}

} // namespace
} // namespace tsp
