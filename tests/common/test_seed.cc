/**
 * @file
 * common/seed.hh: the one seed-derivation utility every subsystem
 * (pod chips, rebuilt engines, C2C links, fleet pods, load
 * generators) draws related-but-independent RNG streams from.
 *
 * Two properties matter and both are pinned here:
 *  - *stability*: deriveSeed is a pure function whose values must
 *    never change — recorded trajectories (BENCH_soak.json replays,
 *    fault-injection differential suites) depend on it. Golden
 *    values below would catch any accidental reformulation.
 *  - *independence*: derived seeds don't collide across domains or
 *    nearby stream indices, and the Rng sequences they spawn are
 *    unrelated — the defects the old `seed + i` arithmetic had.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "common/seed.hh"

namespace tsp {
namespace {

TEST(Seed, PureFunctionAndStreamZeroDefault)
{
    EXPECT_EQ(deriveSeed(1, SeedDomain::PodChip, 0),
              deriveSeed(1, SeedDomain::PodChip, 0));
    EXPECT_EQ(deriveSeed(1, SeedDomain::PodChip),
              deriveSeed(1, SeedDomain::PodChip, 0));
}

TEST(Seed, GoldenValuesNeverChange)
{
    // Frozen outputs: a change here invalidates every recorded
    // deterministic trajectory (soak replays, fault differential
    // suites). Update only with a very good reason, loudly.
    EXPECT_EQ(deriveSeed(0, SeedDomain::PodChip, 0),
              0xc8cad0da637712f0ull);
    EXPECT_EQ(deriveSeed(0x5eedf001u, SeedDomain::EngineRebuild, 1),
              0x9bb28d6b4649e143ull);
    EXPECT_EQ(deriveSeed(42, SeedDomain::C2cLink, 7),
              0x2494cc62fca92392ull);
    const std::uint64_t a = deriveSeed(0x5eedf001u,
                                       SeedDomain::PodChip, 1);
    const std::uint64_t b = deriveSeed(0x5eedf001u,
                                       SeedDomain::EngineRebuild, 1);
    // Same base, same index, different domain: unrelated seeds.
    EXPECT_NE(a, b);
    // The mixer is the SplitMix64 finalizer: full avalanche means
    // adjacent bases land far apart. Check a weak version: hamming
    // distance between neighbours is substantial.
    const std::uint64_t x = deriveSeed(7, SeedDomain::PodChip, 0);
    const std::uint64_t y = deriveSeed(8, SeedDomain::PodChip, 0);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += ((x ^ y) >> i) & 1u;
    EXPECT_GE(differing, 16);
    EXPECT_LE(differing, 48);
}

TEST(Seed, NoCollisionsAcrossDomainsAndStreams)
{
    // The old arithmetic collided by construction: chip seeds
    // base+i overlapped rebuild seeds base+r. Hashed derivation
    // must keep every (domain, stream) distinct for realistic
    // fan-outs and across several bases.
    std::set<std::uint64_t> seen;
    std::size_t inserted = 0;
    const SeedDomain domains[] = {
        SeedDomain::PodChip,     SeedDomain::EngineRebuild,
        SeedDomain::C2cLink,     SeedDomain::FleetPod,
        SeedDomain::FleetWorker, SeedDomain::Arrival,
        SeedDomain::Payload,     SeedDomain::Burst,
    };
    for (std::uint64_t base : {0ull, 1ull, 0x5eedf001ull,
                               0xffffffffffffffffull}) {
        seen.insert(base);
        ++inserted;
        for (SeedDomain d : domains) {
            for (std::uint64_t s = 0; s < 256; ++s) {
                seen.insert(deriveSeed(base, d, s));
                ++inserted;
            }
        }
    }
    EXPECT_EQ(seen.size(), inserted);
}

TEST(Seed, ChainedDerivationsStayDistinct)
{
    // Fleet hierarchy: base -> pod -> worker -> chips. Leaves across
    // different branches must not collide.
    std::set<std::uint64_t> leaves;
    std::size_t n = 0;
    for (std::uint64_t p = 0; p < 8; ++p) {
        const std::uint64_t pod =
            deriveSeed(42, SeedDomain::FleetPod, p);
        for (std::uint64_t w = 0; w < 8; ++w) {
            const std::uint64_t worker =
                deriveSeed(pod, SeedDomain::FleetWorker, w);
            for (std::uint64_t c = 0; c < 8; ++c) {
                leaves.insert(
                    deriveSeed(worker, SeedDomain::PodChip, c));
                ++n;
            }
        }
    }
    EXPECT_EQ(leaves.size(), n);
}

TEST(Seed, DerivedRngStreamsAreIndependent)
{
    // Adjacent stream indices must spawn uncorrelated Rng sequences:
    // count matching draws between neighbouring streams — for
    // independent 64-bit streams the expected overlap is zero.
    for (std::uint64_t s = 0; s < 4; ++s) {
        Rng a(deriveSeed(9, SeedDomain::C2cLink, s));
        Rng b(deriveSeed(9, SeedDomain::C2cLink, s + 1));
        int equal = 0;
        for (int i = 0; i < 1000; ++i)
            equal += a.next() == b.next();
        EXPECT_EQ(equal, 0) << "stream " << s;
    }
}

TEST(Seed, ConstexprUsable)
{
    // Derivations are constexpr so compile-time tables can use them.
    constexpr std::uint64_t k =
        deriveSeed(3, SeedDomain::Payload, 5);
    static_assert(k != 0);
    EXPECT_EQ(k, deriveSeed(3, SeedDomain::Payload, 5));
}

} // namespace
} // namespace tsp
