/**
 * @file
 * JsonWriter: document shape, nesting, escaping, numeric formatting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>

#include "common/json.hh"

namespace tsp {
namespace {

TEST(Json, FlatObject)
{
    JsonWriter j;
    j.beginObject()
        .kv("served", std::uint64_t{12})
        .kv("rho", 1.5)
        .kv("label", "load sweep")
        .kv("ok", true)
        .endObject();
    EXPECT_EQ(j.str(), "{\"served\":12,\"rho\":1.5,"
                       "\"label\":\"load sweep\",\"ok\":true}");
}

TEST(Json, NestedContainers)
{
    JsonWriter j;
    j.beginObject()
        .key("points")
        .beginArray()
        .beginObject().kv("w", 1).endObject()
        .beginObject().kv("w", 2).endObject()
        .endArray()
        .kv("n", 2)
        .endObject();
    EXPECT_EQ(j.str(),
              "{\"points\":[{\"w\":1},{\"w\":2}],\"n\":2}");
}

TEST(Json, EmptyContainers)
{
    JsonWriter a;
    a.beginArray().endArray();
    EXPECT_EQ(a.str(), "[]");

    JsonWriter o;
    o.beginObject().key("x").beginArray().endArray().endObject();
    EXPECT_EQ(o.str(), "{\"x\":[]}");
}

TEST(Json, Escaping)
{
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("line\nbreak\ttab"),
              "line\\nbreak\\ttab");

    JsonWriter j;
    j.beginObject().kv("msg", "say \"hi\"").endObject();
    EXPECT_EQ(j.str(), "{\"msg\":\"say \\\"hi\\\"\"}");
}

TEST(Json, NumericFormatting)
{
    JsonWriter j;
    j.beginArray()
        .value(-1)
        .value(std::int64_t{-5000000000})
        .value(0.5)
        .value(1e100)
        .endArray();
    const std::string s = j.str();
    EXPECT_NE(s.find("-1"), std::string::npos);
    EXPECT_NE(s.find("-5000000000"), std::string::npos);
    EXPECT_NE(s.find("0.5"), std::string::npos);
    EXPECT_NE(s.find("1e+100"), std::string::npos);
}

TEST(Json, NonFiniteBecomesNull)
{
    JsonWriter j;
    j.beginArray()
        .value(std::numeric_limits<double>::infinity())
        .value(std::numeric_limits<double>::quiet_NaN())
        .endArray();
    EXPECT_EQ(j.str(), "[null,null]");
}

TEST(Json, WriteJsonFileRoundTrip)
{
    const std::string path = "test_json_tmp.json";
    ASSERT_TRUE(writeJsonFile(path, "{\"a\":1}"));
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "{\"a\":1}\n");
    std::remove(path.c_str());
}

} // namespace
} // namespace tsp
