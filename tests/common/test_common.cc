/**
 * @file
 * Deterministic RNG, statistics, and string utilities.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strutil.hh"

namespace tsp {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.nextBelow(17);
        EXPECT_LT(v, 17u);
        const int x = rng.intIn(-5, 5);
        EXPECT_GE(x, -5);
        EXPECT_LE(x, 5);
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(3);
    double sum = 0.0, sum2 = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(StatGroup, CountersAccumulate)
{
    StatGroup g;
    g.add("x");
    g.add("x", 4);
    g.set("y", 7);
    EXPECT_EQ(g.get("x"), 5u);
    EXPECT_EQ(g.get("y"), 7u);
    EXPECT_EQ(g.get("missing"), 0u);
    g.reset();
    EXPECT_EQ(g.get("x"), 0u);
}

TEST(Histogram, QuantilesAndBounds)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.record(i + 0.5);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(h.mean(), 50.0, 0.01);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
    EXPECT_EQ(h.minSample(), 0.5);
    EXPECT_EQ(h.maxSample(), 99.5);
    h.record(-10.0); // Clamps into the first bucket.
    EXPECT_EQ(h.buckets().front(), 2u);
}

TEST(Histogram, OutOfRangeSamplesAreCountedAndQuantilesClamped)
{
    Histogram h(0.0, 10.0, 10);
    h.record(5.0);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);

    h.record(-3.0);  // Below lo: clamps into bucket 0, counted.
    h.record(250.0); // At/above hi: clamps into the last bucket.
    h.record(10.0);  // Exactly hi is outside the half-open range.
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 4u);

    for (const double p : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
        const double q = h.quantile(p);
        EXPECT_GE(q, h.minSample()) << p;
        EXPECT_LE(q, h.maxSample()) << p;
    }

    // Every sample beyond hi: the old code reported the last bucket's
    // midpoint (9.5) — below every recorded sample — for any p. The
    // clamp pins quantiles inside the observed range.
    Histogram sat(0.0, 10.0, 10);
    sat.record(100.0);
    sat.record(200.0);
    EXPECT_EQ(sat.overflow(), 2u);
    EXPECT_EQ(sat.quantile(0.5), 100.0);
    EXPECT_EQ(sat.quantile(0.99), 100.0);
}

TEST(Histogram, DegenerateRangeIsGuarded)
{
    // hi <= lo used to make the bucket width zero: (sample - lo) /
    // width is NaN, and NaN -> long is UB. The guarded histogram
    // widens the range and keeps recording safely.
    Histogram h(5.0, 5.0, 4);
    h.record(5.0);
    h.record(7.0);
    h.record(3.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.minSample(), 3.0);
    EXPECT_EQ(h.maxSample(), 7.0);
    const double q = h.quantile(0.5);
    EXPECT_GE(q, 3.0);
    EXPECT_LE(q, 7.0);

    Histogram inverted(10.0, -10.0, 8);
    inverted.record(0.0);
    EXPECT_EQ(inverted.count(), 1u);

    Histogram no_buckets(0.0, 1.0, 0);
    no_buckets.record(0.5);
    EXPECT_EQ(no_buckets.count(), 1u);
    EXPECT_EQ(no_buckets.buckets().size(), 1u);
}

TEST(StrUtil, TrimSplitParse)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    const auto parts = split("a, b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    const auto ws = splitWs("  x  y\tz ");
    ASSERT_EQ(ws.size(), 3u);
    EXPECT_EQ(ws[2], "z");
    EXPECT_TRUE(iequals("AbC", "aBc"));
    EXPECT_FALSE(iequals("ab", "abc"));
    long v = 0;
    EXPECT_TRUE(parseInt("0x10", v));
    EXPECT_EQ(v, 16);
    EXPECT_TRUE(parseInt("-3", v));
    EXPECT_EQ(v, -3);
    EXPECT_FALSE(parseInt("12x", v));
    EXPECT_FALSE(parseInt("", v));
    EXPECT_EQ(strformat("%d-%s", 5, "ok"), "5-ok");
}

} // namespace
} // namespace tsp
