/**
 * @file
 * Differential tests: every SIMD lane kernel against the scalar
 * alu_ops / MXM reference it claims to reproduce bit-for-bit.
 *
 * Operands are pseudo-random byte planes with adversarial values
 * written over the first lanes — NaNs, signed zeros, infinities,
 * saturation boundaries, rounding ties — so the compare/blend
 * sequences and clamp fixups are exercised where they can diverge.
 */

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu.hh"
#include "common/fp16.hh"
#include "mxm/mxm_kernels.hh"
#include "vxm/alu_ops.hh"
#include "vxm/vxm_kernels.hh"

namespace tsp {
namespace {

constexpr int kLanes = 320;

std::uint8_t
nextByte(std::uint64_t &s)
{
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint8_t>(s >> 56);
}

void
fillPlanes(Vec320 *p, int g, std::uint64_t seed)
{
    for (int k = 0; k < g; ++k)
        for (int l = 0; l < kLanes; ++l)
            p[k].bytes[static_cast<std::size_t>(l)] = nextByte(seed);
}

void
setLane32(Vec320 *p, int lane, std::uint32_t u)
{
    for (int k = 0; k < 4; ++k)
        p[k].bytes[static_cast<std::size_t>(lane)] =
            static_cast<std::uint8_t>(u >> (8 * k));
}

void
setLaneF32(Vec320 *p, int lane, float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    setLane32(p, lane, u);
}

/** Floats that stress NaN/zero/rounding/saturation handling. */
const float kSpecialF32[] = {
    0.0f,
    -0.0f,
    __builtin_nanf(""),
    -__builtin_nanf(""),
    __builtin_inff(),
    -__builtin_inff(),
    1e-42f, // Denormal.
    0.5f,
    -0.5f,
    1.5f,
    2.5f, // Ties-to-even vs away-from-zero.
    -1.5f,
    -2.5f,
    126.5f,
    127.0f,
    127.5f,
    128.0f,
    -127.5f,
    -128.0f,
    -128.5f,
    -129.0f,
    2147483520.0f, // Largest float < 2^31.
    2147483648.0f, // == 2^31; saturates int32.
    -2147483648.0f,
    3e9f,
    -3e9f,
    1.0f,
    -1.0f,
};

/** Int32 values that stress the saturating add/sub overflow blends. */
const std::int32_t kSpecialI32[] = {
    0,          1,           -1,          0x7fffffff, -0x7fffffff - 1,
    0x7ffffffe, -0x7fffffff, 0x40000000,  -0x40000000, 123456789,
    -123456789, 0x7fffff00,  -0x7fffff00,
};

void
plantSpecials(Vec320 *a, Vec320 *b, DType t)
{
    if (t == DType::Fp32) {
        const int n = static_cast<int>(std::size(kSpecialF32));
        // Every special meets every special (n^2 <= 320 lanes is not
        // guaranteed, so pair i with i and with a rotation).
        for (int i = 0; i < n; ++i) {
            setLaneF32(a, i, kSpecialF32[i]);
            setLaneF32(b, i, kSpecialF32[(i * 7 + 3) % n]);
            setLaneF32(a, n + i, kSpecialF32[(i * 5 + 1) % n]);
            setLaneF32(b, n + i, kSpecialF32[i]);
        }
    } else if (t == DType::Int32) {
        const int n = static_cast<int>(std::size(kSpecialI32));
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < n; ++j) {
                const int lane = i * n + j;
                if (lane >= kLanes)
                    return;
                setLane32(a, lane,
                          static_cast<std::uint32_t>(kSpecialI32[i]));
                setLane32(b, lane,
                          static_cast<std::uint32_t>(kSpecialI32[j]));
            }
    }
    // Int8: 256 random bytes already cover the full value space.
}

void
scalarBinary(DType t, Opcode op, const Vec320 *a, const Vec320 *b,
             Vec320 *out)
{
    const int g = dtypeBytes(t);
    std::uint8_t ab[4], bb[4], ob[4];
    for (int l = 0; l < kLanes; ++l) {
        const auto sl = static_cast<std::size_t>(l);
        for (int k = 0; k < g; ++k) {
            ab[k] = a[k].bytes[sl];
            bb[k] = b[k].bytes[sl];
        }
        const LaneValue r =
            aluBinary(op, t, laneLoad(ab, t), laneLoad(bb, t));
        laneStore(ob, t, r);
        for (int k = 0; k < g; ++k)
            out[k].bytes[sl] = ob[k];
    }
}

void
scalarUnary(DType t, Opcode op, const Vec320 *a, Vec320 *out)
{
    const int g = dtypeBytes(t);
    std::uint8_t ab[4], ob[4];
    for (int l = 0; l < kLanes; ++l) {
        const auto sl = static_cast<std::size_t>(l);
        for (int k = 0; k < g; ++k)
            ab[k] = a[k].bytes[sl];
        const LaneValue r = aluUnary(op, t, laneLoad(ab, t), 0);
        laneStore(ob, t, r);
        for (int k = 0; k < g; ++k)
            out[k].bytes[sl] = ob[k];
    }
}

void
scalarConvert(DType from, DType to, const Vec320 *in, Vec320 *out)
{
    const int gi = dtypeBytes(from);
    const int go = dtypeBytes(to);
    std::uint8_t ib[4], ob[4];
    for (int l = 0; l < kLanes; ++l) {
        const auto sl = static_cast<std::size_t>(l);
        for (int k = 0; k < gi; ++k)
            ib[k] = in[k].bytes[sl];
        const LaneValue r = aluConvert(from, to, laneLoad(ib, from));
        laneStore(ob, to, r);
        for (int k = 0; k < go; ++k)
            out[k].bytes[sl] = ob[k];
    }
}

void
expectPlanesEq(const Vec320 *want, const Vec320 *got, int g,
               const char *what)
{
    for (int k = 0; k < g; ++k)
        for (int l = 0; l < kLanes; ++l) {
            const auto sl = static_cast<std::size_t>(l);
            ASSERT_EQ(want[k].bytes[sl], got[k].bytes[sl])
                << what << " plane " << k << " lane " << l;
        }
}

void
checkBinary(DType t, Opcode op, std::uint64_t seed)
{
    Vec320 a[4], b[4], simd_out[4], ref_out[4];
    fillPlanes(a, dtypeBytes(t), seed);
    fillPlanes(b, dtypeBytes(t), seed ^ 0x9e3779b97f4a7c15ull);
    plantSpecials(a, b, t);
    ASSERT_TRUE(simd::vxmBinaryAvx2(t, op, a, b, simd_out, kLanes))
        << dtypeName(t) << " " << opcodeName(op);
    scalarBinary(t, op, a, b, ref_out);
    expectPlanesEq(ref_out, simd_out, dtypeBytes(t), opcodeName(op));
}

void
checkUnary(DType t, Opcode op, std::uint64_t seed)
{
    Vec320 a[4], dummy[4], simd_out[4], ref_out[4];
    fillPlanes(a, dtypeBytes(t), seed);
    fillPlanes(dummy, dtypeBytes(t), seed + 1);
    plantSpecials(a, dummy, t);
    ASSERT_TRUE(simd::vxmUnaryAvx2(t, op, a, simd_out, kLanes))
        << dtypeName(t) << " " << opcodeName(op);
    scalarUnary(t, op, a, ref_out);
    expectPlanesEq(ref_out, simd_out, dtypeBytes(t), opcodeName(op));
}

TEST(VxmSimd, Int8BinaryMatchesScalar)
{
    if (!cpuHasAvx2())
        GTEST_SKIP() << "no AVX2 on this host";
    const Opcode ops[] = {Opcode::Add,    Opcode::Sub,
                          Opcode::Mul,    Opcode::AddSat,
                          Opcode::SubSat, Opcode::MulSat,
                          Opcode::Max,    Opcode::Min,
                          Opcode::Mask};
    std::uint64_t seed = 11;
    for (Opcode op : ops)
        checkBinary(DType::Int8, op, seed++);
}

TEST(VxmSimd, Int32BinaryMatchesScalar)
{
    if (!cpuHasAvx2())
        GTEST_SKIP() << "no AVX2 on this host";
    const Opcode ops[] = {Opcode::Add, Opcode::Sub,    Opcode::Mul,
                          Opcode::Max, Opcode::Min,    Opcode::Mask,
                          Opcode::AddSat, Opcode::SubSat};
    std::uint64_t seed = 23;
    for (Opcode op : ops)
        checkBinary(DType::Int32, op, seed++);
}

TEST(VxmSimd, Fp32BinaryMatchesScalar)
{
    if (!cpuHasAvx2())
        GTEST_SKIP() << "no AVX2 on this host";
    const Opcode ops[] = {Opcode::Add,    Opcode::Sub,
                          Opcode::Mul,    Opcode::AddSat,
                          Opcode::SubSat, Opcode::MulSat,
                          Opcode::Max,    Opcode::Min,
                          Opcode::Mask};
    std::uint64_t seed = 37;
    for (Opcode op : ops)
        checkBinary(DType::Fp32, op, seed++);
}

TEST(VxmSimd, UnaryMatchesScalar)
{
    if (!cpuHasAvx2())
        GTEST_SKIP() << "no AVX2 on this host";
    const Opcode ops[] = {Opcode::Neg, Opcode::Abs, Opcode::Relu};
    std::uint64_t seed = 51;
    for (DType t : {DType::Int8, DType::Int32, DType::Fp32})
        for (Opcode op : ops)
            checkUnary(t, op, seed++);
}

TEST(VxmSimd, ConvertMatchesScalar)
{
    if (!cpuHasAvx2())
        GTEST_SKIP() << "no AVX2 on this host";
    struct Pair
    {
        DType from, to;
    };
    const Pair pairs[] = {{DType::Int8, DType::Fp32},
                          {DType::Int32, DType::Fp32},
                          {DType::Fp32, DType::Int8},
                          {DType::Fp32, DType::Int32}};
    std::uint64_t seed = 71;
    for (const Pair &pr : pairs) {
        Vec320 in[4], dummy[4], simd_out[4], ref_out[4];
        fillPlanes(in, dtypeBytes(pr.from), seed);
        fillPlanes(dummy, dtypeBytes(pr.from), seed + 1);
        plantSpecials(in, dummy, pr.from);
        seed += 2;
        ASSERT_TRUE(simd::vxmConvertAvx2(pr.from, pr.to, in, simd_out,
                                         kLanes))
            << dtypeName(pr.from) << "->" << dtypeName(pr.to);
        scalarConvert(pr.from, pr.to, in, ref_out);
        expectPlanesEq(ref_out, simd_out, dtypeBytes(pr.to),
                       dtypeName(pr.to));
    }
}

TEST(VxmSimd, DeclinesUncoveredShapes)
{
    if (!cpuHasAvx2())
        GTEST_SKIP() << "no AVX2 on this host";
    Vec320 a[4], b[4], out[4];
    fillPlanes(a, 4, 7);
    fillPlanes(b, 4, 9);
    // Odd lane counts, scalar-only dtypes and opcodes all decline so
    // the caller falls back to the scalar templates.
    EXPECT_FALSE(simd::vxmBinaryAvx2(DType::Int8, Opcode::Add, a, b,
                                     out, 33));
    EXPECT_FALSE(simd::vxmBinaryAvx2(DType::Fp16, Opcode::Add, a, b,
                                     out, kLanes));
    EXPECT_FALSE(simd::vxmBinaryAvx2(DType::Int32, Opcode::MulSat, a,
                                     b, out, kLanes));
    EXPECT_FALSE(
        simd::vxmUnaryAvx2(DType::Fp32, Opcode::Tanh, a, out, kLanes));
    EXPECT_FALSE(simd::vxmConvertAvx2(DType::Fp32, DType::Fp16, a, out,
                                      kLanes));
}

/** Scalar reference for one MXM int8 ABC broadcast cycle. */
void
mxmScalarRef(const std::int8_t *w, int stride,
             const std::uint8_t *act, std::int32_t *acc, int n,
             bool accumulate)
{
    for (int r = 0; r < n; ++r) {
        std::int32_t sum = 0;
        for (int c = 0; c < n; ++c) {
            sum += static_cast<std::int32_t>(
                       w[static_cast<std::size_t>(r) * stride + c]) *
                   static_cast<std::int8_t>(act[c]);
        }
        if (accumulate)
            acc[r] += sum;
        else
            acc[r] = sum;
    }
}

TEST(MxmSimd, KernelsMatchScalar)
{
    if (!cpuHasAvx2())
        GTEST_SKIP() << "no AVX2 on this host";
    const int n = 320;
    std::vector<std::int8_t> w(static_cast<std::size_t>(n) * n);
    std::vector<std::uint8_t> act(static_cast<std::size_t>(n));
    std::uint64_t seed = 97;
    for (auto &v : w)
        v = static_cast<std::int8_t>(nextByte(seed));
    for (auto &v : act)
        v = nextByte(seed);
    // Extremes: rows of -128/+127 against -128/+127 activations.
    for (int c = 0; c < n; ++c) {
        w[static_cast<std::size_t>(c)] = -128;
        w[static_cast<std::size_t>(n) + c] = 127;
        act[static_cast<std::size_t>(c)] =
            (c % 2) ? 0x80 : 0x7f;
    }

    std::vector<std::int32_t> ref(static_cast<std::size_t>(n), 5);
    mxmScalarRef(w.data(), n, act.data(), ref.data(), n, true);

    std::vector<std::int32_t> got(static_cast<std::size_t>(n), 5);
    ASSERT_TRUE(simd::mxmAbcInt8Avx2(w.data(), n, act.data(),
                                     got.data(), n, true));
    EXPECT_EQ(ref, got) << "avx2";

    if (cpuHasAvx512Vnni()) {
        std::vector<std::int32_t> rs(static_cast<std::size_t>(n));
        ASSERT_TRUE(
            simd::mxmRowSumsInt8Vnni(w.data(), n, n, rs.data()));
        for (int r = 0; r < n; ++r) {
            std::int32_t s = 0;
            for (int c = 0; c < n; ++c)
                s += w[static_cast<std::size_t>(r) * n + c];
            ASSERT_EQ(s, rs[static_cast<std::size_t>(r)])
                << "row sum " << r;
        }
        std::vector<std::int32_t> vn(static_cast<std::size_t>(n), 5);
        ASSERT_TRUE(simd::mxmAbcInt8Vnni(w.data(), n, act.data(),
                                         rs.data(), vn.data(), n,
                                         true));
        EXPECT_EQ(ref, vn) << "vnni";
    }
}

/**
 * Fp16 bit patterns that stress the fp16->fp32 conversion and the
 * mul/add rounding sequence: NaNs (payloads must propagate), signed
 * zeros and infinities, denormals, the largest finite value.
 */
const std::uint16_t kSpecialF16[] = {
    0x0000, // +0
    0x8000, // -0
    0x7e00, // qNaN
    0xfe00, // -qNaN
    0x7e55, // qNaN with payload
    0x7c00, // +inf
    0xfc00, // -inf
    0x0001, // smallest denormal
    0x03ff, // largest denormal
    0x0400, // smallest normal
    0x7bff, // largest finite (65504)
    0xfbff, // most negative finite
    0x3c00, // 1.0
    0xbc00, // -1.0
    0x3800, // 0.5
    0x4200, // 3.0
    0x3555, // ~0.3333 (inexact in binary)
};

/**
 * Scalar reference for one fp16-mode ABC cycle, written exactly as
 * MxmPlane::stepAbc's scalar fp16 loop: per-row fp32 sum starting at
 * 0.0f, one multiply rounding and one add rounding per column,
 * columns ascending.
 */
void
mxmScalarRefF16(const float *wCols, int stride, const float *act,
                float *acc, int n, bool accumulate)
{
    for (int r = 0; r < n; ++r) {
        float sum = 0.0f;
        for (int c = 0; c < n; ++c)
            sum += wCols[static_cast<std::size_t>(c) * stride + r] *
                   act[c];
        if (accumulate)
            acc[r] += sum;
        else
            acc[r] = sum;
    }
}

/**
 * Bit-pattern comparison (NaN-safe, unlike any float equality), with
 * one relaxation: two NaNs compare equal regardless of payload. When
 * a term mixes NaNs with different payloads, *which* payload the
 * mul/add returns depends on operand order — and the compiler treats
 * float mul/add as commutative (the AVX intrinsics are plain vector
 * `*`/`+` in GCC's headers), so payload choice is not pinned even
 * between two compilations of the scalar loop itself. NaN-ness,
 * infinities, denormals, signed zeros and all rounding are exact.
 */
void
expectF32BitsEq(const std::vector<float> &want,
                const std::vector<float> &got, const char *what)
{
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        std::uint32_t wb, gb;
        std::memcpy(&wb, &want[i], 4);
        std::memcpy(&gb, &got[i], 4);
        if ((wb & 0x7fffffffu) > 0x7f800000u &&
            (gb & 0x7fffffffu) > 0x7f800000u)
            continue; // Both NaN: payload choice is unspecified.
        ASSERT_EQ(wb, gb) << what << " row " << i;
    }
}

TEST(MxmSimd, F16KernelsMatchScalar)
{
    if (!cpuHasAvx2())
        GTEST_SKIP() << "no AVX2 on this host";
    const int n = 320;
    const int ns = static_cast<int>(std::size(kSpecialF16));

    // Weight bits: pseudo-random fp16 with every special planted in
    // the first rows (so every special multiplies every special via
    // the activation plants below).
    std::vector<std::uint16_t> wbits(static_cast<std::size_t>(n) * n);
    std::uint64_t seed = 131;
    for (auto &b : wbits) {
        b = static_cast<std::uint16_t>(nextByte(seed) |
                                       (nextByte(seed) << 8));
    }
    for (int i = 0; i < ns; ++i)
        for (int c = 0; c < n; ++c)
            wbits[static_cast<std::size_t>(i) * n + c] =
                kSpecialF16[(c + i) % ns];

    // Column-major fp32 image, exactly as buildF16WeightCols makes it.
    std::vector<float> wcols(static_cast<std::size_t>(n) * n);
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
            wcols[static_cast<std::size_t>(c) * n + r] =
                Fp16::fromBits(wbits[static_cast<std::size_t>(r) * n +
                                     c])
                    .toFloat();

    // Activations: converted fp16 values with specials up front.
    std::vector<float> act(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
        const auto b = static_cast<std::uint16_t>(
            nextByte(seed) | (nextByte(seed) << 8));
        act[static_cast<std::size_t>(c)] =
            Fp16::fromBits(c < 2 * ns ? kSpecialF16[c % ns] : b)
                .toFloat();
    }

    for (bool accumulate : {false, true}) {
        // Seed the accumulators with a value that makes += visible
        // (and, in lane 3, a NaN whose payload must survive +=).
        std::vector<float> ref(static_cast<std::size_t>(n), 5.25f);
        std::vector<float> got(static_cast<std::size_t>(n), 5.25f);
        ref[3] = got[3] = __builtin_nanf("0x1234");
        mxmScalarRefF16(wcols.data(), n, act.data(), ref.data(), n,
                        accumulate);

        ASSERT_TRUE(simd::mxmAbcF16Avx2(wcols.data(), n, act.data(),
                                        got.data(), n, accumulate));
        expectF32BitsEq(ref, got,
                        accumulate ? "avx2 acc" : "avx2 ovw");

        if (cpuHasAvx512f()) {
            std::vector<float> g5(static_cast<std::size_t>(n), 5.25f);
            g5[3] = __builtin_nanf("0x1234");
            ASSERT_TRUE(simd::mxmAbcF16Avx512(wcols.data(), n,
                                              act.data(), g5.data(),
                                              n, accumulate));
            expectF32BitsEq(ref, g5,
                            accumulate ? "avx512 acc" : "avx512 ovw");
        }
    }
}

TEST(MxmSimd, F16KernelsDeclineUncoveredShapes)
{
    if (!cpuHasAvx2())
        GTEST_SKIP() << "no AVX2 on this host";
    std::vector<float> w(32 * 32, 1.0f), a(32, 1.0f), acc(32, 0.0f);
    EXPECT_FALSE(
        simd::mxmAbcF16Avx2(w.data(), 12, a.data(), acc.data(), 12,
                            false));
    if (cpuHasAvx512f()) {
        EXPECT_FALSE(simd::mxmAbcF16Avx512(w.data(), 8, a.data(),
                                           acc.data(), 8, false));
    }
}

} // namespace
} // namespace tsp
