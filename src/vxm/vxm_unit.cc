#include "vxm/vxm_unit.hh"

#include <type_traits>

#include "common/cpu.hh"
#include "common/logging.hh"
#include "vxm/vxm_kernels.hh"

namespace tsp {

namespace {

/**
 * The lane loops below are instantiated once per (dtype, opcode)
 * pair and dispatched to with two switches per *instruction* instead
 * of several per *lane*: with both parameters compile-time constant,
 * the inline alu_ops bodies collapse to straight-line arithmetic.
 * Semantics are those of the shared alu_ops functions — the same
 * code, merely specialized.
 */

/** Calls @p fn with @p t lifted to a compile-time constant. */
template <typename Fn>
void
withDType(DType t, Fn &&fn)
{
    switch (t) {
      case DType::Int8:
        fn(std::integral_constant<DType, DType::Int8>{});
        return;
      case DType::Int16:
        fn(std::integral_constant<DType, DType::Int16>{});
        return;
      case DType::Int32:
        fn(std::integral_constant<DType, DType::Int32>{});
        return;
      case DType::Fp16:
        fn(std::integral_constant<DType, DType::Fp16>{});
        return;
      case DType::Fp32:
        fn(std::integral_constant<DType, DType::Fp32>{});
        return;
    }
    panic("VXM: bad dtype %d", static_cast<int>(t));
}

/** Calls @p fn with a point-wise binary @p op lifted to a constant. */
template <typename Fn>
void
withBinaryOp(Opcode op, Fn &&fn)
{
    switch (op) {
      case Opcode::Add:
        fn(std::integral_constant<Opcode, Opcode::Add>{});
        return;
      case Opcode::Sub:
        fn(std::integral_constant<Opcode, Opcode::Sub>{});
        return;
      case Opcode::Mul:
        fn(std::integral_constant<Opcode, Opcode::Mul>{});
        return;
      case Opcode::AddSat:
        fn(std::integral_constant<Opcode, Opcode::AddSat>{});
        return;
      case Opcode::SubSat:
        fn(std::integral_constant<Opcode, Opcode::SubSat>{});
        return;
      case Opcode::MulSat:
        fn(std::integral_constant<Opcode, Opcode::MulSat>{});
        return;
      case Opcode::Max:
        fn(std::integral_constant<Opcode, Opcode::Max>{});
        return;
      case Opcode::Min:
        fn(std::integral_constant<Opcode, Opcode::Min>{});
        return;
      case Opcode::Mask:
        fn(std::integral_constant<Opcode, Opcode::Mask>{});
        return;
      default:
        panic("aluBinary: not a binary op: %s", opcodeName(op));
    }
}

/** Calls @p fn with a point-wise unary @p op lifted to a constant. */
template <typename Fn>
void
withUnaryOp(Opcode op, Fn &&fn)
{
    switch (op) {
      case Opcode::Neg:
        fn(std::integral_constant<Opcode, Opcode::Neg>{});
        return;
      case Opcode::Abs:
        fn(std::integral_constant<Opcode, Opcode::Abs>{});
        return;
      case Opcode::Relu:
        fn(std::integral_constant<Opcode, Opcode::Relu>{});
        return;
      case Opcode::Tanh:
        fn(std::integral_constant<Opcode, Opcode::Tanh>{});
        return;
      case Opcode::Exp:
        fn(std::integral_constant<Opcode, Opcode::Exp>{});
        return;
      case Opcode::Rsqrt:
        fn(std::integral_constant<Opcode, Opcode::Rsqrt>{});
        return;
      case Opcode::Shift:
        fn(std::integral_constant<Opcode, Opcode::Shift>{});
        return;
      default:
        panic("aluUnary: not a unary op: %s", opcodeName(op));
    }
}

template <DType T, Opcode OP>
void
binaryLanes(const Vec320 *a, const Vec320 *b, Vec320 *out, int lanes)
{
    constexpr int g = dtypeBytes(T);
    std::uint8_t ab[4], bb[4], ob[4];
    for (int l = 0; l < lanes; ++l) {
        const auto sl = static_cast<std::size_t>(l);
        for (int k = 0; k < g; ++k) {
            ab[k] = a[k].bytes[sl];
            bb[k] = b[k].bytes[sl];
        }
        const LaneValue r = aluBinary(OP, T, laneLoad(ab, T),
                                      laneLoad(bb, T));
        laneStore(ob, T, r);
        for (int k = 0; k < g; ++k)
            out[k].bytes[sl] = ob[k];
    }
}

template <DType T, Opcode OP>
void
unaryLanes(const Vec320 *a, Vec320 *out, int lanes,
           std::uint32_t shift_amount)
{
    constexpr int g = dtypeBytes(T);
    std::uint8_t ab[4], ob[4];
    for (int l = 0; l < lanes; ++l) {
        const auto sl = static_cast<std::size_t>(l);
        for (int k = 0; k < g; ++k)
            ab[k] = a[k].bytes[sl];
        const LaneValue r = aluUnary(OP, T, laneLoad(ab, T),
                                     shift_amount);
        laneStore(ob, T, r);
        for (int k = 0; k < g; ++k)
            out[k].bytes[sl] = ob[k];
    }
}

template <DType FROM, DType TO>
void
convertLanes(const Vec320 *in, Vec320 *out, int lanes)
{
    constexpr int gi = dtypeBytes(FROM);
    constexpr int go = dtypeBytes(TO);
    std::uint8_t ibytes[4], obytes[4];
    for (int l = 0; l < lanes; ++l) {
        const auto sl = static_cast<std::size_t>(l);
        for (int k = 0; k < gi; ++k)
            ibytes[k] = in[k].bytes[sl];
        const LaneValue r = aluConvert(FROM, TO, laneLoad(ibytes, FROM));
        laneStore(obytes, TO, r);
        for (int k = 0; k < go; ++k)
            out[k].bytes[sl] = obytes[k];
    }
}

} // namespace

VxmUnit::VxmUnit(const ChipConfig &cfg, StreamFabric &fabric)
    : cfg_(cfg), io_(cfg, fabric, "VXM")
{
}

void
VxmUnit::checkAlignment(StreamRef s, int g)
{
    if (g > 1 && (s.id % g) != 0) {
        panic("VXM: stream group of %d must be naturally aligned, got "
              "s%d",
              g, static_cast<int>(s.id));
    }
    TSP_ASSERT(s.id + g <= kStreamsPerDir);
}

void
VxmUnit::loadGroup(StreamRef base, int g, Vec320 *out)
{
    // Replay: one batched tape read for the whole group. The lane
    // kernels want the operands contiguous, so the group is copied
    // out of the arena — the same single copy the per-cycle path
    // pays — but the per-vector StreamIo plumbing is skipped.
    const Vec320 *vp[4];
    if (io_.replayConsumeRun(base, Layout::vxm, vp,
                             static_cast<std::size_t>(g))) {
        for (int k = 0; k < g; ++k)
            out[k] = *vp[k];
        return;
    }
    for (int k = 0; k < g; ++k) {
        StreamRef s = base;
        s.id = static_cast<StreamId>(base.id + k);
        out[k] = io_.consume(s, Layout::vxm);
    }
}

void
VxmUnit::storeGroup(StreamRef base, int g, const Vec320 *in, Cycle when)
{
    for (int k = 0; k < g; ++k) {
        StreamRef s = base;
        s.id = static_cast<StreamId>(base.id + k);
        io_.produce(s, Layout::vxm, in[k], when);
    }
}

void
VxmUnit::execute(const Instruction &inst, int alu, Cycle now)
{
    TSP_ASSERT(alu >= 0 && alu < kVxmAlusPerLane);
    const Cycle when = now + opTiming(inst.op).dFunc;
    const int lanes = cfg_.vectorLength();
    ++instructions_;

    if (inst.op == Opcode::Convert) {
        const auto to = static_cast<DType>(inst.imm0);
        const auto from = static_cast<DType>(inst.imm1);
        const int gi = dtypeBytes(from);
        const int go = dtypeBytes(to);
        checkAlignment(inst.srcA, gi);
        checkAlignment(inst.dst, go);

        Vec320 in[4], out[4];
        loadGroup(inst.srcA, gi, in);
        if (!(simdKernelsEnabled() &&
              simd::vxmConvertAvx2(from, to, in, out, lanes))) {
            withDType(from, [&](auto fromc) {
                withDType(to, [&](auto toc) {
                    convertLanes<decltype(fromc)::value,
                                 decltype(toc)::value>(in, out, lanes);
                });
            });
        }
        storeGroup(inst.dst, go, out, when);
        laneOps_ += static_cast<std::uint64_t>(lanes);
        return;
    }

    const DType t = inst.dtype;
    const int g = dtypeBytes(t);
    checkAlignment(inst.srcA, g);
    checkAlignment(inst.dst, g);

    Vec320 a[4], b[4], out[4];
    loadGroup(inst.srcA, g, a);
    if (isVxmBinary(inst.op)) {
        checkAlignment(inst.srcB, g);
        loadGroup(inst.srcB, g, b);
        // The AVX2 kernels cover the integer (dtype, opcode) pairs and
        // are bit-identical to the scalar templates; anything they
        // decline falls through to the specialized scalar loop.
        if (!(simdKernelsEnabled() &&
              simd::vxmBinaryAvx2(t, inst.op, a, b, out, lanes))) {
            withDType(t, [&](auto tc) {
                withBinaryOp(inst.op, [&](auto opc) {
                    binaryLanes<decltype(tc)::value,
                                decltype(opc)::value>(a, b, out,
                                                      lanes);
                });
            });
        }
    } else {
        if (!(simdKernelsEnabled() &&
              simd::vxmUnaryAvx2(t, inst.op, a, out, lanes))) {
            withDType(t, [&](auto tc) {
                withUnaryOp(inst.op, [&](auto opc) {
                    unaryLanes<decltype(tc)::value,
                               decltype(opc)::value>(a, out, lanes,
                                                     inst.imm0);
                });
            });
        }
    }
    storeGroup(inst.dst, g, out, when);
    laneOps_ += static_cast<std::uint64_t>(lanes);
}

} // namespace tsp
