#include "vxm/vxm_unit.hh"

#include "common/logging.hh"

namespace tsp {

VxmUnit::VxmUnit(const ChipConfig &cfg, StreamFabric &fabric)
    : cfg_(cfg), io_(cfg, fabric, "VXM")
{
}

void
VxmUnit::checkAlignment(StreamRef s, int g)
{
    if (g > 1 && (s.id % g) != 0) {
        panic("VXM: stream group of %d must be naturally aligned, got "
              "s%d",
              g, static_cast<int>(s.id));
    }
    TSP_ASSERT(s.id + g <= kStreamsPerDir);
}

void
VxmUnit::loadGroup(StreamRef base, int g, Vec320 *out)
{
    for (int k = 0; k < g; ++k) {
        StreamRef s = base;
        s.id = static_cast<StreamId>(base.id + k);
        out[k] = io_.consume(s, Layout::vxm);
    }
}

void
VxmUnit::storeGroup(StreamRef base, int g, const Vec320 *in, Cycle when)
{
    for (int k = 0; k < g; ++k) {
        StreamRef s = base;
        s.id = static_cast<StreamId>(base.id + k);
        io_.produce(s, Layout::vxm, in[k], when);
    }
}

void
VxmUnit::execute(const Instruction &inst, int alu, Cycle now)
{
    TSP_ASSERT(alu >= 0 && alu < kVxmAlusPerLane);
    const Cycle when = now + opTiming(inst.op).dFunc;
    const int lanes = cfg_.vectorLength();
    ++instructions_;

    if (inst.op == Opcode::Convert) {
        const auto to = static_cast<DType>(inst.imm0);
        const auto from = static_cast<DType>(inst.imm1);
        const int gi = dtypeBytes(from);
        const int go = dtypeBytes(to);
        checkAlignment(inst.srcA, gi);
        checkAlignment(inst.dst, go);

        Vec320 in[4], out[4];
        loadGroup(inst.srcA, gi, in);
        std::uint8_t ibytes[4], obytes[4];
        for (int l = 0; l < lanes; ++l) {
            for (int k = 0; k < gi; ++k)
                ibytes[k] = in[k].bytes[static_cast<std::size_t>(l)];
            const LaneValue a = laneLoad(ibytes, from);
            const LaneValue r = aluConvert(from, to, a);
            laneStore(obytes, to, r);
            for (int k = 0; k < go; ++k)
                out[k].bytes[static_cast<std::size_t>(l)] = obytes[k];
        }
        storeGroup(inst.dst, go, out, when);
        laneOps_ += static_cast<std::uint64_t>(lanes);
        return;
    }

    const DType t = inst.dtype;
    const int g = dtypeBytes(t);
    checkAlignment(inst.srcA, g);
    checkAlignment(inst.dst, g);

    Vec320 a[4], b[4], out[4];
    loadGroup(inst.srcA, g, a);
    const bool binary = isVxmBinary(inst.op);
    if (binary) {
        checkAlignment(inst.srcB, g);
        loadGroup(inst.srcB, g, b);
    }

    std::uint8_t abytes[4], bbytes[4], obytes[4];
    for (int l = 0; l < lanes; ++l) {
        for (int k = 0; k < g; ++k) {
            abytes[k] = a[k].bytes[static_cast<std::size_t>(l)];
            if (binary)
                bbytes[k] = b[k].bytes[static_cast<std::size_t>(l)];
        }
        const LaneValue av = laneLoad(abytes, t);
        LaneValue r;
        if (binary) {
            const LaneValue bv = laneLoad(bbytes, t);
            r = aluBinary(inst.op, t, av, bv);
        } else {
            r = aluUnary(inst.op, t, av, inst.imm0);
        }
        laneStore(obytes, t, r);
        for (int k = 0; k < g; ++k)
            out[k].bytes[static_cast<std::size_t>(l)] = obytes[k];
    }
    storeGroup(inst.dst, g, out, when);
    laneOps_ += static_cast<std::uint64_t>(lanes);
}

} // namespace tsp
