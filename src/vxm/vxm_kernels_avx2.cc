#include "vxm/vxm_kernels.hh"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace tsp::simd {

namespace {

// ---- int8: one byte plane, 32 lanes per vector ----------------------

/** Wrapping int8 multiply: widen to int16, mullo, truncate low byte. */
inline __m256i
mulWrapEpi8(__m256i a, __m256i b)
{
    const __m256i alo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(a));
    const __m256i ahi =
        _mm256_cvtepi8_epi16(_mm256_extracti128_si256(a, 1));
    const __m256i blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(b));
    const __m256i bhi =
        _mm256_cvtepi8_epi16(_mm256_extracti128_si256(b, 1));
    const __m256i mask = _mm256_set1_epi16(0x00ff);
    const __m256i plo =
        _mm256_and_si256(_mm256_mullo_epi16(alo, blo), mask);
    const __m256i phi =
        _mm256_and_si256(_mm256_mullo_epi16(ahi, bhi), mask);
    // packus on 0..255 values is exact truncation; undo the 128-bit
    // lane interleave packus introduces.
    return _mm256_permute4x64_epi64(_mm256_packus_epi16(plo, phi),
                                    0xd8);
}

/** Saturating int8 multiply: exact int16 product, signed pack. */
inline __m256i
mulSatEpi8(__m256i a, __m256i b)
{
    const __m256i alo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(a));
    const __m256i ahi =
        _mm256_cvtepi8_epi16(_mm256_extracti128_si256(a, 1));
    const __m256i blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(b));
    const __m256i bhi =
        _mm256_cvtepi8_epi16(_mm256_extracti128_si256(b, 1));
    const __m256i plo = _mm256_mullo_epi16(alo, blo);
    const __m256i phi = _mm256_mullo_epi16(ahi, bhi);
    return _mm256_permute4x64_epi64(_mm256_packs_epi16(plo, phi),
                                    0xd8);
}

// ---- int32: four byte planes, 8 lanes per vector --------------------

/** Gathers 8 int32 lane elements starting at lane @p l. */
inline __m256i
loadLanes32(const Vec320 *p, int l)
{
    const auto sl = static_cast<std::size_t>(l);
    const __m256i b0 = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(p[0].bytes.data() + sl)));
    const __m256i b1 = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(p[1].bytes.data() + sl)));
    const __m256i b2 = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(p[2].bytes.data() + sl)));
    const __m256i b3 = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(p[3].bytes.data() + sl)));
    return _mm256_or_si256(
        _mm256_or_si256(b0, _mm256_slli_epi32(b1, 8)),
        _mm256_or_si256(_mm256_slli_epi32(b2, 16),
                        _mm256_slli_epi32(b3, 24)));
}

/** Packs the low byte of each int32 lane to 8 contiguous bytes. */
inline void
storeLowBytes(std::uint8_t *dst, __m256i v)
{
    const __m256i shuf = _mm256_setr_epi8(
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 0,
        4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    const __m256i packed = _mm256_shuffle_epi8(
        _mm256_and_si256(v, _mm256_set1_epi32(0xff)), shuf);
    const __m128i lo = _mm256_castsi256_si128(packed);
    const __m128i hi = _mm256_extracti128_si256(packed, 1);
    _mm_storel_epi64(reinterpret_cast<__m128i *>(dst),
                     _mm_unpacklo_epi32(lo, hi));
}

/** Scatters 8 int32 lane elements back to the four byte planes. */
inline void
storeLanes32(Vec320 *p, int l, __m256i v)
{
    const auto sl = static_cast<std::size_t>(l);
    for (int k = 0; k < 4; ++k)
        storeLowBytes(p[k].bytes.data() + sl,
                      _mm256_srli_epi32(v, 8 * k));
}

// ---- fp32: four byte planes, 8 lanes per vector ---------------------

/** Gathers 8 fp32 lane elements starting at lane @p l. */
inline __m256
loadLanesF32(const Vec320 *p, int l)
{
    return _mm256_castsi256_ps(loadLanes32(p, l));
}

} // namespace

bool
vxmBinaryAvx2(DType t, Opcode op, const Vec320 *a, const Vec320 *b,
              Vec320 *out, int lanes)
{
    if (t == DType::Int8) {
        if (lanes % 32 != 0)
            return false;
        for (int l = 0; l < lanes; l += 32) {
            const auto sl = static_cast<std::size_t>(l);
            const __m256i av = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a[0].bytes.data() +
                                                  sl));
            const __m256i bv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b[0].bytes.data() +
                                                  sl));
            __m256i r;
            switch (op) {
              case Opcode::Add:
                r = _mm256_add_epi8(av, bv);
                break;
              case Opcode::Sub:
                r = _mm256_sub_epi8(av, bv);
                break;
              case Opcode::Mul:
                r = mulWrapEpi8(av, bv);
                break;
              case Opcode::AddSat:
                r = _mm256_adds_epi8(av, bv);
                break;
              case Opcode::SubSat:
                r = _mm256_subs_epi8(av, bv);
                break;
              case Opcode::MulSat:
                r = mulSatEpi8(av, bv);
                break;
              case Opcode::Max:
                r = _mm256_max_epi8(av, bv);
                break;
              case Opcode::Min:
                r = _mm256_min_epi8(av, bv);
                break;
              case Opcode::Mask:
                r = _mm256_andnot_si256(
                    _mm256_cmpeq_epi8(bv, _mm256_setzero_si256()), av);
                break;
              default:
                return false;
            }
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(out[0].bytes.data() + sl),
                r);
        }
        return true;
    }

    if (t == DType::Int32) {
        if (lanes % 8 != 0)
            return false;
        for (int l = 0; l < lanes; l += 8) {
            const __m256i av = loadLanes32(a, l);
            const __m256i bv = loadLanes32(b, l);
            __m256i r;
            switch (op) {
              case Opcode::Add:
                r = _mm256_add_epi32(av, bv);
                break;
              case Opcode::Sub:
                r = _mm256_sub_epi32(av, bv);
                break;
              case Opcode::Mul:
                // Scalar wraps the int64 product to int32 == low 32
                // bits, which is exactly mullo.
                r = _mm256_mullo_epi32(av, bv);
                break;
              case Opcode::Max:
                r = _mm256_max_epi32(av, bv);
                break;
              case Opcode::Min:
                r = _mm256_min_epi32(av, bv);
                break;
              case Opcode::Mask:
                r = _mm256_andnot_si256(
                    _mm256_cmpeq_epi32(bv, _mm256_setzero_si256()),
                    av);
                break;
              case Opcode::AddSat: {
                // a+b overflows iff a,b share a sign and the wrapped
                // sum's sign differs; saturate toward a's sign.
                const __m256i s = _mm256_add_epi32(av, bv);
                const __m256i ovf = _mm256_andnot_si256(
                    _mm256_xor_si256(av, bv), _mm256_xor_si256(av, s));
                const __m256i sat = _mm256_xor_si256(
                    _mm256_srai_epi32(av, 31),
                    _mm256_set1_epi32(0x7fffffff));
                r = _mm256_blendv_epi8(s, sat,
                                       _mm256_srai_epi32(ovf, 31));
                break;
              }
              case Opcode::SubSat: {
                // a-b overflows iff the signs differ and the wrapped
                // difference's sign differs from a's.
                const __m256i s = _mm256_sub_epi32(av, bv);
                const __m256i ovf = _mm256_and_si256(
                    _mm256_xor_si256(av, bv), _mm256_xor_si256(av, s));
                const __m256i sat = _mm256_xor_si256(
                    _mm256_srai_epi32(av, 31),
                    _mm256_set1_epi32(0x7fffffff));
                r = _mm256_blendv_epi8(s, sat,
                                       _mm256_srai_epi32(ovf, 31));
                break;
              }
              default:
                // MulSat's 64-bit product stays scalar.
                return false;
            }
            storeLanes32(out, l, r);
        }
        return true;
    }

    if (t == DType::Fp32) {
        if (lanes % 8 != 0)
            return false;
        for (int l = 0; l < lanes; l += 8) {
            const __m256 av = loadLanesF32(a, l);
            const __m256 bv = loadLanesF32(b, l);
            __m256 r;
            switch (op) {
              // One IEEE op per lane, no reassociation: bit-identical
              // to the scalar expression. The saturating variants are
              // the plain op for float (alu_ops.hh).
              case Opcode::Add:
              case Opcode::AddSat:
                r = _mm256_add_ps(av, bv);
                break;
              case Opcode::Sub:
              case Opcode::SubSat:
                r = _mm256_sub_ps(av, bv);
                break;
              case Opcode::Mul:
              case Opcode::MulSat:
                r = _mm256_mul_ps(av, bv);
                break;
              case Opcode::Max:
                // std::max(a,b) == (a < b) ? b : a, NaN/-0 included:
                // ordered-quiet LT is false on NaN, keeping a.
                r = _mm256_blendv_ps(
                    av, bv, _mm256_cmp_ps(av, bv, _CMP_LT_OQ));
                break;
              case Opcode::Min:
                // std::min(a,b) == (b < a) ? b : a.
                r = _mm256_blendv_ps(
                    av, bv, _mm256_cmp_ps(bv, av, _CMP_LT_OQ));
                break;
              case Opcode::Mask:
                // b != 0 is an unordered compare: NaN masks pass.
                r = _mm256_and_ps(
                    av, _mm256_cmp_ps(bv, _mm256_setzero_ps(),
                                      _CMP_NEQ_UQ));
                break;
              default:
                return false;
            }
            storeLanes32(out, l, _mm256_castps_si256(r));
        }
        return true;
    }

    return false;
}

bool
vxmUnaryAvx2(DType t, Opcode op, const Vec320 *a, Vec320 *out,
             int lanes)
{
    if (t == DType::Int8) {
        if (lanes % 32 != 0)
            return false;
        for (int l = 0; l < lanes; l += 32) {
            const auto sl = static_cast<std::size_t>(l);
            const __m256i av = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a[0].bytes.data() +
                                                  sl));
            __m256i r;
            switch (op) {
              case Opcode::Neg:
                r = _mm256_sub_epi8(_mm256_setzero_si256(), av);
                break;
              case Opcode::Abs:
                // Scalar saturates |INT8_MIN| to 127; abs_epi8 keeps
                // -128 (0x80), which min_epu8 maps to 127.
                r = _mm256_min_epu8(_mm256_abs_epi8(av),
                                    _mm256_set1_epi8(127));
                break;
              case Opcode::Relu:
                r = _mm256_max_epi8(av, _mm256_setzero_si256());
                break;
              default:
                // Shift's 64-bit rounding bias stays scalar.
                return false;
            }
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(out[0].bytes.data() + sl),
                r);
        }
        return true;
    }

    if (t == DType::Int32) {
        if (lanes % 8 != 0)
            return false;
        for (int l = 0; l < lanes; l += 8) {
            const __m256i av = loadLanes32(a, l);
            __m256i r;
            switch (op) {
              case Opcode::Neg:
                r = _mm256_sub_epi32(_mm256_setzero_si256(), av);
                break;
              case Opcode::Abs:
                r = _mm256_min_epu32(
                    _mm256_abs_epi32(av),
                    _mm256_set1_epi32(0x7fffffff));
                break;
              case Opcode::Relu:
                r = _mm256_max_epi32(av, _mm256_setzero_si256());
                break;
              default:
                return false;
            }
            storeLanes32(out, l, r);
        }
        return true;
    }

    if (t == DType::Fp32) {
        if (lanes % 8 != 0)
            return false;
        const __m256 sign = _mm256_set1_ps(-0.0f);
        for (int l = 0; l < lanes; l += 8) {
            const __m256 av = loadLanesF32(a, l);
            __m256 r;
            switch (op) {
              case Opcode::Neg:
                // Scalar -a flips the sign bit, NaN included.
                r = _mm256_xor_ps(av, sign);
                break;
              case Opcode::Abs:
                r = _mm256_andnot_ps(sign, av);
                break;
              case Opcode::Relu:
                // a > 0 ? a : 0 — ordered-quiet GT sends NaN and -0
                // to +0, exactly as the scalar ternary does.
                r = _mm256_and_ps(
                    av, _mm256_cmp_ps(av, _mm256_setzero_ps(),
                                      _CMP_GT_OQ));
                break;
              default:
                // Tanh/Exp/Rsqrt call libm; they stay scalar.
                return false;
            }
            storeLanes32(out, l, _mm256_castps_si256(r));
        }
        return true;
    }

    return false;
}

bool
vxmConvertAvx2(DType from, DType to, const Vec320 *in, Vec320 *out,
               int lanes)
{
    if (lanes % 8 != 0)
        return false;

    if (from == DType::Int32 && to == DType::Fp32) {
        // cvtepi32_ps rounds to nearest-even, matching the scalar
        // path's double-widen + float narrow (single rounding).
        for (int l = 0; l < lanes; l += 8) {
            storeLanes32(out, l,
                         _mm256_castps_si256(_mm256_cvtepi32_ps(
                             loadLanes32(in, l))));
        }
        return true;
    }

    if (from == DType::Int8 && to == DType::Fp32) {
        // Every int8 is exactly representable: no rounding at all.
        for (int l = 0; l < lanes; l += 8) {
            const __m256i v = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(
                    in[0].bytes.data() + static_cast<std::size_t>(l))));
            storeLanes32(out, l,
                         _mm256_castps_si256(_mm256_cvtepi32_ps(v)));
        }
        return true;
    }

    if (from == DType::Fp32 &&
        (to == DType::Int8 || to == DType::Int32)) {
        // cvtps_epi32 rounds to nearest-even like the scalar
        // nearbyint, but returns 0x80000000 for NaN and out-of-range
        // inputs; the blends below restore the scalar clamp (high
        // side saturates, NaN becomes 0).
        const __m256i nmax = _mm256_set1_epi32(
            to == DType::Int8 ? 127 : 0x7fffffff);
        const __m256 hi_thresh = _mm256_set1_ps(
            to == DType::Int8 ? 127.0f : 2147483648.0f);
        for (int l = 0; l < lanes; l += 8) {
            const __m256 av = loadLanesF32(in, l);
            __m256i r = _mm256_cvtps_epi32(av);
            if (to == DType::Int8) {
                r = _mm256_max_epi32(_mm256_min_epi32(r, nmax),
                                     _mm256_set1_epi32(-128));
                // Inputs above 127.0f (including +huge, which cvt
                // collapsed to 0x80000000) saturate to 127.
                r = _mm256_blendv_epi8(
                    r, nmax,
                    _mm256_castps_si256(
                        _mm256_cmp_ps(av, hi_thresh, _CMP_GT_OQ)));
            } else {
                // Only inputs >= 2^31 need the high-side fix; the low
                // side already lands on 0x80000000 == INT32_MIN.
                r = _mm256_blendv_epi8(
                    r, nmax,
                    _mm256_castps_si256(
                        _mm256_cmp_ps(av, hi_thresh, _CMP_GE_OQ)));
            }
            r = _mm256_andnot_si256(
                _mm256_castps_si256(
                    _mm256_cmp_ps(av, av, _CMP_UNORD_Q)),
                r);
            if (to == DType::Int8) {
                storeLowBytes(out[0].bytes.data() +
                                  static_cast<std::size_t>(l),
                              r);
            } else {
                storeLanes32(out, l, r);
            }
        }
        return true;
    }

    return false;
}

} // namespace tsp::simd

#else // !x86

namespace tsp::simd {

bool
vxmBinaryAvx2(DType, Opcode, const Vec320 *, const Vec320 *, Vec320 *,
              int)
{
    return false;
}

bool
vxmUnaryAvx2(DType, Opcode, const Vec320 *, Vec320 *, int)
{
    return false;
}

bool
vxmConvertAvx2(DType, DType, const Vec320 *, Vec320 *, int)
{
    return false;
}

} // namespace tsp::simd

#endif
