/**
 * @file
 * AVX2 lane kernels for the VXM's point-wise operations.
 *
 * Each kernel reproduces the corresponding alu_ops.hh semantics
 * bit-for-bit: two's-complement wrap, saturation clamps, and — for
 * the fp32 paths — one IEEE operation per lane with no reassociation,
 * plus compare/blend sequences whose NaN and signed-zero behavior
 * matches the scalar ternaries exactly. fp16 and the libm unaries
 * (Tanh/Exp/Rsqrt) stay scalar. Partial coverage by design: a kernel
 * returns false for any (dtype, opcode, lanes) combination it does
 * not handle and the caller falls back to the scalar template, so the
 * differential tests exercise identical numerics either way.
 *
 * Definitions live in vxm_kernels_avx2.cc, compiled with -mavx2;
 * callers gate on tsp::simdKernelsEnabled() (common/cpu.hh).
 */

#ifndef TSP_VXM_VXM_KERNELS_HH
#define TSP_VXM_VXM_KERNELS_HH

#include <cstdint>

#include "arch/types.hh"
#include "isa/opcode.hh"

namespace tsp::simd {

/**
 * Point-wise binary op over @p lanes lane elements held in byte-plane
 * stream groups (element byte k of lane l is vec k's bytes[l]).
 *
 * @return false when (t, op, lanes) has no vector path.
 */
bool vxmBinaryAvx2(DType t, Opcode op, const Vec320 *a, const Vec320 *b,
                   Vec320 *out, int lanes);

/** Point-wise unary op; same contract as vxmBinaryAvx2. */
bool vxmUnaryAvx2(DType t, Opcode op, const Vec320 *a, Vec320 *out,
                  int lanes);

/**
 * Element-type conversion (the requantization primitive): handles
 * Int8/Int32 -> Fp32 and Fp32 -> Int8/Int32 with round-to-nearest-
 * even and the scalar aluConvert's saturation and NaN-to-zero
 * behavior. Same contract as vxmBinaryAvx2.
 */
bool vxmConvertAvx2(DType from, DType to, const Vec320 *in,
                    Vec320 *out, int lanes);

} // namespace tsp::simd

#endif // TSP_VXM_VXM_KERNELS_HH
