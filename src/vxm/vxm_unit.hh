/**
 * @file
 * The vector execution module: a 4x4 mesh of 32-bit ALUs per superlane
 * (16 ALUs per lane, 5,120 chip-wide — paper III.C).
 *
 * Each of the 16 ALU positions has its own instruction queue; an ALU
 * executes one point-wise vector operation per dispatch, consuming
 * operand stream groups at the VXM's position and producing the result
 * group d_func cycles later at the same position. Chaining ALUs is
 * pure scheduling: a downstream ALU dispatched exactly d_func cycles
 * later intercepts the intermediate without a MEM round trip.
 */

#ifndef TSP_VXM_VXM_UNIT_HH
#define TSP_VXM_VXM_UNIT_HH

#include <cstdint>

#include "arch/config.hh"
#include "stream/stream_io.hh"
#include "vxm/alu_ops.hh"

namespace tsp {

/** The 16-ALU vector processor at the chip bisection. */
class VxmUnit
{
  public:
    VxmUnit(const ChipConfig &cfg, StreamFabric &fabric);

    /**
     * Executes one VXM instruction dispatched by ALU queue @p alu at
     * cycle @p now. Stream-group alignment is validated (int16/fp16
     * on even ids, int32/fp32 on multiples of 4).
     */
    void execute(const Instruction &inst, int alu, Cycle now);

    /** @return total lane-operations executed (power model input). */
    std::uint64_t laneOps() const { return laneOps_; }

    /** @return total instructions executed. */
    std::uint64_t instructions() const { return instructions_; }

    /** @return the stream access point (CSR counters). */
    const StreamIo &io() const { return io_; }

    /** Serializes counters (the VXM holds no latched data state). */
    void
    saveState(SnapshotWriter &w) const
    {
        io_.saveState(w);
        w.u64(laneOps_);
        w.u64(instructions_);
    }

    /** Restores counters. */
    void
    loadState(SnapshotReader &r)
    {
        io_.loadState(r);
        laneOps_ = r.u64();
        instructions_ = r.u64();
    }

  private:
    /** Reads the @p g consecutive streams of an operand group. */
    void loadGroup(StreamRef base, int g, Vec320 *out);

    /** Produces @p g consecutive result streams at @p when. */
    void storeGroup(StreamRef base, int g, const Vec320 *in, Cycle when);

    static void checkAlignment(StreamRef s, int g);

    const ChipConfig &cfg_;
    StreamIo io_;

    std::uint64_t laneOps_ = 0;
    std::uint64_t instructions_ = 0;
};

} // namespace tsp

#endif // TSP_VXM_VXM_UNIT_HH
