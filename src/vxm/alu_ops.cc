/**
 * @file
 * The ALU op bodies live inline in alu_ops.hh so the VxmUnit's
 * specialized lane loops can fold them at compile time; this
 * translation unit only anchors the header in the library.
 */

#include "vxm/alu_ops.hh"
