/**
 * @file
 * Pure element-wise semantics of the VXM ALU operations.
 *
 * The ALUs are stateless 32-bit units; multi-byte element types occupy
 * naturally aligned stream groups (int16/fp16 on a pair, int32/fp32 on
 * a quad — paper II.B, III.C). These functions operate on one lane's
 * element at a time, with vectors assembled/scattered by the VxmUnit.
 * Saturating and modulo (wrapping) variants carry the paper's
 * exception-handling split; no flags or status bits exist.
 *
 * Everything here is defined inline: the VxmUnit's lane loops are
 * instantiated with compile-time (dtype, opcode) pairs, and inlining
 * these bodies lets the per-lane switches constant-fold away — the
 * dominant cost in whole-chip simulation profiles.
 */

#ifndef TSP_VXM_ALU_OPS_HH
#define TSP_VXM_ALU_OPS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "arch/types.hh"
#include "common/fp16.hh"
#include "common/logging.hh"
#include "isa/opcode.hh"

namespace tsp {

/**
 * A single lane element in flight: raw 32-bit container plus the type
 * it currently holds. Integer types are sign-extended into `i`; float
 * types live in `f` (fp16 is widened on load, narrowed on store).
 */
struct LaneValue
{
    std::int64_t i = 0; ///< Integer payload (sign-extended).
    float f = 0.0f;     ///< Floating payload.
};

/** @return true for Fp16/Fp32. */
constexpr bool
isFloatType(DType t)
{
    return t == DType::Fp16 || t == DType::Fp32;
}

/** @return the signed minimum representable in integer type @p t. */
inline std::int64_t
intMin(DType t)
{
    switch (t) {
      case DType::Int8:
        return -128;
      case DType::Int16:
        return -32768;
      case DType::Int32:
        return -2147483648ll;
      default:
        panic("intMin: non-integer dtype %s", dtypeName(t));
    }
}

/** @return the signed maximum representable in integer type @p t. */
inline std::int64_t
intMax(DType t)
{
    switch (t) {
      case DType::Int8:
        return 127;
      case DType::Int16:
        return 32767;
      case DType::Int32:
        return 2147483647ll;
      default:
        panic("intMax: non-integer dtype %s", dtypeName(t));
    }
}

/** Wraps a wide integer into the width of @p t (two's complement). */
inline std::int64_t
wrapInt(DType t, std::int64_t v)
{
    switch (t) {
      case DType::Int8:
        return static_cast<std::int8_t>(v);
      case DType::Int16:
        return static_cast<std::int16_t>(v);
      case DType::Int32:
        return static_cast<std::int32_t>(v);
      default:
        panic("wrapInt: non-integer dtype %s", dtypeName(t));
    }
}

/** Saturates a wide integer into the range of @p t. */
inline std::int64_t
satInt(DType t, std::int64_t v)
{
    return std::clamp(v, intMin(t), intMax(t));
}

/** Assembles a lane element of type @p t from @p g little-endian bytes. */
inline LaneValue
laneLoad(const std::uint8_t *bytes, DType t)
{
    LaneValue v;
    switch (t) {
      case DType::Int8:
        v.i = static_cast<std::int8_t>(bytes[0]);
        break;
      case DType::Int16:
        v.i = static_cast<std::int16_t>(
            bytes[0] | (static_cast<std::uint16_t>(bytes[1]) << 8));
        break;
      case DType::Int32: {
        std::uint32_t u = 0;
        for (int i = 0; i < 4; ++i)
            u |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
        v.i = static_cast<std::int32_t>(u);
        break;
      }
      case DType::Fp16: {
        const auto u = static_cast<std::uint16_t>(
            bytes[0] | (static_cast<std::uint16_t>(bytes[1]) << 8));
        v.f = Fp16::fromBits(u).toFloat();
        break;
      }
      case DType::Fp32: {
        std::uint32_t u = 0;
        for (int i = 0; i < 4; ++i)
            u |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
        float f;
        static_assert(sizeof(f) == sizeof(u));
        __builtin_memcpy(&f, &u, sizeof(f));
        v.f = f;
        break;
      }
    }
    return v;
}

/**
 * Scatters @p v back to @p g little-endian bytes of type @p t,
 * wrapping integers (store is type-pure; range handling happened in
 * the op itself).
 */
inline void
laneStore(std::uint8_t *bytes, DType t, const LaneValue &v)
{
    switch (t) {
      case DType::Int8:
        bytes[0] = static_cast<std::uint8_t>(wrapInt(t, v.i));
        break;
      case DType::Int16: {
        const auto u =
            static_cast<std::uint16_t>(wrapInt(t, v.i) & 0xffff);
        bytes[0] = static_cast<std::uint8_t>(u & 0xff);
        bytes[1] = static_cast<std::uint8_t>(u >> 8);
        break;
      }
      case DType::Int32: {
        const auto u = static_cast<std::uint32_t>(
            wrapInt(t, v.i) & 0xffffffffll);
        for (int i = 0; i < 4; ++i)
            bytes[i] = static_cast<std::uint8_t>((u >> (8 * i)) & 0xff);
        break;
      }
      case DType::Fp16: {
        const std::uint16_t u = Fp16(v.f).bits();
        bytes[0] = static_cast<std::uint8_t>(u & 0xff);
        bytes[1] = static_cast<std::uint8_t>(u >> 8);
        break;
      }
      case DType::Fp32: {
        std::uint32_t u;
        __builtin_memcpy(&u, &v.f, sizeof(u));
        for (int i = 0; i < 4; ++i)
            bytes[i] = static_cast<std::uint8_t>((u >> (8 * i)) & 0xff);
        break;
      }
    }
}

/** Applies a unary VXM op. @p shift_amount is used by Opcode::Shift. */
inline LaneValue
aluUnary(Opcode op, DType t, const LaneValue &a,
         std::uint32_t shift_amount)
{
    LaneValue r;
    const bool flt = isFloatType(t);
    switch (op) {
      case Opcode::Neg:
        if (flt)
            r.f = -a.f;
        else
            r.i = wrapInt(t, -a.i);
        return r;
      case Opcode::Abs:
        if (flt)
            r.f = std::fabs(a.f);
        else
            r.i = satInt(t, a.i < 0 ? -a.i : a.i);
        return r;
      case Opcode::Relu:
        if (flt)
            r.f = a.f > 0.0f ? a.f : 0.0f;
        else
            r.i = a.i > 0 ? a.i : 0;
        return r;
      case Opcode::Tanh:
        TSP_ASSERT(flt);
        r.f = std::tanh(a.f);
        return r;
      case Opcode::Exp:
        TSP_ASSERT(flt);
        r.f = std::exp(a.f);
        return r;
      case Opcode::Rsqrt:
        TSP_ASSERT(flt);
        r.f = 1.0f / std::sqrt(a.f);
        return r;
      case Opcode::Shift: {
        TSP_ASSERT(!flt);
        // Rounding arithmetic right shift (round half away from
        // zero), the fixed-point requantization primitive.
        if (shift_amount == 0) {
            r.i = a.i;
        } else {
            const std::int64_t bias = 1ll << (shift_amount - 1);
            const std::int64_t adj = a.i >= 0 ? a.i + bias
                                              : a.i - bias + 1;
            r.i = wrapInt(t, adj >> shift_amount);
        }
        return r;
      }
      default:
        panic("aluUnary: not a unary op: %s", opcodeName(op));
    }
}

/** Applies a binary VXM op. */
inline LaneValue
aluBinary(Opcode op, DType t, const LaneValue &a, const LaneValue &b)
{
    LaneValue r;
    const bool flt = isFloatType(t);
    switch (op) {
      case Opcode::Add:
        if (flt)
            r.f = a.f + b.f;
        else
            r.i = wrapInt(t, a.i + b.i);
        return r;
      case Opcode::Sub:
        if (flt)
            r.f = a.f - b.f;
        else
            r.i = wrapInt(t, a.i - b.i);
        return r;
      case Opcode::Mul:
        if (flt)
            r.f = a.f * b.f;
        else
            r.i = wrapInt(t, a.i * b.i);
        return r;
      case Opcode::AddSat:
        if (flt)
            r.f = a.f + b.f;
        else
            r.i = satInt(t, a.i + b.i);
        return r;
      case Opcode::SubSat:
        if (flt)
            r.f = a.f - b.f;
        else
            r.i = satInt(t, a.i - b.i);
        return r;
      case Opcode::MulSat:
        if (flt)
            r.f = a.f * b.f;
        else
            r.i = satInt(t, a.i * b.i);
        return r;
      case Opcode::Max:
        if (flt)
            r.f = std::max(a.f, b.f);
        else
            r.i = std::max(a.i, b.i);
        return r;
      case Opcode::Min:
        if (flt)
            r.f = std::min(a.f, b.f);
        else
            r.i = std::min(a.i, b.i);
        return r;
      case Opcode::Mask:
        // Lane passes where the mask operand is nonzero.
        if (flt)
            r.f = b.f != 0.0f ? a.f : 0.0f;
        else
            r.i = b.i != 0 ? a.i : 0;
        return r;
      default:
        panic("aluBinary: not a binary op: %s", opcodeName(op));
    }
}

/**
 * Converts between element types with round-to-nearest and integer
 * saturation (the requantization primitive).
 */
inline LaneValue
aluConvert(DType from, DType to, const LaneValue &a)
{
    LaneValue r;
    // Widen to double as the common intermediate.
    const double wide =
        isFloatType(from) ? static_cast<double>(a.f)
                          : static_cast<double>(a.i);
    if (isFloatType(to)) {
        r.f = static_cast<float>(wide);
        if (to == DType::Fp16)
            r.f = Fp16(r.f).toFloat(); // Single rounding to fp16 grid.
    } else if (wide != wide) {
        // NaN converts to zero (casting it would be UB; the hardware
        // integer pipe has no NaN to propagate).
        r.i = 0;
    } else {
        // Round to nearest (ties to even) then saturate.
        const double rounded = std::nearbyint(wide);
        const double lo = static_cast<double>(intMin(to));
        const double hi = static_cast<double>(intMax(to));
        const double clamped = std::clamp(rounded, lo, hi);
        r.i = static_cast<std::int64_t>(clamped);
    }
    return r;
}

} // namespace tsp

#endif // TSP_VXM_ALU_OPS_HH
