/**
 * @file
 * Pure element-wise semantics of the VXM ALU operations.
 *
 * The ALUs are stateless 32-bit units; multi-byte element types occupy
 * naturally aligned stream groups (int16/fp16 on a pair, int32/fp32 on
 * a quad — paper II.B, III.C). These functions operate on one lane's
 * element at a time, with vectors assembled/scattered by the VxmUnit.
 * Saturating and modulo (wrapping) variants carry the paper's
 * exception-handling split; no flags or status bits exist.
 */

#ifndef TSP_VXM_ALU_OPS_HH
#define TSP_VXM_ALU_OPS_HH

#include <cstdint>

#include "arch/types.hh"
#include "isa/opcode.hh"

namespace tsp {

/**
 * A single lane element in flight: raw 32-bit container plus the type
 * it currently holds. Integer types are sign-extended into `i`; float
 * types live in `f` (fp16 is widened on load, narrowed on store).
 */
struct LaneValue
{
    std::int64_t i = 0; ///< Integer payload (sign-extended).
    float f = 0.0f;     ///< Floating payload.
};

/** Assembles a lane element of type @p t from @p g little-endian bytes. */
LaneValue laneLoad(const std::uint8_t *bytes, DType t);

/**
 * Scatters @p v back to @p g little-endian bytes of type @p t,
 * wrapping integers (store is type-pure; range handling happened in
 * the op itself).
 */
void laneStore(std::uint8_t *bytes, DType t, const LaneValue &v);

/** Applies a unary VXM op. @p shift_amount is used by Opcode::Shift. */
LaneValue aluUnary(Opcode op, DType t, const LaneValue &a,
                   std::uint32_t shift_amount);

/** Applies a binary VXM op. */
LaneValue aluBinary(Opcode op, DType t, const LaneValue &a,
                    const LaneValue &b);

/**
 * Converts between element types with round-to-nearest and integer
 * saturation (the requantization primitive).
 */
LaneValue aluConvert(DType from, DType to, const LaneValue &a);

/** @return the signed min/max representable in integer type @p t. */
std::int64_t intMin(DType t);
std::int64_t intMax(DType t);

/** @return true for Fp16/Fp32. */
constexpr bool
isFloatType(DType t)
{
    return t == DType::Fp16 || t == DType::Fp32;
}

} // namespace tsp

#endif // TSP_VXM_ALU_OPS_HH
