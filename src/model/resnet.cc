#include "model/resnet.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace tsp::model {

ConvWeights
makeConvWeights(int out_c, int in_c, int kh, int kw,
                std::uint64_t seed)
{
    Rng rng(seed);
    ConvWeights w;
    w.outC = out_c;
    w.inC = in_c;
    w.kh = kh;
    w.kw = kw;
    w.w.resize(static_cast<std::size_t>(out_c) * in_c * kh * kw);
    w.bias.resize(static_cast<std::size_t>(out_c));
    w.scale.resize(static_cast<std::size_t>(out_c));

    // Weight std ~10 LSB; activations run at std ~30 LSB, so the
    // int32 accumulator has std ~ 10 * 30 * sqrt(K). The requant
    // scale maps that back to an int8 std of ~30 (keeps every layer
    // in a healthy dynamic range).
    for (auto &v : w.w) {
        const float g = rng.gaussian() * 10.0f;
        v = static_cast<std::int8_t>(
            std::clamp(std::lround(g), -127l, 127l));
    }
    const float k = static_cast<float>(in_c * kh * kw);
    const float base_scale = 0.1f / std::sqrt(k);
    for (int oc = 0; oc < out_c; ++oc) {
        w.bias[static_cast<std::size_t>(oc)] =
            static_cast<std::int32_t>(rng.gaussian() * 64.0f);
        // Small per-channel jitter keeps the scale vector non-trivial.
        w.scale[static_cast<std::size_t>(oc)] =
            base_scale * rng.uniform(0.9f, 1.1f);
    }
    return w;
}

std::vector<std::int8_t>
makeImage(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> img(224 * 224 * 3);
    for (auto &v : img) {
        v = static_cast<std::int8_t>(std::clamp(
            std::lround(rng.gaussian() * 30.0f), -127l, 127l));
    }
    return img;
}

std::vector<std::int8_t>
im2colStem(const std::vector<std::int8_t> &image)
{
    TSP_ASSERT(image.size() == 224u * 224 * 3);
    std::vector<std::int8_t> out(
        static_cast<std::size_t>(kStemH) * kStemW * kStemC, 0);
    for (int oy = 0; oy < kStemH; ++oy) {
        for (int ox = 0; ox < kStemW; ++ox) {
            for (int ky = 0; ky < 7; ++ky) {
                const int iy = oy * 2 - 3 + ky;
                if (iy < 0 || iy >= 224)
                    continue;
                for (int kx = 0; kx < 7; ++kx) {
                    const int ix = ox * 2 - 3 + kx;
                    if (ix < 0 || ix >= 224)
                        continue;
                    for (int c = 0; c < 3; ++c) {
                        out[(static_cast<std::size_t>(oy) * kStemW +
                             ox) *
                                kStemC +
                            (ky * 7 + kx) * 3 + c] =
                            image[(static_cast<std::size_t>(iy) *
                                       224 +
                                   ix) *
                                      3 +
                                  c];
                    }
                }
            }
        }
    }
    return out;
}

namespace {

/**
 * The stem conv weights, reindexed for the im2col layout: input
 * channel (ky*7+kx)*3+c of the 1x1 conv corresponds to tap (ky,kx)
 * of original channel c.
 */
ConvWeights
makeStemWeights(int out_c, std::uint64_t seed)
{
    ConvWeights w = makeConvWeights(out_c, kStemC, 1, 1, seed);
    // Rescale for the true fan-in (same as the 7x7x3 original).
    return w;
}

} // namespace

Graph
buildResNet(int depth, std::uint64_t seed, bool wide, int class_count)
{
    int blocks[4];
    switch (depth) {
      case 50:
        blocks[0] = 3;
        blocks[1] = 4;
        blocks[2] = 6;
        blocks[3] = 3;
        break;
      case 101:
        blocks[0] = 3;
        blocks[1] = 4;
        blocks[2] = 23;
        blocks[3] = 3;
        break;
      case 152:
        blocks[0] = 3;
        blocks[1] = 8;
        blocks[2] = 36;
        blocks[3] = 3;
        break;
      default:
        fatal("buildResNet: depth must be 50, 101, or 152 (got %d)",
              depth);
    }
    return buildResNetBlocks(blocks, seed, wide, class_count);
}

Graph
buildResNetBlocks(const int blocks[4], std::uint64_t seed, bool wide,
                  int class_count)
{
    const int base = wide ? 80 : 64;
    Rng seeder(seed);

    Graph g;
    const int input = g.addInput(kStemH, kStemW, kStemC);

    // Stem: the im2col'd 7x7/2 conv is a dense 1x1 matmul.
    ConvGeom stem_geom;
    stem_geom.relu = true;
    int x = g.addConv(input, stem_geom,
                      makeStemWeights(base, seeder.next()));
    x = g.addMaxPool(x, 3, 2, 1);

    int in_c = base;
    for (int stage = 0; stage < 4; ++stage) {
        const int width = base << stage;       // Bottleneck width.
        const int out_c = width * 4;           // Block output.
        for (int b = 0; b < blocks[stage]; ++b) {
            const int stride = (stage > 0 && b == 0) ? 2 : 1;
            const int block_in = x;

            // 1x1 reduce.
            ConvGeom g1;
            g1.relu = true;
            int y = g.addConv(
                block_in, g1,
                makeConvWeights(width, in_c, 1, 1, seeder.next()));
            // 3x3 (carries the stride).
            ConvGeom g3;
            g3.kh = 3;
            g3.kw = 3;
            g3.stride = stride;
            g3.pad = 1;
            g3.relu = true;
            y = g.addConv(
                y, g3,
                makeConvWeights(width, width, 3, 3, seeder.next()));
            // 1x1 expand, no ReLU (applied after the residual).
            ConvGeom g2;
            g2.relu = false;
            y = g.addConv(
                y, g2,
                makeConvWeights(out_c, width, 1, 1, seeder.next()));

            int skip = block_in;
            if (in_c != out_c || stride != 1) {
                ConvGeom gd;
                gd.stride = stride;
                gd.relu = false;
                skip = g.addConv(block_in, gd,
                                 makeConvWeights(out_c, in_c, 1, 1,
                                                 seeder.next()));
            }
            x = g.addResidual(y, skip, 0.6f, 0.6f, /*relu=*/true);
            in_c = out_c;
        }
    }

    // Head: global average pool then the classifier.
    const int positions = 7 * 7;
    x = g.addGlobalAvgPool(x, 1.0f / static_cast<float>(positions));
    ConvGeom fc_geom;
    fc_geom.relu = false;
    x = g.addConv(x, fc_geom,
                  makeConvWeights(class_count, in_c, 1, 1,
                                  seeder.next()));
    g.inferShapes();
    return g;
}

Graph
buildTinyNet(std::uint64_t seed, int h, int w, int c)
{
    Rng seeder(seed);
    Graph g;
    const int input = g.addInput(h, w, c);

    ConvGeom g3;
    g3.kh = 3;
    g3.kw = 3;
    g3.pad = 1;
    g3.relu = true;
    int x = g.addConv(input, g3,
                      makeConvWeights(16, c, 3, 3, seeder.next()));

    ConvGeom g1;
    g1.relu = false;
    const int y = g.addConv(
        x, g1, makeConvWeights(16, 16, 1, 1, seeder.next()));
    x = g.addResidual(y, x, 0.7f, 0.5f, /*relu=*/true);
    x = g.addMaxPool(x, 3, 2, 1);
    x = g.addGlobalAvgPool(
        x, 1.0f / static_cast<float>(((h + 1) / 2) * ((w + 1) / 2)));
    ConvGeom fc;
    fc.relu = false;
    x = g.addConv(x, fc, makeConvWeights(10, 16, 1, 1, seeder.next()));
    g.inferShapes();
    return g;
}

} // namespace tsp::model
