/**
 * @file
 * ResNet-50/101/152 model construction (paper section IV).
 *
 * Weights are synthetic (seeded, distribution-matched) — the paper's
 * throughput, latency, and power results depend on layer geometry,
 * not trained values (DESIGN.md substitution table). BatchNorm is
 * folded into the per-channel conv scale/bias, as standard for int8
 * inference. The first 7x7 stride-2 convolution is im2col'd on the
 * host into a [112 x 112 x 147] tensor so it lowers as a dense
 * matmul; every other operator runs on-chip.
 *
 * The "wide" variant raises every stage width by 1.25x so channel
 * counts become multiples of 320 (80 / 320 / 640 / 1280 / 2560),
 * filling the 320x320 MXM exactly — the paper's section IV.E
 * alternative model trained to higher accuracy at equal latency.
 */

#ifndef TSP_MODEL_RESNET_HH
#define TSP_MODEL_RESNET_HH

#include <cstdint>

#include "graph/graph.hh"

namespace tsp::model {

/** Image geometry after host-side im2col of the stem convolution. */
inline constexpr int kStemH = 112;
inline constexpr int kStemW = 112;
inline constexpr int kStemC = 7 * 7 * 3; // 147

/** Synthesizes seeded conv weights with realistic statistics. */
ConvWeights makeConvWeights(int out_c, int in_c, int kh, int kw,
                            std::uint64_t seed);

/**
 * Builds a ResNet graph.
 *
 * @param depth 50, 101, or 152 (stage block counts 3-4-6-3,
 * 3-4-23-3, 3-8-36-3).
 * @param seed weight RNG seed.
 * @param wide use the 320-aligned widened channel plan (IV.E).
 * @param class_count classifier outputs (1000).
 */
Graph buildResNet(int depth, std::uint64_t seed, bool wide = false,
                  int class_count = 1000);

/**
 * Builds a ResNet with explicit per-stage block counts (the paper's
 * IV.F projection methodology: ResNet-101/152 repeat ResNet-50's
 * block structures, so their cycle counts follow from measured
 * per-block costs).
 */
Graph buildResNetBlocks(const int blocks[4], std::uint64_t seed,
                        bool wide = false, int class_count = 1000);

/** A seeded synthetic 224 x 224 x 3 int8 image. */
std::vector<std::int8_t> makeImage(std::uint64_t seed);

/** Host-side im2col of the stem: 224x224x3 -> 112x112x147. */
std::vector<std::int8_t> im2colStem(
    const std::vector<std::int8_t> &image);

/**
 * A small 3-layer conv net on a tiny image, for integration tests
 * that exercise every engine (conv, pool, residual, gap, fc) in
 * seconds rather than minutes.
 */
Graph buildTinyNet(std::uint64_t seed, int h = 12, int w = 12,
                   int c = 8);

} // namespace tsp::model

#endif // TSP_MODEL_RESNET_HH
