#include "sim/exec_trace.hh"

#include "common/logging.hh"
#include "sim/chip.hh"

namespace tsp {

std::size_t
ExecutionTrace::arenaBytes() const
{
    return static_cast<std::size_t>(slotCount) * sizeof(Vec320);
}

std::size_t
ExecutionTrace::memoryBytes() const
{
    // arenaBytes() is transient TapePlayer storage, not trace heap —
    // but every replay of this trace pins exactly that much, so the
    // cache budget must carry it or eviction under-counts what a
    // cached-and-replaying trace really holds resident.
    return sizeof(ExecutionTrace) + events.size() * sizeof(Event) +
           insts.size() * sizeof(Instruction) +
           consumeTape.size() * sizeof(std::uint32_t) +
           produceSlot.size() * sizeof(std::uint32_t) +
           chips.size() * sizeof(ChipDeltas) + arenaBytes();
}

TraceRecording::TraceRecording(std::vector<Chip *> chips)
    : chips_(std::move(chips)),
      trace_(std::make_unique<ExecutionTrace>())
{
    TSP_ASSERT(!chips_.empty() && chips_.size() <= 256);
    start_ = chips_[0]->now();
    snaps_.reserve(chips_.size());
    for (std::size_t i = 0; i < chips_.size(); ++i) {
        Chip *c = chips_[i];
        TSP_ASSERT(c->now() == start_);
        snaps_.push_back(snapshot(*c));
        c->armTraceRecorder(this, static_cast<int>(i));
    }
    armed_ = true;
}

TraceRecording::~TraceRecording() { disarm(); }

void
TraceRecording::disarm()
{
    if (!armed_)
        return;
    for (Chip *c : chips_)
        c->disarmTraceRecorder();
    armed_ = false;
}

TraceRecording::Snap
TraceRecording::snapshot(const Chip &chip)
{
    Snap s;
    s.dispatched = chip.totalDispatched();
    s.nopCycles = chip.totalNopCycles();
    s.parkedCycles = chip.totalParkedCycles();
    s.hops = chip.fabric().totalHops();
    s.writes = chip.fabric().totalWrites();
    s.maccOps = chip.totalMaccOps();
    s.vxmOps = chip.vxm().laneOps();
    s.sxmBytes = chip.sxm(Hemisphere::West).bytesSwitched() +
                 chip.sxm(Hemisphere::East).bytesSwitched();
    s.sramAccesses = chip.sramAccessCount();
    return s;
}

std::uint32_t
TraceRecording::offsetOf(Cycle now)
{
    const Cycle off = now - start_;
    if (off > 0xffffffffull) {
        poisoned_ = true;
        return 0;
    }
    return static_cast<std::uint32_t>(off);
}

std::uint32_t
TraceRecording::onProduce()
{
    if (produceCount_ >= kTapeUntagged ||
        trace_->consumeTape.size() >= kTapeUntagged) {
        poisoned_ = true;
        return 0;
    }
    // Interleaving position against the consume tape: finish() walks
    // both in recorded order to compute value liveness.
    produceAt_.push_back(
        static_cast<std::uint32_t>(trace_->consumeTape.size()));
    return static_cast<std::uint32_t>(produceCount_++);
}

void
TraceRecording::onConsume(std::uint32_t tag)
{
    if (tag == kTapeUntagged)
        poisoned_ = true;
    trace_->consumeTape.push_back(tag);
}

void
TraceRecording::onDispatch(int chip, int queue_id,
                           const Instruction &inst, Cycle now)
{
    // Program vectors are stable for the duration of a run, so the
    // instruction's address identifies it — Repeat re-issues and the
    // steady state of a loop dedup to one stored copy.
    const auto [it, inserted] = instIndex_.try_emplace(
        &inst, static_cast<std::uint32_t>(trace_->insts.size()));
    if (inserted)
        trace_->insts.push_back(inst);
    ExecutionTrace::Event e;
    e.cycleOffset = offsetOf(now);
    e.instIndex = it->second;
    e.unit = static_cast<std::uint16_t>(queue_id);
    e.chip = static_cast<std::uint8_t>(chip);
    e.kind = ExecutionTrace::EventKind::Dispatch;
    trace_->events.push_back(e);
}

void
TraceRecording::onMxmTick(int chip, int plane, Cycle now)
{
    ExecutionTrace::Event e;
    e.cycleOffset = offsetOf(now);
    e.unit = static_cast<std::uint16_t>(plane);
    e.chip = static_cast<std::uint8_t>(chip);
    e.kind = ExecutionTrace::EventKind::MxmTick;
    trace_->events.push_back(e);
}

std::shared_ptr<const ExecutionTrace>
TraceRecording::finish(bool completed)
{
    disarm();
    if (!completed || poisoned_ || !trace_)
        return nullptr;

    ExecutionTrace &t = *trace_;
    const Cycle end = chips_[0]->now();
    t.span = end - start_;
    t.produces = produceCount_;
    t.chips.reserve(chips_.size());
    for (std::size_t i = 0; i < chips_.size(); ++i) {
        const Chip &c = *chips_[i];
        TSP_ASSERT(c.now() == end);
        const Snap &s0 = snaps_[i];
        const Snap s1 = snapshot(c);
        ExecutionTrace::ChipDeltas d;
        d.dispatched = s1.dispatched - s0.dispatched;
        d.nopCycles = s1.nopCycles - s0.nopCycles;
        d.parkedCycles = s1.parkedCycles - s0.parkedCycles;
        d.fabricHops = s1.hops - s0.hops;
        d.fabricWrites = s1.writes - s0.writes;
        // The run's activity totals: exactly what per-cycle sampling
        // summed, since every counter only moves on sampled cycles
        // and the fabric's hop total equals the per-cycle
        // validEntries() sum (advance() accrues that same value).
        d.activity.maccOps = s1.maccOps - s0.maccOps;
        d.activity.vxmLaneOps = s1.vxmOps - s0.vxmOps;
        d.activity.sxmBytes = s1.sxmBytes - s0.sxmBytes;
        d.activity.sramWords =
            (s1.sramAccesses - s0.sramAccesses) * kSuperlanes;
        d.activity.streamHops = s1.hops - s0.hops;
        d.activity.icuDispatches = d.dispatched;
        t.chips.push_back(d);
    }
    // Slot allocation: walk produces and consumes in recorded order,
    // freeing a value's slot at its last consume. Replay re-executes
    // the exact same interleaving, so a reused slot is only ever
    // overwritten after its previous value's final read.
    constexpr std::uint32_t kNever = 0xffffffffu;
    const auto produces32 = static_cast<std::uint32_t>(produceCount_);
    std::vector<std::uint32_t> lastUse(produces32, kNever);
    for (std::uint32_t c = 0;
         c < static_cast<std::uint32_t>(t.consumeTape.size()); ++c) {
        const std::uint32_t tag = t.consumeTape[c];
        if (tag != kTapeMiss)
            lastUse[tag] = c;
    }
    t.produceSlot.resize(produces32);
    std::vector<std::uint32_t> freeSlots;
    std::uint32_t slots = 1; // Slot 0: scratch for unconsumed values.
    std::size_t c = 0;
    for (std::uint32_t tag = 0; tag < produces32; ++tag) {
        while (c < produceAt_[tag]) {
            const std::uint32_t done = t.consumeTape[c];
            if (done != kTapeMiss && lastUse[done] == c)
                freeSlots.push_back(t.produceSlot[done]);
            ++c;
        }
        if (lastUse[tag] == kNever) {
            t.produceSlot[tag] = 0;
        } else if (freeSlots.empty()) {
            t.produceSlot[tag] = slots++;
        } else {
            t.produceSlot[tag] = freeSlots.back();
            freeSlots.pop_back();
        }
    }
    t.slotCount = slots;

    t.events.shrink_to_fit();
    t.insts.shrink_to_fit();
    t.consumeTape.shrink_to_fit();
    return std::shared_ptr<const ExecutionTrace>(std::move(trace_));
}

namespace {

/**
 * The replay-side tape: produces write into the arena, consumes read
 * arena pointers. The arena holds one pinned slot per trace *slot*
 * (peak concurrently-live values), not per produce — the whole
 * exchange history stays cache-resident instead of growing to
 * gigabytes on dense models, and it never reallocates, so the
 * pointers handed out stay valid for a value's recorded lifetime.
 */
class TapePlayer final : public TapeReplayer
{
  public:
    explicit TapePlayer(const ExecutionTrace &trace)
        : trace_(trace),
          arena_(static_cast<std::size_t>(trace.slotCount))
    {
    }

    Vec320 *
    onProduce() override
    {
        TSP_ASSERT(produced_ < trace_.produceSlot.size());
        return &arena_[trace_.produceSlot[produced_++]];
    }

    const Vec320 *
    onConsume() override
    {
        TSP_ASSERT(next_ < trace_.consumeTape.size());
        const std::uint32_t t = trace_.consumeTape[next_++];
        if (t == kTapeMiss)
            return nullptr;
        // A consume can only cite a produce that already ran: the
        // recorded host order is the replay order.
        TSP_ASSERT(t < produced_);
        return &arena_[trace_.produceSlot[t]];
    }

    void
    onConsumeRun(const Vec320 **outs, std::size_t n) override
    {
        TSP_ASSERT(next_ + n <= trace_.consumeTape.size());
        const std::uint32_t *tape = trace_.consumeTape.data() + next_;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t t = tape[i];
            if (t == kTapeMiss) {
                outs[i] = nullptr;
                continue;
            }
            TSP_ASSERT(t < produced_);
            outs[i] = &arena_[trace_.produceSlot[t]];
        }
        next_ += n;
    }

    /** @return true once every recorded exchange re-executed. */
    bool
    drained() const
    {
        return next_ == trace_.consumeTape.size() &&
               produced_ == trace_.produces;
    }

  private:
    const ExecutionTrace &trace_;
    std::vector<Vec320> arena_;
    std::size_t produced_ = 0;
    std::size_t next_ = 0;
};

} // namespace

void
replayTrace(const ExecutionTrace &trace,
            const std::vector<Chip *> &chips)
{
    TSP_ASSERT(!chips.empty() && chips.size() == trace.chips.size());
    const Cycle start = chips[0]->now();
    TapePlayer player(trace);
    for (Chip *c : chips) {
        TSP_ASSERT(c->now() == start);
        c->beginReplay(&player);
    }
    const std::size_t n = trace.events.size();
    for (std::size_t i = 0; i < n;) {
        const ExecutionTrace::Event &e = trace.events[i];
        Chip &c = *chips[e.chip];
        const Cycle cyc = start + e.cycleOffset;
        if (e.kind == ExecutionTrace::EventKind::Dispatch) {
            c.replayDispatch(e.unit, trace.insts[e.instIndex], cyc);
            ++i;
            continue;
        }
        // Coalesce a run of MxmTicks that were *adjacent* in the
        // recorded host order — same chip and plane, consecutive
        // cycles — into one call. Only adjacency makes this safe:
        // the tape resolves exchanges by recorded order, so events
        // must re-execute in exactly that order, and a run of
        // adjacent ticks trivially does.
        std::size_t j = i + 1;
        while (j < n) {
            const ExecutionTrace::Event &f = trace.events[j];
            if (f.kind != ExecutionTrace::EventKind::MxmTick ||
                f.chip != e.chip || f.unit != e.unit ||
                f.cycleOffset !=
                    trace.events[j - 1].cycleOffset + 1) {
                break;
            }
            ++j;
        }
        c.replayMxmTickRun(e.unit, cyc, j - i);
        i = j;
    }
    for (std::size_t i = 0; i < chips.size(); ++i) {
        chips[i]->finishReplay(trace.chips[i], start,
                               start + trace.span);
    }
    // The replayed run exchanged exactly what the recording did.
    TSP_ASSERT(player.drained());
}

std::shared_ptr<const ExecutionTrace>
TraceCache::find(const TraceKey &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end())
        return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
}

void
TraceCache::insert(const TraceKey &key,
                   std::shared_ptr<const ExecutionTrace> trace)
{
    if (!trace)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
        bytes_ -= it->second->second->memoryBytes();
        lru_.erase(it->second);
        map_.erase(it);
    }
    bytes_ += trace->memoryBytes();
    lru_.emplace_front(key, std::move(trace));
    map_[key] = lru_.begin();
    evictOverBudgetLocked();
}

void
TraceCache::invalidate(const TraceKey &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end())
        return;
    bytes_ -= it->second->second->memoryBytes();
    lru_.erase(it->second);
    map_.erase(it);
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

std::size_t
TraceCache::memoryBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
}

void
TraceCache::evictOverBudgetLocked()
{
    // Keep at least the most recent entry: one oversized trace must
    // stay usable rather than thrash in and out.
    while (bytes_ > budget_ && lru_.size() > 1) {
        const auto &victim = lru_.back();
        bytes_ -= victim.second->memoryBytes();
        map_.erase(victim.first);
        lru_.pop_back();
    }
}

} // namespace tsp
