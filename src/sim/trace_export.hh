/**
 * @file
 * Chrome-tracing export of the chip's dispatch trace: one timeline
 * row per instruction queue, one duration event per dispatched
 * instruction (1 cycle = 1 µs in the viewer). Load the output in
 * chrome://tracing or https://ui.perfetto.dev to see the two-
 * dimensional schedule the compiler solved (the interactive version
 * of the paper's Fig. 11).
 */

#ifndef TSP_SIM_TRACE_EXPORT_HH
#define TSP_SIM_TRACE_EXPORT_HH

#include <string>
#include <vector>

#include "sim/chip.hh"

namespace tsp {

/**
 * Renders @p events as Chrome Trace Event JSON.
 *
 * Queues become thread ids grouped by slice kind; the instruction
 * mnemonic is the event name and the full assembly text is attached
 * as an argument.
 */
std::string traceToChromeJson(const std::vector<TraceEvent> &events);

/** Convenience: writes the chip's trace to @p path; returns success. */
bool writeChromeTrace(const Chip &chip, const std::string &path);

} // namespace tsp

#endif // TSP_SIM_TRACE_EXPORT_HH
