/**
 * @file
 * Activity-based power model.
 *
 * The paper reports measured per-layer chip power (Fig. 10); we
 * reproduce the *shape* with activity counting: each cycle the chip
 * reports deltas of its activity counters (MACCs, ALU ops, stream
 * hops, SRAM words, switched bytes, dispatches) which are weighted by
 * per-op energy coefficients and added to static power. See DESIGN.md
 * substitution table.
 */

#ifndef TSP_SIM_POWER_HH
#define TSP_SIM_POWER_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "common/snapshot_io.hh"

namespace tsp {

/**
 * Activity deltas for one cycle — or, via sampleSpan(), totals over a
 * multi-cycle span the event-driven core fast-forwarded in one jump.
 */
struct ActivitySample
{
    std::uint64_t maccOps = 0;
    std::uint64_t vxmLaneOps = 0;
    std::uint64_t streamHops = 0;   ///< Flowing vectors (320 B each).
    std::uint64_t sramWords = 0;    ///< 16-byte word accesses.
    std::uint64_t sxmBytes = 0;
    std::uint64_t icuDispatches = 0;
};

/** Integrates activity into energy and an optional power trace. */
class PowerModel
{
  public:
    explicit PowerModel(const ChipConfig &cfg);

    /** Accounts one cycle of activity. */
    void
    sample(const ActivitySample &activity)
    {
        sampleSpan(activity, 1);
    }

    /**
     * Accounts @p span cycles in one call: @p activity carries the
     * activity *totals* over the whole span (the dynamic-energy sum is
     * linear in the deltas, so the aggregate integrates to exactly the
     * same energy as per-cycle sampling, up to floating-point
     * association) plus @p span cycles of static power. Used by the
     * fast-forward core for idle spans, where the only nonzero field
     * is streamHops. With the per-cycle trace enabled the span's
     * average power is recorded for each cycle; callers that need the
     * exact per-cycle trace must sample cycle by cycle (the chip
     * disables fast-forward when powerTraceEnabled).
     */
    void sampleSpan(const ActivitySample &activity, Cycle span);

    /** @return total energy in joules so far. */
    double totalEnergyJ() const { return energyJ_; }

    /** @return cycles accounted. */
    Cycle cycles() const { return cycles_; }

    /** @return average power in watts over all accounted cycles. */
    double averagePowerW() const;

    /**
     * @return the per-cycle power trace in watts (empty unless
     * ChipConfig::powerTraceEnabled).
     */
    const std::vector<float> &traceW() const { return trace_; }

    /**
     * Downsamples the trace into @p buckets averages — the layer-by-
     * layer power plot.
     */
    std::vector<double> downsampledTrace(std::size_t buckets) const;

    /** Serializes accumulated energy, cycles and the power trace. */
    void
    saveState(SnapshotWriter &w) const
    {
        w.f64(energyJ_);
        w.u64(cycles_);
        w.u64(trace_.size());
        for (const float v : trace_)
            w.f32(v);
    }

    /** Restores accumulated energy, cycles and the power trace. */
    void
    loadState(SnapshotReader &r)
    {
        energyJ_ = r.f64();
        cycles_ = r.u64();
        trace_.clear();
        const std::uint64_t n = r.u64();
        trace_.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n && r.ok(); ++i)
            trace_.push_back(r.f32());
    }

  private:
    const ChipConfig &cfg_;
    /// Deliberately double, not FixedPointSum: per-cycle quanta are
    /// ~1e-7 J, below the 2^20 fixed-point grid (every sample would
    /// round to zero), and sampleSpan accumulates in deterministic
    /// simulation order anyway.
    double energyJ_ = 0.0;
    Cycle cycles_ = 0;
    std::vector<float> trace_;
};

} // namespace tsp

#endif // TSP_SIM_POWER_HH
