/**
 * @file
 * The top-level TSP chip model: 144 instruction queues driving 88 MEM
 * slices, the 16-ALU VXM, four MXM planes, two SXM complexes and the
 * C2C block, all communicating through the chip-wide stream register
 * file. One step() is one core-clock cycle; execution is exactly
 * deterministic — the same program produces the same cycle count and
 * the same stream/SRAM contents on every run.
 */

#ifndef TSP_SIM_CHIP_HH
#define TSP_SIM_CHIP_HH

#include <array>
#include <memory>
#include <vector>

#include "arch/config.hh"
#include "c2c/c2c_module.hh"
#include "common/stats.hh"
#include "icu/barrier.hh"
#include "icu/queue.hh"
#include "isa/assembler.hh"
#include "mem/fault.hh"
#include "mem/mem_slice.hh"
#include "mxm/mxm_plane.hh"
#include "sim/exec_trace.hh"
#include "sim/power.hh"
#include "stream/stream_io.hh"
#include "sxm/sxm_complex.hh"
#include "vxm/vxm_unit.hh"

namespace tsp {

struct ChipSnapshot;

/** One instruction-dispatch trace event (for schedule dumps). */
struct TraceEvent
{
    Cycle cycle = 0;
    IcuId icu{};
    Instruction inst{};
};

/** The full first-generation TSP chip. */
class Chip
{
  public:
    explicit Chip(ChipConfig cfg = {});

    /** @return the active configuration. */
    const ChipConfig &config() const { return cfg_; }

    /** Loads a program into the instruction queues (replaces any). */
    void loadProgram(const AsmProgram &program);

    /** Advances one core-clock cycle. */
    void step();

    /**
     * @return the earliest cycle >= now() at which any unit can act:
     * the min over instruction-queue events (dispatch, NOP expiry,
     * Repeat re-issue, Sync release), MXM sequencer activity, and
     * pending stream-fabric writes. now() when something happens this
     * cycle; kNoEventCycle when nothing can ever happen again without
     * a new program.
     */
    Cycle nextEventCycle() const;

    /**
     * Fast-forwards to @p target (> now()) in one jump. Every cycle
     * in [now(), target) must be event-free (the caller jumps to
     * nextEventCycle() or earlier); queues accumulate their idle
     * counters in closed form, the fabric bulk-advances, and the
     * power model integrates the span — all bit-identical to stepping
     * cycle by cycle.
     */
    void advanceTo(Cycle target);

    /**
     * Runs until every queue has retired and all MXM sequencers are
     * idle, or @p max_cycles elapse.
     *
     * @return the final cycle count. Calls fatal() if the limit hits
     * (a deterministic program either finishes or is wrong).
     */
    Cycle run(Cycle max_cycles = 100'000'000);

    /**
     * Like run(), but surfaces limit exhaustion as a status instead
     * of calling fatal(): steps until done() or now() reaches
     * @p cycle_limit (an *absolute* cycle, so reloaded programs can
     * be bounded relative to the current clock).
     *
     * @return true when the program retired, false when the limit
     * hit first or a machine check was raised (distinguish with
     * machineCheck()). In either failure the chip is mid-program;
     * callers must discard or rebuild it before trusting further
     * runs — a machine-checked chip stays condemned until rebuilt.
     */
    bool runBounded(Cycle cycle_limit);

    /**
     * Advances the clock to exactly @p target (absolute), done or
     * not: a retired chip accumulates its idle/power accounting just
     * as per-cycle stepping would, and scheduled fault events inside
     * the span still land on their cycles. Used by the pod scheduler
     * to equalize member clocks — lock-step stepping keeps stepping
     * finished chips until the whole pod retires, so bit-identical
     * stats require the same tail here. Stops early (clock halted)
     * if a machine check is raised.
     */
    void runTo(Cycle target);

    /** @return true once any uncorrectable error condemned the chip. */
    bool machineCheck() const { return mcheck_->raised(); }

    /** @return first-error context (valid when machineCheck()). */
    const MachineCheckInfo &
    machineCheckInfo() const
    {
        return mcheck_->info();
    }

    /** @return total uncorrectable errors raised chip-wide. */
    std::uint64_t machineCheckCount() const { return mcheck_->raises(); }

    /** @return the fault injector, or nullptr when injection is off. */
    const FaultInjector *faultInjector() const { return faults_.get(); }

    /** @return current cycle. */
    Cycle now() const { return fabric_.now(); }

    /** @return true when all queues and sequencers are idle. */
    bool done() const;

    /** @return a MEM slice. */
    MemSlice &mem(Hemisphere hem, int index);
    const MemSlice &mem(Hemisphere hem, int index) const;

    /** @return the MEM slice owning @p addr. */
    MemSlice &
    mem(const GlobalAddr &addr)
    {
        return mem(addr.hem, addr.slice);
    }

    /** @return the stream fabric (tests and debugging). */
    StreamFabric &fabric() { return fabric_; }
    const StreamFabric &fabric() const { return fabric_; }

    /** @return the vector processor. */
    const VxmUnit &vxm() const { return *vxm_; }

    /** @return MXM plane 0..3. */
    const MxmPlane &mxm(int plane) const;

    /** @return a hemisphere's SXM complex. */
    const SxmComplex &sxm(Hemisphere hem) const;

    /** @return the chip-to-chip block. */
    C2cModule &c2c() { return *c2c_; }
    const C2cModule &c2c() const { return *c2c_; }

    /** @return the power model. */
    const PowerModel &power() const { return *power_; }

    /** @return the barrier controller (tests). */
    const BarrierController &barrier() const { return barrier_; }

    /** @return dispatch trace (empty unless ChipConfig::traceEnabled). */
    const std::vector<TraceEvent> &trace() const { return trace_; }

    /** @return aggregate statistics across all units. */
    StatGroup stats() const;

    /** @return total instructions dispatched chip-wide. */
    std::uint64_t totalDispatched() const;

    /** @return total MACC operations across the four planes. */
    std::uint64_t totalMaccOps() const;

    /** @return cumulative NOP-idle cycles across all queues. */
    std::uint64_t totalNopCycles() const;

    /** @return cumulative Sync-parked cycles across all queues. */
    std::uint64_t totalParkedCycles() const;

    /** @return timed SRAM port accesses chip-wide (power stat). */
    std::uint64_t sramAccessCount() const { return sramAccesses_; }

    /** @return Ifetch instructions observed (fetch-bandwidth stat). */
    std::uint64_t ifetchCount() const { return ifetches_; }

    // --- Snapshot/restore (see sim/snapshot.hh) ---

    /**
     * Serializes the full architectural state into @p out at the
     * current quiesce point (between steps). Refuses — returning
     * false with @p err set — while a trace recorder is armed, a
     * replay is in progress, or the dispatch trace is enabled.
     */
    bool snapshot(ChipSnapshot &out, std::string *err = nullptr) const;

    /**
     * Restores @p snap onto this chip. The chip must have the same
     * configuration (fastForwardEnabled and fault seed excepted), the
     * same program loaded and the same fault environment; hash
     * mismatches refuse with @p err set. With the same fault seed the
     * RNG streams resume exactly (bit-identical continuation); with a
     * different seed this chip keeps its fresh streams (migration).
     */
    bool restore(const ChipSnapshot &snap, std::string *err = nullptr);

    /** @return content hash of the loaded program (0 when none). */
    std::uint64_t programHash() const { return programHash_; }

    // --- Trace record/replay tier (see sim/exec_trace.hh) ---

    /**
     * Arms @p rec to observe this chip's dispatches, MXM ticks and
     * stream exchanges for the duration of one run. @p chip_index is
     * this chip's index within the recording's chip set.
     */
    void armTraceRecorder(TraceRecording *rec, int chip_index);

    /** Detaches the recorder (recording sealed or abandoned). */
    void disarmTraceRecorder();

    /**
     * Enters replay: the chip must be at the freshly loaded program
     * state the recording started from (queues loaded, sequencers
     * idle). Stream produces/consumes are redirected to @p player
     * until finishReplay().
     */
    void beginReplay(TapeReplayer *player);

    /** Re-executes one recorded dispatch at absolute cycle @p when. */
    void replayDispatch(int icu_id, const Instruction &inst,
                        Cycle when);

    /** Re-executes one recorded MXM-plane tick at cycle @p when. */
    void replayMxmTick(int plane, Cycle when);

    /**
     * Re-executes @p count recorded MXM-plane ticks for consecutive
     * cycles starting at @p when, with one clock jump for the whole
     * run. Only legal for events that were adjacent in the recorded
     * host order (replayTrace coalesces exactly those), so the
     * produce/consume interleaving on the tape is preserved tick by
     * tick. Replay produces ignore their visibility cycle (they go
     * to the tape), so deferring the per-tick jumps to the run's
     * first cycle is invisible.
     */
    void replayMxmTickRun(int plane, Cycle when, std::size_t count);

    /**
     * Leaves replay: jumps the clock to @p end (= @p start + recorded
     * span), credits the counters replay skipped from @p d, retires
     * the queues, and integrates the span's power in one sample. The
     * chip is left in the exact end-of-run state of a normal run.
     */
    void finishReplay(const ExecutionTrace::ChipDeltas &d, Cycle start,
                      Cycle end);

  private:
    void dispatch(const IcuId &icu, const Instruction &inst);
    void dispatchMem(const IcuId &icu, const Instruction &inst);

    ChipConfig cfg_;
    StreamFabric fabric_;
    BarrierController barrier_;

    // Constructed before (destroyed after) the units holding raw
    // pointers to them.
    std::unique_ptr<FaultInjector> faults_;    // Null: injection off.
    std::unique_ptr<MachineCheckSink> mcheck_;

    std::vector<MemSlice> memSlices_;          // 88: W0..43, E0..43
    std::unique_ptr<VxmUnit> vxm_;
    std::vector<std::unique_ptr<MxmPlane>> mxm_;
    std::vector<std::unique_ptr<SxmComplex>> sxm_;
    std::unique_ptr<C2cModule> c2c_;
    std::unique_ptr<StreamIo> memIo_;          // MEM slices' stream port.
    std::unique_ptr<PowerModel> power_;

    std::vector<InstructionQueue> queues_;     // 144.

    std::vector<TraceEvent> trace_;
    std::uint64_t programHash_ = 0;  ///< hashProgram() of the loaded program.
    std::uint64_t ifetches_ = 0;
    std::uint64_t dispatchesThisCycle_ = 0;

    /** Armed recorder (record tier) and this chip's index in it. */
    TraceRecording *traceRec_ = nullptr;
    int traceChip_ = 0;

    /**
     * Counters replay credits wholesale because the machinery that
     * would bump them per cycle is skipped (queue scans never run).
     * Chip-lifetime cumulative, like the queue counters they shadow;
     * never reset.
     */
    std::uint64_t dispatchedAdjust_ = 0;
    std::uint64_t nopAdjust_ = 0;
    std::uint64_t parkedAdjust_ = 0;

    /**
     * True when the last step() dispatched nothing and no MXM
     * sequencer was streaming. A skippable idle span always begins
     * with such a cycle, so runBounded() consults the (O(queues))
     * event scan only after a quiet step — dense schedule regions
     * pay nothing for fast-forward support.
     */
    bool lastStepQuiet_ = true;

    /**
     * Timed SRAM accesses, counted incrementally at MEM dispatch
     * (read/write/gather/scatter each use one port access) so the
     * per-cycle power sample never rescans all 88 slices.
     */
    std::uint64_t sramAccesses_ = 0;

    // Previous totals for per-cycle power deltas. Only updated on
    // cycles with dispatch or MXM activity — no unit's counters can
    // move on any other cycle.
    std::uint64_t prevMacc_ = 0;
    std::uint64_t prevVxmOps_ = 0;
    std::uint64_t prevSxmBytes_ = 0;
    std::uint64_t prevSramAccesses_ = 0;
};

} // namespace tsp

#endif // TSP_SIM_CHIP_HH
