/**
 * @file
 * Trace record/replay: the third execution tier.
 *
 * The first run of a program (per-cycle or fast-forward — they are
 * bit-identical) can *record* the resolved micro-op sequence: every
 * queue dispatch and every active-MXM tick, with cycle offsets from
 * run start, plus a consume tape citing which produce each stream
 * consume sampled. *Replay* then re-executes exactly those events
 * against the real functional units — the numerics run for real, so
 * fresh inputs staged in SRAM flow through — while skipping
 * everything input-independent: the 144-queue scan, NOP/Sync/Repeat
 * bookkeeping, fabric flow, barrier scans and per-cycle power
 * sampling. Counters the skipped machinery would have bumped are
 * credited from recorded per-chip deltas, leaving cycles, stats and
 * energy bit-identical (energy within float-summation association)
 * to a normal run.
 *
 * A trace holds no data values (produces are re-computed at replay),
 * so it is valid for any identically configured chip running the
 * same program — including a freshly rebuilt one — which is what
 * lets a serving pool share traces across workers via TraceCache.
 *
 * Recording *poisons* itself (finish() returns null) when it sees
 * anything replay could not reproduce: a consume of a fabric entry
 * written outside any StreamIo (kTapeUntagged), or a cycle offset
 * overflowing 32 bits. Callers must not record with fault injection
 * armed — an injector mutates consumed values in ways the tape does
 * not capture (InferenceSession/PodSession gate on this).
 */

#ifndef TSP_SIM_EXEC_TRACE_HH
#define TSP_SIM_EXEC_TRACE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"
#include "sim/power.hh"
#include "stream/trace_tape.hh"

namespace tsp {

class Chip;

/** One recorded run: the replay tier's input. Immutable once built. */
struct ExecutionTrace
{
    enum class EventKind : std::uint8_t
    {
        Dispatch, ///< One instruction issued by queue `unit`.
        MxmTick,  ///< One active-cycle tick of MXM plane `unit`.
    };

    /** One re-executable event, in recorded (host) order. */
    struct Event
    {
        std::uint32_t cycleOffset = 0; ///< Cycles after run start.
        std::uint32_t instIndex = 0;   ///< Into insts (Dispatch only).
        std::uint16_t unit = 0;        ///< Queue id / plane number.
        std::uint8_t chip = 0;         ///< Pod member index.
        EventKind kind = EventKind::Dispatch;
    };

    /**
     * Per-chip counter deltas of the recorded run for everything
     * replay skips (queue/idle counters, fabric flow) plus the
     * activity totals one sampleSpan() call turns into the span's
     * energy. Counters that re-execution bumps naturally (MACCs,
     * SRAM accesses, ECC, C2C, notifies) are *not* here — crediting
     * them too would double-count.
     */
    struct ChipDeltas
    {
        std::uint64_t dispatched = 0;
        std::uint64_t nopCycles = 0;
        std::uint64_t parkedCycles = 0;
        std::uint64_t fabricHops = 0;
        std::uint64_t fabricWrites = 0;
        ActivitySample activity{};
    };

    std::vector<Event> events;
    /** Deduplicated dispatch payloads (Repeat re-issues share one). */
    std::vector<Instruction> insts;
    /** Per consume, the produce index sampled (or kTapeMiss). */
    std::vector<std::uint32_t> consumeTape;
    /**
     * Per produce, the replay-log slot holding its value. A produced
     * vector is dead after its last recorded consume, so slots are
     * reused: the replay log needs only the peak number of live
     * values (a few hundred) instead of one slot per produce
     * (gigabytes for a dense model). Slot 0 is a shared scratch for
     * values no consume ever samples.
     */
    std::vector<std::uint32_t> produceSlot;
    std::uint32_t slotCount = 1; ///< Replay-log size (>= 1).
    std::vector<ChipDeltas> chips;
    Cycle span = 0; ///< Cycles the recorded run consumed.
    std::uint64_t produces = 0;

    /**
     * @return bytes of the pinned Vec320 arena one replay of this
     * trace allocates (slotCount slots; see trace_tape.hh).
     */
    std::size_t arenaBytes() const;

    /**
     * @return approximate resident footprint for cache accounting:
     * the trace's own heap plus arenaBytes(), since a cached trace
     * is held precisely to be replayed and each replay pins one
     * arena of that size.
     */
    std::size_t memoryBytes() const;
};

/**
 * Arms recording on a set of chips (one, or every pod member) for
 * the duration of one run. Usage:
 *
 *   TraceRecording rec({&chip});
 *   ... run the program normally ...
 *   auto trace = rec.finish(completed);  // null if not replayable
 *
 * All chips must share one clock value at construction (pod members
 * are equalized between collectives). The destructor disarms if
 * finish() was never called.
 */
class TraceRecording final : public TapeRecorder
{
  public:
    explicit TraceRecording(std::vector<Chip *> chips);
    ~TraceRecording() override;

    TraceRecording(const TraceRecording &) = delete;
    TraceRecording &operator=(const TraceRecording &) = delete;

    // TapeRecorder (called by StreamIo through the fabric hooks).
    std::uint32_t onProduce() override;
    void onConsume(std::uint32_t tag) override;

    // Called by Chip::step() at each dispatch / active-plane tick.
    void onDispatch(int chip, int queue_id, const Instruction &inst,
                    Cycle now);
    void onMxmTick(int chip, int plane, Cycle now);

    /** @return true when the run is known unreplayable. */
    bool poisoned() const { return poisoned_; }

    /**
     * Disarms and seals the recording.
     *
     * @param completed whether the recorded run retired cleanly.
     * @return the immutable trace, or null when it must not be
     * replayed (run failed, or recording poisoned itself).
     */
    std::shared_ptr<const ExecutionTrace> finish(bool completed);

  private:
    /** Record-start counter snapshot of one chip. */
    struct Snap
    {
        std::uint64_t dispatched = 0;
        std::uint64_t nopCycles = 0;
        std::uint64_t parkedCycles = 0;
        std::uint64_t hops = 0;
        std::uint64_t writes = 0;
        std::uint64_t maccOps = 0;
        std::uint64_t vxmOps = 0;
        std::uint64_t sxmBytes = 0;
        std::uint64_t sramAccesses = 0;
    };

    static Snap snapshot(const Chip &chip);
    std::uint32_t offsetOf(Cycle now);
    void disarm();

    std::vector<Chip *> chips_;
    std::vector<Snap> snaps_;
    Cycle start_ = 0;
    std::unique_ptr<ExecutionTrace> trace_;
    std::unordered_map<const Instruction *, std::uint32_t> instIndex_;
    /** Per produce, the consume-tape length when it ran (liveness). */
    std::vector<std::uint32_t> produceAt_;
    std::uint64_t produceCount_ = 0;
    bool poisoned_ = false;
    bool armed_ = false;
};

/**
 * Replays @p trace on @p chips (identically configured to — not
 * necessarily the same objects as — the recorded set, with the same
 * programs loaded and clocks equal across members). On return the
 * chips are in the exact end-of-run state of a normal run: done(),
 * clocks advanced by trace.span, stats/energy credited.
 */
void replayTrace(const ExecutionTrace &trace,
                 const std::vector<Chip *> &chips);

/**
 * A byte-bounded LRU cache of execution traces shared by a serving
 * pool's workers, keyed by compiled-program identity. Thread-safe.
 */
/**
 * TraceCache key: an identity pointer *plus* a content fingerprint
 * (e.g. hashProgram() of the compiled program). The pointer alone is
 * an ABA hazard: retire a program, allocate a different one at the
 * same address, and a pointer-keyed cache would serve the stale tape
 * — replayed wholesale as the wrong program's results. A lookup whose
 * fingerprint differs from the cached entry's simply misses, and the
 * stale entry ages out of the LRU.
 */
struct TraceKey
{
    const void *ptr = nullptr;
    std::uint64_t fingerprint = 0;

    TraceKey(const void *p, std::uint64_t fp = 0)
        : ptr(p), fingerprint(fp)
    {
    }

    bool
    operator==(const TraceKey &o) const
    {
        return ptr == o.ptr && fingerprint == o.fingerprint;
    }
};

struct TraceKeyHash
{
    std::size_t
    operator()(const TraceKey &k) const
    {
        // Multiplicative mix; the pointer and the fingerprint both
        // perturb every output bit.
        std::uint64_t h = reinterpret_cast<std::uintptr_t>(k.ptr);
        h ^= k.fingerprint + 0x9e3779b97f4a7c15ull + (h << 6) +
             (h >> 2);
        return static_cast<std::size_t>(h);
    }
};

class TraceCache
{
  public:
    /** Default byte budget (a dense-model trace is tens of MB). */
    static constexpr std::size_t kDefaultBudget =
        std::size_t{256} << 20;

    explicit TraceCache(std::size_t budget_bytes = kDefaultBudget)
        : budget_(budget_bytes)
    {
    }

    /** @return the cached trace for @p key, or null; refreshes LRU. */
    std::shared_ptr<const ExecutionTrace> find(const TraceKey &key);

    /** Inserts (or replaces) @p key's trace; evicts LRU over budget. */
    void insert(const TraceKey &key,
                std::shared_ptr<const ExecutionTrace> trace);

    /** Drops @p key's trace (weight reinstall, program retire). */
    void invalidate(const TraceKey &key);

    /** @return cached trace count. */
    std::size_t size() const;

    /** @return bytes held across all cached traces. */
    std::size_t memoryBytes() const;

  private:
    using LruList = std::list<
        std::pair<TraceKey, std::shared_ptr<const ExecutionTrace>>>;

    void evictOverBudgetLocked();

    mutable std::mutex mu_;
    LruList lru_; ///< Front = most recent.
    std::unordered_map<TraceKey, LruList::iterator, TraceKeyHash>
        map_;
    std::size_t bytes_ = 0;
    std::size_t budget_;
};

} // namespace tsp

#endif // TSP_SIM_EXEC_TRACE_HH
