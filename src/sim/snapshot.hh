/**
 * @file
 * Deterministic chip snapshot/restore.
 *
 * A ChipSnapshot is a bit-identical serialization of the full
 * architectural state of one chip at a quiesce point (between steps,
 * outside trace record/replay): MEM slices with their SECDED check
 * bits, stream registers and in-flight fabric writes, ICU queue
 * positions, MXM accumulators and weight-install state, SXM/VXM
 * latches and counters, barrier state, C2C link flight, power
 * accounting, machine-check latch and fault-injector RNG streams.
 *
 * The format is versioned little-endian binary with an FNV-1a content
 * hash over the payload. Three environment hashes gate restore:
 *
 *  - configHash: the chip configuration, EXCLUDING fastForwardEnabled
 *    (snapshots restore across execution tiers — that is the point of
 *    the differential suite) and EXCLUDING the fault seed (migration
 *    restores onto a chip rebuilt with a derived seed).
 *  - programHash: content hash of the loaded program. Programs are
 *    not serialized; restore requires the same program loaded, which
 *    keeps snapshots small and matches the serving path where the
 *    model is installed separately.
 *  - faultEnvHash: fault rates + scheduled events, EXCLUDING the
 *    seed. A snapshot restores onto a chip with a different fault
 *    seed (migration) but never onto one with a different fault
 *    *environment* — that would silently change the experiment.
 *
 * Restore with the SAME fault seed additionally restores the RNG
 * stream positions, making the restored run bit-identical to the
 * uninterrupted one. Restore with a different seed keeps the target
 * chip's fresh streams so a migrated batch does not deterministically
 * replay the upset that condemned the source chip.
 */

#ifndef TSP_SIM_SNAPSHOT_HH
#define TSP_SIM_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "arch/types.hh"

namespace tsp {

struct AsmProgram;
struct Instruction;

/** One chip's serialized state plus the hashes that gate restore. */
struct ChipSnapshot
{
    /** "TSPS" — identifies the container. */
    static constexpr std::uint32_t kMagic = 0x54535053u;

    /** Bumped on any incompatible payload-layout change. */
    static constexpr std::uint32_t kVersion = 1;

    /** Chip configuration hash (see file comment for exclusions). */
    std::uint64_t configHash = 0;

    /** Content hash of the program loaded when the snapshot was taken. */
    std::uint64_t programHash = 0;

    /** Fault environment hash (rates + events, seed excluded). */
    std::uint64_t faultEnvHash = 0;

    /** Fault seed of the source chip (same-seed restore resumes RNGs). */
    std::uint64_t faultSeed = 0;

    /** Chip clock at the quiesce point. */
    Cycle cycle = 0;

    /** Serialized unit state (opaque; layout owned by Chip). */
    std::vector<std::uint8_t> payload;

    /** @return FNV-1a hash of the payload. */
    std::uint64_t payloadHash() const;

    /** @return the framed binary image (header + payload + hash). */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Parses a framed image produced by serialize(), verifying magic,
     * version and payload hash.
     *
     * @return false with @p err set (when non-null) on any mismatch.
     */
    static bool deserialize(const std::uint8_t *data, std::size_t size,
                            ChipSnapshot &out, std::string *err);

    /** @return serialized size in bytes without building the frame. */
    std::size_t frameBytes() const;
};

/** A pod's state: one snapshot per member chip, in ring order. */
struct PodSnapshot
{
    std::vector<ChipSnapshot> chips;
};

/**
 * @return content hash of @p program: every non-empty queue's ICU id,
 * length and instruction fields (shared lane maps hashed by content).
 * Also used by the serving trace cache as an ABA-safe fingerprint.
 */
std::uint64_t hashProgram(const AsmProgram &program);

/** @return hashProgram() folded over one instruction (exposed for
 *  incremental hashing by program builders). */
std::uint64_t hashInstruction(std::uint64_t h, const Instruction &inst);

/**
 * @return hash of the restore-relevant chip configuration. Excludes
 * fastForwardEnabled (cross-tier restore) and the entire fault config
 * (covered by hashFaultEnv + the seed policy).
 */
std::uint64_t hashChipConfig(const ChipConfig &cfg);

/** @return hash of fault rates + scheduled events; seed excluded. */
std::uint64_t hashFaultEnv(const FaultConfig &fault);

} // namespace tsp

#endif // TSP_SIM_SNAPSHOT_HH
