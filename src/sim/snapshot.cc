#include "sim/snapshot.hh"

#include <cstring>

#include "c2c/pod.hh"
#include "common/logging.hh"
#include "common/snapshot_io.hh"
#include "isa/assembler.hh"
#include "sim/chip.hh"

namespace tsp {

namespace {

/** Folds one little-endian u64 into an FNV-1a chain. */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return fnv1a64(b, sizeof(b), h);
}

/** Folds a double by bit pattern (configs are exact values, never
 *  computed, so bit equality is the right identity). */
std::uint64_t
mixF(std::uint64_t h, double d)
{
    std::uint64_t v;
    static_assert(sizeof(v) == sizeof(d));
    std::memcpy(&v, &d, sizeof(v));
    return mix(h, v);
}

bool
fail(std::string *err, const char *msg)
{
    if (err != nullptr)
        *err = msg;
    return false;
}

} // namespace

std::uint64_t
hashInstruction(std::uint64_t h, const Instruction &inst)
{
    h = mix(h, static_cast<std::uint64_t>(inst.op));
    h = mix(h, inst.imm0);
    h = mix(h, inst.imm1);
    h = mix(h, inst.addr);
    for (const StreamRef &s : {inst.srcA, inst.srcB, inst.dst}) {
        h = mix(h, s.id);
        h = mix(h, static_cast<std::uint64_t>(s.dir));
    }
    h = mix(h, inst.groupSize);
    h = mix(h, static_cast<std::uint64_t>(inst.dtype));
    h = mix(h, inst.flags);
    if (inst.map) {
        // By content, not pointer: two programs sharing a map hash
        // equal to two programs with identical private copies.
        h = mix(h, inst.map->size());
        for (const std::uint16_t e : *inst.map)
            h = mix(h, e);
    } else {
        h = mix(h, ~std::uint64_t{0});
    }
    return h;
}

std::uint64_t
hashProgram(const AsmProgram &program)
{
    std::uint64_t h = kFnv1aBasis;
    for (const auto &[icu_id, insts] : program.queues) {
        if (insts.empty())
            continue;
        h = mix(h, static_cast<std::uint64_t>(icu_id));
        h = mix(h, insts.size());
        for (const Instruction &inst : insts)
            h = hashInstruction(h, inst);
    }
    return h;
}

std::uint64_t
hashChipConfig(const ChipConfig &cfg)
{
    std::uint64_t h = kFnv1aBasis;
    h = mixF(h, cfg.clockHz);
    h = mix(h, static_cast<std::uint64_t>(cfg.activeSuperlanes));
    h = mix(h, cfg.eccEnabled);
    h = mix(h, cfg.powerTraceEnabled);
    h = mix(h, cfg.strictStreams);
    h = mix(h, cfg.traceEnabled);
    // fastForwardEnabled deliberately excluded: execution tiers are
    // bit-identical, so a snapshot from a per-cycle run restores onto
    // a fast-forwarding chip and vice versa.
    h = mixF(h, cfg.power.mxmMaccPj);
    h = mixF(h, cfg.power.vxmOpPj);
    h = mixF(h, cfg.power.streamHopPj);
    h = mixF(h, cfg.power.sramWordPj);
    h = mixF(h, cfg.power.sxmBytePj);
    h = mixF(h, cfg.power.icuDispatchPj);
    h = mixF(h, cfg.power.superlaneStaticW);
    h = mixF(h, cfg.power.uncoreStaticW);
    return h;
}

std::uint64_t
hashFaultEnv(const FaultConfig &fault)
{
    std::uint64_t h = kFnv1aBasis;
    h = mixF(h, fault.memReadRate);
    h = mixF(h, fault.memWriteRate);
    h = mixF(h, fault.streamRate);
    h = mixF(h, fault.c2cRate);
    h = mixF(h, fault.doubleBitFraction);
    h = mix(h, fault.events.size());
    for (const FaultEvent &e : fault.events) {
        h = mix(h, e.cycle);
        h = mix(h, static_cast<std::uint64_t>(e.slice));
        h = mix(h, e.addr);
        h = mix(h, static_cast<std::uint64_t>(e.chunk));
        h = mix(h, static_cast<std::uint64_t>(e.bit));
    }
    return h;
}

std::uint64_t
ChipSnapshot::payloadHash() const
{
    return fnv1a64(payload.data(), payload.size());
}

std::size_t
ChipSnapshot::frameBytes() const
{
    // magic + version + 5 u64 fields + payload length + payload +
    // payload hash.
    return 4 + 4 + 5 * 8 + 8 + payload.size() + 8;
}

std::vector<std::uint8_t>
ChipSnapshot::serialize() const
{
    SnapshotWriter w;
    w.u32(kMagic);
    w.u32(kVersion);
    w.u64(configHash);
    w.u64(programHash);
    w.u64(faultEnvHash);
    w.u64(faultSeed);
    w.u64(cycle);
    w.u64(payload.size());
    w.bytes(payload.data(), payload.size());
    w.u64(payloadHash());
    return w.take();
}

bool
ChipSnapshot::deserialize(const std::uint8_t *data, std::size_t size,
                          ChipSnapshot &out, std::string *err)
{
    SnapshotReader r(data, size);
    if (r.u32() != kMagic)
        return fail(err, "snapshot: bad magic");
    if (r.u32() != kVersion)
        return fail(err, "snapshot: unsupported version");
    out.configHash = r.u64();
    out.programHash = r.u64();
    out.faultEnvHash = r.u64();
    out.faultSeed = r.u64();
    out.cycle = r.u64();
    const std::uint64_t n = r.u64();
    if (!r.ok() || n > size)
        return fail(err, "snapshot: truncated header");
    out.payload.resize(static_cast<std::size_t>(n));
    r.bytes(out.payload.data(), out.payload.size());
    const std::uint64_t stored = r.u64();
    if (!r.ok())
        return fail(err, "snapshot: truncated payload");
    if (!r.atEnd())
        return fail(err, "snapshot: trailing bytes");
    if (stored != out.payloadHash())
        return fail(err, "snapshot: payload hash mismatch");
    return true;
}

bool
Chip::snapshot(ChipSnapshot &out, std::string *err) const
{
    // Quiesce rules: the record/replay tier redirects stream traffic
    // through side structures a snapshot cannot see, and a dispatch
    // trace would need the (unserialized) event list to stay aligned.
    if (traceRec_ != nullptr)
        return fail(err, "snapshot: trace recorder armed");
    if (fabric_.tapeReplayer() != nullptr)
        return fail(err, "snapshot: replay in progress");
    if (cfg_.traceEnabled)
        return fail(err, "snapshot: dispatch trace enabled");

    SnapshotWriter w;
    fabric_.saveState(w);
    barrier_.saveState(w);
    w.u32(static_cast<std::uint32_t>(queues_.size()));
    for (const auto &q : queues_)
        q.saveState(w);
    w.u32(static_cast<std::uint32_t>(memSlices_.size()));
    for (const auto &s : memSlices_)
        s.saveState(w);
    vxm_->saveState(w);
    for (const auto &p : mxm_)
        p->saveState(w);
    for (const auto &s : sxm_)
        s->saveState(w);
    c2c_->saveState(w);
    memIo_->saveState(w);
    power_->saveState(w);
    w.b(faults_ != nullptr);
    if (faults_)
        faults_->saveState(w);
    mcheck_->saveState(w);
    w.u64(ifetches_);
    w.u64(dispatchesThisCycle_);
    w.u64(dispatchedAdjust_);
    w.u64(nopAdjust_);
    w.u64(parkedAdjust_);
    w.b(lastStepQuiet_);
    w.u64(sramAccesses_);
    w.u64(prevMacc_);
    w.u64(prevVxmOps_);
    w.u64(prevSxmBytes_);
    w.u64(prevSramAccesses_);

    out.configHash = hashChipConfig(cfg_);
    out.programHash = programHash_;
    out.faultEnvHash = hashFaultEnv(cfg_.fault);
    out.faultSeed = cfg_.fault.seed;
    out.cycle = now();
    out.payload = w.take();
    return true;
}

bool
Chip::restore(const ChipSnapshot &snap, std::string *err)
{
    if (traceRec_ != nullptr)
        return fail(err, "restore: trace recorder armed");
    if (fabric_.tapeReplayer() != nullptr)
        return fail(err, "restore: replay in progress");
    if (cfg_.traceEnabled)
        return fail(err, "restore: dispatch trace enabled");
    if (snap.configHash != hashChipConfig(cfg_))
        return fail(err, "restore: chip configuration mismatch");
    if (snap.programHash != programHash_) {
        return fail(err, "restore: program mismatch (load the "
                         "snapshot's program first)");
    }
    if (snap.faultEnvHash != hashFaultEnv(cfg_.fault))
        return fail(err, "restore: fault environment mismatch");

    // Same seed: resume the RNG streams exactly where the snapshot
    // left them (bit-identical continuation). Different seed: this is
    // a migration onto a rebuilt chip — keep its fresh streams so the
    // upset that condemned the source is not deterministically
    // replayed, but still restore the event cursor and counters.
    const bool restore_rng =
        faults_ != nullptr && snap.faultSeed == cfg_.fault.seed;

    SnapshotReader r(snap.payload.data(), snap.payload.size());
    fabric_.loadState(r);
    barrier_.loadState(r);
    if (r.u32() != queues_.size())
        return fail(err, "restore: queue count mismatch");
    for (auto &q : queues_)
        q.loadState(r);
    if (r.u32() != memSlices_.size())
        return fail(err, "restore: MEM slice count mismatch");
    for (auto &s : memSlices_)
        s.loadState(r);
    vxm_->loadState(r);
    for (const auto &p : mxm_)
        p->loadState(r);
    for (const auto &s : sxm_)
        s->loadState(r);
    c2c_->loadState(r);
    memIo_->loadState(r);
    power_->loadState(r);
    const bool have_faults = r.b();
    if (have_faults != (faults_ != nullptr))
        return fail(err, "restore: fault injector presence mismatch");
    if (faults_)
        faults_->loadState(r, restore_rng);
    mcheck_->loadState(r);
    ifetches_ = r.u64();
    dispatchesThisCycle_ = r.u64();
    dispatchedAdjust_ = r.u64();
    nopAdjust_ = r.u64();
    parkedAdjust_ = r.u64();
    lastStepQuiet_ = r.b();
    sramAccesses_ = r.u64();
    prevMacc_ = r.u64();
    prevVxmOps_ = r.u64();
    prevSxmBytes_ = r.u64();
    prevSramAccesses_ = r.u64();

    if (!r.ok())
        return fail(err, "restore: truncated payload");
    if (!r.atEnd())
        return fail(err, "restore: trailing payload bytes");
    trace_.clear();
    TSP_ASSERT(now() == snap.cycle);
    return true;
}

bool
Pod::snapshot(PodSnapshot &out, std::string *err) const
{
    out.chips.clear();
    out.chips.resize(static_cast<std::size_t>(size()));
    for (int i = 0; i < size(); ++i) {
        if (!chip(i).snapshot(out.chips[static_cast<std::size_t>(i)],
                              err)) {
            return false;
        }
    }
    return true;
}

bool
Pod::restore(const PodSnapshot &snap, std::string *err)
{
    if (static_cast<int>(snap.chips.size()) != size())
        return fail(err, "restore: pod size mismatch");
    for (int i = 0; i < size(); ++i) {
        if (!chip(i).restore(snap.chips[static_cast<std::size_t>(i)],
                             err)) {
            return false;
        }
    }
    return true;
}

} // namespace tsp
