#include "sim/chip.hh"

#include "common/logging.hh"
#include "sim/snapshot.hh"

namespace tsp {

Chip::Chip(ChipConfig cfg) : cfg_(std::move(cfg))
{
    cfg_.validate();

    // The sink always exists: an uncorrectable error condemns the
    // chip whether it came from the injector or from a test's manual
    // bit flip. The injector only exists when configured, so the
    // default build does zero extra work per access.
    mcheck_ = std::make_unique<MachineCheckSink>();
    if (cfg_.fault.enabled())
        faults_ = std::make_unique<FaultInjector>(cfg_.fault);
    fabric_.attachFaultHooks(faults_.get(), mcheck_.get());

    memSlices_.reserve(kMemSlices);
    for (int h = 0; h < 2; ++h) {
        for (int i = 0; i < kMemSlicesPerHem; ++i) {
            memSlices_.emplace_back(static_cast<Hemisphere>(h), i,
                                    cfg_.eccEnabled, faults_.get(),
                                    mcheck_.get());
        }
    }

    vxm_ = std::make_unique<VxmUnit>(cfg_, fabric_);
    for (int p = 0; p < kMxmPlanes; ++p)
        mxm_.push_back(std::make_unique<MxmPlane>(p, cfg_, fabric_));
    sxm_.push_back(std::make_unique<SxmComplex>(Hemisphere::West, cfg_,
                                                fabric_));
    sxm_.push_back(std::make_unique<SxmComplex>(Hemisphere::East, cfg_,
                                                fabric_));
    c2c_ = std::make_unique<C2cModule>(cfg_, fabric_);
    memIo_ = std::make_unique<StreamIo>(cfg_, fabric_, "MEM");
    power_ = std::make_unique<PowerModel>(cfg_);

    queues_.reserve(kNumIcus);
    for (int i = 0; i < kNumIcus; ++i)
        queues_.emplace_back(IcuId{i}, barrier_);
}

MemSlice &
Chip::mem(Hemisphere hem, int index)
{
    TSP_ASSERT(index >= 0 && index < kMemSlicesPerHem);
    const int base =
        hem == Hemisphere::West ? 0 : kMemSlicesPerHem;
    return memSlices_[static_cast<std::size_t>(base + index)];
}

const MemSlice &
Chip::mem(Hemisphere hem, int index) const
{
    return const_cast<Chip *>(this)->mem(hem, index);
}

const MxmPlane &
Chip::mxm(int plane) const
{
    TSP_ASSERT(plane >= 0 && plane < kMxmPlanes);
    return *mxm_[static_cast<std::size_t>(plane)];
}

const SxmComplex &
Chip::sxm(Hemisphere hem) const
{
    return *sxm_[hem == Hemisphere::West ? 0 : 1];
}

void
Chip::loadProgram(const AsmProgram &program)
{
    for (auto &q : queues_)
        q.loadProgram({});
    for (const auto &[icu_id, insts] : program.queues) {
        TSP_ASSERT(icu_id >= 0 && icu_id < kNumIcus);
        queues_[static_cast<std::size_t>(icu_id)].loadProgram(insts);
    }
    fabric_.clear();
    // Stale broadcasts must not leak into the next program's barrier
    // preamble: a reloaded chip starts from the same barrier state as
    // a fresh one (session reuse determinism).
    barrier_.clear();
    lastStepQuiet_ = true;
    programHash_ = hashProgram(program);
}

void
Chip::dispatchMem(const IcuId &icu, const Instruction &inst)
{
    const int rel = icu.id - IcuId::memBase;
    MemSlice &slice = memSlices_[static_cast<std::size_t>(rel)];
    const SlicePos pos = slice.pos();
    const Cycle now = fabric_.now();
    const Cycle when = now + opTiming(inst.op).dFunc;

    // Every MEM opcode below uses exactly one SRAM port access;
    // counting here keeps the power sample free of slice scans.
    ++sramAccesses_;

    switch (inst.op) {
      case Opcode::Read: {
        // Replay: read straight into the tape arena slot — the MEM
        // read path is the bulk of all produces, and this leaves it
        // with a single SRAM-word copy and nothing else.
        if (Vec320 *dst = memIo_->replayProduceDest()) {
            slice.readInto(inst.addr, now, *dst);
            return;
        }
        const Vec320 v = slice.read(inst.addr, now);
        memIo_->produceRaw(inst.dst, pos, v, when);
        return;
      }
      case Opcode::Write: {
        Vec320 scratch;
        const Vec320 *v = memIo_->consumeRef(inst.srcA, pos, scratch);
        slice.write(inst.addr, *v, now);
        return;
      }
      case Opcode::Gather: {
        // The map stream supplies one 13-bit word address per
        // superlane in the first two bytes of each tile word.
        Vec320 scratch;
        const Vec320 *m = memIo_->consumeRef(inst.srcB, pos, scratch);
        std::array<MemAddr, kSuperlanes> addrs;
        for (int sl = 0; sl < kSuperlanes; ++sl) {
            const std::size_t base =
                static_cast<std::size_t>(sl * kWordBytes);
            addrs[static_cast<std::size_t>(sl)] = static_cast<MemAddr>(
                (m->bytes[base] |
                 (static_cast<unsigned>(m->bytes[base + 1]) << 8)) &
                (kMemWordsPerSlice - 1));
        }
        if (Vec320 *dst = memIo_->replayProduceDest()) {
            slice.gatherInto(addrs, now, *dst);
            return;
        }
        const Vec320 v = slice.gather(addrs, now);
        memIo_->produceRaw(inst.dst, pos, v, when);
        return;
      }
      case Opcode::Scatter: {
        Vec320 mScratch;
        Vec320 vScratch;
        const Vec320 *m =
            memIo_->consumeRef(inst.srcB, pos, mScratch);
        const Vec320 *v =
            memIo_->consumeRef(inst.srcA, pos, vScratch);
        std::array<MemAddr, kSuperlanes> addrs;
        for (int sl = 0; sl < kSuperlanes; ++sl) {
            const std::size_t base =
                static_cast<std::size_t>(sl * kWordBytes);
            addrs[static_cast<std::size_t>(sl)] = static_cast<MemAddr>(
                (m->bytes[base] |
                 (static_cast<unsigned>(m->bytes[base + 1]) << 8)) &
                (kMemWordsPerSlice - 1));
        }
        slice.scatter(addrs, *v, now);
        return;
      }
      default:
        panic("%s: bad MEM opcode %s", icu.name().c_str(),
              opcodeName(inst.op));
    }
}

void
Chip::dispatch(const IcuId &icu, const Instruction &inst)
{
    const Cycle now = fabric_.now();

    // ICU-common instructions may issue from any queue.
    switch (inst.op) {
      case Opcode::Notify: {
        barrier_.notify(now);
        // Broadcasts that arrived before the earliest still-parked
        // Sync can never satisfy another queue (future Syncs park at
        // >= now): drop them so long runs and reused sessions don't
        // accumulate them without bound.
        Cycle parked_floor = now;
        for (const auto &q : queues_) {
            if (q.parked() && q.parkedSince() < parked_floor)
                parked_floor = q.parkedSince();
        }
        barrier_.prune(parked_floor);
        return;
      }
      case Opcode::Config:
        // Low-power mode: recorded for the power model; geometry is
        // fixed per program in this model (ChipConfig sets VL).
        return;
      case Opcode::Ifetch: {
        // Default fetch model: count bandwidth; consume the text
        // vector pair if the compiler routed one here.
        ++ifetches_;
        Vec320 dummy;
        StreamRef second = inst.srcA;
        second.id = static_cast<StreamId>(inst.srcA.id + 1);
        memIo_->tryConsume(inst.srcA, IcuId{icu}.pos(), dummy);
        memIo_->tryConsume(second, IcuId{icu}.pos(), dummy);
        return;
      }
      default:
        break;
    }

    switch (icu.kind()) {
      case SliceKind::MEM:
        dispatchMem(icu, inst);
        return;
      case SliceKind::VXM:
        vxm_->execute(inst, icu.id - IcuId::vxmBase, now);
        return;
      case SliceKind::MXM: {
        const int plane = (icu.id - IcuId::mxmBase) / 2;
        mxm_[static_cast<std::size_t>(plane)]->issue(inst, now);
        return;
      }
      case SliceKind::SXM: {
        const int rel = icu.id - IcuId::sxmBase;
        const int hem_idx = rel < 8 ? 0 : 1;
        sxm_[static_cast<std::size_t>(hem_idx)]->execute(
            inst, static_cast<SxmUnit>(rel % 8), now);
        return;
      }
      case SliceKind::C2C:
        c2c_->execute(inst, icu.id - IcuId::c2cBase, now);
        return;
      default:
        panic("dispatch: bad ICU kind");
    }
}

void
Chip::step()
{
    const Cycle now = fabric_.now();
    dispatchesThisCycle_ = 0;

    // Scheduled SRAM upsets land before any access this cycle. These
    // are events to nextEventCycle(), so fast-forward stops exactly
    // here and both stepping modes observe the same upset history.
    if (faults_ && faults_->hasScheduled())
        faults_->applyScheduled(now, memSlices_);

    for (auto &q : queues_) {
        const Instruction *insts[2] = {nullptr, nullptr};
        const int n = q.tick(now, insts);
        for (int i = 0; i < n; ++i) {
            ++dispatchesThisCycle_;
            if (cfg_.traceEnabled)
                trace_.push_back({now, q.id(), *insts[i]});
            if (traceRec_)
                traceRec_->onDispatch(traceChip_, q.id().id, *insts[i],
                                      now);
            dispatch(q.id(), *insts[i]);
        }
    }

    // MXM sequencers stream activations/results every cycle. Note
    // whether any plane was active *before* ticking so the final
    // cycle of a window still reaches the delta scan below. A tick on
    // an idle plane is a no-op, so only busy-plane ticks are recorded.
    bool mxm_busy = false;
    for (int p = 0; p < kMxmPlanes; ++p) {
        MxmPlane &plane = *mxm_[static_cast<std::size_t>(p)];
        if (plane.busy()) {
            mxm_busy = true;
            if (traceRec_)
                traceRec_->onMxmTick(traceChip_, p, now);
        }
        plane.tick(now);
    }

    // Power accounting from activity deltas. Unit counters only move
    // on a cycle with a dispatch or an active MXM sequencer — every
    // other cycle contributes stream hops and static power alone, so
    // the per-cycle scans collapse to incremental counters.
    ActivitySample act;
    if (dispatchesThisCycle_ > 0 || mxm_busy) {
        std::uint64_t macc = 0;
        for (const auto &plane : mxm_)
            macc += plane->maccOps();
        std::uint64_t sxm_bytes = 0;
        for (const auto &s : sxm_)
            sxm_bytes += s->bytesSwitched();

        act.maccOps = macc - prevMacc_;
        act.vxmLaneOps = vxm_->laneOps() - prevVxmOps_;
        act.sxmBytes = sxm_bytes - prevSxmBytes_;
        act.sramWords = (sramAccesses_ - prevSramAccesses_) *
                        kSuperlanes; // 20 words/access.

        prevMacc_ = macc;
        prevVxmOps_ = vxm_->laneOps();
        prevSxmBytes_ = sxm_bytes;
        prevSramAccesses_ = sramAccesses_;
    }
    act.streamHops = fabric_.validEntries();
    act.icuDispatches = dispatchesThisCycle_;
    power_->sample(act);

    lastStepQuiet_ = dispatchesThisCycle_ == 0 && !mxm_busy;
    fabric_.advance();
}

Cycle
Chip::nextEventCycle() const
{
    const Cycle now = fabric_.now();
    // An active MXM sequencer consumes or produces every cycle.
    for (const auto &plane : mxm_) {
        if (plane->busy())
            return now;
    }
    Cycle ev = fabric_.earliestPendingCycle();
    {
        // Link events (pending rx arrivals, serializer drain) are
        // conservative stop points: nothing dispatches at them, but
        // they bound how far a span can be declared idle when this
        // chip is a pod member.
        const Cycle c = c2c_->earliestEventCycle(now);
        if (c < ev)
            ev = c;
    }
    if (faults_) {
        const Cycle f = faults_->nextScheduledCycle();
        if (f <= now)
            return now;
        if (f < ev)
            ev = f;
    }
    for (const auto &q : queues_) {
        const Cycle e = q.nextEventCycle(now);
        if (e <= now)
            return now;
        if (e < ev)
            ev = e;
    }
    return ev;
}

void
Chip::advanceTo(Cycle target)
{
    const Cycle now = fabric_.now();
    TSP_ASSERT(target > now);
    const Cycle span = target - now;

    // Idle accounting each queue would have accumulated per cycle.
    for (auto &q : queues_)
        q.skipIdle(now, target);

    // Nothing dispatches or executes inside the span, so the only
    // dynamic activity is vectors hopping along the fabric: the span
    // hop total is exactly the fabric's closed-form accumulation.
    const std::uint64_t hops_before = fabric_.totalHops();
    fabric_.advanceBy(span);

    ActivitySample act;
    act.streamHops = fabric_.totalHops() - hops_before;
    power_->sampleSpan(act, span);
}

bool
Chip::done() const
{
    for (const auto &q : queues_) {
        if (!q.done())
            return false;
    }
    for (const auto &plane : mxm_) {
        if (plane->abcActive() || plane->accActive())
            return false;
    }
    return true;
}

Cycle
Chip::run(Cycle max_cycles)
{
    if (!runBounded(max_cycles)) {
        if (machineCheck()) {
            const MachineCheckInfo &mc = machineCheckInfo();
            fatal("Chip::run: machine check at cycle %llu, %s: %s",
                  static_cast<unsigned long long>(mc.cycle),
                  mc.unit.c_str(), mc.detail.c_str());
        }
        fatal("Chip::run: cycle limit %llu reached — program never "
              "completes",
              static_cast<unsigned long long>(max_cycles));
    }
    return now();
}

bool
Chip::runBounded(Cycle cycle_limit)
{
    // The event-driven core jumps over idle spans; the power trace
    // needs one sample per cycle, so it forces per-cycle stepping.
    const bool fast_forward =
        cfg_.fastForwardEnabled && !cfg_.powerTraceEnabled;
    while (!done()) {
        // A raised machine check halts the clock after the cycle that
        // detected it: no further dispatch can consume corrupted data.
        if (mcheck_->raised())
            return false;
        if (now() >= cycle_limit)
            return false;
        if (fast_forward && lastStepQuiet_) {
            const Cycle ev = nextEventCycle();
            if (ev > now()) {
                advanceTo(ev < cycle_limit ? ev : cycle_limit);
                continue;
            }
        }
        step();
    }
    // A machine check on the program's very last cycle still fails
    // the run: the retiring store may have committed corrupted data.
    return !mcheck_->raised();
}

void
Chip::runTo(Cycle target)
{
    const bool fast_forward =
        cfg_.fastForwardEnabled && !cfg_.powerTraceEnabled;
    while (now() < target) {
        if (mcheck_->raised())
            return;
        if (fast_forward && lastStepQuiet_) {
            const Cycle ev = nextEventCycle();
            if (ev > now()) {
                advanceTo(ev < target ? ev : target);
                continue;
            }
        }
        step();
    }
}

std::uint64_t
Chip::totalDispatched() const
{
    std::uint64_t total = dispatchedAdjust_;
    for (const auto &q : queues_)
        total += q.dispatched();
    return total;
}

std::uint64_t
Chip::totalNopCycles() const
{
    std::uint64_t total = nopAdjust_;
    for (const auto &q : queues_)
        total += q.nopCycles();
    return total;
}

std::uint64_t
Chip::totalParkedCycles() const
{
    std::uint64_t total = parkedAdjust_;
    for (const auto &q : queues_)
        total += q.parkedCycles();
    return total;
}

void
Chip::armTraceRecorder(TraceRecording *rec, int chip_index)
{
    TSP_ASSERT(traceRec_ == nullptr && rec != nullptr);
    TSP_ASSERT(fabric_.tapeReplayer() == nullptr);
    traceRec_ = rec;
    traceChip_ = chip_index;
    fabric_.attachTapeHooks(rec, nullptr);
}

void
Chip::disarmTraceRecorder()
{
    traceRec_ = nullptr;
    fabric_.attachTapeHooks(nullptr, nullptr);
}

void
Chip::beginReplay(TapeReplayer *player)
{
    TSP_ASSERT(player != nullptr && traceRec_ == nullptr);
    TSP_ASSERT(!mcheck_->raised());
    // The chip is at the freshly loaded program state the recording
    // started from (queues loaded, sequencers idle). A previous run
    // can leave dead values still flowing; a reload would clear them,
    // and replay never reads the fabric, so drop them here to let
    // replayJumpTo() keep its emptiness invariant.
    fabric_.clear();
    fabric_.attachTapeHooks(nullptr, player);
    for (auto &m : memSlices_)
        m.setReplayMode(true);
}

void
Chip::replayDispatch(int icu_id, const Instruction &inst, Cycle when)
{
    fabric_.replayJumpTo(when);
    dispatch(IcuId{icu_id}, inst);
}

void
Chip::replayMxmTick(int plane, Cycle when)
{
    TSP_ASSERT(plane >= 0 && plane < kMxmPlanes);
    fabric_.replayJumpTo(when);
    mxm_[static_cast<std::size_t>(plane)]->tick(when);
}

void
Chip::replayMxmTickRun(int plane, Cycle when, std::size_t count)
{
    TSP_ASSERT(plane >= 0 && plane < kMxmPlanes);
    fabric_.replayJumpTo(when);
    MxmPlane &p = *mxm_[static_cast<std::size_t>(plane)];
    for (std::size_t k = 0; k < count; ++k)
        p.tick(when + k);
}

void
Chip::finishReplay(const ExecutionTrace::ChipDeltas &d, Cycle start,
                   Cycle end)
{
    TSP_ASSERT(fabric_.tapeReplayer() != nullptr && end >= start);
    fabric_.replayJumpTo(end);
    fabric_.replayCredit(d.fabricHops, d.fabricWrites);
    fabric_.attachTapeHooks(nullptr, nullptr);
    for (auto &m : memSlices_)
        m.setReplayMode(false);

    // The queues never ticked: retire them (the recorded run retired)
    // and credit the dispatch/idle counters their scans would have
    // accumulated.
    for (auto &q : queues_)
        q.retireForReplay();
    dispatchedAdjust_ += d.dispatched;
    nopAdjust_ += d.nopCycles;
    parkedAdjust_ += d.parkedCycles;

    // One span-sized sample integrates exactly what per-cycle
    // sampling summed over the recorded run.
    power_->sampleSpan(d.activity, end - start);

    // Re-executed numerics moved the unit counters; resync the
    // per-cycle delta baselines so the next real step() does not
    // re-count replay's work.
    prevMacc_ = totalMaccOps();
    prevVxmOps_ = vxm_->laneOps();
    std::uint64_t sxm_bytes = 0;
    for (const auto &s : sxm_)
        sxm_bytes += s->bytesSwitched();
    prevSxmBytes_ = sxm_bytes;
    prevSramAccesses_ = sramAccesses_;
    lastStepQuiet_ = true;
}

std::uint64_t
Chip::totalMaccOps() const
{
    std::uint64_t total = 0;
    for (const auto &plane : mxm_)
        total += plane->maccOps();
    return total;
}

StatGroup
Chip::stats() const
{
    StatGroup g;
    g.set("cycles", now());
    g.set("dispatched", totalDispatched());
    g.set("macc_ops", totalMaccOps());
    g.set("vxm_lane_ops", vxm_->laneOps());
    g.set("stream_hops", fabric_.totalHops());
    g.set("stream_writes", fabric_.totalWrites());
    g.set("ifetches", ifetches_);
    g.set("notifies",
          static_cast<std::uint64_t>(barrier_.totalNotifies()));

    g.set("nop_cycles", totalNopCycles());
    g.set("parked_cycles", totalParkedCycles());

    std::uint64_t reads = 0, writes = 0;
    std::uint64_t sram_cor = 0, sram_unc = 0;
    for (const auto &m : memSlices_) {
        reads += m.reads();
        writes += m.writes();
        sram_cor += m.correctedErrors();
        sram_unc += m.uncorrectableErrors();
    }
    g.set("mem_reads", reads);
    g.set("mem_writes", writes);

    // Per-unit SECDED breakdown (the hardware's per-consumer CSRs),
    // plus chip-wide totals kept under the original names.
    std::uint64_t sxm_cor = 0, sxm_unc = 0;
    for (const auto &s : sxm_) {
        sxm_cor += s->io().correctedErrors();
        sxm_unc += s->io().uncorrectableErrors();
    }
    std::uint64_t mxm_cor = 0, mxm_unc = 0;
    for (const auto &p : mxm_) {
        mxm_cor += p->io().correctedErrors();
        mxm_unc += p->io().uncorrectableErrors();
    }
    g.set("ecc_corrected_mem_sram", sram_cor);
    g.set("ecc_uncorrectable_mem_sram", sram_unc);
    g.set("ecc_corrected_mem_port", memIo_->correctedErrors());
    g.set("ecc_uncorrectable_mem_port", memIo_->uncorrectableErrors());
    g.set("ecc_corrected_vxm", vxm_->io().correctedErrors());
    g.set("ecc_uncorrectable_vxm", vxm_->io().uncorrectableErrors());
    g.set("ecc_corrected_sxm", sxm_cor);
    g.set("ecc_uncorrectable_sxm", sxm_unc);
    g.set("ecc_corrected_mxm", mxm_cor);
    g.set("ecc_uncorrectable_mxm", mxm_unc);
    g.set("ecc_corrected", sram_cor + memIo_->correctedErrors() +
                               vxm_->io().correctedErrors() + sxm_cor +
                               mxm_cor);
    g.set("ecc_uncorrectable",
          sram_unc + memIo_->uncorrectableErrors() +
              vxm_->io().uncorrectableErrors() + sxm_unc + mxm_unc);

    g.set("machine_checks", mcheck_->raises());
    if (faults_) {
        g.set("faults_injected_mem", faults_->memFlips());
        g.set("faults_injected_stream", faults_->streamFlips());
        g.set("faults_injected_c2c", faults_->c2cFlips());
        g.set("faults_injected_scheduled", faults_->scheduledFlips());
    }

    std::uint64_t sxm_bytes = 0;
    for (const auto &s : sxm_)
        sxm_bytes += s->bytesSwitched();
    g.set("sxm_bytes", sxm_bytes);

    g.set("c2c_sent", c2c_->sent());
    g.set("c2c_received", c2c_->received());
    g.set("c2c_dropped_receives", c2c_->droppedReceives());
    for (int link = 0; link < kC2cLinks; ++link) {
        const std::uint64_t d = c2c_->droppedReceives(link);
        if (d > 0) {
            g.set("c2c_dropped_receives_link" + std::to_string(link),
                  d);
        }
    }
    return g;
}

} // namespace tsp
