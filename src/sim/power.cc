#include "sim/power.hh"

#include "arch/types.hh"
#include "common/stats.hh"

namespace tsp {

PowerModel::PowerModel(const ChipConfig &cfg) : cfg_(cfg) {}

void
PowerModel::sampleSpan(const ActivitySample &activity, Cycle span)
{
    if (span == 0)
        return;
    const PowerParams &p = cfg_.power;
    const double pj =
        static_cast<double>(activity.maccOps) * p.mxmMaccPj +
        static_cast<double>(activity.vxmLaneOps) * p.vxmOpPj +
        static_cast<double>(activity.streamHops) * kLanes *
            p.streamHopPj +
        static_cast<double>(activity.sramWords) * p.sramWordPj +
        static_cast<double>(activity.sxmBytes) * p.sxmBytePj +
        static_cast<double>(activity.icuDispatches) * p.icuDispatchPj;

    const double static_w =
        p.uncoreStaticW +
        p.superlaneStaticW * cfg_.activeSuperlanes;
    const double cycle_s = cfg_.cyclePeriodSec();
    const double joules =
        pj * 1e-12 + static_w * cycle_s * static_cast<double>(span);

    energyJ_ += joules;
    cycles_ += span;
    if (cfg_.powerTraceEnabled) {
        const double per_cycle_w =
            joules / (cycle_s * static_cast<double>(span));
        for (Cycle c = 0; c < span; ++c)
            trace_.push_back(static_cast<float>(per_cycle_w));
    }
}

double
PowerModel::averagePowerW() const
{
    if (cycles_ == 0)
        return 0.0;
    return energyJ_ / (static_cast<double>(cycles_) *
                       cfg_.cyclePeriodSec());
}

std::vector<double>
PowerModel::downsampledTrace(std::size_t buckets) const
{
    std::vector<double> out;
    if (trace_.empty() || buckets == 0)
        return out;
    // Watt-scale samples sum order-independently in fixed point, so
    // a bucket's average depends only on which samples fell in it.
    std::vector<FixedPointSum> sums(buckets);
    std::vector<std::size_t> counts(buckets, 0);
    for (std::size_t i = 0; i < trace_.size(); ++i) {
        const std::size_t b =
            i * buckets / trace_.size();
        sums[b].add(trace_[i]);
        ++counts[b];
    }
    out.resize(buckets, 0.0);
    for (std::size_t b = 0; b < buckets; ++b) {
        if (counts[b])
            out[b] = sums[b].value() /
                     static_cast<double>(counts[b]);
    }
    return out;
}

} // namespace tsp
