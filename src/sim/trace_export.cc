#include "sim/trace_export.hh"

#include <fstream>
#include <set>
#include <sstream>

#include "common/strutil.hh"

namespace tsp {

namespace {

/** Escapes a string for a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // namespace

std::string
traceToChromeJson(const std::vector<TraceEvent> &events)
{
    std::ostringstream os;
    os << "{\"traceEvents\":[\n";

    // Thread metadata: name each queue once, grouped by slice kind
    // via the sort index.
    std::set<int> named;
    bool first = true;
    auto emit = [&](const std::string &line) {
        if (!first)
            os << ",\n";
        first = false;
        os << line;
    };

    for (const TraceEvent &e : events) {
        if (!named.count(e.icu.id)) {
            named.insert(e.icu.id);
            emit(strformat(
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                e.icu.id, e.icu.name().c_str()));
            emit(strformat(
                "{\"name\":\"thread_sort_index\",\"ph\":\"M\","
                "\"pid\":1,\"tid\":%d,\"args\":{\"sort_index\":%d}}",
                e.icu.id, e.icu.id));
        }
    }

    for (const TraceEvent &e : events) {
        emit(strformat(
            "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
            "\"ts\":%llu,\"dur\":1,\"args\":{\"asm\":\"%s\"}}",
            opcodeName(e.inst.op), e.icu.id,
            static_cast<unsigned long long>(e.cycle),
            jsonEscape(e.inst.toString()).c_str()));
    }
    os << "\n]}\n";
    return os.str();
}

bool
writeChromeTrace(const Chip &chip, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << traceToChromeJson(chip.trace());
    return static_cast<bool>(out);
}

} // namespace tsp
