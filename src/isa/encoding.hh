/**
 * @file
 * Binary instruction encoding.
 *
 * Program text is stored in MEM slices and delivered to the ICUs over
 * streams in 640-byte bundles (a pair of 320-byte vectors) by Ifetch
 * (paper III.A.3). This module defines the byte-level wire format used
 * for that path: a fixed 20-byte header plus an optional lane-map
 * payload for Permute/Distribute.
 */

#ifndef TSP_ISA_ENCODING_HH
#define TSP_ISA_ENCODING_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/instruction.hh"

namespace tsp {

/** Size in bytes of the fixed portion of an encoded instruction. */
inline constexpr std::size_t kInstHeaderBytes = 20;

/** Ifetch bundle size: a pair of 320-byte vectors. */
inline constexpr std::size_t kIfetchBundleBytes = 2 * kLanes;

/** Appends the encoding of @p inst to @p out. */
void encodeInstruction(const Instruction &inst,
                       std::vector<std::uint8_t> &out);

/** @return the encoded size of @p inst in bytes. */
std::size_t encodedSize(const Instruction &inst);

/**
 * Decodes one instruction from @p bytes starting at @p offset.
 *
 * @return the decoded instruction and advances @p offset past it, or
 * std::nullopt on malformed input (offset unchanged).
 */
std::optional<Instruction> decodeInstruction(
    const std::vector<std::uint8_t> &bytes, std::size_t &offset);

/** Encodes a whole queue back-to-back. */
std::vector<std::uint8_t> encodeQueue(
    const std::vector<Instruction> &insts);

/** Decodes a byte blob into a queue; returns false on malformed input. */
bool decodeQueue(const std::vector<std::uint8_t> &bytes,
                 std::vector<Instruction> &out);

} // namespace tsp

#endif // TSP_ISA_ENCODING_HH
