#include "isa/encoding.hh"

#include "common/logging.hh"

namespace tsp {

namespace {

void
put16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

std::uint16_t
get16(const std::vector<std::uint8_t> &b, std::size_t off)
{
    return static_cast<std::uint16_t>(b[off] |
                                      (static_cast<unsigned>(b[off + 1])
                                       << 8));
}

std::uint32_t
get32(const std::vector<std::uint8_t> &b, std::size_t off)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[off + i]) << (8 * i);
    return v;
}

std::uint8_t
packStreamRef(const StreamRef &s)
{
    return static_cast<std::uint8_t>(
        (s.id & 0x1f) | (s.dir == Direction::West ? 0x20 : 0x00));
}

StreamRef
unpackStreamRef(std::uint8_t b)
{
    StreamRef s;
    s.id = static_cast<StreamId>(b & 0x1f);
    s.dir = (b & 0x20) ? Direction::West : Direction::East;
    return s;
}

} // namespace

std::size_t
encodedSize(const Instruction &inst)
{
    return kInstHeaderBytes + (inst.map ? 2 * inst.map->size() : 0);
}

void
encodeInstruction(const Instruction &inst, std::vector<std::uint8_t> &out)
{
    // Header layout (20 bytes, little-endian):
    //  [0]  opcode
    //  [1]  flags: bit0 = has map
    //  [2]  srcA  [3] srcB  [4] dst  (packed stream refs)
    //  [5]  groupSize
    //  [6]  dtype
    //  [7]  flags
    //  [8..11]  imm0
    //  [12..15] imm1
    //  [16..17] addr (13 bits used)
    //  [18..19] map entry count
    out.push_back(static_cast<std::uint8_t>(inst.op));
    out.push_back(inst.map ? 0x01 : 0x00);
    out.push_back(packStreamRef(inst.srcA));
    out.push_back(packStreamRef(inst.srcB));
    out.push_back(packStreamRef(inst.dst));
    out.push_back(inst.groupSize);
    out.push_back(static_cast<std::uint8_t>(inst.dtype));
    out.push_back(inst.flags);
    put32(out, inst.imm0);
    put32(out, inst.imm1);
    put16(out, static_cast<std::uint16_t>(inst.addr));
    put16(out, static_cast<std::uint16_t>(inst.map ? inst.map->size()
                                                   : 0));
    if (inst.map) {
        for (const std::uint16_t e : *inst.map)
            put16(out, e);
    }
}

std::optional<Instruction>
decodeInstruction(const std::vector<std::uint8_t> &bytes,
                  std::size_t &offset)
{
    if (offset + kInstHeaderBytes > bytes.size())
        return std::nullopt;
    const std::size_t base = offset;

    const std::uint8_t opb = bytes[base];
    if (opb >= kNumOpcodes)
        return std::nullopt;

    Instruction inst;
    inst.op = static_cast<Opcode>(opb);
    const bool has_map = bytes[base + 1] & 0x01;
    inst.srcA = unpackStreamRef(bytes[base + 2]);
    inst.srcB = unpackStreamRef(bytes[base + 3]);
    inst.dst = unpackStreamRef(bytes[base + 4]);
    inst.groupSize = bytes[base + 5];
    if (bytes[base + 6] > static_cast<std::uint8_t>(DType::Fp32))
        return std::nullopt;
    inst.dtype = static_cast<DType>(bytes[base + 6]);
    inst.flags = bytes[base + 7];
    inst.imm0 = get32(bytes, base + 8);
    inst.imm1 = get32(bytes, base + 12);
    inst.addr = get16(bytes, base + 16);
    const std::size_t map_len = get16(bytes, base + 18);

    if (has_map != (map_len > 0))
        return std::nullopt;
    std::size_t next = base + kInstHeaderBytes;
    if (map_len > 0) {
        if (next + 2 * map_len > bytes.size())
            return std::nullopt;
        auto map = std::make_shared<std::vector<std::uint16_t>>();
        map->reserve(map_len);
        for (std::size_t i = 0; i < map_len; ++i)
            map->push_back(get16(bytes, next + 2 * i));
        inst.map = std::move(map);
        next += 2 * map_len;
    }
    offset = next;
    return inst;
}

std::vector<std::uint8_t>
encodeQueue(const std::vector<Instruction> &insts)
{
    std::vector<std::uint8_t> out;
    for (const auto &inst : insts)
        encodeInstruction(inst, out);
    return out;
}

bool
decodeQueue(const std::vector<std::uint8_t> &bytes,
            std::vector<Instruction> &out)
{
    out.clear();
    std::size_t offset = 0;
    while (offset < bytes.size()) {
        auto inst = decodeInstruction(bytes, offset);
        if (!inst)
            return false;
        out.push_back(std::move(*inst));
    }
    return true;
}

} // namespace tsp
