/**
 * @file
 * Two-way assembler for the TSP ISA.
 *
 * The text format is the one produced by Instruction::toString(),
 * organized into per-ICU sections introduced by "@<icu-name>:" labels
 * (e.g. "@MEM_E12:", "@VXM3:"). Comments start with '#' or ';'.
 * This is the format used by the schedule dumps, the tests, and the
 * debugging workflow the paper describes bringing up alongside the
 * compiler.
 */

#ifndef TSP_ISA_ASSEMBLER_HH
#define TSP_ISA_ASSEMBLER_HH

#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace tsp {

/** A complete program: an ordered instruction list per ICU. */
struct AsmProgram
{
    std::map<int, std::vector<Instruction>> queues;

    /** @return instructions for @p icu (empty if none). */
    const std::vector<Instruction> &queue(IcuId icu) const;
};

/** Result of parsing: the program, or an error message with a line. */
struct AsmResult
{
    AsmProgram program;
    bool ok = true;
    std::string error;
    int errorLine = 0;
};

/** Parses ICU names like "MEM_E12", "VXM3", "SXM_W_PRM", "C2C5". */
bool parseIcuName(const std::string &name, IcuId &out);

/** Parses a stream reference like "s12.e". */
bool parseStreamRef(const std::string &text, StreamRef &out);

/** Parses one instruction line (without a label). */
bool parseInstruction(const std::string &line, Instruction &out,
                      std::string &error);

/** Assembles a full listing. */
AsmResult assemble(const std::string &text);

/** Disassembles a program back to canonical text. */
std::string disassemble(const AsmProgram &program);

} // namespace tsp

#endif // TSP_ISA_ASSEMBLER_HH
