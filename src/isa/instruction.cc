#include "isa/instruction.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tsp {

std::string
StreamRef::toString() const
{
    return strformat("s%d.%s", static_cast<int>(id),
                     dir == Direction::East ? "e" : "w");
}

bool
Instruction::operator==(const Instruction &other) const
{
    const bool fields_equal =
        op == other.op && imm0 == other.imm0 && imm1 == other.imm1 &&
        addr == other.addr && srcA == other.srcA && srcB == other.srcB &&
        dst == other.dst && groupSize == other.groupSize &&
        dtype == other.dtype && flags == other.flags;
    if (!fields_equal)
        return false;
    if (static_cast<bool>(map) != static_cast<bool>(other.map))
        return false;
    return !map || *map == *other.map;
}

std::string
Instruction::toString() const
{
    const std::string mnem = opcodeName(op);
    switch (op) {
      case Opcode::Nop:
      case Opcode::Config:
        return strformat("%s %u", mnem.c_str(), imm0);
      case Opcode::Repeat:
        return strformat("repeat %u, %u", imm0, imm1);
      case Opcode::Sync:
      case Opcode::Notify:
      case Opcode::Deskew:
        return mnem;
      case Opcode::Ifetch:
        return strformat("ifetch %s", srcA.toString().c_str());
      case Opcode::Read:
        return strformat("read 0x%x, %s", addr, dst.toString().c_str());
      case Opcode::Write:
        return strformat("write 0x%x, %s", addr,
                         srcA.toString().c_str());
      case Opcode::Gather:
        return strformat("gather %s, %s", dst.toString().c_str(),
                         srcB.toString().c_str());
      case Opcode::Scatter:
        return strformat("scatter %s, %s", srcA.toString().c_str(),
                         srcB.toString().c_str());
      case Opcode::Lw:
        return strformat("lw %s, n%u", srcA.toString().c_str(),
                         static_cast<unsigned>(groupSize));
      case Opcode::Iw:
        return strformat("iw p%u", imm0);
      case Opcode::Abc:
        if (flags & kFlagAccumulate) {
            return strformat("abc p%u, %s, n%u, acc", imm0,
                             srcA.toString().c_str(), imm1);
        }
        return strformat("abc p%u, %s, n%u", imm0,
                         srcA.toString().c_str(), imm1);
      case Opcode::Acc:
        return strformat("acc p%u, %s, n%u", imm0,
                         dst.toString().c_str(), imm1);
      case Opcode::ShiftUp:
      case Opcode::ShiftDown:
        return strformat("%s %s, %s, %u", mnem.c_str(),
                         srcA.toString().c_str(),
                         dst.toString().c_str(), imm0);
      case Opcode::SelectNS:
        return strformat("select.ns %s, %s, %s, m%u",
                         srcA.toString().c_str(),
                         srcB.toString().c_str(),
                         dst.toString().c_str(), imm0);
      case Opcode::Permute:
      case Opcode::Distribute:
        return strformat("%s %s, %s", mnem.c_str(),
                         srcA.toString().c_str(),
                         dst.toString().c_str());
      case Opcode::Rotate:
        return strformat("rotate %s, %s, n%u",
                         srcA.toString().c_str(),
                         dst.toString().c_str(), imm0);
      case Opcode::Transpose:
        return strformat("transpose %s, %s",
                         srcA.toString().c_str(),
                         dst.toString().c_str());
      case Opcode::Send:
      case Opcode::Receive:
        return strformat("%s l%u, %s", mnem.c_str(), imm0,
                         (op == Opcode::Send ? srcA : dst)
                             .toString()
                             .c_str());
      case Opcode::Convert:
        return strformat("convert %s, %s, %s -> %s",
                         srcA.toString().c_str(),
                         dst.toString().c_str(),
                         dtypeName(static_cast<DType>(imm1)),
                         dtypeName(static_cast<DType>(imm0)));
      case Opcode::Shift:
        return strformat("shift %s, %s, %u", srcA.toString().c_str(),
                         dst.toString().c_str(), imm0);
      default:
        break;
    }
    if (isVxmBinary(op)) {
        return strformat("%s %s, %s, %s", mnem.c_str(),
                         srcA.toString().c_str(),
                         srcB.toString().c_str(),
                         dst.toString().c_str());
    }
    if (isVxmUnary(op)) {
        return strformat("%s %s, %s", mnem.c_str(),
                         srcA.toString().c_str(),
                         dst.toString().c_str());
    }
    return mnem;
}

OpTiming
opTiming(Opcode op)
{
    // Modeling parameters: functional latencies in core-clock cycles.
    // These are architecturally exposed constants; the compiler and the
    // chip model share this single table so scheduled intercepts are
    // exact by construction (the paper's determinism contract).
    switch (op) {
      case Opcode::Read:
      case Opcode::Gather:
        return {2, 0}; // SRAM access + ECC generate + SR drive.
      case Opcode::Write:
      case Opcode::Scatter:
        return {1, 0}; // Consume: sample + ECC check + bank write.
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Max:
      case Opcode::Min:
      case Opcode::Neg:
      case Opcode::Abs:
      case Opcode::Mask:
      case Opcode::Relu:
      case Opcode::AddSat:
      case Opcode::SubSat:
      case Opcode::Shift:
        return {1, 0};
      case Opcode::Mul:
      case Opcode::MulSat:
      case Opcode::Convert:
        return {2, 0};
      case Opcode::Tanh:
      case Opcode::Exp:
      case Opcode::Rsqrt:
        return {4, 0}; // Iterative / table-based units.
      case Opcode::Lw:
        return {1, 0};
      case Opcode::Iw:
        return {1, 0};
      case Opcode::Abc:
        return {1, 0};
      case Opcode::Acc:
        // One full traversal of the 20-supercell accumulation chain
        // before the first int32 partial sum exits the array edge.
        return {kSuperlanes + 1, 0};
      case Opcode::ShiftUp:
      case Opcode::ShiftDown:
      case Opcode::SelectNS:
      case Opcode::Distribute:
        return {1, 0};
      case Opcode::Permute:
      case Opcode::Rotate:
      case Opcode::Transpose:
        return {2, 0};
      case Opcode::Send:
        // 320 B x 8 b / 120 Gb/s at 1 GHz ~= 22 cycles serialization.
        return {22, 0};
      case Opcode::Receive:
        // The vector already landed in the link's elastic buffer;
        // d_func covers the buffer-to-stream-register drive.
        return {2, 0};
      case Opcode::Deskew:
        return {64, 0};
      default:
        return {1, 0};
    }
}

Cycle
instructionTime(Opcode op, SlicePos producer_pos, SlicePos consumer_pos,
                int active_superlanes)
{
    TSP_ASSERT(active_superlanes >= 1 &&
               active_superlanes <= kSuperlanes);
    const Cycle n = static_cast<Cycle>(active_superlanes);
    return n + opTiming(op).dFunc +
           Layout::transitDelay(producer_pos, consumer_pos);
}

} // namespace tsp
