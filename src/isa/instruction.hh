/**
 * @file
 * The Instruction record dispatched to functional slices, and the
 * architecturally-exposed temporal parameters (d_func, d_skew) the
 * compiler uses to schedule intersections of instructions and streams
 * (paper section III, Eq. 4).
 */

#ifndef TSP_ISA_INSTRUCTION_HH
#define TSP_ISA_INSTRUCTION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/layout.hh"
#include "arch/types.hh"
#include "isa/opcode.hh"

namespace tsp {

/** A stream operand: logical id 0..31 plus direction of flow. */
struct StreamRef
{
    StreamId id = 0;
    Direction dir = Direction::East;

    bool operator==(const StreamRef &other) const = default;

    /** @return e.g. "s12.e". */
    std::string toString() const;
};

/**
 * One decoded instruction.
 *
 * A flat record rather than a class hierarchy: slices interpret only
 * the fields their opcodes define (documented per field), which keeps
 * the dispatch loop branch-cheap and the encoder trivial. The optional
 * lane map used by Permute/Distribute is shared, not copied, since the
 * compiler reuses a handful of maps across thousands of instructions.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;

    /**
     * General immediate:
     *  Nop/Repeat: repeat count n. Config: power mode (active
     *  superlanes). ShiftUp/Down: lane distance. Rotate: n (3 or 4).
     *  Lw/Iw/Abc/Acc: plane-local flags (see mxm module). Send/Receive:
     *  link id. Shift: right-shift amount. Convert: target DType.
     *  Abc: number of activation vectors to stream (window length).
     */
    std::uint32_t imm0 = 0;

    /**
     * Secondary immediate: Repeat inter-iteration gap d; SelectNS
     * select mask; Acc: result count; Convert: source DType.
     */
    std::uint32_t imm1 = 0;

    /** MEM word address (Read/Write) or base address (Gather/Scatter). */
    MemAddr addr = 0;

    /** First source stream (most ops). For Write: the stored stream. */
    StreamRef srcA{};

    /** Second source stream (binary VXM ops, Gather/Scatter map). */
    StreamRef srcB{};

    /** Destination stream (producers). For Read: the loaded stream. */
    StreamRef dst{};

    /**
     * Number of consecutive streams starting at srcA/dst this
     * instruction touches: 1 for scalar-stream ops, 16 for Transpose,
     * n for Rotate outputs, up to 32 for Lw/Iw bursts.
     */
    std::uint8_t groupSize = 1;

    /** Element type the op interprets streams as. */
    DType dtype = DType::Int8;

    /** Op-specific flag bits (e.g. kFlagAccumulate for Abc). */
    std::uint8_t flags = 0;

    /** Abc: add into the existing accumulators instead of overwriting. */
    static constexpr std::uint8_t kFlagAccumulate = 0x01;

    /**
     * Dispatch in the same cycle as the preceding instruction of the
     * queue (MEM dual-issue: read one bank + write the other — paper
     * IV.A). Set by the scheduler, not by hand.
     */
    static constexpr std::uint8_t kFlagCoIssue = 0x02;

    /** Lane map for Permute (320 entries) / Distribute (16 entries). */
    std::shared_ptr<const std::vector<std::uint16_t>> map;

    /** @return assembler text for this instruction. */
    std::string toString() const;

    bool operator==(const Instruction &other) const;
};

/**
 * Temporal parameters of an opcode, exposed through the ISA so the
 * compiler back-end can track the position and time of every stream
 * (the "software-defined hardware" contract of section III).
 */
struct OpTiming
{
    /**
     * d_func: cycles from dispatch until the result vector appears on
     * the destination stream register at the slice's position.
     */
    Cycle dFunc = 1;

    /**
     * d_skew: offset from dispatch to when the first operand vector is
     * sampled from the stream register.
     */
    Cycle dSkew = 0;
};

/** @return the temporal parameters for @p op. */
OpTiming opTiming(Opcode op);

/**
 * Compute Eq. 4: total time for an instruction whose result, produced
 * at position @p producer_pos, is consumed at position @p consumer_pos.
 *
 * T = N + d_func + delta(j, i), with N the tile count of the slice
 * (pipeline depth across superlanes).
 */
Cycle instructionTime(Opcode op, SlicePos producer_pos,
                      SlicePos consumer_pos, int active_superlanes);

} // namespace tsp

#endif // TSP_ISA_INSTRUCTION_HH
