#include "isa/assembler.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tsp {

namespace {

const std::vector<Instruction> kEmptyQueue;

bool
parseDType(const std::string &name, DType &out)
{
    const std::string s = toLower(name);
    if (s == "int8") {
        out = DType::Int8;
    } else if (s == "int16") {
        out = DType::Int16;
    } else if (s == "int32") {
        out = DType::Int32;
    } else if (s == "fp16") {
        out = DType::Fp16;
    } else if (s == "fp32") {
        out = DType::Fp32;
    } else {
        return false;
    }
    return true;
}

/** Parses "p3", "n16", "l2", "m1" style tagged immediates. */
bool
parseTagged(const std::string &text, char tag, std::uint32_t &out)
{
    const auto t = trim(text);
    if (t.size() < 2 || t[0] != tag)
        return false;
    long v = 0;
    if (!parseInt(t.substr(1), v) || v < 0)
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

bool
parseUint(const std::string &text, std::uint32_t &out)
{
    long v = 0;
    if (!parseInt(text, v) || v < 0)
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

} // namespace

const std::vector<Instruction> &
AsmProgram::queue(IcuId icu) const
{
    auto it = queues.find(icu.id);
    return it == queues.end() ? kEmptyQueue : it->second;
}

bool
parseIcuName(const std::string &name, IcuId &out)
{
    const std::string s = toLower(trim(name));
    long v = 0;
    if (s.rfind("mem_", 0) == 0 && s.size() > 5) {
        const char hc = s[4];
        if (hc != 'w' && hc != 'e')
            return false;
        if (!parseInt(s.substr(5), v) || v < 0 || v >= kMemSlicesPerHem)
            return false;
        out = IcuId::mem(hc == 'w' ? Hemisphere::West : Hemisphere::East,
                         static_cast<int>(v));
        return true;
    }
    if (s.rfind("vxm", 0) == 0 && s.size() > 3) {
        if (!parseInt(s.substr(3), v) || v < 0 || v >= kVxmAlusPerLane)
            return false;
        out = IcuId::vxmAlu(static_cast<int>(v));
        return true;
    }
    if (s.rfind("mxm", 0) == 0 && s.size() >= 6) {
        // "mxm<plane>_<w|a>"
        const auto us = s.find('_');
        if (us == std::string::npos || us + 1 >= s.size())
            return false;
        if (!parseInt(s.substr(3, us - 3), v) || v < 0 || v >= kMxmPlanes)
            return false;
        const char sel = s[us + 1];
        if (sel != 'w' && sel != 'a')
            return false;
        out = IcuId::mxm(static_cast<int>(v), sel == 'w');
        return true;
    }
    if (s.rfind("sxm_", 0) == 0) {
        // "sxm_<w|e>_<unit>"
        const auto parts = split(s, '_');
        if (parts.size() != 3)
            return false;
        if (parts[1] != "w" && parts[1] != "e")
            return false;
        static const char *unit_names[8] = {"shn", "shs", "prm", "dst",
                                            "rot", "tr0", "tr1", "sel"};
        for (int u = 0; u < 8; ++u) {
            if (parts[2] == unit_names[u]) {
                out = IcuId::sxm(parts[1] == "w" ? Hemisphere::West
                                                 : Hemisphere::East,
                                 u);
                return true;
            }
        }
        return false;
    }
    if (s.rfind("c2c", 0) == 0 && s.size() > 3) {
        if (!parseInt(s.substr(3), v) || v < 0 || v >= kC2cLinks)
            return false;
        out = IcuId::c2c(static_cast<int>(v));
        return true;
    }
    return false;
}

bool
parseStreamRef(const std::string &text, StreamRef &out)
{
    const auto t = trim(text);
    if (t.size() < 4 || (t[0] != 's' && t[0] != 'S'))
        return false;
    const auto dot = t.find('.');
    if (dot == std::string_view::npos || dot + 1 >= t.size())
        return false;
    long id = 0;
    if (!parseInt(t.substr(1, dot - 1), id) || id < 0 ||
        id >= kStreamsPerDir) {
        return false;
    }
    const char d = static_cast<char>(
        std::tolower(static_cast<unsigned char>(t[dot + 1])));
    if (d != 'e' && d != 'w')
        return false;
    out.id = static_cast<StreamId>(id);
    out.dir = d == 'e' ? Direction::East : Direction::West;
    return true;
}

bool
parseInstruction(const std::string &line, Instruction &out,
                 std::string &error)
{
    out = Instruction{};
    error.clear();

    const auto t = trim(line);
    const auto sp = t.find_first_of(" \t");
    const std::string mnem(t.substr(0, sp));
    const std::string rest(sp == std::string_view::npos
                               ? std::string_view{}
                               : trim(t.substr(sp)));

    Opcode op;
    if (!opcodeFromName(mnem, op)) {
        error = "unknown mnemonic '" + mnem + "'";
        return false;
    }
    out.op = op;

    auto args = rest.empty() ? std::vector<std::string>{}
                             : split(rest, ',');
    auto need = [&](std::size_t n) {
        if (args.size() != n) {
            error = strformat("'%s' expects %zu operands, got %zu",
                              opcodeName(op), n, args.size());
            return false;
        }
        return true;
    };

    switch (op) {
      case Opcode::Sync:
      case Opcode::Notify:
      case Opcode::Deskew:
        return need(0);

      case Opcode::Nop:
      case Opcode::Config:
        if (!need(1))
            return false;
        if (!parseUint(args[0], out.imm0)) {
            error = "bad immediate";
            return false;
        }
        return true;

      case Opcode::Repeat:
        if (!need(2))
            return false;
        if (!parseUint(args[0], out.imm0) ||
            !parseUint(args[1], out.imm1)) {
            error = "bad immediate";
            return false;
        }
        return true;

      case Opcode::Ifetch:
        if (!need(1))
            return false;
        if (!parseStreamRef(args[0], out.srcA)) {
            error = "bad stream ref";
            return false;
        }
        return true;

      case Opcode::Read:
      case Opcode::Write: {
        if (!need(2))
            return false;
        long a = 0;
        if (!parseInt(args[0], a) || a < 0 || a >= kMemWordsPerSlice) {
            error = "bad address";
            return false;
        }
        out.addr = static_cast<MemAddr>(a);
        StreamRef &sref = op == Opcode::Read ? out.dst : out.srcA;
        if (!parseStreamRef(args[1], sref)) {
            error = "bad stream ref";
            return false;
        }
        return true;
      }

      case Opcode::Gather:
      case Opcode::Scatter: {
        if (!need(2))
            return false;
        StreamRef &data = op == Opcode::Gather ? out.dst : out.srcA;
        if (!parseStreamRef(args[0], data) ||
            !parseStreamRef(args[1], out.srcB)) {
            error = "bad stream ref";
            return false;
        }
        return true;
      }

      case Opcode::Lw: {
        if (!need(2))
            return false;
        std::uint32_t n = 0;
        if (!parseStreamRef(args[0], out.srcA) ||
            !parseTagged(args[1], 'n', n) || n == 0 ||
            n > 2 * kStreamsPerDir) {
            error = "bad lw operands";
            return false;
        }
        out.groupSize = static_cast<std::uint8_t>(n);
        return true;
      }

      case Opcode::Iw:
        if (!need(1))
            return false;
        if (!parseTagged(args[0], 'p', out.imm0) ||
            out.imm0 >= kMxmPlanes) {
            error = "bad plane";
            return false;
        }
        return true;

      case Opcode::Abc:
      case Opcode::Acc: {
        // Abc accepts an optional trailing "acc" accumulate flag.
        if (op == Opcode::Abc && args.size() == 4 &&
            iequals(trim(args[3]), "acc")) {
            out.flags |= Instruction::kFlagAccumulate;
            args.pop_back();
        }
        if (!need(3))
            return false;
        if (!parseTagged(args[0], 'p', out.imm0) ||
            out.imm0 >= kMxmPlanes) {
            error = "bad plane";
            return false;
        }
        StreamRef &sref = op == Opcode::Abc ? out.srcA : out.dst;
        if (!parseStreamRef(args[1], sref)) {
            error = "bad stream ref";
            return false;
        }
        if (!parseTagged(args[2], 'n', out.imm1) || out.imm1 == 0) {
            error = "bad count";
            return false;
        }
        return true;
      }

      case Opcode::ShiftUp:
      case Opcode::ShiftDown:
      case Opcode::Shift:
        if (!need(3))
            return false;
        if (!parseStreamRef(args[0], out.srcA) ||
            !parseStreamRef(args[1], out.dst) ||
            !parseUint(args[2], out.imm0)) {
            error = "bad shift operands";
            return false;
        }
        return true;

      case Opcode::SelectNS:
        if (!need(4))
            return false;
        if (!parseStreamRef(args[0], out.srcA) ||
            !parseStreamRef(args[1], out.srcB) ||
            !parseStreamRef(args[2], out.dst) ||
            !parseTagged(args[3], 'm', out.imm0)) {
            error = "bad select operands";
            return false;
        }
        return true;

      case Opcode::Permute:
      case Opcode::Distribute:
        if (!need(2))
            return false;
        if (!parseStreamRef(args[0], out.srcA) ||
            !parseStreamRef(args[1], out.dst)) {
            error = "bad stream ref";
            return false;
        }
        return true;

      case Opcode::Rotate:
        if (!need(3))
            return false;
        if (!parseStreamRef(args[0], out.srcA) ||
            !parseStreamRef(args[1], out.dst) ||
            !parseTagged(args[2], 'n', out.imm0) ||
            (out.imm0 != 3 && out.imm0 != 4)) {
            error = "bad rotate operands (n must be 3 or 4)";
            return false;
        }
        out.groupSize =
            static_cast<std::uint8_t>(out.imm0 * out.imm0);
        return true;

      case Opcode::Transpose:
        if (!need(2))
            return false;
        if (!parseStreamRef(args[0], out.srcA) ||
            !parseStreamRef(args[1], out.dst)) {
            error = "bad stream ref";
            return false;
        }
        out.groupSize = 16;
        return true;

      case Opcode::Send:
      case Opcode::Receive: {
        if (!need(2))
            return false;
        if (!parseTagged(args[0], 'l', out.imm0) ||
            out.imm0 >= kC2cLinks) {
            error = "bad link";
            return false;
        }
        StreamRef &sref = op == Opcode::Send ? out.srcA : out.dst;
        if (!parseStreamRef(args[1], sref)) {
            error = "bad stream ref";
            return false;
        }
        return true;
      }

      case Opcode::Convert: {
        if (!need(3))
            return false;
        if (!parseStreamRef(args[0], out.srcA) ||
            !parseStreamRef(args[1], out.dst)) {
            error = "bad stream ref";
            return false;
        }
        // "<src-dtype> -> <dst-dtype>"
        const auto arrow = args[2].find("->");
        if (arrow == std::string::npos) {
            error = "convert needs 'src -> dst' types";
            return false;
        }
        DType src_t, dst_t;
        if (!parseDType(std::string(trim(args[2].substr(0, arrow))),
                        src_t) ||
            !parseDType(std::string(trim(args[2].substr(arrow + 2))),
                        dst_t)) {
            error = "bad dtype";
            return false;
        }
        out.imm1 = static_cast<std::uint32_t>(src_t);
        out.imm0 = static_cast<std::uint32_t>(dst_t);
        return true;
      }

      default:
        break;
    }

    if (isVxmBinary(op)) {
        if (!need(3))
            return false;
        if (!parseStreamRef(args[0], out.srcA) ||
            !parseStreamRef(args[1], out.srcB) ||
            !parseStreamRef(args[2], out.dst)) {
            error = "bad stream ref";
            return false;
        }
        return true;
    }
    if (isVxmUnary(op)) {
        if (!need(2))
            return false;
        if (!parseStreamRef(args[0], out.srcA) ||
            !parseStreamRef(args[1], out.dst)) {
            error = "bad stream ref";
            return false;
        }
        return true;
    }

    error = strformat("unhandled opcode '%s'", opcodeName(op));
    return false;
}

AsmResult
assemble(const std::string &text)
{
    AsmResult result;
    std::istringstream is(text);
    std::string raw;
    int lineno = 0;
    IcuId current{-1};

    while (std::getline(is, raw)) {
        ++lineno;
        // Strip comments.
        const auto hash = raw.find_first_of("#;");
        if (hash != std::string::npos)
            raw.resize(hash);
        const std::string line{trim(raw)};
        if (line.empty())
            continue;

        if (line.front() == '@') {
            std::string name = line.substr(1);
            if (!name.empty() && name.back() == ':')
                name.pop_back();
            if (!parseIcuName(name, current)) {
                result.ok = false;
                result.error = "bad ICU label '" + name + "'";
                result.errorLine = lineno;
                return result;
            }
            result.program.queues[current.id]; // Ensure section exists.
            continue;
        }

        if (current.id < 0) {
            result.ok = false;
            result.error = "instruction before any @ICU label";
            result.errorLine = lineno;
            return result;
        }

        Instruction inst;
        std::string err;
        if (!parseInstruction(line, inst, err)) {
            result.ok = false;
            result.error = err;
            result.errorLine = lineno;
            return result;
        }
        const SliceKind expect = opcodeSlice(inst.op);
        if (expect != SliceKind::ICU && expect != current.kind()) {
            result.ok = false;
            result.error =
                strformat("'%s' is a %s instruction but section is %s",
                          opcodeName(inst.op), sliceKindName(expect),
                          sliceKindName(current.kind()));
            result.errorLine = lineno;
            return result;
        }
        result.program.queues[current.id].push_back(inst);
    }
    return result;
}

std::string
disassemble(const AsmProgram &program)
{
    std::ostringstream os;
    for (const auto &[icu_id, insts] : program.queues) {
        os << '@' << IcuId{icu_id}.name() << ":\n";
        for (const auto &inst : insts)
            os << "    " << inst.toString() << '\n';
    }
    return os.str();
}

} // namespace tsp
