#include "isa/opcode.hh"

#include <array>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tsp {

namespace {

struct OpInfo
{
    Opcode op;
    const char *name;
    SliceKind slice;
};

constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
    {Opcode::Nop, "nop", SliceKind::ICU},
    {Opcode::Ifetch, "ifetch", SliceKind::ICU},
    {Opcode::Sync, "sync", SliceKind::ICU},
    {Opcode::Notify, "notify", SliceKind::ICU},
    {Opcode::Config, "config", SliceKind::ICU},
    {Opcode::Repeat, "repeat", SliceKind::ICU},

    {Opcode::Read, "read", SliceKind::MEM},
    {Opcode::Write, "write", SliceKind::MEM},
    {Opcode::Gather, "gather", SliceKind::MEM},
    {Opcode::Scatter, "scatter", SliceKind::MEM},

    {Opcode::Add, "add", SliceKind::VXM},
    {Opcode::Sub, "sub", SliceKind::VXM},
    {Opcode::Mul, "mul", SliceKind::VXM},
    {Opcode::AddSat, "add.sat", SliceKind::VXM},
    {Opcode::SubSat, "sub.sat", SliceKind::VXM},
    {Opcode::MulSat, "mul.sat", SliceKind::VXM},
    {Opcode::Max, "max", SliceKind::VXM},
    {Opcode::Min, "min", SliceKind::VXM},
    {Opcode::Neg, "neg", SliceKind::VXM},
    {Opcode::Abs, "abs", SliceKind::VXM},
    {Opcode::Mask, "mask", SliceKind::VXM},
    {Opcode::Relu, "relu", SliceKind::VXM},
    {Opcode::Tanh, "tanh", SliceKind::VXM},
    {Opcode::Exp, "exp", SliceKind::VXM},
    {Opcode::Rsqrt, "rsqrt", SliceKind::VXM},
    {Opcode::Convert, "convert", SliceKind::VXM},
    {Opcode::Shift, "shift", SliceKind::VXM},

    {Opcode::Lw, "lw", SliceKind::MXM},
    {Opcode::Iw, "iw", SliceKind::MXM},
    {Opcode::Abc, "abc", SliceKind::MXM},
    {Opcode::Acc, "acc", SliceKind::MXM},

    {Opcode::ShiftUp, "shift.up", SliceKind::SXM},
    {Opcode::ShiftDown, "shift.down", SliceKind::SXM},
    {Opcode::SelectNS, "select.ns", SliceKind::SXM},
    {Opcode::Permute, "permute", SliceKind::SXM},
    {Opcode::Distribute, "distribute", SliceKind::SXM},
    {Opcode::Rotate, "rotate", SliceKind::SXM},
    {Opcode::Transpose, "transpose", SliceKind::SXM},

    {Opcode::Deskew, "deskew", SliceKind::C2C},
    {Opcode::Send, "send", SliceKind::C2C},
    {Opcode::Receive, "receive", SliceKind::C2C},
}};

const OpInfo &
info(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    TSP_ASSERT(idx < kOpTable.size());
    const OpInfo &e = kOpTable[idx];
    TSP_ASSERT(e.op == op);
    return e;
}

} // namespace

const char *
opcodeName(Opcode op)
{
    return info(op).name;
}

bool
opcodeFromName(const std::string &name, Opcode &out)
{
    const std::string lower = toLower(name);
    for (const auto &e : kOpTable) {
        if (lower == e.name) {
            out = e.op;
            return true;
        }
    }
    return false;
}

SliceKind
opcodeSlice(Opcode op)
{
    return info(op).slice;
}

bool
isVxmBinary(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::AddSat:
      case Opcode::SubSat:
      case Opcode::MulSat:
      case Opcode::Max:
      case Opcode::Min:
      case Opcode::Mask:
        return true;
      default:
        return false;
    }
}

bool
isVxmUnary(Opcode op)
{
    switch (op) {
      case Opcode::Neg:
      case Opcode::Abs:
      case Opcode::Relu:
      case Opcode::Tanh:
      case Opcode::Exp:
      case Opcode::Rsqrt:
      case Opcode::Convert:
      case Opcode::Shift:
        return true;
      default:
        return false;
    }
}

} // namespace tsp
