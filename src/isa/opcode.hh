/**
 * @file
 * Opcode enumeration for every instruction in Table I of the paper,
 * grouped by the functional slice that executes it.
 */

#ifndef TSP_ISA_OPCODE_HH
#define TSP_ISA_OPCODE_HH

#include <cstdint>
#include <string>

#include "arch/layout.hh"

namespace tsp {

/**
 * All TSP instructions (Table I).
 *
 * VXM arithmetic keeps the paper's saturating/modulo split: the plain
 * Add/Sub/Mul opcodes are the modulo (wrapping) variants and the *Sat
 * forms saturate; the ALUs are stateless and produce no flags.
 */
enum class Opcode : std::uint8_t {
    // --- ICU (common to every slice) ---
    Nop,        ///< NOP N: delay N cycles.
    Ifetch,     ///< Fetch 640 B of program text from a stream.
    Sync,       ///< Park until a Notify barrier release.
    Notify,     ///< Release all parked Syncs chip-wide.
    Config,     ///< Configure low-power mode (superlane gating).
    Repeat,     ///< Repeat previous instruction n times, d apart.

    // --- MEM ---
    Read,       ///< Load vector at address onto a stream.
    Write,      ///< Store a stream's vector to an address.
    Gather,     ///< Indirect read; addresses arrive on a map stream.
    Scatter,    ///< Indirect write; addresses arrive on a map stream.

    // --- VXM point-wise ---
    Add,        ///< Wrapping add (add_mod).
    Sub,        ///< Wrapping subtract (sub_mod).
    Mul,        ///< Wrapping multiply (mul_mod).
    AddSat,     ///< Saturating add.
    SubSat,     ///< Saturating subtract.
    MulSat,     ///< Saturating multiply.
    Max,        ///< Point-wise maximum.
    Min,        ///< Point-wise minimum.
    Neg,        ///< Point-wise negate.
    Abs,        ///< Point-wise absolute value.
    Mask,       ///< Zero lanes where the mask stream is zero.
    Relu,       ///< max(0, x).
    Tanh,       ///< Hyperbolic tangent.
    Exp,        ///< e^x.
    Rsqrt,      ///< Reciprocal square root.
    Convert,    ///< Data-type conversion (fixed <-> float, widen/narrow).
    Shift,      ///< Arithmetic right shift by imm (requantization step).

    // --- MXM ---
    Lw,         ///< Load weights from streams into the LW buffer.
    Iw,         ///< Install weights into the 320x320 array.
    Abc,        ///< Activation buffer control: begin streaming activations.
    Acc,        ///< Emit accumulated int32/fp32 results onto streams.

    // --- SXM ---
    ShiftUp,    ///< Lane-shift a stream North by imm lanes.
    ShiftDown,  ///< Lane-shift a stream South by imm lanes.
    SelectNS,   ///< Select between North/South shifted and unshifted.
    Permute,    ///< Bijective remap of the 320 lanes.
    Distribute, ///< Remap / replicate / zero-fill within each superlane.
    Rotate,     ///< Generate all n x n rotations of input data.
    Transpose,  ///< Transpose 16x16 across a 16-stream group.

    // --- C2C ---
    Deskew,     ///< Align a plesiochronous link.
    Send,       ///< Transmit a 320-byte vector on a link.
    Receive,    ///< Receive a 320-byte vector from a link.

    NumOpcodes,
};

/** Number of distinct opcodes. */
inline constexpr int kNumOpcodes =
    static_cast<int>(Opcode::NumOpcodes);

/** @return the assembler mnemonic, e.g. "add.sat". */
const char *opcodeName(Opcode op);

/** Parses a mnemonic; returns false if unknown. */
bool opcodeFromName(const std::string &name, Opcode &out);

/** @return the slice kind that executes @p op (ICU ops -> ICU). */
SliceKind opcodeSlice(Opcode op);

/** @return true for the point-wise two-operand VXM ops. */
bool isVxmBinary(Opcode op);

/** @return true for the point-wise one-operand VXM ops. */
bool isVxmUnary(Opcode op);

} // namespace tsp

#endif // TSP_ISA_OPCODE_HH
