/**
 * @file
 * One of the 144 independent instruction queues (paper III.A).
 *
 * Each queue holds a compiler-ordered instruction list and issues at
 * most one instruction per cycle. NOP(N) provides cycle-precise delay,
 * Repeat(n, d) re-issues the previous instruction, and Sync parks the
 * queue until a Notify broadcast arrives. The ICU has no stall logic
 * beyond these explicit instructions — program order plus NOP padding
 * *is* the schedule.
 */

#ifndef TSP_ICU_QUEUE_HH
#define TSP_ICU_QUEUE_HH

#include <cstdint>
#include <vector>

#include "arch/layout.hh"
#include "common/snapshot_io.hh"
#include "icu/barrier.hh"
#include "isa/instruction.hh"

namespace tsp {

/** One instruction queue plus its dispatch state machine. */
class InstructionQueue
{
  public:
    /**
     * @param id which of the 144 queues this is.
     * @param barrier shared chip-wide barrier controller.
     */
    InstructionQueue(IcuId id, BarrierController &barrier);

    /** Replaces the program and resets dispatch state. */
    void loadProgram(std::vector<Instruction> program);

    /** Appends instructions (used by the detailed Ifetch path). */
    void appendInstructions(const std::vector<Instruction> &insts);

    /**
     * Advances one cycle.
     *
     * Fills @p out with up to 2 instructions dispatched to the
     * functional slice this cycle (2 when the program co-issues a
     * MEM read/write pair via kFlagCoIssue).
     *
     * @return the number of dispatched instructions (0 if the queue
     * NOP'd, parked, was empty, or retired a purely local
     * instruction).
     */
    int tick(Cycle now, const Instruction *out[2]);

    /**
     * @return the earliest cycle >= @p now at which tick() could
     * dispatch or change state: the pending Repeat re-issue, the
     * Sync release (when a qualifying Notify broadcast exists), the
     * end of a NOP delay, or @p now itself when an instruction is
     * ready. kNoEventCycle when the queue is retired or parked with
     * no qualifying broadcast (a later Notify creates the event).
     *
     * Mirrors tick()'s branch order exactly: ticking every cycle in
     * [now, nextEventCycle(now)) dispatches nothing and only
     * accumulates idle counters — the span skipIdle() accounts for.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Fast-forwards this queue over the provably idle span
     * [@p now, @p target), crediting the NOP / parked cycle counters
     * exactly as per-cycle tick() calls would have. @p target must
     * not exceed nextEventCycle(now).
     */
    void skipIdle(Cycle now, Cycle target);

    /** @return true once every instruction has retired. */
    bool done() const;

    /**
     * Retires the loaded program without ticking (trace-replay tier:
     * the recorded run retired it, and replay dispatches directly).
     * Counters are preserved — the chip credits the recorded deltas.
     */
    void
    retireForReplay()
    {
        pc_ = program_.size();
        busyUntil_ = 0;
        parked_ = false;
        repeatInst_ = nullptr;
        repeatsLeft_ = 0;
    }

    /** @return true if parked on a Sync right now. */
    bool parked() const { return parked_; }

    /** @return the cycle this queue parked (valid while parked()). */
    Cycle parkedSince() const { return parkedAt_; }

    /** @return queue identity. */
    IcuId id() const { return id_; }

    /** @return instructions dispatched to the slice so far. */
    std::uint64_t dispatched() const { return dispatched_; }

    /** @return cycles spent NOP-delayed (clock-gated). */
    std::uint64_t nopCycles() const { return nopCycles_; }

    /** @return cycles spent parked on Sync. */
    std::uint64_t parkedCycles() const { return parkedCycles_; }

    /** @return number of program instructions not yet retired. */
    std::size_t pendingCount() const { return program_.size() - pc_; }

    /** @return the loaded program (snapshot content hashing). */
    const std::vector<Instruction> &program() const { return program_; }

    /**
     * Serializes dispatch state and counters. The program itself is
     * *not* serialized — restore requires the identical program to be
     * loaded already (verified by content hash at the chip level);
     * the Repeat target travels as an index into it.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restores dispatch state over the already-loaded program. */
    void loadState(SnapshotReader &r);

  private:
    IcuId id_;
    BarrierController &barrier_;

    std::vector<Instruction> program_;
    std::size_t pc_ = 0;

    /** Queue is idle until this cycle (exclusive) due to NOP. */
    Cycle busyUntil_ = 0;

    bool parked_ = false;
    Cycle parkedAt_ = 0;

    // Repeat state: re-issue of the previous instruction.
    const Instruction *repeatInst_ = nullptr;
    std::uint32_t repeatsLeft_ = 0;
    std::uint32_t repeatGap_ = 0;
    Cycle nextRepeatAt_ = 0;

    std::uint64_t dispatched_ = 0;
    std::uint64_t nopCycles_ = 0;
    std::uint64_t parkedCycles_ = 0;
};

} // namespace tsp

#endif // TSP_ICU_QUEUE_HH
