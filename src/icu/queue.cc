#include "icu/queue.hh"

#include "common/logging.hh"

namespace tsp {

InstructionQueue::InstructionQueue(IcuId id, BarrierController &barrier)
    : id_(id), barrier_(barrier)
{
}

void
InstructionQueue::loadProgram(std::vector<Instruction> program)
{
    program_ = std::move(program);
    pc_ = 0;
    busyUntil_ = 0;
    parked_ = false;
    repeatInst_ = nullptr;
    repeatsLeft_ = 0;
}

void
InstructionQueue::appendInstructions(const std::vector<Instruction> &insts)
{
    program_.insert(program_.end(), insts.begin(), insts.end());
}

void
InstructionQueue::saveState(SnapshotWriter &w) const
{
    w.u64(pc_);
    w.u64(busyUntil_);
    w.b(parked_);
    w.u64(parkedAt_);
    // The Repeat target points into program_; round-trip as index.
    const std::uint64_t repeat_idx =
        repeatInst_ != nullptr
            ? static_cast<std::uint64_t>(repeatInst_ -
                                         program_.data())
            : ~std::uint64_t{0};
    w.u64(repeat_idx);
    w.u32(repeatsLeft_);
    w.u32(repeatGap_);
    w.u64(nextRepeatAt_);
    w.u64(dispatched_);
    w.u64(nopCycles_);
    w.u64(parkedCycles_);
}

void
InstructionQueue::loadState(SnapshotReader &r)
{
    pc_ = static_cast<std::size_t>(r.u64());
    busyUntil_ = r.u64();
    parked_ = r.b();
    parkedAt_ = r.u64();
    const std::uint64_t repeat_idx = r.u64();
    if (repeat_idx == ~std::uint64_t{0}) {
        repeatInst_ = nullptr;
    } else {
        TSP_ASSERT(repeat_idx < program_.size());
        repeatInst_ =
            &program_[static_cast<std::size_t>(repeat_idx)];
    }
    repeatsLeft_ = r.u32();
    repeatGap_ = r.u32();
    nextRepeatAt_ = r.u64();
    dispatched_ = r.u64();
    nopCycles_ = r.u64();
    parkedCycles_ = r.u64();
}

bool
InstructionQueue::done() const
{
    return pc_ >= program_.size() && !parked_ && repeatsLeft_ == 0;
}

Cycle
InstructionQueue::nextEventCycle(Cycle now) const
{
    if (repeatsLeft_ > 0)
        return nextRepeatAt_ > now ? nextRepeatAt_ : now;
    if (parked_) {
        const auto release = barrier_.releaseTime(parkedAt_);
        if (!release)
            return kNoEventCycle;
        return *release > now ? *release : now;
    }
    if (now < busyUntil_)
        return busyUntil_;
    if (pc_ >= program_.size())
        return kNoEventCycle;
    return now;
}

void
InstructionQueue::skipIdle(Cycle now, Cycle target)
{
    TSP_ASSERT(target >= now);
    const Cycle n = target - now;
    if (repeatsLeft_ > 0)
        return; // Waiting between re-issues touches no counter.
    if (parked_) {
        parkedCycles_ += n;
        return;
    }
    if (now < busyUntil_) {
        // target <= nextEventCycle(now) == busyUntil_ by contract.
        TSP_ASSERT(target <= busyUntil_);
        nopCycles_ += n;
        return;
    }
    // Retired queue: per-cycle ticks would return without counting.
}

int
InstructionQueue::tick(Cycle now, const Instruction *out[2])
{
    // Active Repeat re-issues take priority over new program fetch.
    if (repeatsLeft_ > 0) {
        if (now < nextRepeatAt_)
            return 0;
        --repeatsLeft_;
        nextRepeatAt_ = now + repeatGap_;
        ++dispatched_;
        out[0] = repeatInst_;
        return 1;
    }

    if (parked_) {
        const auto release = barrier_.releaseTime(parkedAt_);
        if (release && now >= *release) {
            parked_ = false; // Sync retires; fall through to issue.
        } else {
            ++parkedCycles_;
            return 0;
        }
    }

    if (now < busyUntil_) {
        ++nopCycles_;
        return 0;
    }

    if (pc_ >= program_.size())
        return 0;

    const Instruction &inst = program_[pc_];
    switch (inst.op) {
      case Opcode::Nop: {
        const std::uint32_t n = inst.imm0 ? inst.imm0 : 1;
        busyUntil_ = now + n;
        ++nopCycles_;
        ++pc_;
        return 0;
      }
      case Opcode::Sync:
        parked_ = true;
        parkedAt_ = now;
        ++pc_;
        ++parkedCycles_;
        return 0;
      case Opcode::Repeat: {
        // "Repeat the previous instruction n times, d cycles between
        // iterations": the repeated instruction precedes this one in
        // program order (an intervening NOP only spaces the first
        // iteration).
        std::size_t prev_pc = pc_;
        while (prev_pc > 0 &&
               program_[prev_pc - 1].op == Opcode::Nop) {
            --prev_pc;
        }
        if (prev_pc == 0) {
            panic("%s: repeat with no previous instruction",
                  id_.name().c_str());
        }
        const Instruction &prev = program_[prev_pc - 1];
        TSP_ASSERT(prev.op != Opcode::Repeat &&
                   prev.op != Opcode::Sync);
        repeatInst_ = &prev;
        repeatsLeft_ = inst.imm0;
        repeatGap_ = inst.imm1 ? inst.imm1 : 1;
        ++pc_;
        // The first iteration fires the cycle Repeat dispatches (the
        // scheduler spaces it with a NOP when d > 1); later ones are
        // d cycles apart.
        if (repeatsLeft_ > 0) {
            --repeatsLeft_;
            nextRepeatAt_ = now + repeatGap_;
            ++dispatched_;
            out[0] = repeatInst_;
            return 1;
        }
        return 0;
      }
      default: {
        ++pc_;
        ++dispatched_;
        out[0] = &program_[pc_ - 1];
        int n = 1;
        // Dual-issue: a following instruction marked co-issue
        // dispatches in the same cycle (MEM read+write pairing).
        if (n < 2 && pc_ < program_.size() &&
            (program_[pc_].flags & Instruction::kFlagCoIssue)) {
            out[n++] = &program_[pc_];
            ++pc_;
            ++dispatched_;
        }
        return n;
      }
    }
}

} // namespace tsp
