/**
 * @file
 * Chip-wide barrier synchronization (paper III.A.2).
 *
 * One ICU issues Notify; every other ICU parks on Sync. Receipt of the
 * Notify broadcast satisfies all pending Syncs. The broadcast takes
 * kBarrierLatency cycles from Notify issue to Sync retirement — the
 * paper reports 35 cycles for the full chip.
 */

#ifndef TSP_ICU_BARRIER_HH
#define TSP_ICU_BARRIER_HH

#include <optional>
#include <vector>

#include "arch/types.hh"

namespace tsp {

/** Notify-to-Sync-retirement latency in cycles. */
inline constexpr Cycle kBarrierLatency = 35;

/** Tracks Notify broadcasts and answers Sync release queries. */
class BarrierController
{
  public:
    /** Records a Notify issued at cycle @p now. */
    void notify(Cycle now);

    /**
     * @return the cycle at which a Sync parked at @p parked_at
     * retires, if a broadcast (issued before or after parking) reaches
     * it; std::nullopt if no qualifying Notify has been issued yet.
     *
     * A broadcast that arrived strictly before the Sync parked is
     * missed — only pending Syncs are satisfied.
     */
    std::optional<Cycle> releaseTime(Cycle parked_at) const;

    /** @return total Notify instructions observed. */
    std::size_t notifyCount() const { return notifies_.size(); }

  private:
    std::vector<Cycle> notifies_;
};

} // namespace tsp

#endif // TSP_ICU_BARRIER_HH
