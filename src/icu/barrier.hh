/**
 * @file
 * Chip-wide barrier synchronization (paper III.A.2).
 *
 * One ICU issues Notify; every other ICU parks on Sync. Receipt of the
 * Notify broadcast satisfies all pending Syncs. The broadcast takes
 * kBarrierLatency cycles from Notify issue to Sync retirement — the
 * paper reports 35 cycles for the full chip.
 */

#ifndef TSP_ICU_BARRIER_HH
#define TSP_ICU_BARRIER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/types.hh"
#include "common/snapshot_io.hh"

namespace tsp {

/** Notify-to-Sync-retirement latency in cycles. */
inline constexpr Cycle kBarrierLatency = 35;

/** Tracks Notify broadcasts and answers Sync release queries. */
class BarrierController
{
  public:
    /** Records a Notify issued at cycle @p now (non-decreasing). */
    void notify(Cycle now);

    /**
     * @return the cycle at which a Sync parked at @p parked_at
     * retires, if a broadcast (issued before or after parking) reaches
     * it; std::nullopt if no qualifying Notify has been issued yet.
     *
     * A broadcast that arrived strictly before the Sync parked is
     * missed — only pending Syncs are satisfied.
     */
    std::optional<Cycle> releaseTime(Cycle parked_at) const;

    /**
     * Drops broadcasts whose arrival precedes @p parked_floor — the
     * earliest park time any present or future Sync can still query
     * (the minimum parkedAt over currently parked queues, or the
     * current cycle when none are parked). Such broadcasts can never
     * satisfy another Sync, so retaining them only grows memory and
     * slows releaseTime() across long runs and session reuse.
     */
    void prune(Cycle parked_floor);

    /** Forgets all broadcasts (between program loads). */
    void clear() { notifies_.clear(); }

    /** @return total Notify instructions observed (survives prune). */
    std::size_t totalNotifies() const { return totalNotifies_; }

    /** @return Notify broadcasts currently retained. */
    std::size_t notifyCount() const { return notifies_.size(); }

    /** Serializes retained broadcasts and totals (snapshot). */
    void
    saveState(SnapshotWriter &w) const
    {
        w.u64(notifies_.size());
        for (const Cycle c : notifies_)
            w.u64(c);
        w.u64(totalNotifies_);
    }

    /** Restores retained broadcasts and totals (snapshot). */
    void
    loadState(SnapshotReader &r)
    {
        notifies_.clear();
        const std::uint64_t n = r.u64();
        notifies_.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n && r.ok(); ++i)
            notifies_.push_back(r.u64());
        totalNotifies_ = static_cast<std::size_t>(r.u64());
    }

  private:
    /** Issue cycles in non-decreasing order (notify() asserts). */
    std::vector<Cycle> notifies_;
    std::size_t totalNotifies_ = 0;
};

} // namespace tsp

#endif // TSP_ICU_BARRIER_HH
