#include "icu/barrier.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tsp {

void
BarrierController::notify(Cycle now)
{
    TSP_ASSERT(notifies_.empty() || notifies_.back() <= now);
    notifies_.push_back(now);
    ++totalNotifies_;
}

std::optional<Cycle>
BarrierController::releaseTime(Cycle parked_at) const
{
    // Issue times are sorted, so the first broadcast whose arrival
    // reaches the parked Sync is also the earliest such arrival.
    const Cycle min_tn =
        parked_at < kBarrierLatency ? 0 : parked_at - kBarrierLatency;
    const auto it =
        std::lower_bound(notifies_.begin(), notifies_.end(), min_tn);
    if (it == notifies_.end())
        return std::nullopt;
    return *it + kBarrierLatency;
}

void
BarrierController::prune(Cycle parked_floor)
{
    // A broadcast arriving before parked_floor can satisfy neither a
    // currently parked Sync (all parked at >= parked_floor) nor a
    // future one (which parks at >= parked_floor by definition).
    const Cycle min_tn = parked_floor < kBarrierLatency
                             ? 0
                             : parked_floor - kBarrierLatency;
    const auto it =
        std::lower_bound(notifies_.begin(), notifies_.end(), min_tn);
    notifies_.erase(notifies_.begin(), it);
}

} // namespace tsp
