#include "icu/barrier.hh"

namespace tsp {

void
BarrierController::notify(Cycle now)
{
    notifies_.push_back(now);
}

std::optional<Cycle>
BarrierController::releaseTime(Cycle parked_at) const
{
    std::optional<Cycle> best;
    for (const Cycle tn : notifies_) {
        const Cycle arrival = tn + kBarrierLatency;
        if (arrival < parked_at)
            continue; // Broadcast passed before this Sync parked.
        if (!best || arrival < *best)
            best = arrival;
    }
    return best;
}

} // namespace tsp
