#include "graph/graph.hh"

#include "common/logging.hh"

namespace tsp {

int
Graph::push(Node n)
{
    n.id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(n));
    shaped_ = false;
    return nodes_.back().id;
}

int
Graph::addInput(int h, int w, int c)
{
    TSP_ASSERT(nodes_.empty());
    Node n;
    n.kind = OpKind::Input;
    n.outH = h;
    n.outW = w;
    n.outC = c;
    return push(std::move(n));
}

int
Graph::addConv(int input, const ConvGeom &geom, ConvWeights weights)
{
    TSP_ASSERT(input >= 0 && input < size());
    Node n;
    n.kind = OpKind::Conv2d;
    n.inputs = {input};
    n.geom = geom;
    n.weights = std::move(weights);
    return push(std::move(n));
}

int
Graph::addMaxPool(int input, int k, int stride, int pad)
{
    TSP_ASSERT(input >= 0 && input < size());
    Node n;
    n.kind = OpKind::MaxPool;
    n.inputs = {input};
    n.poolK = k;
    n.poolStride = stride;
    n.poolPad = pad;
    return push(std::move(n));
}

int
Graph::addGlobalAvgPool(int input, float scale)
{
    TSP_ASSERT(input >= 0 && input < size());
    Node n;
    n.kind = OpKind::GlobalAvgPool;
    n.inputs = {input};
    n.scale = scale;
    return push(std::move(n));
}

int
Graph::addResidual(int a, int b, float sa, float sb, bool relu)
{
    TSP_ASSERT(a >= 0 && a < size() && b >= 0 && b < size());
    Node n;
    n.kind = OpKind::ResidualAdd;
    n.inputs = {a, b};
    n.scaleA = sa;
    n.scaleB = sb;
    n.relu = relu;
    return push(std::move(n));
}

const Node &
Graph::node(int id) const
{
    TSP_ASSERT(id >= 0 && id < size());
    return nodes_[static_cast<std::size_t>(id)];
}

void
Graph::inferShapes()
{
    for (Node &n : nodes_) {
        switch (n.kind) {
          case OpKind::Input:
            break;
          case OpKind::Conv2d: {
            const Node &in = node(n.inputs[0]);
            if (in.outC != n.weights.inC) {
                fatal("graph: conv node %d expects %d channels, got "
                      "%d",
                      n.id, n.weights.inC, in.outC);
            }
            n.outH = (in.outH + 2 * n.geom.pad - n.geom.kh) /
                         n.geom.stride +
                     1;
            n.outW = (in.outW + 2 * n.geom.pad - n.geom.kw) /
                         n.geom.stride +
                     1;
            n.outC = n.weights.outC;
            break;
          }
          case OpKind::MaxPool: {
            const Node &in = node(n.inputs[0]);
            n.outH =
                (in.outH + 2 * n.poolPad - n.poolK) / n.poolStride +
                1;
            n.outW =
                (in.outW + 2 * n.poolPad - n.poolK) / n.poolStride +
                1;
            n.outC = in.outC;
            break;
          }
          case OpKind::GlobalAvgPool: {
            const Node &in = node(n.inputs[0]);
            n.outH = 1;
            n.outW = 1;
            n.outC = in.outC;
            break;
          }
          case OpKind::ResidualAdd: {
            const Node &a = node(n.inputs[0]);
            const Node &b = node(n.inputs[1]);
            if (a.outH != b.outH || a.outW != b.outW ||
                a.outC != b.outC) {
                fatal("graph: residual node %d shape mismatch", n.id);
            }
            n.outH = a.outH;
            n.outW = a.outW;
            n.outC = a.outC;
            break;
          }
        }
    }
    shaped_ = true;
}

std::map<int, LoweredTensor>
Graph::lower(Lowering &lw,
             const std::vector<std::int8_t> &input_data) const
{
    TSP_ASSERT(shaped_);
    std::map<int, LoweredTensor> out;
    for (const Node &n : nodes_) {
        switch (n.kind) {
          case OpKind::Input:
            out[n.id] = lw.inputTensor(n.outH, n.outW, n.outC,
                                       input_data);
            break;
          case OpKind::Conv2d:
            out[n.id] =
                lw.conv2d(out.at(n.inputs[0]), n.geom, n.weights);
            break;
          case OpKind::MaxPool:
            out[n.id] = lw.maxPool(out.at(n.inputs[0]), n.poolK,
                                   n.poolStride, n.poolPad);
            break;
          case OpKind::GlobalAvgPool:
            out[n.id] =
                lw.globalAvgPool(out.at(n.inputs[0]), n.scale);
            break;
          case OpKind::ResidualAdd:
            out[n.id] = lw.residualAdd(out.at(n.inputs[0]),
                                       out.at(n.inputs[1]), n.scaleA,
                                       n.scaleB, n.relu);
            break;
        }
    }
    return out;
}

std::map<int, ref::QTensor>
Graph::runReference(const ref::QTensor &input) const
{
    TSP_ASSERT(shaped_);
    std::map<int, ref::QTensor> out;
    for (const Node &n : nodes_) {
        switch (n.kind) {
          case OpKind::Input:
            out[n.id] = input;
            break;
          case OpKind::Conv2d:
            out[n.id] = ref::conv2d(
                out.at(n.inputs[0]), n.weights.w.data(),
                n.weights.outC, n.geom.kh, n.geom.kw, n.geom.stride,
                n.geom.pad, n.weights.bias.data(),
                n.weights.scale.data(), n.geom.relu);
            break;
          case OpKind::MaxPool:
            out[n.id] = ref::maxPool(out.at(n.inputs[0]), n.poolK,
                                     n.poolStride, n.poolPad);
            break;
          case OpKind::GlobalAvgPool:
            out[n.id] =
                ref::globalAvgPool(out.at(n.inputs[0]), n.scale);
            break;
          case OpKind::ResidualAdd:
            out[n.id] = ref::residualAdd(out.at(n.inputs[0]),
                                         out.at(n.inputs[1]),
                                         n.scaleA, n.scaleB, n.relu);
            break;
        }
    }
    return out;
}

std::size_t
Graph::parameterCount() const
{
    std::size_t total = 0;
    for (const Node &n : nodes_) {
        if (n.kind == OpKind::Conv2d)
            total += n.weights.w.size();
    }
    return total;
}

std::uint64_t
Graph::maccCount() const
{
    TSP_ASSERT(shaped_);
    std::uint64_t total = 0;
    for (const Node &n : nodes_) {
        if (n.kind == OpKind::Conv2d) {
            total += static_cast<std::uint64_t>(n.outH) * n.outW *
                     n.outC * n.weights.inC * n.geom.kh * n.geom.kw;
        }
    }
    return total;
}

} // namespace tsp
