/**
 * @file
 * A small tensor-graph IR over the quantized operators the TSP
 * pipeline supports. Models are built as graphs, shape-inferred, and
 * then either lowered onto the chip (graph-lowering compiler front
 * end, paper II/IV) or executed on the golden CPU reference for
 * validation.
 */

#ifndef TSP_GRAPH_GRAPH_HH
#define TSP_GRAPH_GRAPH_HH

#include <map>
#include <vector>

#include "compiler/lowering.hh"
#include "ref/qnn.hh"

namespace tsp {

/** Operator kinds supported by the lowering. */
enum class OpKind : std::uint8_t {
    Input,
    Conv2d,
    MaxPool,
    GlobalAvgPool,
    ResidualAdd,
};

/** One graph node. */
struct Node
{
    int id = -1;
    OpKind kind = OpKind::Input;
    std::vector<int> inputs;

    // Conv2d (fully connected = 1x1 conv on a 1x1 input).
    ConvGeom geom{};
    ConvWeights weights{};

    // MaxPool.
    int poolK = 0;
    int poolStride = 0;
    int poolPad = 0;

    // GlobalAvgPool.
    float scale = 1.0f;

    // ResidualAdd.
    float scaleA = 1.0f;
    float scaleB = 1.0f;
    bool relu = false;

    // Inferred output shape.
    int outH = 0;
    int outW = 0;
    int outC = 0;
};

/** A directed acyclic graph of quantized operators. */
class Graph
{
  public:
    /** Adds the input placeholder; must be the first node. */
    int addInput(int h, int w, int c);

    /** Adds a conv2d consuming @p input. */
    int addConv(int input, const ConvGeom &geom, ConvWeights weights);

    /** Adds k x k max pooling. */
    int addMaxPool(int input, int k, int stride, int pad);

    /** Adds global average pooling with requant @p scale. */
    int addGlobalAvgPool(int input, float scale);

    /** Adds out = relu?(a * sa + b * sb). */
    int addResidual(int a, int b, float sa, float sb, bool relu);

    /** @return node by id. */
    const Node &node(int id) const;

    /** @return number of nodes. */
    int size() const { return static_cast<int>(nodes_.size()); }

    /** @return id of the last node (the model output). */
    int outputNode() const { return size() - 1; }

    /** Infers every node's output shape; fatal() on mismatch. */
    void inferShapes();

    /**
     * Lowers the whole graph into @p lw (nodes in id order; ids are
     * topological by construction).
     *
     * @param input_data dense [h x w x c] int8 input.
     * @return the lowered output tensor of every node.
     */
    std::map<int, LoweredTensor> lower(
        Lowering &lw, const std::vector<std::int8_t> &input_data) const;

    /** Runs the golden CPU reference over the same graph. */
    std::map<int, ref::QTensor> runReference(
        const ref::QTensor &input) const;

    /** @return total weight parameters across conv nodes. */
    std::size_t parameterCount() const;

    /** @return total MACC operations for one inference. */
    std::uint64_t maccCount() const;

  private:
    int push(Node n);

    std::vector<Node> nodes_;
    bool shaped_ = false;
};

} // namespace tsp

#endif // TSP_GRAPH_GRAPH_HH
