/**
 * @file
 * Batch-B compiled programs with amortized weight install.
 *
 * A batch-B program is built by lowering the same Graph B times into
 * one Lowering: the conv placement cache makes every repeat reuse the
 * first sample's weight tiles/bias/scale quads (placed once, DMA'd
 * once), while each sample gets fresh activation tensors from the
 * bump allocator — so per-sample outputs are independent and the
 * whole batch shares a single weight image. The engine scheduling
 * state persists across repeats, so sample s+1's first layer overlaps
 * sample s's tail exactly like adjacent layers of one network: the
 * compile-time finish cycle cycles(B) is exact and strictly sublinear
 * in B versus B independent batch-1 replays (one barrier preamble,
 * one schedule lead-in, one weight install, pipelined seams).
 *
 * The cache eagerly compiles batch sizes 1..maxBatch at construction
 * and is immutable afterwards, so worker threads may read it without
 * locks; cyclesByBatch() feeds the admission controller's exact
 * feasibility arithmetic (paper V.c: deadlines are provable because
 * the cycle count is known before execution).
 */

#ifndef TSP_GRAPH_BATCH_PROGRAM_HH
#define TSP_GRAPH_BATCH_PROGRAM_HH

#include <memory>
#include <vector>

#include "compiler/lowering.hh"
#include "graph/graph.hh"
#include "isa/assembler.hh"

namespace tsp {

/** One compiled batch size: program + per-sample tensor slots. */
struct BatchProgram
{
    int batch = 1;
    std::unique_ptr<Lowering> lw;
    std::shared_ptr<const AsmProgram> prog;
    /** inputs[s]/outputs[s]: sample s's staging/result tensors. */
    std::vector<LoweredTensor> inputs;
    std::vector<LoweredTensor> outputs;
    /** Exact finish cycle of the batch-B schedule. */
    Cycle cycles = 0;
};

/** Compiled lowerings for every batch size 1..maxBatch. */
class BatchProgramCache
{
  public:
    /**
     * Compiles @p g for batch sizes 1..@p max_batch. @p warm_input is
     * the placeholder input DMA'd with each sample slot (real inputs
     * are staged by the runtime before every run).
     */
    BatchProgramCache(Graph g, std::vector<std::int8_t> warm_input,
                      int max_batch, bool pipelined = true);

    int maxBatch() const
    {
        return static_cast<int>(progs_.size());
    }

    /** @return the compiled program for @p batch (1-based). */
    BatchProgram &get(int batch);
    const BatchProgram &get(int batch) const;

    /** cyclesByBatch()[b-1] = exact cycles(b). */
    const std::vector<Cycle> &cyclesByBatch() const
    {
        return cycles_;
    }

    const Graph &graph() const { return g_; }

  private:
    Graph g_;
    std::vector<std::unique_ptr<BatchProgram>> progs_;
    std::vector<Cycle> cycles_;
};

} // namespace tsp

#endif // TSP_GRAPH_BATCH_PROGRAM_HH
