/**
 * @file
 * Batch-B compiled programs with amortized weight install.
 *
 * A batch-B program is built by lowering the same Graph B times into
 * one Lowering: the conv placement cache makes every repeat reuse the
 * first sample's weight tiles/bias/scale quads (placed once, DMA'd
 * once), while each sample gets fresh activation tensors from the
 * bump allocator — so per-sample outputs are independent and the
 * whole batch shares a single weight image. The engine scheduling
 * state persists across repeats, so sample s+1's first layer overlaps
 * sample s's tail exactly like adjacent layers of one network: the
 * compile-time finish cycle cycles(B) is exact and strictly sublinear
 * in B versus B independent batch-1 replays (one barrier preamble,
 * one schedule lead-in, one weight install, pipelined seams).
 *
 * Batch sizes compile *on first use*: a size the batcher never forms
 * costs neither startup time nor memory — with N model families per
 * server the eager 1..maxBatch sweep multiplied both for programs
 * that never ran. Compilation is a pure function of (graph,
 * warm input, batch, pipelined), so when a size compiles has no
 * effect on what it compiles to; exact cycle counts are memoized
 * forever (they survive eviction), keeping the admission
 * controller's feasibility arithmetic exact (paper V.c: deadlines
 * are provable because the cycle count is known before execution).
 *
 * Slots hold shared_ptrs so a consumer that must outlive eviction
 * (a sealed batch riding a queue, a worker's bound engine) pins its
 * program via acquire(); evict(b) — used by the serving layer's
 * model registry to stay under a byte budget — only drops the
 * cache's own reference. get() references are stable only while the
 * slot is resident; callers that never evict (every pre-registry
 * call site) keep the old contract unchanged.
 */

#ifndef TSP_GRAPH_BATCH_PROGRAM_HH
#define TSP_GRAPH_BATCH_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "compiler/lowering.hh"
#include "graph/graph.hh"
#include "isa/assembler.hh"

namespace tsp {

/** One compiled batch size: program + per-sample tensor slots. */
struct BatchProgram
{
    int batch = 1;
    std::unique_ptr<Lowering> lw;
    std::shared_ptr<const AsmProgram> prog;
    /** inputs[s]/outputs[s]: sample s's staging/result tensors. */
    std::vector<LoweredTensor> inputs;
    std::vector<LoweredTensor> outputs;
    /** Exact finish cycle of the batch-B schedule. */
    Cycle cycles = 0;
    /** hashProgram() of prog (trace-cache invalidation key). */
    std::uint64_t progHash = 0;

    /** @return approximate heap footprint: weight/activation image
     * plus assembled instruction streams (byte-budget accounting). */
    std::size_t memoryBytes() const;
};

/** Lazily compiled lowerings for batch sizes 1..maxBatch. */
class BatchProgramCache
{
  public:
    /**
     * Prepares (but does not compile) batch sizes 1..@p max_batch.
     * @p warm_input is the placeholder input DMA'd with each sample
     * slot (real inputs are staged by the runtime before every run).
     */
    BatchProgramCache(Graph g, std::vector<std::int8_t> warm_input,
                      int max_batch, bool pipelined = true);

    int maxBatch() const
    {
        return static_cast<int>(progs_.size());
    }

    /**
     * @return the compiled program for @p batch (1-based), compiling
     * it on first use. The reference is stable while the slot stays
     * resident; use acquire() when eviction is possible.
     */
    BatchProgram &get(int batch);
    const BatchProgram &get(int batch) const;

    /** @return a shared handle to batch @p batch's program (compiled
     * on first use), pinning it across a later evict(). */
    std::shared_ptr<BatchProgram> acquire(int batch) const;

    /** @return exact cycles(@p batch), compiling on first use; the
     * value is memoized and survives eviction. */
    Cycle cycles(int batch) const;

    /** @return true when @p batch's program is currently resident. */
    bool compiled(int batch) const;

    /** @return resident compiled batch sizes. */
    std::size_t compiledCount() const;

    /** @return bytes held by resident programs. */
    std::size_t residentBytes() const;

    /** @return compilations performed (recompiles after evict count). */
    std::uint64_t compileCount() const;

    /**
     * Drops batch @p batch's program from the cache (memoized cycles
     * are kept, so admission stays exact without recompiling).
     * @return the evicted handle (null if the slot was empty) so the
     * caller can invalidate derived state (e.g. execution traces)
     * keyed by it.
     */
    std::shared_ptr<BatchProgram> evict(int batch);

    /**
     * Legacy eager accessor: compiles every remaining size, then
     * returns the full exact-cycles table (cyclesByBatch()[b-1] =
     * cycles(b)). New call sites should prefer cycles(b).
     */
    const std::vector<Cycle> &cyclesByBatch() const;

    const Graph &graph() const { return g_; }

  private:
    /** Compiles slot @p b if absent; requires mu_. */
    const std::shared_ptr<BatchProgram> &ensureLocked(int b) const;

    Graph g_;
    std::vector<std::int8_t> warm_;
    bool pipelined_;

    mutable std::mutex mu_;
    /** progs_[b-1]; null until compiled (or after eviction). */
    mutable std::vector<std::shared_ptr<BatchProgram>> progs_;
    /** cycles_[b-1]; 0 until first compiled, then exact forever. */
    mutable std::vector<Cycle> cycles_;
    mutable std::uint64_t compiles_ = 0;
};

} // namespace tsp

#endif // TSP_GRAPH_BATCH_PROGRAM_HH
