#include "graph/batch_program.hh"

#include <utility>

#include "common/logging.hh"
#include "compiler/schedule.hh"

namespace tsp {

BatchProgramCache::BatchProgramCache(
    Graph g, std::vector<std::int8_t> warm_input, int max_batch,
    bool pipelined)
    : g_(std::move(g))
{
    TSP_ASSERT(max_batch >= 1);
    progs_.reserve(static_cast<std::size_t>(max_batch));
    cycles_.reserve(static_cast<std::size_t>(max_batch));
    for (int b = 1; b <= max_batch; ++b) {
        auto bp = std::make_unique<BatchProgram>();
        bp->batch = b;
        bp->lw = std::make_unique<Lowering>(pipelined);
        bp->inputs.reserve(static_cast<std::size_t>(b));
        bp->outputs.reserve(static_cast<std::size_t>(b));
        for (int s = 0; s < b; ++s) {
            auto tensors = g_.lower(*bp->lw, warm_input);
            bp->inputs.push_back(tensors.at(0));
            bp->outputs.push_back(tensors.at(g_.outputNode()));
        }
        bp->cycles = bp->lw->finishCycle();
        bp->prog = std::make_shared<const AsmProgram>(
            bp->lw->program().toAsm(/*with_preamble=*/true));
        // One weight placement per conv layer, not per sample: the
        // whole point of the batch program.
        if (!progs_.empty())
            TSP_ASSERT(bp->lw->weightPlacements() ==
                       progs_.front()->lw->weightPlacements());
        cycles_.push_back(bp->cycles);
        progs_.push_back(std::move(bp));
    }
    // cycles(B) must be exact and monotone; sublinearity is pinned by
    // tests/bench, but a non-increasing step here is always a bug.
    for (std::size_t i = 1; i < cycles_.size(); ++i)
        TSP_ASSERT(cycles_[i] > cycles_[i - 1]);
}

BatchProgram &
BatchProgramCache::get(int batch)
{
    TSP_ASSERT(batch >= 1 &&
               batch <= static_cast<int>(progs_.size()));
    return *progs_[static_cast<std::size_t>(batch - 1)];
}

const BatchProgram &
BatchProgramCache::get(int batch) const
{
    TSP_ASSERT(batch >= 1 &&
               batch <= static_cast<int>(progs_.size()));
    return *progs_[static_cast<std::size_t>(batch - 1)];
}

} // namespace tsp
