#include "graph/batch_program.hh"

#include <utility>

#include "common/logging.hh"
#include "compiler/schedule.hh"
#include "sim/snapshot.hh"

namespace tsp {

std::size_t
BatchProgram::memoryBytes() const
{
    std::size_t bytes = sizeof(BatchProgram);
    if (lw)
        bytes += lw->image().totalBytes();
    if (prog) {
        for (const auto &[icu, insts] : prog->queues)
            bytes += insts.size() * sizeof(Instruction);
    }
    bytes += (inputs.capacity() + outputs.capacity()) *
             sizeof(LoweredTensor);
    return bytes;
}

BatchProgramCache::BatchProgramCache(
    Graph g, std::vector<std::int8_t> warm_input, int max_batch,
    bool pipelined)
    : g_(std::move(g)), warm_(std::move(warm_input)),
      pipelined_(pipelined)
{
    TSP_ASSERT(max_batch >= 1);
    progs_.resize(static_cast<std::size_t>(max_batch));
    cycles_.assign(static_cast<std::size_t>(max_batch), 0);
}

const std::shared_ptr<BatchProgram> &
BatchProgramCache::ensureLocked(int b) const
{
    TSP_ASSERT(b >= 1 && b <= static_cast<int>(progs_.size()));
    std::shared_ptr<BatchProgram> &slot =
        progs_[static_cast<std::size_t>(b - 1)];
    if (slot)
        return slot;
    auto bp = std::make_shared<BatchProgram>();
    bp->batch = b;
    bp->lw = std::make_unique<Lowering>(pipelined_);
    bp->inputs.reserve(static_cast<std::size_t>(b));
    bp->outputs.reserve(static_cast<std::size_t>(b));
    for (int s = 0; s < b; ++s) {
        auto tensors = g_.lower(*bp->lw, warm_);
        bp->inputs.push_back(tensors.at(0));
        bp->outputs.push_back(tensors.at(g_.outputNode()));
    }
    bp->cycles = bp->lw->finishCycle();
    bp->prog = std::make_shared<const AsmProgram>(
        bp->lw->program().toAsm(/*with_preamble=*/true));
    bp->progHash = hashProgram(*bp->prog);
    // One weight placement per conv layer, not per sample: the whole
    // point of the batch program. Checked against any other resident
    // size (compilation order is irrelevant — it's a pure function).
    for (const auto &other : progs_) {
        if (other)
            TSP_ASSERT(bp->lw->weightPlacements() ==
                       other->lw->weightPlacements());
    }
    // Compilation is deterministic, so a memoized cycle count from a
    // since-evicted compile must match the fresh one exactly.
    Cycle &memo = cycles_[static_cast<std::size_t>(b - 1)];
    if (memo != 0)
        TSP_ASSERT(memo == bp->cycles);
    memo = bp->cycles;
    // cycles(B) must be exact and strictly monotone in B; checked
    // against every size whose count is already known.
    for (std::size_t i = 0; i < cycles_.size(); ++i) {
        if (cycles_[i] == 0 ||
            i == static_cast<std::size_t>(b - 1))
            continue;
        if (i < static_cast<std::size_t>(b - 1))
            TSP_ASSERT(cycles_[i] < bp->cycles);
        else
            TSP_ASSERT(cycles_[i] > bp->cycles);
    }
    ++compiles_;
    slot = std::move(bp);
    return slot;
}

BatchProgram &
BatchProgramCache::get(int batch)
{
    std::lock_guard<std::mutex> lock(mu_);
    return *ensureLocked(batch);
}

const BatchProgram &
BatchProgramCache::get(int batch) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return *ensureLocked(batch);
}

std::shared_ptr<BatchProgram>
BatchProgramCache::acquire(int batch) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ensureLocked(batch);
}

Cycle
BatchProgramCache::cycles(int batch) const
{
    std::lock_guard<std::mutex> lock(mu_);
    TSP_ASSERT(batch >= 1 &&
               batch <= static_cast<int>(progs_.size()));
    const Cycle memo = cycles_[static_cast<std::size_t>(batch - 1)];
    if (memo != 0)
        return memo;
    return ensureLocked(batch)->cycles;
}

bool
BatchProgramCache::compiled(int batch) const
{
    std::lock_guard<std::mutex> lock(mu_);
    TSP_ASSERT(batch >= 1 &&
               batch <= static_cast<int>(progs_.size()));
    return progs_[static_cast<std::size_t>(batch - 1)] != nullptr;
}

std::size_t
BatchProgramCache::compiledCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &p : progs_)
        n += p ? 1 : 0;
    return n;
}

std::size_t
BatchProgramCache::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t bytes = 0;
    for (const auto &p : progs_)
        bytes += p ? p->memoryBytes() : 0;
    return bytes;
}

std::uint64_t
BatchProgramCache::compileCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return compiles_;
}

std::shared_ptr<BatchProgram>
BatchProgramCache::evict(int batch)
{
    std::lock_guard<std::mutex> lock(mu_);
    TSP_ASSERT(batch >= 1 &&
               batch <= static_cast<int>(progs_.size()));
    return std::exchange(
        progs_[static_cast<std::size_t>(batch - 1)], nullptr);
}

const std::vector<Cycle> &
BatchProgramCache::cyclesByBatch() const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (int b = 1; b <= static_cast<int>(progs_.size()); ++b)
        ensureLocked(b);
    return cycles_;
}

} // namespace tsp
