/**
 * @file
 * The chip-wide streaming register file.
 *
 * Streams are the TSP's only inter-slice communication mechanism: 32
 * eastward and 32 westward logical streams whose values advance one
 * stream-register hop per core clock (paper II.A, V.c). There is no
 * routing, arbitration, or flow control — a value simply propagates in
 * its direction of flow until it falls off the edge of the chip or a
 * functional slice overwrites it.
 *
 * Implementation: each (direction, stream) pair owns a ring buffer
 * over the 95 stream-register positions. Advancing the clock is O(1)
 * index arithmetic plus invalidation of the slot that wrapped past the
 * chip edge; no vector data is copied as it "flows". Writes scheduled
 * for future cycles live in a calendar ring indexed by cycle (every
 * producer delay is a small architectural constant) with a min-heap of
 * distinct pending cycles answering earliestPendingCycle() in O(1) —
 * the hook the event-driven chip core uses to fast-forward, via
 * advanceBy(), over spans where nothing dispatches.
 */

#ifndef TSP_STREAM_FABRIC_HH
#define TSP_STREAM_FABRIC_HH

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "arch/layout.hh"
#include "arch/types.hh"
#include "common/snapshot_io.hh"
#include "isa/instruction.hh"
#include "stream/trace_tape.hh"

namespace tsp {

class FaultInjector;
class MachineCheckSink;

/** The streaming register file spanning all superlanes. */
class StreamFabric
{
  public:
    StreamFabric();

    /** @return the current cycle. */
    Cycle now() const { return cycle_; }

    /**
     * Attaches the chip's fault injector and machine-check sink. The
     * fabric itself never dereferences them; it is the distribution
     * point every StreamIo consults, so consume-path injection and
     * machine-check raising need no per-unit plumbing.
     */
    void
    attachFaultHooks(FaultInjector *faults, MachineCheckSink *mc)
    {
        faults_ = faults;
        mc_ = mc;
    }

    /** @return the attached fault injector, or nullptr. */
    FaultInjector *faultInjector() const { return faults_; }

    /** @return the attached machine-check sink, or nullptr. */
    MachineCheckSink *machineCheckSink() const { return mc_; }

    /**
     * Attaches the trace-replay tape hooks (at most one of the two
     * non-null; see trace_tape.hh). Like the fault hooks, the fabric
     * never dereferences them — StreamIo consults them per call.
     */
    void
    attachTapeHooks(TapeRecorder *rec, TapeReplayer *rep)
    {
        tapeRec_ = rec;
        tapeRep_ = rep;
    }

    /** @return the attached tape recorder, or nullptr. */
    TapeRecorder *tapeRecorder() const { return tapeRec_; }

    /** @return the attached tape replayer, or nullptr. */
    TapeReplayer *tapeReplayer() const { return tapeRep_; }

    /**
     * Advances one core clock: values move one hop in their direction
     * of flow, edge values fall off the chip, and writes scheduled for
     * the new cycle become visible.
     */
    void advance();

    /**
     * Bulk-advances @p n cycles in one jump. Equivalent to calling
     * advance() @p n times provided no write is pending strictly
     * inside the span (asserted): hop accounting and edge fall-off
     * are computed arithmetically per ring, and writes scheduled for
     * the arrival cycle are applied on arrival. totalHops() and all
     * validity state end bit-identical to the per-cycle path.
     */
    void advanceBy(Cycle n);

    /**
     * @return the cycle of the earliest scheduled-but-unapplied write,
     * or kNoEventCycle when none is pending.
     */
    Cycle earliestPendingCycle() const;

    /**
     * @return the vector visible on stream @p s at position @p pos in
     * the current cycle, or nullptr if no valid value is flowing
     * there.
     */
    const Vec320 *peek(StreamRef s, SlicePos pos) const;

    /**
     * Like peek(), additionally reporting the entry's provenance tag
     * (kTapeUntagged for entries written outside any StreamIo) so a
     * recording consume can cite the produce it sampled.
     */
    const Vec320 *peek(StreamRef s, SlicePos pos,
                       std::uint32_t *tag) const;

    /**
     * Makes @p vec visible on stream @p s at position @p pos starting
     * at cycle @p when (>= now), overwriting whatever would flow
     * through that register. This is how producers with functional
     * delay d_func deposit results: when = dispatch + d_func.
     * @p tag is the recording provenance carried by the entry.
     */
    void scheduleWrite(StreamRef s, SlicePos pos, const Vec320 &vec,
                       Cycle when, const char *writer = "?",
                       std::uint32_t tag = kTapeUntagged);

    /** Immediate write visible in the current cycle. */
    void
    write(StreamRef s, SlicePos pos, const Vec320 &vec)
    {
        scheduleWrite(s, pos, vec, cycle_);
    }

    /** Invalidates every entry of every stream (between programs). */
    void clear();

    /** @return number of valid vectors currently flowing chip-wide. */
    std::uint64_t validEntries() const { return validCount_; }

    /** @return cumulative vector-hops since construction (power). */
    std::uint64_t totalHops() const { return totalHops_; }

    /** @return count of scheduled writes applied so far. */
    std::uint64_t totalWrites() const { return totalWrites_; }

    /** @return scheduled-but-unapplied write count (tests/replay). */
    std::size_t pendingWrites() const
    {
        return pendingCount_ + overflow_.size();
    }

    /**
     * Replay-tier clock jump: moves now() to @p target (>= now)
     * without flowing anything. Legal only while a TapeReplayer is
     * attached — no values are in flight (produces go to the tape,
     * so validEntries() stays 0) and hop/write totals are credited
     * wholesale from the recording via replayCredit().
     */
    void replayJumpTo(Cycle target);

    /** Credits the recorded run's hop/write totals (replay tier). */
    void
    replayCredit(std::uint64_t hops, std::uint64_t writes)
    {
        totalHops_ += hops;
        totalWrites_ += writes;
    }

    /**
     * Serializes the clock, every valid stream-register entry (by raw
     * ring-slot index — slotOf() depends only on cycle_ % positions,
     * which the restored clock reproduces), all scheduled-but-
     * unapplied writes (calendar ring + overflow, flattened), and the
     * hop/write totals. Fault/tape hooks are wiring, not state.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restores fabric state; pending writes are re-scheduled. */
    void loadState(SnapshotReader &r);

  private:
    struct Entry
    {
        Vec320 vec;
        bool valid = false;
        Cycle writtenAt = ~Cycle{0}; ///< Cycle of the last write.
        const char *writer = "?";    ///< Debug: who wrote it.
        std::uint32_t tag = kTapeUntagged; ///< Recording provenance.
    };

    /** Ring of entries for one (direction, stream id). */
    struct Ring
    {
        std::vector<Entry> slots;
        int validInRing = 0;
    };

    /** One write waiting for its visibility cycle. */
    struct PendingWrite
    {
        StreamRef s{};
        SlicePos pos = 0;
        Vec320 vec{};
        const char *writer = "?";
        std::uint32_t tag = kTapeUntagged;
    };

    /** One calendar slot: all writes landing in the same cycle. */
    struct PendingBatch
    {
        Cycle when = 0;
        std::vector<PendingWrite> writes; ///< Capacity is reused.
    };

    static constexpr int kNumRings = 2 * kStreamsPerDir;
    static constexpr int kPositions = Layout::numPositions;

    /**
     * Calendar depth. Producer delays are architectural constants
     * (the largest is Send's 22-cycle serialization), so every
     * in-flight write lands well inside this horizon; scheduleWrite
     * falls back to an ordered overflow map beyond it.
     */
    static constexpr Cycle kPendingHorizon = 128;

    static int
    ringIndex(StreamRef s)
    {
        return (s.dir == Direction::West ? kStreamsPerDir : 0) + s.id;
    }

    /** Ring slot holding (pos) at the current cycle. */
    int
    slotOf(Direction dir, SlicePos pos) const
    {
        const long t = static_cast<long>(cycle_ % kPositions);
        long idx;
        if (dir == Direction::East)
            idx = (pos - t) % kPositions;
        else
            idx = (pos + t) % kPositions;
        if (idx < 0)
            idx += kPositions;
        return static_cast<int>(idx);
    }

    void applyWrite(StreamRef s, SlicePos pos, const Vec320 &vec,
                    const char *writer, std::uint32_t tag);

    /** Applies (and empties) the batch scheduled for @p cycle_. */
    void applyPendingNow();

    std::vector<Ring> rings_;
    Cycle cycle_ = 0;

    /**
     * Calendar ring of pending batches indexed by when % horizon,
     * valid when non-empty and batch.when matches. pendingCycles_
     * holds each distinct pending cycle once (pushed when its batch
     * first becomes non-empty), so the earliest key is O(1) away.
     */
    std::vector<PendingBatch> pendingRing_;
    std::priority_queue<Cycle, std::vector<Cycle>,
                        std::greater<Cycle>>
        pendingCycles_;
    std::size_t pendingCount_ = 0;

    /** Writes beyond the calendar horizon (empty in practice). */
    std::map<Cycle, std::vector<PendingWrite>> overflow_;

    FaultInjector *faults_ = nullptr;
    MachineCheckSink *mc_ = nullptr;
    TapeRecorder *tapeRec_ = nullptr;
    TapeReplayer *tapeRep_ = nullptr;

    std::uint64_t validCount_ = 0;
    std::uint64_t totalHops_ = 0;
    std::uint64_t totalWrites_ = 0;
};

} // namespace tsp

#endif // TSP_STREAM_FABRIC_HH
