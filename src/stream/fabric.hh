/**
 * @file
 * The chip-wide streaming register file.
 *
 * Streams are the TSP's only inter-slice communication mechanism: 32
 * eastward and 32 westward logical streams whose values advance one
 * stream-register hop per core clock (paper II.A, V.c). There is no
 * routing, arbitration, or flow control — a value simply propagates in
 * its direction of flow until it falls off the edge of the chip or a
 * functional slice overwrites it.
 *
 * Implementation: each (direction, stream) pair owns a ring buffer
 * over the 95 stream-register positions. Advancing the clock is O(1)
 * index arithmetic plus invalidation of the slot that wrapped past the
 * chip edge; no vector data is copied as it "flows".
 */

#ifndef TSP_STREAM_FABRIC_HH
#define TSP_STREAM_FABRIC_HH

#include <cstdint>
#include <map>
#include <vector>

#include "arch/layout.hh"
#include "arch/types.hh"
#include "isa/instruction.hh"

namespace tsp {

/** The streaming register file spanning all superlanes. */
class StreamFabric
{
  public:
    StreamFabric();

    /** @return the current cycle. */
    Cycle now() const { return cycle_; }

    /**
     * Advances one core clock: values move one hop in their direction
     * of flow, edge values fall off the chip, and writes scheduled for
     * the new cycle become visible.
     */
    void advance();

    /**
     * @return the vector visible on stream @p s at position @p pos in
     * the current cycle, or nullptr if no valid value is flowing
     * there.
     */
    const Vec320 *peek(StreamRef s, SlicePos pos) const;

    /**
     * Makes @p vec visible on stream @p s at position @p pos starting
     * at cycle @p when (>= now), overwriting whatever would flow
     * through that register. This is how producers with functional
     * delay d_func deposit results: when = dispatch + d_func.
     */
    void scheduleWrite(StreamRef s, SlicePos pos, const Vec320 &vec,
                       Cycle when, const char *writer = "?");

    /** Immediate write visible in the current cycle. */
    void
    write(StreamRef s, SlicePos pos, const Vec320 &vec)
    {
        scheduleWrite(s, pos, vec, cycle_);
    }

    /** Invalidates every entry of every stream (between programs). */
    void clear();

    /** @return number of valid vectors currently flowing chip-wide. */
    std::uint64_t validEntries() const { return validCount_; }

    /** @return cumulative vector-hops since construction (power). */
    std::uint64_t totalHops() const { return totalHops_; }

    /** @return count of scheduled writes applied so far. */
    std::uint64_t totalWrites() const { return totalWrites_; }

  private:
    struct Entry
    {
        Vec320 vec;
        bool valid = false;
        Cycle writtenAt = ~Cycle{0}; ///< Cycle of the last write.
        const char *writer = "?";    ///< Debug: who wrote it.
    };

    /** Ring of entries for one (direction, stream id). */
    struct Ring
    {
        std::vector<Entry> slots;
        int validInRing = 0;
    };

    static constexpr int kNumRings = 2 * kStreamsPerDir;
    static constexpr int kPositions = Layout::numPositions;

    static int
    ringIndex(StreamRef s)
    {
        return (s.dir == Direction::West ? kStreamsPerDir : 0) + s.id;
    }

    /** Ring slot holding (pos) at the current cycle. */
    int
    slotOf(Direction dir, SlicePos pos) const
    {
        const long t = static_cast<long>(cycle_ % kPositions);
        long idx;
        if (dir == Direction::East)
            idx = (pos - t) % kPositions;
        else
            idx = (pos + t) % kPositions;
        if (idx < 0)
            idx += kPositions;
        return static_cast<int>(idx);
    }

    void applyWrite(StreamRef s, SlicePos pos, const Vec320 &vec,
                    const char *writer);

    std::vector<Ring> rings_;
    Cycle cycle_ = 0;

    /** Writes scheduled for future cycles, applied on advance(). */
    std::map<Cycle,
             std::vector<std::tuple<StreamRef, SlicePos, Vec320,
                                    const char *>>>
        pending_;

    std::uint64_t validCount_ = 0;
    std::uint64_t totalHops_ = 0;
    std::uint64_t totalWrites_ = 0;
};

} // namespace tsp

#endif // TSP_STREAM_FABRIC_HH
