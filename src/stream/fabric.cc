#include "stream/fabric.hh"

#include "common/logging.hh"

namespace tsp {

StreamFabric::StreamFabric() : rings_(kNumRings)
{
    for (auto &ring : rings_)
        ring.slots.resize(kPositions);
}

void
StreamFabric::applyWrite(StreamRef s, SlicePos pos, const Vec320 &vec,
                         const char *writer)
{
    TSP_ASSERT(pos >= 0 && pos < kPositions);
    Ring &ring = rings_[static_cast<std::size_t>(ringIndex(s))];
    Entry &e =
        ring.slots[static_cast<std::size_t>(slotOf(s.dir, pos))];
    if (e.valid && e.writtenAt == cycle_) {
        panic("fabric: two producers on %s at pos %d in cycle %llu "
              "(%s then %s) (scheduler bug)",
              s.toString().c_str(), pos,
              static_cast<unsigned long long>(cycle_), e.writer,
              writer);
    }
    if (!e.valid) {
        e.valid = true;
        ++ring.validInRing;
        ++validCount_;
    }
    e.vec = vec;
    e.writtenAt = cycle_;
    e.writer = writer;
    ++totalWrites_;
}

void
StreamFabric::scheduleWrite(StreamRef s, SlicePos pos, const Vec320 &vec,
                            Cycle when, const char *writer)
{
    TSP_ASSERT(when >= cycle_);
    if (when == cycle_) {
        applyWrite(s, pos, vec, writer);
        return;
    }
    pending_[when].emplace_back(s, pos, vec, writer);
}

const Vec320 *
StreamFabric::peek(StreamRef s, SlicePos pos) const
{
    TSP_ASSERT(pos >= 0 && pos < kPositions);
    const Ring &ring = rings_[static_cast<std::size_t>(ringIndex(s))];
    const Entry &e =
        ring.slots[static_cast<std::size_t>(slotOf(s.dir, pos))];
    return e.valid ? &e.vec : nullptr;
}

void
StreamFabric::advance()
{
    // Everything valid moves one hop (for power accounting).
    totalHops_ += validCount_;

    ++cycle_;

    // The slot that wrapped around the edge no longer holds a live
    // value: for eastward streams the value past position N-1 falls
    // off the east edge (its slot becomes position 0); westward values
    // fall off the west edge (slot becomes position N-1).
    for (int r = 0; r < kNumRings; ++r) {
        Ring &ring = rings_[static_cast<std::size_t>(r)];
        const Direction dir =
            r < kStreamsPerDir ? Direction::East : Direction::West;
        const SlicePos entry_pos =
            dir == Direction::East ? 0 : kPositions - 1;
        Entry &e = ring.slots[static_cast<std::size_t>(
            slotOf(dir, entry_pos))];
        if (e.valid) {
            e.valid = false;
            --ring.validInRing;
            --validCount_;
        }
    }

    // Apply writes that become visible this cycle.
    auto it = pending_.find(cycle_);
    if (it != pending_.end()) {
        for (auto &[s, pos, vec, writer] : it->second)
            applyWrite(s, pos, vec, writer);
        pending_.erase(it);
    }
}

void
StreamFabric::clear()
{
    for (auto &ring : rings_) {
        for (auto &e : ring.slots)
            e.valid = false;
        ring.validInRing = 0;
    }
    validCount_ = 0;
    pending_.clear();
}

} // namespace tsp
