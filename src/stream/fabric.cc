#include "stream/fabric.hh"

#include "common/logging.hh"

namespace tsp {

StreamFabric::StreamFabric()
    : rings_(kNumRings),
      pendingRing_(static_cast<std::size_t>(kPendingHorizon))
{
    for (auto &ring : rings_)
        ring.slots.resize(kPositions);
}

void
StreamFabric::applyWrite(StreamRef s, SlicePos pos, const Vec320 &vec,
                         const char *writer, std::uint32_t tag)
{
    TSP_ASSERT(pos >= 0 && pos < kPositions);
    Ring &ring = rings_[static_cast<std::size_t>(ringIndex(s))];
    Entry &e =
        ring.slots[static_cast<std::size_t>(slotOf(s.dir, pos))];
    if (e.valid && e.writtenAt == cycle_) {
        panic("fabric: two producers on %s at pos %d in cycle %llu "
              "(%s then %s) (scheduler bug)",
              s.toString().c_str(), pos,
              static_cast<unsigned long long>(cycle_), e.writer,
              writer);
    }
    if (!e.valid) {
        e.valid = true;
        ++ring.validInRing;
        ++validCount_;
    }
    e.vec = vec;
    e.writtenAt = cycle_;
    e.writer = writer;
    e.tag = tag;
    ++totalWrites_;
}

void
StreamFabric::scheduleWrite(StreamRef s, SlicePos pos, const Vec320 &vec,
                            Cycle when, const char *writer,
                            std::uint32_t tag)
{
    TSP_ASSERT(when >= cycle_);
    if (when == cycle_) {
        applyWrite(s, pos, vec, writer, tag);
        return;
    }
    if (when - cycle_ >= kPendingHorizon) {
        // No architectural delay reaches this far; keep correctness
        // anyway via the ordered overflow map.
        overflow_[when].push_back({s, pos, vec, writer, tag});
        return;
    }
    PendingBatch &b =
        pendingRing_[static_cast<std::size_t>(when % kPendingHorizon)];
    if (b.writes.empty()) {
        b.when = when;
        pendingCycles_.push(when);
    } else {
        TSP_ASSERT(b.when == when);
    }
    b.writes.push_back({s, pos, vec, writer, tag});
    ++pendingCount_;
}

Cycle
StreamFabric::earliestPendingCycle() const
{
    Cycle earliest = kNoEventCycle;
    if (!pendingCycles_.empty())
        earliest = pendingCycles_.top();
    if (!overflow_.empty() && overflow_.begin()->first < earliest)
        earliest = overflow_.begin()->first;
    return earliest;
}

const Vec320 *
StreamFabric::peek(StreamRef s, SlicePos pos) const
{
    TSP_ASSERT(pos >= 0 && pos < kPositions);
    const Ring &ring = rings_[static_cast<std::size_t>(ringIndex(s))];
    const Entry &e =
        ring.slots[static_cast<std::size_t>(slotOf(s.dir, pos))];
    return e.valid ? &e.vec : nullptr;
}

const Vec320 *
StreamFabric::peek(StreamRef s, SlicePos pos,
                   std::uint32_t *tag) const
{
    TSP_ASSERT(pos >= 0 && pos < kPositions);
    const Ring &ring = rings_[static_cast<std::size_t>(ringIndex(s))];
    const Entry &e =
        ring.slots[static_cast<std::size_t>(slotOf(s.dir, pos))];
    if (!e.valid)
        return nullptr;
    *tag = e.tag;
    return &e.vec;
}

void
StreamFabric::replayJumpTo(Cycle target)
{
    TSP_ASSERT(target >= cycle_);
    // Replay keeps the registers empty: produces bypass the fabric
    // (they go to the tape), so there is nothing to flow or fall off.
    TSP_ASSERT(tapeRep_ != nullptr && validCount_ == 0 &&
               pendingWrites() == 0);
    cycle_ = target;
}

void
StreamFabric::applyPendingNow()
{
    if (!pendingCycles_.empty() && pendingCycles_.top() == cycle_) {
        pendingCycles_.pop();
        PendingBatch &b = pendingRing_[static_cast<std::size_t>(
            cycle_ % kPendingHorizon)];
        TSP_ASSERT(b.when == cycle_ && !b.writes.empty());
        for (const PendingWrite &w : b.writes)
            applyWrite(w.s, w.pos, w.vec, w.writer, w.tag);
        pendingCount_ -= b.writes.size();
        b.writes.clear(); // Capacity retained for reuse.
    }
    // Drain-order invariant: nothing pending at or before now.
    TSP_ASSERT(pendingCycles_.empty() ||
               pendingCycles_.top() > cycle_);
    if (!overflow_.empty()) {
        const auto it = overflow_.begin();
        TSP_ASSERT(it->first >= cycle_);
        if (it->first == cycle_) {
            for (const PendingWrite &w : it->second)
                applyWrite(w.s, w.pos, w.vec, w.writer, w.tag);
            overflow_.erase(it);
        }
    }
}

void
StreamFabric::advance()
{
    // Everything valid moves one hop (for power accounting).
    totalHops_ += validCount_;

    ++cycle_;

    // The slot that wrapped around the edge no longer holds a live
    // value: for eastward streams the value past position N-1 falls
    // off the east edge (its slot becomes position 0); westward values
    // fall off the west edge (slot becomes position N-1).
    for (int r = 0; r < kNumRings; ++r) {
        Ring &ring = rings_[static_cast<std::size_t>(r)];
        const Direction dir =
            r < kStreamsPerDir ? Direction::East : Direction::West;
        const SlicePos entry_pos =
            dir == Direction::East ? 0 : kPositions - 1;
        Entry &e = ring.slots[static_cast<std::size_t>(
            slotOf(dir, entry_pos))];
        if (e.valid) {
            e.valid = false;
            --ring.validInRing;
            --validCount_;
        }
    }

    // Apply writes that become visible this cycle.
    applyPendingNow();
}

void
StreamFabric::advanceBy(Cycle n)
{
    if (n == 0)
        return;
    // Fast-forward legality: no write may become visible strictly
    // inside the span (it would flow from the wrong cycle).
    TSP_ASSERT(earliestPendingCycle() >= cycle_ + n);

    // Per ring, hop totals and edge fall-off in closed form: an
    // eastward value at position p contributes one hop per advance
    // until the advance that wraps it past position N-1 — exactly
    // N - p hops — and symmetrically p + 1 hops westward. Empty
    // rings (the common case in idle spans) cost nothing.
    const long t = static_cast<long>(cycle_ % kPositions);
    std::uint64_t hops = 0;
    for (int r = 0; r < kNumRings; ++r) {
        Ring &ring = rings_[static_cast<std::size_t>(r)];
        if (ring.validInRing == 0)
            continue;
        const bool east = r < kStreamsPerDir;
        for (int idx = 0; idx < kPositions; ++idx) {
            Entry &e = ring.slots[static_cast<std::size_t>(idx)];
            if (!e.valid)
                continue;
            long pos = east ? (idx + t) % kPositions
                            : (idx - t) % kPositions;
            if (pos < 0)
                pos += kPositions;
            const Cycle remaining = east
                                        ? static_cast<Cycle>(
                                              kPositions - pos)
                                        : static_cast<Cycle>(pos + 1);
            hops += remaining < n ? remaining : n;
            if (remaining <= n) {
                e.valid = false;
                --ring.validInRing;
                --validCount_;
            }
        }
    }
    totalHops_ += hops;
    cycle_ += n;

    // Writes scheduled for the arrival cycle become visible now, in
    // the same edge-falloff-then-apply order as advance().
    applyPendingNow();
}

namespace {

void
putVec(SnapshotWriter &w, const Vec320 &v)
{
    w.bytes(v.bytes.data(), v.bytes.size());
    for (const auto e : v.ecc)
        w.u16(e);
}

void
getVec(SnapshotReader &r, Vec320 &v)
{
    r.bytes(v.bytes.data(), v.bytes.size());
    for (auto &e : v.ecc)
        e = r.u16();
}

void
putPendingWrite(SnapshotWriter &w, Cycle when, StreamRef s,
                SlicePos pos, std::uint32_t tag, const Vec320 &vec)
{
    w.u64(when);
    w.u8(s.id);
    w.u8(s.dir == Direction::West ? 1 : 0);
    w.i32(pos);
    w.u32(tag);
    putVec(w, vec);
}

} // namespace

void
StreamFabric::saveState(SnapshotWriter &w) const
{
    w.u64(cycle_);
    for (const auto &ring : rings_) {
        w.u32(static_cast<std::uint32_t>(ring.validInRing));
        for (std::size_t idx = 0; idx < ring.slots.size(); ++idx) {
            const Entry &e = ring.slots[idx];
            if (!e.valid)
                continue;
            w.u16(static_cast<std::uint16_t>(idx));
            w.u64(e.writtenAt);
            w.u32(e.tag);
            putVec(w, e.vec);
        }
    }
    // All scheduled-but-unapplied writes, flattened with their
    // visibility cycle; loadState() re-inserts via scheduleWrite.
    std::uint64_t pending = 0;
    for (const auto &b : pendingRing_)
        pending += b.writes.size();
    for (const auto &[when, writes] : overflow_)
        pending += writes.size();
    w.u64(pending);
    for (const auto &b : pendingRing_) {
        for (const PendingWrite &pw : b.writes)
            putPendingWrite(w, b.when, pw.s, pw.pos, pw.tag, pw.vec);
    }
    for (const auto &[when, writes] : overflow_) {
        for (const PendingWrite &pw : writes)
            putPendingWrite(w, when, pw.s, pw.pos, pw.tag, pw.vec);
    }
    w.u64(validCount_);
    w.u64(totalHops_);
    w.u64(totalWrites_);
}

void
StreamFabric::loadState(SnapshotReader &r)
{
    clear();
    cycle_ = r.u64();
    for (auto &ring : rings_) {
        const std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
            const std::uint16_t idx = r.u16();
            if (idx >= ring.slots.size())
                break;
            Entry &e = ring.slots[idx];
            e.valid = true;
            e.writtenAt = r.u64();
            e.writer = "snapshot";
            e.tag = r.u32();
            getVec(r, e.vec);
            ++ring.validInRing;
            ++validCount_;
        }
    }
    const std::uint64_t pending = r.u64();
    for (std::uint64_t i = 0; i < pending && r.ok(); ++i) {
        const Cycle when = r.u64();
        StreamRef s{};
        s.id = r.u8();
        s.dir = r.u8() ? Direction::West : Direction::East;
        const SlicePos pos = r.i32();
        const std::uint32_t tag = r.u32();
        Vec320 vec;
        getVec(r, vec);
        // Pending means strictly in the future: writes for the
        // restored cycle were applied before the snapshot was taken.
        TSP_ASSERT(when > cycle_);
        scheduleWrite(s, pos, vec, when, "snapshot", tag);
    }
    validCount_ = r.u64();
    totalHops_ = r.u64();
    totalWrites_ = r.u64();
}

void
StreamFabric::clear()
{
    for (auto &ring : rings_) {
        for (auto &e : ring.slots)
            e.valid = false;
        ring.validInRing = 0;
    }
    validCount_ = 0;
    for (auto &b : pendingRing_)
        b.writes.clear();
    pendingCycles_ = {};
    pendingCount_ = 0;
    overflow_.clear();
}

} // namespace tsp
