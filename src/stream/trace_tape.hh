/**
 * @file
 * Record/replay tape interfaces for the stream fabric.
 *
 * The trace-replay execution tier (sim/exec_trace.hh) re-executes a
 * recorded run's dispatches against the real functional units but
 * routes every stream-fabric exchange through a tape instead of the
 * flowing registers: during *recording*, each produce is numbered and
 * each consume notes which produce (or a miss) it sampled; during
 * *replay*, produces append their vectors to a log and consumes read
 * the logged vector their recorded number points at. The fabric is
 * the distribution point (mirroring attachFaultHooks): every
 * StreamIo consults the attached hooks per call, so no per-unit
 * plumbing is needed.
 */

#ifndef TSP_STREAM_TRACE_TAPE_HH
#define TSP_STREAM_TRACE_TAPE_HH

#include <cstdint>

#include "arch/types.hh"

namespace tsp {

/** Consume-tape sentinel: nothing was flowing (missed operand). */
inline constexpr std::uint32_t kTapeMiss = 0xffffffffu;

/**
 * Provenance tag of a fabric entry written outside any StreamIo
 * (e.g. a test poking StreamFabric::write directly). Consuming such
 * an entry while recording poisons the trace — replay could not
 * reproduce the value.
 */
inline constexpr std::uint32_t kTapeUntagged = 0xfffffffeu;

/** Recording-side hooks (implemented by sim::TraceRecording). */
class TapeRecorder
{
  public:
    virtual ~TapeRecorder() = default;

    /** Numbers one produced vector. @return its provenance tag. */
    virtual std::uint32_t onProduce() = 0;

    /**
     * Notes one consume: @p tag is the sampled entry's provenance
     * (kTapeMiss when nothing was flowing, kTapeUntagged when the
     * entry had no StreamIo producer).
     */
    virtual void onConsume(std::uint32_t tag) = 0;
};

/** Replay-side hooks (implemented by the trace replay driver). */
class TapeReplayer
{
  public:
    virtual ~TapeReplayer() = default;

    /** Logs one produced vector (in produce-call order). */
    virtual void onProduce(const Vec320 &vec) = 0;

    /**
     * @return the vector the recorded tape says this consume
     * sampled, or nullptr for a recorded miss.
     */
    virtual const Vec320 *onConsume() = 0;
};

} // namespace tsp

#endif // TSP_STREAM_TRACE_TAPE_HH
