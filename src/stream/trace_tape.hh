/**
 * @file
 * Record/replay tape interfaces for the stream fabric.
 *
 * The trace-replay execution tier (sim/exec_trace.hh) re-executes a
 * recorded run's dispatches against the real functional units but
 * routes every stream-fabric exchange through a tape instead of the
 * flowing registers: during *recording*, each produce is numbered and
 * each consume notes which produce (or a miss) it sampled; during
 * *replay*, produces write their vectors straight into a pinned,
 * liveness-compacted arena slot and consumes read arena pointers —
 * no Vec320 is copied on the tape hot path. The fabric is the
 * distribution point (mirroring attachFaultHooks): every StreamIo
 * consults the attached hooks per call, so no per-unit plumbing is
 * needed.
 */

#ifndef TSP_STREAM_TRACE_TAPE_HH
#define TSP_STREAM_TRACE_TAPE_HH

#include <cstddef>
#include <cstdint>

#include "arch/types.hh"

namespace tsp {

/** Consume-tape sentinel: nothing was flowing (missed operand). */
inline constexpr std::uint32_t kTapeMiss = 0xffffffffu;

/**
 * Provenance tag of a fabric entry written outside any StreamIo
 * (e.g. a test poking StreamFabric::write directly). Consuming such
 * an entry while recording poisons the trace — replay could not
 * reproduce the value. Consuming one *during* replay is a hard
 * failure: the tape never captured it, so the replayed consume would
 * silently read stale arena state instead.
 */
inline constexpr std::uint32_t kTapeUntagged = 0xfffffffeu;

/** Recording-side hooks (implemented by sim::TraceRecording). */
class TapeRecorder
{
  public:
    virtual ~TapeRecorder() = default;

    /** Numbers one produced vector. @return its provenance tag. */
    virtual std::uint32_t onProduce() = 0;

    /**
     * Notes one consume: @p tag is the sampled entry's provenance
     * (kTapeMiss when nothing was flowing, kTapeUntagged when the
     * entry had no StreamIo producer).
     */
    virtual void onConsume(std::uint32_t tag) = 0;
};

/**
 * Replay-side hooks (implemented by the trace replay driver).
 *
 * The implementation owns a pinned arena of Vec320 slots (one per
 * peak-live value of the recorded run, sim/exec_trace.hh). Produce
 * and consume exchange *pointers into that arena*; nothing copies.
 */
class TapeReplayer
{
  public:
    virtual ~TapeReplayer() = default;

    /**
     * Claims the arena slot for the next produce (in produce-call
     * order) and @return it; the caller writes the produced value
     * there in place.
     *
     * The caller must assign every data byte of the slot (slots are
     * liveness-reused, so unwritten bytes would leak a dead value's
     * bits). The ECC words may be left stale: no replay consumer
     * checks codes and the MEM slices regenerate them at store time
     * (MemSlice::setReplayMode).
     */
    virtual Vec320 *onProduce() = 0;

    /**
     * @return the arena slot the recorded tape says this consume
     * sampled, or nullptr for a recorded miss. The pointer is valid
     * until the value's last recorded consume has run.
     */
    virtual const Vec320 *onConsume() = 0;

    /**
     * Batched onConsume: resolves the next @p n tape entries in one
     * call, filling @p outs[0..n) (nullptr per recorded miss). The
     * run bypasses per-vector virtual dispatch for multi-operand
     * consumers (MXM LW bursts / fp16 pairs, VXM groups).
     */
    virtual void onConsumeRun(const Vec320 **outs, std::size_t n) = 0;
};

} // namespace tsp

#endif // TSP_STREAM_TRACE_TAPE_HH
