/**
 * @file
 * Producer/consumer facade over the stream fabric.
 *
 * Every functional slice consumes operands and produces results
 * through this helper, which implements the paper's producer-side ECC
 * generation and consumer-side ECC check (II.D), the strict-schedule
 * check (a missing operand is a compiler bug), and the CSR counters an
 * error handler would interrogate.
 */

#ifndef TSP_STREAM_STREAM_IO_HH
#define TSP_STREAM_STREAM_IO_HH

#include <cstdint>
#include <string>

#include "arch/config.hh"
#include "common/snapshot_io.hh"
#include "stream/fabric.hh"

namespace tsp {

/** Per-slice stream access point with ECC and CSR counters. */
class StreamIo
{
  public:
    /**
     * @param cfg chip configuration (ECC / strictness knobs).
     * @param fabric the shared stream register file.
     * @param owner printable slice name for diagnostics.
     */
    StreamIo(const ChipConfig &cfg, StreamFabric &fabric,
             std::string owner);

    /**
     * Samples stream @p s at position @p pos in the current cycle,
     * checking (and correcting) ECC.
     *
     * If no valid value is flowing: panics under strictStreams,
     * otherwise returns a zero vector and counts a missed operand.
     */
    Vec320 consume(StreamRef s, SlicePos pos);

    /**
     * Like consume() but tolerates an absent value even in strict
     * mode (used by Write-style sinks that are themselves optional).
     *
     * @return false if nothing was flowing.
     */
    bool tryConsume(StreamRef s, SlicePos pos, Vec320 &out);

    /**
     * consume() without the copy: @return a pointer to the consumed
     * vector — into the replay tape's arena while replaying (nothing
     * copied), otherwise into @p scratch after the normal
     * peek/fault/ECC path filled it. A missed operand panics under
     * strictStreams like consume(), else returns @p scratch zeroed.
     * The pointer is valid until the caller's next StreamIo call.
     */
    const Vec320 *consumeRef(StreamRef s, SlicePos pos,
                             Vec320 &scratch);

    /**
     * Replay-only batched consume with consume() semantics per
     * entry: resolves the next @p n tape reads in one call, filling
     * @p outs with arena pointers (a recorded miss yields a pointer
     * to a shared zero vector, after the strict-mode check).
     *
     * @p base / @p pos name the first operand's register (ids
     * base.id + i) for diagnostics and the poked-fabric hard-fail
     * check only — replay consumes resolve by tape order, not by
     * register.
     *
     * @return false when not replaying: the caller must fall back
     * to per-vector consume().
     */
    bool replayConsumeRun(StreamRef base, SlicePos pos,
                          const Vec320 **outs, std::size_t n);

    /**
     * Replay-only zero-copy produce: claims the tape arena slot for
     * the next produce and @return it; the caller writes the value
     * in place (every data byte — slots are liveness-reused) and
     * makes no further produce call. @return nullptr when not
     * replaying: the caller must build the vector and call
     * produce()/produceRaw() as usual.
     */
    Vec320 *replayProduceDest();

    /**
     * Produces @p vec on stream @p s at position @p pos, visible at
     * cycle @p when; generates fresh ECC (producer side).
     */
    void produce(StreamRef s, SlicePos pos, Vec320 vec, Cycle when);

    /**
     * Produces @p vec with its existing ECC untouched. Used by MEM
     * reads: the code generated when the word was produced travels
     * with it, so SRAM soft errors remain detectable downstream.
     */
    void produceRaw(StreamRef s, SlicePos pos, const Vec320 &vec,
                    Cycle when);

    /** CSR: single-bit errors corrected on consumed operands. */
    std::uint64_t correctedErrors() const { return corrected_; }

    /** CSR: uncorrectable errors observed on consumed operands. */
    std::uint64_t uncorrectableErrors() const { return uncorrectable_; }

    /** Operands sampled with nothing flowing (non-strict mode only). */
    std::uint64_t missedOperands() const { return missed_; }

    /** Vectors consumed. */
    std::uint64_t consumed() const { return consumed_; }

    /** Vectors produced. */
    std::uint64_t produced() const { return produced_; }

    /** Serializes the CSR counters (snapshot/restore). */
    void
    saveState(SnapshotWriter &w) const
    {
        w.u64(corrected_);
        w.u64(uncorrectable_);
        w.u64(missed_);
        w.u64(consumed_);
        w.u64(produced_);
    }

    /** Restores the CSR counters (snapshot/restore). */
    void
    loadState(SnapshotReader &r)
    {
        corrected_ = r.u64();
        uncorrectable_ = r.u64();
        missed_ = r.u64();
        consumed_ = r.u64();
        produced_ = r.u64();
    }

  private:
    /**
     * Hard-fail check for replay consumes: a fabric entry poked in
     * from outside any StreamIo (kTapeUntagged) during replay would
     * be silently ignored — the tape resolves consumes by recorded
     * order, so the replayed consume would read stale arena state
     * instead of the poked value. Gated on validEntries() != 0 (one
     * load): replay keeps the fabric empty, so the check is free on
     * the hot path and only peeks when something is actually there.
     */
    void checkReplayUntagged(StreamRef s, SlicePos pos);

    const ChipConfig &cfg_;
    StreamFabric &fabric_;
    std::string owner_;

    std::uint64_t corrected_ = 0;
    std::uint64_t uncorrectable_ = 0;
    std::uint64_t missed_ = 0;
    std::uint64_t consumed_ = 0;
    std::uint64_t produced_ = 0;
};

} // namespace tsp

#endif // TSP_STREAM_STREAM_IO_HH
