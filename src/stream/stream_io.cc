#include "stream/stream_io.hh"

#include "common/logging.hh"
#include "common/strutil.hh"
#include "mem/ecc.hh"
#include "mem/fault.hh"

namespace tsp {

StreamIo::StreamIo(const ChipConfig &cfg, StreamFabric &fabric,
                   std::string owner)
    : cfg_(cfg), fabric_(fabric), owner_(std::move(owner))
{
}

Vec320
StreamIo::consume(StreamRef s, SlicePos pos)
{
    Vec320 out;
    if (!tryConsume(s, pos, out)) {
        if (cfg_.strictStreams) {
            panic("%s: no value flowing on %s at pos %d, cycle %llu "
                  "(scheduler bug)",
                  owner_.c_str(), s.toString().c_str(), pos,
                  static_cast<unsigned long long>(fabric_.now()));
        }
        ++missed_;
    }
    return out;
}

void
StreamIo::checkReplayUntagged(StreamRef s, SlicePos pos)
{
    if (fabric_.validEntries() == 0)
        return;
    std::uint32_t tag = kTapeUntagged;
    if (fabric_.peek(s, pos, &tag) && tag == kTapeUntagged) {
        panic("%s: replay consume on %s at pos %d, cycle %llu would "
              "sample a fabric entry written outside any StreamIo "
              "(kTapeUntagged) — the tape cannot reproduce it, so "
              "replay would silently read stale arena state",
              owner_.c_str(), s.toString().c_str(), pos,
              static_cast<unsigned long long>(fabric_.now()));
    }
}

bool
StreamIo::tryConsume(StreamRef s, SlicePos pos, Vec320 &out)
{
    if (TapeReplayer *rep = fabric_.tapeReplayer()) {
        // Replay tier: the tape says which produce (if any) this
        // consume sampled. The consumer-side ECC check is skipped —
        // replay is only ever taken for fault-free recordings whose
        // check came back clean on every operand.
        checkReplayUntagged(s, pos);
        const Vec320 *rv = rep->onConsume();
        if (!rv) {
            out = Vec320{};
            if (cfg_.eccEnabled)
                eccComputeVec(out);
            return false;
        }
        out = *rv;
        ++consumed_;
        return true;
    }
    std::uint32_t tag = kTapeUntagged;
    const Vec320 *v = fabric_.peek(s, pos, &tag);
    if (TapeRecorder *rec = fabric_.tapeRecorder())
        rec->onConsume(v ? tag : kTapeMiss);
    if (!v) {
        out = Vec320{};
        if (cfg_.eccEnabled)
            eccComputeVec(out);
        return false;
    }
    out = *v;
    ++consumed_;
    if (FaultInjector *fi = fabric_.faultInjector()) {
        // Stream-hop upset on the consumed copy; the check below is
        // the consumer-side SECDED check that must catch it.
        fi->onStreamConsume(out);
    }
    if (cfg_.eccEnabled) {
        switch (eccCheckVec(out)) {
          case EccStatus::Ok:
            break;
          case EccStatus::Corrected:
            ++corrected_;
            break;
          case EccStatus::Uncorrectable:
            ++uncorrectable_;
            if (MachineCheckSink *mc = fabric_.machineCheckSink()) {
                // Condemn the chip: corrupted data must never flow
                // into a result as a silent success.
                mc->raise(fabric_.now(), owner_,
                          strformat("uncorrectable stream error on "
                                    "%s at pos %d",
                                    s.toString().c_str(), pos));
            } else {
                warn("%s: uncorrectable stream error on %s at pos %d",
                     owner_.c_str(), s.toString().c_str(), pos);
            }
            break;
        }
    }
    return true;
}

const Vec320 *
StreamIo::consumeRef(StreamRef s, SlicePos pos, Vec320 &scratch)
{
    if (TapeReplayer *rep = fabric_.tapeReplayer()) {
        checkReplayUntagged(s, pos);
        if (const Vec320 *rv = rep->onConsume()) {
            ++consumed_;
            return rv;
        }
        if (cfg_.strictStreams) {
            panic("%s: no value flowing on %s at pos %d, cycle %llu "
                  "(scheduler bug)",
                  owner_.c_str(), s.toString().c_str(), pos,
                  static_cast<unsigned long long>(fabric_.now()));
        }
        ++missed_;
        scratch = Vec320{};
        // A default Vec320 already carries valid (zero) ECC for zero
        // data, matching consume()'s eccComputeVec on the miss path.
        return &scratch;
    }
    if (!tryConsume(s, pos, scratch)) {
        if (cfg_.strictStreams) {
            panic("%s: no value flowing on %s at pos %d, cycle %llu "
                  "(scheduler bug)",
                  owner_.c_str(), s.toString().c_str(), pos,
                  static_cast<unsigned long long>(fabric_.now()));
        }
        ++missed_;
    }
    return &scratch;
}

bool
StreamIo::replayConsumeRun(StreamRef base, SlicePos pos,
                           const Vec320 **outs, std::size_t n)
{
    TapeReplayer *rep = fabric_.tapeReplayer();
    if (!rep)
        return false;
    if (fabric_.validEntries() != 0) {
        for (std::size_t i = 0; i < n; ++i) {
            StreamRef s = base;
            s.id = static_cast<StreamId>(base.id + i);
            checkReplayUntagged(s, pos);
        }
    }
    rep->onConsumeRun(outs, n);
    static const Vec320 kZero{}; // Valid (zero) ECC for zero data.
    for (std::size_t i = 0; i < n; ++i) {
        if (outs[i]) {
            ++consumed_;
            continue;
        }
        if (cfg_.strictStreams) {
            StreamRef s = base;
            s.id = static_cast<StreamId>(base.id + i);
            panic("%s: no value flowing on %s at pos %d, cycle %llu "
                  "(scheduler bug)",
                  owner_.c_str(), s.toString().c_str(), pos,
                  static_cast<unsigned long long>(fabric_.now()));
        }
        ++missed_;
        outs[i] = &kZero;
    }
    return true;
}

Vec320 *
StreamIo::replayProduceDest()
{
    if (TapeReplayer *rep = fabric_.tapeReplayer()) {
        ++produced_;
        return rep->onProduce();
    }
    return nullptr;
}

void
StreamIo::produce(StreamRef s, SlicePos pos, Vec320 vec, Cycle when)
{
    if (TapeReplayer *rep = fabric_.tapeReplayer()) {
        // Replay tier: skip the SECDED encode. No consumer on this
        // path checks codes, and the MEM slices regenerate them at
        // store time, so the encode's only observable effects are
        // reproduced for free.
        *rep->onProduce() = vec;
        ++produced_;
        return;
    }
    if (cfg_.eccEnabled)
        eccComputeVec(vec);
    std::uint32_t tag = kTapeUntagged;
    if (TapeRecorder *rec = fabric_.tapeRecorder())
        tag = rec->onProduce();
    fabric_.scheduleWrite(s, pos, vec, when, owner_.c_str(), tag);
    ++produced_;
}

void
StreamIo::produceRaw(StreamRef s, SlicePos pos, const Vec320 &vec,
                     Cycle when)
{
    if (TapeReplayer *rep = fabric_.tapeReplayer()) {
        *rep->onProduce() = vec;
        ++produced_;
        return;
    }
    std::uint32_t tag = kTapeUntagged;
    if (TapeRecorder *rec = fabric_.tapeRecorder())
        tag = rec->onProduce();
    fabric_.scheduleWrite(s, pos, vec, when, owner_.c_str(), tag);
    ++produced_;
}

} // namespace tsp
