/**
 * @file
 * A conventional two-level cache hierarchy — the "reactive element in
 * the data path" the TSP deliberately eliminates (paper I, IV.A,
 * V.c). Used by the baseline core to demonstrate the determinism and
 * tail-latency contrast: replacement is randomized (as real parts
 * effectively are, through ASLR, prefetcher state, and co-runner
 * interference), so identical runs see different miss patterns unless
 * the seed is pinned.
 */

#ifndef TSP_BASELINE_CACHE_HH
#define TSP_BASELINE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace tsp::baseline {

/** Configuration of one cache level. */
struct CacheLevelConfig
{
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t lineBytes = 64;
    std::uint32_t hitLatency = 4; ///< Cycles.
};

/** One set-associative cache level with random replacement. */
class CacheLevel
{
  public:
    CacheLevel(const CacheLevelConfig &cfg, Rng &rng);

    /**
     * Looks up @p addr; on miss, installs the line (possibly
     * evicting a random way).
     *
     * @return true on hit.
     */
    bool access(std::uint64_t addr);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    const CacheLevelConfig &config() const { return cfg_; }

    /** Empties the cache (between runs). */
    void flush();

  private:
    CacheLevelConfig cfg_;
    Rng &rng_;
    std::uint32_t sets_;
    std::vector<std::uint64_t> tags_;  ///< [set * ways + way].
    std::vector<bool> valid_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** L1 + L2 + DRAM latency model. */
class MemoryHierarchy
{
  public:
    /**
     * @param seed perturbs replacement decisions; two hierarchies
     * with different seeds model two runs of a real machine.
     */
    explicit MemoryHierarchy(std::uint64_t seed,
                             std::uint32_t dram_latency = 180);

    /** @return cycles taken by a load/store of @p bytes at @p addr. */
    std::uint32_t access(std::uint64_t addr, std::uint32_t bytes);

    const CacheLevel &l1() const { return l1_; }
    const CacheLevel &l2() const { return l2_; }

  private:
    Rng rng_;
    CacheLevel l1_;
    CacheLevel l2_;
    std::uint32_t dramLatency_;
};

} // namespace tsp::baseline

#endif // TSP_BASELINE_CACHE_HH
