#include "baseline/cache.hh"

#include "common/logging.hh"

namespace tsp::baseline {

CacheLevel::CacheLevel(const CacheLevelConfig &cfg, Rng &rng)
    : cfg_(cfg), rng_(rng)
{
    TSP_ASSERT(cfg.sizeBytes % (cfg.ways * cfg.lineBytes) == 0);
    sets_ = cfg.sizeBytes / (cfg.ways * cfg.lineBytes);
    tags_.resize(static_cast<std::size_t>(sets_) * cfg.ways, 0);
    valid_.resize(tags_.size(), false);
}

bool
CacheLevel::access(std::uint64_t addr)
{
    const std::uint64_t line = addr / cfg_.lineBytes;
    const std::uint32_t set =
        static_cast<std::uint32_t>(line % sets_);
    const std::size_t base =
        static_cast<std::size_t>(set) * cfg_.ways;

    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (valid_[base + w] && tags_[base + w] == line) {
            ++hits_;
            return true;
        }
    }
    ++misses_;
    // Install into an invalid way, else evict a random one.
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (!valid_[base + w]) {
            valid_[base + w] = true;
            tags_[base + w] = line;
            return false;
        }
    }
    const std::uint32_t victim =
        static_cast<std::uint32_t>(rng_.nextBelow(cfg_.ways));
    tags_[base + victim] = line;
    return false;
}

void
CacheLevel::flush()
{
    std::fill(valid_.begin(), valid_.end(), false);
}

MemoryHierarchy::MemoryHierarchy(std::uint64_t seed,
                                 std::uint32_t dram_latency)
    : rng_(seed),
      l1_(CacheLevelConfig{32 * 1024, 8, 64, 4}, rng_),
      l2_(CacheLevelConfig{1024 * 1024, 16, 64, 14}, rng_),
      dramLatency_(dram_latency)
{
}

std::uint32_t
MemoryHierarchy::access(std::uint64_t addr, std::uint32_t bytes)
{
    // Touch every line the access spans; cost is the worst line.
    std::uint32_t cost = 0;
    const std::uint32_t line = l1_.config().lineBytes;
    for (std::uint64_t a = addr; a < addr + bytes; a += line) {
        std::uint32_t c;
        if (l1_.access(a)) {
            c = l1_.config().hitLatency;
        } else if (l2_.access(a)) {
            c = l2_.config().hitLatency;
        } else {
            c = dramLatency_;
        }
        cost = std::max(cost, c);
    }
    return cost;
}

} // namespace tsp::baseline
