#include "baseline/core.hh"

#include "common/logging.hh"

namespace tsp::baseline {

BaselineCore::BaselineCore(const CoreConfig &cfg)
    : cfg_(cfg), mem_(cfg.seed)
{
}

RunResult
BaselineCore::runVectorAdd(std::size_t elements)
{
    RunResult r;
    const std::uint32_t chunk =
        static_cast<std::uint32_t>(cfg_.simdLanes);
    // Disjoint address regions for X, Y, Z.
    const std::uint64_t x0 = 0x1000'0000;
    const std::uint64_t y0 = 0x2000'0000;
    const std::uint64_t z0 = 0x3000'0000;

    for (std::size_t i = 0; i < elements; i += chunk) {
        const auto off = static_cast<std::uint64_t>(i);
        // LOAD R1, X; LOAD R2, Y; ADD R3, R1, R2; STORE R3, Z.
        r.cycles += mem_.access(x0 + off, chunk);
        r.cycles += mem_.access(y0 + off, chunk);
        r.cycles += 1;
        r.cycles += mem_.access(z0 + off, chunk);
        r.instructions += 4;
    }
    r.l1Misses = mem_.l1().misses();
    r.l2Misses = mem_.l2().misses();
    return r;
}

RunResult
BaselineCore::runGemm(int m, int n, int k)
{
    RunResult r;
    const int lanes = cfg_.simdLanes;
    const std::uint64_t a0 = 0x1000'0000;
    const std::uint64_t b0 = 0x2000'0000;
    const std::uint64_t c0 = 0x3000'0000;

    // Blocked i-j loop with a SIMD inner product over k.
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; j += lanes) {
            std::uint64_t acc_cycles = 0;
            for (int kk = 0; kk < k; ++kk) {
                // A[i][kk] broadcast (scalar load, usually L1-hot),
                // B[kk][j..j+lanes) vector load, MACC.
                acc_cycles += mem_.access(
                    a0 + static_cast<std::uint64_t>(i) * k + kk, 1);
                acc_cycles += mem_.access(
                    b0 + (static_cast<std::uint64_t>(kk) * n + j),
                    static_cast<std::uint32_t>(lanes));
                acc_cycles += 1; // SIMD MACC issue.
                r.instructions += 3;
                r.maccOps += static_cast<std::uint64_t>(lanes);
            }
            // The aluPipes overlap memory and compute to a degree:
            // charge the max of compute-bound and observed cycles.
            const std::uint64_t compute =
                static_cast<std::uint64_t>(k) / cfg_.aluPipes + 1;
            r.cycles += std::max(acc_cycles / cfg_.aluPipes, compute);
            r.cycles += mem_.access(
                c0 + (static_cast<std::uint64_t>(i) * n + j) * 4,
                static_cast<std::uint32_t>(lanes) * 4);
            r.instructions += 1;
        }
    }
    r.l1Misses = mem_.l1().misses();
    r.l2Misses = mem_.l2().misses();
    return r;
}

RunResult
BaselineCore::runConvNet(const std::vector<ConvLayerDesc> &layers,
                         int batch)
{
    TSP_ASSERT(batch >= 1);
    RunResult r;
    const auto lanes = static_cast<std::uint64_t>(cfg_.simdLanes);
    const auto pipes = static_cast<std::uint64_t>(cfg_.aluPipes);
    // Off-chip streaming is bandwidth-bound, not latency-bound: a
    // 64-byte line costs 1 cycle from the on-chip cache or
    // kDramCyclesPerLine from DRAM (memory-level parallelism hides
    // individual latencies).
    constexpr std::uint64_t kDramCyclesPerLine = 4; // ~16 B/cycle.

    for (const auto &[outputs, macs_per_output, weight_bytes] :
         layers) {
        // The full weight working set streams once per layer per
        // batch; batching amortizes it across the images. Layers
        // beyond the L2 capacity come from DRAM.
        std::uint64_t weight_cycles = 0;
        for (std::int64_t b = 0; b < weight_bytes; b += 64) {
            const bool l2_hit =
                mem_.l2().config().sizeBytes >
                static_cast<std::uint64_t>(weight_bytes);
            weight_cycles += l2_hit ? 1 : kDramCyclesPerLine;
        }

        // Per-image compute: SIMD MACCs plus activation streaming.
        const std::uint64_t total_macs =
            static_cast<std::uint64_t>(outputs) * macs_per_output;
        const std::uint64_t alu_cycles =
            total_macs / (lanes * pipes) + 1;
        const std::uint64_t act_cycles =
            static_cast<std::uint64_t>(outputs) / 64 + 1;
        const std::uint64_t per_image =
            std::max(alu_cycles, act_cycles) +
            std::min(alu_cycles, act_cycles) / 4;

        r.cycles += weight_cycles +
                    per_image * static_cast<std::uint64_t>(batch);
        r.maccOps += total_macs * static_cast<std::uint64_t>(batch);
        r.instructions += total_macs / lanes + 1;
    }
    r.l1Misses = mem_.l1().misses();
    r.l2Misses = mem_.l2().misses();
    return r;
}

const std::vector<ReferenceChip> &
referenceChips()
{
    // Paper section V / [44]: TPU v3 large-batch inference is 2.5x
    // slower than the TSP's 20.4K IPS at batch 1; Goya takes 240 us
    // for batch-1 inference (~5x the TSP's 49 us).
    static const std::vector<ReferenceChip> chips = {
        {"Groq TSP (paper)", 20'400.0, 49.0},
        {"Google TPU v3, large batch [44]", 8'160.0, 122.5},
        {"Habana Goya [1]", 4'167.0, 240.0},
        {"NVIDIA V100 (batch 1) [44]", 5'100.0, 196.0},
    };
    return chips;
}

} // namespace tsp::baseline
