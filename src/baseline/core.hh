/**
 * @file
 * A conventional SIMD load-store core (Fig. 1a / Fig. 3 of the paper):
 * instructions move operands between memory and registers through a
 * reactive cache hierarchy, so both the dynamic instruction count (4
 * per element-wise op: LOAD, LOAD, ADD, STORE) and the latency vary
 * run to run. The baseline for experiments E10/E14/E18.
 */

#ifndef TSP_BASELINE_CORE_HH
#define TSP_BASELINE_CORE_HH

#include "baseline/cache.hh"

namespace tsp::baseline {

/** Result of one workload execution. */
struct RunResult
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t maccOps = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
};

/** Core parameters (a generous GPU-SM-like SIMD unit). */
struct CoreConfig
{
    int simdLanes = 64;        ///< int8 MACCs per ALU instruction.
    int aluPipes = 4;          ///< Parallel SIMD pipes (conv model
                               ///< uses a GPU-like 32).
    double clockHz = 1.5e9;
    std::uint64_t seed = 1;    ///< Perturbs cache replacement.
};

/** The baseline in-order SIMD core. */
class BaselineCore
{
  public:
    explicit BaselineCore(const CoreConfig &cfg);

    /**
     * Executes Z = X + Y over @p elements int8 values, the paper's
     * Fig. 3 RISC loop: two loads, an add, and a store per SIMD
     * chunk.
     */
    RunResult runVectorAdd(std::size_t elements);

    /**
     * Executes an int8 GEMM C[M,N] = A[M,K] x B[K,N] with blocked
     * loops, streaming operands through the cache hierarchy.
     */
    RunResult runGemm(int m, int n, int k);

    /** Geometry of one conv layer for runConvNet(). */
    struct ConvLayerDesc
    {
        std::int64_t outputs = 0;       ///< H*W*outC elements.
        std::int64_t macsPerOutput = 0; ///< inC*kh*kw.
        std::int64_t weightBytes = 0;   ///< outC*inC*kh*kw (int8).
    };

    /**
     * Executes a whole convolutional network — a geometry-faithful
     * stand-in for ResNet on a conventional accelerator. Batch > 1
     * amortizes weight traffic across images (weights are re-fetched
     * once per layer per batch, not per image).
     */
    RunResult runConvNet(const std::vector<ConvLayerDesc> &layers,
                         int batch);

    const CoreConfig &config() const { return cfg_; }

  private:
    CoreConfig cfg_;
    MemoryHierarchy mem_;
};

/**
 * Published comparison points the paper cites [1], [44]: batch-1
 * ResNet50 inference throughput/latency of contemporary parts.
 */
struct ReferenceChip
{
    const char *name;
    double resnet50Ips;      ///< Batch-1 images/s.
    double batch1LatencyUs;  ///< End-to-end single-image latency.
};

/** @return the paper's comparison table. */
const std::vector<ReferenceChip> &referenceChips();

/** The paper's own TSP measurements for cross-checking. */
inline constexpr double kPaperTspIps = 20'400.0;
inline constexpr double kPaperTspLatencyUs = 49.0;

} // namespace tsp::baseline

#endif // TSP_BASELINE_CORE_HH
