#include "mem/ecc.hh"

#include <array>

namespace tsp {

namespace {

// Codeword positions run 1..136. Positions that are powers of two hold
// the 8 Hamming parity bits; the remaining 128 positions hold data
// bits in order. The overall parity bit sits outside this numbering.

/** Codeword position of each of the 128 data bits. */
struct PosTables
{
    std::array<std::uint8_t, 128> dataPos{};  // data bit -> position
    std::array<std::int16_t, 137> posData{};  // position -> data bit

    PosTables()
    {
        posData.fill(-1);
        int k = 0;
        for (int pos = 1; pos <= 136 && k < 128; ++pos) {
            if ((pos & (pos - 1)) == 0)
                continue; // Parity position.
            dataPos[static_cast<std::size_t>(k)] =
                static_cast<std::uint8_t>(pos);
            posData[static_cast<std::size_t>(pos)] =
                static_cast<std::int16_t>(k);
            ++k;
        }
    }
};

const PosTables kPos;

/**
 * Per-(byte index, byte value) precomputed contribution: low 8 bits =
 * syndrome XOR, bit 8 = data-bit parity.
 */
struct ContribTable
{
    std::array<std::array<std::uint16_t, 256>, 16> t{};

    ContribTable()
    {
        for (int byte_idx = 0; byte_idx < 16; ++byte_idx) {
            for (int value = 0; value < 256; ++value) {
                std::uint16_t syn = 0;
                int ones = 0;
                for (int bit = 0; bit < 8; ++bit) {
                    if (!(value & (1 << bit)))
                        continue;
                    const int data_bit = byte_idx * 8 + bit;
                    syn = static_cast<std::uint16_t>(
                        syn ^ kPos.dataPos[static_cast<std::size_t>(
                                  data_bit)]);
                    ++ones;
                }
                t[static_cast<std::size_t>(byte_idx)]
                 [static_cast<std::size_t>(value)] =
                     static_cast<std::uint16_t>(syn |
                                                ((ones & 1) << 8));
            }
        }
    }
};

const ContribTable kContrib;

/** @return (hamming syndrome, data parity) of the 16 data bytes. */
inline std::pair<std::uint8_t, int>
dataSyndrome(const std::uint8_t *word16)
{
    std::uint16_t acc = 0;
    int parity = 0;
    for (int i = 0; i < 16; ++i) {
        const std::uint16_t c =
            kContrib.t[static_cast<std::size_t>(i)][word16[i]];
        acc = static_cast<std::uint16_t>(acc ^ (c & 0xff));
        parity ^= (c >> 8) & 1;
    }
    return {static_cast<std::uint8_t>(acc), parity};
}

inline int
popcount8(std::uint8_t v)
{
    return __builtin_popcount(v);
}

} // namespace

std::uint16_t
eccCompute(const std::uint8_t *word16)
{
    const auto [syn, data_parity] = dataSyndrome(word16);
    // Hamming parity bits equal the syndrome of the data alone (so
    // that data syndrome XOR parity bits == 0 for a clean word).
    const std::uint8_t hamming = syn;
    // Overall parity covers data bits and Hamming bits.
    const int overall = data_parity ^ (popcount8(hamming) & 1);
    return static_cast<std::uint16_t>(hamming | (overall << 8));
}

EccStatus
eccCheckCorrect(std::uint8_t *word16, std::uint16_t &ecc)
{
    const std::uint8_t stored_hamming =
        static_cast<std::uint8_t>(ecc & 0xff);
    const int stored_overall = (ecc >> 8) & 1;

    const auto [syn_data, data_parity] = dataSyndrome(word16);
    const std::uint8_t syndrome =
        static_cast<std::uint8_t>(syn_data ^ stored_hamming);
    const int parity_ok =
        (data_parity ^ (popcount8(stored_hamming) & 1) ^
         stored_overall) == 0;

    if (syndrome == 0 && parity_ok)
        return EccStatus::Ok;

    if (!parity_ok) {
        // Odd number of flipped bits: assume single, correctable.
        if (syndrome == 0) {
            // The overall parity bit itself flipped.
            ecc = static_cast<std::uint16_t>(ecc ^ 0x100);
            return EccStatus::Corrected;
        }
        if ((syndrome & (syndrome - 1)) == 0) {
            // A Hamming parity bit flipped.
            ecc = static_cast<std::uint16_t>(ecc ^ syndrome);
            return EccStatus::Corrected;
        }
        // A data bit flipped: locate it via the position table.
        const std::int16_t data_bit =
            kPos.posData[static_cast<std::size_t>(syndrome)];
        if (data_bit < 0)
            return EccStatus::Uncorrectable; // Position out of range.
        word16[data_bit / 8] = static_cast<std::uint8_t>(
            word16[data_bit / 8] ^ (1u << (data_bit % 8)));
        return EccStatus::Corrected;
    }

    // Syndrome nonzero but parity consistent: double-bit error.
    return EccStatus::Uncorrectable;
}

void
eccComputeVec(Vec320 &vec)
{
    for (int sl = 0; sl < kSuperlanes; ++sl) {
        vec.ecc[static_cast<std::size_t>(sl)] =
            eccCompute(vec.bytes.data() + sl * kWordBytes);
    }
}

EccStatus
eccCheckVec(Vec320 &vec)
{
    EccStatus worst = EccStatus::Ok;
    for (int sl = 0; sl < kSuperlanes; ++sl) {
        const EccStatus s = eccCheckCorrect(
            vec.bytes.data() + sl * kWordBytes,
            vec.ecc[static_cast<std::size_t>(sl)]);
        if (static_cast<int>(s) > static_cast<int>(worst))
            worst = s;
    }
    return worst;
}

} // namespace tsp
