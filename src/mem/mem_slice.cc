#include "mem/mem_slice.hh"

#include "common/logging.hh"
#include "common/strutil.hh"
#include "mem/fault.hh"

namespace tsp {

namespace {
constexpr int kWordsPerBank = kMemWordsPerSlice / kMemBanks;
} // namespace

std::string
GlobalAddr::toString() const
{
    return strformat("%c%d:0x%04x", hem == Hemisphere::East ? 'E' : 'W',
                     slice, addr);
}

MemSlice::MemSlice(Hemisphere hem, int index, bool ecc_enabled,
                   FaultInjector *faults, MachineCheckSink *mc)
    : hem_(hem), index_(index), eccEnabled_(ecc_enabled),
      faults_(faults), mc_(mc)
{
    TSP_ASSERT(index >= 0 && index < kMemSlicesPerHem);
}

std::string
MemSlice::name() const
{
    return strformat("MEM_%c%d", hem_ == Hemisphere::East ? 'E' : 'W',
                     index_);
}

void
MemSlice::reportUncorrectable(Cycle now, const char *what, MemAddr addr)
{
    ++uncorrectable_;
    if (mc_) {
        mc_->raise(now, name(),
                   strformat("uncorrectable error %s at 0x%x", what,
                             addr));
    } else {
        warn("%s: uncorrectable error %s at 0x%x", name().c_str(),
             what, addr);
    }
}

MemSlice::Word *
MemSlice::bankStore(int bank)
{
    TSP_ASSERT(bank >= 0 && bank < kMemBanks);
    auto &store = banks_[static_cast<std::size_t>(bank)];
    if (!store)
        store = std::make_unique<Word[]>(kWordsPerBank);
    return store.get();
}

const MemSlice::Word *
MemSlice::bankStoreConst(int bank) const
{
    TSP_ASSERT(bank >= 0 && bank < kMemBanks);
    return banks_[static_cast<std::size_t>(bank)].get();
}

MemSlice::Word &
MemSlice::wordAt(MemAddr addr)
{
    TSP_ASSERT(addr < static_cast<MemAddr>(kMemWordsPerSlice));
    return bankStore(bankOf(addr))[addr % kWordsPerBank];
}

const MemSlice::Word *
MemSlice::wordAtConst(MemAddr addr) const
{
    TSP_ASSERT(addr < static_cast<MemAddr>(kMemWordsPerSlice));
    const Word *bank = bankStoreConst(bankOf(addr));
    return bank ? &bank[addr % kWordsPerBank] : nullptr;
}

void
MemSlice::checkPort(MemAddr addr, bool is_write, Cycle now)
{
    if (now != lastCycle_) {
        lastCycle_ = now;
        readBank_ = -1;
        writeBank_ = -1;
    }
    const int bank = bankOf(addr);
    if (is_write) {
        if (writeBank_ != -1) {
            panic("MEM_%s%d: second write in cycle %llu (scheduler bug)",
                  hem_ == Hemisphere::East ? "E" : "W", index_,
                  static_cast<unsigned long long>(now));
        }
        if (readBank_ == bank) {
            panic("MEM_%s%d: read/write bank conflict on bank %d at "
                  "cycle %llu (scheduler bug)",
                  hem_ == Hemisphere::East ? "E" : "W", index_, bank,
                  static_cast<unsigned long long>(now));
        }
        writeBank_ = bank;
    } else {
        if (readBank_ != -1) {
            panic("MEM_%s%d: second read in cycle %llu (scheduler bug)",
                  hem_ == Hemisphere::East ? "E" : "W", index_,
                  static_cast<unsigned long long>(now));
        }
        if (writeBank_ == bank) {
            panic("MEM_%s%d: read/write bank conflict on bank %d at "
                  "cycle %llu (scheduler bug)",
                  hem_ == Hemisphere::East ? "E" : "W", index_, bank,
                  static_cast<unsigned long long>(now));
        }
        readBank_ = bank;
    }
}

Vec320
MemSlice::read(MemAddr addr, Cycle now)
{
    Vec320 out;
    readInto(addr, now, out);
    return out;
}

void
MemSlice::readInto(MemAddr addr, Cycle now, Vec320 &out)
{
    checkPort(addr, /*is_write=*/false, now);
    ++reads_;

    const Word *w = wordAtConst(addr);
    if (w) {
        out.bytes = w->bytes;
        out.ecc = w->ecc;
    } else {
        // Untouched SRAM reads as zero with valid (zero) ECC; @p out
        // may be a reused arena slot, so assign it explicitly.
        out = Vec320{};
    }
    if (faults_) {
        // Transient read-path upset: corrupts the read-out copy, not
        // the stored word. The downstream consumer's check catches it.
        faults_->onMemRead(out);
    }
}

void
MemSlice::write(MemAddr addr, const Vec320 &vec, Cycle now)
{
    checkPort(addr, /*is_write=*/true, now);
    ++writes_;

    Vec320 v = vec;
    if (faults_)
        faults_->onMemWrite(v);
    if (eccEnabled_) {
        if (replay_) {
            // Replay producers skip the encode; regenerate here so
            // the committed word matches a live run byte-for-byte.
            eccComputeVec(v);
        } else {
            // Consumer-side check before commit (paper II.D).
            switch (eccCheckVec(v)) {
              case EccStatus::Ok:
                break;
              case EccStatus::Corrected:
                ++corrected_;
                break;
              case EccStatus::Uncorrectable:
                reportUncorrectable(now, "on write", addr);
                break;
            }
        }
    }
    Word &w = wordAt(addr);
    w.bytes = v.bytes;
    w.ecc = v.ecc;
}

Vec320
MemSlice::gather(const std::array<MemAddr, kSuperlanes> &addrs,
                 Cycle now)
{
    Vec320 out;
    gatherInto(addrs, now, out);
    return out;
}

void
MemSlice::gatherInto(const std::array<MemAddr, kSuperlanes> &addrs,
                     Cycle now, Vec320 &out)
{
    checkPort(addrs[0], /*is_write=*/false, now);
    ++reads_;

    out = Vec320{}; // May be a reused arena slot.
    bool any_missing = false;
    for (int sl = 0; sl < kSuperlanes; ++sl) {
        const Word *w = wordAtConst(addrs[static_cast<std::size_t>(sl)]);
        if (!w) {
            any_missing = true;
            continue;
        }
        for (int b = 0; b < kWordBytes; ++b) {
            out.bytes[static_cast<std::size_t>(sl * kWordBytes + b)] =
                w->bytes[static_cast<std::size_t>(sl * kWordBytes + b)];
        }
        out.ecc[static_cast<std::size_t>(sl)] =
            w->ecc[static_cast<std::size_t>(sl)];
    }
    if (any_missing && eccEnabled_) {
        // Zero-filled tiles need valid codes for their zero words.
        Vec320 codes = out;
        eccComputeVec(codes);
        for (int sl = 0; sl < kSuperlanes; ++sl) {
            const Word *w =
                wordAtConst(addrs[static_cast<std::size_t>(sl)]);
            if (!w) {
                out.ecc[static_cast<std::size_t>(sl)] =
                    codes.ecc[static_cast<std::size_t>(sl)];
            }
        }
    }
    if (faults_)
        faults_->onMemRead(out);
}

void
MemSlice::scatter(const std::array<MemAddr, kSuperlanes> &addrs,
                  const Vec320 &vec, Cycle now)
{
    checkPort(addrs[0], /*is_write=*/true, now);
    ++writes_;

    Vec320 v = vec;
    if (faults_)
        faults_->onMemWrite(v);
    if (eccEnabled_) {
        if (replay_) {
            eccComputeVec(v);
        } else {
            switch (eccCheckVec(v)) {
              case EccStatus::Ok:
                break;
              case EccStatus::Corrected:
                ++corrected_;
                break;
              case EccStatus::Uncorrectable:
                reportUncorrectable(now, "on scatter", addrs[0]);
                break;
            }
        }
    }
    for (int sl = 0; sl < kSuperlanes; ++sl) {
        Word &w = wordAt(addrs[static_cast<std::size_t>(sl)]);
        for (int b = 0; b < kWordBytes; ++b) {
            w.bytes[static_cast<std::size_t>(sl * kWordBytes + b)] =
                v.bytes[static_cast<std::size_t>(sl * kWordBytes + b)];
        }
        w.ecc[static_cast<std::size_t>(sl)] =
            v.ecc[static_cast<std::size_t>(sl)];
    }
}

void
MemSlice::backdoorWrite(MemAddr addr, const Vec320 &vec)
{
    Word &w = wordAt(addr);
    w.bytes = vec.bytes;
    if (eccEnabled_) {
        Vec320 tmp;
        tmp.bytes = vec.bytes;
        eccComputeVec(tmp);
        w.ecc = tmp.ecc;
    } else {
        w.ecc = vec.ecc;
    }
}

Vec320
MemSlice::backdoorRead(MemAddr addr) const
{
    Vec320 out;
    const Word *w = wordAtConst(addr);
    if (w) {
        out.bytes = w->bytes;
        out.ecc = w->ecc;
    } else if (eccEnabled_) {
        eccComputeVec(out);
    }
    return out;
}

void
MemSlice::saveState(SnapshotWriter &w) const
{
    for (int bank = 0; bank < kMemBanks; ++bank) {
        const Word *store = bankStoreConst(bank);
        std::uint32_t count = 0;
        if (store) {
            for (int i = 0; i < kWordsPerBank; ++i) {
                const Word &word = store[static_cast<std::size_t>(i)];
                bool nonzero = false;
                for (const auto b : word.bytes)
                    nonzero |= b != 0;
                for (const auto e : word.ecc)
                    nonzero |= e != 0;
                count += nonzero ? 1 : 0;
            }
        }
        w.u32(count);
        if (!store)
            continue;
        for (int i = 0; i < kWordsPerBank; ++i) {
            const Word &word = store[static_cast<std::size_t>(i)];
            bool nonzero = false;
            for (const auto b : word.bytes)
                nonzero |= b != 0;
            for (const auto e : word.ecc)
                nonzero |= e != 0;
            if (!nonzero)
                continue;
            w.u32(static_cast<std::uint32_t>(i));
            w.bytes(word.bytes.data(), word.bytes.size());
            for (const auto e : word.ecc)
                w.u16(e);
        }
    }
    w.u64(reads_);
    w.u64(writes_);
    w.u64(corrected_);
    w.u64(uncorrectable_);
    w.u64(lastCycle_);
    w.i32(readBank_);
    w.i32(writeBank_);
}

void
MemSlice::loadState(SnapshotReader &r)
{
    for (int bank = 0; bank < kMemBanks; ++bank) {
        banks_[static_cast<std::size_t>(bank)].reset();
        const std::uint32_t count = r.u32();
        if (count == 0 || !r.ok())
            continue;
        Word *store = bankStore(bank);
        for (std::uint32_t n = 0; n < count && r.ok(); ++n) {
            const std::uint32_t i = r.u32();
            if (i >= static_cast<std::uint32_t>(kWordsPerBank))
                break;
            Word &word = store[i];
            r.bytes(word.bytes.data(), word.bytes.size());
            for (auto &e : word.ecc)
                e = r.u16();
        }
    }
    reads_ = r.u64();
    writes_ = r.u64();
    corrected_ = r.u64();
    uncorrectable_ = r.u64();
    lastCycle_ = r.u64();
    readBank_ = r.i32();
    writeBank_ = r.i32();
}

void
MemSlice::injectBitFlip(MemAddr addr, int byte, int bit)
{
    TSP_ASSERT(byte >= 0 && byte < kLanes && bit >= 0 && bit < 8);
    Word &w = wordAt(addr);
    w.bytes[static_cast<std::size_t>(byte)] =
        static_cast<std::uint8_t>(
            w.bytes[static_cast<std::size_t>(byte)] ^ (1u << bit));
}

void
MemSlice::injectCodewordFlip(MemAddr addr, int chunk, int bit)
{
    TSP_ASSERT(chunk >= 0 && chunk < kSuperlanes && bit >= 0 &&
               bit < kWordBytes * 8 + kEccBits);
    if (bit < kWordBytes * 8) {
        injectBitFlip(addr, chunk * kWordBytes + bit / 8, bit % 8);
    } else {
        Word &w = wordAt(addr);
        w.ecc[static_cast<std::size_t>(chunk)] ^=
            static_cast<std::uint16_t>(1u << (bit - kWordBytes * 8));
    }
}

} // namespace tsp
