/**
 * @file
 * Deterministic fault injection and machine-check capture.
 *
 * The paper (II.D) makes the SECDED path a first-class feature:
 * producers generate the 9-bit code, every consumer checks it, and
 * the host learns about uncorrectable errors through CSRs. This file
 * supplies the two pieces the simulator needs to *exercise* that
 * machinery end to end:
 *
 *  - FaultInjector: seeded, reproducible bit flips in MEM SRAM
 *    words, consumed stream operands and check bits. Per-access
 *    rates draw from the RNG only when an access happens, so the
 *    upset history is a pure function of the (deterministic) access
 *    sequence — bit-identical under per-cycle stepping and the
 *    event-driven fast-forward core. Explicitly scheduled
 *    (cycle, site, bit) faults are surfaced as events so skipped
 *    spans can never jump over one.
 *
 *  - MachineCheckSink: chip-level first-error latch. Any consumer
 *    that observes an Uncorrectable status raises it with full
 *    context (cycle, reporting unit, access detail); the run loop
 *    halts the chip instead of letting corrupted data flow silently
 *    into results.
 */

#ifndef TSP_MEM_FAULT_HH
#define TSP_MEM_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "arch/types.hh"
#include "common/rng.hh"
#include "common/snapshot_io.hh"

namespace tsp {

class MemSlice;

/** Context captured for the first uncorrectable error on a chip. */
struct MachineCheckInfo
{
    /** Cycle the error was detected (the consuming access's cycle). */
    Cycle cycle = 0;

    /** Reporting unit, e.g. "MEM_W3", "VXM", "MXM0". */
    std::string unit;

    /** Access description, e.g. "stream s12.e at pos 40". */
    std::string detail;
};

/**
 * Chip-level machine-check latch. The first raise() captures full
 * context; later raises only count (first-error semantics, like a
 * hardware MCA bank). A raised sink condemns the chip: the run loop
 * halts, and only a rebuilt chip clears the latch.
 */
class MachineCheckSink
{
  public:
    /** Records an uncorrectable error observed by @p unit. */
    void raise(Cycle cycle, const std::string &unit,
               std::string detail);

    /** @return true once any uncorrectable error was raised. */
    bool raised() const { return raises_ > 0; }

    /** @return total uncorrectable errors raised. */
    std::uint64_t raises() const { return raises_; }

    /** @return first-error context (valid when raised()). */
    const MachineCheckInfo &info() const { return info_; }

    /** Serializes the latch (snapshot/restore). */
    void
    saveState(SnapshotWriter &w) const
    {
        w.u64(raises_);
        w.u64(info_.cycle);
        w.str(info_.unit);
        w.str(info_.detail);
    }

    /** Restores the latch (snapshot/restore). */
    void
    loadState(SnapshotReader &r)
    {
        raises_ = r.u64();
        info_.cycle = r.u64();
        info_.unit = r.str();
        info_.detail = r.str();
    }

  private:
    std::uint64_t raises_ = 0;
    MachineCheckInfo info_{};
};

/**
 * Seeded fault injector owned by one chip. Not thread-safe; each
 * simulated chip owns its own instance (the serving layer gives every
 * worker its own chip, so worker pools stay data-race-free).
 */
class FaultInjector
{
  public:
    /** @param cfg validated fault configuration (copied; events are
     *  sorted by cycle internally). */
    explicit FaultInjector(const FaultConfig &cfg);

    /** @return true when any injection source is configured. */
    bool enabled() const { return cfg_.enabled(); }

    /** Read-path upset: maybe flip bits in the read-out vector. */
    void
    onMemRead(Vec320 &vec)
    {
        maybeStrike(vec, cfg_.memReadRate, memFlips_);
    }

    /** Write-path upset, ahead of the consumer-side ECC check. */
    void
    onMemWrite(Vec320 &vec)
    {
        maybeStrike(vec, cfg_.memWriteRate, memFlips_);
    }

    /** Stream-hop upset on an operand being consumed. */
    void
    onStreamConsume(Vec320 &vec)
    {
        maybeStrike(vec, cfg_.streamRate, streamFlips_);
    }

    /**
     * Link-flight upset on a vector landing in C2C link @p link's
     * elastic buffer (receiver side, before the downstream
     * consumer's ECC check sees it). Each link draws from a
     * dedicated RNG stream so the strike history depends only on
     * that link's arrival order — never on how chip execution is
     * interleaved by the pod scheduler.
     */
    void onC2cDeliver(Vec320 &vec, int link);

    /** @return true when scheduled events remain unapplied. */
    bool hasScheduled() const { return nextEvent_ < events_.size(); }

    /**
     * @return the cycle of the next unapplied scheduled fault, or
     * kNoEventCycle when the list is exhausted. The chip folds this
     * into nextEventCycle() so fast-forward lands on fault cycles.
     */
    Cycle nextScheduledCycle() const;

    /**
     * Applies every scheduled fault with cycle <= @p now to the
     * chip's MEM slices (persistent SRAM upsets). Called once at the
     * top of each stepped cycle.
     */
    void applyScheduled(Cycle now, std::vector<MemSlice> &slices);

    /** @return bits flipped on MEM read/write paths. */
    std::uint64_t memFlips() const { return memFlips_; }

    /** @return bits flipped on stream consume paths. */
    std::uint64_t streamFlips() const { return streamFlips_; }

    /** @return bits flipped on vectors in C2C link flight. */
    std::uint64_t c2cFlips() const { return c2cFlips_; }

    /** @return scheduled SRAM bits flipped so far. */
    std::uint64_t scheduledFlips() const { return scheduledFlips_; }

    /** @return total injected bit flips from all sources. */
    std::uint64_t
    totalFlips() const
    {
        return memFlips_ + streamFlips_ + c2cFlips_ + scheduledFlips_;
    }

    /** @return the configured base seed. */
    std::uint64_t seed() const { return cfg_.seed; }

    /**
     * Serializes RNG streams, the scheduled-event cursor and the flip
     * counters. The fault *environment* (rates + events) is config,
     * verified by hash at the chip level, not serialized.
     */
    void saveState(SnapshotWriter &w) const;

    /**
     * Restores injector state. With @p restore_rng the RNG streams
     * resume exactly where the snapshot left them (same-seed restore:
     * exact continuation, bit-identical to the uninterrupted run).
     * Without it the streams keep this injector's fresh seeding —
     * migration onto a rebuilt chip draws a new upset future instead
     * of deterministically replaying the strike that condemned the
     * source — while the event cursor and counters still restore so
     * already-applied scheduled faults never reapply.
     */
    void loadState(SnapshotReader &r, bool restore_rng);

  private:
    /** Draws the strike decision and flips 1 or 2 bits of one chunk. */
    void
    maybeStrike(Vec320 &vec, double rate, std::uint64_t &counter)
    {
        maybeStrikeWith(rng_, vec, rate, counter);
    }

    /** maybeStrike() drawing from an explicit RNG stream. */
    void maybeStrikeWith(Rng &rng, Vec320 &vec, double rate,
                         std::uint64_t &counter);

    /** Flips codeword bit @p bit (0..136) of chunk @p chunk. */
    static void flipCodewordBit(Vec320 &vec, int chunk, int bit);

    FaultConfig cfg_;
    Rng rng_;
    std::vector<Rng> linkRngs_; ///< One per C2C link (lazily built).
    std::vector<FaultEvent> events_; ///< Sorted by cycle.
    std::size_t nextEvent_ = 0;

    std::uint64_t memFlips_ = 0;
    std::uint64_t streamFlips_ = 0;
    std::uint64_t c2cFlips_ = 0;
    std::uint64_t scheduledFlips_ = 0;
};

} // namespace tsp

#endif // TSP_MEM_FAULT_HH
