/**
 * @file
 * Partitioned global address space (PGAS) addressing.
 *
 * The MEM system presents a flat, globally shared address space laid
 * out uniformly across the 88 slices (paper III.B / IV). A global
 * address identifies (hemisphere, slice, word); each word is a full
 * 320-byte vector row (16 bytes per superlane tile).
 */

#ifndef TSP_MEM_ADDR_HH
#define TSP_MEM_ADDR_HH

#include <string>

#include "arch/layout.hh"
#include "arch/types.hh"

namespace tsp {

/** A global vector address: one 320-byte word in one MEM slice. */
struct GlobalAddr
{
    Hemisphere hem = Hemisphere::East;
    int slice = 0;   ///< 0..43 within the hemisphere.
    MemAddr addr = 0; ///< 13-bit word address within the slice.

    /** @return the bank (0/1) this word lives in: address bit 12. */
    int
    bank() const
    {
        return (addr >> 12) & 1;
    }

    /** @return X position of the owning slice. */
    SlicePos
    pos() const
    {
        return Layout::memPos(hem, slice);
    }

    /** @return the ICU driving the owning slice. */
    IcuId
    icu() const
    {
        return IcuId::mem(hem, slice);
    }

    /** @return flat linear index over all words on chip. */
    std::size_t
    linear() const
    {
        const std::size_t s =
            static_cast<std::size_t>(
                hem == Hemisphere::East ? kMemSlicesPerHem + slice
                                        : slice);
        return s * kMemWordsPerSlice + addr;
    }

    /** @return e.g. "E12:0x01a0". */
    std::string toString() const;

    bool operator==(const GlobalAddr &other) const = default;
};

/** @return the number of 320-byte words on the whole chip. */
inline constexpr std::size_t
totalWords()
{
    return static_cast<std::size_t>(kMemSlices) * kMemWordsPerSlice;
}

} // namespace tsp

#endif // TSP_MEM_ADDR_HH
