#include "mem/fault.hh"

#include <algorithm>

#include "arch/layout.hh"
#include "common/logging.hh"
#include "common/seed.hh"
#include "mem/mem_slice.hh"

namespace tsp {

void
MachineCheckSink::raise(Cycle cycle, const std::string &unit,
                        std::string detail)
{
    if (raises_ == 0) {
        info_.cycle = cycle;
        info_.unit = unit;
        info_.detail = std::move(detail);
    }
    ++raises_;
}

FaultInjector::FaultInjector(const FaultConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed), events_(cfg.events)
{
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.cycle < b.cycle;
                     });
}

Cycle
FaultInjector::nextScheduledCycle() const
{
    return hasScheduled() ? events_[nextEvent_].cycle : kNoEventCycle;
}

void
FaultInjector::applyScheduled(Cycle now, std::vector<MemSlice> &slices)
{
    while (hasScheduled() && events_[nextEvent_].cycle <= now) {
        const FaultEvent &e = events_[nextEvent_];
        slices[e.slice].injectCodewordFlip(e.addr, e.chunk, e.bit);
        ++scheduledFlips_;
        ++nextEvent_;
    }
}

void
FaultInjector::saveState(SnapshotWriter &w) const
{
    for (const auto word : rng_.state())
        w.u64(word);
    w.u32(static_cast<std::uint32_t>(linkRngs_.size()));
    for (const auto &rng : linkRngs_) {
        for (const auto word : rng.state())
            w.u64(word);
    }
    w.u64(nextEvent_);
    w.u64(memFlips_);
    w.u64(streamFlips_);
    w.u64(c2cFlips_);
    w.u64(scheduledFlips_);
}

void
FaultInjector::loadState(SnapshotReader &r, bool restore_rng)
{
    std::array<std::uint64_t, Rng::kStateWords> state;
    for (auto &word : state)
        word = r.u64();
    if (restore_rng)
        rng_.setState(state);
    const std::uint32_t n_links = r.u32();
    for (std::uint32_t i = 0; i < n_links && r.ok(); ++i) {
        for (auto &word : state)
            word = r.u64();
        if (!restore_rng)
            continue;
        // Lazily built on the source; mirror that here so link
        // strike streams resume mid-sequence.
        if (linkRngs_.size() <= i)
            linkRngs_.emplace_back(0);
        linkRngs_[i].setState(state);
    }
    nextEvent_ = static_cast<std::size_t>(r.u64());
    memFlips_ = r.u64();
    streamFlips_ = r.u64();
    c2cFlips_ = r.u64();
    scheduledFlips_ = r.u64();
}

void
FaultInjector::onC2cDeliver(Vec320 &vec, int link)
{
    if (cfg_.c2cRate <= 0.0)
        return;
    if (linkRngs_.empty()) {
        // One stream per link, derived from the chip seed. Built on
        // first use so fault configs without C2C rates pay nothing.
        linkRngs_.reserve(static_cast<std::size_t>(kC2cLinks));
        for (int l = 0; l < kC2cLinks; ++l) {
            linkRngs_.emplace_back(
                deriveSeed(cfg_.seed, SeedDomain::C2cLink,
                           static_cast<std::uint64_t>(l)));
        }
    }
    TSP_ASSERT(link >= 0 && link < kC2cLinks);
    maybeStrikeWith(linkRngs_[static_cast<std::size_t>(link)], vec,
                    cfg_.c2cRate, c2cFlips_);
}

void
FaultInjector::maybeStrikeWith(Rng &rng, Vec320 &vec, double rate,
                               std::uint64_t &counter)
{
    if (rate <= 0.0 || rng.nextDouble() >= rate)
        return;

    constexpr int kCodewordBits = kWordBytes * 8 + kEccBits;
    int chunk = static_cast<int>(rng.nextBelow(kSuperlanes));
    int bit = static_cast<int>(rng.nextBelow(kCodewordBits));
    flipCodewordBit(vec, chunk, bit);
    ++counter;

    if (cfg_.doubleBitFraction > 0.0 &&
        rng.nextDouble() < cfg_.doubleBitFraction) {
        // A second distinct bit in the same chunk: uncorrectable by
        // SECDED construction.
        int second =
            static_cast<int>(rng.nextBelow(kCodewordBits - 1));
        if (second >= bit)
            ++second;
        flipCodewordBit(vec, chunk, second);
        ++counter;
    }
}

void
FaultInjector::flipCodewordBit(Vec320 &vec, int chunk, int bit)
{
    if (bit < kWordBytes * 8) {
        vec.bytes[chunk * kWordBytes + bit / 8] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
    } else {
        vec.ecc[chunk] ^=
            static_cast<std::uint16_t>(1u << (bit - kWordBytes * 8));
    }
}

} // namespace tsp
